package sycl

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRangeSize(t *testing.T) {
	if (Range{R: 3, C: 4}).Size() != 12 {
		t.Fatal("Size mismatch")
	}
}

func TestNDRangeValidate(t *testing.T) {
	cases := []struct {
		nd NDRange
		ok bool
	}{
		{NDRange{Global: Range{4, 4}, Local: Range{2, 2}}, true},
		{NDRange{Global: Range{0, 4}, Local: Range{2, 2}}, false},
		{NDRange{Global: Range{4, 4}, Local: Range{0, 2}}, false},
		{NDRange{Global: Range{4, -1}, Local: Range{2, 2}}, false},
	}
	for i, c := range cases {
		err := c.nd.Validate()
		if (err == nil) != c.ok {
			t.Fatalf("case %d: Validate() err = %v, ok = %v", i, err, c.ok)
		}
	}
}

func TestNDRangeGroupsRoundsUp(t *testing.T) {
	nd := NDRange{Global: Range{10, 7}, Local: Range{4, 4}}
	g := nd.Groups()
	if g.R != 3 || g.C != 2 {
		t.Fatalf("Groups() = %+v, want {3 2}", g)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	q := NewQueue(HostDevice())
	const R, C = 37, 23
	var hits [R * C]int32
	_, err := q.ParallelFor(Range{R, C}, func(r, c int) {
		atomic.AddInt32(&hits[r*C+c], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("point %d visited %d times", i, h)
		}
	}
}

func TestParallelForInvalidRange(t *testing.T) {
	q := NewQueue(HostDevice())
	if _, err := q.ParallelFor(Range{0, 5}, func(r, c int) {}); err == nil {
		t.Fatal("expected error for empty range")
	}
}

func TestParallelForWorkGroupCoverage(t *testing.T) {
	q := NewQueue(HostDevice())
	nd := NDRange{Global: Range{16, 16}, Local: Range{4, 8}}
	var mu sync.Mutex
	visited := map[[2]int]int{}
	_, err := q.ParallelForWorkGroup(nd, func(g *Group) {
		g.ForEachItem(func(it Item) {
			mu.Lock()
			visited[[2]int{it.Global.R, it.Global.C}]++
			mu.Unlock()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 16*16 {
		t.Fatalf("visited %d global points, want 256", len(visited))
	}
	for pt, n := range visited {
		if n != 1 {
			t.Fatalf("point %v visited %d times", pt, n)
		}
	}
}

func TestParallelForWorkGroupRaggedEdges(t *testing.T) {
	// Global 10x10, local 4x4 → groups 3x3 and items with global ids up to
	// (11,11); the kernel must observe out-of-range ids so it can bounds
	// check, exactly as SYCL-DNN kernels do.
	q := NewQueue(HostDevice())
	nd := NDRange{Global: Range{10, 10}, Local: Range{4, 4}}
	var maxR, maxC int64
	_, err := q.ParallelForWorkGroup(nd, func(g *Group) {
		g.ForEachItem(func(it Item) {
			for {
				old := atomic.LoadInt64(&maxR)
				if int64(it.Global.R) <= old || atomic.CompareAndSwapInt64(&maxR, old, int64(it.Global.R)) {
					break
				}
			}
			for {
				old := atomic.LoadInt64(&maxC)
				if int64(it.Global.C) <= old || atomic.CompareAndSwapInt64(&maxC, old, int64(it.Global.C)) {
					break
				}
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxR != 11 || maxC != 11 {
		t.Fatalf("max global id = (%d,%d), want (11,11)", maxR, maxC)
	}
}

func TestGroupLocalMemoryPersistsAcrossPhases(t *testing.T) {
	q := NewQueue(Device{Name: "single", Workers: 1})
	nd := NDRange{Global: Range{2, 2}, Local: Range{2, 2}}
	ok := true
	_, err := q.ParallelForWorkGroup(nd, func(g *Group) {
		buf := g.LocalFloat64(4)
		g.ForEachItem(func(it Item) {
			buf[it.LinearLocal(g.LocalR)] = float64(it.Global.R*10 + it.Global.C)
		})
		// Implicit barrier: phase 2 must observe phase 1 writes.
		g.ForEachItem(func(it Item) {
			want := float64(it.Global.R*10 + it.Global.C)
			if buf[it.LinearLocal(g.LocalR)] != want {
				ok = false
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("local memory did not persist across item phases")
	}
}

func TestGroupLocalMemoryZeroedBetweenGroups(t *testing.T) {
	q := NewQueue(Device{Name: "single", Workers: 1})
	nd := NDRange{Global: Range{4, 1}, Local: Range{1, 1}}
	dirty := false
	_, err := q.ParallelForWorkGroup(nd, func(g *Group) {
		buf := g.LocalFloat64(8)
		for _, v := range buf {
			if v != 0 {
				dirty = true
			}
		}
		for i := range buf {
			buf[i] = 42
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if dirty {
		t.Fatal("local memory leaked between groups")
	}
}

func TestLocalFloat64LengthMismatchPanics(t *testing.T) {
	q := NewQueue(Device{Name: "single", Workers: 1})
	nd := NDRange{Global: Range{2, 1}, Local: Range{1, 1}}
	panicked := false
	var mu sync.Mutex
	first := true
	_, _ = q.ParallelForWorkGroup(nd, func(g *Group) {
		defer func() {
			if recover() != nil {
				mu.Lock()
				panicked = true
				mu.Unlock()
			}
		}()
		mu.Lock()
		n := 4
		if !first {
			n = 8 // second group mis-requests
		}
		first = false
		mu.Unlock()
		g.LocalFloat64(n)
	})
	if !panicked {
		t.Fatal("mismatched local buffer length did not panic")
	}
}

func TestQueueDeviceDefaults(t *testing.T) {
	q := NewQueue(Device{Name: "x"})
	if q.Device().Workers <= 0 {
		t.Fatal("NewQueue did not default Workers")
	}
}

// Property: every global point inside the global range is visited exactly
// once regardless of local size.
func TestWorkGroupCoverageProperty(t *testing.T) {
	q := NewQueue(HostDevice())
	f := func(gr, gc, lr, lc uint8) bool {
		nd := NDRange{
			Global: Range{int(gr%20) + 1, int(gc%20) + 1},
			Local:  Range{int(lr%6) + 1, int(lc%6) + 1},
		}
		counts := make([]int32, nd.Global.R*nd.Global.C)
		_, err := q.ParallelForWorkGroup(nd, func(g *Group) {
			g.ForEachItem(func(it Item) {
				if it.Global.R < nd.Global.R && it.Global.C < nd.Global.C {
					atomic.AddInt32(&counts[it.Global.R*nd.Global.C+it.Global.C], 1)
				}
			})
		})
		if err != nil {
			return false
		}
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEventDurationNonNegative(t *testing.T) {
	q := NewQueue(HostDevice())
	ev, err := q.ParallelFor(Range{8, 8}, func(r, c int) {})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Duration() < 0 {
		t.Fatal("negative event duration")
	}
}
