// Package sycl implements a CPU-hosted execution model mirroring the SYCL
// hierarchical data-parallel kernel API.
//
// SYCL offers two ways to write kernels: flat parallel_for over an nd_range,
// and hierarchical kernels in which a lambda runs once per work-group and
// invokes parallel_for_work_item one or more times; an implicit barrier
// separates consecutive item loops. This package implements both:
//
//   - Queue.ParallelFor runs a per-item function across a 2-D global range.
//   - Queue.ParallelForWorkGroup runs a per-group function; within it,
//     (*Group).ForEachItem iterates the local range with an implicit
//     work-group barrier at the end of each call, exactly matching the
//     hierarchical SYCL semantics.
//
// Work-groups are distributed over a pool of OS-thread-backed goroutines, so
// kernels that are correct under this model (no cross-group communication)
// are also correct and parallel here. Group-local memory is allocated
// through (*Group).Local* and lives for the duration of one group execution,
// modelling SYCL local accessors.
package sycl

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Range is a two-dimensional index range. By SYCL convention dimension 0 is
// the slowest-varying ("rows") and dimension 1 the fastest ("cols").
type Range struct {
	R, C int
}

// Size returns the number of points in the range.
func (r Range) Size() int { return r.R * r.C }

// NDRange pairs a global iteration space with a work-group size.
// Unlike OpenCL, the global range need not be divisible by the local range:
// this package rounds the group grid up and exposes bounds through the item,
// matching how SYCL-DNN launches its GEMM kernels with ranges rounded up and
// in-kernel bounds checks.
type NDRange struct {
	Global, Local Range
}

// Validate reports whether the nd-range is well formed.
func (n NDRange) Validate() error {
	if n.Global.R <= 0 || n.Global.C <= 0 {
		return fmt.Errorf("sycl: non-positive global range %+v", n.Global)
	}
	if n.Local.R <= 0 || n.Local.C <= 0 {
		return fmt.Errorf("sycl: non-positive local range %+v", n.Local)
	}
	return nil
}

// Groups returns the work-group grid, rounded up to cover the global range.
func (n NDRange) Groups() Range {
	return Range{
		R: (n.Global.R + n.Local.R - 1) / n.Local.R,
		C: (n.Global.C + n.Local.C - 1) / n.Local.C,
	}
}

// Item identifies one work-item inside a hierarchical kernel.
type Item struct {
	Local  Range // local id within the work-group
	Global Range // global id (group offset + local id); may exceed Global range on ragged edges
}

// LinearLocal returns the row-major linear local id of the item.
func (it Item) LinearLocal(local Range) int { return it.Local.R*local.C + it.Local.C }

// Group is the per-work-group execution context of a hierarchical kernel.
type Group struct {
	ID     Range // group id within the group grid
	Grid   Range // total group grid
	LocalR Range // work-group (local) size
	nd     NDRange

	locals [][]float64 // local allocations, reused across ForEachItem phases
	nextLF int
}

// GlobalOffset returns the global id of this group's (0,0) item.
func (g *Group) GlobalOffset() Range {
	return Range{R: g.ID.R * g.LocalR.R, C: g.ID.C * g.LocalR.C}
}

// LocalFloat64 returns a zeroed group-local float64 buffer of length n,
// modelling a SYCL local accessor. Buffers requested in the same order on
// each call within a group are stable across ForEachItem phases, so data
// written in one phase is visible in the next (after the implicit barrier).
func (g *Group) LocalFloat64(n int) []float64 {
	if g.nextLF < len(g.locals) {
		buf := g.locals[g.nextLF]
		g.nextLF++
		if len(buf) != n {
			panic(fmt.Sprintf("sycl: local buffer %d re-requested with length %d, was %d", g.nextLF-1, n, len(buf)))
		}
		return buf
	}
	buf := make([]float64, n)
	g.locals = append(g.locals, buf)
	g.nextLF++
	return buf
}

// resetLocalCursor rewinds local-buffer handout so a kernel can re-request
// its accessors per phase (mirroring how SYCL local accessors are captured
// once but used in every phase). Called between group executions.
func (g *Group) resetLocalCursor() { g.nextLF = 0 }

// ForEachItem runs f once for every work-item in the group, in row-major
// local order, and then returns. Consecutive calls are separated by an
// implicit work-group barrier (trivially satisfied by sequential execution),
// matching SYCL's parallel_for_work_item semantics.
func (g *Group) ForEachItem(f func(it Item)) {
	off := g.GlobalOffset()
	for lr := 0; lr < g.LocalR.R; lr++ {
		for lc := 0; lc < g.LocalR.C; lc++ {
			f(Item{
				Local:  Range{R: lr, C: lc},
				Global: Range{R: off.R + lr, C: off.C + lc},
			})
		}
	}
}

// Device describes the execution resource behind a queue. For the CPU host
// executor only Workers matters; the remaining fields identify the device to
// user code (the analytical performance model in internal/sim consumes the
// richer device descriptions in internal/device).
type Device struct {
	Name    string
	Workers int // concurrent work-groups; 0 means GOMAXPROCS
}

// HostDevice returns the default CPU host device.
func HostDevice() Device {
	return Device{Name: "host-cpu", Workers: runtime.GOMAXPROCS(0)}
}

// Event records timing for one submitted kernel, modelling SYCL events with
// profiling enabled.
type Event struct {
	Start, End time.Time
}

// Duration returns the wall-clock execution time of the kernel.
func (e Event) Duration() time.Duration { return e.End.Sub(e.Start) }

// Queue schedules kernels onto a device, in order. It is safe for concurrent
// use; kernels submitted from multiple goroutines execute independently.
type Queue struct {
	dev Device
}

// NewQueue returns a queue targeting dev.
func NewQueue(dev Device) *Queue {
	if dev.Workers <= 0 {
		dev.Workers = runtime.GOMAXPROCS(0)
	}
	return &Queue{dev: dev}
}

// Device returns the queue's device.
func (q *Queue) Device() Device { return q.dev }

// ParallelFor runs f for every point of the global range, partitioned over
// the device's workers. It corresponds to a flat SYCL parallel_for: no
// work-group structure and no barriers are available to f.
func (q *Queue) ParallelFor(global Range, f func(r, c int)) (Event, error) {
	if global.R <= 0 || global.C <= 0 {
		return Event{}, fmt.Errorf("sycl: non-positive global range %+v", global)
	}
	start := time.Now()
	workers := q.dev.Workers
	if workers > global.R {
		workers = global.R
	}
	var wg sync.WaitGroup
	rowsPer := (global.R + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := lo + rowsPer
		if hi > global.R {
			hi = global.R
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				for c := 0; c < global.C; c++ {
					f(r, c)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return Event{Start: start, End: time.Now()}, nil
}

// ParallelForWorkGroup runs kernel once per work-group of nd, with groups
// distributed across the device's workers. The kernel observes hierarchical
// SYCL semantics: inside it, g.ForEachItem iterates work-items with an
// implicit barrier between consecutive calls, and g.LocalFloat64 provides
// work-group local memory.
func (q *Queue) ParallelForWorkGroup(nd NDRange, kernel func(g *Group)) (Event, error) {
	if err := nd.Validate(); err != nil {
		return Event{}, err
	}
	start := time.Now()
	grid := nd.Groups()
	total := grid.Size()
	workers := q.dev.Workers
	if workers > total {
		workers = total
	}

	var next int64
	var mu sync.Mutex
	takeGroup := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(total) {
			return 0, false
		}
		id := int(next)
		next++
		return id, true
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker reuses one Group context (and therefore its local
			// memory arena) across the groups it executes.
			g := &Group{Grid: grid, LocalR: nd.Local, nd: nd}
			for {
				id, ok := takeGroup()
				if !ok {
					return
				}
				g.ID = Range{R: id / grid.C, C: id % grid.C}
				g.resetLocalCursor()
				for _, buf := range g.locals {
					for i := range buf {
						buf[i] = 0
					}
				}
				kernel(g)
			}
		}()
	}
	wg.Wait()
	return Event{Start: start, End: time.Now()}, nil
}
