package kmeans

import (
	"testing"

	"kernelselect/internal/mat"
	"kernelselect/internal/xrand"
)

// blobs generates k well-separated Gaussian clusters and returns the data
// with ground-truth labels.
func blobs(n, d, k int, seed uint64) (*mat.Dense, []int) {
	r := xrand.New(seed)
	centers := mat.NewDense(k, d)
	for c := 0; c < k; c++ {
		for j := 0; j < d; j++ {
			centers.Set(c, j, 20*float64(c)+r.NormFloat64())
		}
	}
	x := mat.NewDense(n, d)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = c
		row := x.Row(i)
		for j := 0; j < d; j++ {
			row[j] = centers.At(c, j) + r.NormFloat64()
		}
	}
	return x, truth
}

func TestRecoverWellSeparatedBlobs(t *testing.T) {
	x, truth := blobs(90, 4, 3, 5)
	res := Cluster(x, 3, 1, Options{})
	// Cluster labels are arbitrary; check that the partition matches the
	// truth partition exactly.
	mapping := map[int]int{}
	for i, l := range res.Labels {
		if want, ok := mapping[l]; ok {
			if want != truth[i] {
				t.Fatalf("cluster %d mixes truth classes %d and %d", l, want, truth[i])
			}
		} else {
			mapping[l] = truth[i]
		}
	}
	if len(mapping) != 3 {
		t.Fatalf("found %d clusters, want 3", len(mapping))
	}
}

func TestDeterministicForSeed(t *testing.T) {
	x, _ := blobs(50, 3, 4, 8)
	a := Cluster(x, 4, 99, Options{})
	b := Cluster(x, 4, 99, Options{})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	x, _ := blobs(60, 5, 3, 2)
	prev := Cluster(x, 1, 7, Options{}).Inertia
	for k := 2; k <= 8; k++ {
		cur := Cluster(x, k, 7, Options{}).Inertia
		if cur > prev+1e-9 {
			t.Fatalf("inertia increased from k=%d (%v) to k=%d (%v)", k-1, prev, k, cur)
		}
		prev = cur
	}
}

func TestKEqualsNGivesZeroInertia(t *testing.T) {
	x, _ := blobs(10, 2, 2, 3)
	res := Cluster(x, 10, 1, Options{})
	if res.Inertia > 1e-9 {
		t.Fatalf("k=n inertia = %v, want 0", res.Inertia)
	}
}

func TestPanicsOnBadK(t *testing.T) {
	x, _ := blobs(10, 2, 2, 3)
	for _, k := range []int{0, -1, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d accepted", k)
				}
			}()
			Cluster(x, k, 1, Options{})
		}()
	}
}

func TestLabelsMatchNearestCentroid(t *testing.T) {
	x, _ := blobs(40, 3, 3, 11)
	res := Cluster(x, 3, 4, Options{})
	for i, l := range res.Labels {
		if n := Nearest(res.Centroids, x.Row(i)); n != l {
			t.Fatalf("point %d labelled %d but nearest centroid is %d", i, l, n)
		}
	}
}

func TestMedoidPerCluster(t *testing.T) {
	x, _ := blobs(30, 4, 3, 17)
	res := Cluster(x, 3, 4, Options{})
	medoids := MedoidPerCluster(x, res)
	if len(medoids) != 3 {
		t.Fatal("medoid count")
	}
	for c, m := range medoids {
		if m < 0 {
			t.Fatalf("cluster %d has no medoid", c)
		}
		if res.Labels[m] != c {
			t.Fatalf("medoid %d not a member of cluster %d", m, c)
		}
		// No member of c is closer to the centroid than the medoid.
		md := mat.SqDist(x.Row(m), res.Centroids.Row(c))
		for i, l := range res.Labels {
			if l == c && mat.SqDist(x.Row(i), res.Centroids.Row(c)) < md-1e-12 {
				t.Fatalf("point %d closer to centroid than medoid of cluster %d", i, c)
			}
		}
	}
}

func TestDuplicatePointsHandled(t *testing.T) {
	// All points identical: k-means must still terminate and produce a
	// valid labelling (empty-cluster repair path).
	x := mat.NewDense(12, 3)
	for i := 0; i < 12; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, 5)
		}
	}
	res := Cluster(x, 3, 2, Options{})
	if res.Inertia > 1e-12 {
		t.Fatalf("identical points inertia = %v", res.Inertia)
	}
}
