package kmeans

import (
	"testing"

	"kernelselect/internal/mat"
	"kernelselect/internal/xrand"
)

// Property: Lloyd's algorithm never increases the assignment cost. Each
// assignment step picks the nearest centroid and each update step moves
// centroids to cluster means (with empty clusters re-seeded at data points),
// so the inertia measured at consecutive assignment steps must be
// non-increasing — for any data, any k, any seed.
func TestInertiaTraceNeverIncreases(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(60)
		d := 1 + rng.Intn(8)
		x := mat.NewDense(n, d)
		for i := 0; i < n; i++ {
			row := x.Row(i)
			for j := range row {
				switch rng.Intn(3) {
				case 0:
					row[j] = rng.NormFloat64()
				case 1:
					row[j] = 10 * rng.NormFloat64()
				default:
					row[j] = float64(rng.Intn(4)) // ties and duplicate points
				}
			}
		}
		k := 1 + rng.Intn(n)
		res := Cluster(x, k, rng.Uint64(), Options{Restarts: 2})
		if len(res.InertiaTrace) == 0 {
			t.Fatalf("trial %d: empty inertia trace", trial)
		}
		for i := 1; i < len(res.InertiaTrace); i++ {
			prev, cur := res.InertiaTrace[i-1], res.InertiaTrace[i]
			// Tolerate only floating-point noise, scaled to the magnitude.
			if cur > prev+1e-9*(1+prev) {
				t.Fatalf("trial %d (n=%d d=%d k=%d): inertia rose %v -> %v at iteration %d\ntrace: %v",
					trial, n, d, k, prev, cur, i, res.InertiaTrace)
			}
		}
		if got := res.InertiaTrace[len(res.InertiaTrace)-1]; got != res.Inertia {
			t.Fatalf("trial %d: final trace entry %v != reported inertia %v", trial, got, res.Inertia)
		}
	}
}
