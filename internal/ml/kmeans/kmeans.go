// Package kmeans implements Lloyd's algorithm with k-means++ seeding, one of
// the paper's clustering methods for choosing representative kernel
// configurations (used directly on the 640-dimensional normalized
// performance vectors and, as a separate method, on their PCA reduction).
package kmeans

import (
	"fmt"
	"math"

	"kernelselect/internal/mat"
	"kernelselect/internal/xrand"
)

// Result is a fitted clustering.
type Result struct {
	Centroids *mat.Dense // k×d
	Labels    []int      // per-sample cluster assignment
	Inertia   float64    // sum of squared distances to assigned centroids
	Iters     int        // Lloyd iterations of the winning restart

	// InertiaTrace records the inertia measured at each assignment step of
	// the winning restart. Lloyd's algorithm guarantees this sequence never
	// increases (each assignment picks the nearest centroid, each update
	// moves centroids to cluster means); the trace makes that invariant
	// observable — the property tests assert it on every run.
	InertiaTrace []float64
}

// Options tune the clustering. The zero value selects the defaults.
type Options struct {
	MaxIters int // per restart; default 100
	Restarts int // k-means++ restarts, best inertia wins; default 8
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 8
	}
	return o
}

// Cluster partitions the rows of x into k clusters. It panics if k is not in
// [1, rows]. The seed makes the result deterministic.
func Cluster(x *mat.Dense, k int, seed uint64, opts Options) *Result {
	n := x.Rows()
	if k < 1 || k > n {
		panic(fmt.Sprintf("kmeans: k=%d out of [1,%d]", k, n))
	}
	opts = opts.withDefaults()
	rng := xrand.New(seed)

	var best *Result
	for restart := 0; restart < opts.Restarts; restart++ {
		r := lloyd(x, k, rng, opts.MaxIters)
		if best == nil || r.Inertia < best.Inertia {
			best = r
		}
	}
	return best
}

func lloyd(x *mat.Dense, k int, rng *xrand.Rand, maxIters int) *Result {
	n := x.Rows()
	centroids := seedPlusPlus(x, k, rng)
	labels := make([]int, n)
	counts := make([]int, k)

	var inertia float64
	var trace []float64
	iters := 0
	for ; iters < maxIters; iters++ {
		changed := false
		inertia = 0
		for i := 0; i < n; i++ {
			bestC, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if dist := mat.SqDist(x.Row(i), centroids.Row(c)); dist < bestD {
					bestC, bestD = c, dist
				}
			}
			if labels[i] != bestC {
				labels[i] = bestC
				changed = true
			}
			inertia += bestD
		}
		trace = append(trace, inertia)
		if !changed && iters > 0 {
			break
		}
		// Recompute centroids.
		for c := 0; c < k; c++ {
			counts[c] = 0
			row := centroids.Row(c)
			for j := range row {
				row[j] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := labels[i]
			counts[c]++
			mat.Axpy(1, x.Row(i), centroids.Row(c))
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid assignment (a standard empty-cluster repair).
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					if dist := mat.SqDist(x.Row(i), centroids.Row(labels[i])); dist > farD {
						far, farD = i, dist
					}
				}
				copy(centroids.Row(c), x.Row(far))
				continue
			}
			mat.Scale(1/float64(counts[c]), centroids.Row(c))
		}
	}
	return &Result{Centroids: centroids, Labels: labels, Inertia: inertia, Iters: iters, InertiaTrace: trace}
}

// seedPlusPlus picks k initial centroids with D² weighting.
func seedPlusPlus(x *mat.Dense, k int, rng *xrand.Rand) *mat.Dense {
	n := x.Rows()
	centroids := mat.NewDense(k, x.Cols())
	first := rng.Intn(n)
	copy(centroids.Row(0), x.Row(first))

	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = mat.SqDist(x.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range d2 {
			total += v
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n) // all points coincide with a centroid
		} else {
			target := rng.Float64() * total
			var cum float64
			pick = n - 1
			for i, v := range d2 {
				cum += v
				if cum >= target {
					pick = i
					break
				}
			}
		}
		copy(centroids.Row(c), x.Row(pick))
		for i := range d2 {
			if dist := mat.SqDist(x.Row(i), centroids.Row(c)); dist < d2[i] {
				d2[i] = dist
			}
		}
	}
	return centroids
}

// Nearest returns the index of the centroid closest to v.
func Nearest(centroids *mat.Dense, v []float64) int {
	best, bestD := 0, math.Inf(1)
	for c := 0; c < centroids.Rows(); c++ {
		if d := mat.SqDist(centroids.Row(c), v); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// MedoidPerCluster returns, for each cluster, the index of the member row of
// x closest to the centroid (−1 for empty clusters). Medoids serve as the
// dataset-backed representatives the pruning methods need.
func MedoidPerCluster(x *mat.Dense, r *Result) []int {
	k := r.Centroids.Rows()
	medoids := make([]int, k)
	bestD := make([]float64, k)
	for c := range medoids {
		medoids[c] = -1
		bestD[c] = math.Inf(1)
	}
	for i, c := range r.Labels {
		if d := mat.SqDist(x.Row(i), r.Centroids.Row(c)); d < bestD[c] {
			medoids[c], bestD[c] = i, d
		}
	}
	return medoids
}
