package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"kernelselect/internal/mat"
)

func TestGeoMeanKnown(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %v, want 2", g)
	}
	if g := GeoMean([]float64{3, 3, 3}); math.Abs(g-3) > 1e-12 {
		t.Fatalf("GeoMean(3,3,3) = %v, want 3", g)
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// Geometric mean lies between min and max.
	f := func(a, b, c uint16) bool {
		vs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(vs)
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMeanPanics(t *testing.T) {
	for _, vs := range [][]float64{nil, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GeoMean(%v) did not panic", vs)
				}
			}()
			GeoMean(vs)
		}()
	}
}

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 2, 3, 4}, []int{1, 2, 0, 4}); a != 0.75 {
		t.Fatalf("Accuracy = %v, want 0.75", a)
	}
}

func TestAccuracyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Fatal("ArgMax basic")
	}
	if ArgMax([]float64{2, 2, 2}) != 0 {
		t.Fatal("ArgMax tie should pick first")
	}
}

func TestMajorityClass(t *testing.T) {
	c, n := MajorityClass([]int{3, 1, 3, 2, 3, 1})
	if c != 3 || n != 3 {
		t.Fatalf("MajorityClass = (%d,%d), want (3,3)", c, n)
	}
	// Tie resolves to smallest label.
	c, _ = MajorityClass([]int{5, 2, 5, 2})
	if c != 2 {
		t.Fatalf("tie resolved to %d, want 2", c)
	}
}

func TestSilhouetteSeparatedVsMixed(t *testing.T) {
	// Two tight, far-apart blobs → silhouette near 1; interleaved labels on
	// the same data → negative or near zero.
	var rows [][]float64
	var good, bad []int
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{float64(i) * 0.01, 0})
		good = append(good, 0)
		bad = append(bad, i%2)
	}
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{100 + float64(i)*0.01, 0})
		good = append(good, 1)
		bad = append(bad, i%2)
	}
	x := mat.FromRows(rows)
	if s := Silhouette(x, good); s < 0.95 {
		t.Fatalf("separated silhouette %v, want ≈1", s)
	}
	if s := Silhouette(x, bad); s > 0.1 {
		t.Fatalf("mixed silhouette %v, want ≈0 or negative", s)
	}
}

func TestSilhouetteExcludesNoise(t *testing.T) {
	x := mat.FromRows([][]float64{{0}, {0.1}, {10}, {10.1}, {500}})
	labels := []int{0, 0, 1, 1, -1}
	if s := Silhouette(x, labels); s < 0.9 {
		t.Fatalf("silhouette with noise excluded = %v", s)
	}
}

func TestSilhouettePanics(t *testing.T) {
	x := mat.FromRows([][]float64{{0}, {1}})
	for name, labels := range map[string][]int{
		"mismatch":    {0},
		"one cluster": {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			Silhouette(x, labels)
		}()
	}
}
