// Package metrics implements the evaluation measures used throughout the
// paper: the geometric mean of per-shape relative performance (the score of
// Figure 4 and Table I) and standard classification accuracy.
package metrics

import (
	"fmt"
	"math"

	"kernelselect/internal/mat"
)

// GeoMean returns the geometric mean of strictly positive values. It panics
// on an empty slice and returns an error-free 0 would be misleading for
// non-positive inputs, so those also panic.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		panic("metrics: GeoMean of empty slice")
	}
	var logSum float64
	for _, v := range vs {
		if v <= 0 {
			panic(fmt.Sprintf("metrics: GeoMean of non-positive value %v", v))
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vs)))
}

// Accuracy returns the fraction of positions where pred equals want.
func Accuracy(pred, want []int) float64 {
	if len(pred) != len(want) {
		panic("metrics: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		panic("metrics: Accuracy of empty slice")
	}
	hits := 0
	for i, p := range pred {
		if p == want[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// ArgMax returns the index of the maximum value (first occurrence on ties).
func ArgMax(vs []float64) int {
	if len(vs) == 0 {
		panic("metrics: ArgMax of empty slice")
	}
	best := 0
	for i, v := range vs {
		if v > vs[best] {
			best = i
		}
	}
	return best
}

// MajorityClass returns the most frequent label (smallest label on ties) and
// its count.
func MajorityClass(labels []int) (class, count int) {
	if len(labels) == 0 {
		panic("metrics: MajorityClass of empty slice")
	}
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	class, count = labels[0], 0
	for l, c := range counts {
		if c > count || (c == count && l < class) {
			class, count = l, c
		}
	}
	return class, count
}

// Silhouette returns the mean silhouette coefficient of a clustering over
// the rows of x: s(i) = (b(i) − a(i)) / max(a(i), b(i)) with a(i) the mean
// intra-cluster distance and b(i) the mean distance to the nearest other
// cluster. Points labelled -1 (noise) are excluded. It panics unless at
// least two clusters with members exist.
func Silhouette(x *mat.Dense, labels []int) float64 {
	if x.Rows() != len(labels) {
		panic("metrics: Silhouette length mismatch")
	}
	members := map[int][]int{}
	for i, l := range labels {
		if l >= 0 {
			members[l] = append(members[l], i)
		}
	}
	if len(members) < 2 {
		panic("metrics: Silhouette needs at least two clusters")
	}
	dist := func(i, j int) float64 { return math.Sqrt(mat.SqDist(x.Row(i), x.Row(j))) }

	var sum float64
	var count int
	for l, ms := range members {
		for _, i := range ms {
			var a float64
			if len(ms) > 1 {
				for _, j := range ms {
					if j != i {
						a += dist(i, j)
					}
				}
				a /= float64(len(ms) - 1)
			}
			b := math.Inf(1)
			for ol, oms := range members {
				if ol == l {
					continue
				}
				var d float64
				for _, j := range oms {
					d += dist(i, j)
				}
				d /= float64(len(oms))
				if d < b {
					b = d
				}
			}
			if len(ms) > 1 || b > 0 {
				denom := math.Max(a, b)
				if denom > 0 {
					sum += (b - a) / denom
				}
			}
			count++
		}
	}
	return sum / float64(count)
}
