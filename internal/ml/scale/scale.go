// Package scale provides feature standardization (zero mean, unit variance
// per column), the preprocessing step several of the classifiers in this
// repository rely on.
package scale

import (
	"fmt"

	"kernelselect/internal/mat"
)

// Scaler standardizes features using statistics captured by Fit.
type Scaler struct {
	Means, Stds []float64
}

// Fit computes per-column means and standard deviations of x. Zero-variance
// columns scale by 1 (they become identically zero after centering).
func Fit(x *mat.Dense) *Scaler {
	means := mat.ColMeans(x)
	return &Scaler{Means: means, Stds: mat.ColStds(x, means)}
}

// Transform returns a standardized copy of x.
func (s *Scaler) Transform(x *mat.Dense) *mat.Dense {
	if x.Cols() != len(s.Means) {
		panic(fmt.Sprintf("scale: %d columns, scaler fitted on %d", x.Cols(), len(s.Means)))
	}
	out := x.Clone()
	for i := 0; i < out.Rows(); i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - s.Means[j]) / s.Stds[j]
		}
	}
	return out
}

// TransformRow standardizes a single feature vector.
func (s *Scaler) TransformRow(v []float64) []float64 {
	if len(v) != len(s.Means) {
		panic(fmt.Sprintf("scale: row length %d, scaler fitted on %d", len(v), len(s.Means)))
	}
	out := make([]float64, len(v))
	for j, x := range v {
		out[j] = (x - s.Means[j]) / s.Stds[j]
	}
	return out
}

// FitTransform fits a scaler on x and returns both.
func FitTransform(x *mat.Dense) (*Scaler, *mat.Dense) {
	s := Fit(x)
	return s, s.Transform(x)
}
