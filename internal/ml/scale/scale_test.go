package scale

import (
	"math"
	"testing"

	"kernelselect/internal/mat"
)

func TestFitTransformStandardizes(t *testing.T) {
	x := mat.FromRows([][]float64{
		{1, 100, 5},
		{2, 200, 5},
		{3, 300, 5},
		{4, 400, 5},
	})
	_, z := FitTransform(x)
	means := mat.ColMeans(z)
	for j, m := range means {
		if math.Abs(m) > 1e-12 {
			t.Fatalf("column %d mean %v after scaling", j, m)
		}
	}
	stds := mat.ColStds(z, means)
	if math.Abs(stds[0]-1) > 1e-12 || math.Abs(stds[1]-1) > 1e-12 {
		t.Fatalf("scaled stds = %v", stds)
	}
	// Constant column becomes identically zero.
	for i := 0; i < z.Rows(); i++ {
		if z.At(i, 2) != 0 {
			t.Fatal("constant column not zeroed")
		}
	}
}

func TestTransformDoesNotMutate(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	s := Fit(x)
	_ = s.Transform(x)
	if x.At(0, 0) != 1 {
		t.Fatal("Transform mutated its input")
	}
}

func TestTransformRowMatchesTransform(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 10}, {2, 20}, {3, 35}})
	s := Fit(x)
	z := s.Transform(x)
	for i := 0; i < x.Rows(); i++ {
		row := s.TransformRow(x.Row(i))
		for j := range row {
			if row[j] != z.At(i, j) {
				t.Fatalf("TransformRow mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	s := Fit(mat.FromRows([][]float64{{1, 2}, {3, 4}}))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Transform with wrong width did not panic")
			}
		}()
		s.Transform(mat.NewDense(2, 3))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("TransformRow with wrong length did not panic")
			}
		}()
		s.TransformRow([]float64{1})
	}()
}
