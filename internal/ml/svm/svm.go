// Package svm implements C-support-vector classification with linear and
// RBF kernels, trained one-vs-rest with the SMO dual solver — the
// "LinearSVM" and "RadialSVM" rows of the paper's Table I.
//
// The RBF default follows the scikit-learn convention of the paper's era
// (gamma = 1/n_features, the pre-0.22 "auto" default). On raw matrix-size
// features, whose pairwise squared distances are astronomically large, that
// gamma drives every off-diagonal kernel entry to zero: the kernel matrix
// degenerates to the identity, each one-vs-rest decision value collapses to
// its intercept, and the intercepts rank classes by frequency — so the
// classifier predicts the majority class everywhere. That is exactly why
// the paper's RadialSVM sits at ≈55% in Table I while the other classifiers
// remain competitive; the solver reproduces the mechanism rather than
// hard-coding the outcome.
package svm

import (
	"fmt"
	"math"

	"kernelselect/internal/mat"
	"kernelselect/internal/xrand"
)

// Kernel computes k(a, b).
type Kernel func(a, b []float64) float64

// LinearKernel is the inner-product kernel.
func LinearKernel(a, b []float64) float64 { return mat.Dot(a, b) }

// RBFKernel returns the Gaussian kernel with width gamma.
func RBFKernel(gamma float64) Kernel {
	return func(a, b []float64) float64 {
		return math.Exp(-gamma * mat.SqDist(a, b))
	}
}

// smoOptions are the solver parameters shared by both kernels.
type smoOptions struct {
	c         float64
	tol       float64
	maxPasses int
	seed      uint64
}

// binaryModel is one fitted binary C-SVC: the dual coefficients α_i·y_i over
// the training points plus the intercept.
type binaryModel struct {
	coef []float64 // α_i · y_i
	b    float64
}

// smo trains a binary C-SVC with the simplified SMO algorithm (Platt).
// y must be ±1. k is the precomputed kernel matrix of the training data.
func smo(k *mat.Dense, y []float64, o smoOptions) binaryModel {
	n := len(y)
	alpha := make([]float64, n)
	b := 0.0
	rng := xrand.New(o.seed)

	f := func(i int) float64 {
		var s float64
		ki := k.Row(i)
		for j, a := range alpha {
			if a != 0 {
				s += a * y[j] * ki[j]
			}
		}
		return s + b
	}

	passes := 0
	for passes < o.maxPasses {
		numChanged := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if !((y[i]*ei < -o.tol && alpha[i] < o.c) || (y[i]*ei > o.tol && alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - y[j]
			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(o.c, o.c+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-o.c)
				hi = math.Min(o.c, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*k.At(i, j) - k.At(i, i) - k.At(j, j)
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-5 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)
			alpha[i], alpha[j] = aiNew, ajNew

			b1 := b - ei - y[i]*(aiNew-ai)*k.At(i, i) - y[j]*(ajNew-aj)*k.At(i, j)
			b2 := b - ej - y[i]*(aiNew-ai)*k.At(i, j) - y[j]*(ajNew-aj)*k.At(j, j)
			switch {
			case aiNew > 0 && aiNew < o.c:
				b = b1
			case ajNew > 0 && ajNew < o.c:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			numChanged++
		}
		if numChanged == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	m := binaryModel{coef: make([]float64, n), b: b}
	for i, a := range alpha {
		m.coef[i] = a * y[i]
	}
	return m
}

// ovr trains one binary model per class against the rest.
func ovr(k *mat.Dense, labels []int, classes int, o smoOptions) []binaryModel {
	n := len(labels)
	models := make([]binaryModel, classes)
	y := make([]float64, n)
	for c := 0; c < classes; c++ {
		for i, l := range labels {
			if l == c {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		oc := o
		oc.seed = o.seed + uint64(c)*0x9e3779b9
		models[c] = smo(k, y, oc)
	}
	return models
}

func kernelMatrix(x *mat.Dense, kern Kernel) *mat.Dense {
	n := x.Rows()
	k := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := kern(x.Row(i), x.Row(j))
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	return k
}

// ---------------------------------------------------------------------------
// Linear SVM
// ---------------------------------------------------------------------------

// LinearOptions configure the linear SVM. The zero value selects defaults.
type LinearOptions struct {
	C         float64 // box constraint; default 1
	Tol       float64 // KKT tolerance; default 1e-3
	MaxPasses int     // SMO no-change passes before stopping; default 10
	Seed      uint64
}

func (o LinearOptions) smo() smoOptions {
	s := smoOptions{c: o.C, tol: o.Tol, maxPasses: o.MaxPasses, seed: o.Seed}
	if s.c <= 0 {
		s.c = 1
	}
	if s.tol <= 0 {
		s.tol = 1e-3
	}
	if s.maxPasses <= 0 {
		s.maxPasses = 10
	}
	return s
}

// Linear is a fitted one-vs-rest linear SVM. The dual solution is collapsed
// to explicit weights for O(d) prediction.
type Linear struct {
	W       *mat.Dense // classes×d
	B       []float64
	Classes int
}

// FitLinear trains a one-vs-rest linear C-SVC with SMO.
func FitLinear(x *mat.Dense, y []int, classes int, opts LinearOptions) *Linear {
	checkLabels(x, y, classes)
	k := kernelMatrix(x, LinearKernel)
	models := ovr(k, y, classes, opts.smo())

	m := &Linear{W: mat.NewDense(classes, x.Cols()), B: make([]float64, classes), Classes: classes}
	for c, bm := range models {
		w := m.W.Row(c)
		for i, coef := range bm.coef {
			if coef != 0 {
				mat.Axpy(coef, x.Row(i), w)
			}
		}
		m.B[c] = bm.b
	}
	return m
}

// Decision returns the per-class decision values for x.
func (m *Linear) Decision(x []float64) []float64 {
	out := make([]float64, m.Classes)
	for c := 0; c < m.Classes; c++ {
		out[c] = mat.Dot(m.W.Row(c), x) + m.B[c]
	}
	return out
}

// Predict returns the class with the largest decision value.
func (m *Linear) Predict(x []float64) int { return argMax(m.Decision(x)) }

// NumFeatures returns the training feature width (0 on an unfitted model).
func (m *Linear) NumFeatures() int {
	if m.W == nil {
		return 0
	}
	return m.W.Cols()
}

// ---------------------------------------------------------------------------
// RBF SVM
// ---------------------------------------------------------------------------

// RBFOptions configure the RBF-kernel SVM. The zero value selects defaults.
type RBFOptions struct {
	C         float64 // box constraint; default 1
	Gamma     float64 // kernel width; default 1/n_features (sklearn pre-0.22 "auto")
	Tol       float64 // KKT tolerance; default 1e-3
	MaxPasses int     // default 10
	Seed      uint64
}

func (o RBFOptions) smo() smoOptions {
	s := smoOptions{c: o.C, tol: o.Tol, maxPasses: o.MaxPasses, seed: o.Seed}
	if s.c <= 0 {
		s.c = 1
	}
	if s.tol <= 0 {
		s.tol = 1e-3
	}
	if s.maxPasses <= 0 {
		s.maxPasses = 10
	}
	return s
}

// RBF is a fitted one-vs-rest RBF-kernel SVM; training points are retained
// for kernel evaluation at prediction time.
type RBF struct {
	X       *mat.Dense
	Coef    *mat.Dense // classes×n dual coefficients (α·y)
	B       []float64
	Gamma   float64
	Classes int
}

// FitRBF trains a one-vs-rest RBF C-SVC with SMO.
func FitRBF(x *mat.Dense, y []int, classes int, opts RBFOptions) *RBF {
	checkLabels(x, y, classes)
	gamma := opts.Gamma
	if gamma <= 0 {
		gamma = 1 / float64(x.Cols())
	}
	k := kernelMatrix(x, RBFKernel(gamma))
	models := ovr(k, y, classes, opts.smo())

	m := &RBF{
		X:       x.Clone(),
		Coef:    mat.NewDense(classes, x.Rows()),
		B:       make([]float64, classes),
		Gamma:   gamma,
		Classes: classes,
	}
	for c, bm := range models {
		copy(m.Coef.Row(c), bm.coef)
		m.B[c] = bm.b
	}
	return m
}

// Decision returns the per-class decision values for x.
func (m *RBF) Decision(x []float64) []float64 {
	n := m.X.Rows()
	kx := make([]float64, n)
	kern := RBFKernel(m.Gamma)
	for j := 0; j < n; j++ {
		kx[j] = kern(m.X.Row(j), x)
	}
	out := make([]float64, m.Classes)
	for c := 0; c < m.Classes; c++ {
		out[c] = mat.Dot(m.Coef.Row(c), kx) + m.B[c]
	}
	return out
}

// Predict returns the class with the largest decision value.
func (m *RBF) Predict(x []float64) int { return argMax(m.Decision(x)) }

// NumFeatures returns the training feature width (0 on an unfitted model).
func (m *RBF) NumFeatures() int {
	if m.X == nil {
		return 0
	}
	return m.X.Cols()
}

func checkLabels(x *mat.Dense, y []int, classes int) {
	if x.Rows() != len(y) {
		panic(fmt.Sprintf("svm: %d feature rows vs %d labels", x.Rows(), len(y)))
	}
	if x.Rows() == 0 {
		panic("svm: empty training set")
	}
	if classes <= 0 {
		panic("svm: classes must be positive")
	}
	for _, l := range y {
		if l < 0 || l >= classes {
			panic(fmt.Sprintf("svm: label %d out of [0,%d)", l, classes))
		}
	}
}

func argMax(vs []float64) int {
	best := 0
	for i, v := range vs {
		if v > vs[best] {
			best = i
		}
	}
	return best
}
