package svm

import "fmt"

// Validate checks that a linear model — typically one deserialised from an
// untrusted artifact — can score numFeatures-wide inputs without panicking:
// a weight matrix of Classes rows × numFeatures columns and a matching bias
// vector. Fitted models always pass.
func (m *Linear) Validate(numFeatures int) error {
	if m.Classes <= 0 {
		return fmt.Errorf("svm: linear model has %d classes", m.Classes)
	}
	if m.W == nil {
		return fmt.Errorf("svm: linear model has no weights")
	}
	if m.W.Rows() != m.Classes || m.W.Cols() != numFeatures {
		return fmt.Errorf("svm: weight matrix is %dx%d, want %dx%d",
			m.W.Rows(), m.W.Cols(), m.Classes, numFeatures)
	}
	if len(m.B) != m.Classes {
		return fmt.Errorf("svm: %d biases for %d classes", len(m.B), m.Classes)
	}
	return nil
}

// Validate checks that an RBF model — typically one deserialised from an
// untrusted artifact — can score numFeatures-wide inputs without panicking:
// retained training points of the right width, dual coefficients of
// Classes rows × training-points columns, and a matching bias vector.
// Fitted models always pass.
func (m *RBF) Validate(numFeatures int) error {
	if m.Classes <= 0 {
		return fmt.Errorf("svm: rbf model has %d classes", m.Classes)
	}
	if m.X == nil {
		return fmt.Errorf("svm: rbf model has no training points")
	}
	if m.X.Cols() != numFeatures {
		return fmt.Errorf("svm: rbf training points have %d features, want %d", m.X.Cols(), numFeatures)
	}
	if m.Coef == nil {
		return fmt.Errorf("svm: rbf model has no dual coefficients")
	}
	if m.Coef.Rows() != m.Classes || m.Coef.Cols() != m.X.Rows() {
		return fmt.Errorf("svm: coefficient matrix is %dx%d, want %dx%d",
			m.Coef.Rows(), m.Coef.Cols(), m.Classes, m.X.Rows())
	}
	if len(m.B) != m.Classes {
		return fmt.Errorf("svm: %d biases for %d classes", len(m.B), m.Classes)
	}
	return nil
}
