package svm

import (
	"testing"

	"kernelselect/internal/mat"
	"kernelselect/internal/ml/metrics"
	"kernelselect/internal/xrand"
)

// separable builds linearly separable 2-class data with margin.
func separable(n int, seed uint64) (*mat.Dense, []int) {
	r := xrand.New(seed)
	x := mat.NewDense(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		off := -2.0
		if c == 1 {
			off = 2
		}
		x.Set(i, 0, off+0.5*r.NormFloat64())
		x.Set(i, 1, off+0.5*r.NormFloat64())
	}
	return x, y
}

// threeBlobs builds three linearly separable classes.
func threeBlobs(n int, seed uint64) (*mat.Dense, []int) {
	r := xrand.New(seed)
	centers := [][2]float64{{0, 0}, {6, 0}, {0, 6}}
	x := mat.NewDense(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		y[i] = c
		x.Set(i, 0, centers[c][0]+0.6*r.NormFloat64())
		x.Set(i, 1, centers[c][1]+0.6*r.NormFloat64())
	}
	return x, y
}

func TestLinearSeparable(t *testing.T) {
	x, y := separable(100, 1)
	m := FitLinear(x, y, 2, LinearOptions{Seed: 2})
	pred := make([]int, len(y))
	for i := range y {
		pred[i] = m.Predict(x.Row(i))
	}
	if acc := metrics.Accuracy(pred, y); acc < 0.98 {
		t.Fatalf("linear SVM accuracy %v < 0.98 on separable data", acc)
	}
}

func TestLinearMulticlass(t *testing.T) {
	x, y := threeBlobs(150, 3)
	m := FitLinear(x, y, 3, LinearOptions{Seed: 4})
	xt, yt := threeBlobs(90, 55)
	pred := make([]int, len(yt))
	for i := range yt {
		pred[i] = m.Predict(xt.Row(i))
	}
	if acc := metrics.Accuracy(pred, yt); acc < 0.95 {
		t.Fatalf("OvR linear SVM accuracy %v < 0.95", acc)
	}
}

func TestLinearDeterministic(t *testing.T) {
	x, y := separable(60, 5)
	a := FitLinear(x, y, 2, LinearOptions{Seed: 9})
	b := FitLinear(x, y, 2, LinearOptions{Seed: 9})
	for c := 0; c < 2; c++ {
		for j := 0; j < 2; j++ {
			if a.W.At(c, j) != b.W.At(c, j) {
				t.Fatal("same seed produced different weights")
			}
		}
	}
}

func TestRBFSolvesXor(t *testing.T) {
	// XOR is not linearly separable; an RBF SVM with a sane gamma separates
	// it exactly.
	var rows [][]float64
	var y []int
	r := xrand.New(6)
	for i := 0; i < 80; i++ {
		a, b := float64(i%2), float64((i/2)%2)
		rows = append(rows, []float64{a + 0.1*r.NormFloat64(), b + 0.1*r.NormFloat64()})
		cls := 0
		if (a == 1) != (b == 1) {
			cls = 1
		}
		y = append(y, cls)
	}
	x := mat.FromRows(rows)
	m := FitRBF(x, y, 2, RBFOptions{Gamma: 2, Seed: 7})
	pred := make([]int, len(y))
	for i := range y {
		pred[i] = m.Predict(x.Row(i))
	}
	if acc := metrics.Accuracy(pred, y); acc < 0.95 {
		t.Fatalf("RBF SVM XOR accuracy %v < 0.95", acc)
	}
}

func TestRBFTinyGammaCollapsesToMajorityClass(t *testing.T) {
	// The paper-era sklearn default gamma (1/n_features) on raw matrix-size
	// features zeroes all off-diagonal kernel entries; the classifier must
	// then predict the majority class everywhere (Table I's ~55% RadialSVM
	// row). Reproduce the mechanism: huge feature scales + default gamma.
	r := xrand.New(8)
	n := 60
	x := mat.NewDense(n, 3)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(1+r.Intn(1_000_000)))
		x.Set(i, 1, float64(1+r.Intn(10_000)))
		x.Set(i, 2, float64(1+r.Intn(5_000)))
		if i%3 == 0 {
			y[i] = 1 // minority
		}
	}
	m := FitRBF(x, y, 2, RBFOptions{Seed: 9}) // default gamma = 1/3
	maj, _ := metrics.MajorityClass(y)
	for trial := 0; trial < 20; trial++ {
		probe := []float64{float64(1 + r.Intn(1_000_000)), float64(1 + r.Intn(10_000)), float64(1 + r.Intn(5_000))}
		if got := m.Predict(probe); got != maj {
			t.Fatalf("degenerate RBF predicted %d, want majority %d", got, maj)
		}
	}
}

func TestDecisionLengths(t *testing.T) {
	x, y := threeBlobs(30, 10)
	lin := FitLinear(x, y, 3, LinearOptions{})
	if len(lin.Decision(x.Row(0))) != 3 {
		t.Fatal("linear decision length")
	}
	rbf := FitRBF(x, y, 3, RBFOptions{Gamma: 1})
	if len(rbf.Decision(x.Row(0))) != 3 {
		t.Fatal("rbf decision length")
	}
}

func TestFitPanicsOnBadLabels(t *testing.T) {
	x, _ := separable(10, 11)
	bad := []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 7}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("linear: bad label accepted")
			}
		}()
		FitLinear(x, bad, 2, LinearOptions{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("rbf: bad label accepted")
			}
		}()
		FitRBF(x, bad, 2, RBFOptions{})
	}()
}
