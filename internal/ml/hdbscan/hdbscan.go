// Package hdbscan implements the HDBSCAN* density-based clustering
// algorithm (Campello, Moulavi & Sander), the second clustering method the
// paper evaluates for pruning kernel configurations.
//
// The pipeline follows the reference formulation:
//
//  1. core distances (distance to the MinSamples-th nearest neighbour,
//     counting the point itself);
//  2. the mutual-reachability graph
//     mr(a,b) = max(core(a), core(b), d(a,b));
//  3. a minimum spanning tree of that graph (Prim, O(n²) — the datasets
//     here are ~10² points);
//  4. the single-linkage dendrogram from the sorted MST edges;
//  5. the condensed tree under MinClusterSize, tracking the λ = 1/distance
//     at which points fall out of clusters;
//  6. cluster extraction by excess-of-mass stability.
//
// Points in no selected cluster are labelled -1 (noise).
package hdbscan

import (
	"fmt"
	"math"
	"sort"

	"kernelselect/internal/mat"
	"kernelselect/internal/par"
)

// Options configure the clustering. The zero value selects the defaults.
type Options struct {
	MinClusterSize int // smallest cluster size; default 5
	MinSamples     int // core-distance neighbour count; default = MinClusterSize
	// Workers bounds the parallelism of the O(n²) distance stages
	// (0 = GOMAXPROCS). Distances are pure per-element computations, so the
	// clustering is identical at any setting.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MinClusterSize <= 0 {
		o.MinClusterSize = 5
	}
	if o.MinSamples <= 0 {
		o.MinSamples = o.MinClusterSize
	}
	return o
}

// Result is a fitted clustering.
type Result struct {
	Labels      []int // per-point cluster id in [0, NumClusters), or -1 for noise
	NumClusters int
	Stabilities []float64 // per-cluster excess-of-mass stability
}

// Cluster runs HDBSCAN* on the rows of x.
func Cluster(x *mat.Dense, opts Options) *Result {
	opts = opts.withDefaults()
	n := x.Rows()
	if n == 0 {
		panic("hdbscan: empty input")
	}
	if opts.MinSamples > n {
		opts.MinSamples = n
	}
	if n < 2*opts.MinClusterSize {
		// No split can produce two valid clusters; everything is one cluster
		// (or noise if the set itself is below the minimum size).
		labels := make([]int, n)
		if n < opts.MinClusterSize {
			for i := range labels {
				labels[i] = -1
			}
			return &Result{Labels: labels, NumClusters: 0}
		}
		return &Result{Labels: labels, NumClusters: 1, Stabilities: []float64{0}}
	}

	dist := pairwise(x, opts.Workers)
	core := coreDistances(dist, opts.MinSamples, opts.Workers)
	edges := mstEdges(dist, core)
	dendro := singleLinkage(edges, n)
	cond := condense(dendro, n, opts.MinClusterSize)
	return extract(cond, n)
}

// pairwise fills the symmetric distance matrix, one source row per task.
// Task i writes d(i,j) and its mirror d(j,i) only for j > i, so no two
// tasks touch the same element and the matrix is identical at any worker
// count.
func pairwise(x *mat.Dense, workers int) *mat.Dense {
	n := x.Rows()
	d := mat.NewDense(n, n)
	par.Do(workers, n, func(i int) {
		for j := i + 1; j < n; j++ {
			v := math.Sqrt(mat.SqDist(x.Row(i), x.Row(j)))
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
	})
	return d
}

func coreDistances(dist *mat.Dense, minSamples, workers int) []float64 {
	n := dist.Rows()
	core := make([]float64, n)
	par.Do(workers, n, func(i int) {
		row := append([]float64(nil), dist.Row(i)...)
		sort.Float64s(row) // row[0] = 0 (self)
		core[i] = row[minSamples-1]
	})
	return core
}

type edge struct {
	a, b int
	w    float64
}

// mstEdges computes the MST of the mutual-reachability graph with Prim's
// algorithm.
func mstEdges(dist *mat.Dense, core []float64) []edge {
	n := dist.Rows()
	inTree := make([]bool, n)
	bestW := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range bestW {
		bestW[i] = math.Inf(1)
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		bestW[j] = mreach(dist, core, 0, j)
		bestFrom[j] = 0
	}
	edges := make([]edge, 0, n-1)
	for len(edges) < n-1 {
		next, nextW := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !inTree[j] && bestW[j] < nextW {
				next, nextW = j, bestW[j]
			}
		}
		edges = append(edges, edge{a: bestFrom[next], b: next, w: nextW})
		inTree[next] = true
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if w := mreach(dist, core, next, j); w < bestW[j] {
					bestW[j] = w
					bestFrom[j] = next
				}
			}
		}
	}
	return edges
}

func mreach(dist *mat.Dense, core []float64, a, b int) float64 {
	w := dist.At(a, b)
	if core[a] > w {
		w = core[a]
	}
	if core[b] > w {
		w = core[b]
	}
	return w
}

// dendroNode is a merge in the single-linkage tree. Nodes 0..n-1 are the
// points; node n+i is the i-th merge.
type dendroNode struct {
	left, right int
	dist        float64
	size        int
}

func singleLinkage(edges []edge, n int) []dendroNode {
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	parent := make([]int, 2*n-1)
	size := make([]int, 2*n-1)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	nodes := make([]dendroNode, 0, n-1)
	next := n
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		nodes = append(nodes, dendroNode{left: ra, right: rb, dist: e.w, size: size[ra] + size[rb]})
		parent[ra] = next
		parent[rb] = next
		size[next] = size[ra] + size[rb]
		next++
	}
	return nodes
}

// condCluster is a node of the condensed tree.
type condCluster struct {
	parent      int
	birthLambda float64
	children    []int
	// exits: points that fall out of this cluster directly, with the λ at
	// which they leave.
	exitPoints  []int
	exitLambdas []float64
	size        int
	stability   float64
}

// condense walks the dendrogram top-down and produces the condensed tree.
func condense(dendro []dendroNode, n, minClusterSize int) []condCluster {
	lambdaOf := func(dist float64) float64 {
		if dist <= 0 {
			return math.Inf(1)
		}
		return 1 / dist
	}

	// Dendrogram child lookup: node id → dendroNode (for internal nodes).
	nodeOf := func(id int) dendroNode { return dendro[id-n] }
	sizeOf := func(id int) int {
		if id < n {
			return 1
		}
		return nodeOf(id).size
	}

	root := condCluster{parent: -1, birthLambda: 0, size: n}
	clusters := []condCluster{root}

	// collectPoints gathers all leaf points under a dendrogram node.
	var collectPoints func(id int, out *[]int)
	collectPoints = func(id int, out *[]int) {
		if id < n {
			*out = append(*out, id)
			return
		}
		nd := nodeOf(id)
		collectPoints(nd.left, out)
		collectPoints(nd.right, out)
	}

	// process walks the dendrogram below node `id`, which currently belongs
	// to condensed cluster `cl`.
	type item struct {
		id int
		cl int
	}
	stack := []item{{id: n + len(dendro) - 1, cl: 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		if it.id < n {
			// A bare point reached while descending: it exits its cluster
			// at the λ of the merge that isolated it. That λ was recorded
			// by the parent handling below; points only appear on the stack
			// through the split/fall-out logic which records them directly,
			// so reaching here means a singleton root (n == 1), handled in
			// Cluster.
			continue
		}
		nd := nodeOf(it.id)
		lambda := lambdaOf(nd.dist)
		ls, rs := sizeOf(nd.left), sizeOf(nd.right)

		switch {
		case ls >= minClusterSize && rs >= minClusterSize:
			// True split: two new condensed clusters are born at λ.
			for _, child := range []int{nd.left, nd.right} {
				clusters = append(clusters, condCluster{
					parent:      it.cl,
					birthLambda: lambda,
					size:        sizeOf(child),
				})
				ci := len(clusters) - 1
				clusters[it.cl].children = append(clusters[it.cl].children, ci)
				stack = append(stack, item{id: child, cl: ci})
			}
		case ls >= minClusterSize || rs >= minClusterSize:
			// One side falls out as noise points at λ; the cluster
			// continues down the surviving side.
			big, small := nd.left, nd.right
			if rs >= minClusterSize {
				big, small = nd.right, nd.left
			}
			var pts []int
			collectPoints(small, &pts)
			c := &clusters[it.cl]
			for _, p := range pts {
				c.exitPoints = append(c.exitPoints, p)
				c.exitLambdas = append(c.exitLambdas, lambda)
			}
			stack = append(stack, item{id: big, cl: it.cl})
		default:
			// Both sides below the minimum size: the cluster dies here and
			// all remaining points exit at λ.
			var pts []int
			collectPoints(it.id, &pts)
			c := &clusters[it.cl]
			for _, p := range pts {
				c.exitPoints = append(c.exitPoints, p)
				c.exitLambdas = append(c.exitLambdas, lambda)
			}
		}
	}

	// Stabilities: each point contributes (λ_exit − λ_birth); each child
	// cluster contributes size·(λ_child_birth − λ_birth).
	maxLambda := 0.0
	for i := range clusters {
		for _, l := range clusters[i].exitLambdas {
			if !math.IsInf(l, 1) && l > maxLambda {
				maxLambda = l
			}
		}
		if b := clusters[i].birthLambda; !math.IsInf(b, 1) && b > maxLambda {
			maxLambda = b
		}
	}
	if maxLambda == 0 {
		maxLambda = 1
	}
	capLambda := func(l float64) float64 {
		if math.IsInf(l, 1) {
			return 2 * maxLambda // finite stand-in for "never merges"
		}
		return l
	}
	for i := range clusters {
		c := &clusters[i]
		birth := capLambda(c.birthLambda)
		for _, l := range c.exitLambdas {
			c.stability += capLambda(l) - birth
		}
		for _, ch := range c.children {
			c.stability += float64(clusters[ch].size) * (capLambda(clusters[ch].birthLambda) - birth)
		}
	}
	return clusters
}

// extract selects clusters by excess of mass and assigns labels.
func extract(clusters []condCluster, n int) *Result {
	selected := make([]bool, len(clusters))
	subtree := make([]float64, len(clusters))

	// Process children before parents; children always have larger indices
	// than their parents by construction.
	for i := len(clusters) - 1; i >= 0; i-- {
		c := &clusters[i]
		if len(c.children) == 0 {
			subtree[i] = c.stability
			if i != 0 { // the root is never selected
				selected[i] = true
			}
			continue
		}
		var childSum float64
		for _, ch := range c.children {
			childSum += subtree[ch]
		}
		if i != 0 && c.stability > childSum {
			selected[i] = true
			deselectDescendants(clusters, selected, i)
			subtree[i] = c.stability
		} else {
			subtree[i] = childSum
		}
	}

	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var stabilities []float64
	id := 0
	for i := range clusters {
		if !selected[i] {
			continue
		}
		assignMembers(clusters, i, id, labels)
		stabilities = append(stabilities, clusters[i].stability)
		id++
	}
	return &Result{Labels: labels, NumClusters: id, Stabilities: stabilities}
}

func deselectDescendants(clusters []condCluster, selected []bool, i int) {
	for _, ch := range clusters[i].children {
		selected[ch] = false
		deselectDescendants(clusters, selected, ch)
	}
}

// assignMembers labels every point that exits cluster i or any descendant.
func assignMembers(clusters []condCluster, i, label int, labels []int) {
	for _, p := range clusters[i].exitPoints {
		labels[p] = label
	}
	for _, ch := range clusters[i].children {
		assignMembers(clusters, ch, label, labels)
	}
}

// Exemplars returns one representative point index per cluster: the medoid
// (member minimising the summed distance to its co-members). Noise points
// are ignored. The representatives feed the paper's configuration-pruning
// step.
func Exemplars(x *mat.Dense, r *Result) []int {
	if len(r.Labels) != x.Rows() {
		panic(fmt.Sprintf("hdbscan: %d labels for %d points", len(r.Labels), x.Rows()))
	}
	members := make([][]int, r.NumClusters)
	for i, l := range r.Labels {
		if l >= 0 {
			members[l] = append(members[l], i)
		}
	}
	ex := make([]int, r.NumClusters)
	for c, ms := range members {
		best, bestSum := -1, math.Inf(1)
		for _, i := range ms {
			var sum float64
			for _, j := range ms {
				sum += math.Sqrt(mat.SqDist(x.Row(i), x.Row(j)))
			}
			if sum < bestSum {
				best, bestSum = i, sum
			}
		}
		ex[c] = best
	}
	return ex
}
