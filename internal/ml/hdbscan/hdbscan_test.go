package hdbscan

import (
	"testing"

	"kernelselect/internal/mat"
	"kernelselect/internal/xrand"
)

// blobsWithNoise builds k tight Gaussian blobs plus uniform background
// noise, the canonical HDBSCAN test case.
func blobsWithNoise(perCluster, k, noise int, seed uint64) (*mat.Dense, []int) {
	r := xrand.New(seed)
	n := perCluster*k + noise
	x := mat.NewDense(n, 2)
	truth := make([]int, n)
	idx := 0
	for c := 0; c < k; c++ {
		cx, cy := 30*float64(c), 10*float64(c%2)
		for i := 0; i < perCluster; i++ {
			x.Set(idx, 0, cx+r.NormFloat64())
			x.Set(idx, 1, cy+r.NormFloat64())
			truth[idx] = c
			idx++
		}
	}
	for i := 0; i < noise; i++ {
		x.Set(idx, 0, 200*r.Float64()-50)
		x.Set(idx, 1, 200*r.Float64()-50)
		truth[idx] = -1
		idx++
	}
	return x, truth
}

func TestRecoverBlobs(t *testing.T) {
	x, truth := blobsWithNoise(25, 3, 0, 1)
	res := Cluster(x, Options{MinClusterSize: 5})
	if res.NumClusters != 3 {
		t.Fatalf("found %d clusters, want 3", res.NumClusters)
	}
	// Every blob maps to exactly one cluster label.
	mapping := map[int]int{}
	for i, l := range res.Labels {
		if l < 0 {
			continue
		}
		if want, ok := mapping[truth[i]]; ok {
			if want != l {
				t.Fatalf("blob %d split across clusters %d and %d", truth[i], want, l)
			}
		} else {
			mapping[truth[i]] = l
		}
	}
	if len(mapping) != 3 {
		t.Fatalf("blobs map to %d clusters", len(mapping))
	}
	// Dense blobs should have almost no noise points.
	noise := 0
	for _, l := range res.Labels {
		if l == -1 {
			noise++
		}
	}
	if noise > 5 {
		t.Fatalf("%d of 75 dense points labelled noise", noise)
	}
}

func TestNoiseRejected(t *testing.T) {
	x, truth := blobsWithNoise(30, 2, 12, 3)
	res := Cluster(x, Options{MinClusterSize: 8})
	if res.NumClusters != 2 {
		t.Fatalf("found %d clusters, want 2", res.NumClusters)
	}
	// Most scattered background points must be labelled noise.
	noiseCaught := 0
	for i, l := range res.Labels {
		if truth[i] == -1 && l == -1 {
			noiseCaught++
		}
	}
	if noiseCaught < 8 {
		t.Fatalf("only %d/12 background points labelled noise", noiseCaught)
	}
}

func TestLabelsWellFormed(t *testing.T) {
	x, _ := blobsWithNoise(20, 4, 10, 5)
	res := Cluster(x, Options{MinClusterSize: 6})
	if len(res.Labels) != x.Rows() {
		t.Fatal("label count")
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		if l < -1 || l >= res.NumClusters {
			t.Fatalf("label %d out of range", l)
		}
		if l >= 0 {
			seen[l] = true
		}
	}
	if len(seen) != res.NumClusters {
		t.Fatalf("labels use %d ids, NumClusters=%d", len(seen), res.NumClusters)
	}
	if len(res.Stabilities) != res.NumClusters {
		t.Fatal("stability count")
	}
	for _, s := range res.Stabilities {
		if s < 0 {
			t.Fatalf("negative stability %v", s)
		}
	}
}

func TestTinyInputs(t *testing.T) {
	// Fewer points than MinClusterSize: all noise.
	x := mat.FromRows([][]float64{{1, 1}, {2, 2}})
	res := Cluster(x, Options{MinClusterSize: 5})
	if res.NumClusters != 0 {
		t.Fatalf("2 points produced %d clusters", res.NumClusters)
	}
	for _, l := range res.Labels {
		if l != -1 {
			t.Fatal("tiny input not all noise")
		}
	}
	// Enough for one cluster but no split.
	x6 := mat.NewDense(6, 2)
	for i := 0; i < 6; i++ {
		x6.Set(i, 0, float64(i))
	}
	res = Cluster(x6, Options{MinClusterSize: 5})
	if res.NumClusters != 1 {
		t.Fatalf("6 points with mcs=5 produced %d clusters, want 1", res.NumClusters)
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Identical points produce zero distances (infinite λ); must not panic
	// and must cluster them together.
	x := mat.NewDense(24, 2)
	for i := 0; i < 24; i++ {
		if i >= 12 {
			x.Set(i, 0, 100)
		}
	}
	res := Cluster(x, Options{MinClusterSize: 5})
	if res.NumClusters != 2 {
		t.Fatalf("duplicate blobs produced %d clusters, want 2", res.NumClusters)
	}
}

func TestExemplars(t *testing.T) {
	x, _ := blobsWithNoise(20, 3, 5, 7)
	res := Cluster(x, Options{MinClusterSize: 6})
	ex := Exemplars(x, res)
	if len(ex) != res.NumClusters {
		t.Fatal("exemplar count")
	}
	for c, e := range ex {
		if e < 0 || e >= x.Rows() {
			t.Fatalf("exemplar %d out of range", e)
		}
		if res.Labels[e] != c {
			t.Fatalf("exemplar of cluster %d labelled %d", c, res.Labels[e])
		}
	}
}

func TestDeterministic(t *testing.T) {
	x, _ := blobsWithNoise(15, 3, 8, 9)
	a := Cluster(x, Options{MinClusterSize: 5})
	b := Cluster(x, Options{MinClusterSize: 5})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("HDBSCAN not deterministic")
		}
	}
}

func TestMinClusterSizeControlsGranularity(t *testing.T) {
	// Two sub-blobs within each super-blob: small mcs finds 4, large finds 2.
	r := xrand.New(11)
	x := mat.NewDense(80, 2)
	for i := 0; i < 80; i++ {
		super := i / 40
		sub := (i / 20) % 2
		x.Set(i, 0, 100*float64(super)+8*float64(sub)+0.5*r.NormFloat64())
		x.Set(i, 1, 0.5*r.NormFloat64())
	}
	fine := Cluster(x, Options{MinClusterSize: 5})
	coarse := Cluster(x, Options{MinClusterSize: 25})
	if fine.NumClusters < coarse.NumClusters {
		t.Fatalf("fine=%d coarse=%d: granularity not monotone", fine.NumClusters, coarse.NumClusters)
	}
	if coarse.NumClusters != 2 {
		t.Fatalf("coarse clustering found %d clusters, want 2", coarse.NumClusters)
	}
	if fine.NumClusters != 4 {
		t.Fatalf("fine clustering found %d clusters, want 4", fine.NumClusters)
	}
}
