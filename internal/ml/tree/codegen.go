package tree

import (
	"fmt"
	"strings"
)

// GenGo renders a fitted classifier as a standalone Go function of nested if
// statements — the deployment form Section IV of the paper argues for:
// "decision trees can be implemented as a series of nested if statements and
// so are a good target for deployment".
//
// funcName is the generated function's name and featureNames label the
// inputs (one per feature column used in training; referencing a feature the
// tree never splits on is fine). The generated function returns the class
// index.
func (c *Classifier) GenGo(funcName string, featureNames []string) (string, error) {
	maxFeature := maxFeatureIndex(c.Root)
	if maxFeature >= len(featureNames) {
		return "", fmt.Errorf("tree: tree uses feature %d but only %d names given", maxFeature, len(featureNames))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// %s selects a kernel configuration index from the problem\n", funcName)
	fmt.Fprintf(&b, "// dimensions. Generated from a fitted decision tree; do not edit.\n")
	fmt.Fprintf(&b, "func %s(%s float64) int {\n", funcName, strings.Join(featureNames, ", "))
	genNode(&b, c.Root, featureNames, 1)
	fmt.Fprintf(&b, "}\n")
	return b.String(), nil
}

func genNode(b *strings.Builder, n *Node, names []string, indent int) {
	pad := strings.Repeat("\t", indent)
	if n.IsLeaf {
		fmt.Fprintf(b, "%sreturn %d\n", pad, n.Class)
		return
	}
	fmt.Fprintf(b, "%sif %s <= %v {\n", pad, names[n.Feature], n.Threshold)
	genNode(b, n.Left, names, indent+1)
	fmt.Fprintf(b, "%s}\n", pad)
	genNode(b, n.Right, names, indent)
}

func maxFeatureIndex(n *Node) int {
	if n.IsLeaf {
		return -1
	}
	m := n.Feature
	if l := maxFeatureIndex(n.Left); l > m {
		m = l
	}
	if r := maxFeatureIndex(n.Right); r > m {
		m = r
	}
	return m
}
