package tree

// Compiled is a Classifier flattened into contiguous struct-of-arrays form
// for the serving hot path. The pointer tree is the right shape for growth
// and inspection, but predicting through it chases one heap pointer per
// level; the compiled form walks parallel slices with an iterative loop, so
// a prediction touches a handful of adjacent cache lines and allocates
// nothing.
//
// Layout: nodes are stored in preorder (node, left subtree, right subtree).
// Internal nodes carry the split (feature, threshold) and the index of the
// right child (the left child is always the next node, so it needs no
// slot); leaves are marked with feature < 0 and carry the class in the same
// int32 the right-child index would use.
type Compiled struct {
	feature   []int32   // split feature, or <0 for a leaf
	threshold []float64 // split threshold (unused on leaves)
	next      []int32   // right-child index on internal nodes, class on leaves
	classes   int
	features  int
}

// CompileClassifier flattens a fitted classification tree. The compiled form
// routes every feature vector to exactly the leaf the pointer tree routes it
// to — same features, same thresholds, same <= comparisons — so predictions
// are identical by construction; Predict on the two forms agrees bit-for-bit.
func CompileClassifier(c *Classifier) *Compiled {
	cp := &Compiled{classes: c.Classes, features: c.Features}
	cp.flatten(c.Root)
	return cp
}

// flatten appends the subtree rooted at n in preorder and returns its index.
func (cp *Compiled) flatten(n *Node) int32 {
	idx := int32(len(cp.feature))
	if n.IsLeaf {
		cp.feature = append(cp.feature, -1)
		cp.threshold = append(cp.threshold, 0)
		cp.next = append(cp.next, int32(n.Class))
		return idx
	}
	cp.feature = append(cp.feature, int32(n.Feature))
	cp.threshold = append(cp.threshold, n.Threshold)
	cp.next = append(cp.next, 0) // patched once the left subtree is laid out
	cp.flatten(n.Left)
	cp.next[idx] = cp.flatten(n.Right)
	return idx
}

// Predict returns the class for the feature vector x. It is allocation-free
// and agrees exactly with Classifier.Predict on the source tree.
func (cp *Compiled) Predict(x []float64) int {
	feature, threshold, next := cp.feature, cp.threshold, cp.next
	i := int32(0)
	for feature[i] >= 0 {
		if x[feature[i]] <= threshold[i] {
			i++ // left child is adjacent in preorder
		} else {
			i = next[i]
		}
	}
	return int(next[i])
}

// NumNodes returns the total node count of the compiled tree.
func (cp *Compiled) NumNodes() int { return len(cp.feature) }

// Classes returns the class count the source classifier was fitted for.
func (cp *Compiled) Classes() int { return cp.classes }

// NumFeatures returns the training feature width recorded on the source
// classifier (0 when unknown).
func (cp *Compiled) NumFeatures() int { return cp.features }
