package tree

// FeatureImportances returns the impurity-decrease importance of each
// feature (scikit-learn's Gini importance): the total extensive impurity
// decrease contributed by splits on that feature, normalised to sum to 1.
// numFeatures must cover every feature index the tree splits on.
func (c *Classifier) FeatureImportances(numFeatures int) []float64 {
	return importances(c.Root, numFeatures)
}

// FeatureImportances is the regression-tree analogue (SSE decrease).
func (r *Regressor) FeatureImportances(numFeatures int) []float64 {
	return importances(r.Root, numFeatures)
}

func importances(root *Node, numFeatures int) []float64 {
	imp := make([]float64, numFeatures)
	accumulateImportance(root, imp)
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

func accumulateImportance(n *Node, imp []float64) {
	if n == nil || n.IsLeaf {
		return
	}
	gain := n.Impurity - n.Left.Impurity - n.Right.Impurity
	if gain > 0 {
		imp[n.Feature] += gain
	}
	accumulateImportance(n.Left, imp)
	accumulateImportance(n.Right, imp)
}
