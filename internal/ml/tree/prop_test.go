package tree

import (
	"testing"

	"kernelselect/internal/mat"
	"kernelselect/internal/xrand"
)

// randomTrainingSet draws a feature matrix from small discrete value pools —
// deliberately full of duplicate values and duplicate rows, the regime where
// order-dependent tie-breaking would show — plus labels drawn from a sparse
// subset of the class range.
func randomTrainingSet(rng *xrand.Rand) (x *mat.Dense, y []int, classes int) {
	n := 8 + rng.Intn(60)
	x = mat.NewDense(n, 3)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = float64(int(1) << rng.Intn(6)) // {1,2,4,8,16,32}: heavy ties
		}
	}
	classes = 4 + rng.Intn(8)
	// Use only a sparse subset of labels, so "prediction is a label seen in
	// training" is a real constraint rather than a tautology.
	pool := make([]int, 0, classes)
	for c := 0; c < classes; c++ {
		if rng.Intn(2) == 0 {
			pool = append(pool, c)
		}
	}
	if len(pool) == 0 {
		pool = append(pool, rng.Intn(classes))
	}
	y = make([]int, n)
	for i := range y {
		y[i] = pool[rng.Intn(len(pool))]
	}
	return x, y, classes
}

// permuted returns the training set reordered by a random permutation.
func permuted(rng *xrand.Rand, x *mat.Dense, y []int) (*mat.Dense, []int) {
	perm := rng.Perm(x.Rows())
	px := mat.NewDense(x.Rows(), x.Cols())
	py := make([]int, len(y))
	for to, from := range perm {
		copy(px.Row(to), x.Row(from))
		py[to] = y[from]
	}
	return px, py
}

// probeGrid covers the training points plus off-grid values on both sides of
// every possible threshold.
func probeGrid(x *mat.Dense) [][]float64 {
	probes := make([][]float64, 0, x.Rows()+64)
	for i := 0; i < x.Rows(); i++ {
		probes = append(probes, append([]float64(nil), x.Row(i)...))
	}
	vals := []float64{0.5, 1.5, 3, 6, 12, 24, 48, 100}
	for _, a := range vals {
		for _, b := range vals {
			probes = append(probes, []float64{a, b, a + b})
		}
	}
	return probes
}

// Property: classifier predictions are invariant to the order of training
// rows. The fitted tree routes on value thresholds and class counts, none of
// which depend on row order, so any permutation of the same rows must yield
// a tree that predicts identically everywhere.
func TestClassifierInvariantToRowOrder(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 25; trial++ {
		x, y, classes := randomTrainingSet(rng)
		opts := Options{MinSamplesLeaf: 1 + rng.Intn(3)}
		if rng.Intn(2) == 0 {
			opts.MaxLeaves = 2 + rng.Intn(10)
		}
		base := FitClassifier(x, y, classes, opts)
		for p := 0; p < 3; p++ {
			px, py := permuted(rng, x, y)
			perm := FitClassifier(px, py, classes, opts)
			for _, probe := range probeGrid(x) {
				if got, want := perm.Predict(probe), base.Predict(probe); got != want {
					t.Fatalf("trial %d perm %d: prediction at %v changed %d -> %d (opts %+v)",
						trial, p, probe, want, got, opts)
				}
			}
		}
	}
}

// Property: a classifier only ever predicts labels that occurred in its
// training set — leaves carry the majority class of real training rows, so
// an unseen label can never appear, anywhere in feature space.
func TestClassifierPredictsOnlySeenLabels(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 25; trial++ {
		x, y, classes := randomTrainingSet(rng)
		seen := make(map[int]bool, classes)
		for _, l := range y {
			seen[l] = true
		}
		c := FitClassifier(x, y, classes, Options{MinSamplesLeaf: 1 + rng.Intn(2)})
		for _, probe := range probeGrid(x) {
			if got := c.Predict(probe); !seen[got] {
				t.Fatalf("trial %d: predicted label %d at %v, training labels %v", trial, got, probe, y)
			}
		}
	}
}
