package tree

import (
	"math"
	"strings"
	"testing"

	"kernelselect/internal/mat"
	"kernelselect/internal/xrand"
)

// stepData builds a 1-feature regression problem with two plateaus.
func stepData() (*mat.Dense, *mat.Dense) {
	x := mat.NewDense(20, 1)
	y := mat.NewDense(20, 2)
	for i := 0; i < 20; i++ {
		x.Set(i, 0, float64(i))
		if i < 10 {
			y.Set(i, 0, 1)
			y.Set(i, 1, -1)
		} else {
			y.Set(i, 0, 5)
			y.Set(i, 1, 2)
		}
	}
	return x, y
}

func TestRegressorFindsStep(t *testing.T) {
	x, y := stepData()
	r := FitRegressor(x, y, Options{MaxLeaves: 2})
	if r.NumLeaves() != 2 {
		t.Fatalf("leaves = %d, want 2", r.NumLeaves())
	}
	if r.Root.IsLeaf || r.Root.Feature != 0 {
		t.Fatal("root should split on feature 0")
	}
	if r.Root.Threshold < 9 || r.Root.Threshold > 10 {
		t.Fatalf("threshold = %v, want in (9,10)", r.Root.Threshold)
	}
	left := r.Predict([]float64{3})
	right := r.Predict([]float64{15})
	if left[0] != 1 || left[1] != -1 || right[0] != 5 || right[1] != 2 {
		t.Fatalf("predictions: left=%v right=%v", left, right)
	}
}

func TestRegressorMaxLeavesRespected(t *testing.T) {
	r := xrand.New(5)
	x := mat.NewDense(60, 3)
	y := mat.NewDense(60, 4)
	for i := 0; i < 60; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, r.Float64())
		}
		for j := 0; j < 4; j++ {
			y.Set(i, j, r.NormFloat64())
		}
	}
	for _, maxLeaves := range []int{1, 2, 5, 8, 15} {
		tr := FitRegressor(x, y, Options{MaxLeaves: maxLeaves})
		if tr.NumLeaves() > maxLeaves {
			t.Fatalf("MaxLeaves=%d grew %d leaves", maxLeaves, tr.NumLeaves())
		}
		if len(tr.Leaves()) != tr.NumLeaves() {
			t.Fatal("Leaves() length disagrees with NumLeaves()")
		}
	}
}

func TestRegressorBestFirstExpandsLargestGain(t *testing.T) {
	// Feature 0 separates targets by 100, feature 1 by 1. With two leaves
	// the tree must use feature 0.
	x := mat.NewDense(40, 2)
	y := mat.NewDense(40, 1)
	for i := 0; i < 40; i++ {
		x.Set(i, 0, float64(i/20)) // 0 or 1
		x.Set(i, 1, float64(i%2))  // 0 or 1
		y.Set(i, 0, 100*float64(i/20)+float64(i%2))
	}
	tr := FitRegressor(x, y, Options{MaxLeaves: 2})
	if tr.Root.Feature != 0 {
		t.Fatalf("root split on feature %d, want 0", tr.Root.Feature)
	}
}

func TestRegressorPerfectFitUnlimited(t *testing.T) {
	// With unlimited leaves and unique feature values, training error is 0.
	r := xrand.New(7)
	x := mat.NewDense(30, 1)
	y := mat.NewDense(30, 2)
	for i := 0; i < 30; i++ {
		x.Set(i, 0, float64(i))
		y.Set(i, 0, r.NormFloat64())
		y.Set(i, 1, r.NormFloat64())
	}
	tr := FitRegressor(x, y, Options{})
	for i := 0; i < 30; i++ {
		p := tr.Predict(x.Row(i))
		if math.Abs(p[0]-y.At(i, 0)) > 1e-12 || math.Abs(p[1]-y.At(i, 1)) > 1e-12 {
			t.Fatalf("row %d not memorised", i)
		}
	}
}

func TestRegressorMinSamplesLeaf(t *testing.T) {
	x, y := stepData()
	tr := FitRegressor(x, y, Options{MinSamplesLeaf: 8})
	for _, l := range tr.Leaves() {
		if l.Samples < 8 {
			t.Fatalf("leaf with %d samples under MinSamplesLeaf=8", l.Samples)
		}
	}
}

func TestRegressorMaxDepth(t *testing.T) {
	r := xrand.New(9)
	x := mat.NewDense(64, 2)
	y := mat.NewDense(64, 1)
	for i := 0; i < 64; i++ {
		x.Set(i, 0, r.Float64())
		x.Set(i, 1, r.Float64())
		y.Set(i, 0, r.NormFloat64())
	}
	tr := FitRegressor(x, y, Options{MaxDepth: 3})
	if tr.Depth() > 3 {
		t.Fatalf("depth = %d, want ≤ 3", tr.Depth())
	}
}

func TestRegressorLeafValueIsMean(t *testing.T) {
	x, y := stepData()
	tr := FitRegressor(x, y, Options{MaxLeaves: 1})
	want0 := (10*1.0 + 10*5.0) / 20
	if math.Abs(tr.Root.Value[0]-want0) > 1e-12 {
		t.Fatalf("stump value = %v, want %v", tr.Root.Value[0], want0)
	}
}

func TestClassifierXor(t *testing.T) {
	// XOR needs depth 2; a Gini tree solves it exactly.
	x := mat.FromRows([][]float64{
		{0, 0}, {0, 1}, {1, 0}, {1, 1},
		{0.1, 0.1}, {0.1, 0.9}, {0.9, 0.1}, {0.9, 0.9},
	})
	y := []int{0, 1, 1, 0, 0, 1, 1, 0}
	c := FitClassifier(x, y, 2, Options{})
	for i := range y {
		if got := c.Predict(x.Row(i)); got != y[i] {
			t.Fatalf("sample %d: predicted %d, want %d", i, got, y[i])
		}
	}
}

func TestClassifierPureLeavesStopSplitting(t *testing.T) {
	x := mat.FromRows([][]float64{{1}, {2}, {3}, {4}})
	y := []int{1, 1, 1, 1}
	c := FitClassifier(x, y, 2, Options{})
	if !c.Root.IsLeaf {
		t.Fatal("pure node was split")
	}
	if c.Root.Class != 1 {
		t.Fatalf("class = %d, want 1", c.Root.Class)
	}
}

func TestClassifierLabelValidation(t *testing.T) {
	x := mat.FromRows([][]float64{{1}, {2}})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label accepted")
		}
	}()
	FitClassifier(x, []int{0, 5}, 2, Options{})
}

func TestFitPanicsOnMismatch(t *testing.T) {
	x := mat.FromRows([][]float64{{1}, {2}})
	y := mat.FromRows([][]float64{{1}})
	defer func() {
		if recover() == nil {
			t.Fatal("row mismatch accepted")
		}
	}()
	FitRegressor(x, y, Options{})
}

func TestMaxFeaturesSubsampling(t *testing.T) {
	// With MaxFeatures=1 and many seeds, different features should be
	// chosen at the root at least once (evidence sampling happens).
	x := mat.NewDense(40, 2)
	y := make([]int, 40)
	r := xrand.New(13)
	for i := 0; i < 40; i++ {
		x.Set(i, 0, r.Float64())
		x.Set(i, 1, r.Float64())
		if x.At(i, 0)+x.At(i, 1) > 1 {
			y[i] = 1
		}
	}
	seen := map[int]bool{}
	for seed := uint64(0); seed < 10; seed++ {
		c := FitClassifier(x, y, 2, Options{MaxFeatures: 1, Seed: seed, MaxDepth: 1})
		if !c.Root.IsLeaf {
			seen[c.Root.Feature] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("feature subsampling never varied the root feature: %v", seen)
	}
}

func TestGenGoShape(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 10, 5}, {2, 20, 5}, {8, 10, 5}, {9, 20, 5}})
	y := []int{0, 0, 1, 1}
	c := FitClassifier(x, y, 2, Options{})
	src, err := c.GenGo("SelectKernel", []string{"m", "k", "n"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"func SelectKernel(m, k, n float64) int {", "if m <= ", "return 0", "return 1"} {
		if !strings.Contains(src, want) {
			t.Fatalf("generated source missing %q:\n%s", want, src)
		}
	}
}

func TestGenGoErrorsOnMissingNames(t *testing.T) {
	// Labels depend only on feature 1, forcing the tree to reference it.
	x := mat.FromRows([][]float64{{1, 1}, {2, 2}, {1, 3}, {2, 4}})
	y := []int{0, 0, 1, 1}
	c := FitClassifier(x, y, 2, Options{})
	if _, err := c.GenGo("f", []string{"m"}); err == nil {
		t.Fatal("missing feature name accepted")
	}
}

// TestGenGoSemanticEquivalence interprets the generated source by walking
// the tree directly, confirming the printed ifs route like Predict.
func TestGenGoSemanticEquivalence(t *testing.T) {
	r := xrand.New(21)
	x := mat.NewDense(50, 3)
	y := make([]int, 50)
	for i := 0; i < 50; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, r.Float64()*100)
		}
		y[i] = int(x.At(i, 0)/25) % 4
	}
	c := FitClassifier(x, y, 4, Options{MaxLeaves: 6})
	src, err := c.GenGo("sel", []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	// The number of return statements equals the leaf count.
	if got := strings.Count(src, "return "); got != c.NumLeaves() {
		t.Fatalf("%d return statements for %d leaves", got, c.NumLeaves())
	}
}

func TestFeatureImportancesConcentrate(t *testing.T) {
	// Labels depend only on feature 1; its importance must dominate.
	r := xrand.New(51)
	x := mat.NewDense(80, 3)
	y := make([]int, 80)
	for i := 0; i < 80; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, r.Float64())
		}
		if x.At(i, 1) > 0.5 {
			y[i] = 1
		}
	}
	c := FitClassifier(x, y, 2, Options{})
	imp := c.FeatureImportances(3)
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
	if imp[1] < 0.9 {
		t.Fatalf("informative feature importance %v < 0.9 (%v)", imp[1], imp)
	}
}

func TestFeatureImportancesRegressor(t *testing.T) {
	x, y := stepData() // single feature drives both outputs
	reg := FitRegressor(x, y, Options{MaxLeaves: 4})
	imp := reg.FeatureImportances(1)
	if math.Abs(imp[0]-1) > 1e-9 {
		t.Fatalf("single-feature importance = %v", imp[0])
	}
}

func TestFeatureImportancesStump(t *testing.T) {
	// A pure-leaf tree has no splits: importances are all zero.
	x := mat.FromRows([][]float64{{1}, {2}})
	c := FitClassifier(x, []int{1, 1}, 2, Options{})
	imp := c.FeatureImportances(1)
	if imp[0] != 0 {
		t.Fatalf("stump importance = %v", imp[0])
	}
}
