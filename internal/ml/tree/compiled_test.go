package tree

import (
	"testing"

	"kernelselect/internal/mat"
	"kernelselect/internal/xrand"
)

// randomClassification builds a synthetic training set with enough structure
// that the fitted tree has real depth.
func randomClassification(n, f, classes int, seed uint64) (*mat.Dense, []int) {
	rng := xrand.New(seed)
	x := mat.NewDense(n, f)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		acc := 0.0
		for j := range row {
			row[j] = rng.Float64() * 100
			acc += row[j] * float64(j+1)
		}
		y[i] = int(acc) % classes
	}
	return x, y
}

func TestCompiledMatchesClassifier(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"unrestricted", Options{}},
		{"depth-limited", Options{MaxDepth: 4}},
		{"min-leaf", Options{MinSamplesLeaf: 5}},
		{"stump", Options{MaxDepth: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x, y := randomClassification(400, 3, 7, 11)
			c := FitClassifier(x, y, 7, tc.opts)
			cp := CompileClassifier(c)
			if cp.NumNodes() != 2*c.NumLeaves()-1 {
				t.Errorf("compiled %d nodes for %d leaves", cp.NumNodes(), c.NumLeaves())
			}
			if cp.Classes() != c.Classes || cp.NumFeatures() != c.Features {
				t.Errorf("metadata mismatch: classes %d/%d features %d/%d",
					cp.Classes(), c.Classes, cp.NumFeatures(), c.Features)
			}
			// Every training point plus a probe grid between them.
			probe := func(v []float64) {
				if got, want := cp.Predict(v), c.Predict(v); got != want {
					t.Fatalf("compiled predicts %d, tree predicts %d for %v", got, want, v)
				}
			}
			for i := 0; i < x.Rows(); i++ {
				probe(x.Row(i))
			}
			rng := xrand.New(99)
			v := make([]float64, x.Cols())
			for i := 0; i < 2000; i++ {
				for j := range v {
					v[j] = rng.Float64() * 120
				}
				probe(v)
			}
		})
	}
}

func TestCompiledPredictAllocationFree(t *testing.T) {
	x, y := randomClassification(300, 3, 5, 3)
	cp := CompileClassifier(FitClassifier(x, y, 5, Options{}))
	v := []float64{31.0, 57.0, 12.0}
	if allocs := testing.AllocsPerRun(200, func() { _ = cp.Predict(v) }); allocs != 0 {
		t.Errorf("compiled Predict allocates %.1f objects per call, want 0", allocs)
	}
}

// BenchmarkCompiledTree compares the pointer-tree and compiled prediction
// paths the serving daemon chooses between.
func BenchmarkCompiledTree(b *testing.B) {
	x, y := randomClassification(1000, 3, 8, 17)
	c := FitClassifier(x, y, 8, Options{})
	cp := CompileClassifier(c)
	v := []float64{31.0, 57.0, 12.0}
	b.Run("pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = c.Predict(v)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = cp.Predict(v)
		}
	})
}
