// Package tree implements CART decision trees in the two roles the paper
// uses them:
//
//   - a multi-output Regressor mapping matrix sizes to the full vector of
//     normalized per-configuration performance; limiting its leaf count
//     (MaxLeaves) turns the leaves into cluster representatives, the paper's
//     best-performing configuration-pruning method (Section III);
//   - a Classifier mapping matrix sizes to the best configuration among a
//     pruned set, the paper's recommended runtime selection method
//     (Section IV), including generation of the "series of nested if
//     statements" deployment form (see codegen.go).
//
// Growth is best-first (expand the leaf with the largest impurity decrease
// first), matching scikit-learn's behaviour when max_leaf_nodes is set — the
// regime every experiment in the paper runs in.
package tree

import (
	"fmt"
	"math"
	"sort"

	"kernelselect/internal/mat"
	"kernelselect/internal/xrand"
)

// Node is one tree node. Internal nodes route on Feature/Threshold
// (x[Feature] <= Threshold goes left); leaves carry the prediction.
type Node struct {
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node

	IsLeaf   bool
	Value    []float64 // regression: mean target vector of the leaf
	Class    int       // classification: majority class of the leaf
	Samples  int
	Impurity float64 // extensive impurity (SSE, or n·Gini)
}

// Options configure tree growth. The zero value grows an unrestricted tree
// on all features.
type Options struct {
	MaxLeaves      int    // maximum leaf count (0 = unlimited)
	MaxDepth       int    // maximum depth (0 = unlimited; root is depth 0)
	MinSamplesLeaf int    // minimum samples per leaf (0 → 1)
	MaxFeatures    int    // features considered per split (0 = all); <len(features) requires Seed-driven sampling
	Seed           uint64 // RNG seed for feature subsampling
}

func (o Options) withDefaults() Options {
	if o.MinSamplesLeaf <= 0 {
		o.MinSamplesLeaf = 1
	}
	return o
}

// target abstracts the two CART objectives over a row subset.
type target interface {
	// impurity returns the extensive impurity of the rows (SSE or n·Gini).
	impurity(rows []int) float64
	// leaf fills a leaf node's prediction from the rows.
	leaf(n *Node, rows []int)
	// bestThreshold scans the rows sorted by feature value and returns the
	// best split position (impurity sum of both sides) honouring
	// minSamplesLeaf. ok is false if no valid split exists.
	bestThreshold(sorted []int, values []float64, minLeaf int) (splitAt int, totalImpurity float64, ok bool)
}

// grower holds shared state for best-first growth.
type grower struct {
	x    *mat.Dense
	tgt  target
	opts Options
	rng  *xrand.Rand
}

type candidate struct {
	node  *Node
	rows  []int
	depth int
	// Best split found for this node.
	feature    int
	threshold  float64
	leftRows   []int
	rightRows  []int
	gain       float64
	splittable bool
}

// grow builds a tree over the given rows.
func (g *grower) grow(rows []int) *Node {
	root := &Node{}
	g.makeLeaf(root, rows)
	frontier := []*candidate{g.candidate(root, rows, 0)}
	leaves := 1

	for {
		if g.opts.MaxLeaves > 0 && leaves >= g.opts.MaxLeaves {
			break
		}
		// Pop the candidate with the largest gain.
		best := -1
		for i, c := range frontier {
			if !c.splittable {
				continue
			}
			if best == -1 || c.gain > frontier[best].gain {
				best = i
			}
		}
		if best == -1 {
			break
		}
		c := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)

		n := c.node
		n.IsLeaf = false
		n.Feature = c.feature
		n.Threshold = c.threshold
		n.Left = &Node{}
		n.Right = &Node{}
		g.makeLeaf(n.Left, c.leftRows)
		g.makeLeaf(n.Right, c.rightRows)
		frontier = append(frontier,
			g.candidate(n.Left, c.leftRows, c.depth+1),
			g.candidate(n.Right, c.rightRows, c.depth+1),
		)
		leaves++
	}
	return root
}

func (g *grower) makeLeaf(n *Node, rows []int) {
	n.IsLeaf = true
	n.Samples = len(rows)
	n.Impurity = g.tgt.impurity(rows)
	g.tgt.leaf(n, rows)
}

// candidate computes the best split of a node, if any.
func (g *grower) candidate(n *Node, rows []int, depth int) *candidate {
	c := &candidate{node: n, rows: rows, depth: depth}
	if g.opts.MaxDepth > 0 && depth >= g.opts.MaxDepth {
		return c
	}
	if len(rows) < 2*g.opts.MinSamplesLeaf || n.Impurity <= 1e-12 {
		return c
	}

	nf := g.x.Cols()
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if g.opts.MaxFeatures > 0 && g.opts.MaxFeatures < nf {
		g.rng.Shuffle(nf, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:g.opts.MaxFeatures]
	}

	// Accept any valid split, including zero-gain ones: splitting an impure
	// node never increases the weighted child impurity, and zero-gain splits
	// are sometimes necessary progress (e.g. XOR-structured data), exactly
	// as in scikit-learn with min_impurity_decrease = 0.
	bestImpurity := math.Inf(1)
	found := false
	sorted := make([]int, len(rows))
	values := make([]float64, len(rows))
	for _, f := range features {
		copy(sorted, rows)
		sort.Slice(sorted, func(a, b int) bool {
			return g.x.At(sorted[a], f) < g.x.At(sorted[b], f)
		})
		for i, r := range sorted {
			values[i] = g.x.At(r, f)
		}
		splitAt, imp, ok := g.tgt.bestThreshold(sorted, values, g.opts.MinSamplesLeaf)
		if !ok || imp >= bestImpurity {
			continue
		}
		found = true
		bestImpurity = imp
		c.feature = f
		c.threshold = (values[splitAt-1] + values[splitAt]) / 2
		c.leftRows = append(c.leftRows[:0], sorted[:splitAt]...)
		c.rightRows = append(c.rightRows[:0], sorted[splitAt:]...)
		// Defensive copies: sorted is reused for the next feature.
		c.leftRows = append([]int(nil), c.leftRows...)
		c.rightRows = append([]int(nil), c.rightRows...)
	}
	if found {
		c.splittable = true
		c.gain = n.Impurity - bestImpurity
		if c.gain < 0 {
			c.gain = 0
		}
	}
	return c
}

// predictNode routes a feature vector to its leaf.
func predictNode(n *Node, x []float64) *Node {
	for !n.IsLeaf {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// collectLeaves appends leaves in deterministic depth-first (left-right)
// order.
func collectLeaves(n *Node, out []*Node) []*Node {
	if n.IsLeaf {
		return append(out, n)
	}
	out = collectLeaves(n.Left, out)
	return collectLeaves(n.Right, out)
}

func countLeaves(n *Node) int {
	if n.IsLeaf {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

func depthOf(n *Node) int {
	if n.IsLeaf {
		return 0
	}
	l, r := depthOf(n.Left), depthOf(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// ---------------------------------------------------------------------------
// Regressor
// ---------------------------------------------------------------------------

// Regressor is a multi-output CART regression tree.
type Regressor struct {
	Root *Node
	Opts Options
	// OutputDims is the target dimensionality the tree was fitted on.
	OutputDims int
}

// regTarget implements the SSE objective for multi-output regression.
type regTarget struct {
	y *mat.Dense
}

func (t *regTarget) impurity(rows []int) float64 {
	d := t.y.Cols()
	sums := make([]float64, d)
	var sq float64
	for _, r := range rows {
		row := t.y.Row(r)
		for j, v := range row {
			sums[j] += v
			sq += v * v
		}
	}
	n := float64(len(rows))
	sse := sq
	for _, s := range sums {
		sse -= s * s / n
	}
	if sse < 0 {
		sse = 0
	}
	return sse
}

func (t *regTarget) leaf(n *Node, rows []int) {
	d := t.y.Cols()
	n.Value = make([]float64, d)
	for _, r := range rows {
		mat.Axpy(1, t.y.Row(r), n.Value)
	}
	mat.Scale(1/float64(len(rows)), n.Value)
}

func (t *regTarget) bestThreshold(sorted []int, values []float64, minLeaf int) (int, float64, bool) {
	n := len(sorted)
	d := t.y.Cols()
	leftSum := make([]float64, d)
	totalSum := make([]float64, d)
	var leftSq, totalSq float64
	for _, r := range sorted {
		row := t.y.Row(r)
		for j, v := range row {
			totalSum[j] += v
			totalSq += v * v
		}
	}
	bestAt, bestImp, ok := 0, 0.0, false
	for i := 0; i < n-1; i++ {
		row := t.y.Row(sorted[i])
		for j, v := range row {
			leftSum[j] += v
			leftSq += v * v
		}
		nl := i + 1
		nr := n - nl
		if nl < minLeaf || nr < minLeaf {
			continue
		}
		if values[i+1] <= values[i] {
			continue // cannot split between equal feature values
		}
		var sumsqL, sumsqR float64
		for j := 0; j < d; j++ {
			sumsqL += leftSum[j] * leftSum[j]
			rs := totalSum[j] - leftSum[j]
			sumsqR += rs * rs
		}
		sseL := leftSq - sumsqL/float64(nl)
		sseR := (totalSq - leftSq) - sumsqR/float64(nr)
		imp := sseL + sseR
		if !ok || imp < bestImp {
			bestAt, bestImp, ok = i+1, imp, true
		}
	}
	return bestAt, bestImp, ok
}

// FitRegressor grows a multi-output regression tree on x (n×f features) and
// y (n×d targets).
func FitRegressor(x, y *mat.Dense, opts Options) *Regressor {
	if x.Rows() != y.Rows() {
		panic(fmt.Sprintf("tree: %d feature rows vs %d target rows", x.Rows(), y.Rows()))
	}
	if x.Rows() == 0 {
		panic("tree: empty training set")
	}
	opts = opts.withDefaults()
	g := &grower{x: x, tgt: &regTarget{y: y}, opts: opts, rng: xrand.New(opts.Seed)}
	rows := make([]int, x.Rows())
	for i := range rows {
		rows[i] = i
	}
	return &Regressor{Root: g.grow(rows), Opts: opts, OutputDims: y.Cols()}
}

// Predict returns the leaf mean vector for the feature vector x.
func (r *Regressor) Predict(x []float64) []float64 {
	return predictNode(r.Root, x).Value
}

// Leaves returns the leaf nodes in deterministic order. With MaxLeaves set,
// each leaf's Value is one cluster representative.
func (r *Regressor) Leaves() []*Node { return collectLeaves(r.Root, nil) }

// NumLeaves returns the leaf count.
func (r *Regressor) NumLeaves() int { return countLeaves(r.Root) }

// Depth returns the tree depth (0 for a stump).
func (r *Regressor) Depth() int { return depthOf(r.Root) }

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

// Classifier is a CART classification tree with Gini impurity.
type Classifier struct {
	Root    *Node
	Opts    Options
	Classes int
	// Features is the training feature width, recorded so persisted
	// classifiers are self-describing (0 on artifacts predating the field).
	Features int
}

type clsTarget struct {
	y       []int
	classes int
}

func (t *clsTarget) counts(rows []int) []int {
	c := make([]int, t.classes)
	for _, r := range rows {
		c[t.y[r]]++
	}
	return c
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

func (t *clsTarget) impurity(rows []int) float64 {
	return float64(len(rows)) * gini(t.counts(rows), len(rows))
}

func (t *clsTarget) leaf(n *Node, rows []int) {
	counts := t.counts(rows)
	best, bestC := 0, -1
	for cl, c := range counts {
		if c > bestC {
			best, bestC = cl, c
		}
	}
	n.Class = best
}

func (t *clsTarget) bestThreshold(sorted []int, values []float64, minLeaf int) (int, float64, bool) {
	n := len(sorted)
	total := t.counts(sorted)
	left := make([]int, t.classes)
	right := append([]int(nil), total...)
	bestAt, bestImp, ok := 0, 0.0, false
	for i := 0; i < n-1; i++ {
		cl := t.y[sorted[i]]
		left[cl]++
		right[cl]--
		nl, nr := i+1, n-i-1
		if nl < minLeaf || nr < minLeaf {
			continue
		}
		if values[i+1] <= values[i] {
			continue
		}
		imp := float64(nl)*gini(left, nl) + float64(nr)*gini(right, nr)
		if !ok || imp < bestImp {
			bestAt, bestImp, ok = i+1, imp, true
		}
	}
	return bestAt, bestImp, ok
}

// FitClassifier grows a classification tree on x and integer labels y in
// [0, classes).
func FitClassifier(x *mat.Dense, y []int, classes int, opts Options) *Classifier {
	if x.Rows() != len(y) {
		panic(fmt.Sprintf("tree: %d feature rows vs %d labels", x.Rows(), len(y)))
	}
	if x.Rows() == 0 {
		panic("tree: empty training set")
	}
	if classes <= 0 {
		panic("tree: classes must be positive")
	}
	for _, l := range y {
		if l < 0 || l >= classes {
			panic(fmt.Sprintf("tree: label %d out of [0,%d)", l, classes))
		}
	}
	opts = opts.withDefaults()
	g := &grower{x: x, tgt: &clsTarget{y: y, classes: classes}, opts: opts, rng: xrand.New(opts.Seed)}
	rows := make([]int, x.Rows())
	for i := range rows {
		rows[i] = i
	}
	return &Classifier{Root: g.grow(rows), Opts: opts, Classes: classes, Features: x.Cols()}
}

// Predict returns the class for the feature vector x.
func (c *Classifier) Predict(x []float64) int {
	return predictNode(c.Root, x).Class
}

// NumFeatures returns the training feature width (0 when unknown, e.g. a
// classifier decoded from an artifact written before the field existed).
func (c *Classifier) NumFeatures() int { return c.Features }

// NumLeaves returns the leaf count.
func (c *Classifier) NumLeaves() int { return countLeaves(c.Root) }

// Depth returns the tree depth.
func (c *Classifier) Depth() int { return depthOf(c.Root) }
