package tree

import "fmt"

// Validate checks that a classifier — typically one deserialised from an
// untrusted artifact — is structurally sound to predict on numFeatures-wide
// inputs: a non-nil root, both children present on every internal node,
// feature indices within range, and leaf classes within [0, Classes). Fitted
// classifiers always pass; corrupted or hand-crafted ones are rejected here
// instead of panicking inside Predict.
func (c *Classifier) Validate(numFeatures int) error {
	if c.Root == nil {
		return fmt.Errorf("tree: classifier has no root node")
	}
	if c.Classes <= 0 {
		return fmt.Errorf("tree: classifier has %d classes", c.Classes)
	}
	if c.Features != 0 && c.Features != numFeatures {
		return fmt.Errorf("tree: classifier fitted on %d features, want %d", c.Features, numFeatures)
	}
	return validateNode(c.Root, numFeatures, c.Classes)
}

func validateNode(n *Node, numFeatures, classes int) error {
	if n.IsLeaf {
		if n.Class < 0 || n.Class >= classes {
			return fmt.Errorf("tree: leaf class %d out of [0,%d)", n.Class, classes)
		}
		return nil
	}
	if n.Feature < 0 || n.Feature >= numFeatures {
		return fmt.Errorf("tree: split feature %d out of [0,%d)", n.Feature, numFeatures)
	}
	if n.Left == nil || n.Right == nil {
		return fmt.Errorf("tree: internal node missing a child")
	}
	if err := validateNode(n.Left, numFeatures, classes); err != nil {
		return err
	}
	return validateNode(n.Right, numFeatures, classes)
}
