// Package forest implements a random-forest classifier (bootstrap-aggregated
// CART trees with per-split feature subsampling), one of the runtime kernel
// selectors compared in Table I of the paper.
package forest

import (
	"fmt"
	"math"

	"kernelselect/internal/mat"
	"kernelselect/internal/ml/tree"
	"kernelselect/internal/par"
	"kernelselect/internal/xrand"
)

// Options configure the ensemble. The zero value selects the defaults.
type Options struct {
	NumTrees       int // default 100
	MaxFeatures    int // features per split; default ⌈√f⌉
	MaxDepth       int // per tree; 0 = unlimited
	MinSamplesLeaf int // per tree; 0 → 1
	Seed           uint64
	// Workers bounds concurrent tree fitting (0 = GOMAXPROCS). The fitted
	// forest is identical at any setting: bootstrap samples and per-tree
	// seeds are drawn from the seeded stream sequentially before the
	// fitting fans out.
	Workers int
}

func (o Options) withDefaults(numFeatures int) Options {
	if o.NumTrees <= 0 {
		o.NumTrees = 100
	}
	if o.MaxFeatures <= 0 {
		o.MaxFeatures = int(math.Ceil(math.Sqrt(float64(numFeatures))))
	}
	return o
}

// Classifier is a fitted random forest.
type Classifier struct {
	Trees   []*tree.Classifier
	Classes int
	// Features is the training feature width, recorded so persisted
	// ensembles are self-describing (0 on artifacts predating the field).
	Features int
}

// FitClassifier trains the ensemble on x and labels y in [0, classes).
func FitClassifier(x *mat.Dense, y []int, classes int, opts Options) *Classifier {
	if x.Rows() != len(y) {
		panic(fmt.Sprintf("forest: %d feature rows vs %d labels", x.Rows(), len(y)))
	}
	if x.Rows() == 0 {
		panic("forest: empty training set")
	}
	opts = opts.withDefaults(x.Cols())
	rng := xrand.New(opts.Seed)
	n := x.Rows()

	f := &Classifier{Classes: classes, Trees: make([]*tree.Classifier, opts.NumTrees), Features: x.Cols()}
	// Bootstrap samples and per-tree seeds come off the shared stream in
	// tree order — the expensive CART fitting then runs on the worker pool
	// without touching shared randomness, so the ensemble is bit-identical
	// to a fully sequential fit.
	type bootstrap struct {
		x    *mat.Dense
		y    []int
		seed uint64
	}
	boots := make([]bootstrap, opts.NumTrees)
	for t := range boots {
		bx := mat.NewDense(n, x.Cols())
		by := make([]int, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			copy(bx.Row(i), x.Row(j))
			by[i] = y[j]
		}
		boots[t] = bootstrap{x: bx, y: by, seed: rng.Uint64()}
	}
	par.Do(opts.Workers, opts.NumTrees, func(t int) {
		f.Trees[t] = tree.FitClassifier(boots[t].x, boots[t].y, classes, tree.Options{
			MaxDepth:       opts.MaxDepth,
			MinSamplesLeaf: opts.MinSamplesLeaf,
			MaxFeatures:    opts.MaxFeatures,
			Seed:           boots[t].seed,
		})
	})
	return f
}

// NumFeatures returns the training feature width (0 when unknown).
func (f *Classifier) NumFeatures() int { return f.Features }

// Predict returns the majority-vote class for x (smallest class on ties).
func (f *Classifier) Predict(x []float64) int {
	votes := make([]int, f.Classes)
	for _, t := range f.Trees {
		votes[t.Predict(x)]++
	}
	best := 0
	for c, v := range votes {
		if v > votes[best] {
			best = c
		}
	}
	return best
}

// Votes returns the per-class vote counts for x, for inspection and
// confidence reporting.
func (f *Classifier) Votes(x []float64) []int {
	votes := make([]int, f.Classes)
	for _, t := range f.Trees {
		votes[t.Predict(x)]++
	}
	return votes
}

// FeatureImportances averages the impurity-decrease importances of the
// ensemble's trees (normalised to sum to 1).
func (f *Classifier) FeatureImportances(numFeatures int) []float64 {
	imp := make([]float64, numFeatures)
	for _, t := range f.Trees {
		for i, v := range t.FeatureImportances(numFeatures) {
			imp[i] += v
		}
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}
