package forest

import (
	"testing"

	"kernelselect/internal/mat"
	"kernelselect/internal/ml/metrics"
	"kernelselect/internal/xrand"
)

// ringData builds a 2-class problem not linearly separable (inner vs outer
// ring) that trees handle easily.
func ringData(n int, seed uint64) (*mat.Dense, []int) {
	r := xrand.New(seed)
	x := mat.NewDense(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := 2*r.Float64()-1, 2*r.Float64()-1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if a*a+b*b > 0.5 {
			y[i] = 1
		}
	}
	return x, y
}

func TestForestLearnsNonlinearBoundary(t *testing.T) {
	x, y := ringData(300, 1)
	f := FitClassifier(x, y, 2, Options{NumTrees: 30, Seed: 2})
	pred := make([]int, len(y))
	for i := range y {
		pred[i] = f.Predict(x.Row(i))
	}
	if acc := metrics.Accuracy(pred, y); acc < 0.95 {
		t.Fatalf("training accuracy %v < 0.95", acc)
	}
	// Held-out accuracy.
	xt, yt := ringData(200, 99)
	for i := range yt {
		pred[i] = f.Predict(xt.Row(i))
	}
	if acc := metrics.Accuracy(pred[:len(yt)], yt); acc < 0.85 {
		t.Fatalf("test accuracy %v < 0.85", acc)
	}
}

func TestForestDeterministicForSeed(t *testing.T) {
	x, y := ringData(100, 3)
	a := FitClassifier(x, y, 2, Options{NumTrees: 10, Seed: 7})
	b := FitClassifier(x, y, 2, Options{NumTrees: 10, Seed: 7})
	probe, _ := ringData(50, 11)
	for i := 0; i < probe.Rows(); i++ {
		if a.Predict(probe.Row(i)) != b.Predict(probe.Row(i)) {
			t.Fatal("same seed produced different forests")
		}
	}
}

func TestVotesSumToNumTrees(t *testing.T) {
	x, y := ringData(80, 5)
	f := FitClassifier(x, y, 2, Options{NumTrees: 17, Seed: 1})
	v := f.Votes([]float64{0.3, -0.2})
	total := 0
	for _, n := range v {
		total += n
	}
	if total != 17 {
		t.Fatalf("votes sum to %d, want 17", total)
	}
}

func TestPredictMatchesVotes(t *testing.T) {
	x, y := ringData(80, 6)
	f := FitClassifier(x, y, 2, Options{NumTrees: 9, Seed: 4})
	probe, _ := ringData(30, 12)
	for i := 0; i < probe.Rows(); i++ {
		v := f.Votes(probe.Row(i))
		best := 0
		for c := range v {
			if v[c] > v[best] {
				best = c
			}
		}
		if f.Predict(probe.Row(i)) != best {
			t.Fatal("Predict disagrees with Votes")
		}
	}
}

func TestFitPanicsOnBadInput(t *testing.T) {
	x, y := ringData(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels accepted")
		}
	}()
	FitClassifier(x, y[:5], 2, Options{})
}

func TestForestFeatureImportances(t *testing.T) {
	x, y := ringData(200, 21)
	f := FitClassifier(x, y, 2, Options{NumTrees: 20, Seed: 3})
	imp := f.FeatureImportances(2)
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("importances sum to %v", sum)
	}
	// The ring depends on both coordinates roughly equally.
	if imp[0] < 0.2 || imp[1] < 0.2 {
		t.Fatalf("ring importances unbalanced: %v", imp)
	}
}
