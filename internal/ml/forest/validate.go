package forest

import "fmt"

// Validate checks that an ensemble — typically one deserialised from an
// untrusted artifact — can predict on numFeatures-wide inputs without
// panicking: at least one tree, every tree structurally valid, and every
// tree's class range within the ensemble's (so votes always index in
// bounds). Fitted ensembles always pass.
func (f *Classifier) Validate(numFeatures int) error {
	if f.Classes <= 0 {
		return fmt.Errorf("forest: ensemble has %d classes", f.Classes)
	}
	if len(f.Trees) == 0 {
		return fmt.Errorf("forest: ensemble has no trees")
	}
	if f.Features != 0 && f.Features != numFeatures {
		return fmt.Errorf("forest: ensemble fitted on %d features, want %d", f.Features, numFeatures)
	}
	for i, t := range f.Trees {
		if t == nil {
			return fmt.Errorf("forest: tree %d is nil", i)
		}
		if err := t.Validate(numFeatures); err != nil {
			return fmt.Errorf("forest: tree %d: %w", i, err)
		}
		if t.Classes > f.Classes {
			return fmt.Errorf("forest: tree %d predicts %d classes, ensemble has %d", i, t.Classes, f.Classes)
		}
	}
	return nil
}
