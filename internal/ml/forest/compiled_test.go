package forest

import (
	"testing"

	"kernelselect/internal/mat"
	"kernelselect/internal/xrand"
)

func randomClassification(n, f, classes int, seed uint64) (*mat.Dense, []int) {
	rng := xrand.New(seed)
	x := mat.NewDense(n, f)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		acc := 0.0
		for j := range row {
			row[j] = rng.Float64() * 100
			acc += row[j] * float64(j+1)
		}
		y[i] = int(acc) % classes
	}
	return x, y
}

func TestCompiledForestMatchesClassifier(t *testing.T) {
	x, y := randomClassification(300, 3, 6, 5)
	f := FitClassifier(x, y, 6, Options{NumTrees: 25, Seed: 9})
	cp, ok := CompileClassifier(f)
	if !ok {
		t.Fatal("forest within the class bound did not compile")
	}
	if cp.NumTrees() != len(f.Trees) || cp.Classes() != f.Classes || cp.NumFeatures() != f.Features {
		t.Fatalf("compiled metadata mismatch: %d/%d trees, %d/%d classes, %d/%d features",
			cp.NumTrees(), len(f.Trees), cp.Classes(), f.Classes, cp.NumFeatures(), f.Features)
	}
	probe := func(v []float64) {
		if got, want := cp.Predict(v), f.Predict(v); got != want {
			t.Fatalf("compiled predicts %d, forest predicts %d for %v", got, want, v)
		}
	}
	for i := 0; i < x.Rows(); i++ {
		probe(x.Row(i))
	}
	rng := xrand.New(31)
	v := make([]float64, x.Cols())
	for i := 0; i < 1000; i++ {
		for j := range v {
			v[j] = rng.Float64() * 120
		}
		probe(v)
	}
}

func TestCompiledForestClassBound(t *testing.T) {
	f := &Classifier{Classes: maxCompiledClasses + 1}
	if _, ok := CompileClassifier(f); ok {
		t.Errorf("forest with %d classes should not compile", f.Classes)
	}
}

func TestCompiledForestPredictAllocationFree(t *testing.T) {
	x, y := randomClassification(200, 3, 4, 2)
	f := FitClassifier(x, y, 4, Options{NumTrees: 15, Seed: 3})
	cp, ok := CompileClassifier(f)
	if !ok {
		t.Fatal("compile failed")
	}
	v := []float64{10.0, 20.0, 30.0}
	if allocs := testing.AllocsPerRun(200, func() { _ = cp.Predict(v) }); allocs != 0 {
		t.Errorf("compiled forest Predict allocates %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkCompiledForest(b *testing.B) {
	x, y := randomClassification(500, 3, 8, 7)
	f := FitClassifier(x, y, 8, Options{NumTrees: 100, Seed: 1})
	cp, _ := CompileClassifier(f)
	v := []float64{31.0, 57.0, 12.0}
	b.Run("pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = f.Predict(v)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = cp.Predict(v)
		}
	})
}
