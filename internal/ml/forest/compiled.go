package forest

import (
	"kernelselect/internal/ml/tree"
)

// maxCompiledClasses bounds the vote array a compiled forest keeps on the
// stack. Library class counts in this repository are the pruned
// configuration count (single digits to low tens), so the bound is never hit
// in practice; ensembles over more classes stay on the pointer path.
const maxCompiledClasses = 64

// Compiled is a Classifier with every member tree flattened into the
// contiguous struct-of-arrays form of tree.Compiled. Voting walks the flat
// trees back to back — no per-tree pointer chasing, no per-call vote-slice
// allocation — and resolves ties exactly as the source ensemble does
// (smallest class wins).
type Compiled struct {
	trees    []*tree.Compiled
	classes  int
	features int
}

// CompileClassifier flattens a fitted forest, or reports false when the
// ensemble's class count exceeds the compiled vote-array bound.
func CompileClassifier(f *Classifier) (*Compiled, bool) {
	if f.Classes > maxCompiledClasses {
		return nil, false
	}
	cp := &Compiled{
		trees:    make([]*tree.Compiled, len(f.Trees)),
		classes:  f.Classes,
		features: f.Features,
	}
	for i, t := range f.Trees {
		cp.trees[i] = tree.CompileClassifier(t)
	}
	return cp, true
}

// Predict returns the majority-vote class for x (smallest class on ties),
// identically to Classifier.Predict on the source ensemble, without
// allocating.
func (cp *Compiled) Predict(x []float64) int {
	var votes [maxCompiledClasses]int32
	for _, t := range cp.trees {
		votes[t.Predict(x)]++
	}
	best := 0
	for c := 1; c < cp.classes; c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best
}

// NumTrees returns the ensemble size.
func (cp *Compiled) NumTrees() int { return len(cp.trees) }

// Classes returns the class count the source ensemble was fitted for.
func (cp *Compiled) Classes() int { return cp.classes }

// NumFeatures returns the training feature width recorded on the source
// ensemble (0 when unknown).
func (cp *Compiled) NumFeatures() int { return cp.features }
