// Package pca implements principal component analysis, used by the paper in
// two roles: estimating how many kernel configurations a pruned set needs
// (Figure 3, from the explained-variance spectrum) and providing a reduced
// coordinate system for k-means clustering (the "PCA + k-means" pruning
// method).
//
// The decomposition uses the Gram trick: for an n×d data matrix with n ≪ d
// (the tuning dataset is ~150 shapes × 640 configurations), the eigenvectors
// of the n×n Gram matrix X·Xᵀ yield the principal axes at O(n²d + n³) cost
// instead of eigensolving the d×d covariance. When d ≤ n the covariance is
// eigensolved directly.
package pca

import (
	"fmt"
	"math"

	"kernelselect/internal/mat"
)

// PCA is a fitted decomposition.
type PCA struct {
	Mean       []float64  // column means of the training data
	Components *mat.Dense // k×d, rows are unit-norm principal axes, descending variance

	// ExplainedVariance holds the variance along each retained component;
	// ExplainedVarianceRatio the same as a fraction of the total variance of
	// the training data (all components, not just retained ones).
	ExplainedVariance      []float64
	ExplainedVarianceRatio []float64
}

// Fit computes the top-k principal components of x (rows are samples). If
// k <= 0 or k exceeds the available rank bound min(n-1, d), it is clamped to
// that bound.
func Fit(x *mat.Dense, k int) *PCA {
	n, d := x.Rows(), x.Cols()
	if n < 2 {
		panic(fmt.Sprintf("pca: need at least 2 samples, got %d", n))
	}
	maxK := n - 1
	if d < maxK {
		maxK = d
	}
	if k <= 0 || k > maxK {
		k = maxK
	}

	mean := mat.ColMeans(x)
	xc := x.Clone()
	mat.CenterCols(xc, mean)

	p := &PCA{Mean: mean}
	if n <= d {
		p.fitGram(xc, k)
	} else {
		p.fitCovariance(xc, k)
	}
	return p
}

// fitGram eigensolves X·Xᵀ (n×n) and maps eigenvectors back to feature space.
func (p *PCA) fitGram(xc *mat.Dense, k int) {
	n, d := xc.Rows(), xc.Cols()
	g := mat.Gram(xc)
	vals, vecs := mat.EigSym(g)

	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}

	p.Components = mat.NewDense(k, d)
	p.ExplainedVariance = make([]float64, k)
	p.ExplainedVarianceRatio = make([]float64, k)
	for c := 0; c < k; c++ {
		lambda := vals[c]
		if lambda < 0 {
			lambda = 0
		}
		p.ExplainedVariance[c] = lambda / float64(n-1)
		if total > 0 {
			p.ExplainedVarianceRatio[c] = lambda / total
		}
		if lambda <= 1e-12 {
			continue // zero direction; leave a zero component row
		}
		// v_c = Xᵀ·u_c / sqrt(λ_c)
		u := mat.Col(vecs, c)
		comp := p.Components.Row(c)
		for i := 0; i < n; i++ {
			if u[i] == 0 {
				continue
			}
			mat.Axpy(u[i], xc.Row(i), comp)
		}
		mat.Scale(1/math.Sqrt(lambda), comp)
	}
}

// fitCovariance eigensolves the d×d covariance directly.
func (p *PCA) fitCovariance(xc *mat.Dense, k int) {
	n, d := xc.Rows(), xc.Cols()
	cov := mat.NewDense(d, d)
	for i := 0; i < n; i++ {
		row := xc.Row(i)
		for a := 0; a < d; a++ {
			if row[a] == 0 {
				continue
			}
			crow := cov.Row(a)
			for b := a; b < d; b++ {
				crow[b] += row[a] * row[b]
			}
		}
	}
	inv := 1 / float64(n-1)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) * inv
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	vals, vecs := mat.EigSym(cov)
	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	p.Components = mat.NewDense(k, d)
	p.ExplainedVariance = make([]float64, k)
	p.ExplainedVarianceRatio = make([]float64, k)
	for c := 0; c < k; c++ {
		lambda := vals[c]
		if lambda < 0 {
			lambda = 0
		}
		p.ExplainedVariance[c] = lambda
		if total > 0 {
			p.ExplainedVarianceRatio[c] = lambda / total
		}
		copy(p.Components.Row(c), mat.Col(vecs, c))
	}
}

// NumComponents returns the number of retained components.
func (p *PCA) NumComponents() int { return p.Components.Rows() }

// Transform projects rows of x into the component space, returning an
// n×k matrix of scores.
func (p *PCA) Transform(x *mat.Dense) *mat.Dense {
	if x.Cols() != len(p.Mean) {
		panic(fmt.Sprintf("pca: %d columns, fitted on %d", x.Cols(), len(p.Mean)))
	}
	k := p.NumComponents()
	out := mat.NewDense(x.Rows(), k)
	centered := make([]float64, x.Cols())
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		for j := range centered {
			centered[j] = row[j] - p.Mean[j]
		}
		orow := out.Row(i)
		for c := 0; c < k; c++ {
			orow[c] = mat.Dot(centered, p.Components.Row(c))
		}
	}
	return out
}

// InverseTransform maps component-space scores back to the original feature
// space (the reconstruction from the retained components).
func (p *PCA) InverseTransform(scores *mat.Dense) *mat.Dense {
	k := p.NumComponents()
	if scores.Cols() != k {
		panic(fmt.Sprintf("pca: %d score columns, have %d components", scores.Cols(), k))
	}
	d := len(p.Mean)
	out := mat.NewDense(scores.Rows(), d)
	for i := 0; i < scores.Rows(); i++ {
		row := out.Row(i)
		copy(row, p.Mean)
		for c := 0; c < k; c++ {
			if s := scores.At(i, c); s != 0 {
				mat.Axpy(s, p.Components.Row(c), row)
			}
		}
	}
	return out
}

// ComponentsForVariance returns the smallest number of leading components
// whose cumulative explained-variance ratio reaches the threshold, or the
// retained count if the threshold is never reached. This is the calculation
// behind the paper's "4 components cover 80%, 8 cover 90%, 15 cover 95%".
func (p *PCA) ComponentsForVariance(threshold float64) int {
	var cum float64
	for i, r := range p.ExplainedVarianceRatio {
		cum += r
		if cum >= threshold {
			return i + 1
		}
	}
	return p.NumComponents()
}
