package pca

import (
	"math"
	"testing"

	"kernelselect/internal/mat"
	"kernelselect/internal/xrand"
)

// anisotropicData generates samples along a dominant direction with small
// isotropic noise, so the leading component is known.
func anisotropicData(n, d int, seed uint64) *mat.Dense {
	r := xrand.New(seed)
	dir := make([]float64, d)
	for j := range dir {
		dir[j] = r.NormFloat64()
	}
	mat.Scale(1/mat.Norm2(dir), dir)
	x := mat.NewDense(n, d)
	for i := 0; i < n; i++ {
		t := 10 * r.NormFloat64()
		row := x.Row(i)
		for j := range row {
			row[j] = t*dir[j] + 0.1*r.NormFloat64()
		}
	}
	return x
}

func TestLeadingComponentRecovered(t *testing.T) {
	for _, dims := range [][2]int{{50, 8}, {10, 40}} { // covariance path and Gram path
		x := anisotropicData(dims[0], dims[1], 42)
		p := Fit(x, 3)
		// The dominant ratio should dwarf the rest.
		if p.ExplainedVarianceRatio[0] < 0.9 {
			t.Fatalf("n=%d d=%d: leading ratio %v < 0.9", dims[0], dims[1], p.ExplainedVarianceRatio[0])
		}
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	x := anisotropicData(20, 30, 7)
	p := Fit(x, 5)
	for a := 0; a < p.NumComponents(); a++ {
		ca := p.Components.Row(a)
		if math.Abs(mat.Norm2(ca)-1) > 1e-8 {
			t.Fatalf("component %d norm %v", a, mat.Norm2(ca))
		}
		for b := a + 1; b < p.NumComponents(); b++ {
			if dot := mat.Dot(ca, p.Components.Row(b)); math.Abs(dot) > 1e-7 {
				t.Fatalf("components %d,%d not orthogonal (%v)", a, b, dot)
			}
		}
	}
}

func TestRatiosDescendAndSumBelowOne(t *testing.T) {
	x := anisotropicData(30, 12, 9)
	p := Fit(x, 0) // all components
	var sum float64
	for i, r := range p.ExplainedVarianceRatio {
		if r < 0 || r > 1 {
			t.Fatalf("ratio %v out of range", r)
		}
		if i > 0 && r > p.ExplainedVarianceRatio[i-1]+1e-12 {
			t.Fatalf("ratios not descending at %d", i)
		}
		sum += r
	}
	if sum > 1+1e-9 {
		t.Fatalf("ratio sum %v > 1", sum)
	}
	if sum < 0.999 { // full decomposition accounts for everything
		t.Fatalf("full decomposition ratio sum %v < 1", sum)
	}
}

func TestGramAndCovarianceAgree(t *testing.T) {
	// A square-ish dataset can be fitted through either path; the explained
	// variances must agree.
	x := anisotropicData(16, 16, 13)
	var g, c PCA
	g.Mean = mat.ColMeans(x)
	xc := x.Clone()
	mat.CenterCols(xc, g.Mean)
	g.fitGram(xc, 5)
	c.Mean = g.Mean
	c.fitCovariance(xc, 5)
	for i := 0; i < 5; i++ {
		rel := math.Abs(g.ExplainedVariance[i]-c.ExplainedVariance[i]) /
			math.Max(c.ExplainedVariance[i], 1e-12)
		if rel > 1e-6 {
			t.Fatalf("component %d: gram %v vs cov %v", i, g.ExplainedVariance[i], c.ExplainedVariance[i])
		}
	}
}

func TestTransformInverseTransformReconstruction(t *testing.T) {
	// With all components retained, inverse(transform(x)) == x.
	x := anisotropicData(12, 6, 21)
	p := Fit(x, 0)
	rec := p.InverseTransform(p.Transform(x))
	for i := 0; i < x.Rows(); i++ {
		for j := 0; j < x.Cols(); j++ {
			if math.Abs(rec.At(i, j)-x.At(i, j)) > 1e-6 {
				t.Fatalf("reconstruction error at (%d,%d): %v vs %v", i, j, rec.At(i, j), x.At(i, j))
			}
		}
	}
}

func TestTransformVarianceMatchesExplained(t *testing.T) {
	x := anisotropicData(40, 10, 33)
	p := Fit(x, 4)
	scores := p.Transform(x)
	for c := 0; c < 4; c++ {
		col := mat.Col(scores, c)
		var mean float64
		for _, v := range col {
			mean += v
		}
		mean /= float64(len(col))
		var v float64
		for _, s := range col {
			v += (s - mean) * (s - mean)
		}
		v /= float64(len(col) - 1)
		rel := math.Abs(v-p.ExplainedVariance[c]) / math.Max(p.ExplainedVariance[c], 1e-12)
		if rel > 1e-6 {
			t.Fatalf("component %d: score variance %v vs explained %v", c, v, p.ExplainedVariance[c])
		}
	}
}

func TestComponentsForVariance(t *testing.T) {
	p := &PCA{ExplainedVarianceRatio: []float64{0.5, 0.3, 0.1, 0.05}, Components: mat.NewDense(4, 4)}
	if got := p.ComponentsForVariance(0.5); got != 1 {
		t.Fatalf("50%% threshold = %d comps, want 1", got)
	}
	if got := p.ComponentsForVariance(0.8); got != 2 {
		t.Fatalf("80%% threshold = %d comps, want 2", got)
	}
	if got := p.ComponentsForVariance(0.99); got != 4 {
		t.Fatalf("unreachable threshold = %d comps, want 4 (all)", got)
	}
}

func TestFitClampsK(t *testing.T) {
	x := anisotropicData(5, 10, 3)
	p := Fit(x, 100)
	if p.NumComponents() != 4 { // min(n-1, d)
		t.Fatalf("clamped components = %d, want 4", p.NumComponents())
	}
}

func TestFitPanicsOnTooFewSamples(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single-sample fit accepted")
		}
	}()
	Fit(mat.NewDense(1, 3), 1)
}
