package knn

import (
	"testing"

	"kernelselect/internal/mat"
	"kernelselect/internal/xrand"
)

// trainingSet builds a synthetic set with deliberate duplicate rows so
// distance ties (and therefore the index tie-break) actually occur.
func trainingSet(n, f, classes int, seed uint64) (*mat.Dense, []int) {
	rng := xrand.New(seed)
	x := mat.NewDense(n, f)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		if i >= 2 && i%5 == 0 {
			copy(row, x.Row(i-2)) // exact duplicate of an earlier point
		} else {
			for j := range row {
				row[j] = float64(int(rng.Float64()*20)) / 2 // coarse grid → frequent ties
			}
		}
		y[i] = int(rng.Float64() * float64(classes))
	}
	return x, y
}

func TestCompiledMatchesClassifier(t *testing.T) {
	for _, k := range []int{1, 3, 5, 8} {
		x, y := trainingSet(150, 3, 6, uint64(7+k))
		c := Fit(x, y, 6, k)
		cp, ok := Compile(c)
		if !ok {
			t.Fatalf("k=%d within bounds did not compile", k)
		}
		if cp.K() != k || cp.Classes() != 6 || cp.NumFeatures() != 3 {
			t.Fatalf("k=%d: compiled metadata %d/%d/%d", k, cp.K(), cp.Classes(), cp.NumFeatures())
		}
		probe := func(v []float64) {
			if got, want := cp.Predict(v), c.Predict(v); got != want {
				t.Fatalf("k=%d: compiled predicts %d, knn predicts %d for %v", k, got, want, v)
			}
		}
		// Training points sit at distance zero from themselves and their
		// duplicates — the hardest tie cases — plus a random probe sweep.
		for i := 0; i < x.Rows(); i++ {
			probe(x.Row(i))
		}
		rng := xrand.New(99)
		v := make([]float64, 3)
		for i := 0; i < 2000; i++ {
			for j := range v {
				v[j] = float64(int(rng.Float64()*24)) / 2
			}
			probe(v)
		}
	}
}

func TestCompileBounds(t *testing.T) {
	x, y := trainingSet(30, 3, 2, 1)
	c := Fit(x, y, 2, 9) // k over the stack bound
	if _, ok := Compile(c); ok {
		t.Error("k=9 should not compile")
	}
	c = Fit(x, y, 2, 3)
	c.Classes = maxCompiledClasses + 1
	if _, ok := Compile(c); ok {
		t.Error("class count over the bound should not compile")
	}
}

func TestCompiledPredictAllocationFree(t *testing.T) {
	x, y := trainingSet(120, 3, 4, 3)
	cp, ok := Compile(Fit(x, y, 4, 3))
	if !ok {
		t.Fatal("compile failed")
	}
	v := []float64{4.5, 2.0, 7.5}
	if allocs := testing.AllocsPerRun(200, func() { _ = cp.Predict(v) }); allocs != 0 {
		t.Errorf("compiled Predict allocates %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkCompiledKNN(b *testing.B) {
	x, y := trainingSet(170, 3, 8, 11)
	c := Fit(x, y, 8, 3)
	cp, _ := Compile(c)
	v := []float64{4.5, 2.0, 7.5}
	b.Run("pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = c.Predict(v)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = cp.Predict(v)
		}
	})
}
