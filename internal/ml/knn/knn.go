// Package knn implements a k-nearest-neighbour classifier, two instances of
// which (k = 1 and k = 3) appear in the paper's Table I comparison of
// runtime kernel selectors.
package knn

import (
	"fmt"
	"sort"

	"kernelselect/internal/mat"
)

// Classifier is a fitted (memorised) k-NN model.
type Classifier struct {
	X       *mat.Dense
	Y       []int
	K       int
	Classes int
}

// Fit memorises the training set. k must be in [1, rows].
func Fit(x *mat.Dense, y []int, classes, k int) *Classifier {
	if x.Rows() != len(y) {
		panic(fmt.Sprintf("knn: %d feature rows vs %d labels", x.Rows(), len(y)))
	}
	if k < 1 || k > x.Rows() {
		panic(fmt.Sprintf("knn: k=%d out of [1,%d]", k, x.Rows()))
	}
	for _, l := range y {
		if l < 0 || l >= classes {
			panic(fmt.Sprintf("knn: label %d out of [0,%d)", l, classes))
		}
	}
	return &Classifier{X: x.Clone(), Y: append([]int(nil), y...), K: k, Classes: classes}
}

// Predict returns the majority class among the k nearest training points
// (Euclidean distance; distance ties resolved by training index, vote ties
// by smallest class).
// NumFeatures returns the training feature width (0 on an unfitted model).
func (c *Classifier) NumFeatures() int {
	if c.X == nil {
		return 0
	}
	return c.X.Cols()
}

func (c *Classifier) Predict(x []float64) int {
	type neighbour struct {
		d   float64
		idx int
	}
	nbs := make([]neighbour, c.X.Rows())
	for i := range nbs {
		nbs[i] = neighbour{d: mat.SqDist(c.X.Row(i), x), idx: i}
	}
	sort.Slice(nbs, func(a, b int) bool {
		if nbs[a].d != nbs[b].d {
			return nbs[a].d < nbs[b].d
		}
		return nbs[a].idx < nbs[b].idx
	})
	votes := make([]int, c.Classes)
	for _, nb := range nbs[:c.K] {
		votes[c.Y[nb.idx]]++
	}
	best := 0
	for cl, v := range votes {
		if v > votes[best] {
			best = cl
		}
	}
	return best
}
