package knn

// maxCompiledK bounds the neighbour scratch a compiled classifier keeps on
// the stack; the paper's Table I uses k ∈ {1, 3}, so the bound is generous.
// maxCompiledClasses likewise bounds the vote array (library class counts are
// the pruned configuration count — single digits to low tens).
const (
	maxCompiledK       = 8
	maxCompiledClasses = 64
)

// Compiled is a Classifier flattened for the serving hot path: training rows
// live in one contiguous row-major slice, labels in a parallel int32 slice,
// and Predict keeps its k-nearest scratch in stack arrays. The pointer form
// allocates a neighbour slice per call and sorts all n rows; the compiled
// form allocates nothing and does one insertion-bounded pass.
type Compiled struct {
	flat    []float64 // rows × cols, row-major
	labels  []int32
	rows    int
	cols    int
	k       int
	classes int
}

// Compile flattens a fitted classifier, or reports false when k or the class
// count exceeds the stack-scratch bounds (such models stay on the pointer
// path).
func Compile(c *Classifier) (*Compiled, bool) {
	if c.K > maxCompiledK || c.Classes > maxCompiledClasses {
		return nil, false
	}
	rows, cols := c.X.Rows(), c.X.Cols()
	cp := &Compiled{
		flat:    make([]float64, 0, rows*cols),
		labels:  make([]int32, rows),
		rows:    rows,
		cols:    cols,
		k:       c.K,
		classes: c.Classes,
	}
	for i := 0; i < rows; i++ {
		cp.flat = append(cp.flat, c.X.Row(i)...)
		cp.labels[i] = int32(c.Y[i])
	}
	return cp, true
}

// Predict returns the majority class among the k nearest training points,
// identically to Classifier.Predict (distance ties resolve to the earlier
// training index, vote ties to the smallest class), without allocating.
func (cp *Compiled) Predict(x []float64) int {
	var nd [maxCompiledK]float64 // ascending (distance, insertion-order) top-k
	var nl [maxCompiledK]int32   // label of each kept neighbour
	k, cols := cp.k, cp.cols
	count := 0
	for i := 0; i < cp.rows; i++ {
		row := cp.flat[i*cols : i*cols+cols]
		d := 0.0
		for j, v := range row {
			diff := v - x[j]
			d += diff * diff
		}
		pos := count
		if count == k {
			// Strict < keeps the earlier-index neighbour on distance ties,
			// matching the (distance, index) sort of the pointer path.
			if d >= nd[k-1] {
				continue
			}
			pos = k - 1
		} else {
			count++
		}
		for pos > 0 && nd[pos-1] > d {
			nd[pos], nl[pos] = nd[pos-1], nl[pos-1]
			pos--
		}
		nd[pos], nl[pos] = d, cp.labels[i]
	}
	var votes [maxCompiledClasses]int32
	for j := 0; j < count; j++ {
		votes[nl[j]]++
	}
	best := 0
	for c := 1; c < cp.classes; c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best
}

// K returns the neighbour count the source classifier was fitted with.
func (cp *Compiled) K() int { return cp.k }

// Classes returns the class count the source classifier was fitted for.
func (cp *Compiled) Classes() int { return cp.classes }

// NumFeatures returns the training feature width.
func (cp *Compiled) NumFeatures() int { return cp.cols }
