package knn

import (
	"testing"

	"kernelselect/internal/mat"
	"kernelselect/internal/ml/metrics"
	"kernelselect/internal/xrand"
)

func gaussians(n int, seed uint64) (*mat.Dense, []int) {
	r := xrand.New(seed)
	x := mat.NewDense(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		y[i] = c
		x.Set(i, 0, 5*float64(c)+r.NormFloat64()*0.4)
		x.Set(i, 1, -3*float64(c)+r.NormFloat64()*0.4)
	}
	return x, y
}

func Test1NNMemorisesTrainingSet(t *testing.T) {
	x, y := gaussians(60, 1)
	c := Fit(x, y, 3, 1)
	for i := range y {
		if got := c.Predict(x.Row(i)); got != y[i] {
			t.Fatalf("sample %d: 1-NN predicted %d, want %d", i, got, y[i])
		}
	}
}

func TestKNNGeneralisesOnBlobs(t *testing.T) {
	x, y := gaussians(90, 2)
	c := Fit(x, y, 3, 3)
	xt, yt := gaussians(60, 77)
	pred := make([]int, len(yt))
	for i := range yt {
		pred[i] = c.Predict(xt.Row(i))
	}
	if acc := metrics.Accuracy(pred, yt); acc < 0.95 {
		t.Fatalf("3-NN blob accuracy %v < 0.95", acc)
	}
}

func TestFitCopiesData(t *testing.T) {
	x, y := gaussians(10, 3)
	c := Fit(x, y, 3, 1)
	orig := c.Y[0]
	x.Set(0, 0, 1e9)
	y[0] = orig + 1
	if c.X.At(0, 0) == 1e9 {
		t.Fatal("Fit did not copy features")
	}
	if c.Y[0] != orig {
		t.Fatal("Fit did not copy labels")
	}
}

func TestMajorityVoteOverrulesNearest(t *testing.T) {
	// Nearest point says class 1; the two next say class 0. k=3 → class 0.
	x := mat.FromRows([][]float64{{0.9}, {1.2}, {1.3}})
	y := []int{1, 0, 0}
	c := Fit(x, y, 2, 3)
	if got := c.Predict([]float64{1.0}); got != 0 {
		t.Fatalf("3-NN predicted %d, want majority class 0", got)
	}
	c1 := Fit(x, y, 2, 1)
	if got := c1.Predict([]float64{1.0}); got != 1 {
		t.Fatalf("1-NN predicted %d, want nearest class 1", got)
	}
}

func TestFitPanics(t *testing.T) {
	x, y := gaussians(10, 4)
	for name, f := range map[string]func(){
		"k too large": func() { Fit(x, y, 3, 11) },
		"k zero":      func() { Fit(x, y, 3, 0) },
		"bad label":   func() { Fit(x, []int{9, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 3, 1) },
		"mismatch":    func() { Fit(x, y[:4], 3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}
