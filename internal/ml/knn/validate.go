package knn

import "fmt"

// Validate checks that a classifier — typically one deserialised from an
// untrusted artifact — can predict on numFeatures-wide inputs without
// panicking: a training matrix of the right width, labels matching it
// row-for-row and within [0, Classes), and K within [1, rows]. Fitted
// classifiers always pass.
func (c *Classifier) Validate(numFeatures int) error {
	if c.X == nil {
		return fmt.Errorf("knn: classifier has no training matrix")
	}
	if c.X.Cols() != numFeatures {
		return fmt.Errorf("knn: training matrix has %d features, want %d", c.X.Cols(), numFeatures)
	}
	if len(c.Y) != c.X.Rows() {
		return fmt.Errorf("knn: %d labels for %d training rows", len(c.Y), c.X.Rows())
	}
	if c.Classes <= 0 {
		return fmt.Errorf("knn: classifier has %d classes", c.Classes)
	}
	for i, l := range c.Y {
		if l < 0 || l >= c.Classes {
			return fmt.Errorf("knn: label %d of row %d out of [0,%d)", l, i, c.Classes)
		}
	}
	if c.K < 1 || c.K > c.X.Rows() {
		return fmt.Errorf("knn: k=%d out of [1,%d]", c.K, c.X.Rows())
	}
	return nil
}
