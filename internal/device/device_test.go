package device

import (
	"fmt"
	"testing"
)

func TestAllSpecsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBrokenSpec(t *testing.T) {
	s := R9Nano()
	s.ComputeUnits = 0
	if s.Validate() == nil {
		t.Fatal("zero compute units accepted")
	}
	s = R9Nano()
	s.LaunchOverheadUS = -1
	if s.Validate() == nil {
		t.Fatal("negative launch overhead accepted")
	}
}

func TestR9NanoPeak(t *testing.T) {
	// Fiji XT: 64 CU × 64 lanes × 2 flops × 1.0 GHz = 8192 GFLOP/s.
	got := R9Nano().PeakGFLOPS()
	if got != 8192 {
		t.Fatalf("R9 Nano peak = %v GFLOP/s, want 8192", got)
	}
}

func TestEffectiveLanes(t *testing.T) {
	if got := R9Nano().EffectiveLanesPerCU(); got != 64 {
		t.Fatalf("R9 Nano lanes/CU = %d, want 64", got)
	}
}

func TestDeviceOrderingByPeak(t *testing.T) {
	// The device range must actually span desktop → integrated → embedded.
	r9, gen9, mali := R9Nano(), IntegratedGen9(), EmbeddedMaliG72()
	if !(r9.PeakGFLOPS() > gen9.PeakGFLOPS() && gen9.PeakGFLOPS() > mali.PeakGFLOPS()) {
		t.Fatalf("peaks not ordered: %v %v %v", r9.PeakGFLOPS(), gen9.PeakGFLOPS(), mali.PeakGFLOPS())
	}
	if !(r9.DRAMBandwidthGB > gen9.DRAMBandwidthGB && gen9.DRAMBandwidthGB > mali.DRAMBandwidthGB) {
		t.Fatal("bandwidths not ordered")
	}
}

func TestAllReturnsBenchmarkPlatformFirst(t *testing.T) {
	all := All()
	if len(all) != 3 || all[0].Name != "amd-r9-nano" {
		t.Fatalf("All() = %v", all)
	}
}

func TestByName(t *testing.T) {
	for _, want := range All() {
		got, err := ByName(want.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", want.Name, err)
		}
		if got != want {
			t.Fatalf("ByName(%q) returned a different spec", want.Name)
		}
	}
	if _, err := ByName("martian-npu"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestFeaturesWidthAndDistinctness(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range append(All(), Synthetics()...) {
		f := s.Features()
		if len(f) != NumFeatures {
			t.Fatalf("%s: %d features, want %d", s.Name, len(f), NumFeatures)
		}
		for i, v := range f {
			if v <= 0 {
				t.Fatalf("%s: feature %d is %v, want positive", s.Name, i, v)
			}
		}
		key := fmt.Sprint(f)
		if seen[key] {
			t.Fatalf("%s: feature vector collides with another device", s.Name)
		}
		seen[key] = true
	}
}

func TestFeatureNamesMatchWidth(t *testing.T) {
	names := FeatureNames()
	if len(names) != NumFeatures {
		t.Fatalf("%d feature names for %d features", len(names), NumFeatures)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("feature names not unique and non-empty: %v", names)
		}
		seen[n] = true
	}
}

func TestSyntheticsValidateAndStayHeldOut(t *testing.T) {
	trained := map[string]bool{}
	for _, s := range All() {
		trained[s.Name] = true
	}
	syn := Synthetics()
	if len(syn) < 3 {
		t.Fatalf("%d synthetic specs, want at least 3 for the held-out table", len(syn))
	}
	seen := map[string]bool{}
	for _, s := range syn {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if trained[s.Name] {
			t.Errorf("%s: synthetic spec shadows a training device", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("%s: duplicate synthetic name", s.Name)
		}
		seen[s.Name] = true

		got, err := ByName(s.Name)
		if err != nil {
			t.Errorf("ByName(%q): %v", s.Name, err)
		} else if got != s {
			t.Errorf("ByName(%q) returned a different spec", s.Name)
		}
	}
}
