package device

import "testing"

func TestAllSpecsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBrokenSpec(t *testing.T) {
	s := R9Nano()
	s.ComputeUnits = 0
	if s.Validate() == nil {
		t.Fatal("zero compute units accepted")
	}
	s = R9Nano()
	s.LaunchOverheadUS = -1
	if s.Validate() == nil {
		t.Fatal("negative launch overhead accepted")
	}
}

func TestR9NanoPeak(t *testing.T) {
	// Fiji XT: 64 CU × 64 lanes × 2 flops × 1.0 GHz = 8192 GFLOP/s.
	got := R9Nano().PeakGFLOPS()
	if got != 8192 {
		t.Fatalf("R9 Nano peak = %v GFLOP/s, want 8192", got)
	}
}

func TestEffectiveLanes(t *testing.T) {
	if got := R9Nano().EffectiveLanesPerCU(); got != 64 {
		t.Fatalf("R9 Nano lanes/CU = %d, want 64", got)
	}
}

func TestDeviceOrderingByPeak(t *testing.T) {
	// The device range must actually span desktop → integrated → embedded.
	r9, gen9, mali := R9Nano(), IntegratedGen9(), EmbeddedMaliG72()
	if !(r9.PeakGFLOPS() > gen9.PeakGFLOPS() && gen9.PeakGFLOPS() > mali.PeakGFLOPS()) {
		t.Fatalf("peaks not ordered: %v %v %v", r9.PeakGFLOPS(), gen9.PeakGFLOPS(), mali.PeakGFLOPS())
	}
	if !(r9.DRAMBandwidthGB > gen9.DRAMBandwidthGB && gen9.DRAMBandwidthGB > mali.DRAMBandwidthGB) {
		t.Fatal("bandwidths not ordered")
	}
}

func TestAllReturnsBenchmarkPlatformFirst(t *testing.T) {
	all := All()
	if len(all) != 3 || all[0].Name != "amd-r9-nano" {
		t.Fatalf("All() = %v", all)
	}
}
