// Package device describes the GPU-like targets the performance model in
// internal/sim can price kernels for. The paper's abstract motivates kernel
// selection "on a range of heterogeneous devices from desktop GPUs to
// embedded accelerators"; this package supplies representatives of that
// range, headed by the paper's actual benchmark platform (AMD R9 Nano).
package device

import "fmt"

// Spec describes a device for the analytical performance model. The
// parameters follow the GCN3 ("Fiji") machine organisation but are general
// enough for other SIMT designs: compute units composed of SIMD pipes, a
// register file and local scratchpad per CU, and a two-level cache in front
// of DRAM.
type Spec struct {
	Name string

	ComputeUnits   int // number of CUs
	SIMDsPerCU     int // SIMD pipes per CU
	WaveSize       int // work-items per hardware wave
	MaxWavesPerSIM int // resident wave slots per SIMD
	VGPRsPerLane   int // 32-bit registers available per lane per SIMD
	LDSBytesPerCU  int // local scratchpad per CU

	IssueClocksPerWave int // clocks a SIMD needs to issue one wave (4 on GCN: SIMD16 × wave64)

	ClockMHz        int     // shader clock
	FMAsPerLane     int     // fused multiply-adds issued per lane per clock
	DRAMBandwidthGB float64 // GB/s
	L1BytesPerCU    int
	L2Bytes         int
	CacheLineBytes  int

	LaunchOverheadUS float64 // fixed per-kernel dispatch cost in microseconds
}

// Validate reports whether the specification is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.ComputeUnits <= 0, s.SIMDsPerCU <= 0, s.WaveSize <= 0,
		s.MaxWavesPerSIM <= 0, s.VGPRsPerLane <= 0, s.LDSBytesPerCU <= 0,
		s.IssueClocksPerWave <= 0,
		s.ClockMHz <= 0, s.FMAsPerLane <= 0, s.DRAMBandwidthGB <= 0,
		s.L1BytesPerCU <= 0, s.L2Bytes <= 0, s.CacheLineBytes <= 0:
		return fmt.Errorf("device: %q has a non-positive parameter", s.Name)
	case s.LaunchOverheadUS < 0:
		return fmt.Errorf("device: %q has negative launch overhead", s.Name)
	}
	return nil
}

// PeakGFLOPS returns the single-precision peak in GFLOP/s
// (2 flops per FMA per effective lane per clock across the whole device).
func (s Spec) PeakGFLOPS() float64 {
	eff := float64(s.ComputeUnits) * float64(s.EffectiveLanesPerCU())
	return eff * float64(s.FMAsPerLane) * 2 * float64(s.ClockMHz) / 1000
}

// EffectiveLanesPerCU returns the FMA lanes a CU retires per clock. On GCN
// each of the 4 SIMDs is physically 16 lanes wide executing a wave64 over 4
// clocks, so a CU retires 4 × 64/4 = 64 lanes per clock.
func (s Spec) EffectiveLanesPerCU() int {
	return s.SIMDsPerCU * s.WaveSize / s.IssueClocksPerWave
}

// R9Nano returns the paper's benchmark platform: AMD R9 Nano (Fiji XT,
// GCN3): 64 CUs, 4×SIMD16 per CU, wave64, 256 VGPRs, 64 KiB LDS per CU,
// 1000 MHz, 8.19 TFLOP/s fp32, 4 GiB HBM at 512 GB/s, 16 KiB L1 per CU,
// 2 MiB L2.
func R9Nano() Spec {
	return Spec{
		Name:               "amd-r9-nano",
		ComputeUnits:       64,
		SIMDsPerCU:         4,
		WaveSize:           64,
		MaxWavesPerSIM:     10,
		IssueClocksPerWave: 4,
		VGPRsPerLane:       256,
		LDSBytesPerCU:      64 << 10,
		ClockMHz:           1000,
		FMAsPerLane:        1,
		DRAMBandwidthGB:    512,
		L1BytesPerCU:       16 << 10,
		L2Bytes:            2 << 20,
		CacheLineBytes:     64,
		LaunchOverheadUS:   8,
	}
}

// EmbeddedMaliG72 returns an embedded-class accelerator model loosely shaped
// like an Arm Mali G72 MP12: far fewer lanes, modest bandwidth, small
// caches, and higher relative launch cost — the "embedded accelerators" end
// of the paper's device range.
func EmbeddedMaliG72() Spec {
	return Spec{
		Name:               "embedded-mali-g72",
		ComputeUnits:       12,
		SIMDsPerCU:         1,
		WaveSize:           16,
		MaxWavesPerSIM:     6,
		IssueClocksPerWave: 4,
		VGPRsPerLane:       128,
		LDSBytesPerCU:      32 << 10,
		ClockMHz:           850,
		FMAsPerLane:        2,
		DRAMBandwidthGB:    14.9,
		L1BytesPerCU:       8 << 10,
		L2Bytes:            1 << 20,
		CacheLineBytes:     64,
		LaunchOverheadUS:   25,
	}
}

// IntegratedGen9 returns a desktop integrated-GPU model loosely shaped like
// an Intel Gen9 GT3e: mid lane count, shared-DRAM bandwidth, generous
// caches — the middle of the device range.
func IntegratedGen9() Spec {
	return Spec{
		Name:               "integrated-gen9",
		ComputeUnits:       24,
		SIMDsPerCU:         2,
		WaveSize:           32,
		MaxWavesPerSIM:     8,
		IssueClocksPerWave: 4,
		VGPRsPerLane:       128,
		LDSBytesPerCU:      64 << 10,
		ClockMHz:           1150,
		FMAsPerLane:        1,
		DRAMBandwidthGB:    34,
		L1BytesPerCU:       16 << 10,
		L2Bytes:            1536 << 10,
		CacheLineBytes:     64,
		LaunchOverheadUS:   12,
	}
}

// All returns every built-in device, benchmark platform first. These are the
// training devices: multi-device datasets and the unified selector are built
// over exactly this list.
func All() []Spec {
	return []Spec{R9Nano(), IntegratedGen9(), EmbeddedMaliG72()}
}

// Synthetics returns held-out device specs that no selector trains on:
// perturbations of the three real devices sweeping the axes the performance
// model's regimes pivot on (CU count, LDS capacity, DRAM bandwidth). They
// exist to measure generalization — a unified selector's score on these is
// its score on hardware it has never seen — and are deliberately excluded
// from All().
func Synthetics() []Spec {
	half := R9Nano()
	half.Name = "synthetic-fiji-32cu"
	half.ComputeUnits = 32
	half.DRAMBandwidthGB = 320

	hbm2 := R9Nano()
	hbm2.Name = "synthetic-fiji-hbm2"
	hbm2.DRAMBandwidthGB = 1024
	hbm2.L2Bytes = 4 << 20
	hbm2.ClockMHz = 1200

	wide := IntegratedGen9()
	wide.Name = "synthetic-gen9-lowlds"
	wide.ComputeUnits = 48
	wide.LDSBytesPerCU = 32 << 10
	wide.DRAMBandwidthGB = 51

	bigMali := EmbeddedMaliG72()
	bigMali.Name = "synthetic-mali-28cu"
	bigMali.ComputeUnits = 28
	bigMali.DRAMBandwidthGB = 25.6
	bigMali.LDSBytesPerCU = 64 << 10

	return []Spec{half, hbm2, wide, bigMali}
}

// ByName returns the built-in device whose Spec.Name matches. Synthetic
// held-out specs resolve too, so a unified serving daemon can route requests
// for devices outside the training set.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range Synthetics() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("device: unknown device %q", name)
}

// NumFeatures is the width of the vector Features returns.
const NumFeatures = 7

// FeatureNames returns identifier-safe names for the columns of Features, in
// the same order — the device half of the variable names generated selector
// code uses (gemm shapes supply m, k, n).
func FeatureNames() []string {
	return []string{
		"devCUs",
		"devLanes",
		"devGFLOPS",
		"devBandwidthGB",
		"devLDSBytes",
		"devL2Bytes",
		"devLaunchUS",
	}
}

// Features returns the device as an ML feature vector, the cross-device
// counterpart of gemm.Shape.Features: a selector trained on shape features
// with these appended can condition its dispatch on the deployment target.
// The fields chosen are the ones the performance model's regimes pivot on —
// parallel width, peak throughput, bandwidth, on-chip capacities, and
// dispatch cost.
func (s Spec) Features() []float64 {
	return []float64{
		float64(s.ComputeUnits),
		float64(s.EffectiveLanesPerCU()),
		s.PeakGFLOPS(),
		s.DRAMBandwidthGB,
		float64(s.LDSBytesPerCU),
		float64(s.L2Bytes),
		s.LaunchOverheadUS,
	}
}
