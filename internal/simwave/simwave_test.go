package simwave

import (
	"sort"
	"testing"

	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
)

func newSim() *Sim { return New(device.R9Nano()) }

func TestNewPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec accepted")
		}
	}()
	New(device.Spec{})
}

func TestKernelTimePositiveAndValidates(t *testing.T) {
	s := newSim()
	cfg := gemm.Config{TileRows: 4, TileCols: 4, AccDepth: 4, WG: gemm.WorkGroup{R: 16, C: 16}}
	tm, err := s.KernelTime(cfg, gemm.Shape{M: 512, N: 512, K: 256})
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Fatalf("time %v", tm)
	}
	if _, err := s.KernelTime(gemm.Config{TileRows: 3}, gemm.Shape{M: 1, N: 1, K: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := s.KernelTime(cfg, gemm.Shape{M: 0, N: 1, K: 1}); err == nil {
		t.Fatal("invalid shape accepted")
	}
}

func TestTimeMonotoneInK(t *testing.T) {
	s := newSim()
	cfg := gemm.Config{TileRows: 2, TileCols: 2, AccDepth: 4, WG: gemm.WorkGroup{R: 8, C: 8}}
	prev := 0.0
	for _, k := range []int{64, 256, 1024, 4096} {
		tm, err := s.KernelTime(cfg, gemm.Shape{M: 512, N: 512, K: k})
		if err != nil {
			t.Fatal(err)
		}
		if tm <= prev {
			t.Fatalf("time not monotone in K: %v after %v", tm, prev)
		}
		prev = tm
	}
}

func TestDeterministic(t *testing.T) {
	s := newSim()
	cfg := gemm.Config{TileRows: 4, TileCols: 2, AccDepth: 8, WG: gemm.WorkGroup{R: 8, C: 16}}
	shape := gemm.Shape{M: 777, N: 333, K: 99}
	a, _ := s.KernelTime(cfg, shape)
	b, _ := s.KernelTime(cfg, shape)
	if a != b {
		t.Fatal("microsimulator not deterministic")
	}
}

func TestBelowPeak(t *testing.T) {
	s := newSim()
	peak := s.Dev.PeakGFLOPS()
	for _, cfg := range gemm.AllConfigs()[:40] {
		g, err := s.GFLOPS(cfg, gemm.Shape{M: 2048, N: 2048, K: 512})
		if err != nil {
			t.Fatal(err)
		}
		if g <= 0 || g >= peak {
			t.Fatalf("%v: %v GFLOPS vs peak %v", cfg, g, peak)
		}
	}
}

func TestBigTilesBeatTinyTilesAtScale(t *testing.T) {
	// The microsimulator must reproduce the basic arithmetic-intensity
	// ordering: at device-filling sizes the 4×4 register tile beats 1×1.
	s := newSim()
	shape := gemm.Shape{M: 4096, N: 4096, K: 512}
	tiny, _ := s.GFLOPS(gemm.Config{TileRows: 1, TileCols: 1, AccDepth: 1, WG: gemm.WorkGroup{R: 16, C: 16}}, shape)
	big, _ := s.GFLOPS(gemm.Config{TileRows: 4, TileCols: 4, AccDepth: 4, WG: gemm.WorkGroup{R: 16, C: 16}}, shape)
	if big <= tiny {
		t.Fatalf("4x4a4 (%v) not faster than 1x1a1 (%v)", big, tiny)
	}
}

func spearman(a, b []float64) float64 {
	rank := func(v []float64) []float64 {
		idx := make([]int, len(v))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool { return v[idx[x]] < v[idx[y]] })
		r := make([]float64, len(v))
		for rk, i := range idx {
			r[i] = float64(rk)
		}
		return r
	}
	ra, rb := rank(a), rank(b)
	n := float64(len(a))
	var d2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

// TestCrossValidatesAnalyticalModel is the package's reason to exist: the
// two independently constructed models must broadly agree on configuration
// rankings (Spearman ≥ 0.6 on a 64-config sample across representative
// shapes).
func TestCrossValidatesAnalyticalModel(t *testing.T) {
	analytic := sim.New(device.R9Nano())
	micro := newSim()
	cfgs := gemm.AllConfigs()
	var sample []gemm.Config
	for i := 0; i < len(cfgs); i += 10 {
		sample = append(sample, cfgs[i])
	}
	shapes := []gemm.Shape{
		{M: 12544, K: 576, N: 128},
		{M: 3136, K: 64, N: 256},
		{M: 1, K: 4096, N: 1000},
		{M: 196, K: 2304, N: 512},
	}
	for _, shape := range shapes {
		a := make([]float64, len(sample))
		b := make([]float64, len(sample))
		for i, cfg := range sample {
			a[i] = analytic.GFLOPS(cfg, shape)
			g, err := micro.GFLOPS(cfg, shape)
			if err != nil {
				t.Fatal(err)
			}
			b[i] = g
		}
		if rho := spearman(a, b); rho < 0.6 {
			t.Errorf("%v: model rank correlation %.3f < 0.6", shape, rho)
		}
	}
}

func TestOccupancyMatchesAnalyticalModel(t *testing.T) {
	// Residency must agree between the models by construction.
	analytic := sim.New(device.R9Nano())
	micro := newSim()
	for _, cfg := range gemm.AllConfigs()[:80] {
		b := analytic.Price(cfg, gemm.Shape{M: 4096, N: 4096, K: 256})
		g, _ := micro.occupancy(cfg)
		if g != b.GroupsPerCU {
			t.Fatalf("%v: groupsPerCU %d vs analytical %d", cfg, g, b.GroupsPerCU)
		}
	}
}
