// Package simwave is a wave-level discrete-event microsimulator for the
// tiled GEMM kernels: a second, independent performance model used to
// cross-validate the closed-form model in internal/sim.
//
// Where internal/sim prices a kernel with roofline-style formulas, simwave
// *executes* the kernel's phase structure on a simulated compute unit:
// resident waves alternate global-load, barrier and FMA-burst segments; SIMD
// issue ports serialise compute segments of co-resident waves; the memory
// port imposes latency and processor-shared bandwidth; work-group barriers
// really synchronise. Because every work-group of a GEMM dispatch performs
// identical work, one CU with a steady-state resident set is representative;
// the kernel time scales the simulated batch by the dispatch-round count.
//
// The microsimulator is too slow to brute-force the full 640 × 156 tuning
// matrix (that is what the analytical model is for) but fast enough to spot-
// check rankings — see the cross-validation tests and
// BenchmarkModelCrossValidation.
package simwave

import (
	"container/heap"
	"fmt"

	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
)

// Sim simulates kernels on one device.
type Sim struct {
	Dev device.Spec

	// MemLatencyCycles is the unloaded global-memory round trip.
	MemLatencyCycles float64
	// LDSOpCost and OtherOpCost weigh non-FMA issue slots, matching the
	// analytical model's defaults so the two models share instruction
	// accounting but differ in everything temporal.
	LDSOpCost   float64
	OtherOpCost float64
}

// New returns a microsimulator for dev with default parameters.
func New(dev device.Spec) *Sim {
	if err := dev.Validate(); err != nil {
		panic(err)
	}
	return &Sim{
		Dev:              dev,
		MemLatencyCycles: 350,
		LDSOpCost:        0.55,
		OtherOpCost:      1.0,
	}
}

// segment kinds of a wave's program.
type segKind int

const (
	segCompute segKind = iota // occupies the wave's SIMD for Cycles
	segMemory                 // latency + shared-bandwidth transfer of Bytes
	segBarrier                // waits for all waves of the group
)

type segment struct {
	kind   segKind
	cycles float64 // compute
	bytes  float64 // memory
}

// buildProgram derives one wave's segment list from the kernel structure.
func (s *Sim) buildProgram(cfg gemm.Config, shape gemm.Shape) []segment {
	tr, tc, acc := cfg.TileRows, cfg.TileCols, cfg.AccDepth
	bm, bn := cfg.GroupTile()
	groupItems := cfg.WG.R * cfg.WG.C
	wavesPerGroup := (groupItems + s.Dev.WaveSize - 1) / s.Dev.WaveSize
	lanes := float64(s.Dev.EffectiveLanesPerCU()) / float64(s.Dev.SIMDsPerCU) // lanes per SIMD-equivalent issue slot

	chunks := (shape.K + acc - 1) / acc

	// Per-item instruction counts per chunk (same accounting as the
	// analytical model's ALU utilisation).
	fma := float64(tr * tc * acc)
	ldsReads := float64(acc * (tr + tc))
	staging := float64((bm+bn)*acc) / float64(groupItems)
	overhead := 8.0 + 2.0*float64(acc)
	issuePerItem := fma + s.LDSOpCost*(ldsReads+2*staging) + s.OtherOpCost*(overhead+staging)

	itemsPerWave := float64(s.Dev.WaveSize)
	cyclesPerChunk := issuePerItem * itemsPerWave / lanes

	// Global bytes staged per chunk per wave (the group's tile split across
	// its waves).
	bytesPerChunk := 4 * float64((bm+bn)*acc) / float64(wavesPerGroup)

	// Output write-back per wave.
	storeBytes := 4 * float64(bm*bn) / float64(wavesPerGroup)

	prog := make([]segment, 0, 3*chunks+1)
	for c := 0; c < chunks; c++ {
		prog = append(prog,
			segment{kind: segMemory, bytes: bytesPerChunk},
			segment{kind: segBarrier},
			segment{kind: segCompute, cycles: cyclesPerChunk},
			segment{kind: segBarrier},
		)
	}
	prog = append(prog, segment{kind: segMemory, bytes: storeBytes})
	return prog
}

// waveState tracks one simulated wave.
type waveState struct {
	group int
	simd  int // home SIMD issue port
	pc    int // next segment index
}

// event is a future wave wake-up.
type event struct {
	at   float64 // cycles
	wave int
}

type eventQueue []event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// Occupancy mirrors the analytical model's residency computation so the two
// models agree on *what* is resident and differ only in *how it runs*.
func (s *Sim) occupancy(cfg gemm.Config) (groupsPerCU, wavesPerGroup int) {
	d := s.Dev
	groupItems := cfg.WG.R * cfg.WG.C
	wavesPerGroup = (groupItems + d.WaveSize - 1) / d.WaveSize
	regs := cfg.RegistersPerItem()
	wavesByVGPR := d.VGPRsPerLane / regs
	if wavesByVGPR < 1 {
		wavesByVGPR = 1
	}
	groupsByLDS := d.LDSBytesPerCU / cfg.LocalMemoryBytes()
	if groupsByLDS < 1 {
		groupsByLDS = 1
	}
	waveSlots := d.SIMDsPerCU * d.MaxWavesPerSIM
	groupsPerCU = groupsByLDS
	if groupsPerCU > 16 {
		groupsPerCU = 16
	}
	if byWaves := waveSlots / wavesPerGroup; groupsPerCU > byWaves {
		groupsPerCU = byWaves
	}
	if byRegs := wavesByVGPR * d.SIMDsPerCU / wavesPerGroup; groupsPerCU > byRegs {
		groupsPerCU = byRegs
	}
	if groupsPerCU < 1 {
		groupsPerCU = 1
	}
	return groupsPerCU, wavesPerGroup
}

// KernelTime simulates cfg on shape and returns seconds.
func (s *Sim) KernelTime(cfg gemm.Config, shape gemm.Shape) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if err := shape.Validate(); err != nil {
		return 0, err
	}
	prog := s.buildProgram(cfg, shape)
	groupsPerCU, wavesPerGroup := s.occupancy(cfg)

	bm, bn := cfg.GroupTile()
	groupsM := (shape.M + bm - 1) / bm
	groupsN := (shape.N + bn - 1) / bn
	numGroups := groupsM * groupsN

	batchCycles := s.simulateCU(prog, groupsPerCU, wavesPerGroup)

	// One simulated CU carries groupsPerCU groups per batch; the device
	// executes numGroups across ComputeUnits CUs in rounds.
	maxConcurrent := s.Dev.ComputeUnits * groupsPerCU
	rounds := (numGroups + maxConcurrent - 1) / maxConcurrent
	// The final round may be partially filled; its duration is unchanged
	// (a CU with fewer co-resident groups is no slower), so round count
	// times batch duration bounds the makespan well for identical groups.
	totalCycles := float64(rounds) * batchCycles
	seconds := totalCycles/(float64(s.Dev.ClockMHz)*1e6) + s.Dev.LaunchOverheadUS*1e-6
	return seconds, nil
}

// GFLOPS converts KernelTime to achieved GFLOP/s.
func (s *Sim) GFLOPS(cfg gemm.Config, shape gemm.Shape) (float64, error) {
	t, err := s.KernelTime(cfg, shape)
	if err != nil {
		return 0, err
	}
	return float64(shape.FLOPs()) / t / 1e9, nil
}

// simulateCU runs the resident set of one CU to completion and returns the
// batch duration in cycles.
func (s *Sim) simulateCU(prog []segment, groupsPerCU, wavesPerGroup int) float64 {
	d := s.Dev
	nWaves := groupsPerCU * wavesPerGroup
	waves := make([]waveState, nWaves)
	for w := range waves {
		waves[w] = waveState{group: w / wavesPerGroup, simd: w % d.SIMDsPerCU}
	}

	// Per-SIMD issue ports: the cycle at which the port is next free.
	simdFree := make([]float64, d.SIMDsPerCU)
	// Memory port: bandwidth share per CU in bytes/cycle.
	cuBandwidth := s.Dev.DRAMBandwidthGB * 1e9 / (float64(d.ClockMHz) * 1e6) / float64(d.ComputeUnits)
	memFree := 0.0

	// Barrier bookkeeping: waves arrived at the current barrier per group,
	// and the arrival time of the latest.
	barArrived := make([]int, groupsPerCU)
	barTime := make([]float64, groupsPerCU)
	barWaiting := make([][]int, groupsPerCU)

	q := &eventQueue{}
	for w := range waves {
		heap.Push(q, event{at: 0, wave: w})
	}

	var finish float64
	done := 0
	for q.Len() > 0 {
		ev := heap.Pop(q).(event)
		w := &waves[ev.wave]
		now := ev.at

		if w.pc >= len(prog) {
			done++
			if now > finish {
				finish = now
			}
			continue
		}
		seg := prog[w.pc]
		switch seg.kind {
		case segCompute:
			start := now
			if simdFree[w.simd] > start {
				start = simdFree[w.simd]
			}
			end := start + seg.cycles
			simdFree[w.simd] = end
			w.pc++
			heap.Push(q, event{at: end, wave: ev.wave})

		case segMemory:
			start := now
			if memFree > start {
				start = memFree
			}
			// Contention approximation: the transfer occupies the CU's
			// bandwidth share exclusively (requests serialise), plus the
			// unloaded latency overlapping issue of other waves.
			xfer := seg.bytes / cuBandwidth
			memFree = start + xfer
			end := start + xfer + s.MemLatencyCycles
			w.pc++
			heap.Push(q, event{at: end, wave: ev.wave})

		case segBarrier:
			g := w.group
			barArrived[g]++
			if now > barTime[g] {
				barTime[g] = now
			}
			if barArrived[g] < wavesPerGroup {
				barWaiting[g] = append(barWaiting[g], ev.wave)
				continue // parked until the last wave arrives
			}
			// Last wave: release the whole group at the barrier time.
			release := barTime[g]
			w.pc++
			heap.Push(q, event{at: release, wave: ev.wave})
			for _, pw := range barWaiting[g] {
				waves[pw].pc++
				heap.Push(q, event{at: release, wave: pw})
			}
			barWaiting[g] = barWaiting[g][:0]
			barArrived[g] = 0
			barTime[g] = 0
		}
	}
	if done != nWaves {
		panic(fmt.Sprintf("simwave: %d of %d waves completed (deadlock?)", done, nWaves))
	}
	return finish
}
