package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the SplitMix64 reference implementation with
	// seed 0: first three outputs.
	x := uint64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := SplitMix64(&x); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds overlap in %d/100 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(2)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) value %d occurred %d times, want ≈10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(3)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for n := 1; n <= 50; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestHash64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for a := uint64(0); a < 50; a++ {
		for b := uint64(0); b < 50; b++ {
			h := Hash64(a, b)
			if seen[h] {
				t.Fatalf("Hash64 collision at (%d,%d)", a, b)
			}
			seen[h] = true
		}
	}
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Fatal("Hash64 should be order sensitive")
	}
}

func TestUnitJitterRange(t *testing.T) {
	f := func(h uint64) bool {
		v := UnitJitter(h)
		return v >= -1 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnitJitterCentered(t *testing.T) {
	var sum float64
	x := uint64(99)
	const n = 100000
	for i := 0; i < n; i++ {
		sum += UnitJitter(SplitMix64(&x))
	}
	if math.Abs(sum/n) > 0.02 {
		t.Fatalf("UnitJitter mean = %v, want ≈0", sum/n)
	}
}
