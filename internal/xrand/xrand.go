// Package xrand provides deterministic pseudo-random number generation for
// reproducible experiments.
//
// The package intentionally avoids math/rand so that streams are stable
// across Go releases: every experiment in this repository is seeded, and the
// published tables in EXPERIMENTS.md must regenerate bit-for-bit.
//
// The core generator is xoshiro256**, seeded through SplitMix64 as
// recommended by its authors. A small amount of hashing support
// (SplitMix64 as a mixer) is exposed for deterministic per-key jitter.
package xrand

import "math"

// SplitMix64 advances the state x and returns the next value of the
// SplitMix64 sequence. It is both a seeding PRNG and a strong 64-bit mixer.
func SplitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 mixes a sequence of 64-bit words into a single well-distributed
// 64-bit hash. It is used to derive deterministic per-(shape, config) noise.
func Hash64(words ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3) // pi fraction, arbitrary non-zero seed
	for _, w := range words {
		h ^= w
		_ = SplitMix64(&h)
		h = SplitMix64(&h)
	}
	return SplitMix64(&h)
}

// Rand is a deterministic xoshiro256** generator.
// The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via SplitMix64.
// Distinct seeds give independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// Guard against the theoretical all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// simple rejection keeps the stream easy to reason about.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// UnitJitter maps a 64-bit hash to a deterministic value in [-1, 1).
func UnitJitter(h uint64) float64 {
	return float64(h>>11)/(1<<52) - 1
}
