// Package par is the shared concurrency layer of the repository: a bounded
// worker pool with deterministic, input-ordered result commitment.
//
// Every parallel stage in the pipeline — dataset pricing, the Fig-4 and
// Table-I experiment grids, per-tree forest fitting, the HDBSCAN distance
// matrix, concurrent candidate evaluation in search — goes through this
// package, so the determinism rules live in one place:
//
//   - tasks are indexed [0, n) and may run in any order on any worker, but
//     results are committed to slot i of a pre-sized slice, so the output
//     never depends on scheduling;
//   - tasks that need randomness derive an independent stream from
//     Seed(base, index), never from a shared generator, so streams do not
//     depend on execution order;
//   - a panic in any task is re-raised on the caller's goroutine after the
//     pool drains, matching the sequential contract of the code it replaces.
//
// Under these rules every caller produces bit-identical results at any
// worker count, which is what lets experiments.RunAll reproduce the
// published EXPERIMENTS.md tables on any machine.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"kernelselect/internal/xrand"
)

// Workers resolves a requested worker count: n <= 0 selects GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines. Tasks are claimed dynamically (cheap tasks do not stall behind
// expensive ones) and Do returns only when all have finished. If any task
// panics, one of the panic values is re-raised on the caller's goroutine
// after the pool drains.
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var next atomic.Int64
	var panicOnce sync.Once
	var panicked any
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs fn over [0, n) on at most Workers(workers) goroutines and
// returns the results committed in input order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible tasks. All tasks run to completion; if any
// fail, the error of the lowest-indexed failing task is returned (a
// deterministic choice — "first" by input order, not by wall clock) along
// with the full result slice.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	Do(workers, n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Seed derives an independent, well-distributed seed for task `index` of a
// run seeded with `base`. Tasks must never share a generator across workers
// (the interleaving would depend on scheduling); deriving per-task seeds
// this way keeps every stream stable under any worker count.
func Seed(base uint64, index int) uint64 {
	return xrand.Hash64(base, uint64(index))
}
