package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := Workers(-3); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", w)
	}
	if w := Workers(5); w != 5 {
		t.Fatalf("Workers(5) = %d", w)
	}
}

func TestDoRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 1000
		counts := make([]atomic.Int64, n)
		Do(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoZeroAndNegativeTasks(t *testing.T) {
	ran := false
	Do(4, 0, func(int) { ran = true })
	Do(4, -5, func(int) { ran = true })
	if ran {
		t.Fatal("task ran for non-positive n")
	}
}

func TestMapCommitsInInputOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		out := Map(workers, 500, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 8} {
		_, err := MapErr(workers, 100, func(i int) (int, error) {
			switch i {
			case 97:
				return 0, errB
			case 13:
				return 0, errA
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error %v", workers, err, errA)
		}
	}
	out, err := MapErr(4, 10, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestDoPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v", workers, r)
				}
			}()
			Do(workers, 50, func(i int) {
				if i == 31 {
					panic("boom")
				}
			})
		}()
	}
}

func TestSeedIsStableAndDecorrelated(t *testing.T) {
	if Seed(42, 7) != Seed(42, 7) {
		t.Fatal("Seed not deterministic")
	}
	seen := map[uint64]int{}
	for base := uint64(0); base < 4; base++ {
		for i := 0; i < 256; i++ {
			s := Seed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %d (task %d)", s, prev)
			}
			seen[s] = i
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	ref := Map(1, 300, func(i int) string { return fmt.Sprintf("%d:%d", i, Seed(9, i)) })
	for _, workers := range []int{2, 5, 32} {
		got := Map(workers, 300, func(i int) string { return fmt.Sprintf("%d:%d", i, Seed(9, i)) })
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d differs", workers, i)
			}
		}
	}
}
