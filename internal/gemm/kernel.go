package gemm

import (
	"kernelselect/internal/sycl"
)

// Multiply computes c = a·b for the given shape using the tiled kernel
// variant selected by cfg, executed on q. Matrices are dense row-major:
// a is M×K, b is K×N, c is M×N. The destination is fully overwritten.
//
// The kernel follows the SYCL-DNN structure described in the paper: each
// work-item accumulates a TileRows×TileCols block of the output in private
// registers, advancing AccDepth values of K per step; the work-group
// cooperatively stages A and B tiles through local memory between steps.
// Global ranges are rounded up to whole work-groups with in-kernel bounds
// checks, so any shape is supported by any configuration.
func Multiply(q *sycl.Queue, cfg Config, a, b, c []float64, s Shape) error {
	return MultiplyEx(q, cfg, a, b, c, s, DefaultMulOpts())
}

// Reference computes c = a·b with a straightforward triple loop. It is the
// correctness oracle for every kernel configuration.
func Reference(a, b, c []float64, s Shape) {
	for i := 0; i < s.M; i++ {
		crow := c[i*s.N : (i+1)*s.N]
		for j := range crow {
			crow[j] = 0
		}
		for k := 0; k < s.K; k++ {
			av := a[i*s.K+k]
			if av == 0 {
				continue
			}
			brow := b[k*s.N : (k+1)*s.N]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
