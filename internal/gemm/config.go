// Package gemm implements the tiled matrix-multiply kernel family from the
// paper's SYCL-DNN case study: three compile-time tile parameters (output
// tile rows and columns, accumulator depth), each drawn from {1, 2, 4, 8},
// crossed with ten run-time work-group shapes, for 640 total configurations.
//
// The kernel runs on the hierarchical executor in internal/sycl and is
// validated against a naive reference for every compile-time variant. Flop
// accounting and shape utilities used throughout the repository also live
// here.
package gemm

import (
	"fmt"
	"sort"
)

// TileSizes is the set of values each compile-time tile parameter may take.
var TileSizes = []int{1, 2, 4, 8}

// WorkGroup is a run-time work-group shape (rows × cols of work-items).
type WorkGroup struct {
	R, C int
}

// WorkGroups is the set of work-group shapes evaluated by the paper.
var WorkGroups = []WorkGroup{
	{1, 64}, {1, 128}, {8, 8}, {8, 16}, {8, 32},
	{16, 8}, {16, 16}, {32, 8}, {64, 1}, {128, 1},
}

// Config identifies one kernel configuration: the compile-time tile
// parameters plus the run-time work-group shape.
type Config struct {
	TileRows int       // output-tile rows per work-item (compile time)
	TileCols int       // output-tile cols per work-item (compile time)
	AccDepth int       // K-depth accumulated per step (compile time)
	WG       WorkGroup // work-group shape (run time)
}

// String renders the configuration compactly, e.g. "t4x2a8_wg16x8".
func (c Config) String() string {
	return fmt.Sprintf("t%dx%da%d_wg%dx%d", c.TileRows, c.TileCols, c.AccDepth, c.WG.R, c.WG.C)
}

// KernelID identifies the compile-time kernel (ignoring work-group shape).
// Two configs with equal KernelID share a compiled kernel in a SYCL library.
func (c Config) KernelID() string {
	return fmt.Sprintf("t%dx%da%d", c.TileRows, c.TileCols, c.AccDepth)
}

// Validate reports whether the configuration is a member of the evaluated
// space.
func (c Config) Validate() error {
	okTile := func(v int) bool {
		for _, t := range TileSizes {
			if v == t {
				return true
			}
		}
		return false
	}
	if !okTile(c.TileRows) || !okTile(c.TileCols) || !okTile(c.AccDepth) {
		return fmt.Errorf("gemm: tile parameters of %v must be in %v", c, TileSizes)
	}
	for _, wg := range WorkGroups {
		if c.WG == wg {
			return nil
		}
	}
	return fmt.Errorf("gemm: work-group %+v of %v not in the evaluated set", c.WG, c)
}

// GroupTile returns the output tile computed by one work-group:
// (WG.R·TileRows) × (WG.C·TileCols).
func (c Config) GroupTile() (rows, cols int) {
	return c.WG.R * c.TileRows, c.WG.C * c.TileCols
}

// RegistersPerItem estimates the register footprint of one work-item in
// 32-bit registers: the accumulator tile, one A fragment, one B fragment,
// plus loop/address overhead. The estimate drives the occupancy model in
// internal/sim and mirrors how the SYCL-DNN kernel's private arrays scale.
func (c Config) RegistersPerItem() int {
	const overhead = 18 // addresses, loop counters, ids
	return c.TileRows*c.TileCols + c.TileRows*c.AccDepth + c.AccDepth*c.TileCols + overhead
}

// LocalMemoryBytes returns the work-group local memory required per K-step:
// an A tile of (WG.R·TileRows)×AccDepth and a B tile of
// AccDepth×(WG.C·TileCols) float32 values (the device kernels use fp32; the
// host emulation computes in float64 for testability).
func (c Config) LocalMemoryBytes() int {
	bm, bn := c.GroupTile()
	return 4 * c.AccDepth * (bm + bn)
}

// AllConfigs enumerates the full 640-configuration space in a fixed,
// deterministic order: tile rows, then tile cols, then accumulator depth,
// then work-group index.
func AllConfigs() []Config {
	out := make([]Config, 0, len(TileSizes)*len(TileSizes)*len(TileSizes)*len(WorkGroups))
	for _, tr := range TileSizes {
		for _, tc := range TileSizes {
			for _, acc := range TileSizes {
				for _, wg := range WorkGroups {
					out = append(out, Config{TileRows: tr, TileCols: tc, AccDepth: acc, WG: wg})
				}
			}
		}
	}
	return out
}

// AllKernelIDs returns the 64 distinct compile-time kernels in sorted order.
func AllKernelIDs() []string {
	seen := map[string]bool{}
	var ids []string
	for _, c := range AllConfigs() {
		id := c.KernelID()
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// ConfigIndex returns a map from Config.String() to its position in
// AllConfigs(), for dataset column lookup.
func ConfigIndex() map[string]int {
	idx := make(map[string]int, 640)
	for i, c := range AllConfigs() {
		idx[c.String()] = i
	}
	return idx
}

// ParseConfig inverts Config.String(): "t4x2a8_wg16x8" → the configuration.
// The result is validated against the evaluated space.
func ParseConfig(name string) (Config, error) {
	var tr, tc, acc, wr, wc int
	if _, err := fmt.Sscanf(name, "t%dx%da%d_wg%dx%d", &tr, &tc, &acc, &wr, &wc); err != nil {
		return Config{}, fmt.Errorf("gemm: bad config name %q: %w", name, err)
	}
	cfg := Config{TileRows: tr, TileCols: tc, AccDepth: acc, WG: WorkGroup{R: wr, C: wc}}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Shape describes one GEMM problem: C[M×N] += A[M×K] · B[K×N].
type Shape struct {
	M, N, K int
}

// String renders the shape as "MxKxN" (the paper's row/inner/col order).
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.M, s.K, s.N) }

// Validate reports whether all dimensions are positive.
func (s Shape) Validate() error {
	if s.M <= 0 || s.N <= 0 || s.K <= 0 {
		return fmt.Errorf("gemm: invalid shape %+v", s)
	}
	return nil
}

// FLOPs returns the floating-point operation count of the multiply
// (one multiply + one add per inner-product term).
func (s Shape) FLOPs() int64 {
	return 2 * int64(s.M) * int64(s.N) * int64(s.K)
}

// Features returns the shape as an ML feature vector (M, K, N), the input
// representation used for both clustering targets and runtime classifiers.
func (s Shape) Features() []float64 {
	return []float64{float64(s.M), float64(s.K), float64(s.N)}
}
