package gemm

import (
	"fmt"
	"sync"

	"kernelselect/internal/sycl"
)

// MulOpts extends Multiply to the full BLAS-style GEMM the SYCL-DNN matmul
// implements: C = alpha·op(A)·op(B) + beta·C, with op(X) = X or Xᵀ.
// The shape (M, N, K) always describes the logical product: op(A) is M×K
// and op(B) is K×N regardless of storage order.
type MulOpts struct {
	TransA, TransB bool
	Alpha, Beta    float64
}

// DefaultMulOpts returns the plain-multiply options (alpha 1, beta 0).
func DefaultMulOpts() MulOpts { return MulOpts{Alpha: 1} }

// MultiplyEx computes C = alpha·op(A)·op(B) + beta·C with the tiled kernel
// variant selected by cfg. A is stored M×K (or K×M when TransA), B is K×N
// (or N×K when TransB); C is always M×N.
func MultiplyEx(q *sycl.Queue, cfg Config, a, b, c []float64, s Shape, opts MulOpts) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if len(a) < s.M*s.K || len(b) < s.K*s.N || len(c) < s.M*s.N {
		return fmt.Errorf("gemm: buffer too small for %v (a=%d b=%d c=%d)", s, len(a), len(b), len(c))
	}

	tr, tc, acc := cfg.TileRows, cfg.TileCols, cfg.AccDepth
	bm, bn := cfg.GroupTile()
	groupItems := cfg.WG.R * cfg.WG.C

	loadA := func(row, k int) float64 { return a[row*s.K+k] }
	if opts.TransA {
		loadA = func(row, k int) float64 { return a[k*s.M+row] }
	}
	loadB := func(k, col int) float64 { return b[k*s.N+col] }
	if opts.TransB {
		loadB = func(k, col int) float64 { return b[col*s.K+k] }
	}

	nd := sycl.NDRange{
		Global: sycl.Range{R: ceilDiv(s.M, tr), C: ceilDiv(s.N, tc)},
		Local:  sycl.Range{R: cfg.WG.R, C: cfg.WG.C},
	}

	_, err := q.ParallelForWorkGroup(nd, func(g *sycl.Group) {
		aTile := g.LocalFloat64(bm * acc)
		bTile := g.LocalFloat64(acc * bn)
		accum := g.LocalFloat64(groupItems * tr * tc)

		off := g.GlobalOffset()
		rowBase := off.R * tr
		colBase := off.C * tc

		for k0 := 0; k0 < s.K; k0 += acc {
			kLen := acc
			if k0+kLen > s.K {
				kLen = s.K - k0
			}
			g.ForEachItem(func(it sycl.Item) {
				lin := it.LinearLocal(g.LocalR)
				for idx := lin; idx < bm*acc; idx += groupItems {
					r := idx / acc
					kk := idx % acc
					var v float64
					if gr := rowBase + r; gr < s.M && kk < kLen {
						v = loadA(gr, k0+kk)
					}
					aTile[idx] = v
				}
				for idx := lin; idx < acc*bn; idx += groupItems {
					kk := idx / bn
					cc := idx % bn
					var v float64
					if gc := colBase + cc; gc < s.N && kk < kLen {
						v = loadB(k0+kk, gc)
					}
					bTile[idx] = v
				}
			})
			g.ForEachItem(func(it sycl.Item) {
				base := it.LinearLocal(g.LocalR) * tr * tc
				aRow := it.Local.R * tr
				bCol := it.Local.C * tc
				for kk := 0; kk < kLen; kk++ {
					for i := 0; i < tr; i++ {
						av := aTile[(aRow+i)*acc+kk]
						if av == 0 {
							continue
						}
						bOff := kk*bn + bCol
						accOff := base + i*tc
						for j := 0; j < tc; j++ {
							accum[accOff+j] += av * bTile[bOff+j]
						}
					}
				}
			})
		}

		g.ForEachItem(func(it sycl.Item) {
			base := it.LinearLocal(g.LocalR) * tr * tc
			for i := 0; i < tr; i++ {
				gr := rowBase + it.Local.R*tr + i
				if gr >= s.M {
					break
				}
				for j := 0; j < tc; j++ {
					gc := colBase + it.Local.C*tc + j
					if gc >= s.N {
						break
					}
					idx := gr*s.N + gc
					v := opts.Alpha * accum[base+i*tc+j]
					if opts.Beta != 0 {
						v += opts.Beta * c[idx]
					}
					c[idx] = v
				}
			}
		})
	})
	return err
}

// ReferenceEx is the naive oracle for MultiplyEx.
func ReferenceEx(a, b, c []float64, s Shape, opts MulOpts) {
	loadA := func(row, k int) float64 { return a[row*s.K+k] }
	if opts.TransA {
		loadA = func(row, k int) float64 { return a[k*s.M+row] }
	}
	loadB := func(k, col int) float64 { return b[k*s.N+col] }
	if opts.TransB {
		loadB = func(k, col int) float64 { return b[col*s.K+k] }
	}
	for i := 0; i < s.M; i++ {
		for j := 0; j < s.N; j++ {
			var acc float64
			for k := 0; k < s.K; k++ {
				acc += loadA(i, k) * loadB(k, j)
			}
			idx := i*s.N + j
			v := opts.Alpha * acc
			if opts.Beta != 0 {
				v += opts.Beta * c[idx]
			}
			c[idx] = v
		}
	}
}

// Batch is one GEMM of a batched multiply; all entries of a batch share one
// shape and configuration (the Winograd lowering produces 16 such GEMMs).
type Batch struct {
	A, B, C []float64
}

// MultiplyBatch runs the batch concurrently on q, one goroutine per entry
// (each entry internally parallelises over work-groups as usual; the queue's
// worker pool is shared). It fails on the first error.
func MultiplyBatch(q *sycl.Queue, cfg Config, batch []Batch, s Shape) error {
	if len(batch) == 0 {
		return fmt.Errorf("gemm: empty batch")
	}
	var wg sync.WaitGroup
	errs := make([]error, len(batch))
	for i := range batch {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Multiply(q, cfg, batch[i].A, batch[i].B, batch[i].C, s)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("gemm: batch entry %d: %w", i, err)
		}
	}
	return nil
}
