package gemm

import (
	"math"
	"testing"
	"testing/quick"

	"kernelselect/internal/sycl"
	"kernelselect/internal/xrand"
)

func randomMatrix(r *xrand.Rand, n int) []float64 {
	m := make([]float64, n)
	for i := range m {
		m[i] = 2*r.Float64() - 1
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestAllConfigsCount(t *testing.T) {
	cfgs := AllConfigs()
	if len(cfgs) != 640 {
		t.Fatalf("len(AllConfigs()) = %d, want 640", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %v invalid: %v", c, err)
		}
		if seen[c.String()] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[c.String()] = true
	}
}

func TestAllKernelIDsCount(t *testing.T) {
	ids := AllKernelIDs()
	if len(ids) != 64 {
		t.Fatalf("len(AllKernelIDs()) = %d, want 64", len(ids))
	}
}

func TestConfigIndexRoundTrip(t *testing.T) {
	idx := ConfigIndex()
	for i, c := range AllConfigs() {
		if idx[c.String()] != i {
			t.Fatalf("ConfigIndex[%v] = %d, want %d", c, idx[c.String()], i)
		}
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []Config{
		{TileRows: 3, TileCols: 2, AccDepth: 2, WG: WorkGroup{8, 8}},
		{TileRows: 2, TileCols: 16, AccDepth: 2, WG: WorkGroup{8, 8}},
		{TileRows: 2, TileCols: 2, AccDepth: 0, WG: WorkGroup{8, 8}},
		{TileRows: 2, TileCols: 2, AccDepth: 2, WG: WorkGroup{7, 7}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %v unexpectedly valid", c)
		}
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	c := Config{TileRows: 4, TileCols: 2, AccDepth: 8, WG: WorkGroup{16, 8}}
	if r, n := c.GroupTile(); r != 64 || n != 16 {
		t.Fatalf("GroupTile = (%d,%d), want (64,16)", r, n)
	}
	wantRegs := 4*2 + 4*8 + 8*2 + 18
	if c.RegistersPerItem() != wantRegs {
		t.Fatalf("RegistersPerItem = %d, want %d", c.RegistersPerItem(), wantRegs)
	}
	if c.LocalMemoryBytes() != 4*8*(64+16) {
		t.Fatalf("LocalMemoryBytes = %d", c.LocalMemoryBytes())
	}
	if c.String() != "t4x2a8_wg16x8" {
		t.Fatalf("String = %q", c.String())
	}
	if c.KernelID() != "t4x2a8" {
		t.Fatalf("KernelID = %q", c.KernelID())
	}
}

func TestShapeBasics(t *testing.T) {
	s := Shape{M: 3, N: 5, K: 7}
	if s.FLOPs() != 2*3*5*7 {
		t.Fatalf("FLOPs = %d", s.FLOPs())
	}
	if s.String() != "3x7x5" {
		t.Fatalf("String = %q", s.String())
	}
	f := s.Features()
	if f[0] != 3 || f[1] != 7 || f[2] != 5 {
		t.Fatalf("Features = %v", f)
	}
	if (Shape{M: 0, N: 1, K: 1}).Validate() == nil {
		t.Fatal("invalid shape accepted")
	}
}

// TestMultiplyAllKernelVariants validates every compile-time kernel (64) on
// a ragged shape with one representative work-group shape each, against the
// naive reference.
func TestMultiplyAllKernelVariants(t *testing.T) {
	q := sycl.NewQueue(sycl.HostDevice())
	r := xrand.New(7)
	s := Shape{M: 21, N: 19, K: 23}
	a := randomMatrix(r, s.M*s.K)
	b := randomMatrix(r, s.K*s.N)
	want := make([]float64, s.M*s.N)
	Reference(a, b, want, s)

	for _, tr := range TileSizes {
		for _, tc := range TileSizes {
			for _, acc := range TileSizes {
				cfg := Config{TileRows: tr, TileCols: tc, AccDepth: acc, WG: WorkGroup{8, 8}}
				got := make([]float64, s.M*s.N)
				if err := Multiply(q, cfg, a, b, got, s); err != nil {
					t.Fatalf("%v: %v", cfg, err)
				}
				if d := maxAbsDiff(got, want); d > 1e-9 {
					t.Fatalf("%v: max abs diff %v", cfg, d)
				}
			}
		}
	}
}

// TestMultiplyAllWorkGroups validates every work-group shape with a fixed
// kernel on a shape smaller than some group tiles (heavy bounds checking).
func TestMultiplyAllWorkGroups(t *testing.T) {
	q := sycl.NewQueue(sycl.HostDevice())
	r := xrand.New(8)
	s := Shape{M: 37, N: 41, K: 16}
	a := randomMatrix(r, s.M*s.K)
	b := randomMatrix(r, s.K*s.N)
	want := make([]float64, s.M*s.N)
	Reference(a, b, want, s)

	for _, wg := range WorkGroups {
		cfg := Config{TileRows: 2, TileCols: 4, AccDepth: 4, WG: wg}
		got := make([]float64, s.M*s.N)
		if err := Multiply(q, cfg, a, b, got, s); err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("%v: max abs diff %v", cfg, d)
		}
	}
}

// TestMultiplyDegenerateShapes exercises 1-sized dimensions (bias-add style
// GEMV shapes occur in the fully-connected workloads).
func TestMultiplyDegenerateShapes(t *testing.T) {
	q := sycl.NewQueue(sycl.HostDevice())
	r := xrand.New(9)
	shapes := []Shape{
		{M: 1, N: 1000, K: 512},
		{M: 1, N: 1, K: 1},
		{M: 64, N: 1, K: 9},
		{M: 1, N: 1, K: 4096},
	}
	cfg := Config{TileRows: 4, TileCols: 4, AccDepth: 2, WG: WorkGroup{8, 16}}
	for _, s := range shapes {
		a := randomMatrix(r, s.M*s.K)
		b := randomMatrix(r, s.K*s.N)
		want := make([]float64, s.M*s.N)
		got := make([]float64, s.M*s.N)
		Reference(a, b, want, s)
		if err := Multiply(q, cfg, a, b, got, s); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("%v: max abs diff %v", s, d)
		}
	}
}

// TestMultiplyProperty cross-checks random configs on random small shapes.
func TestMultiplyProperty(t *testing.T) {
	q := sycl.NewQueue(sycl.HostDevice())
	cfgs := AllConfigs()
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := Shape{M: 1 + r.Intn(40), N: 1 + r.Intn(40), K: 1 + r.Intn(40)}
		cfg := cfgs[r.Intn(len(cfgs))]
		a := randomMatrix(r, s.M*s.K)
		b := randomMatrix(r, s.K*s.N)
		want := make([]float64, s.M*s.N)
		got := make([]float64, s.M*s.N)
		Reference(a, b, want, s)
		if err := Multiply(q, cfg, a, b, got, s); err != nil {
			return false
		}
		return maxAbsDiff(got, want) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyRejectsBadArgs(t *testing.T) {
	q := sycl.NewQueue(sycl.HostDevice())
	s := Shape{M: 4, N: 4, K: 4}
	good := Config{TileRows: 2, TileCols: 2, AccDepth: 2, WG: WorkGroup{8, 8}}
	buf := make([]float64, 16)
	if err := Multiply(q, Config{TileRows: 3, TileCols: 2, AccDepth: 2, WG: WorkGroup{8, 8}}, buf, buf, buf, s); err == nil {
		t.Fatal("invalid config accepted")
	}
	if err := Multiply(q, good, buf, buf, buf, Shape{M: -1, N: 4, K: 4}); err == nil {
		t.Fatal("invalid shape accepted")
	}
	if err := Multiply(q, good, buf[:3], buf, buf, s); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestReferenceIdentity(t *testing.T) {
	// A·I = A for the reference multiplier.
	s := Shape{M: 5, N: 5, K: 5}
	r := xrand.New(10)
	a := randomMatrix(r, 25)
	eye := make([]float64, 25)
	for i := 0; i < 5; i++ {
		eye[i*5+i] = 1
	}
	got := make([]float64, 25)
	Reference(a, eye, got, s)
	if d := maxAbsDiff(got, a); d > 0 {
		t.Fatalf("A·I != A (diff %v)", d)
	}
}

func TestParseConfigRoundTrip(t *testing.T) {
	for _, c := range AllConfigs() {
		got, err := ParseConfig(c.String())
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if got != c {
			t.Fatalf("round trip %v → %v", c, got)
		}
	}
}

func TestParseConfigRejects(t *testing.T) {
	for _, name := range []string{"", "bogus", "t3x2a2_wg8x8", "t2x2a2_wg7x7", "t2x2a2"} {
		if _, err := ParseConfig(name); err == nil {
			t.Errorf("ParseConfig(%q) accepted", name)
		}
	}
}
