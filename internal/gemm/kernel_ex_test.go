package gemm

import (
	"testing"
	"testing/quick"

	"kernelselect/internal/sycl"
	"kernelselect/internal/xrand"
)

func TestMultiplyExMatchesMultiplyOnDefaults(t *testing.T) {
	q := sycl.NewQueue(sycl.HostDevice())
	r := xrand.New(31)
	s := Shape{M: 19, N: 23, K: 17}
	a := randomMatrix(r, s.M*s.K)
	b := randomMatrix(r, s.K*s.N)
	cfg := Config{TileRows: 2, TileCols: 4, AccDepth: 2, WG: WorkGroup{R: 8, C: 8}}
	plain := make([]float64, s.M*s.N)
	ex := make([]float64, s.M*s.N)
	if err := Multiply(q, cfg, a, b, plain, s); err != nil {
		t.Fatal(err)
	}
	if err := MultiplyEx(q, cfg, a, b, ex, s, DefaultMulOpts()); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(plain, ex); d > 1e-12 {
		t.Fatalf("defaults disagree with Multiply by %v", d)
	}
}

func TestMultiplyExTransposes(t *testing.T) {
	q := sycl.NewQueue(sycl.HostDevice())
	r := xrand.New(33)
	s := Shape{M: 13, N: 11, K: 15}
	cfg := Config{TileRows: 4, TileCols: 2, AccDepth: 4, WG: WorkGroup{R: 8, C: 16}}
	for _, opts := range []MulOpts{
		{TransA: true, Alpha: 1},
		{TransB: true, Alpha: 1},
		{TransA: true, TransB: true, Alpha: 1},
	} {
		// Storage sizes are M*K and K*N regardless of transposition.
		a := randomMatrix(r, s.M*s.K)
		b := randomMatrix(r, s.K*s.N)
		want := make([]float64, s.M*s.N)
		got := make([]float64, s.M*s.N)
		ReferenceEx(a, b, want, s, opts)
		if err := MultiplyEx(q, cfg, a, b, got, s, opts); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("%+v: diff %v", opts, d)
		}
	}
}

func TestMultiplyExAlphaBeta(t *testing.T) {
	q := sycl.NewQueue(sycl.HostDevice())
	r := xrand.New(35)
	s := Shape{M: 9, N: 14, K: 12}
	cfg := Config{TileRows: 1, TileCols: 2, AccDepth: 8, WG: WorkGroup{R: 8, C: 8}}
	a := randomMatrix(r, s.M*s.K)
	b := randomMatrix(r, s.K*s.N)
	init := randomMatrix(r, s.M*s.N)

	opts := MulOpts{Alpha: 2.5, Beta: -0.5}
	want := append([]float64(nil), init...)
	got := append([]float64(nil), init...)
	ReferenceEx(a, b, want, s, opts)
	if err := MultiplyEx(q, cfg, a, b, got, s, opts); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("alpha/beta diff %v", d)
	}
}

func TestMultiplyExBetaZeroIgnoresGarbage(t *testing.T) {
	// Beta = 0 must fully overwrite C even if it holds NaN-free garbage.
	q := sycl.NewQueue(sycl.HostDevice())
	r := xrand.New(37)
	s := Shape{M: 8, N: 8, K: 8}
	cfg := Config{TileRows: 2, TileCols: 2, AccDepth: 2, WG: WorkGroup{R: 8, C: 8}}
	a := randomMatrix(r, 64)
	b := randomMatrix(r, 64)
	got := make([]float64, 64)
	for i := range got {
		got[i] = 1e30
	}
	want := make([]float64, 64)
	Reference(a, b, want, s)
	if err := MultiplyEx(q, cfg, a, b, got, s, DefaultMulOpts()); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("beta=0 left garbage (diff %v)", d)
	}
}

func TestMultiplyExProperty(t *testing.T) {
	q := sycl.NewQueue(sycl.HostDevice())
	cfgs := AllConfigs()
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := Shape{M: 1 + r.Intn(24), N: 1 + r.Intn(24), K: 1 + r.Intn(24)}
		cfg := cfgs[r.Intn(len(cfgs))]
		opts := MulOpts{
			TransA: r.Intn(2) == 1,
			TransB: r.Intn(2) == 1,
			Alpha:  2*r.Float64() - 1,
			Beta:   2*r.Float64() - 1,
		}
		if opts.Alpha == 0 {
			opts.Alpha = 1
		}
		a := randomMatrix(r, s.M*s.K)
		b := randomMatrix(r, s.K*s.N)
		init := randomMatrix(r, s.M*s.N)
		want := append([]float64(nil), init...)
		got := append([]float64(nil), init...)
		ReferenceEx(a, b, want, s, opts)
		if err := MultiplyEx(q, cfg, a, b, got, s, opts); err != nil {
			return false
		}
		return maxAbsDiff(got, want) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyBatch(t *testing.T) {
	q := sycl.NewQueue(sycl.HostDevice())
	r := xrand.New(41)
	s := Shape{M: 17, N: 13, K: 9}
	cfg := Config{TileRows: 2, TileCols: 2, AccDepth: 4, WG: WorkGroup{R: 8, C: 8}}
	const n = 16 // the Winograd batch width
	batch := make([]Batch, n)
	wants := make([][]float64, n)
	for i := range batch {
		batch[i] = Batch{
			A: randomMatrix(r, s.M*s.K),
			B: randomMatrix(r, s.K*s.N),
			C: make([]float64, s.M*s.N),
		}
		wants[i] = make([]float64, s.M*s.N)
		Reference(batch[i].A, batch[i].B, wants[i], s)
	}
	if err := MultiplyBatch(q, cfg, batch, s); err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if d := maxAbsDiff(batch[i].C, wants[i]); d > 1e-9 {
			t.Fatalf("batch entry %d diff %v", i, d)
		}
	}
}

func TestMultiplyBatchErrors(t *testing.T) {
	q := sycl.NewQueue(sycl.HostDevice())
	if err := MultiplyBatch(q, AllConfigs()[0], nil, Shape{M: 1, N: 1, K: 1}); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := []Batch{{A: make([]float64, 1), B: make([]float64, 1), C: make([]float64, 1)}}
	if err := MultiplyBatch(q, AllConfigs()[0], bad, Shape{M: 4, N: 4, K: 4}); err == nil {
		t.Fatal("short buffers accepted")
	}
}
