package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"kernelselect/internal/gemm"
	"kernelselect/internal/serve"
)

// Replica is the router's client for one selectd process. The zero client is
// not usable; construct with NewReplica.
type Replica struct {
	Name string
	URL  string // base URL, e.g. http://127.0.0.1:8081
	hc   *http.Client
}

// NewReplica wires a replica client. client may be nil for a default with a
// per-request timeout left to contexts. The default transport keeps a deep
// idle pool: a router fans hundreds of concurrent requests into each replica,
// and net/http's stock two idle connections per host would churn a fresh TCP
// connection for nearly every one of them.
func NewReplica(name, url string, client *http.Client) *Replica {
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 256
		tr.MaxIdleConnsPerHost = 128
		client = &http.Client{Transport: tr}
	}
	return &Replica{Name: name, URL: url, hc: client}
}

// maxPassthroughBody bounds how much of a replica response the router will
// buffer for pass-through; selectd decision and batch bodies are far smaller.
const maxPassthroughBody = 4 << 20

// roundTrip issues one request and returns (status, headers, body). Transport
// errors — connection refused, reset mid-body, context deadline — come back
// as err; any HTTP status is a successful round trip from the transport's
// view.
func (r *Replica) roundTrip(ctx context.Context, method, path string, body []byte) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.URL+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPassthroughBody))
	if err != nil {
		return 0, nil, nil, fmt.Errorf("reading %s response: %w", path, err)
	}
	return resp.StatusCode, resp.Header, b, nil
}

// selectShape is the wire form of POST /v1/select (mirrors serve's private
// shapeRequest).
type selectShape struct {
	M      int    `json:"m"`
	K      int    `json:"k"`
	N      int    `json:"n"`
	Device string `json:"device,omitempty"`
}

// wireBufPool holds request-encoding scratch for the upstream hot paths:
// select and batch bodies are appended with strconv instead of running the
// reflection encoder per proxied request.
var wireBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// plainJSONString reports whether s encodes as itself under encoding/json
// (printable ASCII, nothing the HTML-safe encoder escapes). Device names
// always qualify; anything exotic falls back to json.Marshal so the wire
// bytes stay identical to the old encoder's.
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// appendSelectBody renders a selectShape byte-identically to json.Marshal
// (field order, omitempty on device).
func appendSelectBody(b []byte, device string, s gemm.Shape) []byte {
	b = append(b, `{"m":`...)
	b = strconv.AppendInt(b, int64(s.M), 10)
	b = append(b, `,"k":`...)
	b = strconv.AppendInt(b, int64(s.K), 10)
	b = append(b, `,"n":`...)
	b = strconv.AppendInt(b, int64(s.N), 10)
	if device != "" {
		b = append(b, `,"device":"`...)
		b = append(b, device...)
		b = append(b, '"')
	}
	return append(b, '}')
}

// Select asks the replica for one decision, passing the replica's response
// through verbatim: (status, headers, raw body). The router forwards 2xx/4xx
// bodies byte-for-byte so clients see exactly what a single selectd would
// serve, and reads Retry-After from the headers to back off a saturated
// replica.
func (r *Replica) Select(ctx context.Context, device string, shape gemm.Shape) (int, http.Header, []byte, error) {
	if !plainJSONString(device) {
		body, err := json.Marshal(selectShape{M: shape.M, K: shape.K, N: shape.N, Device: device})
		if err != nil {
			return 0, nil, nil, err
		}
		return r.roundTrip(ctx, http.MethodPost, "/v1/select", body)
	}
	bp := wireBufPool.Get().(*[]byte)
	body := appendSelectBody((*bp)[:0], device, shape)
	status, hdr, out, err := r.roundTrip(ctx, http.MethodPost, "/v1/select", body)
	*bp = body[:0]
	wireBufPool.Put(bp)
	return status, hdr, out, err
}

// batchWire mirrors serve's batch request/response wire forms.
type batchWire struct {
	Device string        `json:"device,omitempty"`
	Shapes []selectShape `json:"shapes"`
}

type batchResults struct {
	Results []serve.Decision `json:"results"`
}

// statusError is a failed control/batch call where the transport worked and
// the replica answered with a non-200: it is alive but unwilling (saturated,
// draining, bad request), which the router treats as backoff pressure rather
// than replica death.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// appendBatchBody renders a batchWire byte-identically to json.Marshal
// (omitempty device first, then shapes).
func appendBatchBody(b []byte, device string, shapes []gemm.Shape) []byte {
	b = append(b, '{')
	if device != "" {
		b = append(b, `"device":"`...)
		b = append(b, device...)
		b = append(b, `",`...)
	}
	b = append(b, `"shapes":[`...)
	for i, s := range shapes {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"m":`...)
		b = strconv.AppendInt(b, int64(s.M), 10)
		b = append(b, `,"k":`...)
		b = strconv.AppendInt(b, int64(s.K), 10)
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(s.N), 10)
		b = append(b, '}')
	}
	return append(b, `]}`...)
}

// Batch prices a set of shapes on one device in a single round trip,
// returning the decisions in request order. A non-200 reply comes back as a
// *statusError so callers can tell saturation from transport death.
func (r *Replica) Batch(ctx context.Context, device string, shapes []gemm.Shape) ([]serve.Decision, error) {
	var body []byte
	var bp *[]byte
	if plainJSONString(device) {
		bp = wireBufPool.Get().(*[]byte)
		body = appendBatchBody((*bp)[:0], device, shapes)
	} else {
		req := batchWire{Device: device, Shapes: make([]selectShape, len(shapes))}
		for i, s := range shapes {
			req.Shapes[i] = selectShape{M: s.M, K: s.K, N: s.N}
		}
		var err error
		if body, err = json.Marshal(req); err != nil {
			return nil, err
		}
	}
	status, _, b, err := r.roundTrip(ctx, http.MethodPost, "/v1/select/batch", body)
	if bp != nil {
		*bp = body[:0]
		wireBufPool.Put(bp)
	}
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, &statusError{status: status, msg: fmt.Sprintf("replica %s batch: status %d: %s", r.Name, status, truncate(b, 200))}
	}
	var out batchResults
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("replica %s batch decode: %w", r.Name, err)
	}
	if len(out.Results) != len(shapes) {
		return nil, fmt.Errorf("replica %s batch: %d results for %d shapes", r.Name, len(out.Results), len(shapes))
	}
	return out.Results, nil
}

// healthzWire mirrors serve's healthz body (the subset the router reads).
type healthzWire struct {
	Status   string `json:"status"`
	Backends []struct {
		Device     string `json:"device"`
		Generation uint64 `json:"generation"`
	} `json:"backends"`
}

// Probe health-checks the replica: nil error means it is serving, and the
// returned map carries each device backend's current generation (the gossiped
// view exposes these so operators can spot a replica stuck on an old
// artifact). A draining replica (healthz 503) is an error: it is rotating out
// and must stop receiving shards.
func (r *Replica) Probe(ctx context.Context) (map[string]uint64, error) {
	status, _, b, err := r.roundTrip(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("replica %s healthz: status %d", r.Name, status)
	}
	var hz healthzWire
	if err := json.Unmarshal(b, &hz); err != nil {
		return nil, fmt.Errorf("replica %s healthz decode: %w", r.Name, err)
	}
	gens := make(map[string]uint64, len(hz.Backends))
	for _, be := range hz.Backends {
		gens[be.Device] = be.Generation
	}
	return gens, nil
}

// windowWire mirrors serve's GET /v1/window body.
type windowWire struct {
	Device string           `json:"device"`
	Size   int              `json:"window_size"`
	Shapes []serve.HotShape `json:"shapes"`
}

// Window fetches the replica's hottest served shapes for one device — the
// peer-side input to cache-warming a reloading shard.
func (r *Replica) Window(ctx context.Context, device string, top int) ([]serve.HotShape, error) {
	path := fmt.Sprintf("/v1/window?device=%s&top=%d", device, top)
	status, _, b, err := r.roundTrip(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("replica %s window: status %d: %s", r.Name, status, truncate(b, 200))
	}
	var win windowWire
	if err := json.Unmarshal(b, &win); err != nil {
		return nil, fmt.Errorf("replica %s window decode: %w", r.Name, err)
	}
	return win.Shapes, nil
}

// reloadWire mirrors serve's reload response (the subset the router reads).
type reloadWire struct {
	Device     string `json:"device"`
	Generation uint64 `json:"generation"`
	Selector   string `json:"selector"`
	Configs    int    `json:"configs"`
}

// Reload asks the replica to swap the named device onto a fresh artifact and
// reports the new generation.
func (r *Replica) Reload(ctx context.Context, device string) (reloadWire, error) {
	body, err := json.Marshal(struct {
		Device string `json:"device,omitempty"`
	}{Device: device})
	if err != nil {
		return reloadWire{}, err
	}
	status, _, b, err := r.roundTrip(ctx, http.MethodPost, "/v1/reload", body)
	if err != nil {
		return reloadWire{}, err
	}
	if status != http.StatusOK {
		return reloadWire{}, fmt.Errorf("replica %s reload: status %d: %s", r.Name, status, truncate(b, 200))
	}
	var rr reloadWire
	if err := json.Unmarshal(b, &rr); err != nil {
		return reloadWire{}, fmt.Errorf("replica %s reload decode: %w", r.Name, err)
	}
	return rr, nil
}

// Devices lists the replica's device backends via GET /v1/devices.
func (r *Replica) Devices(ctx context.Context) ([]string, error) {
	status, _, b, err := r.roundTrip(ctx, http.MethodGet, "/v1/devices", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("replica %s devices: status %d", r.Name, status)
	}
	var resp struct {
		Devices []struct {
			Name string `json:"name"`
		} `json:"devices"`
	}
	if err := json.Unmarshal(b, &resp); err != nil {
		return nil, fmt.Errorf("replica %s devices decode: %w", r.Name, err)
	}
	names := make([]string, len(resp.Devices))
	for i, d := range resp.Devices {
		names[i] = d.Name
	}
	return names, nil
}

// WarmConns pre-establishes up to n persistent connections by holding n
// health probes in flight at once; the transport parks each one idle
// afterwards (the default client keeps a deep idle pool), so the first burst
// of routed traffic reuses warm sockets instead of paying connection setup
// under load. Best effort: probe failures are ignored.
func (r *Replica) WarmConns(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.roundTrip(ctx, http.MethodGet, "/healthz", nil)
		}()
	}
	wg.Wait()
}

// parseRetryAfter interprets one Retry-After header value. RFC 7231 allows
// both delta-seconds and an HTTP-date; dates are measured against now.
// Non-positive delays, the past, and garbage report ok=false.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d, true
		}
	}
	return 0, false
}

// retryAfterOrDefault is how long the router backs off a saturated replica:
// the replica's Retry-After header when present and parseable (delta-seconds
// or HTTP-date), else the given default.
func retryAfterOrDefault(h http.Header, def time.Duration) time.Duration {
	if d, ok := parseRetryAfter(h.Get("Retry-After"), time.Now()); ok {
		return d
	}
	return def
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
