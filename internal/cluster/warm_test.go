package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"kernelselect/internal/core"
	"kernelselect/internal/serve"
	"kernelselect/internal/sim"
)

// Peer cache-warming on reload: replica-a dies, its shard's traffic re-hashes
// to replica-b (whose served-shape window records it), replica-a comes back
// and is rolled through the router's /v1/reload — the router pre-prices the
// shapes replica-b observed for replica-a's shard into the new generation
// before cutover, so replica-a's first post-reload request for its hot shape
// is already a cache hit on the new generation.
func TestReloadPeerWarmsNewGeneration(t *testing.T) {
	f := newTestFleet(t, 2, Options{HedgeDelay: -1, Retries: 2},
		serve.Options{MaxInFlight: 64, WindowSize: 512}, nil)

	// Reload source: each replica retrains onto a fresh (smaller) library.
	libB := buildFleetLib(t, f.model, 4)
	for _, srv := range f.srvs {
		srv.SetReloadSource(func(string) (*core.Library, *sim.Model, error) {
			return libB, nil, nil
		})
	}

	aIdx := 0
	shape := shapeWithPrimary(t, f.router, "", aIdx)
	order := f.router.ring.candidates("", shape)
	aIdx, bIdx := order[0], order[1]
	aName, bName := replicaName(aIdx), replicaName(bIdx)

	// replica-a's shard traffic lands on its successor while a is down, and
	// the successor's window records it.
	f.router.MarkDown(aName)
	for i := 0; i < 8; i++ {
		status, d := routerSelect(t, f.rts.URL, shape)
		if status != http.StatusOK || d.Degraded {
			t.Fatalf("failover request %d: status %d degraded=%v", i, status, d.Degraded)
		}
	}
	if got := f.router.metrics.wins[bIdx].Load(); got == 0 {
		t.Fatalf("successor %s served nothing during the outage", bName)
	}

	// replica-a restarts (listener was never closed here — it was marked
	// down); roll it through the router with peer warming.
	f.router.MarkUp(aName)
	genBefore, err := f.srvs[aIdx].Generation("")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]string{"replica": aName})
	resp, err := http.Post(f.rts.URL+"/v1/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router reload: status %d", resp.StatusCode)
	}
	var out struct {
		Reloads []reloadSummary `json:"reloads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Reloads) != 1 || out.Reloads[0].Replica != aName {
		t.Fatalf("reload summary %+v", out.Reloads)
	}
	sum := out.Reloads[0]
	if sum.Err != "" {
		t.Fatalf("reload error: %s", sum.Err)
	}
	if sum.Generation <= genBefore {
		t.Fatalf("reload generation %d not after %d", sum.Generation, genBefore)
	}
	if sum.Warmed == 0 {
		t.Fatal("peer warm primed no shapes — the successor's window held the shard's traffic")
	}
	if got := f.router.metrics.warmed.Load(); got != uint64(sum.Warmed) {
		t.Errorf("warmed metric %d, summary %d", got, sum.Warmed)
	}
	if got := f.router.health.state(aName); got != StateUp {
		t.Errorf("replica %s state %q after cutover, want up", aName, got)
	}

	// The hot shape is already cached on the NEW generation: the first
	// post-reload request through the router hits.
	status, d := routerSelect(t, f.rts.URL, shape)
	if status != http.StatusOK || d.Degraded {
		t.Fatalf("post-reload request: status %d degraded=%v", status, d.Degraded)
	}
	if d.Generation != sum.Generation {
		t.Fatalf("post-reload decision from generation %d, want %d", d.Generation, sum.Generation)
	}
	if !d.Cached {
		t.Error("post-reload request missed — peer warming did not prime the new generation")
	}
	if d.Config != libB.Configs[d.Index].String() {
		t.Errorf("post-reload config %q not at index %d of the new library", d.Config, d.Index)
	}
}

// A rolling reload (no replica named) rolls every up replica, one at a time,
// and reports a summary per replica.
func TestRollingReloadAllReplicas(t *testing.T) {
	f := newTestFleet(t, 3, Options{HedgeDelay: -1}, serveOptionsForTests(), nil)
	libB := buildFleetLib(t, f.model, 4)
	for _, srv := range f.srvs {
		srv.SetReloadSource(func(string) (*core.Library, *sim.Model, error) {
			return libB, nil, nil
		})
	}
	resp, err := http.Post(f.rts.URL+"/v1/reload", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rolling reload: status %d", resp.StatusCode)
	}
	var out struct {
		Reloads []reloadSummary `json:"reloads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Reloads) != 3 {
		t.Fatalf("%d reload summaries for 3 replicas", len(out.Reloads))
	}
	for i, sum := range out.Reloads {
		if sum.Err != "" {
			t.Errorf("replica %d reload error: %s", i, sum.Err)
		}
		if sum.Generation == 0 {
			t.Errorf("replica %d reported generation 0", i)
		}
	}
	for i, srv := range f.srvs {
		if srv.Library() != libB {
			t.Errorf("replica %d did not swap libraries", i)
		}
	}
}
