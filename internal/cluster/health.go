package cluster

import (
	"context"
	"sort"
	"sync"
)

// Replica liveness states as seen by the router's health table.
const (
	// StateUp: the replica answers health probes and receives its shards.
	StateUp = "up"
	// StateDown: probes or requests fail; its shards re-hash to successors.
	StateDown = "down"
	// StateWarming: the replica is mid-reload with peer cache-warming in
	// progress; it is held out of rotation until cutover even though its
	// listener answers, so the new generation goes live with a hot cache.
	StateWarming = "warming"
)

// ReplicaHealth is one replica's entry in the gossiped cluster view. Seq is a
// per-replica observation sequence number: every local state observation bumps
// it, and merging two views keeps the entry with the higher Seq, so routers
// exchanging views converge on the newest observation of each replica without
// a coordinator.
type ReplicaHealth struct {
	Name        string            `json:"name"`
	State       string            `json:"state"`
	Seq         uint64            `json:"seq"`
	Generations map[string]uint64 `json:"generations,omitempty"`
	Err         string            `json:"error,omitempty"`
}

// View is the GET /v1/cluster body: the router's current belief about every
// replica, plus its own identity for gossip attribution.
type View struct {
	Router   string          `json:"router,omitempty"`
	Replicas []ReplicaHealth `json:"replicas"`
}

// healthTable is the router's mutable health state behind the gossiped view.
type healthTable struct {
	mu      sync.Mutex
	order   []string
	entries map[string]*ReplicaHealth

	// onGens, when set (before any concurrent use), fires after every local
	// observation or adopted merge that carries per-device generations — the
	// edge cache's invalidation feed. Called outside the table lock.
	onGens func(name string, gens map[string]uint64)
}

func newHealthTable(names []string) *healthTable {
	t := &healthTable{order: append([]string(nil), names...), entries: make(map[string]*ReplicaHealth, len(names))}
	for _, n := range names {
		// Replicas start optimistically up: the router routes immediately and
		// the first failed request or probe demotes a dead one.
		t.entries[n] = &ReplicaHealth{Name: n, State: StateUp}
	}
	return t
}

// observe records a local observation of one replica, bumping its Seq so the
// observation wins any later gossip merge against staler entries.
func (t *healthTable) observe(name, state string, gens map[string]uint64, errMsg string) {
	t.mu.Lock()
	e, ok := t.entries[name]
	if !ok {
		t.mu.Unlock()
		return
	}
	e.State = state
	e.Seq++
	e.Err = errMsg
	if gens != nil {
		e.Generations = gens
	}
	hook := t.onGens
	t.mu.Unlock()
	if hook != nil && gens != nil {
		hook(name, gens)
	}
}

// state reads one replica's current state ("" for an unknown name).
func (t *healthTable) state(name string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[name]; ok {
		return e.State
	}
	return ""
}

// snapshot renders the view in stable replica order.
func (t *healthTable) snapshot(router string) View {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := View{Router: router, Replicas: make([]ReplicaHealth, 0, len(t.order))}
	for _, n := range t.order {
		e := *t.entries[n]
		if e.Generations != nil {
			gens := make(map[string]uint64, len(e.Generations))
			for d, g := range e.Generations {
				gens[d] = g
			}
			e.Generations = gens
		}
		v.Replicas = append(v.Replicas, e)
	}
	return v
}

// merge folds a peer's gossiped view in: per replica, the higher Seq wins.
// Equal Seq keeps the local entry (local observations are at least as fresh).
// Unknown replica names are ignored — the fleet roster is static per router.
func (t *healthTable) merge(v View) (adopted int) {
	t.mu.Lock()
	var genUpdates []ReplicaHealth
	for _, remote := range v.Replicas {
		local, ok := t.entries[remote.Name]
		if !ok || remote.Seq <= local.Seq {
			continue
		}
		e := remote
		t.entries[remote.Name] = &e
		adopted++
		if t.onGens != nil && remote.Generations != nil {
			genUpdates = append(genUpdates, remote)
		}
	}
	hook := t.onGens
	t.mu.Unlock()
	for _, u := range genUpdates {
		hook(u.Name, u.Generations)
	}
	return adopted
}

// upCount reports replicas currently routable.
func (t *healthTable) upCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.entries {
		if e.State == StateUp {
			n++
		}
	}
	return n
}

// ProbeOnce health-probes every replica once, concurrently, and folds the
// results into the view: an answering replica is marked up with its per-device
// generations, a failing one down with the error. Replicas the router is
// actively warming are left alone — their listener answers probes, but they
// stay out of rotation until the warm cutover. Deterministic tests and the
// chaos harness call this directly; production runs it on ProbeInterval.
func (r *Router) ProbeOnce(ctx context.Context) View {
	var wg sync.WaitGroup
	for _, rep := range r.replicas {
		if r.health.state(rep.Name) == StateWarming {
			continue
		}
		wg.Add(1)
		go func(rep *Replica) {
			defer wg.Done()
			gens, err := rep.Probe(ctx)
			r.metrics.probes.Add(1)
			if err != nil {
				r.health.observe(rep.Name, StateDown, nil, err.Error())
				return
			}
			r.health.observe(rep.Name, StateUp, gens, "")
		}(rep)
	}
	wg.Wait()
	return r.health.snapshot(r.name)
}

// sortedDevices lists a generations map's keys in stable order (probe
// plumbing and tests).
func sortedDevices(gens map[string]uint64) []string {
	out := make([]string, 0, len(gens))
	for d := range gens {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
