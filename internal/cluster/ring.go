// Package cluster shards a fleet of selectd replicas behind a consistent-hash
// router. Requests are keyed on (device, shape-bucket) so each shard keeps a
// hot decision cache for its slice of the shape universe; replica failure
// re-hashes the shard's traffic onto ring successors, and the router itself
// carries a local decision engine so a priceable shape is never answered with
// a 5xx even with every replica down — it degrades to the router-local
// fallback instead.
package cluster

import (
	"math/bits"
	"sort"

	"kernelselect/internal/gemm"
	"kernelselect/internal/xrand"
)

// bucketOf quantizes a shape to its log2 bucket triple. Shapes in the same
// bucket are similar enough that one replica's decision cache and pricing
// EWMAs serve them all well; quantizing before hashing keeps the keyspace
// small and stable so a shard's cache stays hot instead of being diluted
// across the fleet.
func bucketOf(shape gemm.Shape) (mb, kb, nb uint64) {
	return uint64(bits.Len(uint(shape.M))), uint64(bits.Len(uint(shape.K))), uint64(bits.Len(uint(shape.N)))
}

// fnv64a hashes the device name (FNV-1a); the result seeds the ring key so
// the same shape on different devices lands on different shards.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// keyOf is the ring key for one request: device identity folded with the
// shape's log2 bucket.
func keyOf(device string, shape gemm.Shape) uint64 {
	mb, kb, nb := bucketOf(shape)
	return xrand.Hash64(fnv64a(device), mb, kb, nb)
}

// ringPoint is one virtual node: a hash position owned by a replica index.
type ringPoint struct {
	hash    uint64
	replica int
}

// ring is a consistent-hash ring over replica indices with vnodes virtual
// nodes per replica. It is immutable after construction — liveness is the
// router's concern (candidates returns the full deterministic preference
// order; the router skips entries its health view marks down, which is
// exactly "re-hash onto the successor" without rebuilding anything).
type ring struct {
	points []ringPoint
	n      int
}

// defaultVnodes spreads each replica over enough virtual nodes that shard
// sizes stay within a few percent of uniform for small fleets.
const defaultVnodes = 128

func newRing(n, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{points: make([]ringPoint, 0, n*vnodes), n: n}
	for rep := 0; rep < n; rep++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    xrand.Hash64(0xc1051e8, uint64(rep), uint64(v)),
				replica: rep,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// candidates returns every replica index in preference order for one request
// key: the primary is the first virtual node clockwise of the key, and each
// successor is the next distinct replica on the walk. The order depends only
// on (device, shape bucket) and the ring layout, so routing is deterministic
// and failover (skip the dead primary, use the next candidate) re-routes
// exactly the dead replica's shard while every other shard keeps its primary.
func (r *ring) candidates(device string, shape gemm.Shape) []int {
	key := keyOf(device, shape)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	order := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(order) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			order = append(order, p.replica)
		}
	}
	return order
}
