package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/serve"
	"kernelselect/internal/sim"
)

// fleetShapes is the shape mix fleet tests route; spread across several log2
// buckets so a small fleet still sees multi-shard traffic.
var fleetShapes = []gemm.Shape{
	{M: 1, K: 4096, N: 1000}, {M: 16, K: 4096, N: 1000}, {M: 3136, K: 64, N: 64},
	{M: 784, K: 1152, N: 256}, {M: 196, K: 2304, N: 512}, {M: 12544, K: 27, N: 32},
	{M: 49, K: 960, N: 160}, {M: 3136, K: 32, N: 192}, {M: 100352, K: 3, N: 64},
	{M: 784, K: 24, N: 144}, {M: 196, K: 512, N: 512}, {M: 64, K: 25088, N: 4096},
}

func buildFleetLib(t testing.TB, model *sim.Model, n int) *core.Library {
	t.Helper()
	ds := dataset.Build(model, fleetShapes, gemm.AllConfigs()[:120])
	return core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, n, 42)
}

// testFleet is N identical single-device selectd replicas behind one router,
// plus the router's own local fallback engine built from the same artifact.
type testFleet struct {
	router *Router
	rts    *httptest.Server
	srvs   []*serve.Server
	reps   []*httptest.Server
	local  *serve.Server
	model  *sim.Model
	lib    *core.Library
}

// newTestFleet spins up n replicas. wrap, when non-nil, may interpose a
// middleware on replica i's handler (delays, outages); serveOpts applies to
// every replica; ropts.Replicas/Local are filled in here.
func newTestFleet(t testing.TB, n int, ropts Options, serveOpts serve.Options, wrap func(i int, h http.Handler) http.Handler) *testFleet {
	t.Helper()
	model := sim.New(device.R9Nano())
	lib := buildFleetLib(t, model, 6)
	if serveOpts.FallbackShapes == nil {
		serveOpts.FallbackShapes = fleetShapes
	}

	f := &testFleet{model: model, lib: lib}
	replicas := make([]*Replica, n)
	for i := 0; i < n; i++ {
		srv := serve.New(lib, model, serveOpts)
		h := http.Handler(srv.Handler())
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		f.srvs = append(f.srvs, srv)
		f.reps = append(f.reps, ts)
		replicas[i] = NewReplica(replicaName(i), ts.URL, nil)
	}
	f.local = serve.New(lib, model, serve.Options{FallbackShapes: fleetShapes})
	ropts.Replicas = replicas
	ropts.Local = f.local
	router, err := New(ropts)
	if err != nil {
		t.Fatal(err)
	}
	f.router = router
	f.rts = httptest.NewServer(router.Handler())

	t.Cleanup(func() {
		f.rts.Close()
		router.Close()
		for _, ts := range f.reps {
			ts.Close()
		}
		for _, srv := range f.srvs {
			srv.Close()
		}
		f.local.Close()
	})
	return f
}

func replicaName(i int) string {
	return "replica-" + string(rune('a'+i))
}

// shapeWithPrimary finds a fleet shape whose all-up ring primary is the given
// replica index.
func shapeWithPrimary(t testing.TB, r *Router, device string, primary int) gemm.Shape {
	t.Helper()
	for _, s := range fleetShapes {
		if r.ring.candidates(device, s)[0] == primary {
			return s
		}
	}
	t.Fatalf("no fleet shape has primary %d", primary)
	return gemm.Shape{}
}

// routerSelect posts one select through the router and decodes the decision.
func routerSelect(t testing.TB, url string, shape gemm.Shape) (int, serve.Decision) {
	t.Helper()
	body, _ := json.Marshal(map[string]int{"m": shape.M, "k": shape.K, "n": shape.N})
	resp, err := http.Post(url+"/v1/select", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d serve.Decision
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, d
}
