package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// routerMetrics is the router's dependency-free Prometheus-text registry.
// Fixed counters are plain atomics; the per-endpoint-per-code request
// counters live in a sync.Map keyed "endpoint|code" (read-mostly after the
// first request of each kind). The hot path pre-resolves its counter once via
// counter() so a cache hit costs one atomic add, not a map lookup and a
// formatted key.
type routerMetrics struct {
	requests sync.Map // "endpoint|code" -> *atomic.Uint64

	retries   atomic.Uint64 // sequential failover attempts beyond the first
	hedges    atomic.Uint64 // hedged attempts launched
	hedgeWins atomic.Uint64 // requests won by the hedge, counted once
	fallbacks atomic.Uint64 // router-local degraded answers (replica_down)
	probes    atomic.Uint64 // health probes issued
	merges    atomic.Uint64 // gossip entries adopted from peers
	reloads   atomic.Uint64 // replica reloads orchestrated
	warmed    atomic.Uint64 // shapes peer-warmed into reloading replicas
	repErrors atomic.Uint64 // replica transport errors observed

	// Edge fast-path series: cache traffic, single-flight shape joins
	// absorbed by the micro-batcher, and the size distribution of upstream
	// dispatches (a solo dispatch observes 1).
	edgeHits          atomic.Uint64
	edgeMisses        atomic.Uint64
	edgeInvalidations atomic.Uint64
	coalesced         atomic.Uint64
	batchSizes        sizeHistogram

	// wins counts, per replica, responses actually returned to a client —
	// a hedged request increments exactly one replica's counter.
	wins []atomic.Uint64
	reps []string
}

func newRouterMetrics(replicas []string) *routerMetrics {
	return &routerMetrics{wins: make([]atomic.Uint64, len(replicas)), reps: append([]string(nil), replicas...)}
}

// counter resolves (creating on first use) the request counter for one
// endpoint/code pair, so hot paths can hold the *atomic.Uint64 directly.
func (m *routerMetrics) counter(endpoint string, code int) *atomic.Uint64 {
	key := fmt.Sprintf("%s|%d", endpoint, code)
	c, ok := m.requests.Load(key)
	if !ok {
		c, _ = m.requests.LoadOrStore(key, &atomic.Uint64{})
	}
	return c.(*atomic.Uint64)
}

func (m *routerMetrics) request(endpoint string, code int) {
	m.counter(endpoint, code).Add(1)
}

// sizeBounds are the selectrouter_batchsize bucket upper bounds; sizes above
// the last land in +Inf.
var sizeBounds = [7]uint64{1, 2, 4, 8, 16, 32, 64}

// sizeHistogram is a fixed-bucket histogram of upstream dispatch sizes.
type sizeHistogram struct {
	buckets [8]atomic.Uint64 // le 1,2,4,8,16,32,64,+Inf
	sum     atomic.Uint64
	count   atomic.Uint64
}

func (h *sizeHistogram) observe(n int) {
	i := 0
	for i < len(sizeBounds) && uint64(n) > sizeBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(uint64(n))
	h.count.Add(1)
}

// render emits the router series; upFn supplies the health gauge per replica.
func (m *routerMetrics) render(upFn func(name string) float64) string {
	var b strings.Builder
	b.WriteString("# TYPE router_requests_total counter\n")
	type kv struct {
		key string
		val uint64
	}
	var reqs []kv
	m.requests.Range(func(k, v any) bool {
		reqs = append(reqs, kv{k.(string), v.(*atomic.Uint64).Load()})
		return true
	})
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].key < reqs[j].key })
	for _, r := range reqs {
		parts := strings.SplitN(r.key, "|", 2)
		fmt.Fprintf(&b, "router_requests_total{endpoint=%q,code=%q} %d\n", parts[0], parts[1], r.val)
	}

	counter := func(name string, v uint64) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	counter("router_retries_total", m.retries.Load())
	counter("router_hedges_total", m.hedges.Load())
	counter("router_hedge_wins_total", m.hedgeWins.Load())
	counter("router_fallback_total", m.fallbacks.Load())
	counter("router_probes_total", m.probes.Load())
	counter("router_gossip_merges_total", m.merges.Load())
	counter("router_reloads_total", m.reloads.Load())
	counter("router_warmed_shapes_total", m.warmed.Load())
	counter("router_replica_errors_total", m.repErrors.Load())

	counter("selectrouter_cache_hits_total", m.edgeHits.Load())
	counter("selectrouter_cache_misses_total", m.edgeMisses.Load())
	counter("selectrouter_cache_invalidations_total", m.edgeInvalidations.Load())
	counter("selectrouter_coalesced_total", m.coalesced.Load())
	hits, misses := m.edgeHits.Load(), m.edgeMisses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(&b, "# TYPE selectrouter_cache_hit_rate gauge\nselectrouter_cache_hit_rate %g\n", rate)

	b.WriteString("# TYPE selectrouter_batchsize histogram\n")
	cum := uint64(0)
	for i, bound := range sizeBounds {
		cum += m.batchSizes.buckets[i].Load()
		fmt.Fprintf(&b, "selectrouter_batchsize_bucket{le=%q} %d\n", strconv.FormatUint(bound, 10), cum)
	}
	cum += m.batchSizes.buckets[len(sizeBounds)].Load()
	fmt.Fprintf(&b, "selectrouter_batchsize_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "selectrouter_batchsize_sum %d\n", m.batchSizes.sum.Load())
	fmt.Fprintf(&b, "selectrouter_batchsize_count %d\n", m.batchSizes.count.Load())

	b.WriteString("# TYPE router_replica_wins_total counter\n")
	for i, name := range m.reps {
		fmt.Fprintf(&b, "router_replica_wins_total{replica=%q} %d\n", name, m.wins[i].Load())
	}
	b.WriteString("# TYPE router_replica_up gauge\n")
	for _, name := range m.reps {
		fmt.Fprintf(&b, "router_replica_up{replica=%q} %g\n", name, upFn(name))
	}
	return b.String()
}
