package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kernelselect/internal/gemm"
	"kernelselect/internal/serve"
)

// Options configures a Router.
type Options struct {
	// Name identifies this router in gossiped views.
	Name string
	// Replicas is the fleet roster, in shard-index order. The roster is
	// static for the router's lifetime; liveness is tracked per entry.
	Replicas []*Replica
	// Local is the router-local decision engine: the degraded last resort
	// that answers priceable shapes when every ring candidate is down.
	// Required — the no-5xx guarantee is built on it.
	Local serve.Engine
	// Retries bounds sequential failover attempts beyond the first (default
	// 2). The hedge does not count against it.
	Retries int
	// RetryBackoff is the pause between sequential attempts (default 5ms),
	// and the default backoff for a saturated replica when its response
	// carries no Retry-After.
	RetryBackoff time.Duration
	// HedgeDelay launches one cross-shard hedged attempt when the primary
	// has not answered in time (default 25ms; negative disables hedging).
	HedgeDelay time.Duration
	// BackoffCap bounds how long a Retry-After can hold a replica out of
	// preference (default 1s).
	BackoffCap time.Duration
	// Vnodes per replica on the hash ring (default 128).
	Vnodes int
	// WarmTop bounds hot shapes gathered from each peer window during a
	// peer-warmed reload (default 64).
	WarmTop int
	// ProbeInterval runs the background probe+gossip loop when positive;
	// zero leaves probing to explicit ProbeOnce calls (tests, chaos).
	ProbeInterval time.Duration
	// Peers are sibling router base URLs; each probe round pushes this
	// router's view to them (gossip).
	Peers []string

	// EdgeCacheSize enables the generation-aware edge cache when positive:
	// up to this many pre-rendered decision bodies are kept per device
	// channel and served with zero allocations. Entries are stamped with the
	// owning replica's generation and evicted the moment the health view (or
	// a newer body) reports a bump; degraded answers are never cached.
	// 0 disables (default).
	EdgeCacheSize int
	// BatchWindow enables adaptive micro-batching when positive: concurrent
	// cache misses bound for the same replica within the window coalesce
	// into one upstream batch call, with single-flight dedup per shape. An
	// isolated miss still dispatches immediately through the retry/hedge
	// ladder, so low-concurrency p50 does not regress. 0 disables (default).
	BatchWindow time.Duration
	// WarmConns pre-establishes this many persistent connections per replica
	// at Start — sized to the batch fan-out so the first burst of routed
	// traffic reuses warm sockets (default 8; negative disables).
	WarmConns int
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = "router"
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	if o.HedgeDelay == 0 {
		o.HedgeDelay = 25 * time.Millisecond
	}
	if o.BackoffCap == 0 {
		o.BackoffCap = time.Second
	}
	if o.WarmTop == 0 {
		o.WarmTop = 64
	}
	if o.WarmConns == 0 {
		o.WarmConns = 8
	}
	return o
}

// Router fronts N selectd replicas with consistent-hash sharding keyed on
// (device, shape-bucket), bounded retry with backoff, one cross-shard hedged
// attempt, and a router-local degraded fallback so a priceable shape is never
// answered with a 5xx. Health observations gossip between routers as
// Seq-versioned views on /v1/cluster. On top of the routing ladder sits the
// fast path: a generation-aware edge cache answering repeats with zero
// allocations, and an adaptive micro-batcher coalescing concurrent misses
// into single upstream batch calls.
type Router struct {
	name     string
	replicas []*Replica
	local    serve.Engine
	ring     *ring
	health   *healthTable
	metrics  *routerMetrics
	opts     Options

	// edge is the generation-aware response cache (nil when disabled);
	// batchers holds one micro-batch coalescer per replica (nil when
	// disabled). selectHit is the pre-resolved select|200 request counter so
	// the cache-hit path skips the formatted-key metrics lookup.
	edge      *edgeCache
	batchers  []repBatcher
	selectHit *atomic.Uint64

	// backoffUntil holds per-replica unix-nano timestamps: a saturated
	// replica (429/5xx with Retry-After) is deprioritized until then, but
	// only when an unsaturated candidate exists — backoff must never cause
	// a degraded answer on its own.
	backoffUntil []atomic.Int64

	reloadMu sync.Mutex // one orchestrated reload at a time

	gossipHC *http.Client
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New wires a router over a replica roster and a local fallback engine.
func New(opts Options) (*Router, error) {
	if len(opts.Replicas) == 0 {
		return nil, errors.New("cluster: no replicas")
	}
	if opts.Local == nil {
		return nil, errors.New("cluster: nil local engine (required for degraded fallback)")
	}
	opts = opts.withDefaults()
	names := make([]string, len(opts.Replicas))
	for i, rep := range opts.Replicas {
		names[i] = rep.Name
	}
	r := &Router{
		name:         opts.Name,
		replicas:     opts.Replicas,
		local:        opts.Local,
		ring:         newRing(len(opts.Replicas), opts.Vnodes),
		health:       newHealthTable(names),
		metrics:      newRouterMetrics(names),
		opts:         opts,
		backoffUntil: make([]atomic.Int64, len(opts.Replicas)),
		gossipHC:     &http.Client{Timeout: 2 * time.Second},
		stop:         make(chan struct{}),
	}
	r.selectHit = r.metrics.counter("select", http.StatusOK)
	if opts.EdgeCacheSize > 0 {
		r.edge = newEdgeCache(opts.EdgeCacheSize, len(opts.Replicas), r.metrics)
		// Every generation the health view learns — probes, gossip merges —
		// flows into the cache's registers, so a bump observed anywhere
		// evicts that replica's stale entries before the next hit.
		idx := make(map[string]int, len(names))
		for i, n := range names {
			idx[n] = i
		}
		r.health.onGens = func(name string, gens map[string]uint64) {
			if i, ok := idx[name]; ok {
				r.edge.noteGens(i, gens)
			}
		}
	}
	if opts.BatchWindow > 0 {
		r.batchers = make([]repBatcher, len(opts.Replicas))
		for i := range r.batchers {
			r.batchers[i].pending = make(map[string]*batchGroup, 2)
		}
	}
	return r, nil
}

// Start launches the background probe+gossip loop when ProbeInterval is set,
// and pre-warms each replica's persistent connection pool.
func (r *Router) Start() {
	if r.opts.WarmConns > 0 {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			var wg sync.WaitGroup
			for _, rep := range r.replicas {
				wg.Add(1)
				go func(rep *Replica) {
					defer wg.Done()
					rep.WarmConns(ctx, r.opts.WarmConns)
				}(rep)
			}
			wg.Wait()
		}()
	}
	if r.opts.ProbeInterval <= 0 {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(r.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), r.opts.ProbeInterval)
				view := r.ProbeOnce(ctx)
				r.gossip(ctx, view)
				cancel()
			}
		}
	}()
}

// Close stops the probe loop.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// gossip pushes this router's view to each configured peer.
func (r *Router) gossip(ctx context.Context, view View) {
	body, err := json.Marshal(view)
	if err != nil {
		return
	}
	for _, peer := range r.opts.Peers {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/cluster", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		if resp, err := r.gossipHC.Do(req); err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
		}
	}
}

// View reports the router's current gossiped health/generation view.
func (r *Router) View() View { return r.health.snapshot(r.name) }

// MarkDown force-marks a replica down (operator action and tests).
func (r *Router) MarkDown(name string) { r.health.observe(name, StateDown, nil, "marked down") }

// MarkUp force-marks a replica up.
func (r *Router) MarkUp(name string) { r.health.observe(name, StateUp, nil, "") }

// setBackoff deprioritizes a replica until now+d (capped).
func (r *Router) setBackoff(idx int, d time.Duration) {
	if d > r.opts.BackoffCap {
		d = r.opts.BackoffCap
	}
	r.backoffUntil[idx].Store(time.Now().Add(d).UnixNano())
}

// routable filters a candidate order down to replicas worth trying: up and
// not in backoff. If backoff would empty the list, backed-off (but up)
// replicas are readmitted — backoff sheds preference, never availability.
func (r *Router) routable(order []int) []int {
	now := time.Now().UnixNano()
	alive := make([]int, 0, len(order))
	backedOff := make([]int, 0, 2)
	for _, idx := range order {
		if r.health.state(r.replicas[idx].Name) != StateUp {
			continue
		}
		if r.backoffUntil[idx].Load() > now {
			backedOff = append(backedOff, idx)
			continue
		}
		alive = append(alive, idx)
	}
	return append(alive, backedOff...)
}

// attemptResult is one replica attempt's outcome.
type attemptResult struct {
	idx    int
	hedge  bool
	status int
	body   []byte
	err    error
}

// attempt runs one replica round trip and reports it. Transport errors mark
// the replica down immediately (its shard re-hashes on the next request) —
// unless this attempt's context was cancelled, which says the ladder lost
// interest (a sibling won), not that the replica is sick. Saturation
// responses (429/5xx) arm the backoff from Retry-After.
func (r *Router) attempt(ctx context.Context, idx int, hedge bool, device string, shape gemm.Shape, ch chan<- attemptResult) {
	rep := r.replicas[idx]
	status, hdr, body, err := rep.Select(ctx, device, shape)
	if err != nil {
		if ctx.Err() == nil {
			r.metrics.repErrors.Add(1)
			r.health.observe(rep.Name, StateDown, nil, err.Error())
		}
		ch <- attemptResult{idx: idx, hedge: hedge, err: err}
		return
	}
	if status == http.StatusTooManyRequests || status >= 500 {
		r.setBackoff(idx, retryAfterOrDefault(hdr, r.opts.RetryBackoff))
	}
	ch <- attemptResult{idx: idx, hedge: hedge, status: status, body: body}
}

// acceptable reports whether an attempt outcome can be returned to the
// client: any HTTP response below 500. 2xx/4xx (including a shed 429, which
// carries Retry-After for the client) pass through verbatim; transport errors
// and 5xx stay inside the router and trigger failover.
func acceptable(res attemptResult) bool {
	return res.err == nil && res.status < 500
}

// tryReplicas runs the retry/hedge ladder over the candidate list: launch the
// first candidate, hedge to the second after HedgeDelay, and on failure walk
// the remaining candidates sequentially with backoff, up to Retries extra
// attempts. The first acceptable response wins and is counted exactly once;
// the moment it returns, every losing in-flight arm is cancelled through its
// own context, so hedges stop burning replica budget on work nobody will
// read.
func (r *Router) tryReplicas(ctx context.Context, alive []int, device string, shape gemm.Shape) (attemptResult, bool) {
	if len(alive) == 0 {
		return attemptResult{}, false
	}
	ch := make(chan attemptResult, len(alive))
	cancels := make([]context.CancelFunc, 0, len(alive))
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	launch := func(idx int, hedge bool) {
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go r.attempt(actx, idx, hedge, device, shape, ch)
	}
	next := 1
	pending := 1
	seqAttempts := 1
	launch(alive[0], false)

	var hedgeC <-chan time.Time
	if r.opts.HedgeDelay > 0 && len(alive) > 1 {
		t := time.NewTimer(r.opts.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}

	for {
		select {
		case <-ctx.Done():
			return attemptResult{}, false
		case <-hedgeC:
			hedgeC = nil
			if next < len(alive) {
				r.metrics.hedges.Add(1)
				pending++
				launch(alive[next], true)
				next++
			}
		case res := <-ch:
			pending--
			if acceptable(res) {
				return res, true
			}
			if pending > 0 {
				continue // an in-flight sibling may still win
			}
			if next >= len(alive) || seqAttempts > r.opts.Retries {
				return attemptResult{}, false
			}
			r.metrics.retries.Add(1)
			seqAttempts++
			select {
			case <-ctx.Done():
				return attemptResult{}, false
			case <-time.After(r.opts.RetryBackoff):
			}
			pending++
			launch(alive[next], false)
			next++
		}
	}
}

// errorBody mirrors serve's error envelope.
func errorBody(msg string) []byte {
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	return b
}

// fallback answers from the router-local engine, stamped degraded with reason
// replica_down. This is the no-5xx backstop: a priceable shape always gets a
// usable (if conservative) configuration even with the whole fleet dark.
func (r *Router) fallback(ctx context.Context, device string, shape gemm.Shape) (int, []byte, http.Header) {
	d, err := r.local.Decide(ctx, device, shape)
	if err != nil {
		if ctx.Err() != nil {
			h := http.Header{}
			h.Set("Retry-After", "1")
			return http.StatusServiceUnavailable, errorBody("deadline exceeded"), h
		}
		// Unpriceable: unknown device or invalid shape — a client error on
		// any topology, single replica or fleet.
		return http.StatusBadRequest, errorBody(err.Error()), nil
	}
	d.Degraded = true
	d.DegradedReason = "replica_down"
	d.Cached = false
	r.metrics.fallbacks.Add(1)
	b, err := json.Marshal(d)
	if err != nil {
		return http.StatusBadRequest, errorBody(err.Error()), nil
	}
	return http.StatusOK, b, nil
}

// cacheFillBody stamps and caches one passthrough replica body: the
// generation is scanned out of the rendered JSON, degraded bodies are
// skipped, and anything the scanner cannot fully account for is simply not
// cached (never mis-stamped).
func (r *Router) cacheFillBody(device string, shape gemm.Shape, rep, status int, body []byte) {
	if r.edge == nil || status != http.StatusOK {
		return
	}
	gen, degraded, ok := serve.ScanDecisionMeta(body)
	if !ok || degraded || gen == 0 {
		return
	}
	if len(body) == 0 || body[len(body)-1] != '\n' {
		body = append(append(make([]byte, 0, len(body)+1), body...), '\n')
	}
	r.edge.put(device, shape, rep, gen, body)
}

// cacheFillDecision caches one already-rendered decision body whose metadata
// is known (the micro-batcher's path; degraded was filtered by the caller).
func (r *Router) cacheFillDecision(device string, shape gemm.Shape, rep int, gen uint64, body []byte) {
	if r.edge == nil {
		return
	}
	r.edge.put(device, shape, rep, gen, body)
}

// route answers one select request through the full ladder: consistent-hash
// candidates, liveness filter, micro-batcher or retry+hedge, local degraded
// fallback. Successful full-quality answers refill the edge cache on the way
// out.
func (r *Router) route(ctx context.Context, device string, shape gemm.Shape) (int, []byte, http.Header) {
	order := r.ring.candidates(device, shape)
	alive := r.routable(order)
	if r.batchers != nil && len(alive) > 0 {
		if status, body, ok := r.routeCoalesced(ctx, device, shape, alive); ok {
			return status, body, nil
		}
		return r.fallback(ctx, device, shape)
	}
	if res, ok := r.tryReplicas(ctx, alive, device, shape); ok {
		r.metrics.wins[res.idx].Add(1)
		if res.hedge {
			r.metrics.hedgeWins.Add(1)
		}
		r.cacheFillBody(device, shape, res.idx, res.status, res.body)
		return res.status, res.body, nil
	}
	return r.fallback(ctx, device, shape)
}

// selectBufPool holds per-request scratch for the select proxy loop: the
// request body lands in it and is scanned in place, so a cache hit touches
// the heap zero times.
var selectBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

var jsonContentType = []string{"application/json"}

func (r *Router) handleSelect(w http.ResponseWriter, req *http.Request) {
	bp := selectBufPool.Get().(*[]byte)
	defer selectBufPool.Put(bp)
	body, err := serve.ReadRequestBody(w, req, (*bp)[:0])
	*bp = body[:0]
	if err != nil {
		r.writeResponse(w, "select", http.StatusBadRequest, errorBody(err.Error()), nil)
		return
	}
	var shape gemm.Shape
	var deviceB []byte // aliases body; consumed before the buffer is released
	if m, k, n, dev, ok := serve.ParseSelectWire(body); ok {
		shape = gemm.Shape{M: m, K: k, N: n}
		deviceB = dev
	} else {
		// Anything beyond the canonical form keeps the lenient stdlib
		// semantics the router has always had for passthrough requests.
		var sr selectShape
		if err := json.Unmarshal(body, &sr); err != nil {
			r.writeResponse(w, "select", http.StatusBadRequest, errorBody(err.Error()), nil)
			return
		}
		shape = gemm.Shape{M: sr.M, K: sr.K, N: sr.N}
		deviceB = []byte(sr.Device)
	}
	if err := shape.Validate(); err != nil {
		r.writeResponse(w, "select", http.StatusBadRequest, errorBody(err.Error()), nil)
		return
	}
	if r.edge != nil {
		if cached := r.edge.get(deviceB, shape); cached != nil {
			h := w.Header()
			h["Content-Type"] = jsonContentType
			w.WriteHeader(http.StatusOK)
			w.Write(cached)
			r.selectHit.Add(1)
			return
		}
	}
	status, out, hdr := r.route(req.Context(), string(deviceB), shape)
	r.writeResponse(w, "select", status, out, hdr)
}

// writeResponse commits one response and counts it once.
func (r *Router) writeResponse(w http.ResponseWriter, endpoint string, status int, body []byte, hdr http.Header) {
	for k, vs := range hdr {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		w.Write([]byte("\n"))
	}
	r.metrics.request(endpoint, status)
}

// handleBatch shards a batch across the fleet: shapes group by their ring
// primary, each group rides one replica batch call (walking that group's
// candidate list on failure), and shapes whose candidates are all down get
// individual local fallback answers. Results return in request order.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	var br batchWire
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBody))
	if err == nil {
		err = json.Unmarshal(body, &br)
	}
	if err != nil {
		r.writeResponse(w, "batch", http.StatusBadRequest, errorBody(err.Error()), nil)
		return
	}
	shapes := make([]gemm.Shape, len(br.Shapes))
	for i, s := range br.Shapes {
		shapes[i] = gemm.Shape{M: s.M, K: s.K, N: s.N}
		if err := shapes[i].Validate(); err != nil {
			r.writeResponse(w, "batch", http.StatusBadRequest, errorBody(fmt.Sprintf("shape %d: %v", i, err)), nil)
			return
		}
	}

	// Group request indices by ring primary among routable candidates.
	groups := make(map[int][]int)
	var orphans []int // no routable candidate at all
	for i, shape := range shapes {
		alive := r.routable(r.ring.candidates(br.Device, shape))
		if len(alive) == 0 {
			orphans = append(orphans, i)
			continue
		}
		groups[alive[0]] = append(groups[alive[0]], i)
	}

	results := make([]serve.Decision, len(shapes))
	var mu sync.Mutex
	var wg sync.WaitGroup
	fallbackOne := func(i int) {
		status, out, _ := r.fallback(req.Context(), br.Device, shapes[i])
		var d serve.Decision
		if status == http.StatusOK {
			json.Unmarshal(out, &d)
		}
		mu.Lock()
		results[i] = d
		mu.Unlock()
	}
	for primary, idxs := range groups {
		wg.Add(1)
		go func(primary int, idxs []int) {
			defer wg.Done()
			group := make([]gemm.Shape, len(idxs))
			for j, i := range idxs {
				group[j] = shapes[i]
			}
			// Walk this group's candidates: the primary first, then the same
			// successor order a single request would fail over to.
			alive := r.routable(r.ring.candidates(br.Device, group[0]))
			tried := 0
			for _, idx := range alive {
				if tried > r.opts.Retries {
					break
				}
				tried++
				decs, err := r.replicas[idx].Batch(req.Context(), br.Device, group)
				if err != nil {
					r.noteBatchError(req.Context(), idx, err)
					continue
				}
				r.metrics.wins[idx].Add(1)
				mu.Lock()
				for j, i := range idxs {
					results[i] = decs[j]
				}
				mu.Unlock()
				return
			}
			for _, i := range idxs {
				fallbackOne(i)
			}
		}(primary, idxs)
	}
	for _, i := range orphans {
		wg.Add(1)
		go func(i int) { defer wg.Done(); fallbackOne(i) }(i)
	}
	wg.Wait()

	bp := selectBufPool.Get().(*[]byte)
	out := serve.AppendBatchJSON((*bp)[:0], results)
	r.writeResponse(w, "batch", http.StatusOK, out, nil)
	*bp = out[:0]
	selectBufPool.Put(bp)
}

// maxBody mirrors serve's request body cap for the control endpoints; select
// bodies go through serve.ReadRequestBody and share the serving tier's cap.
const maxBody = 1 << 20

func (r *Router) handleClusterGet(w http.ResponseWriter, _ *http.Request) {
	b, _ := json.Marshal(r.View())
	r.writeResponse(w, "cluster", http.StatusOK, b, nil)
}

func (r *Router) handleClusterPost(w http.ResponseWriter, req *http.Request) {
	var v View
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBody))
	if err == nil {
		err = json.Unmarshal(body, &v)
	}
	if err != nil {
		r.writeResponse(w, "cluster", http.StatusBadRequest, errorBody(err.Error()), nil)
		return
	}
	adopted := r.health.merge(v)
	r.metrics.merges.Add(uint64(adopted))
	b, _ := json.Marshal(struct {
		Adopted int `json:"adopted"`
	}{Adopted: adopted})
	r.writeResponse(w, "cluster", http.StatusOK, b, nil)
}

// reloadSummary is the router's POST /v1/reload body: one entry per replica
// rolled.
type reloadSummary struct {
	Replica    string `json:"replica"`
	Device     string `json:"device,omitempty"`
	Generation uint64 `json:"generation"`
	Warmed     int    `json:"warmed"`
	Err        string `json:"error,omitempty"`
}

func (r *Router) handleReload(w http.ResponseWriter, req *http.Request) {
	var rr struct {
		Replica string `json:"replica,omitempty"`
		Device  string `json:"device,omitempty"`
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBody))
	if err == nil && len(bytes.TrimSpace(body)) > 0 {
		err = json.Unmarshal(body, &rr)
	}
	if err != nil {
		r.writeResponse(w, "reload", http.StatusBadRequest, errorBody(err.Error()), nil)
		return
	}
	targets := make([]int, 0, len(r.replicas))
	if rr.Replica != "" {
		found := -1
		for i, rep := range r.replicas {
			if rep.Name == rr.Replica {
				found = i
				break
			}
		}
		if found < 0 {
			r.writeResponse(w, "reload", http.StatusBadRequest, errorBody(fmt.Sprintf("unknown replica %q", rr.Replica)), nil)
			return
		}
		targets = append(targets, found)
	} else {
		for i := range r.replicas {
			targets = append(targets, i)
		}
	}

	r.reloadMu.Lock()
	defer r.reloadMu.Unlock()
	summaries := make([]reloadSummary, 0, len(targets))
	failed := false
	for _, idx := range targets {
		s := r.reloadReplica(req.Context(), idx, rr.Device)
		if s.Err != "" {
			failed = true
		}
		summaries = append(summaries, s)
	}
	out, _ := json.Marshal(struct {
		Reloads []reloadSummary `json:"reloads"`
	}{Reloads: summaries})
	code := http.StatusOK
	if failed {
		code = http.StatusBadGateway
	}
	r.writeResponse(w, "reload", code, out, nil)
}

// reloadReplica rolls one replica onto a fresh generation with peer
// cache-warming: the replica leaves rotation (state warming, so its shards
// re-hash to successors and gather traffic there), reloads, pre-prices the
// hottest shapes its peers observed for its shards, and only then cuts back
// in. The new generation goes live warm instead of eating a cold-start
// latency cliff on its own shard.
func (r *Router) reloadReplica(ctx context.Context, idx int, device string) reloadSummary {
	rep := r.replicas[idx]
	sum := reloadSummary{Replica: rep.Name, Device: device}
	if r.health.state(rep.Name) == StateDown {
		sum.Err = "replica down"
		return sum
	}
	r.health.observe(rep.Name, StateWarming, nil, "")
	defer func() {
		if sum.Err == "" {
			r.health.observe(rep.Name, StateUp, nil, "")
		} else {
			r.health.observe(rep.Name, StateDown, nil, sum.Err)
		}
	}()

	rw, err := rep.Reload(ctx, device)
	if err != nil {
		sum.Err = err.Error()
		return sum
	}
	sum.Generation = rw.Generation
	r.metrics.reloads.Add(1)
	if r.edge != nil {
		// Eagerly advance the shard's generation register: the reloaded
		// replica's old-generation entries are stale the instant the swap
		// lands, before any probe round confirms it.
		r.edge.noteGens(idx, map[string]uint64{rw.Device: rw.Generation})
	}

	warm := r.gatherWarmShapes(ctx, idx, device)
	if len(warm) > 0 {
		if _, err := rep.Batch(ctx, device, warm); err == nil {
			sum.Warmed = len(warm)
			r.metrics.warmed.Add(uint64(len(warm)))
		}
	}
	return sum
}

// gatherWarmShapes collects, from every up peer's served-shape window, the
// hot shapes whose all-up ring primary is the reloading replica — exactly the
// traffic that re-hashed away while it was out, and exactly what will come
// back at cutover. Deduped and ordered hottest-first.
func (r *Router) gatherWarmShapes(ctx context.Context, idx int, device string) []gemm.Shape {
	type hot struct {
		shape gemm.Shape
		count int
	}
	var hots []hot
	seen := make(map[gemm.Shape]bool)
	for i, peer := range r.replicas {
		if i == idx || r.health.state(peer.Name) != StateUp {
			continue
		}
		shapes, err := peer.Window(ctx, device, r.opts.WarmTop)
		if err != nil {
			continue
		}
		for _, hs := range shapes {
			shape := gemm.Shape{M: hs.M, K: hs.K, N: hs.N}
			if seen[shape] {
				continue
			}
			// Primary on the all-up ring: where this shape's traffic lives
			// when the fleet is healthy — warming anything else would heat a
			// cache the replica will never be asked from.
			if r.ring.candidates(device, shape)[0] != idx {
				continue
			}
			seen[shape] = true
			hots = append(hots, hot{shape: shape, count: hs.Count})
		}
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].count != hots[j].count {
			return hots[i].count > hots[j].count
		}
		return hots[i].shape.String() < hots[j].shape.String()
	})
	if len(hots) > r.opts.WarmTop {
		hots = hots[:r.opts.WarmTop]
	}
	out := make([]gemm.Shape, len(hots))
	for i, h := range hots {
		out[i] = h.shape
	}
	return out
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// The router itself is always serviceable: with the fleet dark it still
	// answers degraded from the local engine, so healthz reports topology
	// rather than gating on replica liveness.
	b, _ := json.Marshal(struct {
		Status      string `json:"status"`
		ReplicasUp  int    `json:"replicas_up"`
		ReplicasAll int    `json:"replicas_total"`
	}{Status: "ok", ReplicasUp: r.health.upCount(), ReplicasAll: len(r.replicas)})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
	w.Write([]byte("\n"))
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	up := func(name string) float64 {
		if r.health.state(name) == StateUp {
			return 1
		}
		return 0
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, r.metrics.render(up))
}

// Handler returns the router's full HTTP surface.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/select", r.handleSelect)
	mux.HandleFunc("POST /v1/select/batch", r.handleBatch)
	mux.HandleFunc("GET /v1/cluster", r.handleClusterGet)
	mux.HandleFunc("POST /v1/cluster", r.handleClusterPost)
	mux.HandleFunc("POST /v1/reload", r.handleReload)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	return mux
}
