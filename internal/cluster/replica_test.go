package cluster

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"kernelselect/internal/gemm"
)

// TestParseRetryAfter pins RFC 7231 Retry-After semantics: both delta-seconds
// and HTTP-date forms parse, measured against a fixed clock; zero, the past,
// and garbage are rejected so the router falls back to its default backoff.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
		ok   bool
	}{
		{"delta-seconds", "5", 5 * time.Second, true},
		{"delta-whitespace", "  12  ", 12 * time.Second, true},
		{"delta-large", "3600", time.Hour, true},
		{"delta-zero", "0", 0, false},
		{"delta-negative", "-3", 0, false},
		{"http-date-future", now.Add(30 * time.Second).Format(http.TimeFormat), 30 * time.Second, true},
		{"http-date-far-future", now.Add(2 * time.Minute).Format(http.TimeFormat), 2 * time.Minute, true},
		{"http-date-past", now.Add(-time.Minute).Format(http.TimeFormat), 0, false},
		{"http-date-now", now.Format(http.TimeFormat), 0, false},
		{"rfc850-date", now.Add(45 * time.Second).Format(time.RFC850), 45 * time.Second, true},
		{"ansic-date", now.Add(20 * time.Second).Format(time.ANSIC), 20 * time.Second, true},
		{"empty", "", 0, false},
		{"whitespace-only", "   ", 0, false},
		{"garbage", "soon", 0, false},
		{"trailing-junk", "5 seconds", 0, false},
		{"mixed-digits", "5x", 0, false},
		{"float", "2.5", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseRetryAfter(tc.v, now)
			if ok != tc.ok || got != tc.want {
				t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.v, got, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestRetryAfterOrDefault covers the header-level seam: parseable values win,
// anything else yields the default.
func TestRetryAfterOrDefault(t *testing.T) {
	def := 7 * time.Millisecond
	h := http.Header{}
	if got := retryAfterOrDefault(h, def); got != def {
		t.Errorf("missing header: %v, want default %v", got, def)
	}
	h.Set("Retry-After", "2")
	if got := retryAfterOrDefault(h, def); got != 2*time.Second {
		t.Errorf("delta-seconds header: %v, want 2s", got)
	}
	h.Set("Retry-After", time.Now().Add(10*time.Second).UTC().Format(http.TimeFormat))
	if got := retryAfterOrDefault(h, def); got < 8*time.Second || got > 10*time.Second {
		t.Errorf("HTTP-date header: %v, want ~10s", got)
	}
	h.Set("Retry-After", "nonsense")
	if got := retryAfterOrDefault(h, def); got != def {
		t.Errorf("garbage header: %v, want default %v", got, def)
	}
}

// The pooled append-encoders must stay byte-identical to encoding/json — the
// replicas parse these bodies with strict decoders, and "fast" must never
// mean "different".
func TestAppendWireBodiesMatchStdlib(t *testing.T) {
	shapes := []gemm.Shape{{M: 784, K: 1152, N: 256}, {M: 1, K: 4096, N: 1000}, {M: 100352, K: 3, N: 64}}
	for _, device := range []string{"", "r9nano", "gfx803-es2"} {
		for _, s := range shapes {
			want, _ := json.Marshal(selectShape{M: s.M, K: s.K, N: s.N, Device: device})
			if got := appendSelectBody(nil, device, s); string(got) != string(want) {
				t.Errorf("appendSelectBody(%q, %v) = %s, want %s", device, s, got, want)
			}
		}
		wire := batchWire{Device: device, Shapes: make([]selectShape, len(shapes))}
		for i, s := range shapes {
			wire.Shapes[i] = selectShape{M: s.M, K: s.K, N: s.N}
		}
		want, _ := json.Marshal(wire)
		if got := appendBatchBody(nil, device, shapes); string(got) != string(want) {
			t.Errorf("appendBatchBody(%q) = %s, want %s", device, got, want)
		}
	}
	if plainJSONString("naïve") || plainJSONString(`quo"te`) || plainJSONString("html<>&") {
		t.Error("plainJSONString admitted a string the HTML-safe encoder would escape")
	}
	if !plainJSONString("r9nano") || !plainJSONString("") {
		t.Error("plainJSONString rejected a plain device name")
	}
}
