package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"kernelselect/internal/core"
	"kernelselect/internal/gemm"
	"kernelselect/internal/serve"
	"kernelselect/internal/sim"
)

// routerReload posts one replica reload through the router and returns its
// summary.
func routerReload(t *testing.T, url, replica string) reloadSummary {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"replica": replica})
	resp, err := http.Post(url+"/v1/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router reload: status %d", resp.StatusCode)
	}
	var out struct {
		Reloads []reloadSummary `json:"reloads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Reloads) != 1 || out.Reloads[0].Err != "" {
		t.Fatalf("reload summary %+v", out.Reloads)
	}
	return out.Reloads[0]
}

// A /v1/reload generation bump on one replica evicts exactly that replica's
// edge entries: the victim's shard re-prices on the new generation while its
// peer's cached shard keeps answering without an upstream hop.
func TestEdgeReloadEvictsOnlyVictimShard(t *testing.T) {
	f := newTestFleet(t, 2, Options{HedgeDelay: -1, EdgeCacheSize: 1024},
		serveOptionsForTests(), nil)
	libB := buildFleetLib(t, f.model, 4)
	for _, srv := range f.srvs {
		srv.SetReloadSource(func(string) (*core.Library, *sim.Model, error) {
			return libB, nil, nil
		})
	}
	shapeA := shapeWithPrimary(t, f.router, "", 0)
	shapeB := shapeWithPrimary(t, f.router, "", 1)

	// Fill both shards, then prove the repeats are edge hits: the replicas'
	// win counters do not move.
	for _, shape := range []gemm.Shape{shapeA, shapeB} {
		if status, d := routerSelect(t, f.rts.URL, shape); status != http.StatusOK || d.Degraded {
			t.Fatalf("fill request %v: status %d degraded=%v", shape, status, d.Degraded)
		}
	}
	winsA, winsB := f.router.metrics.wins[0].Load(), f.router.metrics.wins[1].Load()
	for _, shape := range []gemm.Shape{shapeA, shapeB} {
		if status, _ := routerSelect(t, f.rts.URL, shape); status != http.StatusOK {
			t.Fatalf("repeat request %v: status %d", shape, status)
		}
	}
	if f.router.metrics.wins[0].Load() != winsA || f.router.metrics.wins[1].Load() != winsB {
		t.Fatal("repeat requests reached a replica — edge cache did not serve them")
	}
	if hits := f.router.metrics.edgeHits.Load(); hits < 2 {
		t.Fatalf("edge hits %d after two cached repeats, want >= 2", hits)
	}

	sum := routerReload(t, f.rts.URL, replicaName(0))
	if sum.Generation < 2 {
		t.Fatalf("reload generation %d, want >= 2", sum.Generation)
	}

	// The victim's entry is gone; the peer's survived.
	if body := f.router.edge.get(nil, shapeA); body != nil {
		t.Fatalf("stale entry for the reloaded shard still cached: %s", body)
	}
	if body := f.router.edge.get(nil, shapeB); body == nil {
		t.Fatal("peer shard's entry was evicted by an unrelated reload")
	}

	// The re-priced answer carries the new generation, never the stale body.
	status, d := routerSelect(t, f.rts.URL, shapeA)
	if status != http.StatusOK || d.Degraded {
		t.Fatalf("post-reload request: status %d degraded=%v", status, d.Degraded)
	}
	if d.Generation != sum.Generation {
		t.Fatalf("post-reload decision from generation %d, want %d", d.Generation, sum.Generation)
	}
	// And the peer's cached shard still answers without an upstream hop.
	winsB = f.router.metrics.wins[1].Load()
	if status, _ := routerSelect(t, f.rts.URL, shapeB); status != http.StatusOK {
		t.Fatalf("peer repeat after reload: status %d", status)
	}
	if f.router.metrics.wins[1].Load() != winsB {
		t.Error("peer shard repeat reached the replica after an unrelated reload")
	}
}

// An out-of-band reload (straight to the replica, bypassing the router) is
// caught by the next probe round: the generation register advances from the
// gossiped view and the stale entry is never served again.
func TestEdgeProbeEvictsOutOfBandReload(t *testing.T) {
	f := newTestFleet(t, 1, Options{HedgeDelay: -1, EdgeCacheSize: 1024},
		serveOptionsForTests(), nil)
	shape := fleetShapes[3]
	if status, d := routerSelect(t, f.rts.URL, shape); status != http.StatusOK || d.Generation != 1 {
		t.Fatalf("fill request: status %d generation %d", status, d.Generation)
	}
	if f.router.edge.get(nil, shape) == nil {
		t.Fatal("fill request did not cache")
	}

	libB := buildFleetLib(t, f.model, 4)
	gen2, err := f.srvs[0].Reload("", libB, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.router.ProbeOnce(context.Background())
	if reg := f.router.edge.reg("", 0); reg != gen2 {
		t.Fatalf("generation register %d after probe, want %d", reg, gen2)
	}
	if body := f.router.edge.get(nil, shape); body != nil {
		t.Fatalf("stale generation-1 body still served after the probe: %s", body)
	}
	status, d := routerSelect(t, f.rts.URL, shape)
	if status != http.StatusOK || d.Generation != gen2 {
		t.Fatalf("post-probe request: status %d generation %d, want %d", status, d.Generation, gen2)
	}
}

// Degraded answers are never cached — neither the router-local replica_down
// fallback nor a degraded body passed through from a pressured replica.
func TestEdgeDegradedNeverCached(t *testing.T) {
	t.Run("local-fallback", func(t *testing.T) {
		f := newTestFleet(t, 1, Options{HedgeDelay: -1, EdgeCacheSize: 1024},
			serveOptionsForTests(), nil)
		f.router.MarkDown(replicaName(0))
		for i := 0; i < 2; i++ {
			status, d := routerSelect(t, f.rts.URL, fleetShapes[0])
			if status != http.StatusOK || !d.Degraded || d.DegradedReason != "replica_down" {
				t.Fatalf("request %d: status %d decision %+v", i, status, d)
			}
		}
		if n := f.router.edge.len(); n != 0 {
			t.Errorf("%d degraded fallback answers cached, want 0", n)
		}
	})

	t.Run("replica-passthrough", func(t *testing.T) {
		degraded, _ := json.Marshal(serve.Decision{
			Device: "r9nano", Shape: "784x1152x256", Config: "8x8x8 f4",
			Generation: 3, Degraded: true, DegradedReason: "admission_budget",
		})
		wrap := func(i int, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/select" {
					w.Header().Set("Content-Type", "application/json")
					w.Write(append(degraded, '\n'))
					return
				}
				h.ServeHTTP(w, r)
			})
		}
		f := newTestFleet(t, 1, Options{HedgeDelay: -1, EdgeCacheSize: 1024},
			serveOptionsForTests(), wrap)
		for i := 0; i < 2; i++ {
			status, d := routerSelect(t, f.rts.URL, fleetShapes[3])
			if status != http.StatusOK || !d.Degraded {
				t.Fatalf("request %d: status %d decision %+v", i, status, d)
			}
		}
		if n := f.router.edge.len(); n != 0 {
			t.Errorf("%d degraded passthrough bodies cached, want 0", n)
		}
		if wins := f.router.metrics.wins[0].Load(); wins != 2 {
			t.Errorf("replica won %d requests, want 2 (no request may be served from cache)", wins)
		}
	})
}
