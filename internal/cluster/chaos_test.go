package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/faultinject"
	"kernelselect/internal/gemm"
	"kernelselect/internal/serve"
	"kernelselect/internal/sim"
)

// TestChaosCluster drives a 3-replica fleet through seed-determined pricing
// spikes/errors and client cancellations while one replica — chosen by the
// seed — is killed at the transport mid-load, restored, and rolled onto a new
// generation through the router's peer-warmed reload. The audit pins the
// cluster resilience invariants:
//
//   - a priceable shape never sees a 5xx: every response is 200 (the fleet
//     has no shed configured, so even 429 is out of contract);
//   - every 200 is generation-consistent: its config sits at its index in the
//     library of the generation stamped on it, and non-degraded decisions
//     agree with that library's interpreted selector;
//   - degraded answers name a reason and are never cached; router-local
//     fallbacks carry reason replica_down;
//   - the outage really fired (kills and severed connections counted) and
//     the fleet re-converges to an all-up /v1/cluster view;
//   - admission budgets are conserved on every replica once traffic quiesces.
//
// Seed count from CHAOS_SEEDS (default 2); reproduce one seed with
// `CHAOS_SEEDS=1 CHAOS_BASE=<seed> go test -run TestChaosCluster/seed=<seed>`.
func TestChaosCluster(t *testing.T) {
	seeds := 2
	if v := os.Getenv("CHAOS_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad CHAOS_SEEDS %q", v)
		}
		seeds = n
	}
	base := uint64(1)
	if v := os.Getenv("CHAOS_BASE"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_BASE %q", v)
		}
		base = n
	}
	for i := 0; i < seeds; i++ {
		seed := base + uint64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			chaosClusterRun(t, seed)
		})
	}
}

func chaosClusterRun(t *testing.T, seed uint64) {
	const replicaCount = 3
	inj := faultinject.New(seed, faultinject.Options{
		PriceError: 0.002,
		Spike:      0.02,
		SpikeMax:   100 * time.Microsecond,
		Cancel:     0.05,
		CancelMax:  300 * time.Microsecond,
	})

	model := sim.New(device.R9Nano())
	ds := dataset.Build(model, fleetShapes, gemm.AllConfigs()[:120])
	libA := core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 6, 42)
	libB := core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 4, 42)

	// Every replica is an identically-trained single-device selectd with the
	// shared injector on its pricing seam and an outage switch on its wire.
	var srvs []*serve.Server
	var outages []*faultinject.Outage
	replicas := make([]*Replica, replicaCount)
	var servers []*httptest.Server
	for i := 0; i < replicaCount; i++ {
		pricer := inj.Pricer(faultinject.PricerFunc(
			func(_ context.Context, cfg gemm.Config, s gemm.Shape) (float64, error) {
				return model.GFLOPS(cfg, s), nil
			}))
		srv, err := serve.NewMulti(
			[]serve.Backend{{Device: model.Dev.Name, Lib: libA, Model: model, Pricer: pricer}},
			serve.Options{
				MaxInFlight:    8,
				FallbackShapes: fleetShapes,
				RequestTimeout: 2 * time.Second,
				WindowSize:     512,
			})
		if err != nil {
			t.Fatal(err)
		}
		srv.SetReloadSource(func(string) (*core.Library, *sim.Model, error) {
			return libB, nil, nil
		})
		o := faultinject.NewOutage()
		ts := httptest.NewServer(o.Middleware(inj.Middleware(srv.Handler())))
		srvs = append(srvs, srv)
		outages = append(outages, o)
		servers = append(servers, ts)
		replicas[i] = NewReplica(replicaName(i), ts.URL, nil)
	}
	defer func() {
		for _, ts := range servers {
			ts.Close()
		}
		for _, srv := range srvs {
			srv.Close()
		}
	}()

	local := serve.New(libA, model, serve.Options{FallbackShapes: fleetShapes})
	defer local.Close()
	router, err := New(Options{
		Replicas:      replicas,
		Local:         local,
		Retries:       replicaCount,
		RetryBackoff:  2 * time.Millisecond,
		HedgeDelay:    10 * time.Millisecond,
		EdgeCacheSize: 2048,
		BatchWindow:   150 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	// Seed-determined victim; kill/restore/reload land at fixed fractions of
	// the load window.
	victim := int(seed % replicaCount)

	type outcome struct {
		status  int
		results []serve.Decision
	}
	const goroutines = 8
	const perG = 40
	var wg sync.WaitGroup
	outcomes := make([][]outcome, goroutines)
	errs := make(chan error, goroutines)
	client := &http.Client{Timeout: 10 * time.Second}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var url string
				var raw []byte
				if i%4 == 3 {
					url = rts.URL + "/v1/select/batch"
					a, b := fleetShapes[(g+i)%len(fleetShapes)], fleetShapes[(g+2*i)%len(fleetShapes)]
					raw, _ = json.Marshal(map[string]any{"shapes": []map[string]int{
						{"m": a.M, "k": a.K, "n": a.N}, {"m": b.M, "k": b.K, "n": b.N},
					}})
				} else {
					url = rts.URL + "/v1/select"
					s := fleetShapes[(g*7+i)%len(fleetShapes)]
					raw, _ = json.Marshal(map[string]int{"m": s.M, "k": s.K, "n": s.N})
				}
				resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d request %d: %w", g, i, err)
					return
				}
				o := outcome{status: resp.StatusCode}
				if resp.StatusCode == http.StatusOK {
					var body bytes.Buffer
					if _, err := body.ReadFrom(resp.Body); err == nil {
						var d serve.Decision
						var br struct {
							Results []serve.Decision `json:"results"`
						}
						if json.Unmarshal(body.Bytes(), &br) == nil && len(br.Results) > 0 {
							o.results = br.Results
						} else if json.Unmarshal(body.Bytes(), &d) == nil && d.Config != "" {
							o.results = []serve.Decision{d}
						}
					}
				}
				resp.Body.Close()
				outcomes[g] = append(outcomes[g], o)
				time.Sleep(500 * time.Microsecond)
			}
		}(g)
	}

	// The chaos conductor: probe → kill the victim mid-run → probe (the
	// fleet routes around it) → restore → probe (it rejoins) → roll it onto
	// the new generation with peer warming.
	conduct := func() error {
		step := 18 * time.Millisecond
		probe := func() { router.ProbeOnce(context.Background()) }
		time.Sleep(step)
		probe()
		outages[victim].Kill()
		time.Sleep(2 * step)
		probe()
		time.Sleep(2 * step)
		outages[victim].Restore()
		probe()
		if got := router.health.state(replicaName(victim)); got != StateUp {
			return fmt.Errorf("restored victim %d still %q after probe", victim, got)
		}
		body, _ := json.Marshal(map[string]string{"replica": replicaName(victim)})
		resp, err := client.Post(rts.URL+"/v1/reload", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("router reload: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("router reload: status %d", resp.StatusCode)
		}
		return nil
	}
	if err := conduct(); err != nil {
		t.Error(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Generation map: every replica starts at generation 1 on libA; the
	// victim's single reload moves it to generation 2 on libB. The router's
	// local fallback engine also serves generation 1 of libA.
	libsByGen := map[uint64]*core.Library{1: libA, 2: libB}

	var total, degradedN, fallbackN int
	for g := range outcomes {
		for _, o := range outcomes[g] {
			total++
			if o.status != http.StatusOK {
				t.Fatalf("priceable shape answered %d — the no-5xx (and no-shed) contract is broken", o.status)
			}
			for _, d := range o.results {
				lib, ok := libsByGen[d.Generation]
				if !ok {
					t.Fatalf("response from unknown generation %d", d.Generation)
				}
				if d.Index < 0 || d.Index >= len(lib.Configs) || d.Config != lib.Configs[d.Index].String() {
					t.Fatalf("gen %d: config %q / index %d inconsistent with its library", d.Generation, d.Config, d.Index)
				}
				var sh gemm.Shape
				if _, err := fmt.Sscanf(d.Shape, "%dx%dx%d", &sh.M, &sh.K, &sh.N); err != nil {
					t.Fatalf("unparseable shape %q", d.Shape)
				}
				if !d.Degraded {
					if want := lib.ChooseIndex(sh); d.Index != want {
						t.Fatalf("gen %d shape %s: served index %d, selector says %d", d.Generation, d.Shape, d.Index, want)
					}
					continue
				}
				degradedN++
				if d.DegradedReason == "" {
					t.Fatalf("degraded decision with no reason: %+v", d)
				}
				if d.Cached {
					t.Fatalf("cached degraded decision served: %+v", d)
				}
				if d.DegradedReason == "replica_down" {
					fallbackN++
				}
			}
		}
	}
	if total != goroutines*perG {
		t.Fatalf("%d outcomes for %d requests", total, goroutines*perG)
	}

	// The outage must actually have fired.
	if outages[victim].Kills() != 1 {
		t.Errorf("victim kills %d, want 1", outages[victim].Kills())
	}
	if outages[victim].Severed() == 0 && router.metrics.repErrors.Load() == 0 {
		t.Error("kill window severed nothing and the router saw no replica errors — outage never bit")
	}

	// Re-convergence: a probe round returns the whole fleet to up, and the
	// HTTP view agrees.
	view := router.ProbeOnce(context.Background())
	for _, e := range view.Replicas {
		if e.State != StateUp {
			t.Errorf("replica %s state %q after recovery probe, want up", e.Name, e.State)
		}
	}
	resp, err := client.Get(rts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var wireView View
	if err := json.NewDecoder(resp.Body).Decode(&wireView); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, e := range wireView.Replicas {
		if e.State != StateUp {
			t.Errorf("/v1/cluster reports %s %q after recovery", e.Name, e.State)
		}
	}
	if gen := wireView.Replicas[victim].Generations[model.Dev.Name]; gen != 2 {
		t.Errorf("victim generation %d in the recovered view, want 2 (post-reload)", gen)
	}

	// Cache-coherence audit: with the edge cache live through kills, reloads
	// and gossip, every surviving entry must be stamped with its owning
	// replica's CURRENT generation (per the recovered view), agree with its
	// own rendered body, and match the register a get() would check — i.e. no
	// request from here on could ever be served a stale or degraded body.
	finalGens := make([]uint64, replicaCount)
	for i, e := range view.Replicas {
		finalGens[i] = e.Generations[model.Dev.Name]
	}
	cacheEntries := 0
	router.edge.forEach(func(dev string, e edgeEntry) {
		cacheEntries++
		gen, degraded, ok := serve.ScanDecisionMeta(e.body)
		if !ok || degraded || gen != e.gen {
			t.Errorf("edge entry %s/%v: body scan (gen=%d degraded=%v ok=%v) disagrees with stamp gen %d", dev, e.shape, gen, degraded, ok, e.gen)
		}
		if e.gen != finalGens[e.rep] {
			t.Errorf("edge entry %s/%v owned by replica %d carries gen %d, owner is at gen %d", dev, e.shape, e.rep, e.gen, finalGens[e.rep])
		}
		if reg := router.edge.reg(dev, e.rep); e.gen != reg {
			t.Errorf("edge entry %s/%v: stamp gen %d vs register %d — a hit would serve a stale body", dev, e.shape, e.gen, reg)
		}
	})

	// Budgets conserved on every replica and the local engine once traffic
	// quiesces (severed/cancelled requests may still be unwinding).
	deadline := time.Now().Add(2 * time.Second)
	for i, srv := range append(append([]*serve.Server{}, srvs...), local) {
		for !srv.BudgetsQuiesced() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if !srv.BudgetsQuiesced() {
			t.Errorf("server %d: budget tokens or inflight gauge leaked", i)
		}
	}

	st := inj.Stats()
	t.Logf("seed %d: %d requests (%d degraded, %d router fallbacks); victim %d severed %d conns; injected %d spikes %d errors %d cancels; router: %d retries %d hedges %d hedge-wins %d replica-errors; edge: %d entries %d hits %d invalidations %d coalesced",
		seed, total, degradedN, fallbackN, victim, outages[victim].Severed(),
		st.Spikes, st.Errors, st.Cancels,
		router.metrics.retries.Load(), router.metrics.hedges.Load(),
		router.metrics.hedgeWins.Load(), router.metrics.repErrors.Load(),
		cacheEntries, router.metrics.edgeHits.Load(),
		router.metrics.edgeInvalidations.Load(), router.metrics.coalesced.Load())
}
