package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// Gossip merge is last-observation-wins per replica: higher Seq adopts, equal
// or lower keeps the local entry.
func TestHealthMergeSeqWins(t *testing.T) {
	cases := []struct {
		name      string
		localSeq  uint64
		remoteSeq uint64
		wantState string
	}{
		{name: "stale remote ignored", localSeq: 5, remoteSeq: 3, wantState: StateUp},
		{name: "equal seq keeps local", localSeq: 5, remoteSeq: 5, wantState: StateUp},
		{name: "fresher remote adopted", localSeq: 5, remoteSeq: 7, wantState: StateDown},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl := newHealthTable([]string{"replica-a", "replica-b"})
			for i := uint64(0); i < tc.localSeq; i++ {
				tbl.observe("replica-a", StateUp, nil, "")
			}
			adopted := tbl.merge(View{Replicas: []ReplicaHealth{
				{Name: "replica-a", State: StateDown, Seq: tc.remoteSeq, Err: "peer saw it die"},
				{Name: "replica-zz", State: StateDown, Seq: 99}, // unknown: ignored
			}})
			if got := tbl.state("replica-a"); got != tc.wantState {
				t.Errorf("state %q, want %q (adopted=%d)", got, tc.wantState, adopted)
			}
			wantAdopted := 0
			if tc.remoteSeq > tc.localSeq {
				wantAdopted = 1
			}
			if adopted != wantAdopted {
				t.Errorf("adopted %d entries, want %d", adopted, wantAdopted)
			}
		})
	}
}

// Two routers over the same fleet converge through POST /v1/cluster: A's
// fresher down observation reaches B and B's view flips.
func TestClusterGossipConverges(t *testing.T) {
	f := newTestFleet(t, 2, Options{Name: "router-a", HedgeDelay: -1}, serveOptionsForTests(), nil)

	// Second router over the same replicas.
	reps := make([]*Replica, len(f.reps))
	for i, ts := range f.reps {
		reps[i] = NewReplica(replicaName(i), ts.URL, nil)
	}
	b, err := New(Options{Name: "router-b", Replicas: reps, Local: f.local, HedgeDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	f.router.MarkDown("replica-a")
	view := f.router.View()
	if view.Router != "router-a" {
		t.Fatalf("view attributed to %q", view.Router)
	}

	// Deliver A's view to B over the wire.
	bts := newRouterServer(t, b)
	body, _ := json.Marshal(view)
	resp, err := http.Post(bts.URL+"/v1/cluster", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gossip post: status %d", resp.StatusCode)
	}
	if got := b.health.state("replica-a"); got != StateDown {
		t.Errorf("router-b state for replica-a is %q after gossip, want %q", got, StateDown)
	}
	if got := b.health.state("replica-b"); got != StateUp {
		t.Errorf("router-b state for replica-b flipped to %q", got)
	}

	// GET /v1/cluster serves the merged view.
	resp, err = http.Get(bts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got View
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Replicas) != 2 || got.Replicas[0].Name != "replica-a" || got.Replicas[0].State != StateDown {
		t.Errorf("merged view %+v", got)
	}
}

// ProbeOnce recovers a wrongly-down replica (it answers healthz) and demotes
// a dead one, folding per-device generations into the view.
func TestProbeOnceReconverges(t *testing.T) {
	f := newTestFleet(t, 2, Options{HedgeDelay: -1}, serveOptionsForTests(), nil)

	// Falsely down: a probe round brings it back.
	f.router.MarkDown("replica-a")
	view := f.router.ProbeOnce(context.Background())
	for _, e := range view.Replicas {
		if e.State != StateUp {
			t.Errorf("replica %s state %q after probe, want up", e.Name, e.State)
		}
		if e.Generations["amd-r9-nano"] == 0 {
			t.Errorf("replica %s probe carried no generation: %+v", e.Name, e)
		}
	}

	// Actually dead: the probe demotes it and records the error.
	f.reps[1].Close()
	view = f.router.ProbeOnce(context.Background())
	if got := view.Replicas[1].State; got != StateDown {
		t.Errorf("dead replica state %q after probe, want down", got)
	}
	if view.Replicas[1].Err == "" {
		t.Error("dead replica has no recorded probe error")
	}
	if got := view.Replicas[0].State; got != StateUp {
		t.Errorf("live replica state %q after probe, want up", got)
	}
}

// newRouterServer serves a second router over httptest with cleanup.
func newRouterServer(t *testing.T, r *Router) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)
	return ts
}
