package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kernelselect/internal/gemm"
	"kernelselect/internal/serve"
)

// herdSelect fires n concurrent selects for one shape through the router and
// collects (status, decision) per request; goroutine-safe (no t.Fatal inside).
func herdSelect(t *testing.T, url string, shape gemm.Shape, n int) ([]int, []serve.Decision) {
	t.Helper()
	statuses := make([]int, n)
	decisions := make([]serve.Decision, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]int{"m": shape.M, "k": shape.K, "n": shape.N})
			resp, err := http.Post(url+"/v1/select", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				errs[i] = json.NewDecoder(resp.Body).Decode(&decisions[i])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("herd request %d: %v", i, err)
		}
	}
	return statuses, decisions
}

// selectGate blocks a replica's first /v1/select until released, so a test
// can hold the solo dispatch in flight while a herd lines up behind it.
type selectGate struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
	selects atomic.Int32
	batches atomic.Int32
}

func newSelectGate() *selectGate {
	return &selectGate{started: make(chan struct{}), release: make(chan struct{})}
}

func (g *selectGate) wrap(idx int) func(int, http.Handler) http.Handler {
	return func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if i == idx {
				switch r.URL.Path {
				case "/v1/select":
					g.selects.Add(1)
					g.once.Do(func() { close(g.started) })
					<-g.release
				case "/v1/select/batch":
					g.batches.Add(1)
				}
			}
			h.ServeHTTP(w, r)
		})
	}
}

// A herd of identical-shape misses arriving while the replica already has a
// router call in flight coalesces: one open window, one upstream batch call,
// single-flight joins counted, every waiter handed the same full-quality body.
func TestBatcherCoalescesHerd(t *testing.T) {
	gate := newSelectGate()
	f := newTestFleet(t, 1, Options{HedgeDelay: -1, BatchWindow: 150 * time.Millisecond},
		serveOptionsForTests(), gate.wrap(0))
	shape := fleetShapes[3]

	// The solo dispatch: inflight goes to 1 and its upstream select parks on
	// the gate.
	soloStatus := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(map[string]int{"m": shape.M, "k": shape.K, "n": shape.N})
		resp, err := http.Post(f.rts.URL+"/v1/select", "application/json", bytes.NewReader(body))
		if err != nil {
			soloStatus <- -1
			return
		}
		resp.Body.Close()
		soloStatus <- resp.StatusCode
	}()
	<-gate.started

	const herd = 7
	statuses, decisions := herdSelect(t, f.rts.URL, shape, herd)
	for i := 0; i < herd; i++ {
		if statuses[i] != http.StatusOK || decisions[i].Degraded {
			t.Fatalf("herd request %d: status %d decision %+v", i, statuses[i], decisions[i])
		}
		if decisions[i].Index != decisions[0].Index || decisions[i].Config != decisions[0].Config {
			t.Fatalf("herd request %d decision %+v differs from %+v", i, decisions[i], decisions[0])
		}
	}
	close(gate.release)
	if status := <-soloStatus; status != http.StatusOK {
		t.Fatalf("solo request: status %d", status)
	}

	if got := gate.selects.Load(); got != 1 {
		t.Errorf("%d upstream selects, want 1 (the solo dispatch)", got)
	}
	if got := gate.batches.Load(); got != 1 {
		t.Errorf("%d upstream batch calls for the herd, want 1", got)
	}
	if got := f.router.metrics.coalesced.Load(); got != herd-1 {
		t.Errorf("coalesced %d, want %d (every herd member after the first joins the open call)", got, herd-1)
	}
}

// An isolated miss never waits out the window: with nothing in flight it
// dispatches solo through the retry/hedge ladder, so low-concurrency p50 is
// untouched by enabling the batcher.
func TestBatcherSoloBypassesWindow(t *testing.T) {
	gate := newSelectGate()
	close(gate.release) // gate open: count upstream calls, never block
	f := newTestFleet(t, 1, Options{HedgeDelay: -1, BatchWindow: 2 * time.Second},
		serveOptionsForTests(), gate.wrap(0))

	start := time.Now()
	status, d := routerSelect(t, f.rts.URL, fleetShapes[0])
	elapsed := time.Since(start)
	if status != http.StatusOK || d.Degraded {
		t.Fatalf("solo request: status %d decision %+v", status, d)
	}
	if elapsed >= f.router.opts.BatchWindow {
		t.Errorf("solo request took %v — it waited out the %v batch window", elapsed, f.router.opts.BatchWindow)
	}
	if got := gate.batches.Load(); got != 0 {
		t.Errorf("%d upstream batch calls for an isolated miss, want 0", got)
	}
	if got := f.router.metrics.batchSizes.count.Load(); got != 1 {
		t.Errorf("batch-size histogram count %d, want 1 (the solo dispatch observes size 1)", got)
	}
}

// A batch flush whose primary answers 5xx fails over along the candidate
// order like a single request would: the waiters get full-quality answers
// from the successor, and the saturated primary earns backoff, not a
// mark-down.
func TestBatchFlushFailsOver(t *testing.T) {
	gate := newSelectGate()
	var failBatch atomic.Int32
	failBatch.Store(-1)
	wrap := func(i int, h http.Handler) http.Handler {
		inner := gate.wrap(0)(i, h)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if int32(i) == failBatch.Load() && r.URL.Path == "/v1/select/batch" {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
	f := newTestFleet(t, 2, Options{HedgeDelay: -1, BatchWindow: 150 * time.Millisecond},
		serveOptionsForTests(), wrap)

	shape := shapeWithPrimary(t, f.router, "", 0)
	failBatch.Store(0)

	soloDone := make(chan struct{})
	go func() {
		defer close(soloDone)
		body, _ := json.Marshal(map[string]int{"m": shape.M, "k": shape.K, "n": shape.N})
		if resp, err := http.Post(f.rts.URL+"/v1/select", "application/json", bytes.NewReader(body)); err == nil {
			resp.Body.Close()
		}
	}()
	<-gate.started

	const herd = 4
	statuses, decisions := herdSelect(t, f.rts.URL, shape, herd)
	close(gate.release)
	<-soloDone
	for i := 0; i < herd; i++ {
		if statuses[i] != http.StatusOK || decisions[i].Degraded {
			t.Fatalf("herd request %d: status %d decision %+v (failover should stay full quality)", i, statuses[i], decisions[i])
		}
	}
	if wins := f.router.metrics.wins[1].Load(); wins == 0 {
		t.Error("successor replica won nothing — the flush did not fail over")
	}
	if errs := f.router.metrics.repErrors.Load(); errs == 0 {
		t.Error("the failed batch flush was not counted as a replica error")
	}
	if state := f.router.health.state(replicaName(0)); state != StateUp {
		t.Errorf("primary marked %q after a saturation 503, want up (backoff, not death)", state)
	}
	if f.router.backoffUntil[0].Load() == 0 {
		t.Error("saturated primary earned no backoff")
	}
}
