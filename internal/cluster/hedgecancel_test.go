package cluster

import (
	"bytes"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// When the hedge wins, the losing primary's attempt is cancelled through its
// own context — the router does not let an abandoned arm keep burning replica
// budget — and a cancelled arm is routing disinterest, not replica sickness,
// so the slow primary stays up.
func TestHedgeWinnerCancelsLoser(t *testing.T) {
	var slowIdx atomic.Int32
	slowIdx.Store(-1)
	cancelled := make(chan struct{}, 4)
	wrap := func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if int32(i) == slowIdx.Load() && r.URL.Path == "/v1/select" {
				// Drain the body first: the server only watches for client
				// disconnect (and cancels r.Context) once the request body is
				// consumed.
				body, _ := io.ReadAll(r.Body)
				r.Body = io.NopCloser(bytes.NewReader(body))
				select {
				case <-r.Context().Done():
					cancelled <- struct{}{}
					return
				case <-time.After(5 * time.Second):
					// Never cancelled: fall through and serve; the main
					// goroutine's wait on the channel fails the test.
				}
			}
			h.ServeHTTP(w, r)
		})
	}
	f := newTestFleet(t, 2, Options{HedgeDelay: 5 * time.Millisecond, Retries: 2},
		serveOptionsForTests(), wrap)
	shape := shapeWithPrimary(t, f.router, "", 0)
	slowIdx.Store(0)

	status, d := routerSelect(t, f.rts.URL, shape)
	if status != http.StatusOK || d.Degraded {
		t.Fatalf("hedged request: status %d decision %+v", status, d)
	}
	if wins := f.router.metrics.hedgeWins.Load(); wins != 1 {
		t.Fatalf("hedge wins %d, want 1", wins)
	}
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("slow primary never observed its context cancelled — the losing arm was not abandoned")
	}
	if state := f.router.health.state(replicaName(0)); state != StateUp {
		t.Errorf("slow primary marked %q after its arm was cancelled, want up", state)
	}
	if errs := f.router.metrics.repErrors.Load(); errs != 0 {
		t.Errorf("%d replica errors recorded for a cancelled hedge loser, want 0", errs)
	}
}
