package cluster

import (
	"container/list"
	"sync"
	"sync/atomic"

	"kernelselect/internal/gemm"
	"kernelselect/internal/xrand"
)

// The edge cache is the router's first layer: a sharded LRU over pre-rendered
// decision bodies keyed on (device, m, k, n), stamped with the generation of
// the replica that produced each body. The replica tier already proved the
// paper's premise — a decision for a (device, shape) is pure until the
// artifact changes — so the router can answer repeats without a network hop,
// provided coherence is exact: an entry is served only while its owning
// replica's generation register still matches its stamp, registers advance
// from the gossiped health view (probes, merges, orchestrated reloads) and
// from newer bodies flowing through, and degraded answers are never cached at
// all (mirroring the replica-tier rule — a degraded body reflects transient
// pressure, not the artifact).

// edgeEntry is one cached decision: the immutable pre-rendered response body
// (newline-terminated, exactly what the replica served), the replica index
// that produced it, and the generation it was produced under.
type edgeEntry struct {
	shape gemm.Shape
	rep   int
	gen   uint64
	body  []byte
}

// edgeShard is one lock domain of a device channel's LRU.
type edgeShard struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently served
	items map[gemm.Shape]*list.Element
}

// deviceEdge holds one request-device channel. regs[rep] is the newest
// generation the router has learned for that replica on this channel; an
// entry whose stamp differs from its owner's register is stale and is evicted
// on sight.
type deviceEdge struct {
	device string
	regs   []atomic.Uint64
	shards []edgeShard
	mask   uint64
}

const edgeShardCount = 16 // power of two; lock striping for the per-shard LRUs

// edgeCache is the router-wide cache: one deviceEdge per request-device
// string (the raw "device" field of the request, "" for the default route).
type edgeCache struct {
	mu       sync.RWMutex
	byDevice map[string]*deviceEdge
	replicas int
	capacity int // entries per device channel

	metrics *routerMetrics
}

func newEdgeCache(capacity, replicas int, metrics *routerMetrics) *edgeCache {
	return &edgeCache{
		byDevice: make(map[string]*deviceEdge, 4),
		replicas: replicas,
		capacity: capacity,
		metrics:  metrics,
	}
}

func (c *edgeCache) newDeviceEdge(device string) *deviceEdge {
	de := &deviceEdge{
		device: device,
		regs:   make([]atomic.Uint64, c.replicas),
		shards: make([]edgeShard, edgeShardCount),
		mask:   edgeShardCount - 1,
	}
	per := (c.capacity + edgeShardCount - 1) / edgeShardCount
	if per < 1 {
		per = 1
	}
	for i := range de.shards {
		de.shards[i].cap = per
		de.shards[i].lru = list.New()
		de.shards[i].items = make(map[gemm.Shape]*list.Element, per)
	}
	return de
}

func shapeShard(de *deviceEdge, shape gemm.Shape) *edgeShard {
	h := xrand.Hash64(uint64(shape.M), uint64(shape.K), uint64(shape.N))
	return &de.shards[h&de.mask]
}

// get returns the pre-rendered body for a live entry, or nil. The hit path
// allocates nothing: device is matched with a direct []byte map index, the
// generation check is one atomic load, and the returned body is the immutable
// cached slice. A stale entry (owner's register moved on) is evicted here and
// reported as a miss — a stale-generation hit is never served.
func (c *edgeCache) get(device []byte, shape gemm.Shape) []byte {
	c.mu.RLock()
	de := c.byDevice[string(device)]
	c.mu.RUnlock()
	if de == nil {
		c.metrics.edgeMisses.Add(1)
		return nil
	}
	sh := shapeShard(de, shape)
	sh.mu.Lock()
	el, ok := sh.items[shape]
	if !ok {
		sh.mu.Unlock()
		c.metrics.edgeMisses.Add(1)
		return nil
	}
	e := el.Value.(*edgeEntry)
	if de.regs[e.rep].Load() != e.gen {
		sh.lru.Remove(el)
		delete(sh.items, shape)
		sh.mu.Unlock()
		c.metrics.edgeMisses.Add(1)
		c.metrics.edgeInvalidations.Add(1)
		return nil
	}
	sh.lru.MoveToFront(el)
	sh.mu.Unlock()
	c.metrics.edgeHits.Add(1)
	return e.body
}

// deviceFor returns (creating on first use) the channel for one
// request-device string.
func (c *edgeCache) deviceFor(device string) *deviceEdge {
	c.mu.RLock()
	de := c.byDevice[device]
	c.mu.RUnlock()
	if de != nil {
		return de
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if de = c.byDevice[device]; de == nil {
		de = c.newDeviceEdge(device)
		c.byDevice[device] = de
	}
	return de
}

// advanceReg moves a replica's generation register forward to gen, evicting
// that replica's now-stale entries on a bump. Returns false when gen is older
// than the register — the caller's body is a stale racer and must not be
// cached.
func (c *edgeCache) advanceReg(de *deviceEdge, rep int, gen uint64) bool {
	for {
		cur := de.regs[rep].Load()
		if gen < cur {
			return false
		}
		if gen == cur {
			return true
		}
		if de.regs[rep].CompareAndSwap(cur, gen) {
			if cur != 0 {
				c.evictStale(de, rep)
			}
			return true
		}
	}
}

// put caches one non-degraded body stamped (rep, gen). body must be immutable
// and newline-terminated. gen 0 (no generation stamp) is never cached.
func (c *edgeCache) put(device string, shape gemm.Shape, rep int, gen uint64, body []byte) {
	if gen == 0 || rep < 0 || rep >= c.replicas {
		return
	}
	de := c.deviceFor(device)
	if !c.advanceReg(de, rep, gen) {
		return
	}
	sh := shapeShard(de, shape)
	sh.mu.Lock()
	if el, ok := sh.items[shape]; ok {
		e := el.Value.(*edgeEntry)
		e.rep, e.gen, e.body = rep, gen, body
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	if sh.lru.Len() >= sh.cap {
		if back := sh.lru.Back(); back != nil {
			sh.lru.Remove(back)
			delete(sh.items, back.Value.(*edgeEntry).shape)
		}
	}
	sh.items[shape] = sh.lru.PushFront(&edgeEntry{shape: shape, rep: rep, gen: gen, body: body})
	sh.mu.Unlock()
}

// evictStale removes every entry owned by rep whose stamp no longer matches
// the (already-advanced) register.
func (c *edgeCache) evictStale(de *deviceEdge, rep int) {
	cur := de.regs[rep].Load()
	for si := range de.shards {
		sh := &de.shards[si]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*edgeEntry)
			if e.rep == rep && e.gen != cur {
				sh.lru.Remove(el)
				delete(sh.items, e.shape)
				c.metrics.edgeInvalidations.Add(1)
			}
			el = next
		}
		sh.mu.Unlock()
	}
}

// noteGens folds one health observation's per-backend generations into every
// device channel: a channel whose request-device names a backend takes that
// backend's generation exactly; the default channel ("") and channels the map
// does not name conservatively take the highest backend generation — server
// generation counters only advance, so the worst case is evicting a few
// still-valid entries, never serving a stale one.
func (c *edgeCache) noteGens(rep int, gens map[string]uint64) {
	if len(gens) == 0 || rep < 0 || rep >= c.replicas {
		return
	}
	var maxGen uint64
	for _, g := range gens {
		if g > maxGen {
			maxGen = g
		}
	}
	c.mu.RLock()
	des := make([]*deviceEdge, 0, len(c.byDevice))
	for _, de := range c.byDevice {
		des = append(des, de)
	}
	c.mu.RUnlock()
	for _, de := range des {
		g, ok := gens[de.device]
		if !ok {
			g = maxGen
		}
		c.advanceReg(de, rep, g)
	}
}

// reg reads a replica's current generation register on one channel (0 when
// the channel does not exist yet). Test and audit plumbing.
func (c *edgeCache) reg(device string, rep int) uint64 {
	c.mu.RLock()
	de := c.byDevice[device]
	c.mu.RUnlock()
	if de == nil || rep < 0 || rep >= c.replicas {
		return 0
	}
	return de.regs[rep].Load()
}

// forEach visits every live entry (audit plumbing: the chaos suite walks the
// cache after a run to assert coherence).
func (c *edgeCache) forEach(fn func(device string, e edgeEntry)) {
	c.mu.RLock()
	type chann struct {
		device string
		de     *deviceEdge
	}
	chans := make([]chann, 0, len(c.byDevice))
	for d, de := range c.byDevice {
		chans = append(chans, chann{d, de})
	}
	c.mu.RUnlock()
	for _, ch := range chans {
		for si := range ch.de.shards {
			sh := &ch.de.shards[si]
			sh.mu.Lock()
			for el := sh.lru.Front(); el != nil; el = el.Next() {
				fn(ch.device, *el.Value.(*edgeEntry))
			}
			sh.mu.Unlock()
		}
	}
}

// len counts live entries across every channel (test plumbing).
func (c *edgeCache) len() int {
	n := 0
	c.forEach(func(string, edgeEntry) { n++ })
	return n
}
