package cluster

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"kernelselect/internal/serve"
)

// The router failover table: who answers when replicas die, and how it is
// accounted. Each case marks a subset of a 3-replica fleet down, sends the
// same shard's request repeatedly, and checks (a) the answer re-hashes
// deterministically to the expected survivor, (b) wins are counted exactly
// once per request, (c) the local fallback is flagged degraded with reason
// replica_down when every candidate is dark.
func TestRouterFailoverTable(t *testing.T) {
	cases := []struct {
		name string
		// down replica positions, in this shard's candidate order (0 =
		// primary, 1 = first successor, ...).
		down []int
		// wantWinner is the candidate-order position expected to serve; -1
		// means the router-local fallback answers.
		wantWinner   int
		wantDegraded bool
	}{
		{name: "all up: primary serves", down: nil, wantWinner: 0},
		{name: "primary down: first successor", down: []int{0}, wantWinner: 1},
		{name: "primary+successor down: second successor", down: []int{0, 1}, wantWinner: 2},
		{name: "all down: degraded local fallback", down: []int{0, 1, 2}, wantWinner: -1, wantDegraded: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newTestFleet(t, 3, Options{HedgeDelay: -1}, serveOptionsForTests(), nil)
			shape := shapeWithPrimary(t, f.router, "", 0)
			order := f.router.ring.candidates("", shape)
			for _, pos := range tc.down {
				f.router.MarkDown(replicaName(order[pos]))
			}

			const requests = 5
			for i := 0; i < requests; i++ {
				status, d := routerSelect(t, f.rts.URL, shape)
				if status != http.StatusOK {
					t.Fatalf("request %d: status %d", i, status)
				}
				if d.Degraded != tc.wantDegraded {
					t.Fatalf("request %d: degraded=%v, want %v (%+v)", i, d.Degraded, tc.wantDegraded, d)
				}
				if tc.wantDegraded && d.DegradedReason != "replica_down" {
					t.Fatalf("request %d: degraded reason %q, want replica_down", i, d.DegradedReason)
				}
				if tc.wantDegraded && d.Cached {
					t.Fatalf("request %d: degraded fallback marked cached", i)
				}
			}

			// Accounting: every request counted once, on exactly the winner.
			var winSum uint64
			for i := range f.router.metrics.wins {
				winSum += f.router.metrics.wins[i].Load()
			}
			if tc.wantWinner < 0 {
				if winSum != 0 {
					t.Errorf("replica wins %d with the fleet dark, want 0", winSum)
				}
				if got := f.router.metrics.fallbacks.Load(); got != requests {
					t.Errorf("fallbacks %d, want %d", got, requests)
				}
			} else {
				winner := order[tc.wantWinner]
				if got := f.router.metrics.wins[winner].Load(); got != requests {
					t.Errorf("winner %s wins %d, want %d", replicaName(winner), got, requests)
				}
				if winSum != requests {
					t.Errorf("total wins %d, want %d (each request counted once)", winSum, requests)
				}
			}
		})
	}
}

// serveOptionsForTests keeps replica behavior deterministic for failover
// accounting: no shedding, ample budget.
func serveOptionsForTests() serve.Options {
	return serve.Options{MaxInFlight: 64}
}

// A slow primary loses to the hedge: the hedged attempt launches after
// HedgeDelay, wins, and is counted exactly once — one win total, one hedge,
// one hedge win, one 200.
func TestHedgedWinnerCountedOnce(t *testing.T) {
	const primaryDelay = 400 * time.Millisecond
	var slowIdx = -1
	f := newTestFleet(t, 2, Options{HedgeDelay: 10 * time.Millisecond, Retries: 2},
		serveOptionsForTests(),
		func(i int, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if i == slowIdx && strings.HasPrefix(r.URL.Path, "/v1/select") {
					time.Sleep(primaryDelay)
				}
				h.ServeHTTP(w, r)
			})
		})
	shape := shapeWithPrimary(t, f.router, "", 0)
	order := f.router.ring.candidates("", shape)
	slowIdx = order[0]

	start := time.Now()
	status, d := routerSelect(t, f.rts.URL, shape)
	if status != http.StatusOK || d.Degraded {
		t.Fatalf("hedged request: status %d degraded=%v", status, d.Degraded)
	}
	if elapsed := time.Since(start); elapsed >= primaryDelay {
		t.Fatalf("request took %v — hedge did not win over the %v primary delay", elapsed, primaryDelay)
	}

	m := f.router.metrics
	if got := m.hedges.Load(); got != 1 {
		t.Errorf("hedges %d, want 1", got)
	}
	if got := m.hedgeWins.Load(); got != 1 {
		t.Errorf("hedge wins %d, want 1", got)
	}
	if got := m.wins[order[1]].Load(); got != 1 {
		t.Errorf("hedge target wins %d, want 1", got)
	}
	var winSum uint64
	for i := range m.wins {
		winSum += m.wins[i].Load()
	}
	if winSum != 1 {
		t.Errorf("total wins %d, want exactly 1 — hedged winners must be counted once", winSum)
	}
}

// A replica whose listener is gone (connection refused) is marked down by the
// failed attempt itself, and the retry serves the request from the successor
// — the client sees one ordinary 200.
func TestDeadReplicaMarkedDownAndRetried(t *testing.T) {
	f := newTestFleet(t, 2, Options{HedgeDelay: -1, Retries: 2}, serveOptionsForTests(), nil)
	shape := shapeWithPrimary(t, f.router, "", 0)
	order := f.router.ring.candidates("", shape)

	// Sever the primary's listener.
	f.reps[order[0]].Close()

	status, d := routerSelect(t, f.rts.URL, shape)
	if status != http.StatusOK || d.Degraded {
		t.Fatalf("failover request: status %d degraded=%v (%+v)", status, d.Degraded, d)
	}
	if got := f.router.health.state(replicaName(order[0])); got != StateDown {
		t.Errorf("dead primary state %q, want %q", got, StateDown)
	}
	if got := f.router.metrics.wins[order[1]].Load(); got != 1 {
		t.Errorf("successor wins %d, want 1", got)
	}

	// Subsequent requests skip the dead primary outright: no more transport
	// errors accrue.
	errsBefore := f.router.metrics.repErrors.Load()
	for i := 0; i < 3; i++ {
		if status, d := routerSelect(t, f.rts.URL, shape); status != http.StatusOK || d.Degraded {
			t.Fatalf("re-hashed request %d: status %d degraded=%v", i, status, d.Degraded)
		}
	}
	if got := f.router.metrics.repErrors.Load(); got != errsBefore {
		t.Errorf("re-hashed requests still hit the dead replica: errors %d → %d", errsBefore, got)
	}
}

// An unpriceable request (invalid shape) stays a client error even with the
// fleet dark — the no-5xx guarantee is scoped to priceable shapes.
func TestUnpriceableShapeStays400(t *testing.T) {
	f := newTestFleet(t, 2, Options{HedgeDelay: -1}, serveOptionsForTests(), nil)
	for i := range f.srvs {
		f.router.MarkDown(replicaName(i))
	}
	resp, err := http.Post(f.rts.URL+"/v1/select", "application/json",
		strings.NewReader(`{"m":-1,"k":0,"n":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid shape: status %d, want 400", resp.StatusCode)
	}
}
