package cluster

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kernelselect/internal/gemm"
	"kernelselect/internal/serve"
)

// The micro-batcher is the router's second layer: concurrent cache misses
// destined for the same replica coalesce into one upstream
// POST /v1/select/batch instead of N parallel /v1/select round trips, and
// identical shapes inside a window share a single upstream decision
// (single-flight). Batching is adaptive — the window only opens when the
// replica already has router traffic in flight, so an isolated request takes
// the ordinary retry/hedge ladder with zero added latency and p50 never
// regresses at low concurrency.

const (
	// maxCoalesce caps one upstream batch; a full group flushes immediately
	// instead of waiting out the window.
	maxCoalesce = 128
	// flushTimeout bounds an upstream batch call. Flushes run detached from
	// any single client context (many waiters share one flush), so the bound
	// is generous: it exists to reclaim the goroutine, not to pace clients.
	flushTimeout = 30 * time.Second
)

// shapeCall is one coalesced decision slot: every waiter for the same shape
// in the same pending group blocks on done and shares the rendered body.
type shapeCall struct {
	done chan struct{}
	body []byte // newline-terminated decision body; immutable once done closes
	ok   bool
}

// batchGroup is one pending flush: the distinct shapes bound for one replica
// on one device channel during the current window.
type batchGroup struct {
	device string
	shapes []gemm.Shape
	calls  map[gemm.Shape]*shapeCall
}

// repBatcher coalesces misses destined for one replica. inflight counts this
// replica's router-issued upstream calls (solo or batch); a miss arriving
// while it is zero dispatches solo, because there is nothing to share a round
// trip with and waiting out the window would only add latency.
type repBatcher struct {
	mu       sync.Mutex
	pending  map[string]*batchGroup // device channel -> open window
	inflight atomic.Int32
}

// routeCoalesced answers one miss through the adaptive batcher. ok=false
// means no upstream candidate answered (or the client context expired) and
// the caller should fall back locally.
func (r *Router) routeCoalesced(ctx context.Context, device string, shape gemm.Shape, alive []int) (int, []byte, bool) {
	b := &r.batchers[alive[0]]
	b.mu.Lock()
	g := b.pending[device]
	if g == nil && b.inflight.Load() == 0 {
		// Low concurrency: dispatch solo through the full retry/hedge ladder.
		b.inflight.Add(1)
		b.mu.Unlock()
		res, ok := r.tryReplicas(ctx, alive, device, shape)
		b.inflight.Add(-1)
		if !ok {
			return 0, nil, false
		}
		r.metrics.wins[res.idx].Add(1)
		if res.hedge {
			r.metrics.hedgeWins.Add(1)
		}
		r.metrics.batchSizes.observe(1)
		r.cacheFillBody(device, shape, res.idx, res.status, res.body)
		return res.status, res.body, true
	}
	if g == nil {
		g = &batchGroup{device: device, calls: make(map[gemm.Shape]*shapeCall, 8)}
		b.pending[device] = g
		grp := g
		time.AfterFunc(r.opts.BatchWindow, func() { r.flushWindow(b, device, grp) })
	}
	call := g.calls[shape]
	if call == nil {
		call = &shapeCall{done: make(chan struct{})}
		g.calls[shape] = call
		g.shapes = append(g.shapes, shape)
		if len(g.shapes) >= maxCoalesce {
			delete(b.pending, device)
			grp := g
			go r.flushBatch(b, grp)
		}
	} else {
		r.metrics.coalesced.Add(1)
	}
	b.mu.Unlock()

	select {
	case <-ctx.Done():
		// The flush keeps running for the other waiters; this client is gone.
		return 0, nil, false
	case <-call.done:
	}
	if !call.ok {
		return 0, nil, false
	}
	return http.StatusOK, call.body, true
}

// flushWindow fires when a group's window expires; a group already flushed on
// size is left alone.
func (r *Router) flushWindow(b *repBatcher, device string, g *batchGroup) {
	b.mu.Lock()
	if b.pending[device] != g {
		b.mu.Unlock()
		return
	}
	delete(b.pending, device)
	b.mu.Unlock()
	r.flushBatch(b, g)
}

// flushBatch prices one group with a single upstream batch call, walking the
// group's candidate order on failure exactly like a single request would, and
// distributes per-shape rendered bodies to every waiter. Total failure closes
// the calls unfilled; each waiter falls back locally on its own context.
func (r *Router) flushBatch(b *repBatcher, g *batchGroup) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	r.metrics.batchSizes.observe(len(g.shapes))

	ctx, cancel := context.WithTimeout(context.Background(), flushTimeout)
	defer cancel()
	alive := r.routable(r.ring.candidates(g.device, g.shapes[0]))
	tried := 0
	for _, idx := range alive {
		if tried > r.opts.Retries {
			break
		}
		tried++
		decs, err := r.replicas[idx].Batch(ctx, g.device, g.shapes)
		if err != nil {
			r.noteBatchError(ctx, idx, err)
			continue
		}
		for i, shape := range g.shapes {
			call := g.calls[shape]
			d := decs[i]
			body := serve.AppendDecisionJSON(make([]byte, 0, 256), &d)
			body = append(body, '\n')
			call.body, call.ok = body, true
			if !d.Degraded {
				r.cacheFillDecision(g.device, shape, idx, d.Generation, body)
			}
			close(call.done)
		}
		r.metrics.wins[idx].Add(1)
		return
	}
	for _, call := range g.calls {
		close(call.done)
	}
}

// noteBatchError classifies one failed upstream batch call: a non-200 status
// means the replica is alive but unwilling (saturation, draining) and earns
// backoff, while a transport error with a live context marks it down so its
// shards re-hash.
func (r *Router) noteBatchError(ctx context.Context, idx int, err error) {
	r.metrics.repErrors.Add(1)
	var se *statusError
	if errors.As(err, &se) {
		if se.status == http.StatusTooManyRequests || se.status >= 500 {
			r.setBackoff(idx, r.opts.RetryBackoff)
		}
		return
	}
	if ctx.Err() == nil {
		r.health.observe(r.replicas[idx].Name, StateDown, nil, err.Error())
	}
}
