package cluster

import (
	"testing"

	"kernelselect/internal/gemm"
)

var ringDevices = []string{"amd-r9-nano", "intel-gen9", "arm-mali"}

// The ring is a pure function of (replica count, vnodes): two instances agree
// on every candidate order, every order is a permutation of the replicas, and
// repeated queries never waver.
func TestRingDeterministicPermutation(t *testing.T) {
	const n = 5
	a, b := newRing(n, 0), newRing(n, 0)
	for _, dev := range ringDevices {
		for _, shape := range fleetShapes {
			ca := a.candidates(dev, shape)
			cb := b.candidates(dev, shape)
			if len(ca) != n {
				t.Fatalf("%s/%v: %d candidates, want %d", dev, shape, len(ca), n)
			}
			seen := make([]bool, n)
			for _, idx := range ca {
				if idx < 0 || idx >= n || seen[idx] {
					t.Fatalf("%s/%v: candidates %v not a permutation", dev, shape, ca)
				}
				seen[idx] = true
			}
			for i := range ca {
				if ca[i] != cb[i] {
					t.Fatalf("%s/%v: rings disagree: %v vs %v", dev, shape, ca, cb)
				}
			}
			again := a.candidates(dev, shape)
			for i := range ca {
				if ca[i] != again[i] {
					t.Fatalf("%s/%v: repeat query wavered: %v vs %v", dev, shape, ca, again)
				}
			}
		}
	}
}

// Shapes in the same log2 bucket share a shard: their candidate orders are
// identical, so one replica's cache serves the whole bucket.
func TestRingBucketStability(t *testing.T) {
	r := newRing(4, 0)
	pairs := [][2]gemm.Shape{
		// Same bits.Len per dimension → same bucket.
		{{M: 100, K: 200, N: 300}, {M: 120, K: 250, N: 310}},
		{{M: 65, K: 1025, N: 17}, {M: 127, K: 2047, N: 31}},
	}
	for _, p := range pairs {
		for _, dev := range ringDevices {
			ca, cb := r.candidates(dev, p[0]), r.candidates(dev, p[1])
			for i := range ca {
				if ca[i] != cb[i] {
					t.Errorf("%s: same-bucket shapes %v/%v routed differently: %v vs %v",
						dev, p[0], p[1], ca, cb)
					break
				}
			}
		}
	}
	// And the same shape on different devices may not all collapse onto one
	// shard: the device name is part of the key.
	counts := map[int]int{}
	for _, dev := range ringDevices {
		for _, s := range fleetShapes {
			counts[r.candidates(dev, s)[0]]++
		}
	}
	if len(counts) < 2 {
		t.Errorf("all (device, shape) keys landed on one shard: %v", counts)
	}
}

// Vnodes keep shard sizes reasonable: over a synthetic spread of buckets,
// every replica owns a non-trivial share of primaries.
func TestRingBalance(t *testing.T) {
	const n = 3
	r := newRing(n, 0)
	counts := make([]int, n)
	total := 0
	for m := 1; m <= 1<<14; m <<= 1 {
		for k := 1; k <= 1<<14; k <<= 2 {
			for nn := 1; nn <= 1<<12; nn <<= 2 {
				counts[r.candidates("amd-r9-nano", gemm.Shape{M: m, K: k, N: nn})[0]]++
				total++
			}
		}
	}
	for i, c := range counts {
		if c < total/(n*4) {
			t.Errorf("replica %d owns %d/%d primaries — ring badly unbalanced: %v", i, c, total, counts)
		}
	}
}

// Failover preserves relative order: dropping one replica from the candidate
// list leaves the others exactly in their original sequence, which is what
// makes "mark down → successor takes over, everyone else unmoved" hold.
func TestRingFailoverOrderStable(t *testing.T) {
	const n = 4
	r := newRing(n, 0)
	for _, shape := range fleetShapes {
		order := r.candidates("amd-r9-nano", shape)
		down := order[0]
		want := order[1:]
		got := make([]int, 0, n-1)
		for _, idx := range order {
			if idx != down {
				got = append(got, idx)
			}
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %v: filtered order %v, want %v", shape, got, want)
			}
		}
	}
}
