package cluster

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"kernelselect/internal/serve"
)

// reuseWriter is a ResponseWriter with no per-request allocations of its own,
// so AllocsPerRun isolates the router handler's allocations (mirrors serve's
// hot-path harness — the two packages pin the same guarantee on their own
// tiers).
type reuseWriter struct {
	h    http.Header
	code int
	buf  []byte
}

func newReuseWriter() *reuseWriter {
	return &reuseWriter{h: make(http.Header, 4), buf: make([]byte, 0, 4096)}
}

func (w *reuseWriter) Header() http.Header  { return w.h }
func (w *reuseWriter) WriteHeader(code int) { w.code = code }
func (w *reuseWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *reuseWriter) reset() {
	w.code = 0
	w.buf = w.buf[:0]
}

// routerRunner drives the router's /v1/select handler with a reusable request
// and writer — the proxy hot path minus the TCP socket.
type routerRunner struct {
	handler http.HandlerFunc
	w       *reuseWriter
	r       *http.Request
	body    *bytes.Reader
	payload []byte
}

func newRouterRunner(r *Router, payload []byte) *routerRunner {
	br := bytes.NewReader(payload)
	req := httptest.NewRequest(http.MethodPost, "/v1/select", nil)
	req.Body = io.NopCloser(br)
	req.ContentLength = int64(len(payload))
	return &routerRunner{
		handler: r.handleSelect,
		w:       newReuseWriter(),
		r:       req,
		body:    br,
		payload: payload,
	}
}

func (rr *routerRunner) run() {
	rr.body.Reset(rr.payload)
	rr.w.reset()
	rr.handler(rr.w, rr.r)
}

// hotPayload is a fleetShapes member in canonical wire form, so the fast
// scanner handles it and the edge cache key is exercised end to end.
var hotPayload = []byte(`{"m":784,"k":1152,"n":256}`)

// TestRouterCacheHitAllocations pins the tentpole guarantee at the router
// tier: once a (device, shape) is cached at the edge, a /v1/select repeat is
// answered without touching the heap — body read, fast parse, cache lookup,
// pre-rendered write, metrics, all allocation-free. A regression here is a
// performance bug even though no behaviour changes, so it fails the build.
func TestRouterCacheHitAllocations(t *testing.T) {
	f := newTestFleet(t, 1, Options{HedgeDelay: -1, EdgeCacheSize: 1024},
		serveOptionsForTests(), nil)
	rr := newRouterRunner(f.router, hotPayload)

	rr.run() // miss: routed upstream, fills the edge cache
	if rr.w.code != http.StatusOK {
		t.Fatalf("warm request: status %d, body %s", rr.w.code, rr.w.buf)
	}
	warmBody := append([]byte(nil), rr.w.buf...)
	rr.run()
	if rr.w.code != http.StatusOK || !bytes.Equal(rr.w.buf, warmBody) {
		t.Fatalf("second request not the cached body: status %d, %q vs %q", rr.w.code, rr.w.buf, warmBody)
	}
	if hits := f.router.metrics.edgeHits.Load(); hits == 0 {
		t.Fatal("second request did not count as an edge hit")
	}
	if allocs := testing.AllocsPerRun(500, rr.run); allocs != 0 {
		t.Errorf("cache-hit select allocates %.1f objects per request, want 0", allocs)
	}
}

func BenchmarkRouterCacheHit(b *testing.B) {
	f := newTestFleet(b, 1, Options{HedgeDelay: -1, EdgeCacheSize: 1024},
		serveOptionsForTests(), nil)
	rr := newRouterRunner(f.router, hotPayload)
	rr.run() // warm the edge cache
	if rr.w.code != http.StatusOK {
		b.Fatalf("warm request failed: %d", rr.w.code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr.run()
	}
}

// BenchmarkRouterCoalesce measures the micro-batcher's amplification under a
// same-shape herd with the edge cache off: every request is a miss, and the
// reported reqs/upstream ratio is how many client requests each upstream
// dispatch absorbed (1.0 would mean no coalescing at all).
func BenchmarkRouterCoalesce(b *testing.B) {
	f := newTestFleet(b, 3, Options{HedgeDelay: -1, BatchWindow: 200 * time.Microsecond},
		serve.Options{MaxInFlight: 256, WindowSize: 512}, nil)

	warm := newRouterRunner(f.router, hotPayload)
	warm.run()
	if warm.w.code != http.StatusOK {
		b.Fatalf("warm request failed: %d", warm.w.code)
	}
	before := f.router.metrics.batchSizes.count.Load()

	var total, failed atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rr := newRouterRunner(f.router, hotPayload)
		for pb.Next() {
			rr.run()
			total.Add(1)
			if rr.w.code != http.StatusOK {
				failed.Add(1)
			}
		}
	})
	b.StopTimer()
	if n := failed.Load(); n > 0 {
		b.Fatalf("%d of %d requests failed", n, total.Load())
	}
	if upstream := f.router.metrics.batchSizes.count.Load() - before; upstream > 0 {
		b.ReportMetric(float64(total.Load())/float64(upstream), "reqs/upstream")
	}
}
