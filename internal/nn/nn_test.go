package nn

import (
	"math"
	"testing"
	"testing/quick"

	"kernelselect/internal/gemm"
	"kernelselect/internal/sycl"
	"kernelselect/internal/workload"
	"kernelselect/internal/xrand"
)

func randomTensor(n, c, h, w int, seed uint64) *Tensor {
	r := xrand.New(seed)
	t := NewTensor(n, c, h, w)
	for i := range t.Data {
		t.Data[i] = 2*r.Float64() - 1
	}
	return t
}

func maxAbsDiff(a, b *Tensor) float64 {
	if !a.ShapeEq(b) {
		return math.Inf(1)
	}
	var m float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

func TestTensorBasics(t *testing.T) {
	tt := NewTensor(2, 3, 4, 5)
	if tt.Len() != 120 {
		t.Fatal("Len")
	}
	tt.Set(1, 2, 3, 4, 7)
	if tt.At(1, 2, 3, 4) != 7 {
		t.Fatal("At/Set")
	}
	if tt.AtPadded(1, 2, -1, 0) != 0 || tt.AtPadded(1, 2, 0, 5) != 0 {
		t.Fatal("AtPadded out of bounds should be 0")
	}
	c := tt.Clone()
	c.Set(0, 0, 0, 0, 9)
	if tt.At(0, 0, 0, 0) == 9 {
		t.Fatal("Clone aliases")
	}
	if tt.String() != "[2,3,4,5]" {
		t.Fatalf("String = %q", tt.String())
	}
}

func TestNewTensorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero dim accepted")
		}
	}()
	NewTensor(1, 0, 2, 2)
}

func conv3x3(inC, outC, size int) workload.Conv {
	return workload.Conv{Name: "t", InC: inC, OutC: outC, InH: size, InW: size,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
}

func TestIm2colMatchesDirect(t *testing.T) {
	geoms := []workload.Conv{
		conv3x3(3, 8, 9),
		{Name: "s2", InC: 4, OutC: 6, InH: 11, InW: 11, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{Name: "pw", InC: 5, OutC: 7, InH: 6, InW: 6, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
		{Name: "7x7", InC: 3, OutC: 4, InH: 15, InW: 15, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3},
		{Name: "rect", InC: 2, OutC: 3, InH: 8, InW: 12, KH: 3, KW: 5, StrideH: 1, StrideW: 2, PadH: 1, PadW: 2},
	}
	for _, g := range geoms {
		conv, err := NewConv2D(g)
		if err != nil {
			t.Fatal(err)
		}
		conv.InitRandom(3)
		in := randomTensor(2, g.InC, g.InH, g.InW, 5)
		want, err := conv.ForwardDirect(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := conv.Forward(ReferenceRunner{}, in)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, want); d > 1e-10 {
			t.Fatalf("%s: im2col vs direct diff %v", g.Name, d)
		}
	}
}

func TestIm2colShapeMatchesWorkload(t *testing.T) {
	g := conv3x3(4, 8, 10)
	conv, _ := NewConv2D(g)
	in := randomTensor(3, 4, 10, 10, 1)
	_, s := conv.Im2col(in)
	if s != g.Im2colShape(3) {
		t.Fatalf("im2col shape %v, workload table says %v", s, g.Im2colShape(3))
	}
}

func TestWinogradMatchesDirect(t *testing.T) {
	for _, size := range []int{4, 7, 10} { // even and odd outputs (edge tiles)
		g := conv3x3(3, 5, size)
		conv, err := NewConv2D(g)
		if err != nil {
			t.Fatal(err)
		}
		conv.InitRandom(7)
		in := randomTensor(2, 3, size, size, 9)
		want, _ := conv.ForwardDirect(in)
		got, err := conv.ForwardWinograd(ReferenceRunner{}, in)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("size %d: winograd vs direct diff %v", size, d)
		}
	}
}

func TestWinogradNoPadding(t *testing.T) {
	g := workload.Conv{Name: "np", InC: 2, OutC: 3, InH: 8, InW: 8,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1} // valid convolution, 6×6 out
	conv, _ := NewConv2D(g)
	conv.InitRandom(11)
	in := randomTensor(1, 2, 8, 8, 13)
	want, _ := conv.ForwardDirect(in)
	got, err := conv.ForwardWinograd(ReferenceRunner{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("diff %v", d)
	}
}

func TestWinogradRejectsNonEligible(t *testing.T) {
	g := workload.Conv{Name: "s2", InC: 2, OutC: 2, InH: 8, InW: 8,
		KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	conv, _ := NewConv2D(g)
	in := randomTensor(1, 2, 8, 8, 1)
	if _, err := conv.ForwardWinograd(ReferenceRunner{}, in); err == nil {
		t.Fatal("strided winograd accepted")
	}
}

// TestWinogradProperty fuzzes geometry and data.
func TestWinogradProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		size := 3 + r.Intn(10)
		g := conv3x3(1+r.Intn(4), 1+r.Intn(4), size)
		conv, err := NewConv2D(g)
		if err != nil {
			return false
		}
		conv.InitRandom(seed)
		in := randomTensor(1+r.Intn(2), g.InC, size, size, seed+1)
		want, _ := conv.ForwardDirect(in)
		got, err := conv.ForwardWinograd(ReferenceRunner{}, in)
		if err != nil {
			return false
		}
		return maxAbsDiff(got, want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestConvThroughSYCLKernels(t *testing.T) {
	// The full stack: im2col conv executed by a real tiled kernel on the
	// work-group emulator.
	q := sycl.NewQueue(sycl.HostDevice())
	run := FixedRunner{Q: q, Cfg: gemm.Config{TileRows: 2, TileCols: 4, AccDepth: 4, WG: gemm.WorkGroup{R: 8, C: 16}}}
	g := conv3x3(3, 8, 12)
	conv, _ := NewConv2D(g)
	conv.InitRandom(17)
	in := randomTensor(2, 3, 12, 12, 19)
	want, _ := conv.ForwardDirect(in)
	got, err := conv.Forward(run, in)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("sycl conv diff %v", d)
	}
}

func TestConvInputValidation(t *testing.T) {
	conv, _ := NewConv2D(conv3x3(3, 4, 8))
	in := randomTensor(1, 2, 8, 8, 1) // wrong channel count
	if _, err := conv.Forward(ReferenceRunner{}, in); err == nil {
		t.Fatal("wrong input shape accepted")
	}
	if _, err := conv.ForwardDirect(in); err == nil {
		t.Fatal("wrong input shape accepted by direct path")
	}
}

func TestReLU(t *testing.T) {
	in := NewTensor(1, 1, 1, 4)
	copy(in.Data, []float64{-2, 0, 3, -0.5})
	out, err := ReLU{}.Forward(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 3, 0}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("relu = %v", out.Data)
		}
	}
	if in.Data[0] != -2 {
		t.Fatal("ReLU mutated input")
	}
}

func TestMaxPool(t *testing.T) {
	in := NewTensor(1, 1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	out, err := MaxPool2D{Kernel: 2, Stride: 2}.Forward(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 7, 13, 15}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("pool = %v, want %v", out.Data, want)
		}
	}
	if _, err := (MaxPool2D{Kernel: 0, Stride: 1}).Forward(nil, in); err == nil {
		t.Fatal("invalid pool accepted")
	}
	if _, err := (MaxPool2D{Kernel: 8, Stride: 1}).Forward(nil, in); err == nil {
		t.Fatal("pool larger than input accepted")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := NewTensor(1, 2, 2, 2)
	copy(in.Data, []float64{1, 2, 3, 4, 10, 20, 30, 40})
	out, err := GlobalAvgPool2D{}.Forward(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0, 0) != 2.5 || out.At(0, 1, 0, 0) != 25 {
		t.Fatalf("gap = %v", out.Data)
	}
}

func TestFullyConnected(t *testing.T) {
	fc, err := NewFullyConnected(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// W = [[1,0],[0,1],[1,1]], b = [0.5, -0.5]
	copy(fc.Weights, []float64{1, 0, 0, 1, 1, 1})
	copy(fc.Bias, []float64{0.5, -0.5})
	in := NewTensor(1, 3, 1, 1)
	copy(in.Data, []float64{2, 3, 4})
	out, err := fc.Forward(ReferenceRunner{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0, 0) != 6.5 || out.At(0, 1, 0, 0) != 6.5 {
		t.Fatalf("fc = %v", out.Data)
	}
	// Shape mismatch rejected.
	if _, err := fc.Forward(ReferenceRunner{}, NewTensor(1, 4, 1, 1)); err == nil {
		t.Fatal("fc accepted wrong input width")
	}
}

func TestVGGStyleForward(t *testing.T) {
	net, err := VGGStyle(3, 16, []int{8, 16}, 32, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	in := randomTensor(2, 3, 16, 16, 3)
	out, err := net.Forward(ReferenceRunner{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 2 || out.C != 10 || out.H != 1 || out.W != 1 {
		t.Fatalf("output %v", out)
	}
	// Same forward through real kernels agrees with the reference runner.
	q := sycl.NewQueue(sycl.HostDevice())
	out2, err := net.Forward(FixedRunner{Q: q, Cfg: gemm.Config{TileRows: 4, TileCols: 4, AccDepth: 2, WG: gemm.WorkGroup{R: 8, C: 8}}}, in)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(out, out2); d > 1e-9 {
		t.Fatalf("runner mismatch %v", d)
	}
}

func TestVGGStyleGEMMShapes(t *testing.T) {
	net, err := VGGStyle(3, 16, []int{8}, 32, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	shapes := net.GEMMShapes(4)
	// conv 3→8 @16 (M=4·256, K=27, N=8), fc 512→32, fc 32→10.
	want := []string{"1024x27x8", "4x512x32", "4x32x10"}
	if len(shapes) != len(want) {
		t.Fatalf("shapes = %v", shapes)
	}
	for i := range want {
		if shapes[i] != want[i] {
			t.Fatalf("shape %d = %s, want %s", i, shapes[i], want[i])
		}
	}
}

func TestMobileNetStyleBlock(t *testing.T) {
	layers, err := MobileNetStyleBlock(8, 48, 16, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	net := &Sequential{Label: "mb", Layers: layers}
	in := randomTensor(1, 8, 6, 6, 7)
	out, err := net.Forward(ReferenceRunner{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 16 || out.H != 6 || out.W != 6 {
		t.Fatalf("block output %v", out)
	}
}

func TestVGGStyleErrors(t *testing.T) {
	if _, err := VGGStyle(3, 16, nil, 32, 10, 1); err == nil {
		t.Fatal("empty channel list accepted")
	}
	if _, err := VGGStyle(3, 2, []int{8, 16, 32}, 32, 10, 1); err == nil {
		t.Fatal("exhausted spatial size accepted")
	}
}

func TestWinogradBatchedRunnerMatchesSequential(t *testing.T) {
	// The batch-capable FixedRunner and the sequential ReferenceRunner must
	// produce identical Winograd results.
	q := sycl.NewQueue(sycl.HostDevice())
	g := conv3x3(4, 6, 10)
	conv, _ := NewConv2D(g)
	conv.InitRandom(23)
	in := randomTensor(2, 4, 10, 10, 29)
	seq, err := conv.ForwardWinograd(ReferenceRunner{}, in)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := conv.ForwardWinograd(FixedRunner{Q: q,
		Cfg: gemm.Config{TileRows: 2, TileCols: 2, AccDepth: 4, WG: gemm.WorkGroup{R: 8, C: 8}}}, in)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(seq, batched); d > 1e-9 {
		t.Fatalf("batched winograd diff %v", d)
	}
}
