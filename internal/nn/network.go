package nn

import (
	"fmt"

	"kernelselect/internal/workload"
)

// Sequential is a feed-forward network: layers executed in order, all GEMMs
// routed through one runner.
type Sequential struct {
	Label  string
	Layers []Layer
}

// Name implements Layer, so whole networks compose as blocks of larger ones.
func (s *Sequential) Name() string { return s.Label }

// Forward runs the network on the input tensor.
func (s *Sequential) Forward(run GEMMRunner, in *Tensor) (*Tensor, error) {
	cur := in
	for i, l := range s.Layers {
		next, err := l.Forward(run, cur)
		if err != nil {
			return nil, fmt.Errorf("nn: %s layer %d (%s): %w", s.Label, i, l.Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// GEMMShapes lists the GEMM shapes the network's conv/FC layers lower to for
// a given batch, for cross-checking against the tuning workload tables.
func (s *Sequential) GEMMShapes(batch int) []string {
	var out []string
	for _, l := range s.Layers {
		switch t := l.(type) {
		case *Conv2D:
			out = append(out, t.Geom.Im2colShape(batch).String())
		case *FullyConnected:
			out = append(out, fmt.Sprintf("%dx%dx%d", batch, t.In, t.Out))
		}
	}
	return out
}

// VGGStyle builds a small VGG-flavoured network — conv/relu blocks with
// 2×2 max pooling and an FC classifier — scaled by inputSize so tests and
// examples can run full inference on the CPU emulator in reasonable time.
// With inputSize 224, channels (64, 128, 256) and two FC layers it is the
// head of the real VGG topology.
func VGGStyle(inputC, inputSize int, channels []int, fcWidth, classes int, seed uint64) (*Sequential, error) {
	if len(channels) == 0 {
		return nil, fmt.Errorf("nn: VGGStyle needs at least one conv block")
	}
	net := &Sequential{Label: "vgg-style"}
	c, size := inputC, inputSize
	rng := seed
	for bi, outC := range channels {
		if size < 2 {
			return nil, fmt.Errorf("nn: input size %d exhausted at block %d", inputSize, bi)
		}
		conv, err := NewConv2D(workload.Conv{
			Name: fmt.Sprintf("block%d", bi),
			InC:  c, OutC: outC, InH: size, InW: size,
			KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
		})
		if err != nil {
			return nil, err
		}
		conv.InitRandom(rng)
		rng++
		net.Layers = append(net.Layers, conv, ReLU{}, MaxPool2D{Kernel: 2, Stride: 2})
		c = outC
		size /= 2
	}
	fc1, err := NewFullyConnected(c*size*size, fcWidth)
	if err != nil {
		return nil, err
	}
	fc1.InitRandom(rng)
	fc2, err := NewFullyConnected(fcWidth, classes)
	if err != nil {
		return nil, err
	}
	fc2.InitRandom(rng + 1)
	net.Layers = append(net.Layers, fc1, ReLU{}, fc2)
	return net, nil
}

// MobileNetStyleBlock builds one inverted-residual bottleneck's pointwise
// pipeline (expand 1×1 → relu → project 1×1) at the given spatial size; the
// depthwise stage, which does not lower to GEMM, is omitted exactly as in
// the tuning workload (see workload.MobileNetV2).
func MobileNetStyleBlock(inC, expand, outC, size int, seed uint64) ([]Layer, error) {
	ex, err := NewConv2D(workload.Conv{
		Name: "expand", InC: inC, OutC: expand, InH: size, InW: size,
		KH: 1, KW: 1, StrideH: 1, StrideW: 1,
	})
	if err != nil {
		return nil, err
	}
	ex.InitRandom(seed)
	pr, err := NewConv2D(workload.Conv{
		Name: "project", InC: expand, OutC: outC, InH: size, InW: size,
		KH: 1, KW: 1, StrideH: 1, StrideW: 1,
	})
	if err != nil {
		return nil, err
	}
	pr.InitRandom(seed + 1)
	return []Layer{ex, ReLU{}, pr}, nil
}

// BottleneckBlock builds a ResNet-style bottleneck (1×1 reduce → ReLU → 3×3
// → ReLU → 1×1 expand) at the given spatial size. When the input and output
// channel counts match, the block is wrapped in an identity residual as in
// the original architecture.
func BottleneckBlock(inC, midC, outC, size int, seed uint64) (Layer, error) {
	reduce, err := NewConv2D(workload.Conv{
		Name: "reduce", InC: inC, OutC: midC, InH: size, InW: size,
		KH: 1, KW: 1, StrideH: 1, StrideW: 1,
	})
	if err != nil {
		return nil, err
	}
	reduce.InitRandom(seed)
	mid, err := NewConv2D(workload.Conv{
		Name: "3x3", InC: midC, OutC: midC, InH: size, InW: size,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	})
	if err != nil {
		return nil, err
	}
	mid.InitRandom(seed + 1)
	expand, err := NewConv2D(workload.Conv{
		Name: "expand", InC: midC, OutC: outC, InH: size, InW: size,
		KH: 1, KW: 1, StrideH: 1, StrideW: 1,
	})
	if err != nil {
		return nil, err
	}
	expand.InitRandom(seed + 2)
	body := []Layer{reduce, ReLU{}, mid, ReLU{}, expand}
	if inC == outC {
		return Residual{Body: body}, nil
	}
	return &Sequential{Label: "bottleneck", Layers: body}, nil
}

// MobileNetV2Block builds a full inverted-residual block — expand 1×1 →
// ReLU → depthwise 3×3 (with stride) → ReLU → project 1×1 — including the
// depthwise stage the GEMM tuning dataset cannot cover. Stride-1 blocks with
// matching channel counts gain the identity residual, as in the paper's
// MobileNet-V2 reference.
func MobileNetV2Block(inC, expandRatio, outC, size, stride int, seed uint64) (Layer, error) {
	expC := inC * expandRatio
	var body []Layer
	if expandRatio != 1 {
		ex, err := NewConv2D(workload.Conv{
			Name: "expand", InC: inC, OutC: expC, InH: size, InW: size,
			KH: 1, KW: 1, StrideH: 1, StrideW: 1,
		})
		if err != nil {
			return nil, err
		}
		ex.InitRandom(seed)
		body = append(body, ex, ReLU{})
	} else {
		expC = inC
	}
	dw, err := NewDepthwiseConv2D(expC, size, size, 3, stride, 1)
	if err != nil {
		return nil, err
	}
	dw.InitRandom(seed + 1)
	outSize := dw.OutH()
	pr, err := NewConv2D(workload.Conv{
		Name: "project", InC: expC, OutC: outC, InH: outSize, InW: outSize,
		KH: 1, KW: 1, StrideH: 1, StrideW: 1,
	})
	if err != nil {
		return nil, err
	}
	pr.InitRandom(seed + 2)
	body = append(body, dw, ReLU{}, pr)
	if stride == 1 && inC == outC {
		return Residual{Body: body}, nil
	}
	return &Sequential{Label: "invres", Layers: body}, nil
}

// ResNetStyle builds a small ResNet-flavoured network: a stem convolution,
// a chain of bottleneck blocks, global average pooling and a classifier.
func ResNetStyle(inputC, inputSize int, blocks int, width, classes int, seed uint64) (*Sequential, error) {
	if blocks < 1 {
		return nil, fmt.Errorf("nn: ResNetStyle needs at least one block")
	}
	stem, err := NewConv2D(workload.Conv{
		Name: "stem", InC: inputC, OutC: width, InH: inputSize, InW: inputSize,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	})
	if err != nil {
		return nil, err
	}
	stem.InitRandom(seed)
	net := &Sequential{Label: "resnet-style", Layers: []Layer{stem, ReLU{}}}
	for b := 0; b < blocks; b++ {
		blk, err := BottleneckBlock(width, width/2, width, inputSize, seed+uint64(10*b))
		if err != nil {
			return nil, err
		}
		net.Layers = append(net.Layers, blk, ReLU{})
	}
	fc, err := NewFullyConnected(width, classes)
	if err != nil {
		return nil, err
	}
	fc.InitRandom(seed + 99)
	net.Layers = append(net.Layers, GlobalAvgPool2D{}, fc)
	return net, nil
}

// MobileNetV2Style builds a small MobileNet-V2-flavoured network: a strided
// stem, a chain of inverted-residual blocks (with real depthwise stages), a
// 1×1 head, pooling and a classifier.
func MobileNetV2Style(inputC, inputSize, classes int, seed uint64) (*Sequential, error) {
	stem, err := NewConv2D(workload.Conv{
		Name: "stem", InC: inputC, OutC: 16, InH: inputSize, InW: inputSize,
		KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1,
	})
	if err != nil {
		return nil, err
	}
	stem.InitRandom(seed)
	size := stem.Geom.OutH()
	net := &Sequential{Label: "mobilenetv2-style", Layers: []Layer{stem, ReLU{}}}

	type blockSpec struct {
		expand, outC, stride int
	}
	specs := []blockSpec{{1, 16, 1}, {6, 24, 2}, {6, 24, 1}, {6, 32, 2}, {6, 32, 1}}
	c := 16
	for i, sp := range specs {
		blk, err := MobileNetV2Block(c, sp.expand, sp.outC, size, sp.stride, seed+uint64(10*i))
		if err != nil {
			return nil, err
		}
		net.Layers = append(net.Layers, blk)
		c = sp.outC
		if sp.stride == 2 {
			size = (size + 1) / 2
		}
	}
	head, err := NewConv2D(workload.Conv{
		Name: "head", InC: c, OutC: 64, InH: size, InW: size,
		KH: 1, KW: 1, StrideH: 1, StrideW: 1,
	})
	if err != nil {
		return nil, err
	}
	head.InitRandom(seed + 98)
	fc, err := NewFullyConnected(64, classes)
	if err != nil {
		return nil, err
	}
	fc.InitRandom(seed + 99)
	net.Layers = append(net.Layers, head, ReLU{}, GlobalAvgPool2D{}, fc)
	return net, nil
}
