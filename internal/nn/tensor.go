// Package nn implements the neural-network substrate behind the paper's
// workloads: NCHW tensors, the im2col and Winograd F(2×2, 3×3) convolution
// lowerings (the two transforms Section II-A cites as the source of the
// dataset's GEMM shapes), pooling/activation/fully-connected layers, and a
// sequential network runner that executes inference through the
// kernel-selection library — turning the workload tables of
// internal/workload into runnable models.
package nn

import "fmt"

// Tensor is a dense NCHW activation tensor.
type Tensor struct {
	N, C, H, W int
	Data       []float64
}

// NewTensor allocates a zero tensor. It panics on non-positive dimensions.
func NewTensor(n, c, h, w int) *Tensor {
	if n <= 0 || c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: invalid tensor dims %dx%dx%dx%d", n, c, h, w))
	}
	return &Tensor{N: n, C: c, H: h, W: w, Data: make([]float64, n*c*h*w)}
}

// Len returns the element count.
func (t *Tensor) Len() int { return t.N * t.C * t.H * t.W }

// index computes the flat NCHW offset.
func (t *Tensor) index(n, c, h, w int) int {
	return ((n*t.C+c)*t.H+h)*t.W + w
}

// At returns the element at (n, c, h, w).
func (t *Tensor) At(n, c, h, w int) float64 { return t.Data[t.index(n, c, h, w)] }

// Set assigns the element at (n, c, h, w).
func (t *Tensor) Set(n, c, h, w int, v float64) { t.Data[t.index(n, c, h, w)] = v }

// AtPadded returns the element at (n, c, h, w) treating out-of-bounds
// spatial coordinates as zero padding.
func (t *Tensor) AtPadded(n, c, h, w int) float64 {
	if h < 0 || h >= t.H || w < 0 || w >= t.W {
		return 0
	}
	return t.Data[t.index(n, c, h, w)]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := NewTensor(t.N, t.C, t.H, t.W)
	copy(out.Data, t.Data)
	return out
}

// ShapeEq reports whether two tensors have identical dimensions.
func (t *Tensor) ShapeEq(o *Tensor) bool {
	return t.N == o.N && t.C == o.C && t.H == o.H && t.W == o.W
}

// String renders the dimensions.
func (t *Tensor) String() string {
	return fmt.Sprintf("[%d,%d,%d,%d]", t.N, t.C, t.H, t.W)
}
