package nn

import (
	"math"
	"testing"

	"kernelselect/internal/gemm"
	"kernelselect/internal/sycl"
	"kernelselect/internal/workload"
)

// convLoss is the scalar test loss 0.5·Σ out², whose gradient wrt the
// output is the output itself.
func convLoss(out *Tensor) float64 {
	var l float64
	for _, v := range out.Data {
		l += 0.5 * v * v
	}
	return l
}

// TestConvBackwardMatchesNumericalGradient checks dW, dB and dIn against
// central finite differences for several geometries (padding, stride,
// pointwise).
func TestConvBackwardMatchesNumericalGradient(t *testing.T) {
	geoms := []workload.Conv{
		conv3x3(2, 3, 6),
		{Name: "s2", InC: 2, OutC: 2, InH: 7, InW: 7, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{Name: "pw", InC: 3, OutC: 4, InH: 5, InW: 5, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
	}
	run := ReferenceRunner{}
	for _, geom := range geoms {
		conv, err := NewConv2D(geom)
		if err != nil {
			t.Fatal(err)
		}
		conv.InitRandom(3)
		in := randomTensor(2, geom.InC, geom.InH, geom.InW, 5)

		lossAt := func() float64 {
			out, err := conv.Forward(run, in)
			if err != nil {
				t.Fatal(err)
			}
			return convLoss(out)
		}
		out, err := conv.Forward(run, in)
		if err != nil {
			t.Fatal(err)
		}
		grads, dIn, err := conv.Backward(run, in, out) // dLoss/dOut = out
		if err != nil {
			t.Fatal(err)
		}

		const eps = 1e-6
		check := func(name string, params, analytic []float64) {
			step := 1 + len(params)/6
			for i := 0; i < len(params); i += step {
				orig := params[i]
				params[i] = orig + eps
				up := lossAt()
				params[i] = orig - eps
				down := lossAt()
				params[i] = orig
				numeric := (up - down) / (2 * eps)
				if math.Abs(numeric-analytic[i]) > 1e-4 {
					t.Fatalf("%s: %s[%d] analytic %v vs numeric %v", geom.Name, name, i, analytic[i], numeric)
				}
			}
		}
		check("W", conv.Weights, grads.DW)
		check("B", conv.Bias, grads.DB)
		check("in", in.Data, dIn.Data)
	}
}

func TestConvBackwardRunnersAgree(t *testing.T) {
	geom := conv3x3(3, 4, 8)
	conv, _ := NewConv2D(geom)
	conv.InitRandom(7)
	in := randomTensor(1, 3, 8, 8, 9)
	out, _ := conv.Forward(ReferenceRunner{}, in)

	refG, refIn, err := conv.Backward(ReferenceRunner{}, in, out)
	if err != nil {
		t.Fatal(err)
	}
	q := sycl.NewQueue(sycl.HostDevice())
	fixG, fixIn, err := conv.Backward(FixedRunner{Q: q,
		Cfg: gemm.Config{TileRows: 2, TileCols: 2, AccDepth: 4, WG: gemm.WorkGroup{R: 8, C: 8}}}, in, out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refG.DW {
		if math.Abs(refG.DW[i]-fixG.DW[i]) > 1e-9 {
			t.Fatal("dW differs across runners")
		}
	}
	if d := maxAbsDiff(refIn, fixIn); d > 1e-9 {
		t.Fatalf("dIn differs across runners by %v", d)
	}
}

func TestConvBackwardValidatesShapes(t *testing.T) {
	conv, _ := NewConv2D(conv3x3(2, 3, 6))
	in := randomTensor(1, 2, 6, 6, 1)
	badGrad := NewTensor(1, 5, 6, 6)
	if _, _, err := conv.Backward(ReferenceRunner{}, in, badGrad); err == nil {
		t.Fatal("mismatched gradient accepted")
	}
	badIn := randomTensor(1, 9, 6, 6, 1)
	goodGrad := NewTensor(1, 3, 6, 6)
	if _, _, err := conv.Backward(ReferenceRunner{}, badIn, goodGrad); err == nil {
		t.Fatal("mismatched input accepted")
	}
}

func TestConvBackwardGEMMShapes(t *testing.T) {
	conv, _ := NewConv2D(conv3x3(16, 32, 14))
	shapes := conv.BackwardGEMMShapes(4)
	imc := conv.Geom.Im2colShape(4)
	want := []gemm.Shape{
		{M: imc.K, K: imc.M, N: imc.N},
		{M: imc.M, K: imc.N, N: imc.K},
	}
	for i := range want {
		if shapes[i] != want[i] {
			t.Fatalf("shape %d = %v, want %v", i, shapes[i], want[i])
		}
	}
}

// TestConvTrainingStepReducesLoss does one SGD step on the test loss and
// confirms descent — the end-to-end "conv layers train too" check.
func TestConvTrainingStepReducesLoss(t *testing.T) {
	conv, _ := NewConv2D(conv3x3(2, 4, 8))
	conv.InitRandom(11)
	in := randomTensor(2, 2, 8, 8, 13)
	run := ReferenceRunner{}

	out, _ := conv.Forward(run, in)
	before := convLoss(out)
	grads, _, err := conv.Backward(run, in, out)
	if err != nil {
		t.Fatal(err)
	}
	const lr = 1e-3
	for i, d := range grads.DW {
		conv.Weights[i] -= lr * d
	}
	for i, d := range grads.DB {
		conv.Bias[i] -= lr * d
	}
	out2, _ := conv.Forward(run, in)
	if after := convLoss(out2); after >= before {
		t.Fatalf("loss did not decrease: %v → %v", before, after)
	}
}
