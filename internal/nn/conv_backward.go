package nn

import (
	"fmt"

	"kernelselect/internal/gemm"
)

// ConvGradients holds a convolution layer's parameter gradients.
type ConvGradients struct {
	DW []float64 // same layout as Conv2D.Weights: (InC·KH·KW) × OutC
	DB []float64 // OutC
}

// Backward computes the convolution's gradients for a batch: parameter
// gradients and the gradient with respect to the input (via col2im). The
// two large products are the transpose-mode GEMMs of training —
// dW = colsᵀ·dOut (TN) and dCols = dOut·Wᵀ (NT) — and run through the
// runner like every other multiply.
func (l *Conv2D) Backward(run GEMMRunner, in *Tensor, dOut *Tensor) (*ConvGradients, *Tensor, error) {
	if err := l.checkInput(in); err != nil {
		return nil, nil, err
	}
	g := l.Geom
	oh, ow := g.OutH(), g.OutW()
	if dOut.N != in.N || dOut.C != g.OutC || dOut.H != oh || dOut.W != ow {
		return nil, nil, fmt.Errorf("nn: %s backward got gradient %v, want [%d,%d,%d,%d]",
			l.Name(), dOut, in.N, g.OutC, oh, ow)
	}

	cols, s := l.Im2col(in) // s.M = n·oh·ow, s.K = InC·KH·KW, s.N = OutC

	// Flatten dOut to the same row order as the im2col rows: (n, y, x).
	dFlat := make([]float64, s.M*s.N)
	row := 0
	for n := 0; n < in.N; n++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				for c := 0; c < g.OutC; c++ {
					dFlat[row*s.N+c] = dOut.At(n, c, y, x)
				}
				row++
			}
		}
	}

	grads := &ConvGradients{
		DW: make([]float64, s.K*s.N),
		DB: make([]float64, s.N),
	}
	// dW = colsᵀ·dFlat : logical (K × OutC) with inner dimension s.M.
	if err := runTN(run, cols, dFlat, grads.DW, s.K, s.M, s.N); err != nil {
		return nil, nil, err
	}
	for r := 0; r < s.M; r++ {
		for c := 0; c < s.N; c++ {
			grads.DB[c] += dFlat[r*s.N+c]
		}
	}

	// dCols = dFlat·Wᵀ : (s.M × s.K) with W stored (s.K × s.N).
	dCols := make([]float64, s.M*s.K)
	if err := runNT(run, dFlat, l.Weights, dCols, s.M, s.N, s.K); err != nil {
		return nil, nil, err
	}

	// col2im: scatter-add each patch element's gradient back to the input
	// position it was gathered from (padding positions are dropped).
	dIn := NewTensor(in.N, g.InC, g.InH, g.InW)
	row = 0
	for n := 0; n < in.N; n++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				base := row * s.K
				idx := 0
				for c := 0; c < g.InC; c++ {
					for kh := 0; kh < g.KH; kh++ {
						ih := y*g.StrideH - g.PadH + kh
						for kw := 0; kw < g.KW; kw++ {
							iw := x*g.StrideW - g.PadW + kw
							if ih >= 0 && ih < g.InH && iw >= 0 && iw < g.InW {
								dIn.Data[dIn.index(n, c, ih, iw)] += dCols[base+idx]
							}
							idx++
						}
					}
				}
				row++
			}
		}
	}
	return grads, dIn, nil
}

// BackwardGEMMShapes lists the gradient GEMM shapes one backward pass of
// batch n produces for this convolution.
func (l *Conv2D) BackwardGEMMShapes(n int) []gemm.Shape {
	s := l.Geom.Im2colShape(n)
	return []gemm.Shape{
		{M: s.K, K: s.M, N: s.N}, // dW
		{M: s.M, K: s.N, N: s.K}, // dCols
	}
}
