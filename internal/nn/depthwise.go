package nn

import (
	"fmt"

	"kernelselect/internal/xrand"
)

// DepthwiseConv2D is a depthwise (channel-grouped) convolution: each input
// channel is filtered independently. It does not lower to a dense GEMM via
// im2col — the reason MobileNet's depthwise stages are absent from the
// paper's matrix-multiply tuning dataset — so it executes directly.
type DepthwiseConv2D struct {
	C                int // channels (in == out)
	InH, InW         int
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
	Weights          []float64 // C × KH × KW
	Bias             []float64 // C
}

// NewDepthwiseConv2D allocates a zero-initialised depthwise convolution.
func NewDepthwiseConv2D(c, inH, inW, k, stride, pad int) (*DepthwiseConv2D, error) {
	l := &DepthwiseConv2D{
		C: c, InH: inH, InW: inW,
		KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
	}
	if c <= 0 || inH <= 0 || inW <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: invalid depthwise geometry %+v", l)
	}
	if l.OutH() <= 0 || l.OutW() <= 0 {
		return nil, fmt.Errorf("nn: depthwise conv empties its input")
	}
	l.Weights = make([]float64, c*k*k)
	l.Bias = make([]float64, c)
	return l, nil
}

// OutH returns the output height.
func (l *DepthwiseConv2D) OutH() int { return (l.InH+2*l.PadH-l.KH)/l.StrideH + 1 }

// OutW returns the output width.
func (l *DepthwiseConv2D) OutW() int { return (l.InW+2*l.PadW-l.KW)/l.StrideW + 1 }

// InitRandom fills weights and bias with small deterministic values.
func (l *DepthwiseConv2D) InitRandom(seed uint64) {
	r := xrand.New(seed)
	scale := 1 / float64(l.KH*l.KW)
	for i := range l.Weights {
		l.Weights[i] = (2*r.Float64() - 1) * scale
	}
	for i := range l.Bias {
		l.Bias[i] = (2*r.Float64() - 1) * 0.01
	}
}

// Name implements Layer.
func (l *DepthwiseConv2D) Name() string {
	return fmt.Sprintf("dwconv%dx%d/%d(%dch)", l.KH, l.KW, l.StrideH, l.C)
}

// Forward implements Layer with a direct loop nest (no GEMM lowering).
func (l *DepthwiseConv2D) Forward(_ GEMMRunner, in *Tensor) (*Tensor, error) {
	if in.C != l.C || in.H != l.InH || in.W != l.InW {
		return nil, fmt.Errorf("nn: %s expects %dx%dx%d input, got %v", l.Name(), l.C, l.InH, l.InW, in)
	}
	oh, ow := l.OutH(), l.OutW()
	out := NewTensor(in.N, l.C, oh, ow)
	for n := 0; n < in.N; n++ {
		for c := 0; c < l.C; c++ {
			wbase := c * l.KH * l.KW
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					acc := l.Bias[c]
					for kh := 0; kh < l.KH; kh++ {
						ih := y*l.StrideH - l.PadH + kh
						for kw := 0; kw < l.KW; kw++ {
							iw := x*l.StrideW - l.PadW + kw
							acc += l.Weights[wbase+kh*l.KW+kw] * in.AtPadded(n, c, ih, iw)
						}
					}
					out.Set(n, c, y, x, acc)
				}
			}
		}
	}
	return out, nil
}

// Residual wraps a body of layers with an identity skip connection:
// out = body(in) + in. The body must preserve the tensor shape (the
// stride-1, equal-channel case of ResNet/MobileNet blocks).
type Residual struct {
	Body []Layer
}

// Name implements Layer.
func (r Residual) Name() string { return fmt.Sprintf("residual(%d layers)", len(r.Body)) }

// Forward implements Layer.
func (r Residual) Forward(run GEMMRunner, in *Tensor) (*Tensor, error) {
	cur := in
	for i, l := range r.Body {
		next, err := l.Forward(run, cur)
		if err != nil {
			return nil, fmt.Errorf("nn: residual body layer %d (%s): %w", i, l.Name(), err)
		}
		cur = next
	}
	if !cur.ShapeEq(in) {
		return nil, fmt.Errorf("nn: residual body maps %v to %v; skip connection needs equal shapes", in, cur)
	}
	out := cur.Clone()
	for i := range out.Data {
		out.Data[i] += in.Data[i]
	}
	return out, nil
}
