package nn

import (
	"fmt"
	"math"

	"kernelselect/internal/gemm"
	"kernelselect/internal/xrand"
)

// Layer is one step of a sequential network. Forward consumes an activation
// tensor and produces the next one, routing any lowered GEMMs through run.
type Layer interface {
	Name() string
	Forward(run GEMMRunner, in *Tensor) (*Tensor, error)
}

// Conv2D implements Layer via its im2col path.
var _ Layer = (*Conv2D)(nil)

// ReLU applies max(0, x) elementwise.
type ReLU struct{}

// Name implements Layer.
func (ReLU) Name() string { return "relu" }

// Forward implements Layer.
func (ReLU) Forward(_ GEMMRunner, in *Tensor) (*Tensor, error) {
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out, nil
}

// MaxPool2D is a max pooling layer with square kernel and stride.
type MaxPool2D struct {
	Kernel, Stride int
}

// Name implements Layer.
func (p MaxPool2D) Name() string { return fmt.Sprintf("maxpool%dx%d/%d", p.Kernel, p.Kernel, p.Stride) }

// Forward implements Layer.
func (p MaxPool2D) Forward(_ GEMMRunner, in *Tensor) (*Tensor, error) {
	if p.Kernel <= 0 || p.Stride <= 0 {
		return nil, fmt.Errorf("nn: invalid pool %+v", p)
	}
	oh := (in.H-p.Kernel)/p.Stride + 1
	ow := (in.W-p.Kernel)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: pool %+v empties %v", p, in)
	}
	out := NewTensor(in.N, in.C, oh, ow)
	for n := 0; n < in.N; n++ {
		for c := 0; c < in.C; c++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					best := math.Inf(-1)
					for ky := 0; ky < p.Kernel; ky++ {
						for kx := 0; kx < p.Kernel; kx++ {
							if v := in.At(n, c, y*p.Stride+ky, x*p.Stride+kx); v > best {
								best = v
							}
						}
					}
					out.Set(n, c, y, x, best)
				}
			}
		}
	}
	return out, nil
}

// GlobalAvgPool2D averages each channel over its spatial extent (the head
// pooling of MobileNet/ResNet).
type GlobalAvgPool2D struct{}

// Name implements Layer.
func (GlobalAvgPool2D) Name() string { return "globalavgpool" }

// Forward implements Layer.
func (GlobalAvgPool2D) Forward(_ GEMMRunner, in *Tensor) (*Tensor, error) {
	out := NewTensor(in.N, in.C, 1, 1)
	inv := 1 / float64(in.H*in.W)
	for n := 0; n < in.N; n++ {
		for c := 0; c < in.C; c++ {
			var sum float64
			for y := 0; y < in.H; y++ {
				for x := 0; x < in.W; x++ {
					sum += in.At(n, c, y, x)
				}
			}
			out.Set(n, c, 0, 0, sum*inv)
		}
	}
	return out, nil
}

// FullyConnected flattens the input and multiplies by an (In × Out) weight
// matrix — the GEMM with M = batch the paper's dataset includes for FC
// layers.
type FullyConnected struct {
	In, Out int
	Weights []float64 // In × Out, row-major
	Bias    []float64 // Out
}

// NewFullyConnected allocates a zero-initialised FC layer.
func NewFullyConnected(in, out int) (*FullyConnected, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: invalid fc %dx%d", in, out)
	}
	return &FullyConnected{In: in, Out: out, Weights: make([]float64, in*out), Bias: make([]float64, out)}, nil
}

// InitRandom fills weights and bias with small deterministic values.
func (l *FullyConnected) InitRandom(seed uint64) {
	r := xrand.New(seed)
	scale := 1 / float64(l.In)
	for i := range l.Weights {
		l.Weights[i] = (2*r.Float64() - 1) * scale
	}
	for i := range l.Bias {
		l.Bias[i] = (2*r.Float64() - 1) * 0.01
	}
}

// Name implements Layer.
func (l *FullyConnected) Name() string { return fmt.Sprintf("fc(%d→%d)", l.In, l.Out) }

// Forward implements Layer. The output tensor has shape (N, Out, 1, 1).
func (l *FullyConnected) Forward(run GEMMRunner, in *Tensor) (*Tensor, error) {
	flat := in.C * in.H * in.W
	if flat != l.In {
		return nil, fmt.Errorf("nn: %s expects %d inputs, got %v (%d)", l.Name(), l.In, in, flat)
	}
	s := gemm.Shape{M: in.N, K: l.In, N: l.Out}
	res := make([]float64, s.M*s.N)
	if err := run.RunGEMM(in.Data, l.Weights, res, s); err != nil {
		return nil, err
	}
	out := NewTensor(in.N, l.Out, 1, 1)
	for n := 0; n < in.N; n++ {
		for c := 0; c < l.Out; c++ {
			out.Set(n, c, 0, 0, res[n*l.Out+c]+l.Bias[c])
		}
	}
	return out, nil
}
