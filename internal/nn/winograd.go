package nn

import (
	"fmt"

	"kernelselect/internal/gemm"
)

// Winograd F(2×2, 3×3) convolution: each 4×4 input tile is transformed with
// Bᵀ·d·B, each 3×3 filter with G·g·Gᵀ, the 16 transformed positions are
// contracted with 16 independent GEMMs of shape (tiles × InC) · (InC × OutC)
// — the batched-GEMM shapes internal/workload feeds into the tuning dataset
// — and each product tile is mapped back with Aᵀ·m·A to a 2×2 output block.
//
// Transform matrices (Lavin & Gray's formulation):
//
//	Bᵀ = ⎡1  0 −1  0⎤   G = ⎡ 1    0    0 ⎤   Aᵀ = ⎡1 1  1  0⎤
//	     ⎢0  1  1  0⎥       ⎢1/2  1/2  1/2⎥        ⎣0 1 −1 −1⎦
//	     ⎢0 −1  1  0⎥       ⎢1/2 −1/2  1/2⎥
//	     ⎣0  1  0 −1⎦       ⎣ 0    0    1 ⎦

// winogradInputTransform computes Bᵀ·d·B for a 4×4 tile d (flattened
// row-major into dst).
func winogradInputTransform(d *[4][4]float64, dst []float64) {
	// t = Bᵀ·d
	var t [4][4]float64
	for j := 0; j < 4; j++ {
		t[0][j] = d[0][j] - d[2][j]
		t[1][j] = d[1][j] + d[2][j]
		t[2][j] = d[2][j] - d[1][j]
		t[3][j] = d[1][j] - d[3][j]
	}
	// dst = t·B
	for i := 0; i < 4; i++ {
		dst[i*4+0] = t[i][0] - t[i][2]
		dst[i*4+1] = t[i][1] + t[i][2]
		dst[i*4+2] = t[i][2] - t[i][1]
		dst[i*4+3] = t[i][1] - t[i][3]
	}
}

// winogradFilterTransform computes G·g·Gᵀ for a 3×3 filter g.
func winogradFilterTransform(g *[3][3]float64, dst []float64) {
	// t = G·g (4×3)
	var t [4][3]float64
	for j := 0; j < 3; j++ {
		t[0][j] = g[0][j]
		t[1][j] = 0.5 * (g[0][j] + g[1][j] + g[2][j])
		t[2][j] = 0.5 * (g[0][j] - g[1][j] + g[2][j])
		t[3][j] = g[2][j]
	}
	// dst = t·Gᵀ (4×4)
	for i := 0; i < 4; i++ {
		dst[i*4+0] = t[i][0]
		dst[i*4+1] = 0.5 * (t[i][0] + t[i][1] + t[i][2])
		dst[i*4+2] = 0.5 * (t[i][0] - t[i][1] + t[i][2])
		dst[i*4+3] = t[i][2]
	}
}

// winogradOutputTransform computes Aᵀ·m·A for a 4×4 product tile m, yielding
// the 2×2 output block.
func winogradOutputTransform(m []float64, dst *[2][2]float64) {
	// t = Aᵀ·m (2×4)
	var t [2][4]float64
	for j := 0; j < 4; j++ {
		t[0][j] = m[0*4+j] + m[1*4+j] + m[2*4+j]
		t[1][j] = m[1*4+j] - m[2*4+j] - m[3*4+j]
	}
	// dst = t·A (2×2)
	for i := 0; i < 2; i++ {
		dst[i][0] = t[i][0] + t[i][1] + t[i][2]
		dst[i][1] = t[i][1] - t[i][2] - t[i][3]
	}
}

// ForwardWinograd computes the convolution with the Winograd F(2×2, 3×3)
// algorithm. It requires a 3×3 kernel with unit stride (the same condition
// workload.Conv.WinogradShape enforces for the tuning dataset).
func (l *Conv2D) ForwardWinograd(run GEMMRunner, in *Tensor) (*Tensor, error) {
	g := l.Geom
	if g.KH != 3 || g.KW != 3 || g.StrideH != 1 || g.StrideW != 1 {
		return nil, fmt.Errorf("nn: %s does not admit Winograd F(2x2,3x3)", l.Name())
	}
	if err := l.checkInput(in); err != nil {
		return nil, err
	}
	oh, ow := g.OutH(), g.OutW()
	tilesY := (oh + 1) / 2
	tilesX := (ow + 1) / 2
	nTiles := in.N * tilesY * tilesX

	// Transformed input V: 16 matrices of (nTiles × InC), stored per
	// position for contiguous GEMM operands.
	v := make([][]float64, 16)
	for p := range v {
		v[p] = make([]float64, nTiles*g.InC)
	}
	var d [4][4]float64
	var td [16]float64
	tile := 0
	for n := 0; n < in.N; n++ {
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				for c := 0; c < g.InC; c++ {
					y0 := ty*2 - g.PadH
					x0 := tx*2 - g.PadW
					for i := 0; i < 4; i++ {
						for j := 0; j < 4; j++ {
							d[i][j] = in.AtPadded(n, c, y0+i, x0+j)
						}
					}
					winogradInputTransform(&d, td[:])
					for p := 0; p < 16; p++ {
						v[p][tile*g.InC+c] = td[p]
					}
				}
				tile++
			}
		}
	}

	// Transformed filters U: 16 matrices of (InC × OutC).
	u := make([][]float64, 16)
	for p := range u {
		u[p] = make([]float64, g.InC*g.OutC)
	}
	var f [3][3]float64
	var tf [16]float64
	for oc := 0; oc < g.OutC; oc++ {
		for c := 0; c < g.InC; c++ {
			for kh := 0; kh < 3; kh++ {
				for kw := 0; kw < 3; kw++ {
					f[kh][kw] = l.Weights[(c*9+kh*3+kw)*g.OutC+oc]
				}
			}
			winogradFilterTransform(&f, tf[:])
			for p := 0; p < 16; p++ {
				u[p][c*g.OutC+oc] = tf[p]
			}
		}
	}

	// 16 independent GEMMs — the batched shape the tuning dataset records.
	// A batch-capable runner executes them concurrently with one selection
	// decision; otherwise they run sequentially.
	s := gemm.Shape{M: nTiles, K: g.InC, N: g.OutC}
	m := make([][]float64, 16)
	for p := 0; p < 16; p++ {
		m[p] = make([]float64, nTiles*g.OutC)
	}
	if br, ok := run.(BatchGEMMRunner); ok {
		batch := make([]gemm.Batch, 16)
		for p := 0; p < 16; p++ {
			batch[p] = gemm.Batch{A: v[p], B: u[p], C: m[p]}
		}
		if err := br.RunGEMMBatch(batch, s); err != nil {
			return nil, fmt.Errorf("nn: winograd batch: %w", err)
		}
	} else {
		for p := 0; p < 16; p++ {
			if err := run.RunGEMM(v[p], u[p], m[p], s); err != nil {
				return nil, fmt.Errorf("nn: winograd position %d: %w", p, err)
			}
		}
	}

	// Inverse transform and scatter (bounds-checked: edge tiles may hang
	// over the output).
	out := NewTensor(in.N, g.OutC, oh, ow)
	var prod [16]float64
	var y2 [2][2]float64
	tile = 0
	for n := 0; n < in.N; n++ {
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				for oc := 0; oc < g.OutC; oc++ {
					for p := 0; p < 16; p++ {
						prod[p] = m[p][tile*g.OutC+oc]
					}
					winogradOutputTransform(prod[:], &y2)
					for i := 0; i < 2; i++ {
						oy := ty*2 + i
						if oy >= oh {
							break
						}
						for j := 0; j < 2; j++ {
							ox := tx*2 + j
							if ox >= ow {
								break
							}
							out.Set(n, oc, oy, ox, y2[i][j]+l.Bias[oc])
						}
					}
				}
				tile++
			}
		}
	}
	return out, nil
}
