package nn

import (
	"math"
	"testing"
)

// depthwiseReference computes the depthwise convolution with an independent
// formulation for cross-checking.
func depthwiseReference(l *DepthwiseConv2D, in *Tensor) *Tensor {
	oh, ow := l.OutH(), l.OutW()
	out := NewTensor(in.N, l.C, oh, ow)
	for n := 0; n < in.N; n++ {
		for c := 0; c < l.C; c++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					acc := l.Bias[c]
					for kh := 0; kh < l.KH; kh++ {
						for kw := 0; kw < l.KW; kw++ {
							acc += l.Weights[c*l.KH*l.KW+kh*l.KW+kw] *
								in.AtPadded(n, c, y*l.StrideH-l.PadH+kh, x*l.StrideW-l.PadW+kw)
						}
					}
					out.Set(n, c, y, x, acc)
				}
			}
		}
	}
	return out
}

func TestDepthwiseGeometry(t *testing.T) {
	l, err := NewDepthwiseConv2D(8, 14, 14, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.OutH() != 7 || l.OutW() != 7 {
		t.Fatalf("out = %dx%d, want 7x7", l.OutH(), l.OutW())
	}
	if _, err := NewDepthwiseConv2D(0, 14, 14, 3, 1, 1); err == nil {
		t.Fatal("zero channels accepted")
	}
	if _, err := NewDepthwiseConv2D(8, 2, 2, 5, 1, 0); err == nil {
		t.Fatal("kernel larger than padded input accepted")
	}
}

func TestDepthwiseMatchesReference(t *testing.T) {
	for _, stride := range []int{1, 2} {
		l, err := NewDepthwiseConv2D(6, 10, 10, 3, stride, 1)
		if err != nil {
			t.Fatal(err)
		}
		l.InitRandom(5)
		in := randomTensor(2, 6, 10, 10, 7)
		got, err := l.Forward(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		want := depthwiseReference(l, in)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Fatalf("stride %d: diff %v", stride, d)
		}
	}
}

func TestDepthwiseChannelsIndependent(t *testing.T) {
	// Perturbing channel 0's input must not change channel 1's output.
	l, _ := NewDepthwiseConv2D(2, 6, 6, 3, 1, 1)
	l.InitRandom(9)
	in := randomTensor(1, 2, 6, 6, 11)
	base, _ := l.Forward(nil, in)
	in2 := in.Clone()
	in2.Set(0, 0, 3, 3, 99)
	got, _ := l.Forward(nil, in2)
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			if got.At(0, 1, y, x) != base.At(0, 1, y, x) {
				t.Fatal("channel crosstalk in depthwise conv")
			}
		}
	}
}

func TestDepthwiseInputValidation(t *testing.T) {
	l, _ := NewDepthwiseConv2D(4, 8, 8, 3, 1, 1)
	if _, err := l.Forward(nil, NewTensor(1, 3, 8, 8)); err == nil {
		t.Fatal("wrong channel count accepted")
	}
}

func TestResidualAddsIdentity(t *testing.T) {
	// A residual around an empty body doubles the input.
	r := Residual{}
	in := randomTensor(1, 2, 3, 3, 1)
	out, err := r.Forward(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Data {
		if math.Abs(out.Data[i]-2*in.Data[i]) > 1e-15 {
			t.Fatal("identity residual incorrect")
		}
	}
}

func TestResidualRejectsShapeChange(t *testing.T) {
	r := Residual{Body: []Layer{MaxPool2D{Kernel: 2, Stride: 2}}}
	if _, err := r.Forward(nil, randomTensor(1, 2, 4, 4, 1)); err == nil {
		t.Fatal("shape-changing residual body accepted")
	}
}

func TestBottleneckBlockShapes(t *testing.T) {
	// Equal channels → residual; unequal → plain sequential.
	blk, err := BottleneckBlock(16, 8, 16, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := blk.(Residual); !ok {
		t.Fatalf("equal-channel bottleneck is %T, want Residual", blk)
	}
	in := randomTensor(1, 16, 6, 6, 2)
	out, err := blk.Forward(ReferenceRunner{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.ShapeEq(in) {
		t.Fatalf("residual bottleneck output %v", out)
	}
	blk2, err := BottleneckBlock(8, 4, 16, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := blk2.(Residual); ok {
		t.Fatal("channel-changing bottleneck wrapped in residual")
	}
	out2, err := blk2.Forward(ReferenceRunner{}, randomTensor(1, 8, 6, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if out2.C != 16 {
		t.Fatalf("bottleneck output channels %d", out2.C)
	}
}

func TestMobileNetV2BlockStrides(t *testing.T) {
	// Stride 2 halves the spatial size and cannot carry a residual.
	blk, err := MobileNetV2Block(16, 6, 24, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := blk.Forward(ReferenceRunner{}, randomTensor(1, 16, 8, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 24 || out.H != 4 || out.W != 4 {
		t.Fatalf("strided block output %v", out)
	}
	// Stride 1, equal channels → residual.
	blk2, err := MobileNetV2Block(16, 6, 16, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := blk2.(Residual); !ok {
		t.Fatalf("stride-1 equal-channel block is %T, want Residual", blk2)
	}
	// Expansion ratio 1 skips the expand conv.
	blk3, err := MobileNetV2Block(16, 1, 8, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	out3, err := blk3.Forward(ReferenceRunner{}, randomTensor(1, 16, 8, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	if out3.C != 8 {
		t.Fatalf("t=1 block output channels %d", out3.C)
	}
}

func TestResNetStyleForward(t *testing.T) {
	net, err := ResNetStyle(3, 8, 2, 16, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.Forward(ReferenceRunner{}, randomTensor(2, 3, 8, 8, 9))
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 2 || out.C != 5 || out.H != 1 || out.W != 1 {
		t.Fatalf("output %v", out)
	}
	if _, err := ResNetStyle(3, 8, 0, 16, 5, 3); err == nil {
		t.Fatal("zero blocks accepted")
	}
}

func TestMobileNetV2StyleForward(t *testing.T) {
	net, err := MobileNetV2Style(3, 32, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.Forward(ReferenceRunner{}, randomTensor(1, 3, 32, 32, 11))
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 10 || out.H != 1 || out.W != 1 {
		t.Fatalf("output %v", out)
	}
}

func TestSequentialComposesAsLayer(t *testing.T) {
	inner := &Sequential{Label: "inner", Layers: []Layer{ReLU{}}}
	outer := &Sequential{Label: "outer", Layers: []Layer{inner, ReLU{}}}
	in := randomTensor(1, 1, 2, 2, 1)
	if _, err := outer.Forward(nil, in); err != nil {
		t.Fatal(err)
	}
	if inner.Name() != "inner" {
		t.Fatal("Sequential.Name")
	}
}
