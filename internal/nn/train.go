package nn

import (
	"fmt"
	"math"

	"kernelselect/internal/gemm"
	"kernelselect/internal/xrand"
)

// Training support: the paper's motivation is machine learning *research* —
// models that are being trained while their topology keeps changing. This
// file implements a multi-layer perceptron with a full backward pass whose
// gradient GEMMs run through the same GEMMRunner as inference. The backward
// shapes are materially different from the forward ones (dW = Xᵀ·dY is a
// K-large TN product; dX = dY·Wᵀ is NT), exercising the transpose kernel
// modes and handing the kernel selector shapes that inference never
// produces.

// MLP is a fully-connected network with ReLU between layers (none after the
// last). Weights[l] is (Sizes[l] × Sizes[l+1]) row-major.
type MLP struct {
	Sizes   []int
	Weights [][]float64
	Biases  [][]float64
}

// NewMLP builds a zero-initialised network with the given layer sizes
// (at least two: input and output).
func NewMLP(sizes ...int) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("nn: non-positive layer size %d", s)
		}
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	for l := 0; l < len(sizes)-1; l++ {
		m.Weights = append(m.Weights, make([]float64, sizes[l]*sizes[l+1]))
		m.Biases = append(m.Biases, make([]float64, sizes[l+1]))
	}
	return m, nil
}

// InitRandom fills the weights Xavier-style.
func (m *MLP) InitRandom(seed uint64) {
	r := xrand.New(seed)
	for l := range m.Weights {
		scale := math.Sqrt(2 / float64(m.Sizes[l]))
		for i := range m.Weights[l] {
			m.Weights[l][i] = r.NormFloat64() * scale
		}
		for i := range m.Biases[l] {
			m.Biases[l][i] = 0
		}
	}
}

// forwardCache holds the activations needed by the backward pass.
type forwardCache struct {
	// acts[0] is the input; acts[l+1] the post-ReLU output of layer l
	// (post-linear for the last layer). pre[l] is layer l's pre-activation.
	acts [][]float64
	pre  [][]float64
	n    int // batch size
}

// forward runs the network on a flattened (n × Sizes[0]) batch.
func (m *MLP) forward(run GEMMRunner, x []float64, n int) (*forwardCache, error) {
	if len(x) != n*m.Sizes[0] {
		return nil, fmt.Errorf("nn: MLP input length %d for batch %d × %d", len(x), n, m.Sizes[0])
	}
	c := &forwardCache{n: n}
	c.acts = append(c.acts, x)
	cur := x
	last := len(m.Weights) - 1
	for l, w := range m.Weights {
		in, out := m.Sizes[l], m.Sizes[l+1]
		z := make([]float64, n*out)
		if err := run.RunGEMM(cur, w, z, gemm.Shape{M: n, K: in, N: out}); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			for j := 0; j < out; j++ {
				z[i*out+j] += m.Biases[l][j]
			}
		}
		c.pre = append(c.pre, z)
		if l == last {
			c.acts = append(c.acts, z)
			cur = z
			continue
		}
		a := make([]float64, len(z))
		for i, v := range z {
			if v > 0 {
				a[i] = v
			}
		}
		c.acts = append(c.acts, a)
		cur = a
	}
	return c, nil
}

// Logits runs inference and returns the (n × classes) output scores.
func (m *MLP) Logits(run GEMMRunner, x []float64, n int) ([]float64, error) {
	c, err := m.forward(run, x, n)
	if err != nil {
		return nil, err
	}
	return c.acts[len(c.acts)-1], nil
}

// Predict returns the argmax class per batch row.
func (m *MLP) Predict(run GEMMRunner, x []float64, n int) ([]int, error) {
	logits, err := m.Logits(run, x, n)
	if err != nil {
		return nil, err
	}
	classes := m.Sizes[len(m.Sizes)-1]
	out := make([]int, n)
	for i := 0; i < n; i++ {
		row := logits[i*classes : (i+1)*classes]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out, nil
}

// SoftmaxCrossEntropy returns the mean loss and the gradient with respect to
// the logits for integer labels.
func SoftmaxCrossEntropy(logits []float64, labels []int, classes int) (float64, []float64) {
	n := len(labels)
	grad := make([]float64, len(logits))
	var loss float64
	for i := 0; i < n; i++ {
		row := logits[i*classes : (i+1)*classes]
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - max)
		}
		logSum := math.Log(sum) + max
		loss += logSum - row[labels[i]]
		for j, v := range row {
			p := math.Exp(v - logSum)
			g := p
			if j == labels[i] {
				g -= 1
			}
			grad[i*classes+j] = g / float64(n)
		}
	}
	return loss / float64(n), grad
}

// Gradients holds per-layer parameter gradients.
type Gradients struct {
	W [][]float64
	B [][]float64
}

// Backward computes parameter gradients for a batch given dLogits (the
// loss gradient at the output). All GEMMs — including the transpose-mode
// products — run through the runner.
func (m *MLP) Backward(run GEMMRunner, cache *forwardCache, dLogits []float64) (*Gradients, error) {
	g := &Gradients{}
	for l := range m.Weights {
		g.W = append(g.W, make([]float64, len(m.Weights[l])))
		g.B = append(g.B, make([]float64, len(m.Biases[l])))
	}
	n := cache.n
	delta := dLogits
	for l := len(m.Weights) - 1; l >= 0; l-- {
		in, out := m.Sizes[l], m.Sizes[l+1]
		x := cache.acts[l]

		// dW = Xᵀ·delta : logical (in × out) product with K = n; A is stored
		// (n × in), i.e. transposed relative to the product — the TN mode.
		if err := runTN(run, x, delta, g.W[l], in, n, out); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			for j := 0; j < out; j++ {
				g.B[l][j] += delta[i*out+j]
			}
		}
		if l == 0 {
			break
		}
		// dX = delta·Wᵀ : (n × in) with B stored (in × out) — the NT mode.
		dx := make([]float64, n*in)
		if err := runNT(run, delta, m.Weights[l], dx, n, out, in); err != nil {
			return nil, err
		}
		// ReLU mask of layer l-1's pre-activation.
		pre := cache.pre[l-1]
		for i, v := range pre {
			if v <= 0 {
				dx[i] = 0
			}
		}
		delta = dx
	}
	return g, nil
}

// SGDStep applies gradients with the given learning rate.
func (m *MLP) SGDStep(g *Gradients, lr float64) {
	for l := range m.Weights {
		for i, d := range g.W[l] {
			m.Weights[l][i] -= lr * d
		}
		for i, d := range g.B[l] {
			m.Biases[l][i] -= lr * d
		}
	}
}

// TrainStep runs one forward/backward/update step and returns the loss.
func (m *MLP) TrainStep(run GEMMRunner, x []float64, labels []int, lr float64) (float64, error) {
	n := len(labels)
	cache, err := m.forward(run, x, n)
	if err != nil {
		return 0, err
	}
	classes := m.Sizes[len(m.Sizes)-1]
	loss, dLogits := SoftmaxCrossEntropy(cache.acts[len(cache.acts)-1], labels, classes)
	grads, err := m.Backward(run, cache, dLogits)
	if err != nil {
		return 0, err
	}
	m.SGDStep(grads, lr)
	return loss, nil
}

// BackwardGEMMShapes lists the gradient GEMM shapes one training step of
// batch n produces — the shapes a tuning dataset for training workloads
// would additionally need to cover.
func (m *MLP) BackwardGEMMShapes(n int) []gemm.Shape {
	var shapes []gemm.Shape
	for l := len(m.Weights) - 1; l >= 0; l-- {
		in, out := m.Sizes[l], m.Sizes[l+1]
		shapes = append(shapes, gemm.Shape{M: in, K: n, N: out}) // dW
		if l > 0 {
			shapes = append(shapes, gemm.Shape{M: n, K: out, N: in}) // dX
		}
	}
	return shapes
}

// transposeRunner is implemented by runners that can execute transpose-mode
// GEMMs natively (the SYCL-backed runners); others fall back to an explicit
// transposition plus a plain product.
type transposeRunner interface {
	RunGEMMEx(a, b, c []float64, s gemm.Shape, opts gemm.MulOpts) error
}

// RunGEMMEx implements transposeRunner for LibraryRunner.
func (r LibraryRunner) RunGEMMEx(a, b, c []float64, s gemm.Shape, opts gemm.MulOpts) error {
	return gemm.MultiplyEx(r.Q, r.Lib.Choose(s), a, b, c, s, opts)
}

// RunGEMMEx implements transposeRunner for FixedRunner.
func (r FixedRunner) RunGEMMEx(a, b, c []float64, s gemm.Shape, opts gemm.MulOpts) error {
	return gemm.MultiplyEx(r.Q, r.Cfg, a, b, c, s, opts)
}

// RunGEMMEx implements transposeRunner for ReferenceRunner.
func (ReferenceRunner) RunGEMMEx(a, b, c []float64, s gemm.Shape, opts gemm.MulOpts) error {
	if err := s.Validate(); err != nil {
		return err
	}
	gemm.ReferenceEx(a, b, c, s, opts)
	return nil
}

// runTN computes c[m×n] = aᵀ·b with a stored (k × m) and b stored (k × n).
func runTN(run GEMMRunner, a, b, c []float64, m, k, n int) error {
	s := gemm.Shape{M: m, K: k, N: n}
	if tr, ok := run.(transposeRunner); ok {
		return tr.RunGEMMEx(a, b, c, s, gemm.MulOpts{TransA: true, Alpha: 1})
	}
	at := transpose(a, k, m)
	return run.RunGEMM(at, b, c, s)
}

// runNT computes c[m×n] = a·bᵀ with a stored (m × k) and b stored (n × k).
func runNT(run GEMMRunner, a, b, c []float64, m, k, n int) error {
	s := gemm.Shape{M: m, K: k, N: n}
	if tr, ok := run.(transposeRunner); ok {
		return tr.RunGEMMEx(a, b, c, s, gemm.MulOpts{TransB: true, Alpha: 1})
	}
	bt := transpose(b, n, k)
	return run.RunGEMM(a, bt, c, s)
}

func transpose(m []float64, rows, cols int) []float64 {
	t := make([]float64, len(m))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			t[j*rows+i] = m[i*cols+j]
		}
	}
	return t
}
