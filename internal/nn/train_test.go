package nn

import (
	"math"
	"testing"

	"kernelselect/internal/gemm"
	"kernelselect/internal/sycl"
	"kernelselect/internal/xrand"
)

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP(4); err == nil {
		t.Fatal("single-layer MLP accepted")
	}
	if _, err := NewMLP(4, 0, 2); err == nil {
		t.Fatal("zero layer size accepted")
	}
	m, err := NewMLP(4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Weights) != 2 || len(m.Weights[0]) != 32 || len(m.Weights[1]) != 24 {
		t.Fatalf("weight shapes wrong: %d layers", len(m.Weights))
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes → loss = ln 4, gradient p − y.
	logits := []float64{0, 0, 0, 0}
	loss, grad := SoftmaxCrossEntropy(logits, []int{2}, 4)
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	for j, g := range grad {
		want := 0.25
		if j == 2 {
			want = -0.75
		}
		if math.Abs(g-want) > 1e-12 {
			t.Fatalf("grad[%d] = %v, want %v", j, g, want)
		}
	}
}

func TestSoftmaxCrossEntropyStable(t *testing.T) {
	// Huge logits must not overflow.
	loss, grad := SoftmaxCrossEntropy([]float64{1e4, -1e4}, []int{0}, 2)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v", loss)
	}
	for _, g := range grad {
		if math.IsNaN(g) {
			t.Fatal("NaN gradient")
		}
	}
}

// TestBackwardMatchesNumericalGradient is the decisive correctness check:
// analytic gradients from the GEMM-based backward pass must match central
// finite differences of the loss.
func TestBackwardMatchesNumericalGradient(t *testing.T) {
	m, _ := NewMLP(3, 5, 4, 2)
	m.InitRandom(7)
	r := xrand.New(9)
	const n = 6
	x := make([]float64, n*3)
	for i := range x {
		x[i] = 2*r.Float64() - 1
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = r.Intn(2)
	}
	run := ReferenceRunner{}

	lossAt := func() float64 {
		logits, err := m.Logits(run, x, n)
		if err != nil {
			t.Fatal(err)
		}
		l, _ := SoftmaxCrossEntropy(logits, labels, 2)
		return l
	}

	cache, err := m.forward(run, x, n)
	if err != nil {
		t.Fatal(err)
	}
	_, dLogits := SoftmaxCrossEntropy(cache.acts[len(cache.acts)-1], labels, 2)
	grads, err := m.Backward(run, cache, dLogits)
	if err != nil {
		t.Fatal(err)
	}

	const eps = 1e-6
	check := func(name string, params, analytic []float64) {
		for i := 0; i < len(params); i += 1 + len(params)/7 { // sample positions
			orig := params[i]
			params[i] = orig + eps
			up := lossAt()
			params[i] = orig - eps
			down := lossAt()
			params[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-analytic[i]) > 1e-5 {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, analytic[i], numeric)
			}
		}
	}
	for l := range m.Weights {
		check("W", m.Weights[l], grads.W[l])
		check("B", m.Biases[l], grads.B[l])
	}
}

func TestTrainStepReducesLossAndLearns(t *testing.T) {
	// Two separable Gaussian classes in 2-D: a small MLP must reach high
	// training accuracy within a few hundred SGD steps.
	m, _ := NewMLP(2, 16, 2)
	m.InitRandom(3)
	r := xrand.New(5)
	const n = 64
	x := make([]float64, n*2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		labels[i] = c
		off := -1.5
		if c == 1 {
			off = 1.5
		}
		x[i*2] = off + 0.4*r.NormFloat64()
		x[i*2+1] = off + 0.4*r.NormFloat64()
	}
	run := ReferenceRunner{}
	first, err := m.TrainStep(run, x, labels, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for step := 0; step < 300; step++ {
		if last, err = m.TrainStep(run, x, labels, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
	pred, err := m.Predict(run, x, n)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range pred {
		if pred[i] == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / n; acc < 0.95 {
		t.Fatalf("training accuracy %v < 0.95", acc)
	}
}

// TestBackwardRunnersAgree: the transpose-capable SYCL runner must produce
// the same gradients as the reference (which also has the fast path) and as
// a plain runner forced through the explicit-transposition fallback.
func TestBackwardRunnersAgree(t *testing.T) {
	m, _ := NewMLP(4, 6, 3)
	m.InitRandom(11)
	r := xrand.New(13)
	const n = 5
	x := make([]float64, n*4)
	for i := range x {
		x[i] = 2*r.Float64() - 1
	}
	labels := []int{0, 1, 2, 1, 0}

	grads := func(run GEMMRunner) *Gradients {
		cache, err := m.forward(run, x, n)
		if err != nil {
			t.Fatal(err)
		}
		_, dLogits := SoftmaxCrossEntropy(cache.acts[len(cache.acts)-1], labels, 3)
		g, err := m.Backward(run, cache, dLogits)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	q := sycl.NewQueue(sycl.HostDevice())
	ref := grads(ReferenceRunner{})
	fixed := grads(FixedRunner{Q: q, Cfg: gemm.Config{TileRows: 2, TileCols: 2, AccDepth: 2, WG: gemm.WorkGroup{R: 8, C: 8}}})
	plain := grads(plainRunner{})
	for l := range ref.W {
		for i := range ref.W[l] {
			if math.Abs(ref.W[l][i]-fixed.W[l][i]) > 1e-9 {
				t.Fatalf("fixed runner gradient differs at layer %d", l)
			}
			if math.Abs(ref.W[l][i]-plain.W[l][i]) > 1e-9 {
				t.Fatalf("fallback-path gradient differs at layer %d", l)
			}
		}
	}
}

// plainRunner deliberately lacks RunGEMMEx to exercise the explicit
// transposition fallback in runTN/runNT.
type plainRunner struct{}

func (plainRunner) RunGEMM(a, b, c []float64, s gemm.Shape) error {
	gemm.Reference(a, b, c, s)
	return nil
}

func TestBackwardGEMMShapes(t *testing.T) {
	m, _ := NewMLP(100, 50, 10)
	shapes := m.BackwardGEMMShapes(32)
	want := []gemm.Shape{
		{M: 50, K: 32, N: 10},  // dW layer 1
		{M: 32, K: 10, N: 50},  // dX layer 1
		{M: 100, K: 32, N: 50}, // dW layer 0
	}
	if len(shapes) != len(want) {
		t.Fatalf("shapes = %v", shapes)
	}
	for i := range want {
		if shapes[i] != want[i] {
			t.Fatalf("shape %d = %v, want %v", i, shapes[i], want[i])
		}
	}
}

func TestLogitsValidatesInput(t *testing.T) {
	m, _ := NewMLP(4, 2)
	if _, err := m.Logits(ReferenceRunner{}, make([]float64, 7), 2); err == nil {
		t.Fatal("bad input length accepted")
	}
}
