package nn

import (
	"fmt"

	"kernelselect/internal/core"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sycl"
	"kernelselect/internal/workload"
	"kernelselect/internal/xrand"
)

// GEMMRunner abstracts how the network's lowered matrix multiplies execute:
// through the kernel-selection library, through one fixed kernel
// configuration, or through the naive reference (for testing).
type GEMMRunner interface {
	RunGEMM(a, b, c []float64, s gemm.Shape) error
}

// BatchGEMMRunner is an optional extension of GEMMRunner for same-shape
// GEMM batches (the Winograd lowering produces 16 of them); implementations
// may run entries concurrently.
type BatchGEMMRunner interface {
	GEMMRunner
	RunGEMMBatch(batch []gemm.Batch, s gemm.Shape) error
}

// LibraryRunner dispatches every GEMM through a tuned kernel-selection
// library — the deployment configuration the paper targets.
type LibraryRunner struct {
	Q   *sycl.Queue
	Lib *core.Library
}

// RunGEMM implements GEMMRunner.
func (r LibraryRunner) RunGEMM(a, b, c []float64, s gemm.Shape) error {
	_, err := r.Lib.Multiply(r.Q, a, b, c, s)
	return err
}

// RunGEMMBatch implements BatchGEMMRunner: one selection decision for the
// shared shape, then a concurrent batch with the chosen kernel.
func (r LibraryRunner) RunGEMMBatch(batch []gemm.Batch, s gemm.Shape) error {
	return gemm.MultiplyBatch(r.Q, r.Lib.Choose(s), batch, s)
}

// FixedRunner runs every GEMM with one kernel configuration — the
// "no selection" baseline.
type FixedRunner struct {
	Q   *sycl.Queue
	Cfg gemm.Config
}

// RunGEMM implements GEMMRunner.
func (r FixedRunner) RunGEMM(a, b, c []float64, s gemm.Shape) error {
	return gemm.Multiply(r.Q, r.Cfg, a, b, c, s)
}

// RunGEMMBatch implements BatchGEMMRunner.
func (r FixedRunner) RunGEMMBatch(batch []gemm.Batch, s gemm.Shape) error {
	return gemm.MultiplyBatch(r.Q, r.Cfg, batch, s)
}

// ReferenceRunner computes GEMMs with the naive triple loop (test oracle).
type ReferenceRunner struct{}

// RunGEMM implements GEMMRunner.
func (ReferenceRunner) RunGEMM(a, b, c []float64, s gemm.Shape) error {
	if err := s.Validate(); err != nil {
		return err
	}
	gemm.Reference(a, b, c, s)
	return nil
}

// Conv2D is a dense 2-D convolution layer. Geometry reuses the layer
// description from internal/workload, tying the executable model to the
// shape-extraction tables. Weights are stored GEMM-ready as a
// (InC·KH·KW) × OutC matrix whose row index is the im2col patch offset
// c·KH·KW + kh·KW + kw.
type Conv2D struct {
	Geom    workload.Conv
	Weights []float64 // (InC*KH*KW) × OutC, row-major
	Bias    []float64 // OutC
}

// NewConv2D allocates a zero-initialised convolution for the geometry.
func NewConv2D(geom workload.Conv) (*Conv2D, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	k := geom.InC * geom.KH * geom.KW
	return &Conv2D{
		Geom:    geom,
		Weights: make([]float64, k*geom.OutC),
		Bias:    make([]float64, geom.OutC),
	}, nil
}

// InitRandom fills weights and bias with small deterministic values
// (scaled uniform, Xavier-style).
func (l *Conv2D) InitRandom(seed uint64) {
	r := xrand.New(seed)
	k := l.Geom.InC * l.Geom.KH * l.Geom.KW
	scale := 1 / float64(k)
	for i := range l.Weights {
		l.Weights[i] = (2*r.Float64() - 1) * scale
	}
	for i := range l.Bias {
		l.Bias[i] = (2*r.Float64() - 1) * 0.01
	}
}

// Name implements Layer.
func (l *Conv2D) Name() string {
	return fmt.Sprintf("conv%dx%d(%d→%d)", l.Geom.KH, l.Geom.KW, l.Geom.InC, l.Geom.OutC)
}

// checkInput validates the incoming tensor against the layer geometry.
func (l *Conv2D) checkInput(in *Tensor) error {
	if in.C != l.Geom.InC || in.H != l.Geom.InH || in.W != l.Geom.InW {
		return fmt.Errorf("nn: %s expects %dx%dx%d input, got %v", l.Name(), l.Geom.InC, l.Geom.InH, l.Geom.InW, in)
	}
	return nil
}

// Im2col materialises the patch matrix of in: one row per output position
// (n, oh, ow), one column per patch element (c, kh, kw).
func (l *Conv2D) Im2col(in *Tensor) ([]float64, gemm.Shape) {
	g := l.Geom
	oh, ow := g.OutH(), g.OutW()
	s := g.Im2colShape(in.N)
	cols := make([]float64, s.M*s.K)
	row := 0
	for n := 0; n < in.N; n++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				base := row * s.K
				idx := 0
				for c := 0; c < g.InC; c++ {
					for kh := 0; kh < g.KH; kh++ {
						ih := y*g.StrideH - g.PadH + kh
						for kw := 0; kw < g.KW; kw++ {
							iw := x*g.StrideW - g.PadW + kw
							cols[base+idx] = in.AtPadded(n, c, ih, iw)
							idx++
						}
					}
				}
				row++
			}
		}
	}
	return cols, s
}

// Forward computes the convolution by im2col lowering: the patch matrix
// times the weight matrix, executed through the runner, plus bias.
func (l *Conv2D) Forward(run GEMMRunner, in *Tensor) (*Tensor, error) {
	if err := l.checkInput(in); err != nil {
		return nil, err
	}
	g := l.Geom
	cols, s := l.Im2col(in)
	flat := make([]float64, s.M*s.N)
	if err := run.RunGEMM(cols, l.Weights, flat, s); err != nil {
		return nil, err
	}

	oh, ow := g.OutH(), g.OutW()
	out := NewTensor(in.N, g.OutC, oh, ow)
	row := 0
	for n := 0; n < in.N; n++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				base := row * s.N
				for c := 0; c < g.OutC; c++ {
					out.Set(n, c, y, x, flat[base+c]+l.Bias[c])
				}
				row++
			}
		}
	}
	return out, nil
}

// ForwardDirect computes the convolution with a straightforward seven-loop
// nest — the correctness oracle for both lowerings.
func (l *Conv2D) ForwardDirect(in *Tensor) (*Tensor, error) {
	if err := l.checkInput(in); err != nil {
		return nil, err
	}
	g := l.Geom
	oh, ow := g.OutH(), g.OutW()
	out := NewTensor(in.N, g.OutC, oh, ow)
	for n := 0; n < in.N; n++ {
		for oc := 0; oc < g.OutC; oc++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					acc := l.Bias[oc]
					for c := 0; c < g.InC; c++ {
						for kh := 0; kh < g.KH; kh++ {
							ih := y*g.StrideH - g.PadH + kh
							for kw := 0; kw < g.KW; kw++ {
								iw := x*g.StrideW - g.PadW + kw
								w := l.Weights[(c*g.KH*g.KW+kh*g.KW+kw)*g.OutC+oc]
								acc += w * in.AtPadded(n, c, ih, iw)
							}
						}
					}
					out.Set(n, oc, y, x, acc)
				}
			}
		}
	}
	return out, nil
}
