package core

import (
	"testing"

	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
	"kernelselect/internal/workload"
	"kernelselect/internal/xrand"
)

// TestCompileSelectorAgreement trains every compilable Table-I selector on
// the full dataset shape mix and asserts the compiled form returns the
// identical index for every dataset shape plus a random probe sweep — the
// byte-identical-decision guarantee the serving daemon relies on.
func TestCompileSelectorAgreement(t *testing.T) {
	model := sim.New(device.R9Nano())
	shapes, _ := workload.DatasetShapes()
	ds := dataset.Build(model, shapes, gemm.AllConfigs()[:160])
	selected := DecisionTree{}.Prune(ds, 8, 42)

	for _, trainer := range []SelectorTrainer{
		DecisionTreeSelector{},
		RandomForestSelector{NumTrees: 40},
		KNNSelector{K: 1},
		KNNSelector{K: 3},
		LinearSVMSelector{},
	} {
		sel := trainer.Train(ds, selected, 42)
		cs, ok := CompileSelector(sel)
		if !ok {
			t.Fatalf("%s: no compiled form", trainer.Name())
		}
		if cs.Name() != sel.Name() {
			t.Errorf("%s: compiled name %q", sel.Name(), cs.Name())
		}
		for _, s := range shapes {
			f := s.Features()
			if got, want := cs.Select(f), sel.Select(f); got != want {
				t.Fatalf("%s shape %v: compiled %d, original %d", sel.Name(), s, got, want)
			}
		}
		rng := xrand.New(7)
		for i := 0; i < 500; i++ {
			f := []float64{
				1 + rng.Float64()*4096,
				1 + rng.Float64()*4096,
				1 + rng.Float64()*4096,
			}
			if got, want := cs.Select(f), sel.Select(f); got != want {
				t.Fatalf("%s probe %v: compiled %d, original %d", sel.Name(), f, got, want)
			}
		}
	}
}

func TestCompileSelectorUnsupported(t *testing.T) {
	model := sim.New(device.R9Nano())
	shapes, _ := workload.DatasetShapes()
	ds := dataset.Build(model, shapes[:24], gemm.AllConfigs()[:80])
	selected := DecisionTree{}.Prune(ds, 4, 42)

	if _, ok := CompileSelector(RadialSVMSelector{}.Train(ds, selected, 42)); ok {
		t.Error("RadialSVM should have no compiled form")
	}
	if _, ok := CompileSelector(StaticSelector{}); ok {
		t.Error("StaticSelector should have no compiled form")
	}
	// Compiling a compiled selector is idempotent.
	cs, ok := CompileSelector(DecisionTreeSelector{}.Train(ds, selected, 42))
	if !ok {
		t.Fatal("tree did not compile")
	}
	if again, ok := CompileSelector(cs); !ok || again != cs {
		t.Error("re-compiling a CompiledSelector should return it unchanged")
	}
}

// TestCompiledChooserMatchesLibrary pins the serving contract: the chooser
// the daemon installs per generation returns lib.ChooseIndex for every
// dataset shape, and allocates nothing.
func TestCompiledChooserMatchesLibrary(t *testing.T) {
	model := sim.New(device.IntegratedGen9())
	shapes, _ := workload.DatasetShapes()
	ds := dataset.Build(model, shapes, gemm.AllConfigs()[:160])
	lib := BuildLibrary(ds, DecisionTree{}, DecisionTreeSelector{}, 8, 42)

	choose, ok := lib.CompiledChooser()
	if !ok {
		t.Fatal("tree library has no compiled chooser")
	}
	for _, s := range shapes {
		if got, want := choose(s), lib.ChooseIndex(s); got != want {
			t.Fatalf("shape %v: compiled chooser %d, library %d", s, got, want)
		}
	}
	s := shapes[0]
	if allocs := testing.AllocsPerRun(200, func() { _ = choose(s) }); allocs != 0 {
		t.Errorf("compiled chooser allocates %.1f objects per call, want 0", allocs)
	}
}
