package core

import (
	"math"

	"kernelselect/internal/dataset"
)

// Greedy is a pruning baseline beyond the paper's five methods: forward
// selection that at each step adds the configuration maximising the
// training-set achievable score (the geometric mean of per-shape best
// normalized performance). Since the achievable score is monotone
// submodular in the selection, greedy forward selection carries the classic
// (1 − 1/e) approximation guarantee for this objective — it is the natural
// "how much does clustering leave on the table?" comparison for Figure 4.
type Greedy struct{}

// Name implements Pruner.
func (Greedy) Name() string { return "greedy-cover" }

// Prune implements Pruner.
func (Greedy) Prune(train *dataset.PerfDataset, n int, _ uint64) []int {
	validatePruneArgs(train, n)
	nShapes := train.NumShapes()
	// bestSoFar[i] is the best normalized score shape i achieves with the
	// current selection.
	bestSoFar := make([]float64, nShapes)
	selected := make([]int, 0, n)
	chosen := make([]bool, train.NumConfigs())

	for len(selected) < n {
		bestCfg, bestObj := -1, math.Inf(-1)
		for c := 0; c < train.NumConfigs(); c++ {
			if chosen[c] {
				continue
			}
			// Log-geomean of max(bestSoFar, column c).
			var obj float64
			for i := 0; i < nShapes; i++ {
				v := train.Norm.At(i, c)
				if bestSoFar[i] > v {
					v = bestSoFar[i]
				}
				obj += math.Log(v)
			}
			if obj > bestObj {
				bestCfg, bestObj = c, obj
			}
		}
		chosen[bestCfg] = true
		selected = append(selected, bestCfg)
		for i := 0; i < nShapes; i++ {
			if v := train.Norm.At(i, bestCfg); v > bestSoFar[i] {
				bestSoFar[i] = v
			}
		}
	}
	return selected
}
