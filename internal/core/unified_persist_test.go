package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kernelselect/internal/gemm"
	"kernelselect/internal/mat"
	"kernelselect/internal/ml/tree"
)

// unifiedWidth is the augmented feature width the unified tests train at:
// the three shape dimensions plus a synthetic four-wide device vector. The
// persistence layer must carry any width faithfully, not just the device
// package's real one.
const unifiedTestWidth = 7

// unifiedTestDevices are the device feature vectors the test selector trains
// on; distinct enough that the fitted tree actually splits on them.
var unifiedTestDevices = [][]float64{
	{64, 4096, 512, 8192},
	{24, 384, 45, 1024},
	{12, 96, 13, 256},
}

// buildUnifiedTestLibrary fits a real decision tree on (shape, device)
// rows — labels depend on both halves of the vector — and wraps it as a
// unified library. Built by hand because the portability trainer cannot be
// imported from inside package core.
func buildUnifiedTestLibrary(t testing.TB) *Library {
	t.Helper()
	shapes := []gemm.Shape{
		{M: 1, K: 4096, N: 1000}, {M: 3136, K: 64, N: 64}, {M: 784, K: 1152, N: 256},
		{M: 49, K: 4608, N: 512}, {M: 12544, K: 27, N: 32}, {M: 196, K: 512, N: 512},
	}
	cfgs := gemm.AllConfigs()[:4]
	var rows [][]float64
	var labels []int
	for d, dev := range unifiedTestDevices {
		for _, s := range shapes {
			rows = append(rows, append(s.Features(), dev...))
			labels = append(labels, (d+s.M)%len(cfgs))
		}
	}
	clf := tree.FitClassifier(mat.FromRows(rows), labels, len(cfgs), tree.Options{MaxDepth: 8, Seed: 7})
	lib, err := NewUnifiedLibrary(cfgs, NewTreeSelector(clf))
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// TestUnifiedLibraryRoundTrip is the artifact contract: a unified library
// survives SaveUnifiedLibrary/LoadLibrary with its marker, width, training
// devices, and — the part that matters — its per-device dispatch intact.
func TestUnifiedLibraryRoundTrip(t *testing.T) {
	lib := buildUnifiedTestLibrary(t)
	devices := []string{"amd-r9-nano", "intel-gen9", "arm-mali-g72"}

	var buf bytes.Buffer
	if err := SaveUnifiedLibrary(&buf, lib, devices); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	for _, frag := range []string{`"unified":true`, `"features":7`, `"devices":`} {
		if !strings.Contains(raw, frag) {
			t.Errorf("serialized unified artifact missing %s", frag)
		}
	}

	got, err := LoadLibrary(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Unified() || got.NumFeatures() != unifiedTestWidth {
		t.Fatalf("reloaded: unified=%v width=%d, want true/%d", got.Unified(), got.NumFeatures(), unifiedTestWidth)
	}
	if len(got.TrainingDevices()) != len(devices) || got.TrainingDevices()[0] != devices[0] {
		t.Fatalf("training devices %v, want %v", got.TrainingDevices(), devices)
	}
	probes := []gemm.Shape{{M: 1, K: 4096, N: 1000}, {M: 3136, K: 64, N: 64}, {M: 5, K: 5, N: 5}}
	for _, dev := range unifiedTestDevices {
		for _, s := range probes {
			if a, b := got.UnifiedChooseIndex(s, dev), lib.UnifiedChooseIndex(s, dev); a != b {
				t.Fatalf("dispatch diverged after round trip: %v on %v: %d != %d", s, dev, a, b)
			}
		}
	}
}

// SaveLibrary (the untagged writer) must also preserve the unified marker —
// the marker belongs to the library, not to the device-tagged save path.
func TestUnifiedMarkerSurvivesPlainSave(t *testing.T) {
	lib := buildUnifiedTestLibrary(t)
	var buf bytes.Buffer
	if err := SaveLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Unified() || got.NumFeatures() != unifiedTestWidth {
		t.Fatalf("plain save dropped unified metadata: unified=%v width=%d", got.Unified(), got.NumFeatures())
	}
}

// SaveUnifiedLibrary must refuse shape-only libraries: a specialist artifact
// with a unified marker would lie about its dispatch contract.
func TestSaveUnifiedRejectsSpecialist(t *testing.T) {
	cfgs := gemm.AllConfigs()[:2]
	lib, err := NewLibrary(cfgs, StaticSelector{Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveUnifiedLibrary(&bytes.Buffer{}, lib, []string{"a"}); err == nil {
		t.Fatal("shape-only library accepted by SaveUnifiedLibrary")
	}
}

// doctor rewrites one top-level field of a saved artifact.
func doctor(t *testing.T, raw []byte, field string, value any) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(value)
	if err != nil {
		t.Fatal(err)
	}
	m[field] = enc
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestUnifiedHeaderValidation walks the width/marker lattice: the declared
// width must match the payload, the marker must match the width, and legacy
// untagged artifacts keep loading as shape-only.
func TestUnifiedHeaderValidation(t *testing.T) {
	lib := buildUnifiedTestLibrary(t)
	var buf bytes.Buffer
	if err := SaveUnifiedLibrary(&buf, lib, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	unified := buf.Bytes()

	// Declared width disagrees with the selector payload → rejected.
	if _, err := LoadLibrary(bytes.NewReader(doctor(t, unified, "features", 12))); err == nil {
		t.Error("width 12 header over a width-7 payload accepted")
	}
	// Wide width with the marker stripped → ambiguous, rejected.
	if _, err := LoadLibrary(bytes.NewReader(doctor(t, unified, "unified", false))); err == nil {
		t.Error("wide artifact without the unified marker accepted")
	}
	// Unified marker on a shape-only width → rejected.
	shapeOnly := BuildLibrary(testDataset(t), DecisionTree{}, DecisionTreeSelector{}, 4, 3)
	var sbuf bytes.Buffer
	if err := SaveLibrary(&sbuf, shapeOnly); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLibrary(bytes.NewReader(doctor(t, sbuf.Bytes(), "unified", true))); err == nil {
		t.Error("unified marker on a width-3 artifact accepted")
	}
	// Legacy artifact with no width tag at all → loads as shape-only width 3.
	legacy := doctor(t, sbuf.Bytes(), "features", 0)
	legacy = bytes.Replace(legacy, []byte(`"features":0,`), nil, 1)
	legacy = bytes.Replace(legacy, []byte(`,"features":0`), nil, 1)
	got, err := LoadLibrary(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy untagged artifact rejected: %v", err)
	}
	if got.Unified() || got.NumFeatures() != 3 {
		t.Fatalf("legacy artifact loaded as unified=%v width=%d, want false/3", got.Unified(), got.NumFeatures())
	}
}

// The strict loader serves single-device specialists only: it must refuse
// both untagged legacy artifacts and unified ones.
func TestUnifiedStrictLoaderRefusals(t *testing.T) {
	lib := buildUnifiedTestLibrary(t)
	var ubuf bytes.Buffer
	if err := SaveUnifiedLibrary(&ubuf, lib, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLibraryForDeviceStrict(bytes.NewReader(ubuf.Bytes()), "a"); err == nil {
		t.Error("strict loader accepted a unified artifact")
	}

	shapeOnly := BuildLibrary(testDataset(t), DecisionTree{}, DecisionTreeSelector{}, 4, 3)
	var sbuf bytes.Buffer
	if err := SaveLibrary(&sbuf, shapeOnly); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLibraryForDeviceStrict(bytes.NewReader(sbuf.Bytes()), "dev"); err == nil {
		t.Error("strict loader accepted an untagged artifact")
	}
	var tagged bytes.Buffer
	if err := SaveLibraryForDevice(&tagged, shapeOnly, "dev"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLibraryForDeviceStrict(bytes.NewReader(tagged.Bytes()), "dev"); err != nil {
		t.Errorf("strict loader rejected a properly tagged specialist: %v", err)
	}
}

// TestUnifiedCompiledChooserAgreement pins the serving fast path: the
// compiled unified chooser must agree with interpreted dispatch on every
// (shape, device) pair, including device vectors the tree never saw.
func TestUnifiedCompiledChooserAgreement(t *testing.T) {
	lib := buildUnifiedTestLibrary(t)
	probes := []gemm.Shape{
		{M: 1, K: 4096, N: 1000}, {M: 3136, K: 64, N: 64}, {M: 784, K: 1152, N: 256},
		{M: 5, K: 5, N: 5}, {M: 1 << 18, K: 3, N: 64},
	}
	heldOut := []float64{40, 2048, 256, 4096}
	for _, dev := range append(unifiedTestDevices, heldOut) {
		compiled, ok := lib.UnifiedCompiledChooser(dev)
		if !ok {
			t.Fatalf("unified tree selector did not compile for %v", dev)
		}
		for _, s := range probes {
			if got, want := compiled(s), lib.UnifiedChooseIndex(s, dev); got != want {
				t.Fatalf("compiled %d != interpreted %d on %v for %v", got, want, s, dev)
			}
		}
	}
	// Wrong device-vector width must not compile.
	if _, ok := lib.UnifiedCompiledChooser([]float64{1, 2}); ok {
		t.Error("compiled chooser accepted a wrong-width device vector")
	}
}
