package core

import (
	"fmt"

	"kernelselect/internal/dataset"
)

// PipelineResult captures one end-to-end run: prune on the training split,
// train a selector, evaluate both the pruning ceiling and the selector on
// the test split.
type PipelineResult struct {
	PrunerName   string
	SelectorName string
	NumConfigs   int   // requested library size
	Selected     []int // chosen configuration columns

	// CeilingPct is the best achievable test score with the selected
	// configurations (Fig 4's quantity); SelectorPct is what the trained
	// selector actually achieves (Table I's quantity). TrainPct is the
	// selector score on the training split, for overfit inspection.
	CeilingPct  float64
	SelectorPct float64
	TrainPct    float64
}

// RunPipeline executes prune → train → evaluate with a fixed seed.
func RunPipeline(train, test *dataset.PerfDataset, pruner Pruner, trainer SelectorTrainer, n int, seed uint64) PipelineResult {
	if train.NumConfigs() != test.NumConfigs() {
		panic(fmt.Sprintf("core: train has %d configs, test %d", train.NumConfigs(), test.NumConfigs()))
	}
	selected := pruner.Prune(train, n, seed)
	sel := trainer.Train(train, selected, seed)
	return PipelineResult{
		PrunerName:   pruner.Name(),
		SelectorName: sel.Name(),
		NumConfigs:   n,
		Selected:     selected,
		CeilingPct:   AchievableScore(test, selected),
		SelectorPct:  SelectorScore(test, selected, sel),
		TrainPct:     SelectorScore(train, selected, sel),
	}
}
