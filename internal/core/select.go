package core

import (
	"fmt"
	"math"

	"kernelselect/internal/dataset"
	"kernelselect/internal/mat"
	"kernelselect/internal/ml/forest"
	"kernelselect/internal/ml/knn"
	"kernelselect/internal/ml/metrics"
	"kernelselect/internal/ml/scale"
	"kernelselect/internal/ml/svm"
	"kernelselect/internal/ml/tree"
)

// Selector picks, for a GEMM's feature vector (M, K, N), an index into the
// pruned configuration list it was trained for. This is the runtime piece a
// compute library ships (Section IV of the paper).
type Selector interface {
	Name() string
	Select(features []float64) int
}

// SelectorTrainer fits a Selector on the training dataset restricted to the
// given configuration selection.
type SelectorTrainer interface {
	Name() string
	Train(train *dataset.PerfDataset, selected []int, seed uint64) Selector
}

// TrainLabels computes the classification target: for each shape in ds, the
// index (into selected) of the configuration with the best normalized
// performance.
func TrainLabels(ds *dataset.PerfDataset, selected []int) []int {
	if len(selected) == 0 {
		panic("core: TrainLabels with empty selection")
	}
	labels := make([]int, ds.NumShapes())
	for i := range labels {
		row := ds.Norm.Row(i)
		best := 0
		for k, c := range selected {
			if row[c] > row[selected[best]] {
				best = k
			}
		}
		labels[i] = best
	}
	return labels
}

// SelectorScore evaluates a trained selector on a dataset: the geometric
// mean over shapes of the normalized performance of the configuration the
// selector picks, as a percentage of the absolute optimum (the metric of
// Table I).
func SelectorScore(ds *dataset.PerfDataset, selected []int, sel Selector) float64 {
	scores := make([]float64, ds.NumShapes())
	for i := range scores {
		k := sel.Select(ds.Shapes[i].Features())
		if k < 0 || k >= len(selected) {
			panic(fmt.Sprintf("core: selector %q returned %d for %d configurations", sel.Name(), k, len(selected)))
		}
		scores[i] = ds.Norm.At(i, selected[k])
	}
	return 100 * metrics.GeoMean(scores)
}

// ---------------------------------------------------------------------------
// Decision tree selector
// ---------------------------------------------------------------------------

// DecisionTreeSelector trains a CART classifier on raw (M, K, N) features —
// the paper's recommended deployment selector.
type DecisionTreeSelector struct {
	MaxDepth       int // 0 = unlimited
	MinSamplesLeaf int // 0 → 1
}

// Name implements SelectorTrainer.
func (DecisionTreeSelector) Name() string { return "DecisionTree" }

type treeSelector struct {
	c *tree.Classifier
}

func (s treeSelector) Name() string                  { return "DecisionTree" }
func (s treeSelector) Select(features []float64) int { return s.c.Predict(features) }

// Train implements SelectorTrainer.
func (d DecisionTreeSelector) Train(train *dataset.PerfDataset, selected []int, seed uint64) Selector {
	labels := TrainLabels(train, selected)
	c := tree.FitClassifier(train.Features(), labels, len(selected), tree.Options{
		MaxDepth:       d.MaxDepth,
		MinSamplesLeaf: d.MinSamplesLeaf,
		Seed:           seed,
	})
	return treeSelector{c: c}
}

// NewTreeSelector wraps an already-fitted CART classifier as a runtime
// Selector — the constructor internal/portability uses to package its
// unified (device-feature-augmented) classifier into a servable library.
func NewTreeSelector(c *tree.Classifier) Selector { return treeSelector{c: c} }

// Tree exposes the fitted classifier of a tree selector (for code
// generation); it returns false if sel is not a tree selector.
func Tree(sel Selector) (*tree.Classifier, bool) {
	ts, ok := sel.(treeSelector)
	if !ok {
		return nil, false
	}
	return ts.c, true
}

// Forest exposes the fitted ensemble of a random-forest selector (for
// feature-importance inspection); it returns false otherwise.
func Forest(sel Selector) (*forest.Classifier, bool) {
	fs, ok := sel.(forestSelector)
	if !ok {
		return nil, false
	}
	return fs.f, true
}

// ---------------------------------------------------------------------------
// Random forest selector
// ---------------------------------------------------------------------------

// RandomForestSelector bags CART trees over bootstrap resamples.
type RandomForestSelector struct {
	NumTrees int // 0 → 100
}

// Name implements SelectorTrainer.
func (RandomForestSelector) Name() string { return "RandomForest" }

type forestSelector struct {
	f *forest.Classifier
}

func (s forestSelector) Name() string                  { return "RandomForest" }
func (s forestSelector) Select(features []float64) int { return s.f.Predict(features) }

// Train implements SelectorTrainer.
func (r RandomForestSelector) Train(train *dataset.PerfDataset, selected []int, seed uint64) Selector {
	labels := TrainLabels(train, selected)
	f := forest.FitClassifier(train.Features(), labels, len(selected), forest.Options{
		NumTrees: r.NumTrees,
		Seed:     seed,
	})
	return forestSelector{f: f}
}

// ---------------------------------------------------------------------------
// k-NN selectors
// ---------------------------------------------------------------------------

// KNNSelector is a k-nearest-neighbour selector on raw features
// (scikit-learn's default configuration, as in the paper's comparison).
type KNNSelector struct {
	K int // 0 → 1
}

// Name implements SelectorTrainer.
func (k KNNSelector) Name() string {
	n := k.K
	if n <= 0 {
		n = 1
	}
	return fmt.Sprintf("%dNearestNeighbor", n)
}

type knnSelector struct {
	c    *knn.Classifier
	name string
}

func (s knnSelector) Name() string                  { return s.name }
func (s knnSelector) Select(features []float64) int { return s.c.Predict(features) }

// Train implements SelectorTrainer.
func (k KNNSelector) Train(train *dataset.PerfDataset, selected []int, _ uint64) Selector {
	kk := k.K
	if kk <= 0 {
		kk = 1
	}
	if kk > train.NumShapes() {
		kk = train.NumShapes()
	}
	labels := TrainLabels(train, selected)
	c := knn.Fit(train.Features(), labels, len(selected), kk)
	return knnSelector{c: c, name: k.Name()}
}

// ---------------------------------------------------------------------------
// SVM selectors
// ---------------------------------------------------------------------------

// LinearSVMSelector trains a one-vs-rest linear SVM. Features are
// log-transformed and standardized internally: matrix sizes live on a
// multiplicative scale spanning six orders of magnitude, so the linear
// decision boundaries the paper's LinearSVC finds correspond to planes in
// log-size space; the raw-scale problem is also too ill-conditioned for the
// SMO dual solver. The preprocessing is part of this selector, not of the
// shared pipeline (the tree, forest and k-NN selectors see raw features, as
// scikit-learn defaults do).
type LinearSVMSelector struct {
	C float64 // box constraint; 0 → 1
}

// Name implements SelectorTrainer.
func (LinearSVMSelector) Name() string { return "LinearSVM" }

type linearSVMSelector struct {
	m  *svm.Linear
	sc *scale.Scaler
}

func logFeatures(f []float64) []float64 {
	out := make([]float64, len(f))
	for i, v := range f {
		out[i] = math.Log(v)
	}
	return out
}

func (s linearSVMSelector) Name() string { return "LinearSVM" }
func (s linearSVMSelector) Select(features []float64) int {
	return s.m.Predict(s.sc.TransformRow(logFeatures(features)))
}

// Train implements SelectorTrainer.
func (l LinearSVMSelector) Train(train *dataset.PerfDataset, selected []int, seed uint64) Selector {
	labels := TrainLabels(train, selected)
	raw := train.Features()
	lx := mat.NewDense(raw.Rows(), raw.Cols())
	for i := 0; i < raw.Rows(); i++ {
		copy(lx.Row(i), logFeatures(raw.Row(i)))
	}
	sc, x := scale.FitTransform(lx)
	m := svm.FitLinear(x, labels, len(selected), svm.LinearOptions{
		C:    l.C,
		Seed: seed,
	})
	return linearSVMSelector{m: m, sc: sc}
}

// RadialSVMSelector trains a one-vs-rest RBF-kernel SVM on raw features with
// the paper-era scikit-learn default gamma (1/n_features). On matrix-size
// features this is the degenerate regime that collapses to majority-class
// prediction — reproducing the RadialSVM row of Table I by mechanism, not by
// fiat. Set Gamma explicitly to use the selector non-degenerately.
type RadialSVMSelector struct {
	C     float64 // box constraint; 0 → 1
	Gamma float64 // 0 → 1/n_features (the degenerate paper-era default)
}

// Name implements SelectorTrainer.
func (RadialSVMSelector) Name() string { return "RadialSVM" }

type radialSVMSelector struct {
	m *svm.RBF
}

func (s radialSVMSelector) Name() string                  { return "RadialSVM" }
func (s radialSVMSelector) Select(features []float64) int { return s.m.Predict(features) }

// Train implements SelectorTrainer.
func (r RadialSVMSelector) Train(train *dataset.PerfDataset, selected []int, seed uint64) Selector {
	labels := TrainLabels(train, selected)
	m := svm.FitRBF(train.Features(), labels, len(selected), svm.RBFOptions{
		C:     r.C,
		Gamma: r.Gamma,
		Seed:  seed,
	})
	return radialSVMSelector{m: m}
}

// ---------------------------------------------------------------------------

// StaticSelector always returns the same index — the "just ship the overall
// best kernel" strawman, useful as a baseline and for testing.
type StaticSelector struct {
	Index int
}

// Name implements Selector.
func (StaticSelector) Name() string { return "Static" }

// Select implements Selector.
func (s StaticSelector) Select([]float64) int { return s.Index }

// AllSelectorTrainers returns Table I's six classifiers in the paper's order.
func AllSelectorTrainers() []SelectorTrainer {
	return []SelectorTrainer{
		DecisionTreeSelector{},
		RandomForestSelector{},
		KNNSelector{K: 1},
		KNNSelector{K: 3},
		LinearSVMSelector{},
		RadialSVMSelector{},
	}
}
