package core

import (
	"bytes"
	"strings"
	"testing"

	"kernelselect/internal/gemm"
)

// roundTrip saves and reloads a library, then checks the reloaded selector
// agrees with the original on every test shape.
func roundTrip(t *testing.T, lib *Library, probes []gemm.Shape) *Library {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveLibrary(&buf, lib); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadLibrary(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.SelectorName() != lib.SelectorName() {
		t.Fatalf("selector name %q → %q", lib.SelectorName(), got.SelectorName())
	}
	if len(got.Configs) != len(lib.Configs) {
		t.Fatalf("config count %d → %d", len(lib.Configs), len(got.Configs))
	}
	for i := range lib.Configs {
		if got.Configs[i] != lib.Configs[i] {
			t.Fatalf("config %d: %v → %v", i, lib.Configs[i], got.Configs[i])
		}
	}
	for _, s := range probes {
		if got.Choose(s) != lib.Choose(s) {
			t.Fatalf("%s: reloaded library disagrees on %v", lib.SelectorName(), s)
		}
	}
	return got
}

func TestSaveLoadAllSelectorKinds(t *testing.T) {
	d := testDataset(t)
	probes := []gemm.Shape{
		{M: 3136, K: 64, N: 64}, {M: 1, K: 4096, N: 1000},
		{M: 784, K: 1152, N: 256}, {M: 100352, K: 3, N: 64},
		{M: 49, K: 320, N: 1280},
	}
	for _, trainer := range AllSelectorTrainers() {
		lib := BuildLibrary(d, DecisionTree{}, trainer, 5, 3)
		roundTrip(t, lib, probes)
	}
}

func TestSaveLoadStaticSelector(t *testing.T) {
	cfgs := []gemm.Config{
		{TileRows: 2, TileCols: 2, AccDepth: 4, WG: gemm.WorkGroup{R: 8, C: 8}},
		{TileRows: 4, TileCols: 4, AccDepth: 4, WG: gemm.WorkGroup{R: 16, C: 16}},
	}
	lib, err := NewLibrary(cfgs, StaticSelector{Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, lib, []gemm.Shape{{M: 5, N: 5, K: 5}})
	if got.Choose(gemm.Shape{M: 5, N: 5, K: 5}) != cfgs[1] {
		t.Fatal("static index lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":        "}{",
		"bad version":     `{"version":99,"configs":["t1x1a1_wg8x8"],"selector":"static","payload":{}}`,
		"no configs":      `{"version":1,"configs":[],"selector":"static","payload":{}}`,
		"bad config name": `{"version":1,"configs":["bogus"],"selector":"static","payload":{}}`,
		"unknown kind":    `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"martian","payload":{}}`,
		"knn no model":    `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"knn","payload":{"name":"x"}}`,
		"svm incomplete":  `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"linear-svm","payload":{}}`,

		// Structurally malformed model payloads: these decode as JSON but
		// would panic at Select time without load-time validation.
		"tree nil root":     `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"decision-tree","payload":{"Root":null,"Classes":1}}`,
		"tree bad feature":  `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"decision-tree","payload":{"Root":{"Feature":7,"Left":{"IsLeaf":true},"Right":{"IsLeaf":true}},"Classes":1}}`,
		"tree missing kid":  `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"decision-tree","payload":{"Root":{"Feature":0,"Left":{"IsLeaf":true}},"Classes":1}}`,
		"tree bad class":    `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"decision-tree","payload":{"Root":{"IsLeaf":true,"Class":-1},"Classes":1}}`,
		"forest nil tree":   `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"random-forest","payload":{"Trees":[null],"Classes":1}}`,
		"forest no trees":   `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"random-forest","payload":{"Trees":[],"Classes":1}}`,
		"knn nil matrix":    `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"knn","payload":{"model":{"X":null,"Y":[],"K":1,"Classes":1},"name":"x"}}`,
		"knn k too large":   `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"knn","payload":{"model":{"X":{"rows":1,"cols":3,"data":[1,2,3]},"Y":[0],"K":5,"Classes":1},"name":"x"}}`,
		"knn bad label":     `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"knn","payload":{"model":{"X":{"rows":1,"cols":3,"data":[1,2,3]},"Y":[9],"K":1,"Classes":1},"name":"x"}}`,
		"svm nil weights":   `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"linear-svm","payload":{"model":{"W":null,"B":[],"Classes":2},"scaler":{"Means":[0,0,0],"Stds":[1,1,1]}}}`,
		"svm wrong width":   `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"linear-svm","payload":{"model":{"W":{"rows":1,"cols":2,"data":[1,2]},"B":[0],"Classes":1},"scaler":{"Means":[0,0,0],"Stds":[1,1,1]}}}`,
		"rbf coef mismatch": `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"radial-svm","payload":{"X":{"rows":2,"cols":3,"data":[1,2,3,4,5,6]},"Coef":{"rows":1,"cols":9,"data":[0,0,0,0,0,0,0,0,0]},"B":[0],"Gamma":1,"Classes":1}}`,
		"static negative":   `{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"static","payload":{"Index":-5}}`,
	}
	for name, body := range cases {
		if _, err := LoadLibrary(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSaveLoadSelectorOnly(t *testing.T) {
	d := testDataset(t)
	probes := []gemm.Shape{
		{M: 3136, K: 64, N: 64}, {M: 1, K: 4096, N: 1000},
		{M: 784, K: 1152, N: 256}, {M: 49, K: 320, N: 1280},
	}
	for _, trainer := range AllSelectorTrainers() {
		lib := BuildLibrary(d, DecisionTree{}, trainer, 5, 3)
		var buf bytes.Buffer
		if err := SaveSelector(&buf, lib.selector); err != nil {
			t.Fatalf("%s: save: %v", lib.SelectorName(), err)
		}
		sel, err := LoadSelector(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", lib.SelectorName(), err)
		}
		swapped, err := lib.WithSelector(sel)
		if err != nil {
			t.Fatalf("%s: WithSelector: %v", lib.SelectorName(), err)
		}
		for _, s := range probes {
			if swapped.Choose(s) != lib.Choose(s) {
				t.Fatalf("%s: selector-only round trip disagrees on %v", lib.SelectorName(), s)
			}
		}
	}
}

func TestSaveRejectsUnknownSelector(t *testing.T) {
	lib := &Library{
		Configs:  []gemm.Config{{TileRows: 1, TileCols: 1, AccDepth: 1, WG: gemm.WorkGroup{R: 8, C: 8}}},
		selector: fakeSelector{},
	}
	var buf bytes.Buffer
	if err := SaveLibrary(&buf, lib); err == nil {
		t.Fatal("unknown selector type accepted")
	}
}

type fakeSelector struct{}

func (fakeSelector) Name() string         { return "fake" }
func (fakeSelector) Select([]float64) int { return 0 }

func TestDeviceTagRoundTrip(t *testing.T) {
	d := testDataset(t)
	lib := BuildLibrary(d, DecisionTree{}, DecisionTreeSelector{}, 5, 3)

	var buf bytes.Buffer
	if err := SaveLibraryForDevice(&buf, lib, "amd-r9-nano"); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	if !strings.Contains(raw, `"device":"amd-r9-nano"`) {
		t.Fatalf("device tag missing from artifact: %s", raw)
	}
	if !strings.Contains(raw, `"features":3`) {
		t.Fatalf("feature width missing from artifact: %s", raw)
	}

	// Matching device and the tag-agnostic loader both accept it.
	if _, err := LoadLibraryForDevice(strings.NewReader(raw), "amd-r9-nano"); err != nil {
		t.Fatalf("matching device rejected: %v", err)
	}
	if _, err := LoadLibrary(strings.NewReader(raw)); err != nil {
		t.Fatalf("tag-agnostic load rejected: %v", err)
	}
	// A different device must be refused.
	if _, err := LoadLibraryForDevice(strings.NewReader(raw), "integrated-gen9"); err == nil {
		t.Fatal("library tagged for one device accepted for another")
	}

	// Untagged artifacts (the pre-tag format) load for any device.
	var untagged bytes.Buffer
	if err := SaveLibrary(&untagged, lib); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(untagged.String(), `"device"`) {
		t.Fatalf("untagged save wrote a device field: %s", untagged.String())
	}
	if _, err := LoadLibraryForDevice(bytes.NewReader(untagged.Bytes()), "embedded-mali-g72"); err != nil {
		t.Fatalf("untagged artifact rejected: %v", err)
	}
}

func TestSelectorDeviceTagRoundTrip(t *testing.T) {
	d := testDataset(t)
	lib := BuildLibrary(d, DecisionTree{}, KNNSelector{K: 1}, 5, 3)

	var buf bytes.Buffer
	if err := SaveSelectorForDevice(&buf, lib.selector, "integrated-gen9"); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	if _, err := LoadSelectorForDevice(strings.NewReader(raw), "integrated-gen9"); err != nil {
		t.Fatalf("matching device rejected: %v", err)
	}
	if _, err := LoadSelector(strings.NewReader(raw)); err != nil {
		t.Fatalf("tag-agnostic load rejected: %v", err)
	}
	if _, err := LoadSelectorForDevice(strings.NewReader(raw), "amd-r9-nano"); err == nil {
		t.Fatal("selector tagged for one device accepted for another")
	}
}

// TestRejectsForeignFeatureWidth guards the width check: an artifact whose
// header claims a non-shape feature width (e.g. a device-augmented selector)
// must be refused, because the runtime dispatch only supplies (M, K, N).
func TestRejectsForeignFeatureWidth(t *testing.T) {
	d := testDataset(t)
	lib := BuildLibrary(d, DecisionTree{}, DecisionTreeSelector{}, 5, 3)
	var buf bytes.Buffer
	if err := SaveLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(buf.String(), `"features":3`, `"features":10`, 1)
	if doctored == buf.String() {
		t.Fatal("test setup: features field not found to doctor")
	}
	if _, err := LoadLibrary(strings.NewReader(doctored)); err == nil {
		t.Fatal("library claiming 10-wide features accepted for 3-wide dispatch")
	}

	var sbuf bytes.Buffer
	if err := SaveSelector(&sbuf, lib.selector); err != nil {
		t.Fatal(err)
	}
	doctored = strings.Replace(sbuf.String(), `"features":3`, `"features":10`, 1)
	if _, err := LoadSelector(strings.NewReader(doctored)); err == nil {
		t.Fatal("selector claiming 10-wide features accepted for 3-wide dispatch")
	}
}
