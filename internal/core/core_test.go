package core

import (
	"math"
	"testing"

	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
	"kernelselect/internal/sycl"
	"kernelselect/internal/xrand"
)

// testDataset builds a small but structurally realistic dataset from the
// device model: 24 shapes × 160 configurations.
func testDataset(t testing.TB) *dataset.PerfDataset {
	t.Helper()
	m := sim.New(device.R9Nano())
	shapes := []gemm.Shape{
		{M: 1, K: 4096, N: 1000}, {M: 4, K: 4096, N: 1000}, {M: 16, K: 4096, N: 1000},
		{M: 1, K: 25088, N: 4096}, {M: 64, K: 25088, N: 4096},
		{M: 3136, K: 64, N: 64}, {M: 12544, K: 64, N: 64}, {M: 50176, K: 64, N: 64},
		{M: 3136, K: 576, N: 128}, {M: 784, K: 1152, N: 256}, {M: 196, K: 2304, N: 512},
		{M: 49, K: 4608, N: 512}, {M: 12544, K: 27, N: 32}, {M: 49, K: 960, N: 160},
		{M: 196, K: 384, N: 64}, {M: 784, K: 144, N: 24}, {M: 3136, K: 32, N: 192},
		{M: 12544, K: 16, N: 96}, {M: 100352, K: 3, N: 64}, {M: 49, K: 320, N: 1280},
		{M: 196, K: 96, N: 576}, {M: 784, K: 24, N: 144}, {M: 3136, K: 128, N: 128},
		{M: 196, K: 512, N: 512},
	}
	return dataset.Build(m, shapes, gemm.AllConfigs()[:160])
}

func TestAllPrunersContract(t *testing.T) {
	d := testDataset(t)
	train, _ := d.Split(7, 0.25)
	for _, p := range AllPruners() {
		for _, n := range []int{1, 4, 8, 15} {
			sel := p.Prune(train, n, 3)
			if len(sel) != n {
				t.Fatalf("%s: returned %d configs, want %d", p.Name(), len(sel), n)
			}
			seen := map[int]bool{}
			for _, c := range sel {
				if c < 0 || c >= train.NumConfigs() {
					t.Fatalf("%s: config index %d out of range", p.Name(), c)
				}
				if seen[c] {
					t.Fatalf("%s: duplicate config %d", p.Name(), c)
				}
				seen[c] = true
			}
			// Determinism.
			again := p.Prune(train, n, 3)
			for i := range sel {
				if sel[i] != again[i] {
					t.Fatalf("%s: non-deterministic pruning", p.Name())
				}
			}
		}
	}
}

func TestPrunePanicsOnBadArgs(t *testing.T) {
	d := testDataset(t)
	for _, n := range []int{0, -3, d.NumConfigs() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d accepted", n)
				}
			}()
			TopN{}.Prune(d, n, 1)
		}()
	}
}

func TestTopNOrder(t *testing.T) {
	d := testDataset(t)
	sel := TopN{}.Prune(d, 5, 0)
	wins := d.WinCounts()
	for i := 1; i < len(sel); i++ {
		if wins[sel[i]] > wins[sel[i-1]] {
			t.Fatalf("top-n not ordered by wins: %d (%d wins) after %d (%d wins)",
				sel[i], wins[sel[i]], sel[i-1], wins[sel[i-1]])
		}
	}
	// First selection must be the global win leader.
	best := 0
	for c, w := range wins {
		if w > wins[best] {
			best = c
		}
	}
	if sel[0] != best {
		t.Fatalf("top-n first pick %d, want win leader %d", sel[0], best)
	}
}

func TestAchievableScoreBounds(t *testing.T) {
	d := testDataset(t)
	all := make([]int, d.NumConfigs())
	for i := range all {
		all[i] = i
	}
	if s := AchievableScore(d, all); math.Abs(s-100) > 1e-9 {
		t.Fatalf("full selection score = %v, want 100", s)
	}
	one := AchievableScore(d, []int{0})
	if one <= 0 || one > 100 {
		t.Fatalf("single-config score = %v out of (0,100]", one)
	}
}

func TestAchievableScoreMonotoneInSelection(t *testing.T) {
	d := testDataset(t)
	train, test := d.Split(3, 0.25)
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		s := AchievableScore(test, TopN{}.Prune(train, n, 0))
		if s < prev-1e-9 {
			t.Fatalf("achievable score decreased when adding configs: %v → %v", prev, s)
		}
		prev = s
	}
}

func TestClusteringBeatsTopNAtSmallN(t *testing.T) {
	// The paper's headline Section III result: with few configurations the
	// clustering methods clearly beat counting wins. Verify the decision
	// tree beats top-n at n=5 on a held-out split of the real dataset shape.
	d := testDataset(t)
	train, test := d.Split(42, 0.25)
	top := AchievableScore(test, TopN{}.Prune(train, 5, 1))
	tree := AchievableScore(test, DecisionTree{}.Prune(train, 5, 1))
	if tree < top-3 { // allow small-sample noise but catch inversions
		t.Fatalf("decision-tree pruning (%v) far below top-n (%v) at n=5", tree, top)
	}
}

func TestTrainLabels(t *testing.T) {
	d := testDataset(t)
	selected := []int{3, 50, 90}
	labels := TrainLabels(d, selected)
	for i, l := range labels {
		row := d.Norm.Row(i)
		for k, c := range selected {
			if row[c] > row[selected[l]] {
				t.Fatalf("shape %d: label %d but selected[%d] is better", i, l, k)
			}
		}
	}
}

func TestSelectorScoreStatic(t *testing.T) {
	d := testDataset(t)
	selected := []int{10, 20}
	got := SelectorScore(d, selected, StaticSelector{Index: 1})
	// Must equal the geometric mean of column 20.
	logSum := 0.0
	for i := 0; i < d.NumShapes(); i++ {
		logSum += math.Log(d.Norm.At(i, 20))
	}
	want := 100 * math.Exp(logSum/float64(d.NumShapes()))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("static selector score = %v, want %v", got, want)
	}
}

func TestSelectorScorePanicsOnOutOfRange(t *testing.T) {
	d := testDataset(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range selector output accepted")
		}
	}()
	SelectorScore(d, []int{1, 2}, StaticSelector{Index: 5})
}

func TestAllSelectorTrainersContract(t *testing.T) {
	d := testDataset(t)
	train, test := d.Split(11, 0.25)
	selected := DecisionTree{}.Prune(train, 6, 1)
	for _, tr := range AllSelectorTrainers() {
		sel := tr.Train(train, selected, 2)
		if sel.Name() == "" {
			t.Fatalf("%T: empty name", tr)
		}
		for i := 0; i < test.NumShapes(); i++ {
			k := sel.Select(test.Shapes[i].Features())
			if k < 0 || k >= len(selected) {
				t.Fatalf("%s: selection %d out of [0,%d)", sel.Name(), k, len(selected))
			}
		}
		score := SelectorScore(test, selected, sel)
		if score <= 0 || score > 100 {
			t.Fatalf("%s: score %v out of (0,100]", sel.Name(), score)
		}
	}
}

func TestSelectorNeverBeatsCeiling(t *testing.T) {
	// Per-shape the selector's pick is at most the best of the selection, so
	// the geometric means obey SelectorPct ≤ CeilingPct.
	d := testDataset(t)
	train, test := d.Split(5, 0.25)
	for _, tr := range AllSelectorTrainers() {
		res := RunPipeline(train, test, DecisionTree{}, tr, 6, 4)
		if res.SelectorPct > res.CeilingPct+1e-9 {
			t.Fatalf("%s: selector %v beats ceiling %v", res.SelectorName, res.SelectorPct, res.CeilingPct)
		}
	}
}

func TestDecisionTreeSelectorFitsTraining(t *testing.T) {
	// With unlimited depth the tree selector should score near its ceiling
	// on the training data (it can memorise the argmax labels).
	d := testDataset(t)
	selected := DecisionTree{}.Prune(d, 6, 1)
	sel := DecisionTreeSelector{}.Train(d, selected, 1)
	train := SelectorScore(d, selected, sel)
	ceiling := AchievableScore(d, selected)
	if ceiling-train > 0.5 {
		t.Fatalf("tree selector training score %v far below ceiling %v", train, ceiling)
	}
}

func TestRadialSVMMajorityCollapse(t *testing.T) {
	// On raw matrix-size features with the default gamma the RBF selector
	// must predict one class everywhere (the paper's Table I mechanism).
	d := testDataset(t)
	train, test := d.Split(9, 0.25)
	selected := DecisionTree{}.Prune(train, 6, 1)
	sel := RadialSVMSelector{}.Train(train, selected, 1)
	first := sel.Select(test.Shapes[0].Features())
	for i := 1; i < test.NumShapes(); i++ {
		if sel.Select(test.Shapes[i].Features()) != first {
			t.Fatal("degenerate RBF selector did not collapse to a single class")
		}
	}
}

func TestTreeExtraction(t *testing.T) {
	d := testDataset(t)
	selected := DecisionTree{}.Prune(d, 4, 1)
	sel := DecisionTreeSelector{}.Train(d, selected, 1)
	c, ok := Tree(sel)
	if !ok || c == nil {
		t.Fatal("Tree() failed on a tree selector")
	}
	if _, ok := Tree(StaticSelector{}); ok {
		t.Fatal("Tree() succeeded on a non-tree selector")
	}
	src, err := c.GenGo("Select", []string{"m", "k", "n"})
	if err != nil || len(src) == 0 {
		t.Fatalf("codegen failed: %v", err)
	}
}

func TestRunPipelineFields(t *testing.T) {
	d := testDataset(t)
	train, test := d.Split(13, 0.25)
	res := RunPipeline(train, test, KMeans{}, DecisionTreeSelector{}, 5, 8)
	if res.PrunerName != "k-means" || res.SelectorName != "DecisionTree" || res.NumConfigs != 5 {
		t.Fatalf("result metadata wrong: %+v", res)
	}
	if len(res.Selected) != 5 {
		t.Fatalf("selected %d configs", len(res.Selected))
	}
	if res.TrainPct <= 0 || res.SelectorPct <= 0 || res.CeilingPct <= 0 {
		t.Fatal("scores not populated")
	}
}

func TestBuildLibraryAndMultiply(t *testing.T) {
	d := testDataset(t)
	lib := BuildLibrary(d, DecisionTree{}, DecisionTreeSelector{}, 6, 1)
	if len(lib.Configs) != 6 {
		t.Fatalf("library has %d configs", len(lib.Configs))
	}
	if lib.SelectorName() != "DecisionTree" {
		t.Fatalf("selector name %q", lib.SelectorName())
	}

	q := sycl.NewQueue(sycl.HostDevice())
	r := xrand.New(4)
	s := gemm.Shape{M: 33, N: 29, K: 41}
	a := make([]float64, s.M*s.K)
	b := make([]float64, s.K*s.N)
	for i := range a {
		a[i] = r.Float64()
	}
	for i := range b {
		b[i] = r.Float64()
	}
	got := make([]float64, s.M*s.N)
	cfg, err := lib.Multiply(q, a, b, got, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("library chose invalid config: %v", err)
	}
	want := make([]float64, s.M*s.N)
	gemm.Reference(a, b, want, s)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatal("library multiply incorrect")
		}
	}
}

func TestNewLibraryValidation(t *testing.T) {
	if _, err := NewLibrary(nil, StaticSelector{}); err == nil {
		t.Fatal("empty config list accepted")
	}
	if _, err := NewLibrary([]gemm.Config{{TileRows: 3}}, StaticSelector{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewLibrary([]gemm.Config{{TileRows: 1, TileCols: 1, AccDepth: 1, WG: gemm.WorkGroup{R: 8, C: 8}}}, nil); err == nil {
		t.Fatal("nil selector accepted")
	}
}

func TestLibraryChooseClampsBadSelector(t *testing.T) {
	cfgs := []gemm.Config{{TileRows: 1, TileCols: 1, AccDepth: 1, WG: gemm.WorkGroup{R: 8, C: 8}}}
	lib, err := NewLibrary(cfgs, StaticSelector{Index: 99})
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.Choose(gemm.Shape{M: 1, N: 1, K: 1}); got != cfgs[0] {
		t.Fatal("out-of-range selector output not clamped")
	}
}
