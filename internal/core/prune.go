// Package core implements the paper's contribution: pruning a large kernel
// configuration space down to the few configurations a compute library can
// afford to ship (Section III), and selecting among them at runtime
// (Section IV).
//
// Pruning operates on the training dataset's per-shape vectors of normalized
// performance — the assumption, quoted from the paper, is that "these
// vectors contain enough structure to provide a good basis for pruning the
// number of kernel configurations". Each method clusters the vectors, takes
// representatives, and keeps the configuration that performs best for each
// representative. Runtime selection trains a classifier from matrix sizes to
// the best of the retained configurations.
package core

import (
	"fmt"
	"sort"

	"kernelselect/internal/dataset"
	"kernelselect/internal/ml/hdbscan"
	"kernelselect/internal/ml/kmeans"
	"kernelselect/internal/ml/metrics"
	"kernelselect/internal/ml/pca"
	"kernelselect/internal/ml/tree"
)

// Pruner reduces the configuration space: it returns the column indices of
// at most n configurations chosen from the training data.
type Pruner interface {
	Name() string
	Prune(train *dataset.PerfDataset, n int, seed uint64) []int
}

// validatePruneArgs panics on out-of-contract arguments; every Pruner uses it.
func validatePruneArgs(train *dataset.PerfDataset, n int) {
	if train == nil || train.NumShapes() == 0 {
		panic("core: pruning requires a non-empty training dataset")
	}
	if n < 1 || n > train.NumConfigs() {
		panic(fmt.Sprintf("core: prune target %d out of [1,%d]", n, train.NumConfigs()))
	}
}

// dedupKeepOrder removes duplicate config indices, preserving first
// occurrence order.
func dedupKeepOrder(idx []int) []int {
	seen := map[int]bool{}
	out := idx[:0]
	for _, i := range idx {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// topWinConfigs returns config indices ordered by descending win count with
// mean normalized performance as the tie breaker.
func topWinConfigs(train *dataset.PerfDataset) []int {
	wins := train.WinCounts()
	means := train.MeanNormPerf()
	order := make([]int, len(wins))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if wins[ia] != wins[ib] {
			return wins[ia] > wins[ib]
		}
		if means[ia] != means[ib] {
			return means[ia] > means[ib]
		}
		return ia < ib
	})
	return order
}

// fillToN appends configs from the top-win ordering until len(selected) == n.
// Several clustering methods produce fewer than n distinct configurations
// (distinct clusters can share a best configuration); the paper fixes the
// library size, so the remaining slots are filled with the strongest
// configurations by win count.
func fillToN(selected []int, train *dataset.PerfDataset, n int) []int {
	if len(selected) >= n {
		return selected[:n]
	}
	seen := map[int]bool{}
	for _, i := range selected {
		seen[i] = true
	}
	for _, i := range topWinConfigs(train) {
		if len(selected) == n {
			break
		}
		if !seen[i] {
			seen[i] = true
			selected = append(selected, i)
		}
	}
	return selected
}

// bestConfigFor returns the argmax configuration of a performance vector.
func bestConfigFor(vec []float64) int {
	best := 0
	for j, v := range vec {
		if v > vec[best] {
			best = j
		}
	}
	return best
}

// ---------------------------------------------------------------------------

// TopN selects the configurations that are optimal for the most training
// shapes — the paper's naive baseline ("choosing the top N configurations
// that obtained optimal results").
type TopN struct{}

// Name implements Pruner.
func (TopN) Name() string { return "top-n" }

// Prune implements Pruner.
func (TopN) Prune(train *dataset.PerfDataset, n int, _ uint64) []int {
	validatePruneArgs(train, n)
	return append([]int(nil), topWinConfigs(train)[:n]...)
}

// ---------------------------------------------------------------------------

// KMeans clusters the normalized performance vectors directly with k-means
// and keeps the best configuration of each cluster centroid.
type KMeans struct{}

// Name implements Pruner.
func (KMeans) Name() string { return "k-means" }

// Prune implements Pruner.
func (KMeans) Prune(train *dataset.PerfDataset, n int, seed uint64) []int {
	validatePruneArgs(train, n)
	k := n
	if k > train.NumShapes() {
		k = train.NumShapes()
	}
	res := kmeans.Cluster(train.Norm, k, seed, kmeans.Options{})
	var selected []int
	for c := 0; c < res.Centroids.Rows(); c++ {
		selected = append(selected, bestConfigFor(res.Centroids.Row(c)))
	}
	return fillToN(dedupKeepOrder(selected), train, n)
}

// ---------------------------------------------------------------------------

// HDBSCAN clusters the performance vectors with HDBSCAN* and keeps the best
// configuration of each cluster exemplar (medoid). The minimum cluster size
// is swept to find the clustering whose cluster count is closest to (and at
// most) n; surplus clusters are dropped lowest-stability-first.
type HDBSCAN struct{}

// Name implements Pruner.
func (HDBSCAN) Name() string { return "hdbscan" }

// Prune implements Pruner.
func (HDBSCAN) Prune(train *dataset.PerfDataset, n int, _ uint64) []int {
	validatePruneArgs(train, n)

	var bestRes *hdbscan.Result
	bestCount := 0
	maxMCS := train.NumShapes() / 2
	if maxMCS < 2 {
		maxMCS = 2
	}
	for mcs := 2; mcs <= maxMCS; mcs++ {
		res := hdbscan.Cluster(train.Norm, hdbscan.Options{MinClusterSize: mcs})
		c := res.NumClusters
		if c == 0 {
			continue
		}
		if c > n {
			c = n // we can drop surplus clusters by stability
		}
		if c > bestCount {
			bestCount = c
			bestRes = res
		}
		if bestCount == n {
			break
		}
	}

	var selected []int
	if bestRes != nil {
		ex := hdbscan.Exemplars(train.Norm, bestRes)
		// Order clusters by stability (descending) and keep at most n.
		order := make([]int, len(ex))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return bestRes.Stabilities[order[a]] > bestRes.Stabilities[order[b]]
		})
		for _, c := range order {
			if len(selected) == n {
				break
			}
			selected = append(selected, bestConfigFor(train.Norm.Row(ex[c])))
		}
	}
	return fillToN(dedupKeepOrder(selected), train, n)
}

// ---------------------------------------------------------------------------

// PCAKMeans reduces the performance vectors with PCA before k-means
// clustering ("PCA can be used to reduce the dimensionality of the data and
// so provide a better coordinate system for k-means clustering"), then maps
// the centroids back to the original space to find each one's best
// configuration.
type PCAKMeans struct {
	// VarianceThreshold chooses how many components the reduction keeps
	// (cumulative explained-variance ratio); 0 means the paper-motivated
	// default of 0.95.
	VarianceThreshold float64
}

// Name implements Pruner.
func (PCAKMeans) Name() string { return "pca+k-means" }

// Prune implements Pruner.
func (p PCAKMeans) Prune(train *dataset.PerfDataset, n int, seed uint64) []int {
	validatePruneArgs(train, n)
	thr := p.VarianceThreshold
	if thr <= 0 {
		thr = 0.95
	}
	fit := pca.Fit(train.Norm, 0)
	comps := fit.ComponentsForVariance(thr)
	reduced := pca.Fit(train.Norm, comps)
	scores := reduced.Transform(train.Norm)

	k := n
	if k > train.NumShapes() {
		k = train.NumShapes()
	}
	res := kmeans.Cluster(scores, k, seed, kmeans.Options{})
	back := reduced.InverseTransform(res.Centroids)
	var selected []int
	for c := 0; c < back.Rows(); c++ {
		selected = append(selected, bestConfigFor(back.Row(c)))
	}
	return fillToN(dedupKeepOrder(selected), train, n)
}

// ---------------------------------------------------------------------------

// DecisionTree fits a multi-output regression tree from matrix sizes to the
// performance vectors with at most n leaves; each leaf's mean vector is a
// cluster representative. This is the method the paper finds best
// ("the decision tree consistently provided the best results when 6 or more
// kernel configurations were allowed").
type DecisionTree struct {
	// MinSamplesLeaf guards leaves against single-shape overfit; 0 means 2.
	MinSamplesLeaf int
}

// Name implements Pruner.
func (DecisionTree) Name() string { return "decision-tree" }

// Prune implements Pruner.
func (d DecisionTree) Prune(train *dataset.PerfDataset, n int, seed uint64) []int {
	validatePruneArgs(train, n)
	msl := d.MinSamplesLeaf
	if msl <= 0 {
		msl = 2
	}
	reg := tree.FitRegressor(train.Features(), train.Norm, tree.Options{
		MaxLeaves:      n,
		MinSamplesLeaf: msl,
		Seed:           seed,
	})
	var selected []int
	for _, leaf := range reg.Leaves() {
		selected = append(selected, bestConfigFor(leaf.Value))
	}
	return fillToN(dedupKeepOrder(selected), train, n)
}

// ---------------------------------------------------------------------------

// AllPruners returns the five methods of Section III in the paper's order.
func AllPruners() []Pruner {
	return []Pruner{TopN{}, KMeans{}, HDBSCAN{}, PCAKMeans{}, DecisionTree{}}
}

// AchievableScore returns the paper's pruning metric: the geometric mean
// over the dataset's shapes of the best normalized performance achievable
// with only the selected configurations, as a percentage. A score of 100
// requires the true optimum of every shape to be in the selection.
func AchievableScore(ds *dataset.PerfDataset, selected []int) float64 {
	if len(selected) == 0 {
		panic("core: AchievableScore with empty selection")
	}
	scores := make([]float64, ds.NumShapes())
	for i := range scores {
		row := ds.Norm.Row(i)
		best := 0.0
		for _, c := range selected {
			if row[c] > best {
				best = row[c]
			}
		}
		scores[i] = best
	}
	return 100 * metrics.GeoMean(scores)
}
