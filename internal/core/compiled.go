package core

import (
	"math"

	"kernelselect/internal/gemm"
	"kernelselect/internal/mat"
	"kernelselect/internal/ml/forest"
	"kernelselect/internal/ml/knn"
	"kernelselect/internal/ml/tree"
)

// This file is the offline half of the serving hot path: it flattens a
// fitted selector into an allocation-free compiled form. The pointer models
// are the right shape for training and inspection, but predicting through
// them chases heap pointers (tree, forest) or allocates per call (k-NN
// neighbour slices, SVM feature/score vectors). A CompiledSelector walks
// contiguous struct-of-arrays data with stack scratch, so a serving daemon
// can run Select millions of times per second without touching the heap.

// maxCompiledFeatures bounds the stack feature scratch of compiled SVM
// selectors; shape features are 3-wide (and the portability study's
// device-augmented vectors a handful more).
const maxCompiledFeatures = 16

// CompiledSelector is an allocation-free Select path flattened from a fitted
// selector. It reports the source selector's Name, returns the exact index
// the source selector returns for every feature vector, and is safe for
// concurrent use.
type CompiledSelector struct {
	name string
	fn   func([]float64) int
	// shapeFn is the scalar fast path for 3-feature (M, K, N) selectors:
	// taking scalars instead of a slice keeps the feature scratch on the
	// callee's stack even though the selector is invoked through a function
	// value (a slice argument would escape through the indirect call). Nil
	// when the model was trained on a different feature width.
	shapeFn func(m, k, n float64) int
}

// Name implements Selector, reporting the source selector's name.
func (c *CompiledSelector) Name() string { return c.name }

// Select implements Selector without allocating.
func (c *CompiledSelector) Select(features []float64) int { return c.fn(features) }

// shapeWidthOK reports whether a model's training feature width admits the
// scalar (M, K, N) fast path (width 0 = unknown, recorded before the width
// tag existed — every such model in this repository is shape-trained).
func shapeWidthOK(width int) bool { return width == 0 || width == 3 }

// CompileSelector flattens sel into its allocation-free serving form. It
// reports false when no compiled form exists: RBF SVMs (degenerate in the
// paper's configuration and not worth a hot path), static selectors (already
// trivial), selectors whose model exceeds the stack-scratch bounds, and any
// selector type this package does not know.
//
// The scalar shapeFn closures below call Predict on a concrete compiled type
// rather than through a function value: the direct call lets escape analysis
// keep the [3]float64 scratch on the stack, which an indirect call would
// force to the heap.
func CompileSelector(sel Selector) (*CompiledSelector, bool) {
	switch s := sel.(type) {
	case treeSelector:
		cp := tree.CompileClassifier(s.c)
		cs := &CompiledSelector{name: sel.Name(), fn: cp.Predict}
		if shapeWidthOK(cp.NumFeatures()) {
			cs.shapeFn = func(m, k, n float64) int {
				f := [3]float64{m, k, n}
				return cp.Predict(f[:])
			}
		}
		return cs, true
	case forestSelector:
		cp, ok := forest.CompileClassifier(s.f)
		if !ok {
			return nil, false
		}
		cs := &CompiledSelector{name: sel.Name(), fn: cp.Predict}
		if shapeWidthOK(cp.NumFeatures()) {
			cs.shapeFn = func(m, k, n float64) int {
				f := [3]float64{m, k, n}
				return cp.Predict(f[:])
			}
		}
		return cs, true
	case knnSelector:
		cp, ok := knn.Compile(s.c)
		if !ok {
			return nil, false
		}
		cs := &CompiledSelector{name: sel.Name(), fn: cp.Predict}
		if shapeWidthOK(cp.NumFeatures()) {
			cs.shapeFn = func(m, k, n float64) int {
				f := [3]float64{m, k, n}
				return cp.Predict(f[:])
			}
		}
		return cs, true
	case linearSVMSelector:
		return compileLinearSVM(s)
	case *CompiledSelector:
		return s, true
	default:
		return nil, false
	}
}

// compileLinearSVM fuses the selector's log transform, standardization and
// one-vs-rest scoring into one pass over stack scratch. Scores and
// tie-breaks reproduce svm.Linear.Predict exactly (argmax, lowest class on
// ties).
func compileLinearSVM(s linearSVMSelector) (*CompiledSelector, bool) {
	d := len(s.sc.Means)
	if d > maxCompiledFeatures {
		return nil, false
	}
	w, b, classes := s.m.W, s.m.B, s.m.Classes
	means, stds := s.sc.Means, s.sc.Stds
	fn := func(x []float64) int {
		var f [maxCompiledFeatures]float64
		for i := 0; i < d; i++ {
			f[i] = (math.Log(x[i]) - means[i]) / stds[i]
		}
		best, bestScore := 0, math.Inf(-1)
		for c := 0; c < classes; c++ {
			if score := mat.Dot(w.Row(c), f[:d]) + b[c]; score > bestScore {
				best, bestScore = c, score
			}
		}
		return best
	}
	cs := &CompiledSelector{name: s.Name(), fn: fn}
	if d == 3 {
		// The slice never leaves the closure (mat.Dot is a direct call), so
		// the scalar path stays allocation-free.
		cs.shapeFn = func(m, k, n float64) int {
			f := [3]float64{m, k, n}
			return fn(f[:])
		}
	}
	return cs, true
}

// CompiledChooser returns an allocation-free equivalent of ChooseIndex —
// shape features built on the stack, compiled Select, the same out-of-range
// clamp — or false when the library's selector has no compiled form for
// 3-feature shape input.
func (l *Library) CompiledChooser() (func(gemm.Shape) int, bool) {
	cs, ok := CompileSelector(l.selector)
	if !ok || cs.shapeFn == nil {
		return nil, false
	}
	fn, n := cs.shapeFn, len(l.Configs)
	return func(s gemm.Shape) int {
		k := fn(float64(s.M), float64(s.K), float64(s.N))
		if k < 0 || k >= n {
			k = 0
		}
		return k
	}, true
}

// UnifiedCompiledChooser returns a compiled equivalent of UnifiedChooseIndex
// with the device feature vector baked in — the unified counterpart of
// CompiledChooser for a serving backend that dispatches every request for
// one device through one device-augmented selector. It reports false when
// the library is not unified, the device vector does not complete the
// selector's width, the width exceeds the compiled stack-scratch bound, or
// the selector has no compiled form.
//
// The tree case calls the concrete compiled classifier directly so the
// feature scratch stays on the stack (every unified selector this repository
// trains is a tree); other selector kinds go through the generic compiled fn
// and pay one small array allocation per call — acceptable because dispatch
// only runs on the cache-miss path, next to a full pricing pass.
func (l *Library) UnifiedCompiledChooser(devFeatures []float64) (func(gemm.Shape) int, bool) {
	if !l.unified || numShapeFeatures+len(devFeatures) != l.features || l.features > maxCompiledFeatures {
		return nil, false
	}
	width, n := l.features, len(l.Configs)
	var template [maxCompiledFeatures]float64
	copy(template[numShapeFeatures:], devFeatures)
	if ts, ok := l.selector.(treeSelector); ok {
		cp := tree.CompileClassifier(ts.c)
		return func(s gemm.Shape) int {
			f := template
			f[0], f[1], f[2] = float64(s.M), float64(s.K), float64(s.N)
			k := cp.Predict(f[:width])
			if k < 0 || k >= n {
				k = 0
			}
			return k
		}, true
	}
	cs, ok := CompileSelector(l.selector)
	if !ok {
		return nil, false
	}
	return func(s gemm.Shape) int {
		f := template
		f[0], f[1], f[2] = float64(s.M), float64(s.K), float64(s.N)
		k := cs.fn(f[:width])
		if k < 0 || k >= n {
			k = 0
		}
		return k
	}, true
}

// Selector exposes the library's runtime selector (read-only: for
// compilation, code generation and inspection).
func (l *Library) Selector() Selector { return l.selector }
