package core

import (
	"bytes"
	"testing"

	"kernelselect/internal/dataset"
	"kernelselect/internal/gemm"
)

// The persistence decoders parse artifacts that may come from disk, a
// config-management system, or a network peer — they are the repository's
// only untrusted-input surface. The fuzz targets below assert the decoder
// contract: malformed input returns an error (never a panic), and anything
// that loads successfully must then select and re-save without panicking.

// fuzzDataset builds a tiny deterministic dataset without the analytical
// model, so seeding stays cheap enough for per-corpus-entry reruns.
func fuzzDataset(f *testing.F) *dataset.PerfDataset {
	f.Helper()
	shapes := []gemm.Shape{
		{M: 1, K: 4096, N: 1000}, {M: 3136, K: 64, N: 64}, {M: 784, K: 1152, N: 256},
		{M: 49, K: 4608, N: 512}, {M: 12544, K: 27, N: 32}, {M: 196, K: 384, N: 64},
		{M: 100352, K: 3, N: 64}, {M: 49, K: 320, N: 1280}, {M: 3136, K: 128, N: 128},
		{M: 196, K: 512, N: 512}, {M: 784, K: 144, N: 24}, {M: 16, K: 4096, N: 1000},
	}
	configs := gemm.AllConfigs()[:24]
	measure := func(cfg gemm.Config, s gemm.Shape) (float64, error) {
		// A smooth deterministic surface with shape- and config-dependent
		// structure, so every classifier has something to learn.
		return 1 + float64((s.M*7+s.K*3+s.N)%101)*float64(cfg.TileRows*cfg.TileCols+cfg.AccDepth), nil
	}
	ds, err := dataset.BuildMeasured(measure, shapes, configs)
	if err != nil {
		f.Fatal(err)
	}
	return ds
}

// fuzzProbes are the shapes every successfully loaded artifact must answer.
var fuzzProbes = []gemm.Shape{
	{M: 784, K: 1152, N: 256}, {M: 1, K: 1, N: 1}, {M: 1 << 20, K: 3, N: 64},
}

func fuzzSeedCorpus(f *testing.F, save func(buf *bytes.Buffer, lib *Library) error) [][]byte {
	f.Helper()
	ds := fuzzDataset(f)
	var corpus [][]byte
	for _, trainer := range AllSelectorTrainers() {
		lib := BuildLibrary(ds, DecisionTree{}, trainer, 4, 3)
		var buf bytes.Buffer
		if err := save(&buf, lib); err != nil {
			f.Fatalf("seeding corpus with %s: %v", lib.SelectorName(), err)
		}
		corpus = append(corpus, buf.Bytes())
	}
	return corpus
}

func FuzzLoadLibrary(f *testing.F) {
	for _, seed := range fuzzSeedCorpus(f, func(buf *bytes.Buffer, lib *Library) error {
		return SaveLibrary(buf, lib)
	}) {
		f.Add(seed)
	}
	// A unified (device-feature-augmented) artifact: the mutator gets to chew
	// on the width tag, the marker, and the devices list.
	ulib := buildUnifiedTestLibrary(f)
	var ubuf bytes.Buffer
	if err := SaveUnifiedLibrary(&ubuf, ulib, []string{"a", "b", "c"}); err != nil {
		f.Fatal(err)
	}
	f.Add(ubuf.Bytes())
	f.Add([]byte("}{"))
	f.Add([]byte(`{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"decision-tree","payload":{"Root":null}}`))
	f.Add([]byte(`{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"knn","payload":{"model":{"X":null,"Y":[],"K":3,"Classes":1},"name":"x"}}`))
	f.Add([]byte(`{"version":1,"configs":["t1x1a1_wg8x8"],"selector":"random-forest","payload":{"Trees":[null],"Classes":1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := LoadLibrary(bytes.NewReader(data))
		if err != nil {
			if lib != nil {
				t.Fatalf("LoadLibrary returned both a library and %v", err)
			}
			return
		}
		// Whatever loads must serve selections and re-save cleanly.
		for _, s := range fuzzProbes {
			cfg := lib.Choose(s)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("loaded library chose invalid config %v: %v", cfg, err)
			}
		}
		if lib.Unified() {
			dev := make([]float64, lib.NumFeatures()-3)
			for _, s := range fuzzProbes {
				k := lib.UnifiedChooseIndex(s, dev)
				if k < 0 || k >= len(lib.Configs) {
					t.Fatalf("unified dispatch returned out-of-range index %d", k)
				}
			}
		}
		var buf bytes.Buffer
		if err := SaveLibrary(&buf, lib); err != nil {
			t.Fatalf("re-saving loaded library: %v", err)
		}
	})
}

func FuzzLoadSelector(f *testing.F) {
	for _, seed := range fuzzSeedCorpus(f, func(buf *bytes.Buffer, lib *Library) error {
		return SaveSelector(buf, lib.selector)
	}) {
		f.Add(seed)
	}
	f.Add([]byte(`{"version":1,"selector":"static","payload":{"Index":-5}}`))
	f.Add([]byte(`{"version":1,"selector":"linear-svm","payload":{"model":{"W":null,"B":[],"Classes":2},"scaler":{"Means":[0],"Stds":[1]}}}`))
	f.Add([]byte(`{"version":1,"selector":"radial-svm","payload":{"X":{"rows":1,"cols":3,"data":[1,2,3]},"Coef":{"rows":1,"cols":9,"data":[0,0,0,0,0,0,0,0,0]},"B":[0],"Gamma":1,"Classes":1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sel, err := LoadSelector(bytes.NewReader(data))
		if err != nil {
			if sel != nil {
				t.Fatalf("LoadSelector returned both a selector and %v", err)
			}
			return
		}
		for _, s := range fuzzProbes {
			_ = sel.Select(s.Features()) // must not panic; range is clamped by Library.Choose
		}
		var buf bytes.Buffer
		if err := SaveSelector(&buf, sel); err != nil {
			t.Fatalf("re-saving loaded selector: %v", err)
		}
	})
}
