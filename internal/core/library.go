package core

import (
	"fmt"

	"kernelselect/internal/dataset"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sycl"
)

// Library is the deployable artifact the paper's pipeline produces: a small
// set of kernel configurations plus a runtime selector that picks among
// them. It is what a SYCL-DNN-style compute library would compile in — the
// configurations correspond to the kernels bundled in the binary, and the
// selector to the nested-if dispatch choosing between them.
//
// A library is either shape-only (the selector consumes the (M, K, N)
// feature vector, the paper's single-device deployment) or unified (the
// selector was trained on shape features with a device feature vector
// appended — the follow-up paper's one-artifact-for-every-device
// deployment). The two are distinguished by the unified marker, never by
// guessing from the feature width, so dispatch can refuse the wrong call
// instead of indexing a selector out of range.
type Library struct {
	Configs  []gemm.Config
	selector Selector

	// features is the feature width the selector consumes; shape libraries
	// use numShapeFeatures, unified libraries numShapeFeatures plus the
	// device feature width they were trained with.
	features int
	unified  bool

	// devices names the devices whose datasets trained a unified library
	// (provenance, recorded by SaveUnifiedLibrary and preserved across
	// load/re-save). Empty on shape libraries.
	devices []string
}

// BuildLibrary runs the full paper pipeline on a tuning dataset: split off
// nothing (the entire dataset trains the shipped artifact), prune to n
// configurations, and train the selector.
func BuildLibrary(ds *dataset.PerfDataset, pruner Pruner, trainer SelectorTrainer, n int, seed uint64) *Library {
	selected := pruner.Prune(ds, n, seed)
	sel := trainer.Train(ds, selected, seed)
	cfgs := make([]gemm.Config, len(selected))
	for i, c := range selected {
		cfgs[i] = ds.Configs[c]
	}
	return &Library{Configs: cfgs, selector: sel, features: selectorWidth(sel)}
}

// NewLibrary assembles a shape-dispatch library from explicit parts (e.g.
// configurations and a selector loaded from generated code). Selectors
// recording a width beyond the shape features are refused — those are
// unified artifacts and must be assembled with NewUnifiedLibrary, so the
// unified marker can never be lost by reassembly.
func NewLibrary(configs []gemm.Config, selector Selector) (*Library, error) {
	lib, err := newLibrary(configs, selector)
	if err != nil {
		return nil, err
	}
	if lib.features > numShapeFeatures {
		return nil, fmt.Errorf("core: selector %q expects %d features (device-augmented); use NewUnifiedLibrary",
			selector.Name(), lib.features)
	}
	return lib, nil
}

// NewUnifiedLibrary assembles a device-feature-augmented library: the
// selector must have been trained on shape features with a device feature
// vector appended, so its recorded width exceeds the shape width. Dispatch
// goes through UnifiedChooseIndex (shape + device features); plain
// ChooseIndex refuses with the clamp fallback.
func NewUnifiedLibrary(configs []gemm.Config, selector Selector) (*Library, error) {
	lib, err := newLibrary(configs, selector)
	if err != nil {
		return nil, err
	}
	if lib.features <= numShapeFeatures {
		return nil, fmt.Errorf("core: unified library needs a selector wider than the %d shape features, got width %d",
			numShapeFeatures, lib.features)
	}
	lib.unified = true
	return lib, nil
}

func newLibrary(configs []gemm.Config, selector Selector) (*Library, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("core: library needs at least one configuration")
	}
	for _, c := range configs {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	if selector == nil {
		return nil, fmt.Errorf("core: library needs a selector")
	}
	return &Library{Configs: configs, selector: selector, features: selectorWidth(selector)}, nil
}

// NumFeatures reports the feature width the library's selector consumes.
func (l *Library) NumFeatures() int { return l.features }

// Unified reports whether the library dispatches on device-augmented
// features (UnifiedChooseIndex) rather than shape features alone.
func (l *Library) Unified() bool { return l.unified }

// TrainingDevices names the devices whose pooled datasets trained a unified
// library, as recorded in the artifact (nil when unknown or shape-only). The
// list is provenance, not a serving restriction: a unified selector dispatches
// for any device whose feature vector matches its width.
func (l *Library) TrainingDevices() []string { return l.devices }

// SelectorName reports which selector the library dispatches with.
func (l *Library) SelectorName() string { return l.selector.Name() }

// WithSelector returns a library dispatching over the same configurations
// with a different selector (e.g. one loaded via LoadSelector) — the A/B
// mechanism of the serving daemon. The dispatch kind follows the new
// selector's width: a device-augmented selector yields a unified library.
func (l *Library) WithSelector(sel Selector) (*Library, error) {
	if sel != nil && selectorWidth(sel) > numShapeFeatures {
		return NewUnifiedLibrary(l.Configs, sel)
	}
	return NewLibrary(l.Configs, sel)
}

// ChooseIndex returns the index into Configs of the configuration the
// selector picks for the shape.
func (l *Library) ChooseIndex(s gemm.Shape) int {
	if l.unified {
		// A unified selector fed a bare shape vector would index past the
		// three shape features; like a wrong-size selector below, treat the
		// misuse as a programming error and serve the first configuration
		// rather than crash a compute call. Unified callers dispatch through
		// UnifiedChooseIndex.
		return 0
	}
	k := l.selector.Select(s.Features())
	if k < 0 || k >= len(l.Configs) {
		// A selector trained for a different library size is a programming
		// error; fall back to the first configuration rather than crash a
		// compute call.
		k = 0
	}
	return k
}

// UnifiedChooseIndex returns the index into Configs the unified selector
// picks for the shape on a device described by devFeatures (the
// device.Spec.Features vector the selector was trained with, appended to the
// shape features). Misuse — a shape-only library, or a device vector of the
// wrong width — falls back to the first configuration, the same clamp
// philosophy ChooseIndex applies to wrong-size selectors.
func (l *Library) UnifiedChooseIndex(s gemm.Shape, devFeatures []float64) int {
	if !l.unified || numShapeFeatures+len(devFeatures) != l.features {
		return 0
	}
	f := make([]float64, 0, l.features)
	f = append(f, s.Features()...)
	f = append(f, devFeatures...)
	k := l.selector.Select(f)
	if k < 0 || k >= len(l.Configs) {
		k = 0
	}
	return k
}

// UnifiedChooser validates a device feature vector against the unified
// library's width once and returns the interpreted shape→index dispatch for
// that device — the construction-time counterpart of UnifiedChooseIndex for
// serving backends that must fail loudly instead of clamping.
func (l *Library) UnifiedChooser(devFeatures []float64) (func(gemm.Shape) int, error) {
	if !l.unified {
		return nil, fmt.Errorf("core: library is not unified (selector %q, width %d)", l.selector.Name(), l.features)
	}
	if numShapeFeatures+len(devFeatures) != l.features {
		return nil, fmt.Errorf("core: unified library expects %d features; %d shape + %d device features given",
			l.features, numShapeFeatures, len(devFeatures))
	}
	dev := append([]float64(nil), devFeatures...)
	return func(s gemm.Shape) int { return l.UnifiedChooseIndex(s, dev) }, nil
}

// Choose returns the configuration the library would run for the shape.
func (l *Library) Choose(s gemm.Shape) gemm.Config {
	return l.Configs[l.ChooseIndex(s)]
}

// Multiply computes c = a·b using the configuration the selector picks —
// the end-user entry point of the deployed library.
func (l *Library) Multiply(q *sycl.Queue, a, b, c []float64, s gemm.Shape) (gemm.Config, error) {
	cfg := l.Choose(s)
	if err := gemm.Multiply(q, cfg, a, b, c, s); err != nil {
		return cfg, err
	}
	return cfg, nil
}
