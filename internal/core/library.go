package core

import (
	"fmt"

	"kernelselect/internal/dataset"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sycl"
)

// Library is the deployable artifact the paper's pipeline produces: a small
// set of kernel configurations plus a runtime selector that picks among
// them. It is what a SYCL-DNN-style compute library would compile in — the
// configurations correspond to the kernels bundled in the binary, and the
// selector to the nested-if dispatch choosing between them.
type Library struct {
	Configs  []gemm.Config
	selector Selector
}

// BuildLibrary runs the full paper pipeline on a tuning dataset: split off
// nothing (the entire dataset trains the shipped artifact), prune to n
// configurations, and train the selector.
func BuildLibrary(ds *dataset.PerfDataset, pruner Pruner, trainer SelectorTrainer, n int, seed uint64) *Library {
	selected := pruner.Prune(ds, n, seed)
	sel := trainer.Train(ds, selected, seed)
	cfgs := make([]gemm.Config, len(selected))
	for i, c := range selected {
		cfgs[i] = ds.Configs[c]
	}
	return &Library{Configs: cfgs, selector: sel}
}

// NewLibrary assembles a library from explicit parts (e.g. configurations
// and a selector loaded from generated code).
func NewLibrary(configs []gemm.Config, selector Selector) (*Library, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("core: library needs at least one configuration")
	}
	for _, c := range configs {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	if selector == nil {
		return nil, fmt.Errorf("core: library needs a selector")
	}
	return &Library{Configs: configs, selector: selector}, nil
}

// SelectorName reports which selector the library dispatches with.
func (l *Library) SelectorName() string { return l.selector.Name() }

// WithSelector returns a library dispatching over the same configurations
// with a different selector (e.g. one loaded via LoadSelector) — the A/B
// mechanism of the serving daemon.
func (l *Library) WithSelector(sel Selector) (*Library, error) {
	return NewLibrary(l.Configs, sel)
}

// ChooseIndex returns the index into Configs of the configuration the
// selector picks for the shape.
func (l *Library) ChooseIndex(s gemm.Shape) int {
	k := l.selector.Select(s.Features())
	if k < 0 || k >= len(l.Configs) {
		// A selector trained for a different library size is a programming
		// error; fall back to the first configuration rather than crash a
		// compute call.
		k = 0
	}
	return k
}

// Choose returns the configuration the library would run for the shape.
func (l *Library) Choose(s gemm.Shape) gemm.Config {
	return l.Configs[l.ChooseIndex(s)]
}

// Multiply computes c = a·b using the configuration the selector picks —
// the end-user entry point of the deployed library.
func (l *Library) Multiply(q *sycl.Queue, a, b, c []float64, s gemm.Shape) (gemm.Config, error) {
	cfg := l.Choose(s)
	if err := gemm.Multiply(q, cfg, a, b, c, s); err != nil {
		return cfg, err
	}
	return cfg, nil
}
