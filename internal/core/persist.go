package core

import (
	"encoding/json"
	"fmt"
	"io"

	"kernelselect/internal/gemm"
	"kernelselect/internal/ml/forest"
	"kernelselect/internal/ml/knn"
	"kernelselect/internal/ml/scale"
	"kernelselect/internal/ml/svm"
	"kernelselect/internal/ml/tree"
)

// Library persistence: a trained library (kernel set + fitted selector)
// serialises to a single JSON artifact, so the expensive tuning/training
// stage runs once and the deployable result ships with the compute library.

// libraryFile is the on-disk format.
type libraryFile struct {
	Version  int             `json:"version"`
	Configs  []string        `json:"configs"`
	Selector string          `json:"selector"`
	Payload  json.RawMessage `json:"payload"`
}

const libraryFileVersion = 1

// Selector kind tags. StaticSelector also round-trips, so generated or
// hand-assembled libraries persist too.
const (
	kindTree      = "decision-tree"
	kindForest    = "random-forest"
	kindKNN       = "knn"
	kindLinearSVM = "linear-svm"
	kindRadialSVM = "radial-svm"
	kindStatic    = "static"
)

// knnPayload wraps the k-NN model with its display name (1NearestNeighbor /
// 3NearestNeighbor).
type knnPayload struct {
	Model *knn.Classifier `json:"model"`
	Name  string          `json:"name"`
}

// linearSVMPayload wraps the SVM with its feature preprocessing.
type linearSVMPayload struct {
	Model  *svm.Linear   `json:"model"`
	Scaler *scale.Scaler `json:"scaler"`
}

// SaveLibrary writes the library as JSON. Selectors produced by the trainers
// in this package (and StaticSelector) are supported; anything else returns
// an error.
func SaveLibrary(w io.Writer, lib *Library) error {
	f := libraryFile{Version: libraryFileVersion}
	for _, c := range lib.Configs {
		f.Configs = append(f.Configs, c.String())
	}

	var payload any
	switch s := lib.selector.(type) {
	case treeSelector:
		f.Selector = kindTree
		payload = s.c
	case forestSelector:
		f.Selector = kindForest
		payload = s.f
	case knnSelector:
		f.Selector = kindKNN
		payload = knnPayload{Model: s.c, Name: s.name}
	case linearSVMSelector:
		f.Selector = kindLinearSVM
		payload = linearSVMPayload{Model: s.m, Scaler: s.sc}
	case radialSVMSelector:
		f.Selector = kindRadialSVM
		payload = s.m
	case StaticSelector:
		f.Selector = kindStatic
		payload = s
	default:
		return fmt.Errorf("core: selector %q is not serialisable", lib.selector.Name())
	}

	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("core: marshalling selector: %w", err)
	}
	f.Payload = raw
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// LoadLibrary reads a library written by SaveLibrary.
func LoadLibrary(r io.Reader) (*Library, error) {
	var f libraryFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding library: %w", err)
	}
	if f.Version != libraryFileVersion {
		return nil, fmt.Errorf("core: unsupported library version %d", f.Version)
	}
	if len(f.Configs) == 0 {
		return nil, fmt.Errorf("core: library file has no configurations")
	}
	configs := make([]gemm.Config, len(f.Configs))
	for i, name := range f.Configs {
		cfg, err := gemm.ParseConfig(name)
		if err != nil {
			return nil, err
		}
		configs[i] = cfg
	}

	var sel Selector
	switch f.Selector {
	case kindTree:
		var c tree.Classifier
		if err := json.Unmarshal(f.Payload, &c); err != nil {
			return nil, fmt.Errorf("core: decoding tree selector: %w", err)
		}
		sel = treeSelector{c: &c}
	case kindForest:
		var fc forest.Classifier
		if err := json.Unmarshal(f.Payload, &fc); err != nil {
			return nil, fmt.Errorf("core: decoding forest selector: %w", err)
		}
		sel = forestSelector{f: &fc}
	case kindKNN:
		var p knnPayload
		if err := json.Unmarshal(f.Payload, &p); err != nil {
			return nil, fmt.Errorf("core: decoding knn selector: %w", err)
		}
		if p.Model == nil {
			return nil, fmt.Errorf("core: knn selector payload missing model")
		}
		sel = knnSelector{c: p.Model, name: p.Name}
	case kindLinearSVM:
		var p linearSVMPayload
		if err := json.Unmarshal(f.Payload, &p); err != nil {
			return nil, fmt.Errorf("core: decoding linear-svm selector: %w", err)
		}
		if p.Model == nil || p.Scaler == nil {
			return nil, fmt.Errorf("core: linear-svm selector payload incomplete")
		}
		sel = linearSVMSelector{m: p.Model, sc: p.Scaler}
	case kindRadialSVM:
		var m svm.RBF
		if err := json.Unmarshal(f.Payload, &m); err != nil {
			return nil, fmt.Errorf("core: decoding radial-svm selector: %w", err)
		}
		sel = radialSVMSelector{m: &m}
	case kindStatic:
		var s StaticSelector
		if err := json.Unmarshal(f.Payload, &s); err != nil {
			return nil, fmt.Errorf("core: decoding static selector: %w", err)
		}
		sel = s
	default:
		return nil, fmt.Errorf("core: unknown selector kind %q", f.Selector)
	}

	return NewLibrary(configs, sel)
}
