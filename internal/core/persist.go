package core

import (
	"encoding/json"
	"fmt"
	"io"

	"kernelselect/internal/gemm"
	"kernelselect/internal/ml/forest"
	"kernelselect/internal/ml/knn"
	"kernelselect/internal/ml/scale"
	"kernelselect/internal/ml/svm"
	"kernelselect/internal/ml/tree"
)

// Library persistence: a trained library (kernel set + fitted selector)
// serialises to a single JSON artifact, so the expensive tuning/training
// stage runs once and the deployable result ships with the compute library.
// A selector alone also round-trips (SaveSelector/LoadSelector), which lets
// a serving process swap the runtime classifier while keeping the compiled
// kernel set — the A/B harness cmd/selectd builds on.
//
// Both decoders treat their input as untrusted: malformed or adversarial
// artifacts must come back as errors, never as panics here or later inside
// Select. Every model payload is therefore structurally validated on load
// (see the Validate methods in internal/ml/*).

// numShapeFeatures is the width of the feature vectors every persisted
// selector must accept: gemm.Shape.Features() returns (M, K, N).
var numShapeFeatures = len(gemm.Shape{}.Features())

// libraryFile is the on-disk format of a full library. Device records which
// device model the library was tuned for ("" on untagged artifacts predating
// the field); Features records the selector's training feature width (0 on
// old artifacts, meaning the shape-feature default). Both are validated at
// load so a library pruned for one device is never silently served for
// another, and a selector trained on augmented features is never fed plain
// shape vectors.
//
// Unified marks a device-feature-augmented artifact: the selector consumes
// shape features with a device feature vector appended, and Features records
// the full augmented width. The marker is authoritative — a wide width alone
// never implies unified dispatch, and a unified artifact never loads as a
// shape library — so the two artifact kinds are unambiguous on disk. Devices
// lists the devices whose pooled datasets trained a unified selector
// (provenance, not a serving restriction).
type libraryFile struct {
	Version  int             `json:"version"`
	Device   string          `json:"device,omitempty"`
	Features int             `json:"features,omitempty"`
	Unified  bool            `json:"unified,omitempty"`
	Devices  []string        `json:"devices,omitempty"`
	Configs  []string        `json:"configs"`
	Selector string          `json:"selector"`
	Payload  json.RawMessage `json:"payload"`
}

// selectorFile is the on-disk format of a selector-only artifact. Device,
// Features, and Unified follow the libraryFile conventions.
type selectorFile struct {
	Version  int             `json:"version"`
	Device   string          `json:"device,omitempty"`
	Features int             `json:"features,omitempty"`
	Unified  bool            `json:"unified,omitempty"`
	Selector string          `json:"selector"`
	Payload  json.RawMessage `json:"payload"`
}

const libraryFileVersion = 1

// Selector kind tags. StaticSelector also round-trips, so generated or
// hand-assembled libraries persist too.
const (
	kindTree      = "decision-tree"
	kindForest    = "random-forest"
	kindKNN       = "knn"
	kindLinearSVM = "linear-svm"
	kindRadialSVM = "radial-svm"
	kindStatic    = "static"
)

// knnPayload wraps the k-NN model with its display name (1NearestNeighbor /
// 3NearestNeighbor).
type knnPayload struct {
	Model *knn.Classifier `json:"model"`
	Name  string          `json:"name"`
}

// linearSVMPayload wraps the SVM with its feature preprocessing.
type linearSVMPayload struct {
	Model  *svm.Linear   `json:"model"`
	Scaler *scale.Scaler `json:"scaler"`
}

// encodeSelector maps a selector to its kind tag and serialisable payload.
// Selectors produced by the trainers in this package (and StaticSelector)
// are supported; anything else returns an error.
func encodeSelector(sel Selector) (kind string, payload any, err error) {
	switch s := sel.(type) {
	case treeSelector:
		return kindTree, s.c, nil
	case forestSelector:
		return kindForest, s.f, nil
	case knnSelector:
		return kindKNN, knnPayload{Model: s.c, Name: s.name}, nil
	case linearSVMSelector:
		return kindLinearSVM, linearSVMPayload{Model: s.m, Scaler: s.sc}, nil
	case radialSVMSelector:
		return kindRadialSVM, s.m, nil
	case StaticSelector:
		return kindStatic, s, nil
	default:
		return "", nil, fmt.Errorf("core: selector %q is not serialisable", sel.Name())
	}
}

// selectorWidth reports the feature width a trained selector expects, via
// the NumFeatures plumbing of the ML packages; selectors that do not record
// a width (static, pre-field artifacts) default to the shape-feature width.
func selectorWidth(sel Selector) int {
	var n int
	switch s := sel.(type) {
	case treeSelector:
		n = s.c.NumFeatures()
	case forestSelector:
		n = s.f.NumFeatures()
	case knnSelector:
		n = s.c.NumFeatures()
	case linearSVMSelector:
		n = s.m.NumFeatures()
	case radialSVMSelector:
		n = s.m.NumFeatures()
	}
	if n <= 0 {
		return numShapeFeatures
	}
	return n
}

// checkArtifactHeader validates the device tag, feature width, and unified
// marker common to both artifact kinds, returning the effective feature
// width the selector payload must validate against.
//
// Device tags: wantDevice "" accepts any tag (and untagged files); otherwise
// a non-empty tag must match. In strict mode — multi-device serving, where a
// gen9-trained library silently loading into an r9nano backend is exactly the
// bug being prevented — untagged shape artifacts are refused outright.
// Unified artifacts are exempt from tag matching in non-strict mode (they
// dispatch for any device by construction) but refused in strict mode, which
// loads per-device specialists.
//
// Widths: 0 is the legacy untagged default and means the shape width; the
// shape width is a plain shape artifact; anything wider requires the unified
// marker, because a wide selector fed bare (M, K, N) vectors would index out
// of range at predict time. A unified marker on a shape-width (or absent)
// width is likewise malformed: the marker promises device features that the
// recorded width does not hold.
func checkArtifactHeader(kind string, device, wantDevice string, features int, unified, strict bool) (int, error) {
	if strict && unified {
		return 0, fmt.Errorf("core: %s artifact is unified; multi-device specialist serving needs per-device artifacts (serve it with a unified backend instead)", kind)
	}
	if strict && device == "" {
		return 0, fmt.Errorf("core: %s artifact has no device tag; multi-device serving requires device-tagged artifacts", kind)
	}
	if !unified && wantDevice != "" && device != "" && device != wantDevice {
		return 0, fmt.Errorf("core: %s artifact is tagged for device %q, want %q", kind, device, wantDevice)
	}
	switch {
	case features == 0:
		if unified {
			return 0, fmt.Errorf("core: %s artifact is marked unified but records no feature width", kind)
		}
		return numShapeFeatures, nil
	case features == numShapeFeatures:
		if unified {
			return 0, fmt.Errorf("core: %s artifact is marked unified but its %d-feature width carries no device features", kind, features)
		}
		return features, nil
	case features > numShapeFeatures:
		if !unified {
			return 0, fmt.Errorf("core: %s artifact selector expects %d features; shape dispatch provides %d (device-augmented artifacts must carry the unified marker)",
				kind, features, numShapeFeatures)
		}
		return features, nil
	default:
		return 0, fmt.Errorf("core: %s artifact selector expects %d features; shape dispatch provides %d",
			kind, features, numShapeFeatures)
	}
}

// decodeSelector inverts encodeSelector and validates the decoded model
// against the expected feature width so that Select can never panic on a
// malformed artifact.
func decodeSelector(kind string, payload json.RawMessage, numFeatures int) (Selector, error) {
	switch kind {
	case kindTree:
		var c tree.Classifier
		if err := json.Unmarshal(payload, &c); err != nil {
			return nil, fmt.Errorf("core: decoding tree selector: %w", err)
		}
		if err := c.Validate(numFeatures); err != nil {
			return nil, fmt.Errorf("core: invalid tree selector: %w", err)
		}
		return treeSelector{c: &c}, nil
	case kindForest:
		var fc forest.Classifier
		if err := json.Unmarshal(payload, &fc); err != nil {
			return nil, fmt.Errorf("core: decoding forest selector: %w", err)
		}
		if err := fc.Validate(numFeatures); err != nil {
			return nil, fmt.Errorf("core: invalid forest selector: %w", err)
		}
		return forestSelector{f: &fc}, nil
	case kindKNN:
		var p knnPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return nil, fmt.Errorf("core: decoding knn selector: %w", err)
		}
		if p.Model == nil {
			return nil, fmt.Errorf("core: knn selector payload missing model")
		}
		if err := p.Model.Validate(numFeatures); err != nil {
			return nil, fmt.Errorf("core: invalid knn selector: %w", err)
		}
		return knnSelector{c: p.Model, name: p.Name}, nil
	case kindLinearSVM:
		var p linearSVMPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return nil, fmt.Errorf("core: decoding linear-svm selector: %w", err)
		}
		if p.Model == nil || p.Scaler == nil {
			return nil, fmt.Errorf("core: linear-svm selector payload incomplete")
		}
		if err := p.Model.Validate(numFeatures); err != nil {
			return nil, fmt.Errorf("core: invalid linear-svm selector: %w", err)
		}
		if len(p.Scaler.Means) != numFeatures || len(p.Scaler.Stds) != numFeatures {
			return nil, fmt.Errorf("core: linear-svm scaler fitted on %d/%d features, want %d",
				len(p.Scaler.Means), len(p.Scaler.Stds), numFeatures)
		}
		return linearSVMSelector{m: p.Model, sc: p.Scaler}, nil
	case kindRadialSVM:
		var m svm.RBF
		if err := json.Unmarshal(payload, &m); err != nil {
			return nil, fmt.Errorf("core: decoding radial-svm selector: %w", err)
		}
		if err := m.Validate(numFeatures); err != nil {
			return nil, fmt.Errorf("core: invalid radial-svm selector: %w", err)
		}
		return radialSVMSelector{m: &m}, nil
	case kindStatic:
		var s StaticSelector
		if err := json.Unmarshal(payload, &s); err != nil {
			return nil, fmt.Errorf("core: decoding static selector: %w", err)
		}
		if s.Index < 0 {
			return nil, fmt.Errorf("core: static selector index %d is negative", s.Index)
		}
		return s, nil
	default:
		return nil, fmt.Errorf("core: unknown selector kind %q", kind)
	}
}

// SaveLibrary writes the library as JSON with no device tag.
func SaveLibrary(w io.Writer, lib *Library) error {
	return SaveLibraryForDevice(w, lib, "")
}

// SaveLibraryForDevice writes the library as JSON tagged with the device it
// was tuned for, so deployment can refuse to serve it on another device. The
// feature width is always recorded, and a unified library keeps its unified
// marker and training-device provenance, so re-saving a loaded artifact
// never downgrades it to an ambiguous legacy file.
func SaveLibraryForDevice(w io.Writer, lib *Library, deviceName string) error {
	f := libraryFile{
		Version: libraryFileVersion,
		Device:  deviceName,
		Unified: lib.unified,
		Devices: lib.devices,
	}
	for _, c := range lib.Configs {
		f.Configs = append(f.Configs, c.String())
	}
	kind, payload, err := encodeSelector(lib.selector)
	if err != nil {
		return err
	}
	f.Selector = kind
	f.Features = lib.features
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("core: marshalling selector: %w", err)
	}
	f.Payload = raw
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// SaveUnifiedLibrary writes a unified (device-feature-augmented) library,
// recording the devices whose pooled datasets trained it. The artifact
// carries no single device tag — a unified selector serves any device — but
// the unified marker and the full augmented feature width are always
// written, so loaders can never mistake it for a shape artifact.
func SaveUnifiedLibrary(w io.Writer, lib *Library, deviceNames []string) error {
	if !lib.Unified() {
		return fmt.Errorf("core: SaveUnifiedLibrary needs a unified library; selector %q has shape width %d",
			lib.SelectorName(), lib.NumFeatures())
	}
	saved := *lib
	saved.devices = append([]string(nil), deviceNames...)
	return SaveLibraryForDevice(w, &saved, "")
}

// LoadLibrary reads a library written by SaveLibrary, accepting any device
// tag.
func LoadLibrary(r io.Reader) (*Library, error) {
	return LoadLibraryForDevice(r, "")
}

// LoadLibraryForDevice reads a library written by SaveLibrary or
// SaveLibraryForDevice and validates its device tag: a non-empty tag must
// match wantDevice (untagged artifacts are accepted for compatibility).
func LoadLibraryForDevice(r io.Reader, wantDevice string) (*Library, error) {
	return loadLibrary(r, wantDevice, false)
}

// LoadLibraryForDeviceStrict is LoadLibraryForDevice for multi-device
// serving: untagged shape artifacts are refused instead of accepted — a
// gen9-trained library must never load silently into an r9nano backend — and
// unified artifacts are refused because specialist backends dispatch on
// shape features alone.
func LoadLibraryForDeviceStrict(r io.Reader, wantDevice string) (*Library, error) {
	return loadLibrary(r, wantDevice, true)
}

func loadLibrary(r io.Reader, wantDevice string, strict bool) (*Library, error) {
	var f libraryFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding library: %w", err)
	}
	if f.Version != libraryFileVersion {
		return nil, fmt.Errorf("core: unsupported library version %d", f.Version)
	}
	width, err := checkArtifactHeader("library", f.Device, wantDevice, f.Features, f.Unified, strict)
	if err != nil {
		return nil, err
	}
	if len(f.Configs) == 0 {
		return nil, fmt.Errorf("core: library file has no configurations")
	}
	configs := make([]gemm.Config, len(f.Configs))
	for i, name := range f.Configs {
		cfg, err := gemm.ParseConfig(name)
		if err != nil {
			return nil, err
		}
		configs[i] = cfg
	}
	sel, err := decodeSelector(f.Selector, f.Payload, width)
	if err != nil {
		return nil, err
	}
	if f.Unified {
		lib, err := NewUnifiedLibrary(configs, sel)
		if err != nil {
			return nil, err
		}
		lib.devices = append([]string(nil), f.Devices...)
		return lib, nil
	}
	return NewLibrary(configs, sel)
}

// SaveSelector writes a selector-only artifact: the trained classifier
// without the kernel set, for swapping the runtime dispatch of an existing
// library. No device tag is recorded.
func SaveSelector(w io.Writer, sel Selector) error {
	return SaveSelectorForDevice(w, sel, "")
}

// SaveSelectorForDevice writes a selector-only artifact tagged with the
// device whose dataset trained it.
func SaveSelectorForDevice(w io.Writer, sel Selector, deviceName string) error {
	kind, payload, err := encodeSelector(sel)
	if err != nil {
		return err
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("core: marshalling selector: %w", err)
	}
	width := selectorWidth(sel)
	enc := json.NewEncoder(w)
	return enc.Encode(selectorFile{
		Version:  libraryFileVersion,
		Device:   deviceName,
		Features: width,
		Unified:  width > numShapeFeatures,
		Selector: kind,
		Payload:  raw,
	})
}

// LoadSelector reads a selector written by SaveSelector, accepting any
// device tag. The caller pairs it with a configuration list; out-of-range
// predictions are clamped by Library.Choose as usual.
func LoadSelector(r io.Reader) (Selector, error) {
	return LoadSelectorForDevice(r, "")
}

// LoadSelectorForDevice reads a selector artifact and validates its device
// tag the way LoadLibraryForDevice does.
func LoadSelectorForDevice(r io.Reader, wantDevice string) (Selector, error) {
	return loadSelector(r, wantDevice, false)
}

// LoadSelectorForDeviceStrict is LoadSelectorForDevice with the multi-device
// rules of LoadLibraryForDeviceStrict: untagged and unified artifacts are
// refused.
func LoadSelectorForDeviceStrict(r io.Reader, wantDevice string) (Selector, error) {
	return loadSelector(r, wantDevice, true)
}

func loadSelector(r io.Reader, wantDevice string, strict bool) (Selector, error) {
	var f selectorFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding selector: %w", err)
	}
	if f.Version != libraryFileVersion {
		return nil, fmt.Errorf("core: unsupported selector version %d", f.Version)
	}
	width, err := checkArtifactHeader("selector", f.Device, wantDevice, f.Features, f.Unified, strict)
	if err != nil {
		return nil, err
	}
	return decodeSelector(f.Selector, f.Payload, width)
}
