package core

import (
	"testing"

	"kernelselect/internal/dataset"
	"kernelselect/internal/gemm"
	"kernelselect/internal/xrand"
)

// randomPruneDataset builds a dataset over a random slice of the real config
// space with noisy fake measurements, so the clustering-based pruners see
// unstructured data — the regime most likely to expose out-of-range or
// duplicate selections.
func randomPruneDataset(t *testing.T, rng *xrand.Rand) *dataset.PerfDataset {
	t.Helper()
	all := gemm.AllConfigs()
	numConfigs := 8 + rng.Intn(40)
	start := rng.Intn(len(all) - numConfigs)
	configs := all[start : start+numConfigs]

	numShapes := 4 + rng.Intn(24)
	shapes := make([]gemm.Shape, numShapes)
	for i := range shapes {
		shapes[i] = gemm.Shape{
			M: 1 + rng.Intn(4096),
			K: 1 + rng.Intn(4096),
			N: 1 + rng.Intn(4096),
		}
	}
	measure := func(cfg gemm.Config, s gemm.Shape) (float64, error) {
		base := float64((s.M*13+s.K*7+s.N*3)%97) + 1
		return base * (1 + 0.5*rng.Float64()) * float64(cfg.TileRows+cfg.TileCols), nil
	}
	ds, err := dataset.BuildMeasured(measure, shapes, configs)
	if err != nil {
		t.Fatalf("BuildMeasured: %v", err)
	}
	return ds
}

// Property: every pruner returns exactly n configuration indices, each a
// valid column of the input dataset, with no duplicates — for any dataset,
// any feasible n, any seed. The retained library is by construction a subset
// of the input configuration space.
func TestPrunersReturnValidSubset(t *testing.T) {
	rng := xrand.New(31)
	pruners := append(AllPruners(), Greedy{})
	for trial := 0; trial < 8; trial++ {
		ds := randomPruneDataset(t, rng)
		nCases := []int{1, 2, 1 + rng.Intn(ds.NumConfigs()), ds.NumConfigs()}
		for _, pr := range pruners {
			for _, n := range nCases {
				seed := rng.Uint64()
				got := pr.Prune(ds, n, seed)
				if len(got) != n {
					t.Fatalf("trial %d %s(n=%d): returned %d indices", trial, pr.Name(), n, len(got))
				}
				seen := make(map[int]bool, n)
				for _, idx := range got {
					if idx < 0 || idx >= ds.NumConfigs() {
						t.Fatalf("trial %d %s(n=%d): index %d out of [0,%d)",
							trial, pr.Name(), n, idx, ds.NumConfigs())
					}
					if seen[idx] {
						t.Fatalf("trial %d %s(n=%d): duplicate index %d in %v",
							trial, pr.Name(), n, idx, got)
					}
					seen[idx] = true
				}
			}
		}
	}
}

// Property: pruning must not mutate its input dataset — selection is
// read-only analysis.
func TestPrunersLeaveDatasetIntact(t *testing.T) {
	rng := xrand.New(47)
	ds := randomPruneDataset(t, rng)
	before := append([]float64(nil), ds.Norm.Row(0)...)
	for _, pr := range append(AllPruners(), Greedy{}) {
		pr.Prune(ds, 3, 99)
	}
	after := ds.Norm.Row(0)
	for j := range before {
		if before[j] != after[j] {
			t.Fatalf("pruning mutated the dataset at column %d: %v -> %v", j, before[j], after[j])
		}
	}
}
