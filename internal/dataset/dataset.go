// Package dataset builds and manipulates the tuning dataset at the heart of
// the paper: a matrix of per-(GEMM shape, kernel configuration) performance
// scores, normalized per shape by the best configuration for that shape.
//
// The dataset can be built from the analytical device model (internal/sim,
// the substitute for the paper's R9 Nano benchmark runs) or from live
// measurements of the CPU-hosted kernels (see BuildMeasured), and round-trips
// through CSV for offline analysis, mirroring the published dataset of the
// paper's supplementary material.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"kernelselect/internal/gemm"
	"kernelselect/internal/mat"
	"kernelselect/internal/par"
	"kernelselect/internal/sim"
	"kernelselect/internal/xrand"
)

// PerfDataset holds achieved performance for every (shape, configuration)
// pair: GFLOPS is the raw score and Norm the per-shape normalization
// (each row divided by its maximum, so the per-shape optimum scores 1).
type PerfDataset struct {
	Shapes  []gemm.Shape
	Configs []gemm.Config
	GFLOPS  *mat.Dense // len(Shapes) × len(Configs)
	Norm    *mat.Dense // len(Shapes) × len(Configs), row max = 1
}

// Build prices every configuration on every shape with the analytical model,
// in parallel on GOMAXPROCS workers, and returns the normalized dataset.
func Build(m *sim.Model, shapes []gemm.Shape, configs []gemm.Config) *PerfDataset {
	return BuildParallel(m, shapes, configs, 0)
}

// BuildParallel is Build with an explicit worker count (0 = GOMAXPROCS).
// Each worker prices whole rows and writes only its own row, so the dataset
// is identical at any worker count.
func BuildParallel(m *sim.Model, shapes []gemm.Shape, configs []gemm.Config, workers int) *PerfDataset {
	d := &PerfDataset{
		Shapes:  append([]gemm.Shape(nil), shapes...),
		Configs: append([]gemm.Config(nil), configs...),
		GFLOPS:  mat.NewDense(len(shapes), len(configs)),
	}
	bp := m.Batch(d.Configs)
	par.Do(workers, len(d.Shapes), func(i int) {
		bp.PriceRow(d.GFLOPS.Row(i), d.Shapes[i])
	})
	d.normalize()
	return d
}

// BuildMulti prices the same (shapes × configs) grid on several device
// models through one shared worker pool — the cross-device counterpart of
// BuildParallel. The task list is the flattened (model, shape) row grid, so
// a slow device's rows do not serialise behind a fast device's, and each
// model's memoised pricing cache fills exactly once. The returned datasets
// are row-aligned: dataset d, row i describes the same shape for every d,
// which is what lets cross-device experiments reuse one train/test split.
// The result is identical at any worker count.
func BuildMulti(models []*sim.Model, shapes []gemm.Shape, configs []gemm.Config, workers int) []*PerfDataset {
	out := make([]*PerfDataset, len(models))
	for d := range out {
		out[d] = &PerfDataset{
			Shapes:  append([]gemm.Shape(nil), shapes...),
			Configs: append([]gemm.Config(nil), configs...),
			GFLOPS:  mat.NewDense(len(shapes), len(configs)),
		}
	}
	bps := make([]*sim.BatchPricer, len(models))
	for d, m := range models {
		bps[d] = m.Batch(configs)
	}
	par.Do(workers, len(models)*len(shapes), func(t int) {
		d, i := t/len(shapes), t%len(shapes)
		bps[d].PriceRow(out[d].GFLOPS.Row(i), out[d].Shapes[i])
	})
	for _, ds := range out {
		ds.normalize()
	}
	return out
}

// Measurer abstracts a live benchmark of one configuration on one shape,
// returning achieved GFLOPS. It lets tests supply deterministic fakes.
type Measurer func(cfg gemm.Config, s gemm.Shape) (float64, error)

// BuildMeasured constructs a dataset from live measurements. Rows are
// measured sequentially (benchmarking in parallel would perturb timings).
func BuildMeasured(measure Measurer, shapes []gemm.Shape, configs []gemm.Config) (*PerfDataset, error) {
	d := &PerfDataset{
		Shapes:  append([]gemm.Shape(nil), shapes...),
		Configs: append([]gemm.Config(nil), configs...),
		GFLOPS:  mat.NewDense(len(shapes), len(configs)),
	}
	for i, s := range d.Shapes {
		row := d.GFLOPS.Row(i)
		for j, cfg := range d.Configs {
			v, err := measure(cfg, s)
			if err != nil {
				return nil, fmt.Errorf("dataset: measuring %v on %v: %w", cfg, s, err)
			}
			if v <= 0 {
				return nil, fmt.Errorf("dataset: non-positive measurement %v for %v on %v", v, cfg, s)
			}
			row[j] = v
		}
	}
	d.normalize()
	return d, nil
}

func (d *PerfDataset) normalize() {
	d.Norm = mat.NewDense(d.GFLOPS.Rows(), d.GFLOPS.Cols())
	for i := 0; i < d.GFLOPS.Rows(); i++ {
		src := d.GFLOPS.Row(i)
		dst := d.Norm.Row(i)
		best := src[0]
		for _, v := range src[1:] {
			if v > best {
				best = v
			}
		}
		for j, v := range src {
			dst[j] = v / best
		}
	}
}

// NumShapes returns the number of dataset rows.
func (d *PerfDataset) NumShapes() int { return len(d.Shapes) }

// NumConfigs returns the number of dataset columns.
func (d *PerfDataset) NumConfigs() int { return len(d.Configs) }

// Best returns the index and raw GFLOPS of the best configuration for row i.
func (d *PerfDataset) Best(i int) (config int, gflops float64) {
	row := d.GFLOPS.Row(i)
	config = 0
	gflops = row[0]
	for j, v := range row {
		if v > gflops {
			config, gflops = j, v
		}
	}
	return config, gflops
}

// WinCounts returns, for each configuration, the number of shapes on which
// it is the per-shape optimum.
func (d *PerfDataset) WinCounts() []int {
	wins := make([]int, d.NumConfigs())
	for i := 0; i < d.NumShapes(); i++ {
		c, _ := d.Best(i)
		wins[c]++
	}
	return wins
}

// MeanNormPerf returns each configuration's mean normalized performance
// across all shapes (the quantity Figure 1 sorts by).
func (d *PerfDataset) MeanNormPerf() []float64 {
	means := make([]float64, d.NumConfigs())
	for i := 0; i < d.NumShapes(); i++ {
		for j, v := range d.Norm.Row(i) {
			means[j] += v
		}
	}
	inv := 1 / float64(d.NumShapes())
	for j := range means {
		means[j] *= inv
	}
	return means
}

// Features returns the shape feature matrix (M, K, N per row) used as
// classifier input.
func (d *PerfDataset) Features() *mat.Dense {
	f := mat.NewDense(d.NumShapes(), 3)
	for i, s := range d.Shapes {
		copy(f.Row(i), s.Features())
	}
	return f
}

// Subset returns a dataset restricted to the given rows (shapes). The
// normalization is inherited, not recomputed: scores remain relative to the
// full-dataset per-shape optimum. It panics on an empty row list.
func (d *PerfDataset) Subset(rows []int) *PerfDataset {
	if len(rows) == 0 {
		panic("dataset: Subset of zero rows")
	}
	s := &PerfDataset{
		Shapes:  make([]gemm.Shape, len(rows)),
		Configs: d.Configs,
		GFLOPS:  mat.NewDense(len(rows), d.NumConfigs()),
		Norm:    mat.NewDense(len(rows), d.NumConfigs()),
	}
	for k, i := range rows {
		s.Shapes[k] = d.Shapes[i]
		copy(s.GFLOPS.Row(k), d.GFLOPS.Row(i))
		copy(s.Norm.Row(k), d.Norm.Row(i))
	}
	return s
}

// Stack concatenates datasets sharing one configuration list into a single
// dataset whose rows are every part's rows in order — the multi-device
// training pool for transfer-aware pruning: each device contributes its own
// rows, and each row's normalization stays relative to that device's
// per-shape optimum (Norm is inherited, not recomputed, exactly as Subset
// inherits it). It panics when the parts' configuration lists disagree, since
// columns would then mean different kernels in different rows.
func Stack(parts []*PerfDataset) *PerfDataset {
	if len(parts) == 0 {
		panic("dataset: Stack of zero datasets")
	}
	ref := parts[0].Configs
	total := 0
	for _, p := range parts {
		if len(p.Configs) != len(ref) {
			panic("dataset: Stack over differing configuration lists")
		}
		for j, c := range p.Configs {
			if c != ref[j] {
				panic("dataset: Stack over differing configuration lists")
			}
		}
		total += p.NumShapes()
	}
	s := &PerfDataset{
		Shapes:  make([]gemm.Shape, 0, total),
		Configs: ref,
		GFLOPS:  mat.NewDense(total, len(ref)),
		Norm:    mat.NewDense(total, len(ref)),
	}
	row := 0
	for _, p := range parts {
		s.Shapes = append(s.Shapes, p.Shapes...)
		for i := 0; i < p.NumShapes(); i++ {
			copy(s.GFLOPS.Row(row), p.GFLOPS.Row(i))
			copy(s.Norm.Row(row), p.Norm.Row(i))
			row++
		}
	}
	return s
}

// Split partitions the dataset rows into train and test subsets with the
// given test fraction, shuffled deterministically by seed. It mirrors the
// paper's random 136/34 segmentation.
func (d *PerfDataset) Split(seed uint64, testFrac float64) (train, test *PerfDataset) {
	if testFrac <= 0 || testFrac >= 1 {
		panic(fmt.Sprintf("dataset: test fraction %v out of (0,1)", testFrac))
	}
	perm := xrand.New(seed).Perm(d.NumShapes())
	nTest := int(float64(d.NumShapes())*testFrac + 0.5)
	if nTest < 1 {
		nTest = 1
	}
	if nTest >= d.NumShapes() {
		nTest = d.NumShapes() - 1 // both sides of the split must be non-empty
	}
	testRows := append([]int(nil), perm[:nTest]...)
	trainRows := append([]int(nil), perm[nTest:]...)
	sort.Ints(testRows)
	sort.Ints(trainRows)
	return d.Subset(trainRows), d.Subset(testRows)
}

// WriteCSV emits the dataset as CSV: a header of configuration names, then
// one row per shape as "M,K,N,score...". Raw GFLOPS are written; Norm is
// recomputed on load.
func (d *PerfDataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "m,k,n")
	for _, c := range d.Configs {
		fmt.Fprintf(bw, ",%s", c)
	}
	fmt.Fprintln(bw)
	for i, s := range d.Shapes {
		fmt.Fprintf(bw, "%d,%d,%d", s.M, s.K, s.N)
		for _, v := range d.GFLOPS.Row(i) {
			fmt.Fprintf(bw, ",%.6g", v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*PerfDataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	header := strings.Split(sc.Text(), ",")
	if len(header) < 4 || header[0] != "m" || header[1] != "k" || header[2] != "n" {
		return nil, fmt.Errorf("dataset: malformed CSV header")
	}
	configs := make([]gemm.Config, 0, len(header)-3)
	for _, name := range header[3:] {
		cfg, err := gemm.ParseConfig(name)
		if err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		configs = append(configs, cfg)
	}
	var shapes []gemm.Shape
	var rows [][]float64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", len(shapes)+1, len(fields), len(header))
		}
		m, err1 := strconv.Atoi(fields[0])
		k, err2 := strconv.Atoi(fields[1])
		n, err3 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("dataset: bad shape in row %d", len(shapes)+1)
		}
		row := make([]float64, len(fields)-3)
		for j, f := range fields[3:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: bad score %q in row %d", f, len(shapes)+1)
			}
			row[j] = v
		}
		shapes = append(shapes, gemm.Shape{M: m, K: k, N: n})
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(shapes) == 0 {
		return nil, fmt.Errorf("dataset: CSV has no data rows")
	}
	d := &PerfDataset{
		Shapes:  shapes,
		Configs: configs,
		GFLOPS:  mat.FromRows(rows),
	}
	d.normalize()
	return d, nil
}
