package dataset

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
	"kernelselect/internal/xrand"
)

func smallDataset(t *testing.T) *PerfDataset {
	t.Helper()
	m := sim.New(device.R9Nano())
	shapes := []gemm.Shape{
		{M: 3136, K: 576, N: 64},
		{M: 12544, K: 64, N: 64},
		{M: 1, K: 4096, N: 1000},
		{M: 64, K: 25088, N: 4096},
		{M: 784, K: 1152, N: 256},
		{M: 196, K: 2304, N: 512},
	}
	return Build(m, shapes, gemm.AllConfigs()[:100])
}

func TestBuildShapesAndNormalization(t *testing.T) {
	d := smallDataset(t)
	if d.NumShapes() != 6 || d.NumConfigs() != 100 {
		t.Fatalf("dims = %dx%d", d.NumShapes(), d.NumConfigs())
	}
	for i := 0; i < d.NumShapes(); i++ {
		max := 0.0
		for j := 0; j < d.NumConfigs(); j++ {
			v := d.Norm.At(i, j)
			if v <= 0 || v > 1 {
				t.Fatalf("norm score %v out of (0,1] at (%d,%d)", v, i, j)
			}
			if v > max {
				max = v
			}
		}
		if math.Abs(max-1) > 1e-12 {
			t.Fatalf("row %d max = %v, want 1", i, max)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := smallDataset(t), smallDataset(t)
	for i := 0; i < a.NumShapes(); i++ {
		for j := 0; j < a.NumConfigs(); j++ {
			if a.GFLOPS.At(i, j) != b.GFLOPS.At(i, j) {
				t.Fatal("Build is not deterministic")
			}
		}
	}
}

func TestBestMatchesNorm(t *testing.T) {
	d := smallDataset(t)
	for i := 0; i < d.NumShapes(); i++ {
		c, g := d.Best(i)
		if d.Norm.At(i, c) != 1 {
			t.Fatalf("row %d: Best config %d has norm %v", i, c, d.Norm.At(i, c))
		}
		if g != d.GFLOPS.At(i, c) {
			t.Fatal("Best gflops mismatch")
		}
	}
}

func TestWinCountsSumToShapes(t *testing.T) {
	d := smallDataset(t)
	total := 0
	for _, w := range d.WinCounts() {
		total += w
	}
	if total != d.NumShapes() {
		t.Fatalf("win counts sum to %d, want %d", total, d.NumShapes())
	}
}

func TestMeanNormPerfRange(t *testing.T) {
	d := smallDataset(t)
	for j, v := range d.MeanNormPerf() {
		if v <= 0 || v > 1 {
			t.Fatalf("mean norm perf %v out of range for config %d", v, j)
		}
	}
}

func TestFeaturesLayout(t *testing.T) {
	d := smallDataset(t)
	f := d.Features()
	if f.Rows() != d.NumShapes() || f.Cols() != 3 {
		t.Fatalf("features dims %dx%d", f.Rows(), f.Cols())
	}
	if f.At(0, 0) != float64(d.Shapes[0].M) || f.At(0, 1) != float64(d.Shapes[0].K) || f.At(0, 2) != float64(d.Shapes[0].N) {
		t.Fatal("feature row mismatch")
	}
}

func TestSubsetInheritsNormalization(t *testing.T) {
	d := smallDataset(t)
	s := d.Subset([]int{2, 4})
	if s.NumShapes() != 2 {
		t.Fatal("subset size")
	}
	if s.Shapes[0] != d.Shapes[2] || s.Shapes[1] != d.Shapes[4] {
		t.Fatal("subset shapes")
	}
	for j := 0; j < d.NumConfigs(); j++ {
		if s.Norm.At(0, j) != d.Norm.At(2, j) {
			t.Fatal("subset norm not inherited")
		}
	}
}

func TestSplitPartition(t *testing.T) {
	d := smallDataset(t)
	train, test := d.Split(42, 0.34)
	if train.NumShapes()+test.NumShapes() != d.NumShapes() {
		t.Fatal("split loses rows")
	}
	if test.NumShapes() != 2 {
		t.Fatalf("test size = %d, want 2", test.NumShapes())
	}
	seen := map[gemm.Shape]int{}
	for _, s := range train.Shapes {
		seen[s]++
	}
	for _, s := range test.Shapes {
		seen[s]++
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("shape %v appears %d times across the split", s, n)
		}
	}
}

func TestSplitDeterministicAndSeedSensitive(t *testing.T) {
	d := smallDataset(t)
	_, t1 := d.Split(1, 0.34)
	_, t2 := d.Split(1, 0.34)
	if t1.Shapes[0] != t2.Shapes[0] || t1.Shapes[1] != t2.Shapes[1] {
		t.Fatal("split not deterministic")
	}
	diff := false
	for seed := uint64(2); seed < 12; seed++ {
		_, t3 := d.Split(seed, 0.34)
		if t3.Shapes[0] != t1.Shapes[0] || t3.Shapes[1] != t1.Shapes[1] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split insensitive to seed")
	}
}

func TestSplitPanicsOnBadFraction(t *testing.T) {
	d := smallDataset(t)
	defer func() {
		if recover() == nil {
			t.Fatal("bad fraction accepted")
		}
	}()
	d.Split(1, 1.5)
}

func TestCSVRoundTrip(t *testing.T) {
	d := smallDataset(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShapes() != d.NumShapes() || got.NumConfigs() != d.NumConfigs() {
		t.Fatal("round-trip dims mismatch")
	}
	for i := range got.Shapes {
		if got.Shapes[i] != d.Shapes[i] {
			t.Fatal("round-trip shapes mismatch")
		}
	}
	for j := range got.Configs {
		if got.Configs[j] != d.Configs[j] {
			t.Fatal("round-trip configs mismatch")
		}
	}
	for i := 0; i < d.NumShapes(); i++ {
		for j := 0; j < d.NumConfigs(); j++ {
			rel := math.Abs(got.GFLOPS.At(i, j)-d.GFLOPS.At(i, j)) / d.GFLOPS.At(i, j)
			if rel > 1e-5 {
				t.Fatalf("round-trip score drift %v at (%d,%d)", rel, i, j)
			}
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"x,y,z,t1x1a1_wg8x8\n1,2,3,4\n",
		"m,k,n,bogus\n1,2,3,4\n",
		"m,k,n,t1x1a1_wg8x8\n1,2\n",
		"m,k,n,t1x1a1_wg8x8\n1,2,3,notanumber\n",
		"m,k,n,t1x1a1_wg8x8\na,2,3,4\n",
		"m,k,n,t1x1a1_wg8x8\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage CSV accepted", i)
		}
	}
}

func TestBuildMeasured(t *testing.T) {
	shapes := []gemm.Shape{{M: 8, N: 8, K: 8}, {M: 16, N: 16, K: 16}}
	configs := gemm.AllConfigs()[:5]
	r := xrand.New(3)
	scores := map[string]float64{}
	measure := func(cfg gemm.Config, s gemm.Shape) (float64, error) {
		key := cfg.String() + s.String()
		if _, ok := scores[key]; !ok {
			scores[key] = 1 + r.Float64()
		}
		return scores[key], nil
	}
	d, err := BuildMeasured(measure, shapes, configs)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumShapes() != 2 || d.NumConfigs() != 5 {
		t.Fatal("dims")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 5; j++ {
			if d.GFLOPS.At(i, j) != scores[configs[j].String()+shapes[i].String()] {
				t.Fatal("measured score mismatch")
			}
		}
	}
}

func TestBuildMeasuredPropagatesErrors(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := BuildMeasured(func(gemm.Config, gemm.Shape) (float64, error) {
		return 0, wantErr
	}, []gemm.Shape{{M: 1, N: 1, K: 1}}, gemm.AllConfigs()[:1])
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	_, err = BuildMeasured(func(gemm.Config, gemm.Shape) (float64, error) {
		return -1, nil
	}, []gemm.Shape{{M: 1, N: 1, K: 1}}, gemm.AllConfigs()[:1])
	if err == nil {
		t.Fatal("non-positive measurement accepted")
	}
}

func TestSubsetEmptyPanics(t *testing.T) {
	d := smallDataset(t)
	defer func() {
		if recover() == nil {
			t.Fatal("empty subset accepted")
		}
	}()
	d.Subset(nil)
}

func TestSplitExtremeFractionKeepsBothSides(t *testing.T) {
	d := smallDataset(t)
	train, test := d.Split(1, 0.99)
	if train.NumShapes() < 1 || test.NumShapes() < 1 {
		t.Fatalf("degenerate split %d/%d", train.NumShapes(), test.NumShapes())
	}
	train, test = d.Split(1, 0.01)
	if train.NumShapes() < 1 || test.NumShapes() < 1 {
		t.Fatalf("degenerate split %d/%d", train.NumShapes(), test.NumShapes())
	}
}

func TestBuildMultiMatchesPerDeviceBuilds(t *testing.T) {
	shapes := []gemm.Shape{
		{M: 3136, K: 576, N: 64}, {M: 1, K: 4096, N: 1000},
		{M: 784, K: 1152, N: 256}, {M: 196, K: 2304, N: 512},
	}
	configs := gemm.AllConfigs()[:60]
	devs := device.All()
	models := make([]*sim.Model, len(devs))
	for i, d := range devs {
		models[i] = sim.New(d)
	}
	for _, workers := range []int{1, 3} {
		multi := BuildMulti(models, shapes, configs, workers)
		if len(multi) != len(devs) {
			t.Fatalf("BuildMulti returned %d datasets for %d devices", len(multi), len(devs))
		}
		for d, dev := range devs {
			single := Build(sim.New(dev), shapes, configs)
			for i := range shapes {
				for j := range configs {
					if multi[d].GFLOPS.At(i, j) != single.GFLOPS.At(i, j) {
						t.Fatalf("workers=%d device %s: GFLOPS(%d,%d) differs from per-device build", workers, dev.Name, i, j)
					}
					if multi[d].Norm.At(i, j) != single.Norm.At(i, j) {
						t.Fatalf("workers=%d device %s: Norm(%d,%d) differs from per-device build", workers, dev.Name, i, j)
					}
				}
			}
		}
	}
}
