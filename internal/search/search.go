// Package search implements the "more intelligent parameter search methods"
// the paper's conclusion calls for: the 640-configuration case study is
// small enough to brute-force, but "this is not feasible for more general
// kernels that have significantly more parameters". The paper points to
// basin hopping and evolutionary algorithms (via the Kernel Tuner
// discussion); this package provides those plus random search and
// hill climbing, all over a pluggable configuration space scored by an
// arbitrary objective (in this repository, the analytical device model).
//
// Spaces are discrete with a neighbourhood structure: each of the five
// parameters (tile rows, tile cols, accumulator depth, work-group rows/cols)
// can step to an adjacent allowed value, which is what the local-move
// methods exploit.
package search

import (
	"fmt"
	"math"
	"sync"

	"kernelselect/internal/gemm"
	"kernelselect/internal/par"
	"kernelselect/internal/xrand"
)

// Space is a discrete kernel-configuration space: the cross product of
// allowed tile sizes (for all three tile parameters) and work-group shapes.
type Space struct {
	TileSizes  []int            // ascending
	WorkGroups []gemm.WorkGroup // fixed order; neighbourhood steps move along this list
}

// DefaultSpace returns the paper's 640-configuration case-study space.
func DefaultSpace() Space {
	return Space{
		TileSizes:  append([]int(nil), gemm.TileSizes...),
		WorkGroups: append([]gemm.WorkGroup(nil), gemm.WorkGroups...),
	}
}

// ExtendedSpace returns a ~18k-configuration space of the kind the paper's
// conclusion worries about: tile sizes up to 16 including non-powers of two,
// and every power-of-two work-group shape with 16–256 work-items. Exhaustive
// benchmarking at this scale is what the search strategies replace.
func ExtendedSpace() Space {
	sp := Space{TileSizes: []int{1, 2, 3, 4, 6, 8, 12, 16}}
	for total := 16; total <= 256; total *= 2 {
		for r := 1; r <= total; r *= 2 {
			sp.WorkGroups = append(sp.WorkGroups, gemm.WorkGroup{R: r, C: total / r})
		}
	}
	return sp
}

// Size returns the number of configurations in the space.
func (sp Space) Size() int {
	return len(sp.TileSizes) * len(sp.TileSizes) * len(sp.TileSizes) * len(sp.WorkGroups)
}

// Validate reports whether the space is well formed.
func (sp Space) Validate() error {
	if len(sp.TileSizes) == 0 || len(sp.WorkGroups) == 0 {
		return fmt.Errorf("search: empty space")
	}
	for i := 1; i < len(sp.TileSizes); i++ {
		if sp.TileSizes[i] <= sp.TileSizes[i-1] {
			return fmt.Errorf("search: tile sizes not strictly ascending")
		}
	}
	for _, w := range sp.WorkGroups {
		if w.R <= 0 || w.C <= 0 {
			return fmt.Errorf("search: invalid work-group %+v", w)
		}
	}
	return nil
}

// All enumerates the space in deterministic order.
func (sp Space) All() []gemm.Config {
	out := make([]gemm.Config, 0, sp.Size())
	for _, tr := range sp.TileSizes {
		for _, tc := range sp.TileSizes {
			for _, acc := range sp.TileSizes {
				for _, wg := range sp.WorkGroups {
					out = append(out, gemm.Config{TileRows: tr, TileCols: tc, AccDepth: acc, WG: wg})
				}
			}
		}
	}
	return out
}

// Random draws a uniform configuration.
func (sp Space) Random(r *xrand.Rand) gemm.Config {
	return gemm.Config{
		TileRows: sp.TileSizes[r.Intn(len(sp.TileSizes))],
		TileCols: sp.TileSizes[r.Intn(len(sp.TileSizes))],
		AccDepth: sp.TileSizes[r.Intn(len(sp.TileSizes))],
		WG:       sp.WorkGroups[r.Intn(len(sp.WorkGroups))],
	}
}

// tileIndex locates v in the tile list (-1 if absent).
func (sp Space) tileIndex(v int) int {
	for i, t := range sp.TileSizes {
		if t == v {
			return i
		}
	}
	return -1
}

// wgIndex locates w in the work-group list (-1 if absent).
func (sp Space) wgIndex(w gemm.WorkGroup) int {
	for i, x := range sp.WorkGroups {
		if x == w {
			return i
		}
	}
	return -1
}

// Contains reports whether cfg is a member of the space.
func (sp Space) Contains(cfg gemm.Config) bool {
	return sp.tileIndex(cfg.TileRows) >= 0 && sp.tileIndex(cfg.TileCols) >= 0 &&
		sp.tileIndex(cfg.AccDepth) >= 0 && sp.wgIndex(cfg.WG) >= 0
}

// Neighbors returns the configurations one parameter step away from cfg
// (each of the five axes moved one position up or down its allowed list).
// It panics if cfg is not in the space.
func (sp Space) Neighbors(cfg gemm.Config) []gemm.Config {
	ti := [3]int{sp.tileIndex(cfg.TileRows), sp.tileIndex(cfg.TileCols), sp.tileIndex(cfg.AccDepth)}
	wi := sp.wgIndex(cfg.WG)
	if ti[0] < 0 || ti[1] < 0 || ti[2] < 0 || wi < 0 {
		panic(fmt.Sprintf("search: %v not in space", cfg))
	}
	var out []gemm.Config
	apply := func(axis, idx int) gemm.Config {
		c := cfg
		switch axis {
		case 0:
			c.TileRows = sp.TileSizes[idx]
		case 1:
			c.TileCols = sp.TileSizes[idx]
		case 2:
			c.AccDepth = sp.TileSizes[idx]
		}
		return c
	}
	for axis := 0; axis < 3; axis++ {
		if ti[axis] > 0 {
			out = append(out, apply(axis, ti[axis]-1))
		}
		if ti[axis] < len(sp.TileSizes)-1 {
			out = append(out, apply(axis, ti[axis]+1))
		}
	}
	if wi > 0 {
		c := cfg
		c.WG = sp.WorkGroups[wi-1]
		out = append(out, c)
	}
	if wi < len(sp.WorkGroups)-1 {
		c := cfg
		c.WG = sp.WorkGroups[wi+1]
		out = append(out, c)
	}
	return out
}

// Objective scores a configuration; higher is better. Implementations are
// typically closures over the device model and a GEMM shape. When a search
// runs with Options.Workers > 1 the objective is called from multiple
// goroutines and must be safe for concurrent use (the analytical model's
// pricing is).
type Objective func(cfg gemm.Config) float64

// Options tune how a search executes without changing what it finds.
type Options struct {
	// Workers bounds concurrent candidate evaluation. 0 and 1 evaluate
	// sequentially (safe for any objective); higher values fan evaluations
	// out over a worker pool. Results are identical at every setting: the
	// candidate sets explored depend only on seeds and scores, and the best
	// configuration is reduced with a total-order tie break.
	Workers int
}

func firstOption(opts []Options) Options {
	if len(opts) > 0 {
		return opts[0]
	}
	return Options{}
}

// Result summarises one search run.
type Result struct {
	Best        gemm.Config
	BestScore   float64
	Evaluations int // distinct configurations evaluated, the budget measure of the paper's concern
}

// evalShards is the lock-stripe count of the evaluator's memo table.
const evalShards = 32

// evaluator memoises the objective — repeated visits to a configuration cost
// nothing, as a real tuner would cache measurements. The memo table is
// sharded so concurrent climbs and batch evaluations share it without
// contention. Evaluations counts distinct configurations; under concurrency
// a duplicate in-flight computation of the same key can call the objective
// twice, but both calls produce the identical value and the count stays
// exact.
type evaluator struct {
	obj     Objective
	workers int
	shards  [evalShards]struct {
		mu sync.Mutex
		m  map[gemm.Config]float64
	}
}

func newEvaluator(obj Objective, workers int) *evaluator {
	e := &evaluator{obj: obj, workers: workers}
	for i := range e.shards {
		e.shards[i].m = map[gemm.Config]float64{}
	}
	return e
}

func shardOf(cfg gemm.Config) uint64 {
	h := uint64(cfg.TileRows)<<32 ^ uint64(cfg.TileCols)<<24 ^
		uint64(cfg.AccDepth)<<16 ^ uint64(cfg.WG.R)<<8 ^ uint64(cfg.WG.C)
	h *= 0x9e3779b97f4a7c15
	return h >> 59
}

func (e *evaluator) score(cfg gemm.Config) float64 {
	sh := &e.shards[shardOf(cfg)]
	sh.mu.Lock()
	s, ok := sh.m[cfg]
	sh.mu.Unlock()
	if ok {
		return s
	}
	s = e.obj(cfg)
	sh.mu.Lock()
	sh.m[cfg] = s
	sh.mu.Unlock()
	return s
}

// scoreAll evaluates a batch, calling the objective at most once per
// distinct uncached configuration. With workers > 1 the uncached
// configurations are evaluated concurrently; the returned scores are always
// in input order.
func (e *evaluator) scoreAll(cfgs []gemm.Config) []float64 {
	if e.workers <= 1 {
		out := make([]float64, len(cfgs))
		for i, cfg := range cfgs {
			out[i] = e.score(cfg)
		}
		return out
	}
	// Dedupe so a batch with repeats (random draws, GA offspring) costs one
	// objective call per distinct new configuration.
	fresh := make([]gemm.Config, 0, len(cfgs))
	seen := make(map[gemm.Config]bool, len(cfgs))
	for _, cfg := range cfgs {
		if seen[cfg] {
			continue
		}
		seen[cfg] = true
		if _, ok := e.lookup(cfg); !ok {
			fresh = append(fresh, cfg)
		}
	}
	par.Do(e.workers, len(fresh), func(i int) { e.score(fresh[i]) })
	out := make([]float64, len(cfgs))
	for i, cfg := range cfgs {
		out[i], _ = e.lookup(cfg)
	}
	return out
}

func (e *evaluator) lookup(cfg gemm.Config) (float64, bool) {
	sh := &e.shards[shardOf(cfg)]
	sh.mu.Lock()
	s, ok := sh.m[cfg]
	sh.mu.Unlock()
	return s, ok
}

// cfgLess is a total order on configurations, used only to break exact score
// ties so that Result.Best never depends on evaluation order.
func cfgLess(a, b gemm.Config) bool {
	if a.TileRows != b.TileRows {
		return a.TileRows < b.TileRows
	}
	if a.TileCols != b.TileCols {
		return a.TileCols < b.TileCols
	}
	if a.AccDepth != b.AccDepth {
		return a.AccDepth < b.AccDepth
	}
	if a.WG.R != b.WG.R {
		return a.WG.R < b.WG.R
	}
	return a.WG.C < b.WG.C
}

func (e *evaluator) result() Result {
	var res Result
	first := true
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		res.Evaluations += len(sh.m)
		for cfg, s := range sh.m {
			if first || s > res.BestScore || (s == res.BestScore && cfgLess(cfg, res.Best)) {
				res.Best, res.BestScore = cfg, s
				first = false
			}
		}
		sh.mu.Unlock()
	}
	return res
}

// climb runs steepest-ascent local search from start: move to the best
// improving neighbour until none improves. Neighbour batches go through
// scoreAll so they evaluate concurrently when the evaluator has workers.
func climb(e *evaluator, sp Space, start gemm.Config) (gemm.Config, float64) {
	cur := start
	curS := e.score(cur)
	for {
		nbs := sp.Neighbors(cur)
		improved := false
		for i, s := range e.scoreAll(nbs) {
			if s > curS {
				cur, curS = nbs[i], s
				improved = true
			}
		}
		if !improved {
			return cur, curS
		}
	}
}

// BruteForce evaluates the whole space — the paper's case-study method,
// included as the exactness baseline.
func BruteForce(sp Space, obj Objective, opts ...Options) Result {
	mustValidate(sp)
	e := newEvaluator(obj, firstOption(opts).Workers)
	e.scoreAll(sp.All())
	return e.result()
}

// RandomSearch evaluates `budget` uniform draws.
func RandomSearch(sp Space, obj Objective, budget int, seed uint64, opts ...Options) Result {
	mustValidate(sp)
	if budget < 1 {
		panic("search: non-positive budget")
	}
	e := newEvaluator(obj, firstOption(opts).Workers)
	// Draw every candidate from the seeded stream first, then evaluate:
	// scoring consumes no randomness, so the draws are identical to the
	// sequential formulation while the evaluations fan out.
	r := xrand.New(seed)
	draws := make([]gemm.Config, budget)
	for i := range draws {
		draws[i] = sp.Random(r)
	}
	e.scoreAll(draws)
	return e.result()
}

// HillClimb performs steepest-ascent local search with random restarts:
// from a random start, move to the best neighbour until no neighbour
// improves; repeat `restarts` times. Restarts are independent once their
// starting points are drawn, so they run concurrently when Options.Workers
// allows; every climb's trajectory depends only on the (deterministic)
// scores, so the explored set — and therefore the result — is identical at
// any worker count.
func HillClimb(sp Space, obj Objective, restarts int, seed uint64, opts ...Options) Result {
	mustValidate(sp)
	if restarts < 1 {
		panic("search: non-positive restarts")
	}
	w := firstOption(opts).Workers
	e := newEvaluator(obj, 0) // climbs parallelise across restarts, not within
	r := xrand.New(seed)
	starts := make([]gemm.Config, restarts)
	for i := range starts {
		starts[i] = sp.Random(r)
	}
	par.Do(seqFloor(w), restarts, func(i int) { climb(e, sp, starts[i]) })
	return e.result()
}

// seqFloor clamps an Options.Workers value for par.Do: in this package 0
// means sequential (par treats 0 as GOMAXPROCS).
func seqFloor(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// BasinHopping alternates hill climbing with randomized long jumps
// ("hops"), accepting worse basins with Metropolis probability controlled
// by temperature — the method the paper names for larger spaces. The hop
// chain is inherently sequential (each acceptance depends on the previous
// basin), so Options.Workers only fans out the neighbour evaluations inside
// each climb.
func BasinHopping(sp Space, obj Objective, hops int, temperature float64, seed uint64, opts ...Options) Result {
	mustValidate(sp)
	if hops < 1 {
		panic("search: non-positive hops")
	}
	if temperature <= 0 {
		temperature = 0.05
	}
	e := newEvaluator(obj, firstOption(opts).Workers)
	r := xrand.New(seed)

	cur, curS := climb(e, sp, sp.Random(r))
	stagnant := 0
	for h := 1; h < hops; h++ {
		// Perturb: several random neighbourhood steps away, then climb.
		// After repeated stagnation the walk has exhausted its basin
		// cluster; restart from a fresh random point (iterated local search
		// with restarts, which is how Kernel Tuner's basin hopping behaves
		// on rugged kernel-tuning landscapes).
		var jump gemm.Config
		if stagnant >= 3 {
			jump = sp.Random(r)
			stagnant = 0
		} else {
			jump = cur
			for step := 0; step < 4; step++ {
				nbs := sp.Neighbors(jump)
				jump = nbs[r.Intn(len(nbs))]
			}
		}
		cand, candS := climb(e, sp, jump)
		if candS > curS {
			stagnant = 0
		} else {
			stagnant++
		}
		if candS >= curS || r.Float64() < metropolis(curS, candS, temperature) {
			cur, curS = cand, candS
		}
	}
	return e.result()
}

func metropolis(curS, candS, temperature float64) float64 {
	// Scores are relative performance; a drop of `temperature` is accepted
	// with probability 1/e.
	drop := (curS - candS) / temperature
	if drop <= 0 {
		return 1
	}
	if drop > 40 {
		return 0
	}
	return math.Exp(-drop)
}

// GeneticOptions tune the evolutionary search. Zero values take defaults.
type GeneticOptions struct {
	Population  int     // default 24
	Generations int     // default 20
	MutationPct float64 // per-gene mutation probability; default 0.2
	Elite       int     // individuals carried over unchanged; default 2
	Seed        uint64
	// Workers bounds concurrent fitness evaluation within each generation
	// (0 or 1 = sequential). Offspring are bred from the seeded stream
	// before any of them are scored, so the run is identical at any
	// setting.
	Workers int
}

func (o GeneticOptions) withDefaults() GeneticOptions {
	if o.Population <= 1 {
		o.Population = 24
	}
	if o.Generations <= 0 {
		o.Generations = 20
	}
	if o.MutationPct <= 0 {
		o.MutationPct = 0.2
	}
	if o.Elite <= 0 {
		o.Elite = 2
	}
	if o.Elite > o.Population {
		o.Elite = o.Population
	}
	return o
}

// Genetic runs a (μ+λ)-style evolutionary search with uniform crossover over
// the five parameters and per-gene mutation — the second method the paper
// names for larger spaces.
func Genetic(sp Space, obj Objective, opts GeneticOptions) Result {
	mustValidate(sp)
	opts = opts.withDefaults()
	e := newEvaluator(obj, opts.Workers)
	r := xrand.New(opts.Seed)

	type individual struct {
		cfg   gemm.Config
		score float64
	}
	pop := make([]individual, opts.Population)
	founders := make([]gemm.Config, opts.Population)
	for i := range founders {
		founders[i] = sp.Random(r)
	}
	for i, s := range e.scoreAll(founders) {
		pop[i] = individual{cfg: founders[i], score: s}
	}
	sortPop := func() {
		for i := 1; i < len(pop); i++ { // insertion sort: population is tiny
			for j := i; j > 0 && pop[j].score > pop[j-1].score; j-- {
				pop[j], pop[j-1] = pop[j-1], pop[j]
			}
		}
	}
	sortPop()

	tournament := func() individual {
		a, b := pop[r.Intn(len(pop))], pop[r.Intn(len(pop))]
		if a.score >= b.score {
			return a
		}
		return b
	}
	crossover := func(a, b gemm.Config) gemm.Config {
		c := a
		if r.Float64() < 0.5 {
			c.TileRows = b.TileRows
		}
		if r.Float64() < 0.5 {
			c.TileCols = b.TileCols
		}
		if r.Float64() < 0.5 {
			c.AccDepth = b.AccDepth
		}
		if r.Float64() < 0.5 {
			c.WG = b.WG
		}
		return c
	}
	mutate := func(c gemm.Config) gemm.Config {
		if r.Float64() < opts.MutationPct {
			c.TileRows = sp.TileSizes[r.Intn(len(sp.TileSizes))]
		}
		if r.Float64() < opts.MutationPct {
			c.TileCols = sp.TileSizes[r.Intn(len(sp.TileSizes))]
		}
		if r.Float64() < opts.MutationPct {
			c.AccDepth = sp.TileSizes[r.Intn(len(sp.TileSizes))]
		}
		if r.Float64() < opts.MutationPct {
			c.WG = sp.WorkGroups[r.Intn(len(sp.WorkGroups))]
		}
		return c
	}

	for g := 0; g < opts.Generations; g++ {
		next := make([]individual, 0, opts.Population)
		next = append(next, pop[:opts.Elite]...)
		// Breed the whole generation from the seeded stream first, then
		// score the batch: selection reads only the previous generation and
		// scoring consumes no randomness, so this matches the one-at-a-time
		// formulation draw for draw while the evaluations fan out.
		children := make([]gemm.Config, 0, opts.Population-len(next))
		for len(next)+len(children) < opts.Population {
			children = append(children, mutate(crossover(tournament().cfg, tournament().cfg)))
		}
		for i, s := range e.scoreAll(children) {
			next = append(next, individual{cfg: children[i], score: s})
		}
		pop = next
		sortPop()
	}
	return e.result()
}

func mustValidate(sp Space) {
	if err := sp.Validate(); err != nil {
		panic(err)
	}
}
