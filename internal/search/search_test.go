package search

import (
	"math"
	"testing"

	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
	"kernelselect/internal/xrand"
)

func TestDefaultSpaceMatchesPaper(t *testing.T) {
	sp := DefaultSpace()
	if sp.Size() != 640 {
		t.Fatalf("default space size %d, want 640", sp.Size())
	}
	all := sp.All()
	if len(all) != 640 {
		t.Fatalf("All() returned %d", len(all))
	}
	for _, c := range all {
		if err := c.Validate(); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
	}
}

func TestExtendedSpaceIsLarge(t *testing.T) {
	sp := ExtendedSpace()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.Size() < 10000 {
		t.Fatalf("extended space size %d; expected brute-force-hostile scale", sp.Size())
	}
	if sp.Size() != len(sp.All()) {
		t.Fatal("Size disagrees with All")
	}
}

func TestSpaceValidateRejects(t *testing.T) {
	bad := []Space{
		{},
		{TileSizes: []int{2, 1}, WorkGroups: []gemm.WorkGroup{{R: 8, C: 8}}},
		{TileSizes: []int{1, 2}, WorkGroups: []gemm.WorkGroup{{R: 0, C: 8}}},
	}
	for i, sp := range bad {
		if sp.Validate() == nil {
			t.Errorf("space %d accepted", i)
		}
	}
}

func TestRandomStaysInSpace(t *testing.T) {
	sp := ExtendedSpace()
	r := xrand.New(1)
	for i := 0; i < 200; i++ {
		if !sp.Contains(sp.Random(r)) {
			t.Fatal("Random produced out-of-space config")
		}
	}
}

func TestNeighborsStructure(t *testing.T) {
	sp := DefaultSpace()
	// Interior point: all five axes can move both ways → 8 neighbours
	// (3 tile axes ×2 + work-group ±1).
	cfg := gemm.Config{TileRows: 2, TileCols: 4, AccDepth: 2, WG: gemm.WorkGroups[3]}
	nbs := sp.Neighbors(cfg)
	if len(nbs) != 8 {
		t.Fatalf("interior point has %d neighbours, want 8", len(nbs))
	}
	for _, nb := range nbs {
		if !sp.Contains(nb) {
			t.Fatalf("neighbour %v outside space", nb)
		}
		if nb == cfg {
			t.Fatal("config is its own neighbour")
		}
	}
	// Corner point: every axis can only move one way → 4 neighbours.
	corner := gemm.Config{TileRows: 1, TileCols: 1, AccDepth: 1, WG: gemm.WorkGroups[0]}
	if n := len(sp.Neighbors(corner)); n != 4 {
		t.Fatalf("corner has %d neighbours, want 4", n)
	}
}

func TestNeighborsPanicsOutsideSpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-space config accepted")
		}
	}()
	DefaultSpace().Neighbors(gemm.Config{TileRows: 5, TileCols: 1, AccDepth: 1, WG: gemm.WorkGroups[0]})
}

// unimodalObjective has a single peak at (4, 4, 4, wg[5]) with strictly
// decreasing score by L1 distance — hill climbing must find it exactly.
func unimodalObjective(sp Space) Objective {
	return func(c gemm.Config) float64 {
		d := math.Abs(float64(sp.tileIndex(c.TileRows)-2)) +
			math.Abs(float64(sp.tileIndex(c.TileCols)-2)) +
			math.Abs(float64(sp.tileIndex(c.AccDepth)-2)) +
			math.Abs(float64(sp.wgIndex(c.WG)-5))
		return 100 - d
	}
}

func TestHillClimbFindsUnimodalPeak(t *testing.T) {
	sp := DefaultSpace()
	res := HillClimb(sp, unimodalObjective(sp), 1, 3)
	want := gemm.Config{TileRows: 4, TileCols: 4, AccDepth: 4, WG: gemm.WorkGroups[5]}
	if res.Best != want {
		t.Fatalf("hill climb found %v, want %v", res.Best, want)
	}
	if res.Evaluations >= sp.Size()/4 {
		t.Fatalf("hill climb used %d evaluations on a unimodal objective", res.Evaluations)
	}
}

func TestBruteForceFindsExactOptimum(t *testing.T) {
	sp := DefaultSpace()
	m := sim.New(device.R9Nano())
	shape := gemm.Shape{M: 3136, K: 576, N: 128}
	obj := func(c gemm.Config) float64 { return m.GFLOPS(c, shape) }
	res := BruteForce(sp, obj)
	if res.Evaluations != 640 {
		t.Fatalf("brute force evaluated %d", res.Evaluations)
	}
	// Verify it matches an independent scan.
	best := 0.0
	for _, c := range sp.All() {
		if g := obj(c); g > best {
			best = g
		}
	}
	if res.BestScore != best {
		t.Fatalf("brute force best %v, scan best %v", res.BestScore, best)
	}
}

func TestSearchStrategiesNearOptimalWithFewerEvals(t *testing.T) {
	// On the extended space the landscape is rugged (the model's
	// deterministic jitter mimics measurement noise), so quality is judged
	// across seeds: each strategy must average ≥85% of the true optimum,
	// never drop below 75%, and spend at most 5% of a brute-force budget.
	sp := ExtendedSpace()
	m := sim.New(device.R9Nano())
	shape := gemm.Shape{M: 12544, K: 576, N: 128}
	obj := func(c gemm.Config) float64 { return m.GFLOPS(c, shape) }
	exact := BruteForce(sp, obj)
	seeds := []uint64{7, 8, 9}

	strategies := map[string]func(seed uint64) Result{
		"random": func(seed uint64) Result { return RandomSearch(sp, obj, 400, seed) },
		"hill":   func(seed uint64) Result { return HillClimb(sp, obj, 12, seed) },
		"basin":  func(seed uint64) Result { return BasinHopping(sp, obj, 20, 0.1, seed) },
		"ga":     func(seed uint64) Result { return Genetic(sp, obj, GeneticOptions{Seed: seed, Generations: 30}) },
	}
	means := map[string]float64{}
	for name, run := range strategies {
		var sum, min float64 = 0, 1
		for _, seed := range seeds {
			res := run(seed)
			frac := res.BestScore / exact.BestScore
			sum += frac
			if frac < min {
				min = frac
			}
			if res.Evaluations > sp.Size()/20 {
				t.Errorf("%s seed %d used %d evaluations (space %d)", name, seed, res.Evaluations, sp.Size())
			}
		}
		means[name] = sum / float64(len(seeds))
		// Random search is the weak baseline the structured methods are
		// measured against; it gets a lower bar.
		meanBar, minBar := 0.85, 0.75
		if name == "random" {
			meanBar, minBar = 0.75, 0.70
		}
		if means[name] < meanBar {
			t.Errorf("%s mean fraction %.3f < %.2f", name, means[name], meanBar)
		}
		if min < minBar {
			t.Errorf("%s worst-seed fraction %.3f < %.2f", name, min, minBar)
		}
	}
	// At these budgets the evolutionary search should beat random draws.
	if means["ga"] < means["random"] {
		t.Errorf("genetic mean %.3f below random %.3f", means["ga"], means["random"])
	}
}

func TestSearchDeterminism(t *testing.T) {
	sp := DefaultSpace()
	m := sim.New(device.R9Nano())
	shape := gemm.Shape{M: 784, K: 1152, N: 256}
	obj := func(c gemm.Config) float64 { return m.GFLOPS(c, shape) }
	for name, run := range map[string]func() Result{
		"random": func() Result { return RandomSearch(sp, obj, 100, 9) },
		"hill":   func() Result { return HillClimb(sp, obj, 4, 9) },
		"basin":  func() Result { return BasinHopping(sp, obj, 6, 0.05, 9) },
		"ga":     func() Result { return Genetic(sp, obj, GeneticOptions{Seed: 9}) },
	} {
		a, b := run(), run()
		if a.Best != b.Best || a.Evaluations != b.Evaluations {
			t.Errorf("%s is not deterministic", name)
		}
	}
}

func TestEvaluatorMemoises(t *testing.T) {
	sp := DefaultSpace()
	calls := 0
	obj := func(gemm.Config) float64 { calls++; return 1 }
	// Random search with a budget far above the space size cannot call the
	// objective more than Size() times.
	res := RandomSearch(sp, obj, 5000, 1)
	if calls != res.Evaluations {
		t.Fatalf("calls %d vs evaluations %d", calls, res.Evaluations)
	}
	if calls > sp.Size() {
		t.Fatalf("objective called %d times for a %d-point space", calls, sp.Size())
	}
}

func TestBadArgumentsPanic(t *testing.T) {
	sp := DefaultSpace()
	obj := func(gemm.Config) float64 { return 1 }
	for name, f := range map[string]func(){
		"random budget": func() { RandomSearch(sp, obj, 0, 1) },
		"hill restarts": func() { HillClimb(sp, obj, 0, 1) },
		"basin hops":    func() { BasinHopping(sp, obj, 0, 0.1, 1) },
		"invalid space": func() { BruteForce(Space{}, obj) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}
