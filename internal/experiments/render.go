package experiments

import (
	"fmt"
	"strings"
)

// RenderFig1 renders the Figure 1 distribution as a decile table: since the
// figure plots 640 columns, the text form samples the mean/min/max at every
// 10% of the mean-sorted order plus both extremes.
func RenderFig1(stats []Fig1Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — normalized performance by configuration (sorted by mean)\n")
	fmt.Fprintf(&b, "%-8s %-18s %8s %8s %8s\n", "rank", "config", "mean", "min", "max")
	n := len(stats)
	idxs := []int{0}
	for p := 10; p <= 90; p += 10 {
		idxs = append(idxs, p*n/100)
	}
	idxs = append(idxs, n-1)
	for _, i := range idxs {
		s := stats[i]
		fmt.Fprintf(&b, "%-8d %-18s %8.3f %8.3f %8.3f\n", i, s.Config, s.Mean, s.Min, s.Max)
	}
	return b.String()
}

// RenderFig2 renders the win-count histogram (top entries plus the tail
// summary the paper highlights).
func RenderFig2(r Fig2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — times each configuration is optimal\n")
	fmt.Fprintf(&b, "distinct winning configurations: %d; most wins: %d\n", r.DistinctWinners, r.TopWins)
	top := r.Entries
	if len(top) > 12 {
		top = top[:12]
	}
	for i, e := range top {
		fmt.Fprintf(&b, "%2d. %-18s %3d %s\n", i+1, e.Config, e.Wins, strings.Repeat("#", e.Wins))
	}
	if len(r.Entries) > len(top) {
		rest := 0
		for _, e := range r.Entries[len(top):] {
			rest += e.Wins
		}
		fmt.Fprintf(&b, "    …and %d more configurations sharing %d wins\n", len(r.Entries)-len(top), rest)
	}
	return b.String()
}

// RenderFig3 renders the variance spectrum with the paper's threshold
// readings.
func RenderFig3(r Fig3Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — PCA explained variance of the performance matrix\n")
	n := len(r.Ratios)
	if n > 20 {
		n = 20
	}
	fmt.Fprintf(&b, "%-6s %10s %12s\n", "comp", "ratio", "cumulative")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-6d %10.4f %12.4f\n", i+1, r.Ratios[i], r.Cumulative[i])
	}
	fmt.Fprintf(&b, "components for 80%%: %d, 90%%: %d, 95%%: %d (paper: 4, 8, 15)\n", r.At80, r.At90, r.At95)
	return b.String()
}

// RenderFig4 renders the pruning comparison as a method × N table.
func RenderFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — achievable %% of optimal on the test split, by pruning method\n")
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-14s", "method \\ N")
	for _, n := range rows[0].Ns {
		fmt.Fprintf(&b, "%7d", n)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.Method)
		for _, s := range r.Scores {
			fmt.Fprintf(&b, "%7.2f", s)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RenderTable1 renders the classifier comparison with its ceilings row.
func RenderTable1(r Table1Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — classifier %% of absolute optimal (decision-tree-pruned sets)\n")
	fmt.Fprintf(&b, "%-18s", "classifier \\ N")
	for _, n := range r.Ns {
		fmt.Fprintf(&b, "%8d", n)
	}
	fmt.Fprintln(&b)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s", row.Classifier)
		for _, s := range row.Scores {
			fmt.Fprintf(&b, "%8.2f", s)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-18s", "(max achievable)")
	for _, c := range r.Ceilings {
		fmt.Fprintf(&b, "%8.2f", c)
	}
	fmt.Fprintln(&b)
	return b.String()
}

// RenderLatency renders the Section IV selection-latency comparison.
func RenderLatency(rows []LatencyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section IV — selection latency per query\n")
	fmt.Fprintf(&b, "%-18s %14s\n", "selector", "ns/select")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %14.1f\n", r.Selector, r.NsPerSelect)
	}
	return b.String()
}
