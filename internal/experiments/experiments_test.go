package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The environment takes ~1s to build (156 shapes × 640 configs); share it
// across tests.
var (
	envOnce sync.Once
	env     *Env
)

func sharedEnv(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() { env = Setup(Default()) })
	return env
}

func TestSetupShapes(t *testing.T) {
	e := sharedEnv(t)
	if e.Dataset.NumConfigs() != 640 {
		t.Fatalf("dataset has %d configs, want 640", e.Dataset.NumConfigs())
	}
	if e.Dataset.NumShapes() != 156 {
		t.Fatalf("dataset has %d shapes, want 156", e.Dataset.NumShapes())
	}
	if e.Train.NumShapes()+e.Test.NumShapes() != e.Dataset.NumShapes() {
		t.Fatal("split loses shapes")
	}
	if e.PerNetwork["vgg16"] != 78 {
		t.Fatalf("vgg16 count %d, want 78", e.PerNetwork["vgg16"])
	}
}

func TestFig1Shape(t *testing.T) {
	e := sharedEnv(t)
	stats := e.Fig1()
	if len(stats) != 640 {
		t.Fatalf("%d entries", len(stats))
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Mean < stats[i-1].Mean {
			t.Fatal("Fig1 not sorted by mean")
		}
	}
	// The paper: the worst configurations never achieve above 30% of
	// optimal; allow a little slack on the exact threshold.
	if stats[0].Max > 0.40 {
		t.Fatalf("worst config max = %v, want < 0.40", stats[0].Max)
	}
	// The best-by-mean configurations still perform poorly on some sizes.
	last := stats[len(stats)-1]
	if last.Min > 0.75 {
		t.Fatalf("best config min = %v; expected weakness on some shapes", last.Min)
	}
	// Some mid-pack configuration achieves (near-)optimal performance on a
	// specific size.
	midOptimal := false
	for _, s := range stats[len(stats)/4 : 3*len(stats)/4] {
		if s.Max > 0.99 {
			midOptimal = true
			break
		}
	}
	if !midOptimal {
		t.Fatal("no mid-mean configuration achieves near-optimal performance anywhere")
	}
}

func TestFig2Shape(t *testing.T) {
	e := sharedEnv(t)
	r := e.Fig2()
	total := 0
	for _, en := range r.Entries {
		total += en.Wins
	}
	if total != e.Dataset.NumShapes() {
		t.Fatalf("wins sum to %d, want %d", total, e.Dataset.NumShapes())
	}
	// Paper structure: one configuration wins far more than the rest
	// (32 of 170, >3× the runner-up) and there is a long tail of winners
	// (58 of 170 ≈ 34%). Check the same structure at our dataset size.
	if r.TopWins < e.Dataset.NumShapes()/8 {
		t.Fatalf("top winner has only %d wins", r.TopWins)
	}
	if len(r.Entries) > 1 && r.Entries[0].Wins < 3*r.Entries[1].Wins/2 {
		t.Fatalf("top winner (%d) not clearly ahead of runner-up (%d)", r.Entries[0].Wins, r.Entries[1].Wins)
	}
	if r.DistinctWinners < e.Dataset.NumShapes()/5 {
		t.Fatalf("only %d distinct winners; expected a long tail", r.DistinctWinners)
	}
}

func TestFig3Shape(t *testing.T) {
	e := sharedEnv(t)
	r := e.Fig3()
	if len(r.Ratios) == 0 || len(r.Cumulative) != len(r.Ratios) {
		t.Fatal("empty spectrum")
	}
	if r.Cumulative[len(r.Cumulative)-1] < 0.999 {
		t.Fatalf("full spectrum covers %v", r.Cumulative[len(r.Cumulative)-1])
	}
	// Paper: a handful of components covers 80%, ~8 covers 90%, ~15 covers
	// 95%. Check the same concentration ordering and magnitudes.
	if !(r.At80 <= r.At90 && r.At90 <= r.At95) {
		t.Fatalf("threshold counts not monotone: %d %d %d", r.At80, r.At90, r.At95)
	}
	if r.At80 > 8 {
		t.Fatalf("80%% of variance needs %d components; expected concentration in few", r.At80)
	}
	if r.At95 > 30 {
		t.Fatalf("95%% of variance needs %d components", r.At95)
	}
}

func TestFig4Shape(t *testing.T) {
	e := sharedEnv(t)
	rows := e.Fig4()
	if len(rows) != 5 {
		t.Fatalf("%d pruning methods", len(rows))
	}
	byName := map[string][]float64{}
	for _, r := range rows {
		if len(r.Scores) != e.Cfg.NMax-e.Cfg.NMin+1 {
			t.Fatalf("%s has %d scores", r.Method, len(r.Scores))
		}
		for _, s := range r.Scores {
			if s <= 0 || s > 100 {
				t.Fatalf("%s score %v out of range", r.Method, s)
			}
		}
		byName[r.Method] = r.Scores
	}
	// Paper headline: at 6+ configurations the decision tree achieves ≈95%
	// of optimal.
	treeAt6 := byName["decision-tree"][6-e.Cfg.NMin]
	if treeAt6 < 93 {
		t.Fatalf("decision-tree at N=6 = %v, want ≥ 93", treeAt6)
	}
	// All methods reach ≈95% by N=15.
	for m, scores := range byName {
		if last := scores[len(scores)-1]; last < 93 {
			t.Fatalf("%s at N=15 = %v, want ≥ 93", m, last)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	e := sharedEnv(t)
	r := e.Table1()
	if len(r.Rows) != 6 || len(r.Ceilings) != len(r.Ns) {
		t.Fatalf("table dims: %d rows, %d ceilings", len(r.Rows), len(r.Ceilings))
	}
	scores := map[string][]float64{}
	for _, row := range r.Rows {
		if len(row.Scores) != len(r.Ns) {
			t.Fatalf("%s has %d scores", row.Classifier, len(row.Scores))
		}
		scores[row.Classifier] = row.Scores
	}
	// No classifier may beat the ceiling.
	for _, row := range r.Rows {
		for i, s := range row.Scores {
			if s > r.Ceilings[i]+1e-9 {
				t.Fatalf("%s beats the ceiling at N=%d", row.Classifier, r.Ns[i])
			}
		}
	}
	// Paper orderings: the decision tree outperforms or comes close to all
	// other classifiers; k-NN trails the trees; RadialSVM is the collapse
	// case (worst mean by a wide margin).
	mean := func(vs []float64) float64 {
		t := 0.0
		for _, v := range vs {
			t += v
		}
		return t / float64(len(vs))
	}
	if mean(scores["DecisionTree"]) < mean(scores["3NearestNeighbor"]) {
		t.Fatal("decision tree below 3-NN on average")
	}
	if mean(scores["RadialSVM"]) > mean(scores["DecisionTree"])-10 {
		t.Fatal("RadialSVM did not collapse well below the decision tree")
	}
	if mean(scores["1NearestNeighbor"]) < mean(scores["3NearestNeighbor"])-5 {
		t.Fatal("1-NN unexpectedly far below 3-NN")
	}
}

func TestSelectionLatency(t *testing.T) {
	e := sharedEnv(t)
	rows := e.SelectionLatency(6, 20)
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.NsPerSelect <= 0 {
			t.Fatalf("%s latency %v", r.Selector, r.NsPerSelect)
		}
		byName[r.Selector] = r.NsPerSelect
	}
	// The paper's deployment argument: tree selection is far cheaper than
	// the kernel-evaluation-heavy models.
	if byName["DecisionTree"] > byName["RandomForest"] {
		t.Fatal("single tree slower than a 100-tree forest")
	}
	if byName["DecisionTree"] > byName["RadialSVM"] {
		t.Fatal("tree slower than kernel SVM evaluation")
	}
}

func TestRenderers(t *testing.T) {
	e := sharedEnv(t)
	checks := map[string]string{
		"Figure 1":   RenderFig1(e.Fig1()),
		"Figure 2":   RenderFig2(e.Fig2()),
		"Figure 3":   RenderFig3(e.Fig3()),
		"Figure 4":   RenderFig4(e.Fig4()),
		"Table I":    RenderTable1(e.Table1()),
		"Section IV": RenderLatency(e.SelectionLatency(6, 5)),
	}
	for want, out := range checks {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing header %q:\n%s", want, out)
		}
		if len(out) < 80 {
			t.Errorf("rendered output for %q suspiciously short", want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	// Two environments with the same seed but different worker counts must
	// render byte-identical figures and tables: parallelism may not leak
	// into the published numbers. A reduced grid keeps the double pipeline
	// run affordable under the race detector.
	seq := Default()
	seq.NMax = 6
	seq.TableNs = []int{5, 6}
	seq.Workers = 1
	conc := seq
	conc.Workers = 7
	a := Setup(seq)
	b := Setup(conc)
	ra, rb := a.RunAll(), b.RunAll()
	for name, pair := range map[string][2]string{
		"Fig1":   {RenderFig1(ra.Fig1), RenderFig1(rb.Fig1)},
		"Fig2":   {RenderFig2(ra.Fig2), RenderFig2(rb.Fig2)},
		"Fig3":   {RenderFig3(ra.Fig3), RenderFig3(rb.Fig3)},
		"Fig4":   {RenderFig4(ra.Fig4), RenderFig4(rb.Fig4)},
		"Table1": {RenderTable1(ra.Table1), RenderTable1(rb.Table1)},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s differs between workers=1 and workers=7:\n--- sequential ---\n%s\n--- parallel ---\n%s", name, pair[0], pair[1])
		}
	}
	// RunAll must agree with calling each experiment directly.
	if got, want := RenderFig4(ra.Fig4), RenderFig4(a.Fig4()); got != want {
		t.Errorf("RunAll Fig4 differs from direct call:\n%s\nvs\n%s", got, want)
	}
	if got, want := RenderTable1(rb.Table1), RenderTable1(b.Table1()); got != want {
		t.Errorf("RunAll Table1 differs from direct call:\n%s\nvs\n%s", got, want)
	}
}
