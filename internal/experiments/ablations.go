package experiments

import (
	"fmt"
	"strings"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/ml/kmeans"
	"kernelselect/internal/ml/metrics"
	"kernelselect/internal/ml/pca"
	"kernelselect/internal/sim"
	"kernelselect/internal/workload"
)

// The ablations quantify design choices DESIGN.md calls out, beyond what the
// paper itself reports. Each returns structured results; the benchmark
// harness (bench_test.go) and cmd/experiments render them.

// PCAThresholdRow is one retained-variance setting of the PCA + k-means
// pruner.
type PCAThresholdRow struct {
	Threshold  float64
	Components int
	CeilingPct float64
}

// AblationPCAThresholds sweeps the PCA + k-means pruner's retained-variance
// threshold at library size n.
func (e *Env) AblationPCAThresholds(n int, thresholds []float64) []PCAThresholdRow {
	fit := pca.Fit(e.Train.Norm, 0)
	rows := make([]PCAThresholdRow, 0, len(thresholds))
	for _, thr := range thresholds {
		p := core.PCAKMeans{VarianceThreshold: thr}
		selected := p.Prune(e.Train, n, e.Cfg.Seed)
		rows = append(rows, PCAThresholdRow{
			Threshold:  thr,
			Components: fit.ComponentsForVariance(thr),
			CeilingPct: core.AchievableScore(e.Test, selected),
		})
	}
	return rows
}

// SplitSeedResult summarises the decision-tree pruning ceiling across
// several random train/test splits — the paper's generalisation caveat,
// quantified.
type SplitSeedResult struct {
	Seeds  []uint64
	Scores []float64
	Mean   float64
	Min    float64
	Max    float64
}

// AblationSplitSeeds re-splits the dataset with each seed and re-runs the
// decision-tree pruner at library size n.
func (e *Env) AblationSplitSeeds(n int, seeds []uint64) SplitSeedResult {
	res := SplitSeedResult{Seeds: seeds}
	for _, seed := range seeds {
		train, test := e.Dataset.Split(seed, e.Cfg.TestFraction)
		selected := core.DecisionTree{}.Prune(train, n, seed)
		res.Scores = append(res.Scores, core.AchievableScore(test, selected))
	}
	res.Min, res.Max = res.Scores[0], res.Scores[0]
	for _, s := range res.Scores {
		res.Mean += s
		if s < res.Min {
			res.Min = s
		}
		if s > res.Max {
			res.Max = s
		}
	}
	res.Mean /= float64(len(res.Scores))
	return res
}

// DeviceRow is one device's pipeline outcome.
type DeviceRow struct {
	Device     string
	CeilingPct float64
	Configs    []string // the shipped kernel set
}

// AblationDevices reruns the unchanged pipeline (tune → split → prune at
// size n) for every built-in device model.
func AblationDevices(n int, seed uint64, testFrac float64) []DeviceRow {
	shapes, _ := workload.DatasetShapes()
	var rows []DeviceRow
	for _, dev := range device.All() {
		ds := dataset.Build(sim.New(dev), shapes, gemm.AllConfigs())
		train, test := ds.Split(seed, testFrac)
		selected := core.DecisionTree{}.Prune(train, n, seed)
		row := DeviceRow{Device: dev.Name, CeilingPct: core.AchievableScore(test, selected)}
		for _, c := range selected {
			row.Configs = append(row.Configs, ds.Configs[c].String())
		}
		rows = append(rows, row)
	}
	return rows
}

// SpaceRow is one configuration-space restriction's outcome, scored against
// the full space's per-shape optima.
type SpaceRow struct {
	Space      string
	Configs    int
	CeilingPct float64
}

// AblationWorkGroupOnly compares pruning the full 640-configuration space
// against only the 64 compile-time kernels at one fixed work-group shape,
// both normalized by the full space's optima: how much of the achievable
// performance requires run-time work-group selection.
func AblationWorkGroupOnly(n int, seed uint64, testFrac float64) []SpaceRow {
	shapes, _ := workload.DatasetShapes()
	model := sim.New(device.R9Nano())
	fullDS := dataset.Build(model, shapes, gemm.AllConfigs())
	_, fullTest := fullDS.Split(seed, testFrac)
	fullIdx := gemm.ConfigIndex()

	fixedWG := gemm.WorkGroup{R: 16, C: 16}
	var compileOnly []gemm.Config
	for _, cfg := range gemm.AllConfigs() {
		if cfg.WG == fixedWG {
			compileOnly = append(compileOnly, cfg)
		}
	}

	spaces := []struct {
		name    string
		configs []gemm.Config
	}{
		{"full-640", gemm.AllConfigs()},
		{"compile-time-64(wg16x16)", compileOnly},
	}
	var rows []SpaceRow
	for _, sp := range spaces {
		ds := dataset.Build(model, shapes, sp.configs)
		train, _ := ds.Split(seed, testFrac)
		selected := core.DecisionTree{}.Prune(train, n, seed)
		mapped := make([]int, len(selected))
		for j, c := range selected {
			mapped[j] = fullIdx[ds.Configs[c].String()]
		}
		rows = append(rows, SpaceRow{
			Space:      sp.name,
			Configs:    len(sp.configs),
			CeilingPct: core.AchievableScore(fullTest, mapped),
		})
	}
	return rows
}

// RenderAblations renders all four ablations as one text block.
func RenderAblations(e *Env) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (n = 6 configurations, seed %d)\n\n", e.Cfg.Seed)

	fmt.Fprintf(&b, "PCA retained-variance threshold (pca+k-means pruner):\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "threshold", "components", "ceiling-%")
	for _, r := range e.AblationPCAThresholds(6, []float64{0.80, 0.90, 0.95, 0.99}) {
		fmt.Fprintf(&b, "%-10.2f %12d %12.2f\n", r.Threshold, r.Components, r.CeilingPct)
	}

	ss := e.AblationSplitSeeds(6, []uint64{1, 2, 3, 4, 5, 6, 7, 8})
	fmt.Fprintf(&b, "\nSplit-seed spread of the decision-tree ceiling (%d splits):\n", len(ss.Seeds))
	fmt.Fprintf(&b, "mean %.2f%%, min %.2f%%, max %.2f%% (spread %.2f points)\n",
		ss.Mean, ss.Min, ss.Max, ss.Max-ss.Min)

	fmt.Fprintf(&b, "\nPer-device pipeline (decision-tree pruning to 6):\n")
	for _, r := range AblationDevices(6, e.Cfg.Seed, e.Cfg.TestFraction) {
		fmt.Fprintf(&b, "%-20s ceiling %6.2f%%  kernels: %s\n", r.Device, r.CeilingPct, strings.Join(r.Configs, " "))
	}

	fmt.Fprintf(&b, "\nConfiguration-space restriction (scored vs full-space optima):\n")
	for _, r := range AblationWorkGroupOnly(6, e.Cfg.Seed, e.Cfg.TestFraction) {
		fmt.Fprintf(&b, "%-26s (%3d configs) ceiling %6.2f%%\n", r.Space, r.Configs, r.CeilingPct)
	}

	fmt.Fprintf(&b, "\nLeave-one-network-out generalisation (decision tree, n=6):\n")
	fmt.Fprintf(&b, "%-14s %7s %6s %10s %10s %14s\n", "held out", "train", "test", "ceiling-%", "selector-%", "rand-split-%")
	for _, r := range e.AblationLeaveOneNetworkOut(6) {
		fmt.Fprintf(&b, "%-14s %7d %6d %10.2f %10.2f %14.2f\n",
			r.HeldOut, r.TrainShapes, r.TestShapes, r.CeilingPct, r.SelectorPct, r.RandomPct)
	}

	fmt.Fprintf(&b, "\nSilhouette by cluster count (k-means on performance vectors):\n")
	for _, r := range e.AblationClusterCount(2, 15) {
		fmt.Fprintf(&b, "k=%-3d %6.3f %s\n", r.K, r.Silhouette, strings.Repeat("*", int(r.Silhouette*40)))
	}

	fmt.Fprintf(&b, "\nDataset size vs classifier gap (the paper's future-work hypothesis):\n")
	fmt.Fprintf(&b, "%-22s %7s %10s %11s %6s\n", "dataset", "shapes", "ceiling-%", "selector-%", "gap")
	for _, r := range AblationDatasetSize(8, e.Cfg.Seed, e.Cfg.TestFraction, e.Cfg.Device) {
		fmt.Fprintf(&b, "%-22s %7d %10.2f %11.2f %6.2f\n", r.Dataset, r.Shapes, r.CeilingPct, r.SelectorPct, r.GapPct)
	}

	ts := AblationTrainingShapes(8, e.Cfg.Seed, e.Cfg.TestFraction, e.Cfg.Device)
	fmt.Fprintf(&b, "\nTraining-workload shapes (gradient GEMMs of one SGD step, n=8):\n")
	fmt.Fprintf(&b, "forward union %d shapes → training union %d shapes\n", ts.ForwardShapes, ts.TrainingShapes)
	fmt.Fprintf(&b, "ceiling on held-out backward shapes: inference-tuned %.2f%%, retuned %.2f%%\n",
		ts.InferenceTunedPct, ts.RetunedPct)

	fmt.Fprintf(&b, "\nGreedy set-selection baseline vs decision-tree pruning (test ceiling):\n")
	fmt.Fprintf(&b, "%-6s %10s %10s\n", "N", "greedy-%", "tree-%")
	for _, n := range []int{4, 6, 8, 15} {
		g := core.AchievableScore(e.Test, core.Greedy{}.Prune(e.Train, n, e.Cfg.Seed))
		d := core.AchievableScore(e.Test, core.DecisionTree{}.Prune(e.Train, n, e.Cfg.Seed))
		fmt.Fprintf(&b, "%-6d %10.2f %10.2f\n", n, g, d)
	}
	return b.String()
}

// NetworkHoldoutRow is one leave-one-network-out evaluation: prune and train
// on the shapes of two networks, evaluate on the held-out third — a sharper
// version of the paper's generalisation caveat than a random split.
type NetworkHoldoutRow struct {
	HeldOut     string
	TrainShapes int
	TestShapes  int
	CeilingPct  float64 // achievable with the pruned set on the held-out network
	SelectorPct float64 // what the tree selector actually achieves there
	RandomPct   float64 // same-sized random-split baseline (ceiling)
}

// AblationLeaveOneNetworkOut prunes/trains on two networks and tests on the
// third, for each network in turn, at library size n.
func (e *Env) AblationLeaveOneNetworkOut(n int) []NetworkHoldoutRow {
	// Identify dataset rows by network membership.
	membership := map[gemm.Shape]map[string]bool{}
	for _, net := range workload.Networks() {
		for _, s := range net.GEMMShapes() {
			if membership[s] == nil {
				membership[s] = map[string]bool{}
			}
			membership[s][net.Name] = true
		}
	}

	var rows []NetworkHoldoutRow
	for _, held := range workload.Networks() {
		var trainRows, testRows []int
		for i, s := range e.Dataset.Shapes {
			// Shapes shared between the held-out network and a training
			// network stay in training (they are not "unseen").
			inHeld := membership[s][held.Name]
			inOther := false
			for _, other := range workload.Networks() {
				if other.Name != held.Name && membership[s][other.Name] {
					inOther = true
				}
			}
			if inHeld && !inOther {
				testRows = append(testRows, i)
			} else {
				trainRows = append(trainRows, i)
			}
		}
		train := e.Dataset.Subset(trainRows)
		test := e.Dataset.Subset(testRows)
		selected := core.DecisionTree{}.Prune(train, n, e.Cfg.Seed)
		sel := core.DecisionTreeSelector{}.Train(train, selected, e.Cfg.Seed)

		// Random-split baseline with a matching test-set size.
		frac := float64(test.NumShapes()) / float64(e.Dataset.NumShapes())
		rtrain, rtest := e.Dataset.Split(e.Cfg.Seed+uint64(len(rows)), frac)
		rsel := core.DecisionTree{}.Prune(rtrain, n, e.Cfg.Seed)

		rows = append(rows, NetworkHoldoutRow{
			HeldOut:     held.Name,
			TrainShapes: train.NumShapes(),
			TestShapes:  test.NumShapes(),
			CeilingPct:  core.AchievableScore(test, selected),
			SelectorPct: core.SelectorScore(test, selected, sel),
			RandomPct:   core.AchievableScore(rtest, rsel),
		})
	}
	return rows
}

// DatasetSizeRow is one dataset-scale evaluation of the paper's future-work
// hypothesis that "the datasets used in this paper are fairly small, causing
// the models to fail to generalize, which would be mitigated with larger
// datasets".
type DatasetSizeRow struct {
	Dataset     string
	Shapes      int
	CeilingPct  float64
	SelectorPct float64
	GapPct      float64 // ceiling − selector: the classifier's shortfall
}

// AblationDatasetSize runs the identical pipeline (decision-tree pruning at
// size n, decision-tree selector, same split protocol) on the paper-scale
// workload and on the extended five-network workload.
func AblationDatasetSize(n int, seed uint64, testFrac float64, dev device.Spec) []DatasetSizeRow {
	model := sim.New(dev)
	std, _ := workload.DatasetShapes()
	ext, _ := workload.ExtendedDatasetShapes()
	sets := []struct {
		name   string
		shapes []gemm.Shape
	}{
		{"paper-3-networks", std},
		{"extended-5-networks", ext},
	}
	var rows []DatasetSizeRow
	for _, set := range sets {
		ds := dataset.Build(model, set.shapes, gemm.AllConfigs())
		train, test := ds.Split(seed, testFrac)
		selected := core.DecisionTree{}.Prune(train, n, seed)
		sel := core.DecisionTreeSelector{}.Train(train, selected, seed)
		ceiling := core.AchievableScore(test, selected)
		score := core.SelectorScore(test, selected, sel)
		rows = append(rows, DatasetSizeRow{
			Dataset:     set.name,
			Shapes:      ds.NumShapes(),
			CeilingPct:  ceiling,
			SelectorPct: score,
			GapPct:      ceiling - score,
		})
	}
	return rows
}

// ClusterCountRow is one k of the silhouette analysis.
type ClusterCountRow struct {
	K          int
	Silhouette float64
}

// AblationClusterCount scores k-means clusterings of the training
// performance vectors by mean silhouette for each candidate library size —
// an independent check on the paper's PCA-based reading of how many
// distinct behaviours the dataset contains.
func (e *Env) AblationClusterCount(kMin, kMax int) []ClusterCountRow {
	var rows []ClusterCountRow
	for k := kMin; k <= kMax; k++ {
		res := kmeans.Cluster(e.Train.Norm, k, e.Cfg.Seed, kmeans.Options{})
		rows = append(rows, ClusterCountRow{
			K:          k,
			Silhouette: metrics.Silhouette(e.Train.Norm, res.Labels),
		})
	}
	return rows
}

// TrainingShapesResult quantifies how an inference-tuned library copes with
// the gradient GEMMs of training — the workload the paper's introduction
// actually motivates — versus retuning on the full training-shape set.
type TrainingShapesResult struct {
	ForwardShapes  int
	TrainingShapes int
	// Scores are achievable ceilings (geomean % of per-shape optimum) on the
	// backward-only shapes of the training test split.
	InferenceTunedPct float64 // kernel set pruned from forward shapes only
	RetunedPct        float64 // kernel set pruned from the training-shape set
}

// AblationTrainingShapes builds the training-workload dataset (forward +
// gradient shapes), splits it, and compares two n-kernel sets on the
// held-out backward shapes: one pruned from forward shapes only, one from
// the full training set.
func AblationTrainingShapes(n int, seed uint64, testFrac float64, dev device.Spec) TrainingShapesResult {
	model := sim.New(dev)
	fwdShapes, _ := workload.DatasetShapes()
	trainShapes, _ := workload.TrainingDatasetShapes()

	full := dataset.Build(model, trainShapes, gemm.AllConfigs())
	trainDS, testDS := full.Split(seed, testFrac)

	// Backward-only rows of the test split (shapes absent from the forward
	// union).
	fwdSet := map[gemm.Shape]bool{}
	for _, s := range fwdShapes {
		fwdSet[s] = true
	}
	var backRows []int
	for i, s := range testDS.Shapes {
		if !fwdSet[s] {
			backRows = append(backRows, i)
		}
	}
	backTest := testDS.Subset(backRows)

	// (a) inference-tuned: prune on the forward dataset, score on backward.
	fwdDS := dataset.Build(model, fwdShapes, gemm.AllConfigs())
	fwdSelected := core.DecisionTree{}.Prune(fwdDS, n, seed)
	// Map config indices across datasets (same AllConfigs order, shared).
	res := TrainingShapesResult{
		ForwardShapes:     len(fwdShapes),
		TrainingShapes:    len(trainShapes),
		InferenceTunedPct: core.AchievableScore(backTest, fwdSelected),
	}

	// (b) retuned on the training-shape split.
	retuned := core.DecisionTree{}.Prune(trainDS, n, seed)
	res.RetunedPct = core.AchievableScore(backTest, retuned)
	return res
}
