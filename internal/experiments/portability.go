package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kernelselect/internal/device"
	"kernelselect/internal/plot"
	"kernelselect/internal/portability"
)

// Portability runs the cross-device transfer evaluation with this
// environment's seed, test fraction, and worker pool: N=8 libraries built on
// every device model, cross-deployed on every other, plus the unified
// device-feature selector. The single-device Env's dataset is not reused —
// the portability engine prices all devices through one shared pool — but
// the seeds line up, so the transfer diagonal reproduces this Env's Table-I
// cells when the devices match.
func (e *Env) Portability() portability.Result {
	return e.PortabilityEnv().Run()
}

// PortabilityEnv returns the configured transfer-study environment so
// callers can both run the evaluation and export the unified library it
// builds (portability.Env.BuildUnifiedLibrary) as a servable artifact.
func (e *Env) PortabilityEnv() *portability.Env {
	return portability.Setup(portability.Config{
		Seed:           e.Cfg.Seed,
		TestFraction:   e.Cfg.TestFraction,
		N:              8,
		Workers:        e.Cfg.Workers,
		HeldOutDevices: device.Synthetics(),
	})
}

// RenderPortability renders the transfer study: the headline matrix with the
// unified selector as an extra row, then the per-pair transfer summary.
func RenderPortability(r portability.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Portability — cross-device library transfer (N=%d, seed %d)\n", r.N, r.Seed)
	if hl, ok := r.Headline(); ok {
		fmt.Fprintf(&b, "Transfer matrix, decision-tree pruning × DecisionTree classifier\n")
		fmt.Fprintf(&b, "(%% of the deploy device's optimum; rows trained on, columns deployed on)\n")
		fmt.Fprintf(&b, "%-20s", "trained \\ deployed")
		for _, d := range r.Devices {
			fmt.Fprintf(&b, "%19s", d)
		}
		fmt.Fprintln(&b)
		for a, dev := range r.Devices {
			fmt.Fprintf(&b, "%-20s", dev)
			for b2 := range r.Devices {
				fmt.Fprintf(&b, "%19.2f", hl.Cells[a][b2])
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "%-20s", "unified")
		for _, s := range r.Unified {
			fmt.Fprintf(&b, "%19.2f", s)
		}
		fmt.Fprintln(&b)
		if len(r.Joint) == len(r.Devices) {
			fmt.Fprintf(&b, "%-20s", "joint-pruned")
			for _, s := range r.Joint {
				fmt.Fprintf(&b, "%19.2f", s)
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "(unified: one tree over %d shape+device features dispatching %d configs;\n",
			r.UnifiedFeatures, r.UnifiedConfigs)
		fmt.Fprintf(&b, " joint-pruned: the same tree over %d configs chosen once on the stacked\n", r.JointConfigs)
		fmt.Fprintf(&b, " multi-device dataset instead of a per-device union)\n")
	}
	if len(r.HeldOut) > 0 {
		fmt.Fprintf(&b, "\nHeld-out device generalization (unified selector, %% of device optimum over the union)\n")
		fmt.Fprintf(&b, "%-24s %10s %10s %10s\n", "device", "score", "ceiling", "kind")
		for _, h := range r.HeldOut {
			kind := "training"
			if h.Synthetic {
				kind = "held-out"
			}
			fmt.Fprintf(&b, "%-24s %10.2f %10.2f %10s\n", h.Device, h.Score, h.Ceiling, kind)
		}
	}
	fmt.Fprintf(&b, "\nTransfer summary by pruner × classifier (geomean %%; 100 = lossless)\n")
	fmt.Fprintf(&b, "%-14s %-18s %10s %10s\n", "pruner", "classifier", "self", "cross")
	for _, p := range r.Pairs {
		fmt.Fprintf(&b, "%-14s %-18s %10.2f %10.2f\n",
			p.Pruner, p.Trainer, p.DiagonalGeoMean(), p.OffDiagonalGeoMean())
	}
	return b.String()
}

// SVGPortability renders the headline transfer matrix (plus the unified
// selector row) as a heatmap.
func SVGPortability(r portability.Result) (string, error) {
	hl, ok := r.Headline()
	if !ok {
		return "", fmt.Errorf("experiments: portability result lacks the decision-tree × DecisionTree pair")
	}
	rows := append([]string{}, r.Devices...)
	cells := append([][]float64{}, hl.Cells...)
	if len(r.Unified) == len(r.Devices) {
		rows = append(rows, "unified")
		cells = append(cells, r.Unified)
	}
	return plot.HeatMap{
		Title:   "Portability — % of deploy-device optimum (tree-pruned N=8, tree classifier)",
		RowAxis: "trained on",
		ColAxis: "deployed on",
		Rows:    rows,
		Cols:    r.Devices,
		Cells:   cells,
		W:       860,
	}.SVG()
}

// WritePortabilitySVG renders the transfer heatmap into dir (created if
// needed) as fig5-portability.svg.
func WritePortabilitySVG(r portability.Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	svg, err := SVGPortability(r)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "fig5-portability.svg"), []byte(svg), 0o644)
}
