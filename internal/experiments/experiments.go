// Package experiments regenerates every figure and table of the paper's
// evaluation from fixed seeds: the dataset overview (Fig 1), the optimal
// configuration counts (Fig 2), the PCA variance spectrum (Fig 3), the
// pruning comparison (Fig 4), the classifier comparison (Table I) and the
// Section IV selection-latency argument. cmd/experiments renders them as
// text; EXPERIMENTS.md records the outputs next to the paper's values.
package experiments

import (
	"sort"
	"time"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/ml/pca"
	"kernelselect/internal/par"
	"kernelselect/internal/sim"
	"kernelselect/internal/workload"
)

// DefaultSeed fixes every stochastic choice in the experiment pipeline, so
// the published tables regenerate bit-for-bit.
const DefaultSeed uint64 = 42

// Config parameterises an experiment run. Zero fields take defaults.
type Config struct {
	Device       device.Spec // benchmark platform; default R9 Nano
	Seed         uint64      // default DefaultSeed
	TestFraction float64     // default 0.2 (the paper splits 170 → 136/34)
	NMin, NMax   int         // Fig 4 sweep; default 4..15
	TableNs      []int       // Table I library sizes; default 5, 6, 8, 15
	// Workers bounds the concurrency of every pipeline stage (dataset
	// pricing, the Fig-4 pruner×N grid, the Table-I trainer×N grid, and
	// RunAll's experiment fan-out); 0 = GOMAXPROCS. Every figure and table
	// is identical at any setting: tasks are independent, seeded by scalar,
	// and committed in input order.
	Workers int
}

// Default returns the paper-faithful configuration.
func Default() Config {
	return Config{
		Device:       device.R9Nano(),
		Seed:         DefaultSeed,
		TestFraction: 0.2,
		NMin:         4,
		NMax:         15,
		TableNs:      []int{5, 6, 8, 15},
	}
}

func (c Config) withDefaults() Config {
	if c.Device.Name == "" {
		c.Device = device.R9Nano()
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.TestFraction <= 0 || c.TestFraction >= 1 {
		c.TestFraction = 0.2
	}
	if c.NMin <= 0 {
		c.NMin = 4
	}
	if c.NMax < c.NMin {
		c.NMax = 15
	}
	if len(c.TableNs) == 0 {
		c.TableNs = []int{5, 6, 8, 15}
	}
	return c
}

// Env is a prepared experiment environment: the brute-forced tuning dataset
// over the full configuration space and its train/test split.
type Env struct {
	Cfg        Config
	Dataset    *dataset.PerfDataset
	Train      *dataset.PerfDataset
	Test       *dataset.PerfDataset
	PerNetwork map[string]int // shape counts per network before union
}

// Setup builds the dataset (the cmd/tune brute-force stage) and splits it.
func Setup(cfg Config) *Env {
	cfg = cfg.withDefaults()
	shapes, per := workload.DatasetShapes()
	model := sim.New(cfg.Device)
	ds := dataset.BuildParallel(model, shapes, gemm.AllConfigs(), cfg.Workers)
	train, test := ds.Split(cfg.Seed, cfg.TestFraction)
	return &Env{Cfg: cfg, Dataset: ds, Train: train, Test: test, PerNetwork: per}
}

// ---------------------------------------------------------------------------
// Figure 1 — performance of every configuration across the dataset
// ---------------------------------------------------------------------------

// Fig1Stats summarises one configuration's normalized performance across all
// shapes. Entries are sorted by increasing mean, the x-axis order of the
// paper's Figure 1.
type Fig1Stats struct {
	Config string
	Mean   float64
	Min    float64
	Max    float64
}

// Fig1 computes the per-configuration performance distribution.
func (e *Env) Fig1() []Fig1Stats {
	d := e.Dataset
	out := make([]Fig1Stats, d.NumConfigs())
	for j := 0; j < d.NumConfigs(); j++ {
		st := Fig1Stats{Config: d.Configs[j].String(), Min: 1, Max: 0}
		for i := 0; i < d.NumShapes(); i++ {
			v := d.Norm.At(i, j)
			st.Mean += v
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
		}
		st.Mean /= float64(d.NumShapes())
		out[j] = st
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Mean < out[b].Mean })
	return out
}

// ---------------------------------------------------------------------------
// Figure 2 — number of times each configuration is optimal
// ---------------------------------------------------------------------------

// Fig2Entry is one configuration's win count.
type Fig2Entry struct {
	Config string
	Wins   int
}

// Fig2Result is the paper's Figure 2: the win-count distribution.
type Fig2Result struct {
	Entries         []Fig2Entry // non-zero winners, descending
	DistinctWinners int
	TopWins         int
}

// Fig2 counts per-configuration optima.
func (e *Env) Fig2() Fig2Result {
	wins := e.Dataset.WinCounts()
	var res Fig2Result
	for j, w := range wins {
		if w > 0 {
			res.Entries = append(res.Entries, Fig2Entry{Config: e.Dataset.Configs[j].String(), Wins: w})
		}
	}
	sort.Slice(res.Entries, func(a, b int) bool {
		if res.Entries[a].Wins != res.Entries[b].Wins {
			return res.Entries[a].Wins > res.Entries[b].Wins
		}
		return res.Entries[a].Config < res.Entries[b].Config
	})
	res.DistinctWinners = len(res.Entries)
	if len(res.Entries) > 0 {
		res.TopWins = res.Entries[0].Wins
	}
	return res
}

// ---------------------------------------------------------------------------
// Figure 3 — PCA explained-variance spectrum
// ---------------------------------------------------------------------------

// Fig3Result is the paper's Figure 3: per-component explained-variance
// ratios of the performance matrix and the component counts reaching the
// 80/90/95% thresholds the paper reads off the plot.
type Fig3Result struct {
	Ratios     []float64
	Cumulative []float64
	At80       int
	At90       int
	At95       int
}

// Fig3 runs PCA on the full normalized performance matrix.
func (e *Env) Fig3() Fig3Result {
	p := pca.Fit(e.Dataset.Norm, 0)
	res := Fig3Result{Ratios: p.ExplainedVarianceRatio}
	res.Cumulative = make([]float64, len(res.Ratios))
	cum := 0.0
	for i, r := range res.Ratios {
		cum += r
		res.Cumulative[i] = cum
	}
	res.At80 = p.ComponentsForVariance(0.80)
	res.At90 = p.ComponentsForVariance(0.90)
	res.At95 = p.ComponentsForVariance(0.95)
	return res
}

// ---------------------------------------------------------------------------
// Figure 4 — pruning methods versus library size
// ---------------------------------------------------------------------------

// Fig4Row is one pruning method's achievable test performance per library
// size.
type Fig4Row struct {
	Method string
	Ns     []int
	Scores []float64 // percentage of optimal, geometric mean over test shapes
}

// Fig4 evaluates the five pruning methods of Section III over the N sweep.
// The (pruner × N) grid is embarrassingly parallel — every cell prunes from
// the scalar seed and only reads the shared datasets — so the cells run on
// the worker pool and are committed in grid order.
func (e *Env) Fig4() []Fig4Row {
	pruners := core.AllPruners()
	ns := make([]int, 0, e.Cfg.NMax-e.Cfg.NMin+1)
	for n := e.Cfg.NMin; n <= e.Cfg.NMax; n++ {
		ns = append(ns, n)
	}
	scores := par.Map(e.Cfg.Workers, len(pruners)*len(ns), func(t int) float64 {
		p := pruners[t/len(ns)]
		n := ns[t%len(ns)]
		return core.AchievableScore(e.Test, p.Prune(e.Train, n, e.Cfg.Seed))
	})
	rows := make([]Fig4Row, len(pruners))
	for pi, p := range pruners {
		rows[pi] = Fig4Row{
			Method: p.Name(),
			Ns:     append([]int(nil), ns...),
			Scores: scores[pi*len(ns) : (pi+1)*len(ns) : (pi+1)*len(ns)],
		}
	}
	return rows
}

// ---------------------------------------------------------------------------
// Table I — runtime classifiers on tree-pruned configuration sets
// ---------------------------------------------------------------------------

// Table1Row is one classifier's scores across the library sizes.
type Table1Row struct {
	Classifier string
	Scores     []float64
}

// Table1Result is the paper's Table I plus the achievable ceilings its
// caption reports.
type Table1Result struct {
	Ns       []int
	Ceilings []float64 // max achievable for the tree-pruned selections
	Rows     []Table1Row
}

// Table1 trains and evaluates the six classifiers on decision-tree-pruned
// configuration sets. The tree prunings run in parallel per library size,
// then the (trainer × N) grid fans out — each cell trains its own selector
// from the scalar seed, so the table is identical at any worker count.
func (e *Env) Table1() Table1Result {
	res := Table1Result{Ns: e.Cfg.TableNs}
	pruner := core.DecisionTree{}
	type pruned struct {
		selected []int
		ceiling  float64
	}
	prunings := par.Map(e.Cfg.Workers, len(res.Ns), func(i int) pruned {
		selected := pruner.Prune(e.Train, res.Ns[i], e.Cfg.Seed)
		return pruned{selected: selected, ceiling: core.AchievableScore(e.Test, selected)}
	})
	for _, p := range prunings {
		res.Ceilings = append(res.Ceilings, p.ceiling)
	}
	trainers := core.AllSelectorTrainers()
	scores := par.Map(e.Cfg.Workers, len(trainers)*len(res.Ns), func(t int) float64 {
		trainer := trainers[t/len(res.Ns)]
		p := prunings[t%len(res.Ns)]
		sel := trainer.Train(e.Train, p.selected, e.Cfg.Seed)
		return core.SelectorScore(e.Test, p.selected, sel)
	})
	for ti, trainer := range trainers {
		res.Rows = append(res.Rows, Table1Row{
			Classifier: trainer.Name(),
			Scores:     scores[ti*len(res.Ns) : (ti+1)*len(res.Ns) : (ti+1)*len(res.Ns)],
		})
	}
	return res
}

// ---------------------------------------------------------------------------
// RunAll — the full deterministic evaluation
// ---------------------------------------------------------------------------

// Results collects every deterministic experiment output.
type Results struct {
	Fig1   []Fig1Stats
	Fig2   Fig2Result
	Fig3   Fig3Result
	Fig4   []Fig4Row
	Table1 Table1Result
}

// RunAll computes the five deterministic experiments concurrently on the
// environment's worker pool. SelectionLatency is excluded: it reports
// wall-clock timings, which concurrency would perturb. The results are
// byte-identical to running each experiment sequentially, at any worker
// count.
func (e *Env) RunAll() Results {
	var r Results
	par.Do(e.Cfg.Workers, 5, func(i int) {
		switch i {
		case 0:
			r.Fig1 = e.Fig1()
		case 1:
			r.Fig2 = e.Fig2()
		case 2:
			r.Fig3 = e.Fig3()
		case 3:
			r.Fig4 = e.Fig4()
		case 4:
			r.Table1 = e.Table1()
		}
	})
	return r
}

// ---------------------------------------------------------------------------
// Section IV — selection latency
// ---------------------------------------------------------------------------

// LatencyRow reports the measured per-call selection cost of one trained
// classifier, the deployment trade-off of Section IV.
type LatencyRow struct {
	Selector    string
	NsPerSelect float64
}

// SelectionLatency measures each classifier's per-query latency on the test
// shapes, using a fixed number of timed rounds.
func (e *Env) SelectionLatency(n int, rounds int) []LatencyRow {
	if rounds <= 0 {
		rounds = 200
	}
	selected := core.DecisionTree{}.Prune(e.Train, n, e.Cfg.Seed)
	var rows []LatencyRow
	for _, trainer := range core.AllSelectorTrainers() {
		sel := trainer.Train(e.Train, selected, e.Cfg.Seed)
		feats := make([][]float64, e.Test.NumShapes())
		for i, s := range e.Test.Shapes {
			feats[i] = s.Features()
		}
		var sink int
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for _, f := range feats {
				sink += sel.Select(f)
			}
		}
		elapsed := time.Since(start)
		_ = sink
		calls := rounds * len(feats)
		rows = append(rows, LatencyRow{
			Selector:    sel.Name(),
			NsPerSelect: float64(elapsed.Nanoseconds()) / float64(calls),
		})
	}
	return rows
}
