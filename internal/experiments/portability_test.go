package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kernelselect/internal/portability"
)

// fakePortability builds a small hand-made Result so render tests do not pay
// for a full three-device run (portability's own tests cover the numbers).
func fakePortability() portability.Result {
	return portability.Result{
		Devices: []string{"dev-a", "dev-b"},
		N:       8,
		Seed:    42,
		Pairs: []portability.PairMatrix{
			{Pruner: "decision-tree", Trainer: "DecisionTree",
				Cells: [][]float64{{98.5, 81.25}, {79, 97}}},
			{Pruner: "top-n", Trainer: "1NearestNeighbor",
				Cells: [][]float64{{90, 70}, {65, 88}}},
		},
		Unified:         []float64{96.5, 95},
		UnifiedConfigs:  12,
		UnifiedFeatures: 10,
	}
}

func TestRenderPortability(t *testing.T) {
	out := RenderPortability(fakePortability())
	for _, want := range []string{
		"Portability",
		"decision-tree pruning × DecisionTree",
		"trained \\ deployed",
		"dev-a", "dev-b",
		"98.50", "81.25",
		"unified",
		"10 shape+device features dispatching 12 configs",
		"self", "cross",
		"1NearestNeighbor",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered portability missing %q:\n%s", want, out)
		}
	}
}

func TestRenderPortabilityWithoutHeadlinePair(t *testing.T) {
	r := fakePortability()
	r.Pairs = r.Pairs[1:] // drop decision-tree × DecisionTree
	out := RenderPortability(r)
	if strings.Contains(out, "trained \\ deployed") {
		t.Fatal("matrix rendered without the headline pair")
	}
	if !strings.Contains(out, "Transfer summary") {
		t.Fatal("summary table missing")
	}
}

func TestWritePortabilitySVG(t *testing.T) {
	dir := t.TempDir()
	if err := WritePortabilitySVG(fakePortability(), dir); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig5-portability.svg"))
	if err != nil {
		t.Fatal(err)
	}
	svg := string(b)
	for _, want := range []string{"<svg", "trained on", "deployed on", "unified", "dev-b"} {
		if !strings.Contains(svg, want) {
			t.Errorf("portability SVG missing %q", want)
		}
	}
}

func TestSVGPortabilityRequiresHeadline(t *testing.T) {
	r := fakePortability()
	r.Pairs = nil
	if _, err := SVGPortability(r); err == nil {
		t.Fatal("expected error without the headline pair")
	}
}
