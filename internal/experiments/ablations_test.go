package experiments

import (
	"bytes"
	"encoding/xml"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kernelselect/internal/core"
	"kernelselect/internal/device"
)

func TestAblationPCAThresholds(t *testing.T) {
	e := sharedEnv(t)
	rows := e.AblationPCAThresholds(6, []float64{0.80, 0.95})
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Components > rows[1].Components {
		t.Fatal("higher threshold should keep at least as many components")
	}
	for _, r := range rows {
		if r.CeilingPct <= 0 || r.CeilingPct > 100 {
			t.Fatalf("ceiling %v", r.CeilingPct)
		}
		if r.Components < 1 {
			t.Fatalf("components %d", r.Components)
		}
	}
}

func TestAblationSplitSeeds(t *testing.T) {
	e := sharedEnv(t)
	res := e.AblationSplitSeeds(6, []uint64{1, 2, 3, 4})
	if len(res.Scores) != 4 {
		t.Fatalf("%d scores", len(res.Scores))
	}
	if !(res.Min <= res.Mean && res.Mean <= res.Max) {
		t.Fatalf("summary inconsistent: min %v mean %v max %v", res.Min, res.Mean, res.Max)
	}
	if res.Max-res.Min < 0 {
		t.Fatal("negative spread")
	}
	// Splits must actually differ (different seeds → different test sets).
	same := true
	for _, s := range res.Scores[1:] {
		if s != res.Scores[0] {
			same = false
		}
	}
	if same {
		t.Fatal("all split seeds produced identical scores; seeds not applied")
	}
}

func TestAblationDevices(t *testing.T) {
	rows := AblationDevices(6, DefaultSeed, 0.2)
	if len(rows) != 3 {
		t.Fatalf("%d device rows", len(rows))
	}
	sets := map[string]bool{}
	for _, r := range rows {
		if r.CeilingPct < 80 || r.CeilingPct > 100 {
			t.Fatalf("%s ceiling %v", r.Device, r.CeilingPct)
		}
		if len(r.Configs) != 6 {
			t.Fatalf("%s shipped %d configs", r.Device, len(r.Configs))
		}
		sets[strings.Join(r.Configs, ",")] = true
	}
	// The portability claim: the shipped sets differ across devices.
	if len(sets) < 2 {
		t.Fatal("all devices shipped identical kernel sets")
	}
}

func TestAblationWorkGroupOnly(t *testing.T) {
	rows := AblationWorkGroupOnly(6, DefaultSeed, 0.2)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	full, restricted := rows[0], rows[1]
	if full.Configs != 640 || restricted.Configs != 64 {
		t.Fatalf("space sizes %d/%d", full.Configs, restricted.Configs)
	}
	// Restricting to one work-group shape cannot beat the full space.
	if restricted.CeilingPct > full.CeilingPct+1e-9 {
		t.Fatalf("restricted space (%v) beats full space (%v)", restricted.CeilingPct, full.CeilingPct)
	}
}

func TestRenderAblations(t *testing.T) {
	e := sharedEnv(t)
	out := RenderAblations(e)
	for _, want := range []string{"PCA retained-variance", "Split-seed spread", "Per-device pipeline", "Configuration-space restriction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFeatureImportance(t *testing.T) {
	e := sharedEnv(t)
	r := e.FeatureImportance(8)
	var treeSum, forestSum float64
	for i := 0; i < 3; i++ {
		if r.Tree[i] < 0 || r.Forest[i] < 0 {
			t.Fatalf("negative importance: %+v", r)
		}
		treeSum += r.Tree[i]
		forestSum += r.Forest[i]
	}
	if treeSum < 0.999 || treeSum > 1.001 || forestSum < 0.999 || forestSum > 1.001 {
		t.Fatalf("importances not normalised: tree %v forest %v", treeSum, forestSum)
	}
	// Selection must depend on more than one dimension (the regions of
	// Figure 1 are not one-dimensional).
	nonzeroTree := 0
	for _, v := range r.Tree {
		if v > 0.05 {
			nonzeroTree++
		}
	}
	if nonzeroTree < 2 {
		t.Fatalf("tree selector uses only %d dimensions: %+v", nonzeroTree, r.Tree)
	}
}

func TestWriteMarkdownReport(t *testing.T) {
	e := sharedEnv(t)
	var buf strings.Builder
	if err := WriteMarkdownReport(&buf, e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Experiment report", "Figure 1", "Figure 2", "Figure 3", "Figure 4", "Table I", "Section IV", "Feature importance", "Ablations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestWriteSVGs(t *testing.T) {
	e := sharedEnv(t)
	dir := t.TempDir()
	if err := e.WriteSVGs(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1.svg", "fig2.svg", "fig3.svg", "fig4.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 1000 {
			t.Fatalf("%s suspiciously small (%d bytes)", name, len(data))
		}
		dec := xml.NewDecoder(bytes.NewReader(data))
		for {
			if _, err := dec.Token(); err != nil {
				if err == io.EOF {
					break
				}
				t.Fatalf("%s not well-formed: %v", name, err)
			}
		}
	}
}

func TestAblationLeaveOneNetworkOut(t *testing.T) {
	e := sharedEnv(t)
	rows := e.AblationLeaveOneNetworkOut(6)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	total := 0
	for _, r := range rows {
		if r.TrainShapes+r.TestShapes != e.Dataset.NumShapes() {
			t.Fatalf("%s: %d+%d != %d", r.HeldOut, r.TrainShapes, r.TestShapes, e.Dataset.NumShapes())
		}
		if r.TestShapes == 0 {
			t.Fatalf("%s: empty held-out set", r.HeldOut)
		}
		total += r.TestShapes
		if r.SelectorPct > r.CeilingPct+1e-9 {
			t.Fatalf("%s: selector beats ceiling", r.HeldOut)
		}
		if r.CeilingPct < 85 || r.CeilingPct > 100 {
			t.Fatalf("%s: ceiling %v", r.HeldOut, r.CeilingPct)
		}
		// The generalisation gap: the selector on an unseen network should
		// not be (much) better than on a random split. We assert the weaker
		// invariant that it stays meaningfully below its own ceiling.
		if r.CeilingPct-r.SelectorPct < 1 {
			t.Fatalf("%s: no generalisation gap at all (ceiling %v selector %v)",
				r.HeldOut, r.CeilingPct, r.SelectorPct)
		}
	}
}

func TestGreedyPruner(t *testing.T) {
	e := sharedEnv(t)
	g := core.Greedy{}
	if g.Name() != "greedy-cover" {
		t.Fatal("name")
	}
	sel := g.Prune(e.Train, 6, 1)
	if len(sel) != 6 {
		t.Fatalf("selected %d", len(sel))
	}
	seen := map[int]bool{}
	for _, c := range sel {
		if seen[c] {
			t.Fatal("duplicate selection")
		}
		seen[c] = true
	}
	// Greedy must dominate top-n on its own objective (train score), since
	// its first pick alone is the best single config by geomean.
	gScore := core.AchievableScore(e.Train, sel)
	tScore := core.AchievableScore(e.Train, core.TopN{}.Prune(e.Train, 6, 1))
	if gScore < tScore-1e-9 {
		t.Fatalf("greedy train score %v below top-n %v", gScore, tScore)
	}
	// Monotone in n on the train set (supersets can only help).
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8} {
		s := core.AchievableScore(e.Train, g.Prune(e.Train, n, 1))
		if s < prev-1e-9 {
			t.Fatalf("greedy train score decreased at n=%d", n)
		}
		prev = s
	}
}

// TestAblationDatasetSize pins the paper's future-work hypothesis: across
// seeds, the classifier's gap to its ceiling shrinks on the larger dataset.
func TestAblationDatasetSize(t *testing.T) {
	var stdGap, extGap float64
	seeds := []uint64{42, 7, 11}
	for _, seed := range seeds {
		rows := AblationDatasetSize(8, seed, 0.2, device.R9Nano())
		if len(rows) != 2 {
			t.Fatalf("%d rows", len(rows))
		}
		if rows[1].Shapes <= rows[0].Shapes {
			t.Fatal("extended dataset not larger")
		}
		stdGap += rows[0].GapPct
		extGap += rows[1].GapPct
	}
	stdGap /= float64(len(seeds))
	extGap /= float64(len(seeds))
	if extGap >= stdGap {
		t.Fatalf("larger dataset did not shrink the classifier gap: %v vs %v", extGap, stdGap)
	}
}

func TestAblationClusterCount(t *testing.T) {
	e := sharedEnv(t)
	rows := e.AblationClusterCount(2, 10)
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Silhouette < -1 || r.Silhouette > 1 {
			t.Fatalf("k=%d silhouette %v out of [-1,1]", r.K, r.Silhouette)
		}
	}
	// The performance vectors do cluster: some k must show positive
	// structure.
	best := rows[0].Silhouette
	for _, r := range rows {
		if r.Silhouette > best {
			best = r.Silhouette
		}
	}
	if best < 0.05 {
		t.Fatalf("no k shows cluster structure (best silhouette %v)", best)
	}
}

func TestAblationTrainingShapes(t *testing.T) {
	r := AblationTrainingShapes(8, DefaultSeed, 0.2, device.R9Nano())
	if r.TrainingShapes <= r.ForwardShapes {
		t.Fatal("training shape set not larger")
	}
	if r.InferenceTunedPct <= 0 || r.InferenceTunedPct > 100 ||
		r.RetunedPct <= 0 || r.RetunedPct > 100 {
		t.Fatalf("scores out of range: %+v", r)
	}
	// Retuning on the training workload must not be worse than the
	// inference-only tuning on the backward shapes it was never shown.
	if r.RetunedPct < r.InferenceTunedPct-0.5 {
		t.Fatalf("retuned %.2f below inference-tuned %.2f", r.RetunedPct, r.InferenceTunedPct)
	}
}
