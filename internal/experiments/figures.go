package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"kernelselect/internal/plot"
)

// SVGFig1 renders Figure 1 as mean/min/max lines over the mean-sorted
// configuration rank (the 640-column scatter of the paper reads as a band).
func (e *Env) SVGFig1() (string, error) {
	stats := e.Fig1()
	x := make([]float64, len(stats))
	mean := make([]float64, len(stats))
	lo := make([]float64, len(stats))
	hi := make([]float64, len(stats))
	for i, s := range stats {
		x[i] = float64(i)
		mean[i] = s.Mean
		lo[i] = s.Min
		hi[i] = s.Max
	}
	return plot.LineChart{
		Title:  "Figure 1 — normalized performance by configuration (sorted by mean)",
		XLabel: "configuration rank (by mean)",
		YLabel: "fraction of per-shape optimum",
		X:      x,
		Series: []plot.Series{
			{Name: "max", Y: hi},
			{Name: "mean", Y: mean},
			{Name: "min", Y: lo},
		},
	}.SVG()
}

// SVGFig2 renders the win-count histogram (top 20 winners).
func (e *Env) SVGFig2() (string, error) {
	r := e.Fig2()
	n := len(r.Entries)
	if n > 20 {
		n = 20
	}
	labels := make([]string, n)
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		labels[i] = r.Entries[i].Config
		values[i] = float64(r.Entries[i].Wins)
	}
	return plot.BarChart{
		Title:  fmt.Sprintf("Figure 2 — times optimal (top %d of %d winners)", n, r.DistinctWinners),
		YLabel: "shapes won",
		Labels: labels,
		Values: values,
		W:      900,
	}.SVG()
}

// SVGFig3 renders the PCA variance spectrum (first 20 components).
func (e *Env) SVGFig3() (string, error) {
	r := e.Fig3()
	n := len(r.Ratios)
	if n > 20 {
		n = 20
	}
	x := make([]float64, n)
	ratio := make([]float64, n)
	cum := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i + 1)
		ratio[i] = r.Ratios[i]
		cum[i] = r.Cumulative[i]
	}
	return plot.LineChart{
		Title:  "Figure 3 — PCA explained variance of the performance matrix",
		XLabel: "component",
		YLabel: "variance ratio",
		X:      x,
		Series: []plot.Series{
			{Name: "cumulative", Y: cum},
			{Name: "per component", Y: ratio},
		},
		Markers: true,
	}.SVG()
}

// SVGFig4 renders the pruning comparison.
func (e *Env) SVGFig4() (string, error) {
	rows := e.Fig4()
	if len(rows) == 0 {
		return "", fmt.Errorf("experiments: no Fig4 rows")
	}
	x := make([]float64, len(rows[0].Ns))
	for i, n := range rows[0].Ns {
		x[i] = float64(n)
	}
	series := make([]plot.Series, len(rows))
	for i, r := range rows {
		series[i] = plot.Series{Name: r.Method, Y: r.Scores}
	}
	return plot.LineChart{
		Title:   "Figure 4 — pruning methods: achievable % of optimal on the test split",
		XLabel:  "number of configurations",
		YLabel:  "% of optimal (geometric mean)",
		X:       x,
		Series:  series,
		Markers: true,
	}.SVG()
}

// WriteSVGs renders all four figures into dir (created if needed) as
// fig1.svg … fig4.svg.
func (e *Env) WriteSVGs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	figs := []struct {
		name string
		gen  func() (string, error)
	}{
		{"fig1.svg", e.SVGFig1},
		{"fig2.svg", e.SVGFig2},
		{"fig3.svg", e.SVGFig3},
		{"fig4.svg", e.SVGFig4},
	}
	for _, f := range figs {
		svg, err := f.gen()
		if err != nil {
			return fmt.Errorf("experiments: rendering %s: %w", f.name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, f.name), []byte(svg), 0o644); err != nil {
			return err
		}
	}
	return nil
}
