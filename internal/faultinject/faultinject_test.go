package faultinject

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kernelselect/internal/gemm"
)

// okPricer answers every pricing with a fixed value.
var okPricer = PricerFunc(func(context.Context, gemm.Config, gemm.Shape) (float64, error) {
	return 100, nil
})

func callPattern(seed uint64, opts Options, n int) []bool {
	in := New(seed, opts)
	p := in.Pricer(okPricer)
	pattern := make([]bool, n)
	for i := range pattern {
		_, err := p.PriceGFLOPS(context.Background(), gemm.Config{}, gemm.Shape{M: 1, K: 1, N: 1})
		pattern[i] = err != nil
	}
	return pattern
}

// The fault schedule must be a pure function of the seed: two sequential
// runs agree call-for-call, and a different seed produces a different
// schedule.
func TestDeterministicSchedule(t *testing.T) {
	opts := Options{PriceError: 0.3}
	a := callPattern(7, opts, 200)
	b := callPattern(7, opts, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := callPattern(8, opts, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 200-call schedule")
	}
}

func TestErrorRateAndStats(t *testing.T) {
	in := New(42, Options{PriceError: 0.25})
	p := in.Pricer(okPricer)
	const n = 2000
	fails := 0
	for i := 0; i < n; i++ {
		v, err := p.PriceGFLOPS(context.Background(), gemm.Config{}, gemm.Shape{M: 1, K: 1, N: 1})
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			fails++
		} else if v != 100 {
			t.Fatalf("passthrough value %v, want 100", v)
		}
	}
	if got := in.Stats().Errors; got != uint64(fails) {
		t.Fatalf("stats count %d, observed %d failures", got, fails)
	}
	rate := float64(fails) / n
	if rate < 0.18 || rate > 0.32 {
		t.Fatalf("error rate %.3f far from configured 0.25", rate)
	}
}

func TestZeroOptionsInjectNothing(t *testing.T) {
	in := New(1, Options{})
	p := in.Pricer(okPricer)
	for i := 0; i < 500; i++ {
		if _, err := p.PriceGFLOPS(context.Background(), gemm.Config{}, gemm.Shape{M: 1, K: 1, N: 1}); err != nil {
			t.Fatalf("zero-probability injector failed call %d: %v", i, err)
		}
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("stats %+v, want all zero", s)
	}
}

// FailRetrain draws from its own deterministic stream: same seed, same
// schedule; the hit rate tracks the configured probability and the stats
// counter matches the observed failures.
func TestFailRetrainDeterministicAndCounted(t *testing.T) {
	pattern := func(seed uint64) []bool {
		in := New(seed, Options{RetrainError: 0.3})
		out := make([]bool, 300)
		for i := range out {
			out[i] = in.FailRetrain()
		}
		return out
	}
	a, b := pattern(11), pattern(11)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at poll %d", i)
		}
		if a[i] {
			fails++
		}
	}
	rate := float64(fails) / float64(len(a))
	if rate < 0.2 || rate > 0.4 {
		t.Fatalf("retrain failure rate %.3f far from configured 0.3", rate)
	}
	in := New(11, Options{RetrainError: 0.3})
	for range a {
		in.FailRetrain()
	}
	if got := in.Stats().RetrainFails; got != uint64(fails) {
		t.Fatalf("stats count %d, observed %d failures", got, fails)
	}

	zero := New(11, Options{})
	for i := 0; i < 200; i++ {
		if zero.FailRetrain() {
			t.Fatal("zero-probability injector failed a retrain")
		}
	}
}

// A spike must yield to an already-dead context instead of sleeping it out.
func TestSpikeRespectsContext(t *testing.T) {
	in := New(3, Options{Spike: 1, SpikeMax: time.Minute})
	p := in.Pricer(okPricer)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := p.PriceGFLOPS(ctx, gemm.Config{}, gemm.Shape{M: 1, K: 1, N: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("spike ignored dead context for %v", elapsed)
	}
}

// Middleware with Cancel=1 must hand every request a context that dies
// within CancelMax.
func TestMiddlewareCancels(t *testing.T) {
	in := New(5, Options{Cancel: 1, CancelMax: time.Millisecond})
	saw := make(chan error, 1)
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			saw <- r.Context().Err()
		case <-time.After(2 * time.Second):
			saw <- nil
		}
	}))
	req := httptest.NewRequest(http.MethodPost, "/v1/select", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if err := <-saw; err == nil {
		t.Fatal("request context never cancelled")
	}
	if in.Stats().Cancels != 1 {
		t.Fatalf("cancel count %d, want 1", in.Stats().Cancels)
	}
}

// A killed Outage severs connections at the transport — the client sees a
// broken round trip, not an HTTP status — and Restore brings clean service
// back on the same listener.
func TestOutageSeversAndRestores(t *testing.T) {
	o := NewOutage()
	ts := httptest.NewServer(o.Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))
	defer ts.Close()

	get := func() (*http.Response, error) {
		// A fresh client per call: severed connections must not be reused.
		c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
		return c.Get(ts.URL)
	}

	if resp, err := get(); err != nil {
		t.Fatalf("healthy request failed: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy status %d", resp.StatusCode)
		}
	}

	o.Kill()
	if !o.Down() {
		t.Fatal("Kill did not mark the outage down")
	}
	if resp, err := get(); err == nil {
		resp.Body.Close()
		t.Fatalf("severed request got an HTTP response: %d", resp.StatusCode)
	}
	if o.Kills() != 1 || o.Severed() == 0 {
		t.Fatalf("kills=%d severed=%d after one kill and one severed request", o.Kills(), o.Severed())
	}
	o.Kill() // idempotent: still one kill transition
	if o.Kills() != 1 {
		t.Fatalf("repeated Kill counted twice: %d", o.Kills())
	}

	o.Restore()
	if resp, err := get(); err != nil {
		t.Fatalf("restored request failed: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("restored status %d", resp.StatusCode)
		}
	}
}

func TestMiddlewarePassthrough(t *testing.T) {
	in := New(5, Options{})
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Context().Err() != nil {
			t.Error("passthrough request arrived cancelled")
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("status %d", rec.Code)
	}
}
