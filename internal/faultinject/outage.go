package faultinject

import (
	"net/http"
	"sync/atomic"
)

// Outage simulates a replica process dying and later restarting without
// giving up its listener: while down, every request's connection is severed
// at the TCP level (hijack + close), so clients observe transport errors —
// connection reset, EOF — exactly as they would against a crashed process,
// rather than a graceful HTTP error a live-but-unhealthy process would send.
// Kill and Restore are the chaos harness's seam for mid-run replica
// kill/restart; the harness derives which replica dies and when from its run
// seed, keeping the outage schedule reproducible.
type Outage struct {
	down    atomic.Bool
	kills   atomic.Uint64
	severed atomic.Uint64
}

// NewOutage returns a restored (serving) outage switch.
func NewOutage() *Outage { return &Outage{} }

// Kill severs the replica: subsequent requests get their connections closed.
func (o *Outage) Kill() {
	if !o.down.Swap(true) {
		o.kills.Add(1)
	}
}

// Restore brings the replica back; in-flight severed connections stay dead.
func (o *Outage) Restore() { o.down.Store(false) }

// Down reports whether the replica is currently severed.
func (o *Outage) Down() bool { return o.down.Load() }

// Kills counts Kill transitions; Severed counts connections cut while down.
func (o *Outage) Kills() uint64   { return o.kills.Load() }
func (o *Outage) Severed() uint64 { return o.severed.Load() }

// Middleware wraps a replica's handler with the outage switch.
func (o *Outage) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if o.down.Load() {
			o.severed.Add(1)
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			// No hijacking (e.g. HTTP/2): abort the response stream so the
			// client still sees a broken transport, not a status code.
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}
