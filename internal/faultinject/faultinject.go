// Package faultinject is a deterministic, seed-driven fault injector for the
// serving runtime's chaos suite. It wraps the pricing seam (latency spikes
// and pricing errors) and the HTTP layer (mid-request context cancellation)
// so tests can drive the server through overload, failure and reload races
// and assert the resilience invariants: no panics, no degraded or aborted
// decision cached, budgets conserved, responses internally consistent.
//
// Determinism: every injection decision is a pure function of (seed, fault
// kind, event index), where the event index is a per-injector atomic
// counter. Two sequential runs with the same seed see the same fault
// schedule; under concurrency the schedule is fixed but its interleaving is
// the scheduler's — exactly the nondeterminism a chaos suite wants, while
// failures still reproduce by seed.
package faultinject

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"kernelselect/internal/gemm"
	"kernelselect/internal/xrand"
)

// ErrInjected is the pricing failure the injector returns; the serving layer
// treats it like any other pricing error (degrade + circuit breaker).
var ErrInjected = errors.New("faultinject: injected pricing failure")

// Options set the per-call fault probabilities. Zero values inject nothing.
type Options struct {
	PriceError   float64       // probability a pricing call fails with ErrInjected
	Spike        float64       // probability a pricing call sleeps before answering
	SpikeMax     time.Duration // spike duration upper bound; default 1ms
	Cancel       float64       // probability the HTTP middleware cancels the request mid-flight
	CancelMax    time.Duration // cancel delay upper bound; default 500µs
	RetrainError float64       // probability a FailRetrain poll reports failure
}

func (o Options) withDefaults() Options {
	if o.SpikeMax <= 0 {
		o.SpikeMax = time.Millisecond
	}
	if o.CancelMax <= 0 {
		o.CancelMax = 500 * time.Microsecond
	}
	return o
}

// Stats counts the faults actually injected.
type Stats struct {
	Spikes       uint64
	Errors       uint64
	Cancels      uint64
	RetrainFails uint64
}

// fault kinds salt the hash so the spike/error/cancel streams are
// independent even when they share event indices.
const (
	kindSpike uint64 = iota + 1
	kindError
	kindCancel
	kindRetrain
)

// Injector draws a deterministic fault schedule from a seed.
type Injector struct {
	seed     uint64
	opts     Options
	events   atomic.Uint64
	spikes   atomic.Uint64
	errs     atomic.Uint64
	cancels  atomic.Uint64
	retrains atomic.Uint64
}

// New returns an injector whose schedule is fully determined by seed.
func New(seed uint64, opts Options) *Injector {
	return &Injector{seed: seed, opts: opts.withDefaults()}
}

// roll advances the event counter and returns a uniform [0,1) draw plus the
// raw hash (for deriving deterministic magnitudes) for the given fault kind.
func (in *Injector) roll(kind uint64) (float64, uint64) {
	idx := in.events.Add(1)
	h := xrand.Hash64(in.seed, kind, idx)
	return float64(h>>11) / (1 << 53), h
}

// Stats reports how many faults have been injected so far.
func (in *Injector) Stats() Stats {
	return Stats{
		Spikes:       in.spikes.Load(),
		Errors:       in.errs.Load(),
		Cancels:      in.cancels.Load(),
		RetrainFails: in.retrains.Load(),
	}
}

// FailRetrain reports whether the current shadow-retrain attempt should fail,
// per the seed's schedule. The chaos suite wires it into a RetrainFunc so the
// retrain-error path (counted, never promoted, never serving) is exercised
// deterministically alongside the pricing faults.
func (in *Injector) FailRetrain() bool {
	if f, _ := in.roll(kindRetrain); f < in.opts.RetrainError {
		in.retrains.Add(1)
		return true
	}
	return false
}

// Pricer is the pricing seam the injector wraps — structurally identical to
// the serving layer's Pricer interface, declared here so the package depends
// only on the shape/config types.
type Pricer interface {
	PriceGFLOPS(ctx context.Context, cfg gemm.Config, s gemm.Shape) (float64, error)
}

// PricerFunc adapts a plain pricing function (e.g. a closure over
// (*sim.Model).GFLOPS) to the Pricer seam.
type PricerFunc func(ctx context.Context, cfg gemm.Config, s gemm.Shape) (float64, error)

func (f PricerFunc) PriceGFLOPS(ctx context.Context, cfg gemm.Config, s gemm.Shape) (float64, error) {
	return f(ctx, cfg, s)
}

// Pricer wraps inner with the injector's spike and error schedule. Spikes
// respect the request context: a deadline that expires mid-spike surfaces as
// the context's error, exactly like a slow real pricing.
func (in *Injector) Pricer(inner Pricer) Pricer {
	return &faultyPricer{in: in, inner: inner}
}

type faultyPricer struct {
	in    *Injector
	inner Pricer
}

func (p *faultyPricer) PriceGFLOPS(ctx context.Context, cfg gemm.Config, s gemm.Shape) (float64, error) {
	if f, h := p.in.roll(kindSpike); f < p.in.opts.Spike {
		p.in.spikes.Add(1)
		d := time.Duration(h%uint64(p.in.opts.SpikeMax)) + 1
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return 0, ctx.Err()
		}
	}
	if f, _ := p.in.roll(kindError); f < p.in.opts.PriceError {
		p.in.errs.Add(1)
		return 0, ErrInjected
	}
	return p.inner.PriceGFLOPS(ctx, cfg, s)
}

// Middleware wraps an HTTP handler: selected requests get a context that is
// cancelled a deterministic delay into the request, simulating clients that
// hang up mid-flight. The serving layer must answer such requests without
// caching their aborted decisions.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f, h := in.roll(kindCancel); f < in.opts.Cancel {
			in.cancels.Add(1)
			ctx, cancel := context.WithCancel(r.Context())
			defer cancel()
			delay := time.Duration(h % uint64(in.opts.CancelMax))
			t := time.AfterFunc(delay, cancel)
			defer t.Stop()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}
