package portability_test

import (
	"bytes"
	"reflect"
	"testing"

	"kernelselect/internal/core"
	"kernelselect/internal/device"
	"kernelselect/internal/experiments"
	"kernelselect/internal/ml/metrics"
	"kernelselect/internal/portability"
)

// testConfig keeps runs affordable: one pruner (the headline decision tree),
// two classifiers, all three devices.
func testConfig(workers int) portability.Config {
	return portability.Config{
		Seed:    42,
		N:       8,
		Pruners: []core.Pruner{core.DecisionTree{}},
		Trainers: []core.SelectorTrainer{
			core.DecisionTreeSelector{},
			core.KNNSelector{K: 1},
		},
		Workers: workers,
	}
}

// The transfer matrices, unified scores, and every other Result field must
// be bit-identical regardless of the -workers setting.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	serial := portability.Run(testConfig(1))
	wide := portability.Run(testConfig(5))
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("results differ across worker counts:\nworkers=1: %+v\nworkers=5: %+v", serial, wide)
	}
}

// Self-transfer (train and deploy on the same device) is exactly the
// single-device experiment pipeline, so the diagonal of every transfer
// matrix must reproduce the corresponding Table-I cell to the last bit.
func TestSelfTransferDiagonalMatchesTable1(t *testing.T) {
	cfg := portability.Config{
		Seed:    42,
		N:       8,
		Pruners: []core.Pruner{core.DecisionTree{}},
		Workers: 4, // all six trainers (the default) to cover every Table-I row
	}
	res := portability.Run(cfg)

	for d, dev := range device.All() {
		table := experiments.Setup(experiments.Config{
			Device:  dev,
			Seed:    42,
			TableNs: []int{8},
			Workers: 2,
		}).Table1()
		for _, row := range table.Rows {
			pair, ok := res.Pair("decision-tree", row.Classifier)
			if !ok {
				t.Fatalf("portability run missing pair decision-tree × %s", row.Classifier)
			}
			if got, want := pair.Cells[d][d], row.Scores[0]; got != want {
				t.Errorf("%s on %s: diagonal %v != Table-I %v", row.Classifier, dev.Name, got, want)
			}
		}
	}
}

// The unified selector must be fitted on device-augmented features, dispatch
// over at least a single device's library, and land in a sane score range on
// every device.
func TestUnifiedSelectorShape(t *testing.T) {
	res := portability.Run(testConfig(4))
	if got, want := res.UnifiedFeatures, 3+device.NumFeatures; got != want {
		t.Fatalf("unified selector feature width = %d, want %d", got, want)
	}
	if res.UnifiedConfigs < 8 {
		t.Fatalf("unified union has %d configs, want >= 8", res.UnifiedConfigs)
	}
	if len(res.Unified) != len(res.Devices) {
		t.Fatalf("unified scores cover %d devices, want %d", len(res.Unified), len(res.Devices))
	}
	for i, s := range res.Unified {
		if s <= 0 || s > 100 {
			t.Errorf("unified score on %s = %v, want in (0, 100]", res.Devices[i], s)
		}
	}
}

// The unified artifact must round-trip through persistence and reproduce the
// in-memory evaluation exactly: the persisted library's per-device dispatch,
// scored on each device's test split, lands on the same numbers Run reports.
// The held-out table and the transfer-aware joint pruning ride on the same
// environment.
func TestUnifiedArtifactMatchesInMemory(t *testing.T) {
	cfg := testConfig(4)
	cfg.HeldOutDevices = device.Synthetics()[:2]
	env := portability.Setup(cfg)
	res := env.Run()

	// Transfer-aware joint pruning: exactly N configs, sane scores.
	if res.JointConfigs != 8 {
		t.Fatalf("joint pruning selected %d configs, want 8", res.JointConfigs)
	}
	for i, s := range res.Joint {
		if s <= 0 || s > 100 {
			t.Errorf("joint score on %s = %v, want in (0, 100]", res.Devices[i], s)
		}
	}

	// Held-out table: training devices first (scores equal to Unified), then
	// the synthetic specs, each no better than its union ceiling.
	if want := len(device.All()) + 2; len(res.HeldOut) != want {
		t.Fatalf("held-out table has %d rows, want %d", len(res.HeldOut), want)
	}
	for i, h := range res.HeldOut {
		if h.Score <= 0 || h.Score > h.Ceiling+1e-9 {
			t.Errorf("%s: held-out score %v outside (0, ceiling %v]", h.Device, h.Score, h.Ceiling)
		}
		if i < len(device.All()) {
			if h.Synthetic {
				t.Errorf("%s: training device marked synthetic", h.Device)
			}
			if h.Score != res.Unified[i] {
				t.Errorf("%s: held-out score %v != unified score %v", h.Device, h.Score, res.Unified[i])
			}
		} else if !h.Synthetic {
			t.Errorf("%s: held-out spec not marked synthetic", h.Device)
		}
	}

	// Build, persist, reload.
	lib, err := env.BuildUnifiedLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if !lib.Unified() {
		t.Fatal("built unified library not marked unified")
	}
	if got, want := lib.NumFeatures(), 3+device.NumFeatures; got != want {
		t.Fatalf("unified library width = %d, want %d", got, want)
	}
	if len(lib.Configs) != res.UnifiedConfigs {
		t.Fatalf("unified library has %d configs, Run reported %d", len(lib.Configs), res.UnifiedConfigs)
	}
	var buf bytes.Buffer
	if err := core.SaveUnifiedLibrary(&buf, lib, env.DeviceNames()); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadLibrary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Unified() {
		t.Fatal("reloaded unified library lost its unified marker")
	}
	if !reflect.DeepEqual(loaded.TrainingDevices(), env.DeviceNames()) {
		t.Fatalf("training devices = %v, want %v", loaded.TrainingDevices(), env.DeviceNames())
	}

	// The reloaded artifact's dispatch reproduces Run's unified scores to the
	// last bit on every training device.
	for b, spec := range env.Cfg.Devices {
		ts := env.Test[b]
		col := map[string]int{}
		for j, c := range ts.Configs {
			col[c.String()] = j
		}
		scores := make([]float64, ts.NumShapes())
		for i := range scores {
			k := loaded.UnifiedChooseIndex(ts.Shapes[i], spec.Features())
			scores[i] = ts.Norm.At(i, col[loaded.Configs[k].String()])
		}
		if got := 100 * metrics.GeoMean(scores); got != res.Unified[b] {
			t.Errorf("%s: persisted artifact scores %v, in-memory run %v", spec.Name, got, res.Unified[b])
		}
	}
}

// Off-diagonal summaries must be positive and no better than lossless.
func TestOffDiagonalGeoMean(t *testing.T) {
	res := portability.Run(testConfig(4))
	for _, p := range res.Pairs {
		g := p.OffDiagonalGeoMean()
		if g <= 0 || g > 100 {
			t.Errorf("%s × %s: off-diagonal geomean %v out of (0, 100]", p.Pruner, p.Trainer, g)
		}
		for a := range p.Cells {
			for b := range p.Cells[a] {
				if p.Cells[a][b] <= 0 || p.Cells[a][b] > 100 {
					t.Errorf("%s × %s: cell[%d][%d] = %v out of (0, 100]", p.Pruner, p.Trainer, a, b, p.Cells[a][b])
				}
			}
		}
	}
}
