package portability_test

import (
	"reflect"
	"testing"

	"kernelselect/internal/core"
	"kernelselect/internal/device"
	"kernelselect/internal/experiments"
	"kernelselect/internal/portability"
)

// testConfig keeps runs affordable: one pruner (the headline decision tree),
// two classifiers, all three devices.
func testConfig(workers int) portability.Config {
	return portability.Config{
		Seed:    42,
		N:       8,
		Pruners: []core.Pruner{core.DecisionTree{}},
		Trainers: []core.SelectorTrainer{
			core.DecisionTreeSelector{},
			core.KNNSelector{K: 1},
		},
		Workers: workers,
	}
}

// The transfer matrices, unified scores, and every other Result field must
// be bit-identical regardless of the -workers setting.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	serial := portability.Run(testConfig(1))
	wide := portability.Run(testConfig(5))
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("results differ across worker counts:\nworkers=1: %+v\nworkers=5: %+v", serial, wide)
	}
}

// Self-transfer (train and deploy on the same device) is exactly the
// single-device experiment pipeline, so the diagonal of every transfer
// matrix must reproduce the corresponding Table-I cell to the last bit.
func TestSelfTransferDiagonalMatchesTable1(t *testing.T) {
	cfg := portability.Config{
		Seed:    42,
		N:       8,
		Pruners: []core.Pruner{core.DecisionTree{}},
		Workers: 4, // all six trainers (the default) to cover every Table-I row
	}
	res := portability.Run(cfg)

	for d, dev := range device.All() {
		table := experiments.Setup(experiments.Config{
			Device:  dev,
			Seed:    42,
			TableNs: []int{8},
			Workers: 2,
		}).Table1()
		for _, row := range table.Rows {
			pair, ok := res.Pair("decision-tree", row.Classifier)
			if !ok {
				t.Fatalf("portability run missing pair decision-tree × %s", row.Classifier)
			}
			if got, want := pair.Cells[d][d], row.Scores[0]; got != want {
				t.Errorf("%s on %s: diagonal %v != Table-I %v", row.Classifier, dev.Name, got, want)
			}
		}
	}
}

// The unified selector must be fitted on device-augmented features, dispatch
// over at least a single device's library, and land in a sane score range on
// every device.
func TestUnifiedSelectorShape(t *testing.T) {
	res := portability.Run(testConfig(4))
	if got, want := res.UnifiedFeatures, 3+device.NumFeatures; got != want {
		t.Fatalf("unified selector feature width = %d, want %d", got, want)
	}
	if res.UnifiedConfigs < 8 {
		t.Fatalf("unified union has %d configs, want >= 8", res.UnifiedConfigs)
	}
	if len(res.Unified) != len(res.Devices) {
		t.Fatalf("unified scores cover %d devices, want %d", len(res.Unified), len(res.Devices))
	}
	for i, s := range res.Unified {
		if s <= 0 || s > 100 {
			t.Errorf("unified score on %s = %v, want in (0, 100]", res.Devices[i], s)
		}
	}
}

// Off-diagonal summaries must be positive and no better than lossless.
func TestOffDiagonalGeoMean(t *testing.T) {
	res := portability.Run(testConfig(4))
	for _, p := range res.Pairs {
		g := p.OffDiagonalGeoMean()
		if g <= 0 || g > 100 {
			t.Errorf("%s × %s: off-diagonal geomean %v out of (0, 100]", p.Pruner, p.Trainer, g)
		}
		for a := range p.Cells {
			for b := range p.Cells[a] {
				if p.Cells[a][b] <= 0 || p.Cells[a][b] > 100 {
					t.Errorf("%s × %s: cell[%d][%d] = %v out of (0, 100]", p.Pruner, p.Trainer, a, b, p.Cells[a][b])
				}
			}
		}
	}
}
