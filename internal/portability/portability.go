// Package portability answers the follow-up question the paper's device
// range begs: does a kernel library pruned and trained on one device
// transfer to another, or does every deployment target need its own
// artifact?
//
// The engine prices the full tuning dataset on every device through one
// shared worker pool, builds a pruned library per (pruner, device), trains
// every classifier on each, and then cross-deploys: the transfer matrix
// entry (A, B) is the geometric-mean normalized performance — normalized by
// device B's own per-shape optima — of the library pruned and trained on
// device A's data when its decisions are executed on device B. The diagonal
// reproduces the single-device Table-I numbers; the off-diagonal mass is the
// portability gap.
//
// The engine also trains a unified selector: one decision tree over the
// pooled training rows of all devices, with the device's feature vector
// (device.Spec.Features) appended to each shape's (M, K, N). Dispatching
// over the union of the per-device pruned sets, it is the "one artifact for
// every device" deployment the transfer matrix is compared against.
//
// Everything routes through internal/par with scalar seeds and input-order
// result commitment, so every matrix is bit-identical at any worker count.
package portability

import (
	"fmt"
	"sort"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/mat"
	"kernelselect/internal/ml/metrics"
	"kernelselect/internal/ml/tree"
	"kernelselect/internal/par"
	"kernelselect/internal/sim"
	"kernelselect/internal/workload"
)

// Config parameterises a portability run. Zero fields take defaults that
// mirror the single-device experiment pipeline (seed 42, 20% test split,
// N=8 libraries), so the transfer-matrix diagonal lands exactly on the
// Table-I cells.
type Config struct {
	Devices      []device.Spec          // default device.All()
	Seed         uint64                 // default 42
	TestFraction float64                // default 0.2
	N            int                    // per-device library size; default 8
	Pruners      []core.Pruner          // default core.AllPruners()
	Trainers     []core.SelectorTrainer // default core.AllSelectorTrainers()
	Workers      int                    // 0 = GOMAXPROCS

	// HeldOutDevices are specs the unified selector is scored on but never
	// trains on (typically device.Synthetics()). Each one is priced fresh and
	// split with the shared seed; empty skips the held-out evaluation.
	HeldOutDevices []device.Spec
}

func (c Config) withDefaults() Config {
	if len(c.Devices) == 0 {
		c.Devices = device.All()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.TestFraction <= 0 || c.TestFraction >= 1 {
		c.TestFraction = 0.2
	}
	if c.N <= 0 {
		c.N = 8
	}
	if len(c.Pruners) == 0 {
		c.Pruners = core.AllPruners()
	}
	if len(c.Trainers) == 0 {
		c.Trainers = core.AllSelectorTrainers()
	}
	return c
}

// PairMatrix is the transfer matrix of one pruner×classifier pair:
// Cells[a][b] is the % of device b's optimum achieved by the library pruned
// and trained on device a (the paper's Table-I metric, cross-deployed).
type PairMatrix struct {
	Pruner  string
	Trainer string
	Cells   [][]float64
}

// Diagonal returns the self-transfer scores (train and deploy on the same
// device) — the single-device Table-I numbers.
func (p PairMatrix) Diagonal() []float64 {
	d := make([]float64, len(p.Cells))
	for i := range p.Cells {
		d[i] = p.Cells[i][i]
	}
	return d
}

// DiagonalGeoMean summarises the pair's specialist performance: the
// geometric mean of the self-transfer scores.
func (p PairMatrix) DiagonalGeoMean() float64 {
	return metrics.GeoMean(p.Diagonal())
}

// OffDiagonalGeoMean summarises the pair's portability: the geometric mean
// of every cross-device cell. 100 means libraries transfer losslessly.
func (p PairMatrix) OffDiagonalGeoMean() float64 {
	var cells []float64
	for a := range p.Cells {
		for b := range p.Cells[a] {
			if a != b {
				cells = append(cells, p.Cells[a][b])
			}
		}
	}
	if len(cells) == 0 {
		return 0
	}
	return metrics.GeoMean(cells)
}

// Result is a full portability evaluation.
type Result struct {
	Devices []string // spec names, in Config order
	N       int
	Seed    uint64

	// Pairs holds one transfer matrix per pruner×classifier pair, in
	// (pruner-major, trainer-minor) order.
	Pairs []PairMatrix

	// Unified is the device-feature-augmented selector's score on each
	// device, aligned with Devices. UnifiedConfigs is the size of the union
	// config set it dispatches over, and UnifiedFeatures its feature width.
	Unified         []float64
	UnifiedConfigs  int
	UnifiedFeatures int

	// Joint is the transfer-aware alternative, aligned with Devices: prune
	// once on the stacked multi-device training pool to JointConfigs (== N)
	// configurations and train the unified tree on that joint set — the test
	// of whether N configs chosen jointly match the much larger union.
	Joint        []float64
	JointConfigs int

	// HeldOut is the generalization table: the union-dispatching unified
	// selector scored on every device's test split, training devices first,
	// then the held-out synthetic specs it never saw.
	HeldOut []HeldOutScore
}

// HeldOutScore is one row of the held-out generalization table.
type HeldOutScore struct {
	Device    string
	Synthetic bool    // true when the device was not in the training set
	Score     float64 // unified selector, % of the device's own optimum
	Ceiling   float64 // best achievable within the union set, same metric
}

// Headline returns the transfer matrix of the paper's recommended
// deployment pair (decision-tree pruner, DecisionTree classifier), which is
// the matrix the report and heatmap lead with; ok is false if the run did
// not include that pair.
func (r Result) Headline() (PairMatrix, bool) {
	return r.Pair("decision-tree", "DecisionTree")
}

// Pair returns the transfer matrix of one pruner×classifier pair.
func (r Result) Pair(pruner, trainer string) (PairMatrix, bool) {
	for _, p := range r.Pairs {
		if p.Pruner == pruner && p.Trainer == trainer {
			return p, true
		}
	}
	return PairMatrix{}, false
}

// Env is a prepared cross-device environment: per-device priced datasets
// with one shared train/test split (the split is row-aligned across devices
// because every dataset holds the same shapes in the same order).
type Env struct {
	Cfg    Config
	Models []*sim.Model
	Data   []*dataset.PerfDataset
	Train  []*dataset.PerfDataset
	Test   []*dataset.PerfDataset
}

// Setup prices the tuning dataset on every device through one worker pool
// and splits each device's copy with the shared seed.
func Setup(cfg Config) *Env {
	cfg = cfg.withDefaults()
	shapes, _ := workload.DatasetShapes()
	models := make([]*sim.Model, len(cfg.Devices))
	for i, d := range cfg.Devices {
		models[i] = sim.New(d)
	}
	data := dataset.BuildMulti(models, shapes, gemm.AllConfigs(), cfg.Workers)
	e := &Env{Cfg: cfg, Models: models, Data: data}
	e.Train = make([]*dataset.PerfDataset, len(data))
	e.Test = make([]*dataset.PerfDataset, len(data))
	for i, ds := range data {
		e.Train[i], e.Test[i] = ds.Split(cfg.Seed, cfg.TestFraction)
	}
	return e
}

// Run executes the full evaluation: Setup, the pruner×classifier transfer
// grid, and the unified selector.
func Run(cfg Config) Result {
	return Setup(cfg).Run()
}

// Run computes the transfer matrices and unified-selector scores on a
// prepared environment.
func (e *Env) Run() Result {
	cfg := e.Cfg
	nd, np, nt := len(cfg.Devices), len(cfg.Pruners), len(cfg.Trainers)

	res := Result{N: cfg.N, Seed: cfg.Seed}
	for _, d := range cfg.Devices {
		res.Devices = append(res.Devices, d.Name)
	}

	// Stage 1 — prune per (pruner, device). Every cell prunes that device's
	// training split from the scalar seed.
	selections := par.Map(cfg.Workers, np*nd, func(t int) []int {
		p, d := t/nd, t%nd
		return cfg.Pruners[p].Prune(e.Train[d], cfg.N, cfg.Seed)
	})
	selFor := func(p, d int) []int { return selections[p*nd+d] }

	// Stage 2 — train per (pruner, trainer, device) and cross-deploy: each
	// task trains one selector on its home device and scores it on every
	// deployment device's test split. Scoring against device b's Norm matrix
	// keeps the metric "percentage of b's own optimum".
	rows := par.Map(cfg.Workers, np*nt*nd, func(t int) []float64 {
		p := t / (nt * nd)
		tr := (t / nd) % nt
		a := t % nd
		selected := selFor(p, a)
		sel := cfg.Trainers[tr].Train(e.Train[a], selected, cfg.Seed)
		scores := make([]float64, nd)
		for b := 0; b < nd; b++ {
			scores[b] = core.SelectorScore(e.Test[b], selected, sel)
		}
		return scores
	})
	for p := 0; p < np; p++ {
		for tr := 0; tr < nt; tr++ {
			m := PairMatrix{Pruner: cfg.Pruners[p].Name(), Trainer: cfg.Trainers[tr].Name()}
			for a := 0; a < nd; a++ {
				m.Cells = append(m.Cells, rows[(p*nt+tr)*nd+a])
			}
			res.Pairs = append(res.Pairs, m)
		}
	}

	// Stage 3 — the unified selector over the union of the headline pruner's
	// per-device selections (falling back to the first configured pruner if
	// decision-tree pruning is not in the run).
	hp := 0
	for p, pr := range cfg.Pruners {
		if pr.Name() == "decision-tree" {
			hp = p
			break
		}
	}
	union := unionSelections(selections[hp*nd : hp*nd+nd])
	clf := e.trainUnified(union)
	res.UnifiedConfigs = len(union)
	res.UnifiedFeatures = clf.NumFeatures()
	res.Unified = make([]float64, nd)
	for b := 0; b < nd; b++ {
		res.Unified[b] = e.scoreUnified(clf, union, b)
	}

	// Stage 4 — transfer-aware joint pruning: prune once on the stacked
	// multi-device training pool with the headline pruner and train the
	// unified tree on that joint set.
	joint := cfg.Pruners[hp].Prune(dataset.Stack(e.Train), cfg.N, cfg.Seed)
	jclf := e.trainUnified(joint)
	res.JointConfigs = len(joint)
	res.Joint = make([]float64, nd)
	for b := 0; b < nd; b++ {
		res.Joint[b] = e.scoreUnified(jclf, joint, b)
	}

	// Stage 5 — held-out generalization: the union-dispatching selector on
	// every training device's test split plus freshly priced synthetic specs.
	if len(cfg.HeldOutDevices) > 0 {
		res.HeldOut = e.heldOut(clf, union)
	}
	return res
}

// heldOut builds the generalization table for the trained unified selector:
// training devices are scored on their existing test splits; each held-out
// spec is priced over the same shape and configuration universe, split with
// the shared seed, and scored on its test rows — the score on hardware the
// selector has never seen.
func (e *Env) heldOut(clf *tree.Classifier, union []int) []HeldOutScore {
	cfg := e.Cfg
	out := make([]HeldOutScore, 0, len(cfg.Devices)+len(cfg.HeldOutDevices))
	for b, d := range cfg.Devices {
		out = append(out, HeldOutScore{
			Device:  d.Name,
			Score:   e.scoreUnified(clf, union, b),
			Ceiling: core.AchievableScore(e.Test[b], union),
		})
	}
	shapes, configs := e.Data[0].Shapes, e.Data[0].Configs
	for _, d := range cfg.HeldOutDevices {
		ds := dataset.BuildParallel(sim.New(d), shapes, configs, cfg.Workers)
		_, test := ds.Split(cfg.Seed, cfg.TestFraction)
		out = append(out, HeldOutScore{
			Device:    d.Name,
			Synthetic: true,
			Score:     scoreUnifiedOn(clf, union, test, d),
			Ceiling:   core.AchievableScore(test, union),
		})
	}
	return out
}

// BuildUnifiedLibrary packages the unified selector as the deployable
// artifact the follow-up paper promises: the headline (decision-tree) pruner
// runs per device, the union of those selections becomes the library's
// kernel set, and the pooled device-feature-augmented tree becomes its
// selector. The result reports Unified()==true and persists through
// core.SaveUnifiedLibrary; its dispatch agrees exactly with the in-memory
// classifier Run scores, because both are trained from the same scalar seed
// on the same splits.
func (e *Env) BuildUnifiedLibrary() (*core.Library, error) {
	cfg := e.Cfg
	pr := cfg.Pruners[0]
	for _, p := range cfg.Pruners {
		if p.Name() == "decision-tree" {
			pr = p
			break
		}
	}
	sels := par.Map(cfg.Workers, len(cfg.Devices), func(d int) []int {
		return pr.Prune(e.Train[d], cfg.N, cfg.Seed)
	})
	union := unionSelections(sels)
	clf := e.trainUnified(union)
	cfgs := make([]gemm.Config, len(union))
	for i, c := range union {
		cfgs[i] = e.Data[0].Configs[c]
	}
	return core.NewUnifiedLibrary(cfgs, core.NewTreeSelector(clf))
}

// DeviceNames returns the configured device names in order — the provenance
// list SaveUnifiedLibrary records alongside a built unified artifact.
func (e *Env) DeviceNames() []string {
	names := make([]string, len(e.Cfg.Devices))
	for i, d := range e.Cfg.Devices {
		names[i] = d.Name
	}
	return names
}

// unionSelections merges per-device selections into one sorted,
// duplicate-free config index list.
func unionSelections(sels [][]int) []int {
	seen := map[int]bool{}
	var union []int
	for _, sel := range sels {
		for _, c := range sel {
			if !seen[c] {
				seen[c] = true
				union = append(union, c)
			}
		}
	}
	sort.Ints(union)
	return union
}

// unifiedFeatures builds the augmented feature vector of one (shape, device)
// pair: (M, K, N) followed by the device's spec features.
func unifiedFeatures(s gemm.Shape, d device.Spec) []float64 {
	return append(s.Features(), d.Features()...)
}

// trainUnified fits one decision tree on the pooled, device-feature-
// augmented training rows of every device. Labels are the per-(device,
// shape) best configuration within the union set, measured on that device's
// own normalized scores — the direct generalisation of core.TrainLabels.
func (e *Env) trainUnified(union []int) *tree.Classifier {
	width := len(gemm.Shape{}.Features()) + device.NumFeatures
	var total int
	for _, tr := range e.Train {
		total += tr.NumShapes()
	}
	x := mat.NewDense(total, width)
	labels := make([]int, total)
	row := 0
	for d, tr := range e.Train {
		for i := 0; i < tr.NumShapes(); i++ {
			copy(x.Row(row), unifiedFeatures(tr.Shapes[i], e.Cfg.Devices[d]))
			best := 0
			for k, c := range union {
				if tr.Norm.At(i, c) > tr.Norm.At(i, union[best]) {
					best = k
				}
			}
			labels[row] = best
			row++
		}
	}
	return tree.FitClassifier(x, labels, len(union), tree.Options{Seed: e.Cfg.Seed})
}

// scoreUnified evaluates the unified tree on device d's test split: the
// geometric mean over test shapes of the normalized performance of the union
// configuration it picks, as % of device d's optimum.
func (e *Env) scoreUnified(clf *tree.Classifier, union []int, d int) float64 {
	return scoreUnifiedOn(clf, union, e.Test[d], e.Cfg.Devices[d])
}

// scoreUnifiedOn is scoreUnified against an explicit dataset and device spec
// (the held-out path scores devices outside the environment).
func scoreUnifiedOn(clf *tree.Classifier, union []int, ts *dataset.PerfDataset, d device.Spec) float64 {
	scores := make([]float64, ts.NumShapes())
	for i := range scores {
		k := clf.Predict(unifiedFeatures(ts.Shapes[i], d))
		if k < 0 || k >= len(union) {
			panic(fmt.Sprintf("portability: unified selector returned %d for %d configurations", k, len(union)))
		}
		scores[i] = ts.Norm.At(i, union[k])
	}
	return 100 * metrics.GeoMean(scores)
}
