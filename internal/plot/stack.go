package plot

import (
	"fmt"
	"strings"
)

// VStack composes rendered SVG documents into one document, stacked
// vertically and left-aligned. Each input keeps its own coordinate system by
// becoming a nested <svg> element at the running y offset; the result is as
// wide as the widest input. Multi-panel figures (a latency curve over a shed
// curve sharing an X axis) are stacked rather than overlaid so each panel
// keeps an honest, unshared Y scale.
func VStack(svgs ...string) (string, error) {
	if len(svgs) == 0 {
		return "", fmt.Errorf("plot: VStack of no charts")
	}
	type panel struct {
		w, h int
		body string
	}
	panels := make([]panel, len(svgs))
	width, height := 0, 0
	for i, doc := range svgs {
		w, h, err := svgSize(doc)
		if err != nil {
			return "", fmt.Errorf("plot: VStack input %d: %w", i, err)
		}
		panels[i] = panel{w: w, h: h, body: strings.TrimSpace(doc)}
		if w > width {
			width = w
		}
		height += h
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", width, height, surface)
	y := 0
	for _, p := range panels {
		// Re-open the child tag with an explicit y offset; the original
		// attributes (width, height, viewBox, font-family) carry over.
		fmt.Fprintf(&b, `<svg y="%d" %s`+"\n", y, strings.TrimPrefix(p.body, "<svg "))
		y += p.h
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// svgSize extracts the width/height attributes this package's header writes.
func svgSize(doc string) (w, h int, err error) {
	open := strings.Index(doc, "<svg")
	if open < 0 {
		return 0, 0, fmt.Errorf("not an svg document")
	}
	tagEnd := strings.Index(doc[open:], ">")
	if tagEnd < 0 {
		return 0, 0, fmt.Errorf("unterminated svg tag")
	}
	tag := doc[open : open+tagEnd]
	if _, err := fmt.Sscanf(attr(tag, "width"), "%d", &w); err != nil {
		return 0, 0, fmt.Errorf("bad width: %w", err)
	}
	if _, err := fmt.Sscanf(attr(tag, "height"), "%d", &h); err != nil {
		return 0, 0, fmt.Errorf("bad height: %w", err)
	}
	return w, h, nil
}

func attr(tag, name string) string {
	i := strings.Index(tag, name+`="`)
	if i < 0 {
		return ""
	}
	rest := tag[i+len(name)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}
