package plot

import (
	"strings"
	"testing"
)

func TestVStack(t *testing.T) {
	top, err := LineChart{
		Title: "p99", X: []float64{1, 2, 3},
		Series: []Series{{Name: "a", Y: []float64{1, 4, 9}}},
		W:      600, H: 300,
	}.SVG()
	if err != nil {
		t.Fatal(err)
	}
	bottom, err := LineChart{
		Title: "shed", X: []float64{1, 2, 3},
		Series: []Series{{Name: "b", Y: []float64{0, 0.1, 0.9}}},
		W:      760, H: 200,
	}.SVG()
	if err != nil {
		t.Fatal(err)
	}
	stacked, err := VStack(top, bottom)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`width="760" height="500"`, // max width, summed height
		`<svg y="0" `,
		`<svg y="300" `,
		"p99", "shed",
	} {
		if !strings.Contains(stacked, want) {
			t.Errorf("stacked SVG missing %q", want)
		}
	}
	if got := strings.Count(stacked, "</svg>"); got != 3 {
		t.Errorf("%d closing svg tags, want 3 (outer + 2 panels)", got)
	}
}

func TestVStackErrors(t *testing.T) {
	if _, err := VStack(); err == nil {
		t.Error("empty VStack should error")
	}
	if _, err := VStack("<p>not svg</p>"); err == nil {
		t.Error("non-SVG input should error")
	}
}
