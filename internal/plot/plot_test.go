package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func parseSVG(t *testing.T, s string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, s)
		}
	}
}

func lineChart() LineChart {
	return LineChart{
		Title:  "Figure — test",
		XLabel: "N",
		YLabel: "% of optimal",
		X:      []float64{4, 5, 6, 7, 8},
		Series: []Series{
			{Name: "top-n", Y: []float64{89, 91, 95, 96, 97}},
			{Name: "tree", Y: []float64{91, 96, 98, 98, 98}},
		},
		Markers: true,
	}
}

func TestLineChartWellFormed(t *testing.T) {
	svg, err := lineChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, svg)
	for _, want := range []string{"<svg", "Figure — test", "top-n", "tree", "<path", "<circle", "% of optimal"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Legend present for ≥2 series: legend swatches are 10×10 rects.
	if strings.Count(svg, `width="10" height="10"`) != 2 {
		t.Fatal("legend swatches missing")
	}
	// Tooltips on markers.
	if !strings.Contains(svg, "<title>") {
		t.Fatal("no native tooltips")
	}
}

func TestLineChartSingleSeriesNoLegend(t *testing.T) {
	c := lineChart()
	c.Series = c.Series[:1]
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, `width="10" height="10"`) != 0 {
		t.Fatal("single-series chart should not carry a legend box")
	}
}

func TestLineChartErrors(t *testing.T) {
	c := lineChart()
	c.Series[0].Y = c.Series[0].Y[:2]
	if _, err := c.SVG(); err == nil {
		t.Fatal("ragged series accepted")
	}
	c = lineChart()
	c.Series[1].Y[0] = math.NaN()
	if _, err := c.SVG(); err == nil {
		t.Fatal("NaN accepted")
	}
	c = LineChart{}
	if _, err := c.SVG(); err == nil {
		t.Fatal("empty chart accepted")
	}
	c = lineChart()
	for i := 0; i < 9; i++ {
		c.Series = append(c.Series, Series{Name: "x", Y: c.Series[0].Y})
	}
	if _, err := c.SVG(); err == nil {
		t.Fatal("11 series accepted (palette has 8 fixed slots)")
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	c := LineChart{
		Title:  "flat",
		X:      []float64{1, 2, 3},
		Series: []Series{{Name: "s", Y: []float64{5, 5, 5}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN coordinates in output")
	}
}

func TestBarChartWellFormed(t *testing.T) {
	c := BarChart{
		Title:  "wins",
		YLabel: "count",
		Labels: []string{"a", "b", "c"},
		Values: []float64{34, 13, 7},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, svg)
	if strings.Count(svg, "<path") != 3 {
		t.Fatalf("expected 3 bars, got %d paths", strings.Count(svg, "<path"))
	}
	for _, want := range []string{"wins", "<title>a: 34</title>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestBarChartErrors(t *testing.T) {
	if _, err := (BarChart{Labels: []string{"a"}, Values: []float64{1, 2}}).SVG(); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	if _, err := (BarChart{Labels: []string{"a"}, Values: []float64{-1}}).SVG(); err == nil {
		t.Fatal("negative value accepted")
	}
	if _, err := (BarChart{}).SVG(); err == nil {
		t.Fatal("empty chart accepted")
	}
}

func TestBarChartManyBarsStillValid(t *testing.T) {
	// 640 bars (Figure 1 style) must stay well-formed with thin slots.
	labels := make([]string, 640)
	values := make([]float64, 640)
	for i := range labels {
		labels[i] = "c"
		values[i] = float64(i)
	}
	svg, err := (BarChart{Title: "many", Labels: labels, Values: values}).SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, svg)
}

func TestEscaping(t *testing.T) {
	c := LineChart{
		Title:  `<script>"x&y"</script>`,
		X:      []float64{0, 1},
		Series: []Series{{Name: "a<b", Y: []float64{1, 2}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, svg)
	if strings.Contains(svg, "<script>") {
		t.Fatal("unescaped markup in output")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 5)
	if len(ticks) < 4 || ticks[0] != 0 || ticks[len(ticks)-1] != 100 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not ascending: %v", ticks)
		}
	}
}
