package plot

import (
	"strings"
	"testing"
)

func heatMap() HeatMap {
	return HeatMap{
		Title:   "Transfer — test",
		RowAxis: "trained on",
		ColAxis: "deployed on",
		Rows:    []string{"r9nano", "gen9", "mali"},
		Cols:    []string{"r9nano", "gen9", "mali"},
		Cells: [][]float64{
			{98.1, 91.2, 84.3},
			{90.4, 97.5, 88.6},
			{83.7, 87.8, 96.9},
		},
	}
}

func TestHeatMapWellFormed(t *testing.T) {
	svg, err := heatMap().SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, svg)
	for _, want := range []string{"<svg", "Transfer — test", "trained on", "deployed on", "r9nano", "98.1", "<title>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// One rect per cell plus the background.
	if got := strings.Count(svg, "<rect"); got != 10 {
		t.Fatalf("heatmap has %d rects, want 10", got)
	}
}

func TestHeatMapPinnedScale(t *testing.T) {
	c := heatMap()
	c.VMin, c.VMax = 0, 100
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, svg)
}

func TestHeatMapErrors(t *testing.T) {
	cases := map[string]HeatMap{
		"no labels":  {},
		"row count":  {Rows: []string{"a"}, Cols: []string{"x"}, Cells: [][]float64{{1}, {2}}},
		"col count":  {Rows: []string{"a"}, Cols: []string{"x", "y"}, Cells: [][]float64{{1}}},
		"non-finite": {Rows: []string{"a"}, Cols: []string{"x"}, Cells: [][]float64{{nan()}}},
	}
	for name, c := range cases {
		if _, err := c.SVG(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRampColorEndpoints(t *testing.T) {
	if got := rampColor(0); got != "#f2f6fc" {
		t.Fatalf("ramp low = %s", got)
	}
	if got := rampColor(1); got != "#1d4f91" {
		t.Fatalf("ramp high = %s", got)
	}
	// Out-of-range clamps rather than producing invalid hex.
	if got := rampColor(2); got != "#1d4f91" {
		t.Fatalf("ramp clamp = %s", got)
	}
}

func nan() float64 {
	var z float64
	return z / z
}
