package plot

import (
	"fmt"
	"math"
	"strings"
)

// HeatMap is a matrix chart: Cells[r][c] is drawn at row r, column c on a
// sequential color ramp, with the value printed inside each cell. Rows and
// Cols label the axes; RowAxis/ColAxis name them.
type HeatMap struct {
	Title   string
	RowAxis string
	ColAxis string
	Rows    []string
	Cols    []string
	Cells   [][]float64
	// VMin/VMax pin the color ramp; when both are zero the ramp spans the
	// data. Pinning keeps several heatmaps drawn to one scale comparable.
	VMin, VMax float64
	W, H       int // default 760×440
}

// Sequential ramp endpoints: near-surface to the palette's primary blue.
var (
	rampLo = [3]int{0xf2, 0xf6, 0xfc}
	rampHi = [3]int{0x1d, 0x4f, 0x91}
)

func rampColor(t float64) string {
	t = math.Max(0, math.Min(1, t))
	r := int(float64(rampLo[0]) + t*float64(rampHi[0]-rampLo[0]))
	g := int(float64(rampLo[1]) + t*float64(rampHi[1]-rampLo[1]))
	b := int(float64(rampLo[2]) + t*float64(rampHi[2]-rampLo[2]))
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// SVG renders the heatmap.
func (c HeatMap) SVG() (string, error) {
	if len(c.Rows) == 0 || len(c.Cols) == 0 {
		return "", fmt.Errorf("plot: heatmap needs row and column labels")
	}
	if len(c.Cells) != len(c.Rows) {
		return "", fmt.Errorf("plot: heatmap has %d cell rows for %d row labels", len(c.Cells), len(c.Rows))
	}
	for r, row := range c.Cells {
		if len(row) != len(c.Cols) {
			return "", fmt.Errorf("plot: heatmap row %d has %d cells for %d column labels", r, len(row), len(c.Cols))
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return "", fmt.Errorf("plot: heatmap row %d contains a non-finite value", r)
			}
		}
	}

	vmin, vmax := c.VMin, c.VMax
	if vmin == 0 && vmax == 0 {
		vmin, vmax = math.Inf(1), math.Inf(-1)
		for _, row := range c.Cells {
			lo, hi := minMax(row)
			vmin = math.Min(vmin, lo)
			vmax = math.Max(vmax, hi)
		}
	}
	if vmin >= vmax {
		vmin, vmax = vmin-1, vmax+1
	}

	w, h := c.W, c.H
	if w <= 0 {
		w = 760
	}
	if h <= 0 {
		h = 440
	}
	// Wider left gutter than the line charts: row labels are device names.
	const gutL, gutR, gutT, gutB = 150, 36, 72, 48
	plotW := float64(w - gutL - gutR)
	plotH := float64(h - gutT - gutB)
	cellW := plotW / float64(len(c.Cols))
	cellH := plotH / float64(len(c.Rows))

	var b strings.Builder
	header(&b, w, h, c.Title)
	if c.ColAxis != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="12" fill="%s">%s</text>`+"\n",
			float64(gutL)+plotW/2, gutT-28, textSecondary, esc(c.ColAxis))
	}
	if c.RowAxis != "" {
		y := gutT + int(plotH)/2
		fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" font-size="12" fill="%s" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			y, textSecondary, y, esc(c.RowAxis))
	}
	for j, label := range c.Cols {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="11" fill="%s">%s</text>`+"\n",
			float64(gutL)+(float64(j)+0.5)*cellW, gutT-8, textSecondary, esc(label))
	}
	for i, label := range c.Rows {
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" font-size="11" fill="%s">%s</text>`+"\n",
			gutL-8, float64(gutT)+(float64(i)+0.5)*cellH+4, textSecondary, esc(label))
	}
	for i, row := range c.Cells {
		for j, v := range row {
			t := (v - vmin) / (vmax - vmin)
			x := float64(gutL) + float64(j)*cellW
			y := float64(gutT) + float64(i)*cellH
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s" stroke-width="1"><title>%s → %s: %s</title></rect>`+"\n",
				x, y, cellW, cellH, rampColor(t), surface, esc(c.Rows[i]), esc(c.Cols[j]), trimNum(v))
			ink := textPrimary
			if t > 0.55 {
				ink = surface // dark cell, light ink
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="12" fill="%s">%s</text>`+"\n",
				x+cellW/2, y+cellH/2+4, ink, trimNum(v))
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}
