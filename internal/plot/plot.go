// Package plot renders the repository's experiment figures as standalone
// SVG documents using only the standard library.
//
// The visual rules follow a fixed, validated design method: categorical
// series take hues from a fixed-order palette (validated for color-vision
// deficiency separation; worst adjacent ΔE 24.2), marks are thin (2px lines,
// rounded bar tops anchored to the baseline, 2px gaps between bars), grids
// are recessive, text wears text colors (never series colors), every
// multi-series chart carries a legend plus direct end-labels (the relief
// obligation for the low-contrast slots), and every mark carries a <title>
// element so browsers show native tooltips.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Fixed-order categorical palette (light surface). Assigned to series by
// index, never cycled: charts in this repository never exceed five series.
var seriesColors = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
	"#e87ba4", // magenta
	"#eb6834", // orange
}

const (
	surface       = "#fcfcfb"
	textPrimary   = "#0b0b0b"
	textSecondary = "#52514e"
	gridColor     = "#e9e8e4"
	barFill       = "#2a78d6"
)

// Series is one named line of a LineChart.
type Series struct {
	Name string
	Y    []float64
}

// LineChart is a multi-series line chart over a shared X vector.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	W, H   int // default 760×440
	// Markers draws point markers with tooltips (sensible below ~50 points).
	Markers bool
}

// BarChart is a single-series bar chart over categorical labels.
type BarChart struct {
	Title  string
	YLabel string
	Labels []string
	Values []float64
	W, H   int
}

const (
	padL, padR, padT, padB = 64, 150, 44, 48
)

// SVG renders the chart.
func (c LineChart) SVG() (string, error) {
	if len(c.X) == 0 || len(c.Series) == 0 {
		return "", fmt.Errorf("plot: empty line chart")
	}
	if len(c.Series) > len(seriesColors) {
		return "", fmt.Errorf("plot: %d series exceeds the %d fixed palette slots", len(c.Series), len(seriesColors))
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return "", fmt.Errorf("plot: series %q has %d points for %d x values", s.Name, len(s.Y), len(c.X))
		}
		for _, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return "", fmt.Errorf("plot: series %q contains a non-finite value", s.Name)
			}
		}
	}
	w, h := c.W, c.H
	if w <= 0 {
		w = 760
	}
	if h <= 0 {
		h = 440
	}
	plotW := float64(w - padL - padR)
	plotH := float64(h - padT - padB)

	xmin, xmax := minMax(c.X)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		lo, hi := minMax(s.Y)
		ymin = math.Min(ymin, lo)
		ymax = math.Max(ymax, hi)
	}
	if ymin == ymax {
		ymin, ymax = ymin-1, ymax+1
	}
	if xmin == xmax {
		xmin, xmax = xmin-1, xmax+1
	}
	// Breathing room on Y.
	span := ymax - ymin
	ymin -= 0.05 * span
	ymax += 0.05 * span

	px := func(x float64) float64 { return float64(padL) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(padT) + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	header(&b, w, h, c.Title)

	// Recessive horizontal grid + y tick labels.
	for _, ty := range niceTicks(ymin, ymax, 5) {
		y := py(ty)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			padL, y, w-padR, y, gridColor)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" font-size="11" fill="%s">%s</text>`+"\n",
			padL-8, y+4, textSecondary, trimNum(ty))
	}
	// X ticks.
	for _, tx := range niceTicks(xmin, xmax, 6) {
		if tx < xmin || tx > xmax {
			continue
		}
		x := px(tx)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="11" fill="%s">%s</text>`+"\n",
			x, h-padB+18, textSecondary, trimNum(tx))
	}
	axisLabels(&b, w, h, c.XLabel, c.YLabel)

	// Series lines (2px, rounded) and optional markers with native tooltips.
	for si, s := range c.Series {
		color := seriesColors[si]
		var path strings.Builder
		for i, x := range c.X {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(x), py(s.Y[i]))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linecap="round" stroke-linejoin="round"><title>%s</title></path>`+"\n",
			strings.TrimSpace(path.String()), color, esc(s.Name))
		if c.Markers {
			for i, x := range c.X {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"><title>%s: (%s, %s)</title></circle>`+"\n",
					px(x), py(s.Y[i]), color, esc(s.Name), trimNum(x), trimNum(s.Y[i]))
			}
		}
	}

	// Direct end-labels in secondary ink next to colored end dots, with
	// vertical collision avoidance where series converge.
	labelY := make([]float64, len(c.Series))
	order := make([]int, len(c.Series))
	for si, s := range c.Series {
		labelY[si] = py(s.Y[len(s.Y)-1])
		order[si] = si
	}
	for i := 1; i < len(order); i++ { // insertion sort by y
		for j := i; j > 0 && labelY[order[j]] < labelY[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	const minLabelGap = 14
	for k := 1; k < len(order); k++ {
		if d := labelY[order[k]] - labelY[order[k-1]]; d < minLabelGap {
			labelY[order[k]] = labelY[order[k-1]] + minLabelGap
		}
	}
	lastX := px(c.X[len(c.X)-1])
	for si, s := range c.Series {
		endY := py(s.Y[len(s.Y)-1])
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s" stroke="%s" stroke-width="2"/>`+"\n",
			lastX, endY, seriesColors[si], surface)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`+"\n",
			lastX+8, labelY[si]+4, textSecondary, esc(s.Name))
	}

	// Legend (always present for ≥2 series; a single series is named by the
	// title and its end label).
	if len(c.Series) >= 2 {
		legend(&b, w, c.Series)
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// SVG renders the bar chart.
func (c BarChart) SVG() (string, error) {
	if len(c.Labels) == 0 || len(c.Labels) != len(c.Values) {
		return "", fmt.Errorf("plot: bar chart needs equal non-empty labels and values")
	}
	for _, v := range c.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return "", fmt.Errorf("plot: bar values must be finite and non-negative")
		}
	}
	w, h := c.W, c.H
	if w <= 0 {
		w = 760
	}
	if h <= 0 {
		h = 440
	}
	plotW := float64(w - padL - padR)
	plotH := float64(h - padT - padB)
	_, vmax := minMax(c.Values)
	if vmax == 0 {
		vmax = 1
	}

	var b strings.Builder
	header(&b, w, h, c.Title)
	for _, ty := range niceTicks(0, vmax, 5) {
		y := float64(padT) + (1-ty/vmax)*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			padL, y, w-padR, y, gridColor)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" font-size="11" fill="%s">%s</text>`+"\n",
			padL-8, y+4, textSecondary, trimNum(ty))
	}
	axisLabels(&b, w, h, "", c.YLabel)

	n := len(c.Values)
	slot := plotW / float64(n)
	barW := slot - 2 // 2px surface gap between bars
	if barW < 1 {
		barW = slot * 0.8
	}
	baseline := float64(padT) + plotH
	for i, v := range c.Values {
		x := float64(padL) + float64(i)*slot + 1
		barH := v / vmax * plotH
		top := baseline - barH
		r := math.Min(4, math.Min(barW/2, barH)) // rounded data end, flat baseline end
		fmt.Fprintf(&b,
			`<path d="M%.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Z" fill="%s"><title>%s: %s</title></path>`+"\n",
			x, baseline,
			x, top+r,
			x, top, x+r, top,
			x+barW-r, top,
			x+barW, top, x+barW, top+r,
			x+barW, baseline,
			barFill, esc(c.Labels[i]), trimNum(v))
		// Direct value label (selective: only when bars are wide enough).
		if barW >= 18 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="10" fill="%s">%s</text>`+"\n",
				x+barW/2, top-4, textSecondary, trimNum(v))
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end" font-size="10" fill="%s" transform="rotate(-40 %.1f %.1f)">%s</text>`+"\n",
				x+barW/2, baseline+14, textSecondary, x+barW/2, baseline+14, esc(c.Labels[i]))
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func header(b *strings.Builder, w, h int, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, surface)
	fmt.Fprintf(b, `<text x="%d" y="24" font-size="15" font-weight="600" fill="%s">%s</text>`+"\n", padL, textPrimary, esc(title))
}

func axisLabels(b *strings.Builder, w, h int, xlabel, ylabel string) {
	if xlabel != "" {
		fmt.Fprintf(b, `<text x="%d" y="%d" text-anchor="middle" font-size="12" fill="%s">%s</text>`+"\n",
			padL+(w-padL-padR)/2, h-10, textSecondary, esc(xlabel))
	}
	if ylabel != "" {
		y := padT + (h-padT-padB)/2
		fmt.Fprintf(b, `<text x="16" y="%d" text-anchor="middle" font-size="12" fill="%s" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			y, textSecondary, y, esc(ylabel))
	}
}

func legend(b *strings.Builder, w int, series []Series) {
	x := w - padR + 16
	y := padT + 6
	for si, s := range series {
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" rx="2" fill="%s"/>`+"\n",
			x, y-9, seriesColors[si])
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`+"\n",
			x+15, y, textSecondary, esc(s.Name))
		y += 18
	}
}

func niceTicks(lo, hi float64, target int) []float64 {
	span := hi - lo
	if span <= 0 || target < 2 {
		return []float64{lo}
	}
	raw := span / float64(target)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var ticks []float64
	for t := math.Ceil(lo/step) * step; t <= hi+1e-9; t += step {
		ticks = append(ticks, t)
	}
	return ticks
}

func minMax(vs []float64) (lo, hi float64) {
	lo, hi = vs[0], vs[0]
	for _, v := range vs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
