// Package mat implements the dense linear algebra needed by the machine
// learning components in this repository: row-major float64 matrices,
// elementary operations, column statistics, and a symmetric eigensolver.
//
// The package is deliberately small — it covers exactly what PCA, k-means,
// HDBSCAN and the SVM training loops require — but each operation is
// implemented carefully (Kahan-style accumulation is unnecessary at the data
// scales involved; Jacobi rotation handles the eigenproblems robustly).
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a rows×cols zero matrix. It panics on non-positive
// dimensions.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows with empty input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d: got %d want %d", i, len(r), m.cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i as a mutable slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Mul returns a×b. It panics if the inner dimensions disagree.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d × %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns a×x for a column vector x.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// SqDist returns the squared Euclidean distance between two vectors.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: SqDist length mismatch")
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// ColMeans returns the per-column mean of m.
func ColMeans(m *Dense) []float64 {
	means := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		for j, v := range m.Row(i) {
			means[j] += v
		}
	}
	inv := 1 / float64(m.rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// ColStds returns the per-column population standard deviation of m given the
// column means. Columns with zero variance report a standard deviation of 1
// so that scaling by them is a no-op.
func ColStds(m *Dense, means []float64) []float64 {
	stds := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		for j, v := range m.Row(i) {
			d := v - means[j]
			stds[j] += d * d
		}
	}
	inv := 1 / float64(m.rows)
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] * inv)
		if stds[j] == 0 {
			stds[j] = 1
		}
	}
	return stds
}

// CenterCols subtracts the provided column means from every row in place.
func CenterCols(m *Dense, means []float64) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
}

// Gram returns m×mᵀ, the n×n Gram matrix of the rows of m. This is the
// small-side matrix used by the PCA Gram trick when rows ≪ cols.
func Gram(m *Dense) *Dense {
	g := NewDense(m.rows, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.Row(i)
		for j := i; j < m.rows; j++ {
			v := Dot(ri, m.Row(j))
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	return g
}

// EigSym computes the eigendecomposition of the symmetric matrix a using the
// cyclic Jacobi method. It returns eigenvalues in descending order and the
// matching eigenvectors as the columns of the returned matrix. The input is
// not modified.
//
// Jacobi is quadratic per sweep and converges in a handful of sweeps for the
// well-conditioned Gram/covariance matrices produced in this repository.
func EigSym(a *Dense) (values []float64, vectors *Dense) {
	if a.rows != a.cols {
		panic("mat: EigSym requires a square matrix")
	}
	n := a.rows
	w := a.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Skip rotations that cannot improve numerically.
				if math.Abs(apq) < 1e-300 {
					continue
				}
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				for k := 0; k < n; k++ {
					akp := w.At(k, p)
					akq := w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := w.At(p, k)
					aqk := w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue (stable selection sort keeps
	// the vector columns aligned with their values).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if values[j] > values[best] {
				best = j
			}
		}
		if best != i {
			values[i], values[best] = values[best], values[i]
			for k := 0; k < n; k++ {
				vi := v.At(k, i)
				v.Set(k, i, v.At(k, best))
				v.Set(k, best, vi)
			}
		}
	}
	return values, v
}

// Col extracts column j of m as a fresh slice.
func Col(m *Dense, j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}
