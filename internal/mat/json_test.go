package mat

import (
	"encoding/json"
	"testing"
)

func TestDenseJSONRoundTrip(t *testing.T) {
	m := FromRows([][]float64{{1, 2.5, -3}, {4, 0, 6}})
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var got Dense
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 2 || got.Cols() != 3 {
		t.Fatalf("dims %dx%d", got.Rows(), got.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("value mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestDenseJSONInsideStruct(t *testing.T) {
	type model struct {
		W *Dense `json:"w"`
	}
	in := model{W: FromRows([][]float64{{7, 8}})}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out model
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.W.At(0, 1) != 8 {
		t.Fatal("nested round-trip failed")
	}
}

func TestDenseJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"rows":0,"cols":2,"data":[]}`,
		`{"rows":2,"cols":2,"data":[1,2,3]}`,
		`{"rows":-1,"cols":2,"data":[1,2]}`,
		`"nope"`,
	}
	for _, c := range cases {
		var m Dense
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("accepted %s", c)
		}
	}
}
