package mat

import (
	"math"
	"testing"
	"testing/quick"

	"kernelselect/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense(0, 3) did not panic")
		}
	}()
	NewDense(0, 3)
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.Row(0)[0] != 9 {
		t.Fatal("Set/Row do not alias the same storage")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T dims = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul at (%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched dims did not panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got := MulVec(a, []float64{1, 2, 3})
	if got[0] != 7 || got[1] != 6 {
		t.Fatalf("MulVec = %v, want [7 6]", got)
	}
}

func TestDotNormSqDist(t *testing.T) {
	a := []float64{3, 4}
	if Dot(a, a) != 25 {
		t.Fatalf("Dot = %v", Dot(a, a))
	}
	if Norm2(a) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(a))
	}
	if SqDist(a, []float64{0, 0}) != 25 {
		t.Fatal("SqDist mismatch")
	}
}

func TestAxpyScale(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale = %v", y)
	}
}

func TestColMeansStdsCenter(t *testing.T) {
	m := FromRows([][]float64{{1, 10}, {3, 10}})
	means := ColMeans(m)
	if means[0] != 2 || means[1] != 10 {
		t.Fatalf("ColMeans = %v", means)
	}
	stds := ColStds(m, means)
	if stds[0] != 1 {
		t.Fatalf("ColStds[0] = %v, want 1", stds[0])
	}
	if stds[1] != 1 { // zero variance column reports 1
		t.Fatalf("ColStds zero-variance column = %v, want 1", stds[1])
	}
	CenterCols(m, means)
	if m.At(0, 0) != -1 || m.At(1, 0) != 1 || m.At(0, 1) != 0 {
		t.Fatal("CenterCols incorrect")
	}
}

func TestGramMatchesMul(t *testing.T) {
	r := xrand.New(11)
	m := NewDense(5, 8)
	for i := 0; i < 5; i++ {
		for j := 0; j < 8; j++ {
			m.Set(i, j, r.NormFloat64())
		}
	}
	g := Gram(m)
	ref := Mul(m, m.T())
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if !almostEq(g.At(i, j), ref.At(i, j), 1e-12) {
				t.Fatalf("Gram mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestEigSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 5}})
	vals, vecs := EigSym(a)
	if !almostEq(vals[0], 5, 1e-12) || !almostEq(vals[1], 3, 1e-12) {
		t.Fatalf("eigenvalues = %v, want [5 3]", vals)
	}
	// Eigenvector for 5 should be ±e2.
	if !almostEq(math.Abs(vecs.At(1, 0)), 1, 1e-9) {
		t.Fatalf("leading eigenvector = %v", Col(vecs, 0))
	}
}

func TestEigSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := EigSym(a)
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	v := Col(vecs, 0)
	if !almostEq(math.Abs(v[0]), math.Sqrt(0.5), 1e-8) {
		t.Fatalf("eigenvector = %v", v)
	}
}

// TestEigSymReconstruction checks A·v = λ·v and orthonormality of the
// eigenvector basis for random symmetric matrices.
func TestEigSymReconstruction(t *testing.T) {
	r := xrand.New(101)
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(12)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs := EigSym(a)
		for k := 0; k < n; k++ {
			v := Col(vecs, k)
			av := MulVec(a, v)
			for i := 0; i < n; i++ {
				if !almostEq(av[i], vals[k]*v[i], 1e-7) {
					t.Fatalf("trial %d: A·v != λ·v at eig %d (%v vs %v)", trial, k, av[i], vals[k]*v[i])
				}
			}
			if !almostEq(Norm2(v), 1, 1e-8) {
				t.Fatalf("eigenvector %d not unit norm: %v", k, Norm2(v))
			}
			for k2 := k + 1; k2 < n; k2++ {
				if !almostEq(Dot(v, Col(vecs, k2)), 0, 1e-7) {
					t.Fatalf("eigenvectors %d,%d not orthogonal", k, k2)
				}
			}
		}
		// Descending order.
		for k := 1; k < n; k++ {
			if vals[k] > vals[k-1]+1e-10 {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
	}
}

// TestEigSymTraceProperty: sum of eigenvalues equals the trace.
func TestEigSymTraceProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(8)
		a := NewDense(n, n)
		var trace float64
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := 2*r.Float64() - 1
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
			trace += a.At(i, i)
		}
		vals, _ := EigSym(a)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return almostEq(sum, trace, 1e-8)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestColExtracts(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	c := Col(m, 1)
	if c[0] != 2 || c[1] != 4 || c[2] != 6 {
		t.Fatalf("Col = %v", c)
	}
}
