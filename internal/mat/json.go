package mat

import (
	"encoding/json"
	"fmt"
)

// denseJSON is the serialised form of a Dense matrix.
type denseJSON struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// MarshalJSON implements json.Marshaler, enabling fitted models that embed
// matrices (SVM weights, k-NN training sets) to persist to disk.
func (m *Dense) MarshalJSON() ([]byte, error) {
	return json.Marshal(denseJSON{Rows: m.rows, Cols: m.cols, Data: m.data})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Dense) UnmarshalJSON(b []byte) error {
	var d denseJSON
	if err := json.Unmarshal(b, &d); err != nil {
		return err
	}
	if d.Rows <= 0 || d.Cols <= 0 {
		return fmt.Errorf("mat: invalid serialised dimensions %dx%d", d.Rows, d.Cols)
	}
	if len(d.Data) != d.Rows*d.Cols {
		return fmt.Errorf("mat: serialised matrix %dx%d has %d elements", d.Rows, d.Cols, len(d.Data))
	}
	m.rows, m.cols, m.data = d.Rows, d.Cols, d.Data
	return nil
}
