package sim

import (
	"sync"
	"testing"

	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/workload"
)

// TestPriceBatchBitIdentical is the batch path's load-bearing guarantee:
// PriceBatch must reproduce per-config Price bit for bit — every Breakdown
// field, including the jittered total — across the full dataset shape
// universe, all 640 configurations, on every device model. The batch
// implementation hoists shape-independent terms and left prefixes of
// products; this test is what makes that hoisting safe to rely on.
func TestPriceBatchBitIdentical(t *testing.T) {
	shapes, _ := workload.DatasetShapes()
	cfgs := gemm.AllConfigs()
	for _, spec := range []device.Spec{device.R9Nano(), device.IntegratedGen9(), device.EmbeddedMaliG72()} {
		t.Run(spec.Name, func(t *testing.T) {
			// Reference prices through the uncached path so both sides
			// compute rather than copy each other's memoised values.
			ref := &Model{Dev: spec, P: DefaultParams()}
			bp := ref.Batch(cfgs)
			var row []Breakdown
			for _, s := range shapes {
				row = bp.PriceInto(row[:0], s)
				for i, cfg := range cfgs {
					if want := ref.Price(cfg, s); row[i] != want {
						t.Fatalf("%v on %v: batch %+v != price %+v", cfg, s, row[i], want)
					}
				}
			}
		})
	}
}

// TestPriceBatchCacheAccounting pins the satellite invariant: the batch path
// must keep hits+misses == lookups with misses == entries actually computed,
// interoperating with per-config Price against the same memo cache.
func TestPriceBatchCacheAccounting(t *testing.T) {
	m := New(device.R9Nano())
	cfgs := gemm.AllConfigs()[:64]
	s := gemm.Shape{M: 384, K: 256, N: 512}

	// Pre-price a prefix individually: 10 misses.
	for _, cfg := range cfgs[:10] {
		m.Price(cfg, s)
	}
	bp := m.Batch(cfgs)
	bp.PriceInto(nil, s)
	hits, misses, entries := m.CacheStats()
	if hits != 10 || misses != 64 || entries != 64 {
		t.Fatalf("after warm batch: hits=%d misses=%d entries=%d, want 10/64/64", hits, misses, entries)
	}

	// A second batch over the same shape is all hits.
	bp.PriceInto(nil, s)
	hits, misses, entries = m.CacheStats()
	if hits != 74 || misses != 64 || entries != 64 {
		t.Fatalf("after repeat batch: hits=%d misses=%d entries=%d, want 74/64/64", hits, misses, entries)
	}
	if hits+misses != 74+64 {
		t.Fatalf("hits+misses %d != lookups %d", hits+misses, 74+64)
	}
}

// TestPriceBatchConcurrentAccounting races many batch pricings of a small
// key universe and checks the exactly-once computation accounting survives
// the store races (a loser of the double-checked store recounts as a hit).
func TestPriceBatchConcurrentAccounting(t *testing.T) {
	m := New(device.R9Nano())
	cfgs := gemm.AllConfigs()[:32]
	shapes := []gemm.Shape{
		{M: 64, K: 64, N: 64}, {M: 512, K: 128, N: 256}, {M: 1024, K: 1024, N: 64},
	}
	const goroutines = 16
	const rounds = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			bp := m.Batch(cfgs)
			var row []Breakdown
			for r := 0; r < rounds; r++ {
				row = bp.PriceInto(row[:0], shapes[(g+r)%len(shapes)])
			}
		}(g)
	}
	wg.Wait()
	hits, misses, entries := m.CacheStats()
	lookups := uint64(goroutines * rounds * len(cfgs))
	if hits+misses != lookups {
		t.Fatalf("hits %d + misses %d != lookups %d", hits, misses, lookups)
	}
	wantEntries := len(cfgs) * len(shapes)
	if entries != wantEntries {
		t.Fatalf("entries %d, want %d", entries, wantEntries)
	}
	if misses != uint64(wantEntries) {
		t.Fatalf("misses %d, want %d (exactly one computation per distinct pair)", misses, wantEntries)
	}
}

// TestPriceBatchZeroAlloc pins the batch path's allocation behavior in both
// steady states: the pure compute path (no memo cache) and the fully warmed
// memo cache must price a shape with zero allocations per call.
func TestPriceBatchZeroAlloc(t *testing.T) {
	shapes, _ := workload.DatasetShapes()
	shapes = shapes[:8]
	cfgs := gemm.AllConfigs()[:160]

	uncached := &Model{Dev: device.R9Nano(), P: DefaultParams()}
	bp := uncached.Batch(cfgs)
	row := make([]Breakdown, 0, len(cfgs))
	i := 0
	if n := testing.AllocsPerRun(50, func() {
		row = bp.PriceInto(row[:0], shapes[i%len(shapes)])
		i++
	}); n != 0 {
		t.Errorf("uncached batch path allocates %.1f/op, want 0", n)
	}

	warm := New(device.R9Nano())
	wbp := warm.Batch(cfgs)
	for _, s := range shapes {
		row = wbp.PriceInto(row[:0], s)
	}
	i = 0
	if n := testing.AllocsPerRun(50, func() {
		row = wbp.PriceInto(row[:0], shapes[i%len(shapes)])
		i++
	}); n != 0 {
		t.Errorf("warmed batch path allocates %.1f/op, want 0", n)
	}
}

// TestBatchSharesFlattening checks that Batch memoises the struct-of-arrays
// layout per configuration list on cached models, including for callers that
// pass an equal-but-distinct slice.
func TestBatchSharesFlattening(t *testing.T) {
	m := New(device.R9Nano())
	a := gemm.AllConfigs()[:40]
	b := append([]gemm.Config(nil), a...)
	if m.Batch(a).cp != m.Batch(b).cp {
		t.Error("equal config lists built separate flattenings")
	}
	if m.Batch(a[:20]).cp == m.Batch(a).cp {
		t.Error("different config lists shared a flattening")
	}
}

// BenchmarkPriceBatch / BenchmarkPriceLoop compare the batch pass against N
// independent Price calls on the pure compute path (no memo cache, so both
// sides measure pricing, not map lookups). bench-price gates on the batch
// number against a committed baseline.
func BenchmarkPriceBatch(b *testing.B) {
	shapes, _ := workload.DatasetShapes()
	cfgs := gemm.AllConfigs()
	m := &Model{Dev: device.R9Nano(), P: DefaultParams()}
	bp := m.Batch(cfgs)
	row := make([]Breakdown, 0, len(cfgs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row = bp.PriceInto(row[:0], shapes[i%len(shapes)])
	}
}

func BenchmarkPriceLoop(b *testing.B) {
	shapes, _ := workload.DatasetShapes()
	cfgs := gemm.AllConfigs()
	m := &Model{Dev: device.R9Nano(), P: DefaultParams()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := shapes[i%len(shapes)]
		for _, cfg := range cfgs {
			m.Price(cfg, s)
		}
	}
}
