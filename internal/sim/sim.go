// Package sim prices GEMM kernel configurations on GPU-like devices with an
// analytical performance model, standing in for the paper's benchmark runs
// on an AMD R9 Nano.
//
// The paper's selection machinery consumes only a matrix of per-(shape,
// configuration) performance scores; what matters for reproducing its
// results is that the matrix has the right *structure*: a single
// configuration that wins most often, a long tail of dozens of niche
// winners, configurations that are uniformly poor, and mid-pack
// configurations with specialised strengths. Rather than hard-coding such a
// table, this model derives it from first-order GPU mechanics:
//
//   - occupancy: register and local-memory footprints limit resident waves,
//     throttling latency hiding for large-tile kernels;
//   - instruction mix: small tiles spend their issue slots on loads and loop
//     overhead instead of FMAs (low arithmetic intensity);
//   - memory system: tile shape determines global-load coalescing, cache-line
//     exploitation and A/B reload traffic, moderated by L1/L2 capture;
//   - tiling edge waste: shapes that do not divide the group tile burn
//     compute on masked lanes, so small-tile kernels win ragged shapes;
//   - dispatch quantization: small problems cannot fill the device, favouring
//     configurations that produce more, smaller work-groups;
//   - fixed launch overhead, which dominates tiny problems.
//
// A deterministic ±jitter keyed by (device, shape, configuration) stands in
// for run-to-run measurement noise so that near-ties resolve the same way
// every run.
package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/xrand"
)

// Params collects the tunable constants of the model. The defaults were
// calibrated so that the R9 Nano dataset reproduces the qualitative
// statistics reported in the paper (see internal/experiments).
type Params struct {
	// OccNeededCompute is the occupancy (fraction of resident-wave slots)
	// needed to fully hide ALU latency; below it compute throughput scales
	// linearly.
	OccNeededCompute float64
	// OccNeededMemory is the occupancy needed to saturate DRAM bandwidth.
	OccNeededMemory float64
	// LDSOpCost is the issue cost of one local-memory access relative to one
	// FMA (LDS traffic partially dual-issues on GCN).
	LDSOpCost float64
	// OtherOpCost is the issue cost of loop/address overhead instructions.
	OtherOpCost float64
	// SpillPenalty multiplies compute throughput when the per-item register
	// footprint exceeds the register file (scratch spilling).
	SpillPenalty float64
	// L2CaptureFrac is the fraction of L2 usable for cross-work-group reuse
	// of one operand.
	L2CaptureFrac float64
	// MaxGroupsPerCU is the hardware work-group slot limit per CU.
	MaxGroupsPerCU int
	// MemUnderfillFloor is the memory-bandwidth fraction still achievable
	// with a single resident work-group (DRAM is shared, so under-filled
	// dispatches hurt bandwidth less than ALU throughput).
	MemUnderfillFloor float64
	// OverlapFrac is the fraction of the shorter of compute/memory time that
	// does not overlap with the longer (0 = perfect overlap).
	OverlapFrac float64
	// JitterFrac is the amplitude of the deterministic measurement jitter.
	JitterFrac float64
}

// DefaultParams returns the calibrated model constants.
func DefaultParams() Params {
	return Params{
		OccNeededCompute:  0.28,
		OccNeededMemory:   0.12,
		LDSOpCost:         0.55,
		OtherOpCost:       1.0,
		SpillPenalty:      0.35,
		L2CaptureFrac:     0.45,
		MaxGroupsPerCU:    16,
		MemUnderfillFloor: 0.30,
		OverlapFrac:       0.20,
		JitterFrac:        0.04,
	}
}

// Model prices kernel configurations on one device.
//
// Models built with New memoise Price results in a sharded, lock-striped
// cache keyed by (configuration, shape): the pipeline prices the same pairs
// from several places (dataset building, search, autotuning, experiments)
// and pricing is a pure function of (Dev, P, cfg, s), so repeated pricings
// are answered from the cache. All methods are safe for concurrent use.
// Callers that mutate Dev or P after pricing must call ResetCache, or stale
// entries will be served.
type Model struct {
	Dev device.Spec
	P   Params

	cache *priceCache // nil (e.g. on a zero Model) disables memoisation

	// batches memoises the struct-of-arrays parameter flattening batch
	// pricing uses, per configuration list (see batch.go). nil (zero Model)
	// rebuilds the flattening per Batch call.
	batches *batchCache
}

// New returns a model of dev with default parameters and an enabled pricing
// cache. It panics if the spec is invalid, since a model with a broken
// device cannot produce meaningful numbers anywhere downstream.
func New(dev device.Spec) *Model {
	if err := dev.Validate(); err != nil {
		panic(err)
	}
	return &Model{Dev: dev, P: DefaultParams(), cache: newPriceCache(), batches: newBatchCache()}
}

// priceShards is the number of lock stripes of the pricing cache. 64 keeps
// contention negligible at any plausible GOMAXPROCS while costing only 64
// small maps per model.
const priceShards = 64

type priceKey struct {
	cfg gemm.Config
	s   gemm.Shape
}

// shard maps a key to its lock stripe with a cheap multiplicative mix; the
// cache only needs the top bits to spread keys, not a full hash.
func (k priceKey) shard() uint64 {
	h := uint64(k.s.M)<<42 ^ uint64(k.s.K)<<21 ^ uint64(k.s.N)
	h ^= uint64(k.cfg.TileRows)<<36 ^ uint64(k.cfg.TileCols)<<28 ^
		uint64(k.cfg.AccDepth)<<20 ^ uint64(k.cfg.WG.R)<<10 ^ uint64(k.cfg.WG.C)
	h *= 0x9e3779b97f4a7c15
	return h >> 58
}

type priceCache struct {
	shards [priceShards]struct {
		mu sync.RWMutex
		m  map[priceKey]Breakdown
	}
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newPriceCache() *priceCache {
	c := &priceCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[priceKey]Breakdown)
	}
	return c
}

// CacheStats reports the pricing cache's activity: answered-from-cache and
// computed counts, and the number of distinct (configuration, shape) pairs
// held. All zeros for a model without a cache.
func (m *Model) CacheStats() (hits, misses uint64, entries int) {
	if m.cache == nil {
		return 0, 0, 0
	}
	for i := range m.cache.shards {
		sh := &m.cache.shards[i]
		sh.mu.RLock()
		entries += len(sh.m)
		sh.mu.RUnlock()
	}
	return m.cache.hits.Load(), m.cache.misses.Load(), entries
}

// ResetCache drops every memoised pricing (and the hit/miss counters).
// Required after mutating Dev or P on a model that has already priced.
func (m *Model) ResetCache() {
	if m.batches != nil {
		// The flattened batch parameters derive from Dev and P too.
		m.batches.mu.Lock()
		m.batches.m = make(map[uint64][]*cfgParams)
		m.batches.mu.Unlock()
	}
	if m.cache == nil {
		return
	}
	for i := range m.cache.shards {
		sh := &m.cache.shards[i]
		sh.mu.Lock()
		sh.m = make(map[priceKey]Breakdown)
		sh.mu.Unlock()
	}
	m.cache.hits.Store(0)
	m.cache.misses.Store(0)
}

// Breakdown reports every intermediate quantity of one pricing, for tests,
// ablation benchmarks and debugging.
type Breakdown struct {
	// Geometry.
	NumGroups     int // work-groups dispatched
	WavesPerGroup int
	EdgeWaste     float64 // padded/useful flops ratio (≥ 1)

	// Occupancy.
	GroupsPerCU int
	WavesPerCU  int
	Occupancy   float64 // resident waves / device wave slots
	Spilled     bool    // register footprint exceeds the register file

	// Throughput.
	ALUUtil      float64 // FMA issue-slot fraction of the inner loop
	DeviceFill   float64 // dispatch-quantization utilisation (≤ 1)
	ComputeSec   float64
	TrafficBytes float64
	MemorySec    float64

	TotalSec float64
	GFLOPS   float64
}

// TimeSeconds returns the modelled execution time of cfg on shape s.
func (m *Model) TimeSeconds(cfg gemm.Config, s gemm.Shape) float64 {
	return m.Price(cfg, s).TotalSec
}

// GFLOPS returns the modelled achieved GFLOP/s of cfg on shape s.
func (m *Model) GFLOPS(cfg gemm.Config, s gemm.Shape) float64 {
	return m.Price(cfg, s).GFLOPS
}

// Price returns the full model evaluation for one (configuration, shape)
// pair, memoised when the model has a cache (see Model).
func (m *Model) Price(cfg gemm.Config, s gemm.Shape) Breakdown {
	if m.cache == nil {
		return m.price(cfg, s)
	}
	key := priceKey{cfg: cfg, s: s}
	sh := &m.cache.shards[key.shard()]
	sh.mu.RLock()
	b, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		m.cache.hits.Add(1)
		return b
	}
	// Double-checked locking: a concurrent first pricing of the same key may
	// have stored the value between the RUnlock above and the Lock here, so
	// re-check under the write lock. Exactly one caller computes (and counts
	// the miss); every other caller of the same key counts a hit, keeping
	// hits+misses equal to lookups and misses equal to work actually done.
	sh.mu.Lock()
	if b, ok = sh.m[key]; ok {
		sh.mu.Unlock()
		m.cache.hits.Add(1)
		return b
	}
	b = m.price(cfg, s)
	sh.m[key] = b
	sh.mu.Unlock()
	m.cache.misses.Add(1)
	return b
}

func (m *Model) price(cfg gemm.Config, s gemm.Shape) Breakdown {
	d := m.Dev
	p := m.P
	var b Breakdown

	tr, tc, acc := cfg.TileRows, cfg.TileCols, cfg.AccDepth
	bm, bn := cfg.GroupTile()
	groupItems := cfg.WG.R * cfg.WG.C

	groupsM := ceilDiv(s.M, bm)
	groupsN := ceilDiv(s.N, bn)
	b.NumGroups = groupsM * groupsN
	b.WavesPerGroup = ceilDiv(groupItems, d.WaveSize)

	// ----- Occupancy -------------------------------------------------------
	regs := cfg.RegistersPerItem()
	wavesByVGPR := d.VGPRsPerLane / regs
	if wavesByVGPR < 1 {
		wavesByVGPR = 1
		b.Spilled = true
	}
	ldsBytes := cfg.LocalMemoryBytes()
	groupsByLDS := d.LDSBytesPerCU / ldsBytes
	if groupsByLDS < 1 {
		groupsByLDS = 1 // modelled as running, serialised, at a penalty via occupancy
	}
	waveSlots := d.SIMDsPerCU * d.MaxWavesPerSIM
	groupsPerCU := minInt(groupsByLDS, p.MaxGroupsPerCU, ceilDiv(waveSlots, b.WavesPerGroup))
	wavesPerCU := minInt(
		groupsPerCU*b.WavesPerGroup,
		wavesByVGPR*d.SIMDsPerCU,
		waveSlots,
	)
	// Work-group slots cannot exceed what the wave budget admits.
	if wavesPerCU < b.WavesPerGroup {
		wavesPerCU = b.WavesPerGroup // one group always resident
	}
	groupsPerCU = maxInt(1, wavesPerCU/b.WavesPerGroup)
	b.GroupsPerCU = groupsPerCU
	b.WavesPerCU = wavesPerCU
	b.Occupancy = float64(wavesPerCU) / float64(waveSlots)

	// ----- Edge waste ------------------------------------------------------
	usefulFlops := float64(s.FLOPs())
	paddedFlops := 2 * float64(groupsM*bm) * float64(groupsN*bn) * float64(s.K)
	b.EdgeWaste = paddedFlops / usefulFlops

	// ----- ALU utilisation of the inner loop -------------------------------
	// Per work-item, per K-chunk of depth acc:
	//   FMA issue slots:        tr·tc·acc
	//   LDS reads (compute):    acc·(tr+tc)
	//   staging (global→LDS):   (bm+bn)·acc/groupItems loads + as many LDS writes
	//   loop/address overhead:  ~8 per chunk + 2 per kk
	fma := float64(tr * tc * acc)
	ldsReads := float64(acc * (tr + tc))
	staging := float64((bm+bn)*acc) / float64(groupItems)
	overhead := 8.0 + 2.0*float64(acc)
	issue := fma + p.LDSOpCost*(ldsReads+2*staging) + p.OtherOpCost*(overhead+staging)
	b.ALUUtil = fma / issue

	// ----- Dispatch quantization -------------------------------------------
	maxConcurrent := d.ComputeUnits * groupsPerCU
	rounds := ceilDiv(b.NumGroups, maxConcurrent)
	b.DeviceFill = float64(b.NumGroups) / float64(rounds*maxConcurrent)

	// ----- Compute time ----------------------------------------------------
	occFactorC := math.Min(1, b.Occupancy/p.OccNeededCompute)
	throughput := d.PeakGFLOPS() * 1e9 * b.ALUUtil * occFactorC * b.DeviceFill
	if b.Spilled {
		throughput *= p.SpillPenalty
	}
	b.ComputeSec = paddedFlops / throughput

	// ----- Memory traffic ---------------------------------------------------
	line := float64(d.CacheLineBytes)
	bytesA := 4 * float64(s.M) * float64(s.K)
	bytesB := 4 * float64(s.K) * float64(s.N)
	bytesC := 4 * float64(s.M) * float64(s.N)

	// Cross-group operand reuse captured by L2.
	l2 := p.L2CaptureFrac * float64(d.L2Bytes)
	residA := clamp01(l2 / bytesA)
	residB := clamp01(l2 / bytesB)
	reloadsA := 1 + float64(groupsN-1)*(1-residA)
	reloadsB := 1 + float64(groupsM-1)*(1-residB)

	// Coalescing of the staged loads. A-tile rows are read in runs of
	// acc·4 bytes; the unused remainder of each touched line is recovered
	// only if the line survives in L1 until the next K-chunk.
	linesWorking := float64(groupsPerCU) * float64(bm+bn)
	l1resid := clamp01(float64(d.L1BytesPerCU) / (linesWorking * line * 4))
	runA := math.Min(line, float64(acc)*4)
	effA := clamp01(runA/line + (1-runA/line)*l1resid)
	runB := math.Min(line, float64(bn)*4)
	effB := clamp01(runB/line + (1-runB/line)*l1resid)
	// C stores: each group row writes bn·4-byte contiguous spans.
	runC := math.Min(line, float64(bn)*4)
	effC := clamp01(runC / line)

	traffic := bytesA*reloadsA/effA + bytesB*reloadsB/effB + bytesC/effC
	b.TrafficBytes = traffic

	occFactorM := math.Min(1, b.Occupancy/p.OccNeededMemory)
	fillM := p.MemUnderfillFloor + (1-p.MemUnderfillFloor)*b.DeviceFill
	bw := d.DRAMBandwidthGB * 1e9 * occFactorM * fillM
	b.MemorySec = traffic / bw

	// ----- Combine ----------------------------------------------------------
	long := math.Max(b.ComputeSec, b.MemorySec)
	short := math.Min(b.ComputeSec, b.MemorySec)
	t := d.LaunchOverheadUS*1e-6 + long + p.OverlapFrac*short

	// Deterministic measurement jitter.
	h := xrand.Hash64(
		hashString(d.Name),
		uint64(s.M), uint64(s.N), uint64(s.K),
		uint64(tr), uint64(tc), uint64(acc),
		uint64(cfg.WG.R), uint64(cfg.WG.C),
	)
	t *= 1 + p.JitterFrac*xrand.UnitJitter(h)

	b.TotalSec = t
	b.GFLOPS = usefulFlops / t / 1e9
	return b
}

func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func minInt(vs ...int) int {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String renders the breakdown as a multi-line human-readable report.
func (b Breakdown) String() string {
	return fmt.Sprintf(
		"groups=%d (waves/group %d, edge waste %.3f×)\n"+
			"occupancy=%.2f (%d groups/CU, %d waves/CU%s)\n"+
			"alu util=%.3f, device fill=%.3f\n"+
			"compute=%.3gs, memory=%.3gs (traffic %.3g MB)\n"+
			"total=%.3gs → %.1f GFLOP/s",
		b.NumGroups, b.WavesPerGroup, b.EdgeWaste,
		b.Occupancy, b.GroupsPerCU, b.WavesPerCU, spilledNote(b.Spilled),
		b.ALUUtil, b.DeviceFill,
		b.ComputeSec, b.MemorySec, b.TrafficBytes/1e6,
		b.TotalSec, b.GFLOPS)
}

func spilledNote(s bool) string {
	if s {
		return ", REGISTER SPILL"
	}
	return ""
}
