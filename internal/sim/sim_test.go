package sim

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/xrand"
)

func model() *Model { return New(device.R9Nano()) }

func TestNewPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec accepted")
		}
	}()
	New(device.Spec{Name: "broken"})
}

func TestPricePositiveAndFinite(t *testing.T) {
	m := model()
	shapes := []gemm.Shape{
		{M: 1, N: 1, K: 1},
		{M: 1, N: 1000, K: 4096},
		{M: 12544, K: 576, N: 512},
		{M: 3136, K: 64, N: 256},
	}
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		cfgs := gemm.AllConfigs()
		cfg := cfgs[r.Intn(len(cfgs))]
		s := shapes[r.Intn(len(shapes))]
		b := m.Price(cfg, s)
		return b.TotalSec > 0 && b.GFLOPS > 0 &&
			b.ComputeSec > 0 && b.MemorySec > 0 &&
			b.EdgeWaste >= 1 && b.Occupancy > 0 && b.Occupancy <= 1 &&
			b.DeviceFill > 0 && b.DeviceFill <= 1 &&
			b.ALUUtil > 0 && b.ALUUtil < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGFLOPSBelowPeak(t *testing.T) {
	m := model()
	peak := m.Dev.PeakGFLOPS()
	for _, cfg := range gemm.AllConfigs() {
		g := m.GFLOPS(cfg, gemm.Shape{M: 4096, N: 4096, K: 4096})
		if g >= peak {
			t.Fatalf("%v achieves %v ≥ peak %v", cfg, g, peak)
		}
	}
}

func TestDeterministic(t *testing.T) {
	m1, m2 := model(), model()
	cfg := gemm.Config{TileRows: 4, TileCols: 4, AccDepth: 4, WG: gemm.WorkGroup{R: 16, C: 16}}
	s := gemm.Shape{M: 1234, N: 567, K: 89}
	if m1.GFLOPS(cfg, s) != m2.GFLOPS(cfg, s) {
		t.Fatal("model is not deterministic")
	}
}

func TestOccupancyDropsWithTileSize(t *testing.T) {
	// Larger register tiles must reduce occupancy: t8x8a8 uses far more
	// registers than t1x1a1.
	m := model()
	small := m.Price(gemm.Config{TileRows: 1, TileCols: 1, AccDepth: 1, WG: gemm.WorkGroup{R: 16, C: 16}}, gemm.Shape{M: 4096, N: 4096, K: 512})
	big := m.Price(gemm.Config{TileRows: 8, TileCols: 8, AccDepth: 8, WG: gemm.WorkGroup{R: 16, C: 16}}, gemm.Shape{M: 4096, N: 4096, K: 512})
	if big.Occupancy >= small.Occupancy {
		t.Fatalf("occupancy: big tile %v ≥ small tile %v", big.Occupancy, small.Occupancy)
	}
}

func TestALUUtilGrowsWithTileSize(t *testing.T) {
	m := model()
	s := gemm.Shape{M: 4096, N: 4096, K: 512}
	small := m.Price(gemm.Config{TileRows: 1, TileCols: 1, AccDepth: 1, WG: gemm.WorkGroup{R: 16, C: 16}}, s)
	big := m.Price(gemm.Config{TileRows: 8, TileCols: 8, AccDepth: 4, WG: gemm.WorkGroup{R: 16, C: 16}}, s)
	if big.ALUUtil <= small.ALUUtil {
		t.Fatalf("ALU util: big tile %v ≤ small tile %v", big.ALUUtil, small.ALUUtil)
	}
	if small.ALUUtil > 0.2 {
		t.Fatalf("1×1×1 tile ALU util %v implausibly high", small.ALUUtil)
	}
}

func TestEdgeWastePenalisesRaggedShapes(t *testing.T) {
	m := model()
	cfg := gemm.Config{TileRows: 8, TileCols: 8, AccDepth: 4, WG: gemm.WorkGroup{R: 16, C: 16}}
	// Group tile is 128×128. At device-filling sizes, a one-element overhang
	// pads a whole extra tile row and column of work.
	exact := m.Price(cfg, gemm.Shape{M: 2048, N: 2048, K: 512})
	ragged := m.Price(cfg, gemm.Shape{M: 2049, N: 2049, K: 512})
	if exact.EdgeWaste != 1 {
		t.Fatalf("exact-fit edge waste = %v, want 1", exact.EdgeWaste)
	}
	if ragged.EdgeWaste < 1.1 {
		t.Fatalf("ragged edge waste = %v, want ≈1.13", ragged.EdgeWaste)
	}
	if ragged.GFLOPS >= exact.GFLOPS {
		t.Fatalf("ragged shape not slower than exact fit (%v ≥ %v)", ragged.GFLOPS, exact.GFLOPS)
	}
	// At sub-device-filling sizes the small-tile edge waste is extreme.
	tiny := m.Price(cfg, gemm.Shape{M: 129, N: 129, K: 512})
	if tiny.EdgeWaste < 3 {
		t.Fatalf("129×129 edge waste = %v, want ≈3.9", tiny.EdgeWaste)
	}
}

func TestSmallProblemsFavourSmallGroupTiles(t *testing.T) {
	// A 64×64 GEMM cannot fill the device with 128×128 group tiles: a
	// one-group dispatch must lose badly to a config with many small groups.
	m := model()
	s := gemm.Shape{M: 64, N: 64, K: 64}
	big := m.Price(gemm.Config{TileRows: 8, TileCols: 8, AccDepth: 4, WG: gemm.WorkGroup{R: 16, C: 16}}, s)
	small := m.Price(gemm.Config{TileRows: 1, TileCols: 1, AccDepth: 4, WG: gemm.WorkGroup{R: 8, C: 8}}, s)
	if big.NumGroups != 1 {
		t.Fatalf("big-tile dispatch = %d groups, want 1", big.NumGroups)
	}
	if small.NumGroups <= big.NumGroups {
		t.Fatal("small tile did not produce more groups")
	}
}

func TestLaunchOverheadDominatesTinyGEMM(t *testing.T) {
	m := model()
	cfg := gemm.Config{TileRows: 2, TileCols: 2, AccDepth: 2, WG: gemm.WorkGroup{R: 8, C: 8}}
	b := m.Price(cfg, gemm.Shape{M: 4, N: 4, K: 4})
	if b.TotalSec < m.Dev.LaunchOverheadUS*1e-6 {
		t.Fatalf("total %v below launch overhead", b.TotalSec)
	}
	// Overhead should be ≥ 90% of the total for a 4×4×4 problem.
	if m.Dev.LaunchOverheadUS*1e-6/b.TotalSec < 0.9 {
		t.Fatalf("launch overhead fraction %v too small", m.Dev.LaunchOverheadUS*1e-6/b.TotalSec)
	}
}

func TestSpillPenaltyOnSmallRegisterFile(t *testing.T) {
	// The embedded device has a 128-register file; the 8×8×8 kernel needs
	// more and must be flagged as spilled there but not on the R9 Nano.
	cfg := gemm.Config{TileRows: 8, TileCols: 8, AccDepth: 8, WG: gemm.WorkGroup{R: 8, C: 8}}
	s := gemm.Shape{M: 512, N: 512, K: 512}
	nano := New(device.R9Nano()).Price(cfg, s)
	mali := New(device.EmbeddedMaliG72()).Price(cfg, s)
	if nano.Spilled {
		t.Fatal("R9 Nano spilled on 8x8x8")
	}
	if !mali.Spilled {
		t.Fatal("embedded device did not spill on 8x8x8")
	}
}

func TestMemoryBoundLowIntensity(t *testing.T) {
	// K=1 GEMM has arithmetic intensity < 1 flop/byte: memory time must
	// dominate compute time for any config.
	m := model()
	s := gemm.Shape{M: 2048, N: 2048, K: 1}
	for _, cfg := range gemm.AllConfigs()[:40] {
		b := m.Price(cfg, s)
		if b.MemorySec < b.ComputeSec {
			t.Fatalf("%v: memory %v < compute %v on K=1", cfg, b.MemorySec, b.ComputeSec)
		}
	}
}

func TestDeviceRangeChangesWinners(t *testing.T) {
	// The best configuration for a mid-size GEMM should differ between the
	// desktop and embedded device models (the paper's portability claim).
	s := gemm.Shape{M: 3136, K: 64, N: 256}
	best := func(dev device.Spec) string {
		m := New(dev)
		var bestCfg gemm.Config
		bestG := 0.0
		for _, cfg := range gemm.AllConfigs() {
			if g := m.GFLOPS(cfg, s); g > bestG {
				bestG, bestCfg = g, cfg
			}
		}
		return bestCfg.String()
	}
	if best(device.R9Nano()) == best(device.EmbeddedMaliG72()) {
		t.Skip("winners coincide on this shape; acceptable but unexpected")
	}
}

func TestTimeSecondsMatchesPrice(t *testing.T) {
	m := model()
	cfg := gemm.Config{TileRows: 4, TileCols: 2, AccDepth: 4, WG: gemm.WorkGroup{R: 8, C: 16}}
	s := gemm.Shape{M: 100, N: 200, K: 300}
	if m.TimeSeconds(cfg, s) != m.Price(cfg, s).TotalSec {
		t.Fatal("TimeSeconds disagrees with Price")
	}
	if m.GFLOPS(cfg, s) != m.Price(cfg, s).GFLOPS {
		t.Fatal("GFLOPS disagrees with Price")
	}
}

func TestJitterBounded(t *testing.T) {
	m1 := model()
	m2 := model()
	m2.P.JitterFrac = 0
	cfg := gemm.Config{TileRows: 4, TileCols: 4, AccDepth: 4, WG: gemm.WorkGroup{R: 16, C: 16}}
	for _, s := range []gemm.Shape{{M: 77, N: 33, K: 190}, {M: 1000, N: 1000, K: 1000}} {
		j := m1.TimeSeconds(cfg, s) / m2.TimeSeconds(cfg, s)
		if j < 1-m1.P.JitterFrac || j > 1+m1.P.JitterFrac {
			t.Fatalf("jitter ratio %v outside ±%v", j, m1.P.JitterFrac)
		}
	}
}

func TestBreakdownString(t *testing.T) {
	m := model()
	b := m.Price(gemm.Config{TileRows: 4, TileCols: 4, AccDepth: 4, WG: gemm.WorkGroup{R: 16, C: 16}},
		gemm.Shape{M: 512, N: 512, K: 512})
	s := b.String()
	for _, want := range []string{"occupancy=", "alu util=", "GFLOP/s", "edge waste"} {
		if !strings.Contains(s, want) {
			t.Fatalf("breakdown string missing %q:\n%s", want, s)
		}
	}
	// The spill note appears only when spilled.
	spilled := New(device.EmbeddedMaliG72()).Price(
		gemm.Config{TileRows: 8, TileCols: 8, AccDepth: 8, WG: gemm.WorkGroup{R: 8, C: 8}},
		gemm.Shape{M: 512, N: 512, K: 512})
	if !strings.Contains(spilled.String(), "REGISTER SPILL") {
		t.Fatal("spill note missing")
	}
	if strings.Contains(s, "REGISTER SPILL") {
		t.Fatal("spill note on non-spilled config")
	}
}

// TestPriceCacheExactAccounting hammers a small key set from many goroutines
// and checks the cache's books balance exactly: every lookup is either a hit
// or a miss, and misses equal the number of distinct keys — i.e. each key is
// computed once, no matter how many goroutines race on its first pricing.
// Run under -race this also exercises the double-checked locking in Price.
func TestPriceCacheExactAccounting(t *testing.T) {
	m := model()
	var keys []struct {
		cfg gemm.Config
		s   gemm.Shape
	}
	for _, tile := range []int{1, 2, 4, 8} {
		for _, dim := range []int{64, 192} {
			keys = append(keys, struct {
				cfg gemm.Config
				s   gemm.Shape
			}{
				cfg: gemm.Config{TileRows: tile, TileCols: tile, AccDepth: 4, WG: gemm.WorkGroup{R: 8, C: 8}},
				s:   gemm.Shape{M: dim, K: dim, N: dim},
			})
		}
	}

	const goroutines = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			<-start
			for _, k := range keys {
				m.Price(k.cfg, k.s)
			}
		}()
	}
	close(start)
	wg.Wait()

	hits, misses, entries := m.CacheStats()
	lookups := uint64(goroutines * len(keys))
	if hits+misses != lookups {
		t.Errorf("hits %d + misses %d = %d, want %d lookups", hits, misses, hits+misses, lookups)
	}
	if misses != uint64(len(keys)) {
		t.Errorf("misses %d, want exactly %d (one per distinct key)", misses, len(keys))
	}
	if entries != len(keys) {
		t.Errorf("entries %d, want %d", entries, len(keys))
	}
}
