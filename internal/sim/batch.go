package sim

// Batch pricing: one shape, every library configuration, in a single
// cache-friendly pass. The serving miss path and the dataset builder both
// price all N configurations of a fixed list against one shape at a time;
// doing that as N independent Price calls re-derives every shape-independent
// quantity (occupancy, ALU utilisation, coalescing efficiencies, throughput
// prefixes) N times per shape. A BatchPricer flattens those per-configuration
// terms into struct-of-arrays once — the same flattening core.CompileSelector
// applies to selectors — so the per-(shape, config) inner loop touches only
// sequential slices and computes only the genuinely shape-dependent terms.
//
// The batch path is bit-identical to Price: every floating-point expression
// below preserves the evaluation order of Model.price term for term (hoisting
// only left prefixes of products, which does not reassociate them), and the
// jitter hash folds the same words in the same sequence. The determinism test
// pins this across the full dataset on every device model.

import (
	"math"
	"sync"

	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/xrand"
)

// cfgParams is the struct-of-arrays layout of every shape-independent term of
// the pricing model for one configuration list on one (device, params) pair.
// It is immutable after construction and shared by every BatchPricer the
// model hands out for the same list.
type cfgParams struct {
	cfgs []gemm.Config
	all  []int32 // 0..len(cfgs)-1, the "price everything" index list

	// Integer geometry per configuration.
	bm, bn        []int
	wavesPerGroup []int
	groupsPerCU   []int
	wavesPerCU    []int
	maxConcurrent []int

	occupancy []float64
	spilled   []bool
	aluUtil   []float64

	// computeBase is the left prefix PeakGFLOPS·1e9·ALUUtil·occFactorC of the
	// compute-throughput product; the inner loop multiplies by DeviceFill (and
	// the spill penalty after it, as Price does). bwBase is the analogous
	// DRAMBandwidth·1e9·occFactorM prefix of the bandwidth product.
	computeBase []float64
	bwBase      []float64

	effA, effB, effC []float64

	// Jitter-hash identity words, folded after the shape prefix in the same
	// order Price passes them to xrand.Hash64.
	trW, tcW, accW, wgRW, wgCW []uint64

	// Model-level scalars hoisted out of both loops.
	devHash      uint64
	l2           float64 // L2CaptureFrac·L2Bytes
	launch       float64 // LaunchOverheadUS·1e-6
	overlapFrac  float64
	jitterFrac   float64
	spillPenalty float64
	memFloor     float64
	memFloorComp float64 // 1 − MemUnderfillFloor

	// Scratch pools so the cached path allocates nothing per call.
	missPool sync.Pool // *[]int32: indices missing from the memo cache
	rowPool  sync.Pool // *[]Breakdown: PriceRow's breakdown scratch
}

func buildCfgParams(d device.Spec, p Params, cfgs []gemm.Config) *cfgParams {
	n := len(cfgs)
	cp := &cfgParams{
		cfgs:          append([]gemm.Config(nil), cfgs...),
		all:           make([]int32, n),
		bm:            make([]int, n),
		bn:            make([]int, n),
		wavesPerGroup: make([]int, n),
		groupsPerCU:   make([]int, n),
		wavesPerCU:    make([]int, n),
		maxConcurrent: make([]int, n),
		occupancy:     make([]float64, n),
		spilled:       make([]bool, n),
		aluUtil:       make([]float64, n),
		computeBase:   make([]float64, n),
		bwBase:        make([]float64, n),
		effA:          make([]float64, n),
		effB:          make([]float64, n),
		effC:          make([]float64, n),
		trW:           make([]uint64, n),
		tcW:           make([]uint64, n),
		accW:          make([]uint64, n),
		wgRW:          make([]uint64, n),
		wgCW:          make([]uint64, n),

		devHash:      hashString(d.Name),
		l2:           p.L2CaptureFrac * float64(d.L2Bytes),
		launch:       d.LaunchOverheadUS * 1e-6,
		overlapFrac:  p.OverlapFrac,
		jitterFrac:   p.JitterFrac,
		spillPenalty: p.SpillPenalty,
		memFloor:     p.MemUnderfillFloor,
		memFloorComp: 1 - p.MemUnderfillFloor,
	}
	cp.missPool.New = func() any { s := make([]int32, 0, n); return &s }
	cp.rowPool.New = func() any { s := make([]Breakdown, 0, n); return &s }

	waveSlots := d.SIMDsPerCU * d.MaxWavesPerSIM
	line := float64(d.CacheLineBytes)
	for i, cfg := range cp.cfgs {
		cp.all[i] = int32(i)
		tr, tc, acc := cfg.TileRows, cfg.TileCols, cfg.AccDepth
		bm, bn := cfg.GroupTile()
		groupItems := cfg.WG.R * cfg.WG.C
		cp.bm[i], cp.bn[i] = bm, bn
		wavesPerGroup := ceilDiv(groupItems, d.WaveSize)
		cp.wavesPerGroup[i] = wavesPerGroup

		regs := cfg.RegistersPerItem()
		wavesByVGPR := d.VGPRsPerLane / regs
		if wavesByVGPR < 1 {
			wavesByVGPR = 1
			cp.spilled[i] = true
		}
		ldsBytes := cfg.LocalMemoryBytes()
		groupsByLDS := d.LDSBytesPerCU / ldsBytes
		if groupsByLDS < 1 {
			groupsByLDS = 1
		}
		groupsPerCU := minInt(groupsByLDS, p.MaxGroupsPerCU, ceilDiv(waveSlots, wavesPerGroup))
		wavesPerCU := minInt(
			groupsPerCU*wavesPerGroup,
			wavesByVGPR*d.SIMDsPerCU,
			waveSlots,
		)
		if wavesPerCU < wavesPerGroup {
			wavesPerCU = wavesPerGroup
		}
		groupsPerCU = maxInt(1, wavesPerCU/wavesPerGroup)
		cp.groupsPerCU[i] = groupsPerCU
		cp.wavesPerCU[i] = wavesPerCU
		occupancy := float64(wavesPerCU) / float64(waveSlots)
		cp.occupancy[i] = occupancy
		cp.maxConcurrent[i] = d.ComputeUnits * groupsPerCU

		fma := float64(tr * tc * acc)
		ldsReads := float64(acc * (tr + tc))
		staging := float64((bm+bn)*acc) / float64(groupItems)
		overhead := 8.0 + 2.0*float64(acc)
		issue := fma + p.LDSOpCost*(ldsReads+2*staging) + p.OtherOpCost*(overhead+staging)
		cp.aluUtil[i] = fma / issue

		occFactorC := math.Min(1, occupancy/p.OccNeededCompute)
		cp.computeBase[i] = d.PeakGFLOPS() * 1e9 * cp.aluUtil[i] * occFactorC
		occFactorM := math.Min(1, occupancy/p.OccNeededMemory)
		cp.bwBase[i] = d.DRAMBandwidthGB * 1e9 * occFactorM

		linesWorking := float64(groupsPerCU) * float64(bm+bn)
		l1resid := clamp01(float64(d.L1BytesPerCU) / (linesWorking * line * 4))
		runA := math.Min(line, float64(acc)*4)
		cp.effA[i] = clamp01(runA/line + (1-runA/line)*l1resid)
		runB := math.Min(line, float64(bn)*4)
		cp.effB[i] = clamp01(runB/line + (1-runB/line)*l1resid)
		runC := math.Min(line, float64(bn)*4)
		cp.effC[i] = clamp01(runC / line)

		cp.trW[i], cp.tcW[i], cp.accW[i] = uint64(tr), uint64(tc), uint64(acc)
		cp.wgRW[i], cp.wgCW[i] = uint64(cfg.WG.R), uint64(cfg.WG.C)
	}
	return cp
}

// hashSeed matches xrand.Hash64's initial state; foldHash replicates its
// per-word step exactly, so folding the same words through foldHash and
// finishing with one SplitMix64 reproduces Hash64 bit for bit — without the
// variadic slice.
const hashSeed = uint64(0x243f6a8885a308d3)

func foldHash(h, w uint64) uint64 {
	h ^= w
	_ = xrand.SplitMix64(&h)
	return xrand.SplitMix64(&h)
}

// priceInto prices the configurations named by idx against s, writing each
// result at out[i]. The caller guarantees len(out) == len(cp.cfgs).
func (cp *cfgParams) priceInto(out []Breakdown, s gemm.Shape, idx []int32) {
	usefulFlops := float64(s.FLOPs())
	k := float64(s.K)
	bytesA := 4 * float64(s.M) * float64(s.K)
	bytesB := 4 * float64(s.K) * float64(s.N)
	bytesC := 4 * float64(s.M) * float64(s.N)
	residA := clamp01(cp.l2 / bytesA)
	residB := clamp01(cp.l2 / bytesB)
	oneMinusResidA := 1 - residA
	oneMinusResidB := 1 - residB

	// Shape prefix of the jitter hash: device, M, N, K — the word order Price
	// feeds xrand.Hash64.
	hs := foldHash(hashSeed, cp.devHash)
	hs = foldHash(hs, uint64(s.M))
	hs = foldHash(hs, uint64(s.N))
	hs = foldHash(hs, uint64(s.K))

	for _, i32 := range idx {
		i := int(i32)
		b := Breakdown{
			WavesPerGroup: cp.wavesPerGroup[i],
			GroupsPerCU:   cp.groupsPerCU[i],
			WavesPerCU:    cp.wavesPerCU[i],
			Occupancy:     cp.occupancy[i],
			Spilled:       cp.spilled[i],
			ALUUtil:       cp.aluUtil[i],
		}
		groupsM := ceilDiv(s.M, cp.bm[i])
		groupsN := ceilDiv(s.N, cp.bn[i])
		b.NumGroups = groupsM * groupsN
		paddedFlops := 2 * float64(groupsM*cp.bm[i]) * float64(groupsN*cp.bn[i]) * k
		b.EdgeWaste = paddedFlops / usefulFlops

		maxConcurrent := cp.maxConcurrent[i]
		rounds := ceilDiv(b.NumGroups, maxConcurrent)
		b.DeviceFill = float64(b.NumGroups) / float64(rounds*maxConcurrent)

		throughput := cp.computeBase[i] * b.DeviceFill
		if b.Spilled {
			throughput *= cp.spillPenalty
		}
		b.ComputeSec = paddedFlops / throughput

		reloadsA := 1 + float64(groupsN-1)*oneMinusResidA
		reloadsB := 1 + float64(groupsM-1)*oneMinusResidB
		traffic := bytesA*reloadsA/cp.effA[i] + bytesB*reloadsB/cp.effB[i] + bytesC/cp.effC[i]
		b.TrafficBytes = traffic

		fillM := cp.memFloor + cp.memFloorComp*b.DeviceFill
		bw := cp.bwBase[i] * fillM
		b.MemorySec = traffic / bw

		long := math.Max(b.ComputeSec, b.MemorySec)
		short := math.Min(b.ComputeSec, b.MemorySec)
		t := cp.launch + long + cp.overlapFrac*short

		h := foldHash(hs, cp.trW[i])
		h = foldHash(h, cp.tcW[i])
		h = foldHash(h, cp.accW[i])
		h = foldHash(h, cp.wgRW[i])
		h = foldHash(h, cp.wgCW[i])
		t *= 1 + cp.jitterFrac*xrand.UnitJitter(xrand.SplitMix64(&h))

		b.TotalSec = t
		b.GFLOPS = usefulFlops / t / 1e9
		out[i] = b
	}
}

// BatchPricer prices a fixed configuration list against shapes, one shape per
// call, through the model's memo cache. Obtain one from Model.Batch and reuse
// it: the struct-of-arrays flattening is paid once at construction. Safe for
// concurrent use.
type BatchPricer struct {
	m  *Model
	cp *cfgParams
}

// NumConfigs returns the length of the priced configuration list (and of
// every row PriceInto and PriceRow produce).
func (bp *BatchPricer) NumConfigs() int { return len(bp.cp.cfgs) }

// Price returns the full breakdown for every configuration on shape s, in
// configuration-list order.
func (bp *BatchPricer) Price(s gemm.Shape) []Breakdown {
	return bp.PriceInto(nil, s)
}

// PriceInto appends one Breakdown per configuration to dst and returns the
// extended slice. When dst has capacity for the batch the call performs no
// allocations beyond work actually memoised for the first time; pass dst[:0]
// of a reused slice to price in a steady state of zero allocations per call.
//
// Cache accounting matches Price's invariant exactly: every configuration is
// one lookup, answered either as a hit or as a miss, and a miss is counted
// only by the caller that actually stored the computation — a concurrent
// pricing of the same pair that loses the store race recounts itself as a
// hit, keeping hits+misses == lookups and misses == entries computed.
func (bp *BatchPricer) PriceInto(dst []Breakdown, s gemm.Shape) []Breakdown {
	cp := bp.cp
	n := len(cp.cfgs)
	base := len(dst)
	if cap(dst)-base >= n {
		dst = dst[:base+n]
	} else {
		dst = append(dst, make([]Breakdown, n)...)
	}
	out := dst[base:]

	c := bp.m.cache
	if c == nil {
		cp.priceInto(out, s, cp.all)
		return dst
	}

	mp := cp.missPool.Get().(*[]int32)
	miss := (*mp)[:0]
	var hits uint64
	for i := range out {
		key := priceKey{cfg: cp.cfgs[i], s: s}
		sh := &c.shards[key.shard()]
		sh.mu.RLock()
		b, ok := sh.m[key]
		sh.mu.RUnlock()
		if ok {
			out[i] = b
			hits++
		} else {
			miss = append(miss, int32(i))
		}
	}
	if hits > 0 {
		c.hits.Add(hits)
	}
	if len(miss) == 0 {
		*mp = miss
		cp.missPool.Put(mp)
		return dst
	}

	cp.priceInto(out, s, miss)

	// Store under the shard write locks with the same double-checked-locking
	// discipline as Price: a concurrent pricing may have landed first, in
	// which case its entry wins (the values are identical by construction) and
	// this caller's computation recounts as a hit.
	var misses, lateHits uint64
	for _, i := range miss {
		key := priceKey{cfg: cp.cfgs[i], s: s}
		sh := &c.shards[key.shard()]
		sh.mu.Lock()
		if b, ok := sh.m[key]; ok {
			out[i] = b
			lateHits++
		} else {
			sh.m[key] = out[i]
			misses++
		}
		sh.mu.Unlock()
	}
	if lateHits > 0 {
		c.hits.Add(lateHits)
	}
	c.misses.Add(misses)
	*mp = miss[:0]
	cp.missPool.Put(mp)
	return dst
}

// PriceRow prices every configuration on shape s and writes achieved GFLOPS
// into dst, which must have length NumConfigs. It is the dataset builder's
// row primitive: one call fills one (shape × configs) row.
func (bp *BatchPricer) PriceRow(dst []float64, s gemm.Shape) {
	rp := bp.cp.rowPool.Get().(*[]Breakdown)
	row := bp.PriceInto((*rp)[:0], s)
	for i := range dst {
		dst[i] = row[i].GFLOPS
	}
	*rp = row[:0]
	bp.cp.rowPool.Put(rp)
}

// Batch returns a pricer specialised to cfgs. The flattened parameter layout
// is memoised per configuration list on models built with New, so repeated
// Batch calls with the same list (the serving path re-resolves it per
// generation) reuse one layout.
func (m *Model) Batch(cfgs []gemm.Config) *BatchPricer {
	if m.batches == nil {
		return &BatchPricer{m: m, cp: buildCfgParams(m.Dev, m.P, cfgs)}
	}
	return &BatchPricer{m: m, cp: m.batches.get(m.Dev, m.P, cfgs)}
}

// PriceBatch prices every configuration of cfgs on shape s in one pass,
// returning breakdowns in configuration order. Results are bit-identical to
// calling Price per configuration, and the memo cache sees the same lookups.
// Callers pricing many shapes against one list should hold a Batch pricer
// instead of re-passing the list per shape.
func (m *Model) PriceBatch(cfgs []gemm.Config, s gemm.Shape) []Breakdown {
	return m.Batch(cfgs).Price(s)
}

// batchCache memoises cfgParams per configuration list. Lists are compared by
// content (fingerprint, then full equality on collision), so any caller
// passing an equal list shares the flattening. Models built with New carry
// one; a zero Model rebuilds per Batch call.
type batchCache struct {
	mu sync.Mutex
	m  map[uint64][]*cfgParams
}

func newBatchCache() *batchCache {
	return &batchCache{m: make(map[uint64][]*cfgParams)}
}

func (bc *batchCache) get(d device.Spec, p Params, cfgs []gemm.Config) *cfgParams {
	fp := fingerprintConfigs(cfgs)
	bc.mu.Lock()
	for _, cp := range bc.m[fp] {
		if configsEqual(cp.cfgs, cfgs) {
			bc.mu.Unlock()
			return cp
		}
	}
	bc.mu.Unlock()
	// Build outside the lock: construction walks the whole list and two
	// concurrent builders of the same list are rare and harmless.
	cp := buildCfgParams(d, p, cfgs)
	bc.mu.Lock()
	for _, existing := range bc.m[fp] {
		if configsEqual(existing.cfgs, cfgs) {
			bc.mu.Unlock()
			return existing
		}
	}
	bc.m[fp] = append(bc.m[fp], cp)
	bc.mu.Unlock()
	return cp
}

func fingerprintConfigs(cfgs []gemm.Config) uint64 {
	h := foldHash(hashSeed, uint64(len(cfgs)))
	for _, c := range cfgs {
		h = foldHash(h, uint64(c.TileRows)<<40^uint64(c.TileCols)<<28^
			uint64(c.AccDepth)<<16^uint64(c.WG.R)<<8^uint64(c.WG.C))
	}
	return xrand.SplitMix64(&h)
}

func configsEqual(a, b []gemm.Config) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
