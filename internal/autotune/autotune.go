// Package autotune implements the dynamic kernel-tuning strategy the
// paper's introduction attributes to machine-learning frameworks:
// "doing trial runs the first time an input size is used and choosing the
// best for subsequent runs". It is the comparison point for the paper's
// model-based selection — dynamic tuning adapts to any shape but pays a
// trial-run tax on every new one, which dominates in research workloads
// whose shapes keep changing (see examples/autotune).
package autotune

import (
	"fmt"
	"sync"
	"time"

	"kernelselect/internal/gemm"
	"kernelselect/internal/par"
	"kernelselect/internal/sim"
	"kernelselect/internal/sycl"
	"kernelselect/internal/xrand"
)

// Measurer times one kernel configuration on one shape, returning seconds.
type Measurer func(cfg gemm.Config, s gemm.Shape) (float64, error)

// Stats summarises a tuner's activity.
type Stats struct {
	Hits       int     // Choose calls answered from the cache
	Misses     int     // Choose calls that triggered trial runs
	Trials     int     // individual trial measurements
	TrialTime  float64 // seconds spent in trial runs
	CacheSize  int
	Candidates int
}

// Tuner caches the best measured configuration per shape.
// It is safe for concurrent use.
type Tuner struct {
	candidates []gemm.Config
	measure    Measurer
	workers    int

	mu    sync.Mutex
	cache map[gemm.Shape]gemm.Config
	stats Stats
}

// New builds a tuner over the candidate configurations. A library embedding
// this strategy would pass its compiled-in kernel set; passing
// gemm.AllConfigs() models an unconstrained JIT-style tuner.
func New(candidates []gemm.Config, measure Measurer) (*Tuner, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("autotune: no candidate configurations")
	}
	for _, c := range candidates {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	if measure == nil {
		return nil, fmt.Errorf("autotune: nil measurer")
	}
	return &Tuner{
		candidates: append([]gemm.Config(nil), candidates...),
		measure:    measure,
		workers:    1,
		cache:      map[gemm.Shape]gemm.Config{},
	}, nil
}

// SetWorkers bounds concurrent trial measurements on a cache miss
// (values < 1 trial sequentially, the default). Parallel trialling is only
// sound for measurers that stay accurate under concurrency — the analytical
// ModelMeasurer, not a live-timing measurer, whose readings concurrency
// would perturb. The chosen configuration is identical at any setting:
// trial results are reduced in candidate order.
func (t *Tuner) SetWorkers(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 1 {
		n = 1
	}
	t.workers = n
}

// Choose returns the configuration to run for s, trialling all candidates
// the first time the shape is seen.
func (t *Tuner) Choose(s gemm.Shape) (gemm.Config, error) {
	if err := s.Validate(); err != nil {
		return gemm.Config{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if cfg, ok := t.cache[s]; ok {
		t.stats.Hits++
		return cfg, nil
	}
	t.stats.Misses++
	type trial struct {
		sec float64
		err error
	}
	trials := par.Map(t.workers, len(t.candidates), func(i int) trial {
		cfg := t.candidates[i]
		v, err := t.measure(cfg, s)
		switch {
		case err != nil:
			return trial{err: fmt.Errorf("autotune: trialling %v on %v: %w", cfg, s, err)}
		case v <= 0:
			return trial{err: fmt.Errorf("autotune: non-positive measurement %v for %v on %v", v, cfg, s)}
		}
		return trial{sec: v}
	})
	// Reduce in candidate order so the winner (first strict minimum), the
	// stats, and the reported error are identical at any worker count.
	best := t.candidates[0]
	bestT := -1.0
	for i, tr := range trials {
		if tr.err != nil {
			return gemm.Config{}, tr.err
		}
		t.stats.Trials++
		t.stats.TrialTime += tr.sec
		if bestT < 0 || tr.sec < bestT {
			best, bestT = t.candidates[i], tr.sec
		}
	}
	t.cache[s] = best
	return best, nil
}

// Stats returns a snapshot of the tuner's counters.
func (t *Tuner) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats
	st.CacheSize = len(t.cache)
	st.Candidates = len(t.candidates)
	return st
}

// ModelMeasurer prices trials with the analytical device model — the
// simulation path used by the experiments.
func ModelMeasurer(m *sim.Model) Measurer {
	return func(cfg gemm.Config, s gemm.Shape) (float64, error) {
		return m.TimeSeconds(cfg, s), nil
	}
}

// LiveMeasurer times real kernel executions on the host emulator,
// allocating deterministic operand buffers per shape. It is the measurement
// path a deployment on physical hardware would use (with its SYCL queue in
// place of the emulator's).
func LiveMeasurer(q *sycl.Queue) Measurer {
	type buffers struct {
		a, b, c []float64
	}
	var mu sync.Mutex
	cache := map[gemm.Shape]*buffers{}
	return func(cfg gemm.Config, s gemm.Shape) (float64, error) {
		mu.Lock()
		buf, ok := cache[s]
		if !ok {
			r := xrand.New(uint64(s.M)<<40 | uint64(s.K)<<20 | uint64(s.N))
			buf = &buffers{
				a: make([]float64, s.M*s.K),
				b: make([]float64, s.K*s.N),
				c: make([]float64, s.M*s.N),
			}
			for i := range buf.a {
				buf.a[i] = r.Float64()
			}
			for i := range buf.b {
				buf.b[i] = r.Float64()
			}
			cache[s] = buf
		}
		mu.Unlock()
		start := time.Now()
		if err := gemm.Multiply(q, cfg, buf.a, buf.b, buf.c, s); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
}
