package autotune

import (
	"errors"
	"sync"
	"testing"

	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
	"kernelselect/internal/sycl"
)

func candidates() []gemm.Config { return gemm.AllConfigs()[:8] }

func TestNewValidation(t *testing.T) {
	meas := func(gemm.Config, gemm.Shape) (float64, error) { return 1, nil }
	if _, err := New(nil, meas); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := New([]gemm.Config{{TileRows: 3}}, meas); err == nil {
		t.Fatal("invalid candidate accepted")
	}
	if _, err := New(candidates(), nil); err == nil {
		t.Fatal("nil measurer accepted")
	}
}

func TestChoosePicksFastestAndCaches(t *testing.T) {
	cands := candidates()
	calls := 0
	// Deterministic measurer: candidate 3 is fastest.
	meas := func(cfg gemm.Config, s gemm.Shape) (float64, error) {
		calls++
		for i, c := range cands {
			if c == cfg {
				if i == 3 {
					return 0.5, nil
				}
				return 1 + float64(i), nil
			}
		}
		t.Fatal("unknown candidate")
		return 0, nil
	}
	tu, err := New(cands, meas)
	if err != nil {
		t.Fatal(err)
	}
	s := gemm.Shape{M: 10, N: 10, K: 10}
	got, err := tu.Choose(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != cands[3] {
		t.Fatalf("chose %v, want fastest %v", got, cands[3])
	}
	if calls != len(cands) {
		t.Fatalf("%d trials on first sight, want %d", calls, len(cands))
	}
	// Second call: cache hit, no new trials.
	if _, err := tu.Choose(s); err != nil {
		t.Fatal(err)
	}
	if calls != len(cands) {
		t.Fatalf("cache miss on repeat shape (%d calls)", calls)
	}
	st := tu.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Trials != len(cands) || st.CacheSize != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestChoosePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	tu, _ := New(candidates(), func(gemm.Config, gemm.Shape) (float64, error) { return 0, boom })
	if _, err := tu.Choose(gemm.Shape{M: 1, N: 1, K: 1}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	tu2, _ := New(candidates(), func(gemm.Config, gemm.Shape) (float64, error) { return -1, nil })
	if _, err := tu2.Choose(gemm.Shape{M: 1, N: 1, K: 1}); err == nil {
		t.Fatal("non-positive measurement accepted")
	}
	tu3, _ := New(candidates(), func(gemm.Config, gemm.Shape) (float64, error) { return 1, nil })
	if _, err := tu3.Choose(gemm.Shape{M: 0, N: 1, K: 1}); err == nil {
		t.Fatal("invalid shape accepted")
	}
}

func TestModelMeasurerAgreesWithModel(t *testing.T) {
	m := sim.New(device.R9Nano())
	tu, _ := New(gemm.AllConfigs()[:40], ModelMeasurer(m))
	s := gemm.Shape{M: 3136, K: 576, N: 64}
	got, err := tu.Choose(s)
	if err != nil {
		t.Fatal(err)
	}
	// Independently find the model's best among the same candidates.
	best := gemm.AllConfigs()[0]
	bestT := -1.0
	for _, cfg := range gemm.AllConfigs()[:40] {
		if sec := m.TimeSeconds(cfg, s); bestT < 0 || sec < bestT {
			best, bestT = cfg, sec
		}
	}
	if got != best {
		t.Fatalf("tuner chose %v, model best is %v", got, best)
	}
}

func TestLiveMeasurerRuns(t *testing.T) {
	q := sycl.NewQueue(sycl.HostDevice())
	meas := LiveMeasurer(q)
	sec, err := meas(gemm.Config{TileRows: 2, TileCols: 2, AccDepth: 2, WG: gemm.WorkGroup{R: 8, C: 8}},
		gemm.Shape{M: 16, N: 16, K: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Fatalf("live measurement %v", sec)
	}
}

func TestConcurrentChoose(t *testing.T) {
	m := sim.New(device.R9Nano())
	tu, _ := New(candidates(), ModelMeasurer(m))
	shapes := []gemm.Shape{
		{M: 64, N: 64, K: 64}, {M: 128, N: 64, K: 32}, {M: 32, N: 256, K: 16},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := tu.Choose(shapes[(w+i)%len(shapes)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := tu.Stats()
	if st.CacheSize != len(shapes) {
		t.Fatalf("cache size %d, want %d", st.CacheSize, len(shapes))
	}
	if st.Hits+st.Misses != 8*50 {
		t.Fatalf("hits+misses = %d", st.Hits+st.Misses)
	}
}
