package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
)

var reloadShapes = []gemm.Shape{
	{M: 1, K: 4096, N: 1000}, {M: 16, K: 4096, N: 1000}, {M: 3136, K: 64, N: 64},
	{M: 784, K: 1152, N: 256}, {M: 196, K: 2304, N: 512}, {M: 12544, K: 27, N: 32},
	{M: 49, K: 960, N: 160}, {M: 3136, K: 32, N: 192}, {M: 100352, K: 3, N: 64},
	{M: 784, K: 24, N: 144}, {M: 196, K: 512, N: 512}, {M: 64, K: 25088, N: 4096},
}

// buildLib trains a size-n library over the reload test shapes.
func buildLib(t testing.TB, model *sim.Model, n int) *core.Library {
	t.Helper()
	ds := dataset.Build(model, reloadShapes, gemm.AllConfigs()[:120])
	return core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, n, 42)
}

// A reload must swap the library atomically: the generation bumps, the new
// library answers, and the old generation's cache cannot leak entries into
// the new epoch.
func TestReloadSwapsLibraryAndCache(t *testing.T) {
	model := sim.New(device.R9Nano())
	libA := buildLib(t, model, 6)
	libB := buildLib(t, model, 4)
	srv := New(libA, model, Options{FallbackShapes: reloadShapes})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	shape := gemm.Shape{M: 784, K: 1152, N: 256}
	req := shapeRequest{M: shape.M, K: shape.K, N: shape.N}
	first := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", req))
	gen1, err := srv.Generation("")
	if err != nil {
		t.Fatal(err)
	}
	if first.Generation != gen1 {
		t.Fatalf("decision stamped generation %d, server at %d", first.Generation, gen1)
	}
	// Warm the cache so stale-entry leakage would be observable.
	if d := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", req)); !d.Cached {
		t.Fatal("warm request missed the cache")
	}

	before := metricsSnapshot(t, ts)
	gen2, err := srv.Reload("", libB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen2 <= gen1 {
		t.Fatalf("reload generation %d not after %d", gen2, gen1)
	}
	if srv.Library() != libB {
		t.Fatal("Library() still reports the old library")
	}

	d := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", req))
	if d.Generation != gen2 {
		t.Fatalf("post-reload decision from generation %d, want %d", d.Generation, gen2)
	}
	if d.Cached {
		t.Fatal("post-reload decision served from the old generation's cache")
	}
	if d.Config != libB.Configs[d.Index].String() {
		t.Fatalf("post-reload config %q not at index %d of the new library", d.Config, d.Index)
	}
	if want := libB.Choose(shape); d.Config != want.String() {
		t.Fatalf("post-reload chose %s, offline %s", d.Config, want)
	}

	// The configs endpoint reports the new generation.
	resp, err := http.Get(ts.URL + "/v1/configs")
	if err != nil {
		t.Fatal(err)
	}
	c := decodeResp[configsResponse](t, resp)
	if c.Generation != gen2 || c.Count != len(libB.Configs) {
		t.Fatalf("configs report generation %d count %d, want %d/%d", c.Generation, c.Count, gen2, len(libB.Configs))
	}

	// Cumulative counters survive the swap: the displaced generation's cache
	// traffic folds into the backend totals instead of resetting to zero.
	after := metricsSnapshot(t, ts)
	assertCountersMonotonic(t, before, after)
	if hits := after[`selectd_cache_hits_total{device="amd-r9-nano"}`]; hits < 1 {
		t.Errorf("cache hits reset across the reload: %v, want >= 1", hits)
	}
	if misses := after[`selectd_cache_misses_total{device="amd-r9-nano"}`]; misses < 2 {
		t.Errorf("cache misses %v after a pre-swap and a post-swap miss, want >= 2", misses)
	}
}

func TestReloadValidation(t *testing.T) {
	model := sim.New(device.R9Nano())
	srv := New(buildLib(t, model, 4), model, Options{FallbackShapes: reloadShapes})
	if _, err := srv.Reload("", nil, nil); err == nil {
		t.Error("nil library accepted")
	}
	if _, err := srv.Reload("tpu-v9", buildLib(t, model, 4), nil); err == nil {
		t.Error("unknown device accepted")
	}
}

// POST /v1/reload pulls a fresh library from the installed source; without a
// source it reports 503, and an unknown device 400.
func TestReloadEndpoint(t *testing.T) {
	model := sim.New(device.R9Nano())
	libA := buildLib(t, model, 6)
	libB := buildLib(t, model, 4)
	srv := New(libA, model, Options{FallbackShapes: reloadShapes})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/reload", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post(`{}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no source: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	calls := 0
	srv.SetReloadSource(func(dev string) (*core.Library, *sim.Model, error) {
		calls++
		if dev != model.Dev.Name {
			return nil, nil, fmt.Errorf("unexpected device %q", dev)
		}
		return libB, nil, nil
	})

	resp = post(``) // empty body = default device
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d", resp.StatusCode)
	}
	rr := decodeResp[reloadResponse](t, resp)
	if rr.Device != model.Dev.Name || rr.Configs != len(libB.Configs) || calls != 1 {
		t.Fatalf("reload response %+v (source calls %d)", rr, calls)
	}
	if srv.Library() != libB {
		t.Fatal("endpoint reload did not swap the library")
	}

	resp = post(`{"device":"tpu-v9"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown device: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	srv.SetReloadSource(func(string) (*core.Library, *sim.Model, error) {
		return nil, nil, fmt.Errorf("artifact store down")
	})
	resp = post(`{}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing source: status %d, want 500", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestReloadUnderLoad is the acceptance check for atomic visibility: while
// client goroutines hammer /v1/select, the main goroutine reloads between
// two libraries of different sizes. Zero requests may drop, and every
// response's config must belong to the library of the generation stamped on
// it — a response mixing epochs (old index against new library, stale cache
// entry, torn swap) fails the audit. Budget tokens must be conserved. Run
// under -race this doubles as the concurrent Reload-vs-decide race test.
func TestReloadUnderLoad(t *testing.T) {
	model := sim.New(device.R9Nano())
	libs := map[uint64]*core.Library{}
	libA := buildLib(t, model, 6)
	libB := buildLib(t, model, 4)
	srv := New(libA, model, Options{FallbackShapes: reloadShapes, MaxInFlight: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	gen0, _ := srv.Generation("")
	libs[gen0] = libA

	type outcome struct {
		status int
		dec    Decision
	}
	const goroutines = 8
	const perG = 40
	var wg sync.WaitGroup
	outcomes := make([][]outcome, goroutines)
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s := reloadShapes[(g+i)%len(reloadShapes)]
				raw, _ := json.Marshal(shapeRequest{M: s.M, K: s.K, N: s.N})
				resp, err := http.Post(ts.URL+"/v1/select", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d request %d: %w", g, i, err)
					return
				}
				var o outcome
				o.status = resp.StatusCode
				err = json.NewDecoder(resp.Body).Decode(&o.dec)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("goroutine %d request %d decode: %w", g, i, err)
					return
				}
				outcomes[g] = append(outcomes[g], o)
			}
		}(g)
	}

	// Reload between the two libraries while the load runs.
	for i := 0; i < 12; i++ {
		lib := libA
		if i%2 == 0 {
			lib = libB
		}
		id, err := srv.Reload("", lib, nil)
		if err != nil {
			t.Fatal(err)
		}
		libs[id] = lib
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// One more swap after the storm quiesces: every cumulative series on the
	// page must keep growing, never reset with the generation.
	snap1 := metricsSnapshot(t, ts)
	if _, err := srv.Reload("", libA, nil); err != nil {
		t.Fatal(err)
	}
	assertCountersMonotonic(t, snap1, metricsSnapshot(t, ts))

	total := 0
	for g := range outcomes {
		for _, o := range outcomes[g] {
			total++
			if o.status != http.StatusOK {
				t.Fatalf("dropped request: status %d", o.status)
			}
			lib, ok := libs[o.dec.Generation]
			if !ok {
				t.Fatalf("response from unknown generation %d", o.dec.Generation)
			}
			if o.dec.Index < 0 || o.dec.Index >= len(lib.Configs) {
				t.Fatalf("index %d out of range for generation %d (%d configs)",
					o.dec.Index, o.dec.Generation, len(lib.Configs))
			}
			if o.dec.Config != lib.Configs[o.dec.Index].String() {
				t.Fatalf("generation %d response config %q does not match its library",
					o.dec.Generation, o.dec.Config)
			}
		}
	}
	if total != goroutines*perG {
		t.Fatalf("%d responses for %d requests", total, goroutines*perG)
	}

	// Budget tokens conserved: nothing lost or double-released.
	be := srv.backends[0]
	if free := be.budgetFree(); free != be.budgetCap {
		t.Fatalf("budget free %d, cap %d after quiesce", free, be.budgetCap)
	}
	if inflight := be.inflight.Load(); inflight != 0 {
		t.Fatalf("inflight gauge %d after quiesce", inflight)
	}
}

// Overlapping POST /v1/reload requests must coalesce into one flight: the
// source runs once, one generation is built, and every caller answers with
// that same generation. Before single-flight, a reload storm (the cluster
// router's peer-warm cutover, a misfiring deploy hook) raced to build N
// generations and discarded N-1 of them, wiping the warm cache each time.
func TestReloadSingleFlight(t *testing.T) {
	model := sim.New(device.R9Nano())
	libA := buildLib(t, model, 6)
	libB := buildLib(t, model, 4)
	srv := New(libA, model, Options{FallbackShapes: reloadShapes})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var calls atomic.Int32
	gate := make(chan struct{})
	srv.SetReloadSource(func(string) (*core.Library, *sim.Model, error) {
		calls.Add(1)
		<-gate
		return libB, nil, nil
	})

	const storm = 6
	results := make(chan reloadResponse, storm)
	errs := make(chan error, storm)
	for i := 0; i < storm; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/reload", "application/json", bytes.NewReader([]byte(`{}`)))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("reload status %d", resp.StatusCode)
				return
			}
			var rr reloadResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				errs <- err
				return
			}
			results <- rr
		}()
	}

	// Hold the source until every request has joined the flight, so the
	// coalescing window provably covers the whole storm.
	be := srv.backends[0]
	deadline := time.Now().Add(10 * time.Second)
	for {
		var joined int32
		be.reloadMu.Lock()
		if be.reloadCall != nil {
			joined = be.reloadCall.joined.Load()
		}
		be.reloadMu.Unlock()
		if joined == storm {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests joined the reload flight", joined, storm)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)

	gens := map[uint64]bool{}
	for i := 0; i < storm; i++ {
		select {
		case rr := <-results:
			gens[rr.Generation] = true
			if rr.Configs != len(libB.Configs) {
				t.Errorf("reload response %+v, want %d configs", rr, len(libB.Configs))
			}
		case err := <-errs:
			t.Fatal(err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("reload source ran %d times for %d concurrent requests, want 1", got, storm)
	}
	if len(gens) != 1 {
		t.Errorf("coalesced reloads answered %d distinct generations: %v", len(gens), gens)
	}

	// The door reopens once the flight lands: a later reload runs the source
	// again and advances the generation.
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	rr := decodeResp[reloadResponse](t, resp)
	if got := calls.Load(); got != 2 {
		t.Errorf("post-storm reload source calls %d, want 2", got)
	}
	for g := range gens {
		if rr.Generation <= g {
			t.Errorf("post-storm generation %d not after coalesced generation %d", rr.Generation, g)
		}
	}
}
