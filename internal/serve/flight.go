package serve

import (
	"context"
	"sync"

	"kernelselect/internal/gemm"
)

// flightGroup coalesces concurrent cache misses for the same shape into one
// pricing pass (the classic single-flight pattern, scoped per generation so
// a reload can never hand a follower a decision from a different library
// epoch). Under a thundering herd of identical shapes — the steady state of
// NN serving the moment a new layer shape appears — one leader prices the
// library while every follower parks on a channel, so the backend spends one
// compute budget instead of N.
type flightGroup struct {
	mu sync.Mutex
	m  map[gemm.Shape]*flightCall
}

// flightCall is one in-flight pricing pass. done closes after d/err are
// written; the fields are immutable from that point.
type flightCall struct {
	done chan struct{}
	d    Decision
	err  error
}

// join registers interest in a shape's pricing pass. The first caller becomes
// the leader (leader=true) and must call finish exactly once; later callers
// get the same call to wait on.
func (g *flightGroup) join(s gemm.Shape) (c *flightCall, leader bool) {
	g.mu.Lock()
	if c, ok := g.m[s]; ok {
		g.mu.Unlock()
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	if g.m == nil {
		g.m = make(map[gemm.Shape]*flightCall)
	}
	g.m[s] = c
	g.mu.Unlock()
	return c, true
}

// finish publishes the leader's result and releases the shape: the call is
// removed from the map before done closes, so a caller that joins after
// finish starts a fresh pass instead of reading a stale one.
func (g *flightGroup) finish(s gemm.Shape, c *flightCall, d Decision, err error) {
	c.d, c.err = d, err
	g.mu.Lock()
	delete(g.m, s)
	g.mu.Unlock()
	close(c.done)
}

// decideMiss answers a cache miss through the generation's single-flight
// group. The leader runs the full ladder (breaker, deadline estimate,
// pricing) and alone feeds the breaker, EWMA and cache; followers wait for
// its result, counting themselves as coalesced. A follower whose leader died
// to the leader's own context retries with a fresh pass as long as its own
// context is alive — one request's tight deadline must not void everyone
// else's answer.
func (s *Server) decideMiss(ctx context.Context, be *backend, gen *generation, shape gemm.Shape) (Decision, error) {
	for {
		c, leader := gen.flight.join(shape)
		if leader {
			d, err := s.leaderCompute(ctx, be, gen, shape)
			gen.flight.finish(shape, c, d, err)
			return d, err
		}
		be.coalesced.Add(1)
		select {
		case <-ctx.Done():
			return Decision{}, ctx.Err()
		case <-c.done:
		}
		if c.err != nil {
			if ctx.Err() != nil {
				return Decision{}, ctx.Err()
			}
			continue
		}
		d := c.d
		if d.Degraded {
			// The leader counted its own degraded answer; each follower
			// served the same fallback counts too, keeping
			// selectd_degraded_total = degraded responses.
			for r, name := range reasonNames {
				if name == d.DegradedReason {
					be.degraded[r].Add(1)
					break
				}
			}
		}
		return d, nil
	}
}
