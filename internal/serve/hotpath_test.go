package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
	"kernelselect/internal/workload"
)

// reuseWriter is a ResponseWriter with no per-request allocations of its own,
// so AllocsPerRun isolates the handler's allocations.
type reuseWriter struct {
	h    http.Header
	code int
	buf  []byte
}

func newReuseWriter() *reuseWriter {
	return &reuseWriter{h: make(http.Header, 4), buf: make([]byte, 0, 4096)}
}

func (w *reuseWriter) Header() http.Header  { return w.h }
func (w *reuseWriter) WriteHeader(code int) { w.code = code }
func (w *reuseWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *reuseWriter) reset() {
	w.code = 0
	w.buf = w.buf[:0]
}

// selectRunner drives the instrumented /v1/select handler with a reusable
// request and writer — the serving hot path minus the TCP socket.
type selectRunner struct {
	handler http.HandlerFunc
	w       *reuseWriter
	r       *http.Request
	body    *bytes.Reader
	payload []byte
}

func newSelectRunner(s *Server, payload []byte) *selectRunner {
	br := bytes.NewReader(payload)
	r := httptest.NewRequest(http.MethodPost, "/v1/select", nil)
	r.Body = io.NopCloser(br)
	r.ContentLength = int64(len(payload))
	return &selectRunner{
		handler: s.instrument("select", s.handleSelect),
		w:       newReuseWriter(),
		r:       r,
		body:    br,
		payload: payload,
	}
}

func (sr *selectRunner) run() {
	sr.body.Reset(sr.payload)
	sr.w.reset()
	sr.handler(sr.w, sr.r)
}

// TestSelectCacheHitAllocations pins the tentpole guarantee: a steady-state
// /v1/select request — well-formed body, cached shape — does not allocate in
// the handler at all. A regression here is a performance bug even though no
// behaviour changes, so it fails the build. The closed-loop variant runs with
// every decision sampled for regret measurement and appended to the drift
// window: the accounting path must stay allocation-free too.
func TestSelectCacheHitAllocations(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"baseline", Options{FallbackShapes: reloadShapes}},
		{"closed-loop-sampled", Options{
			FallbackShapes: reloadShapes,
			RegretSample:   1,
			RegretUniverse: gemm.AllConfigs()[:120],
			WindowSize:     4096,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model := sim.New(device.R9Nano())
			srv := New(buildLib(t, model, 6), model, tc.opts)
			defer srv.Close()
			payload := []byte(`{"m":784,"k":1152,"n":256}`)
			sr := newSelectRunner(srv, payload)

			sr.run() // miss: price and fill the cache
			if sr.w.code != http.StatusOK {
				t.Fatalf("warm request: status %d, body %s", sr.w.code, sr.w.buf)
			}
			sr.run()
			if !bytes.Contains(sr.w.buf, []byte(`"cached":true`)) {
				t.Fatalf("second request not served from cache: %s", sr.w.buf)
			}
			if allocs := testing.AllocsPerRun(500, sr.run); allocs != 0 {
				t.Errorf("cache-hit select allocates %.1f objects per request, want 0", allocs)
			}
		})
	}
}

// gatedPricer counts pricing passes and can hold the leader mid-pass so a
// test can line up followers behind it.
type gatedPricer struct {
	model   *sim.Model
	passes  atomic.Int64 // one per shape pricing pass (counted on config 0)
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (p *gatedPricer) PriceGFLOPS(ctx context.Context, cfg gemm.Config, s gemm.Shape) (float64, error) {
	p.passes.Add(1)
	p.once.Do(func() {
		close(p.started)
		<-p.release
	})
	return p.model.GFLOPS(cfg, s), nil
}

// TestSingleFlightCoalesces holds one pricing pass open while 15 more
// requests for the same shape arrive, then checks that exactly one pass ran,
// every request got the identical full-quality decision, and the followers
// were counted as coalesced.
func TestSingleFlightCoalesces(t *testing.T) {
	model := sim.New(device.R9Nano())
	lib := buildLib(t, model, 6)
	pricer := &gatedPricer{
		model:   model,
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	srv, err := NewMulti([]Backend{{
		Device: model.Dev.Name, Lib: lib, Model: model, Pricer: pricer,
	}}, Options{FallbackShapes: reloadShapes})
	if err != nil {
		t.Fatal(err)
	}
	be := srv.backends[0]
	shape := gemm.Shape{M: 784, K: 1152, N: 256}

	const followers = 15
	results := make([]Decision, followers+1)
	errs := make([]error, followers+1)
	var wg sync.WaitGroup
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = srv.decide(context.Background(), be, shape)
		}(i)
	}

	<-pricer.started // the leader is inside its pricing pass
	deadline := time.Now().Add(5 * time.Second)
	for be.coalesced.Load() < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers coalesced", be.coalesced.Load(), followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(pricer.release)
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].Degraded {
			t.Fatalf("request %d degraded: %+v", i, results[i])
		}
		if results[i].Index != results[0].Index || results[i].Config != results[0].Config {
			t.Fatalf("request %d decision %+v differs from %+v", i, results[i], results[0])
		}
	}
	// Exactly one pricing pass: the gated first call plus the remaining
	// configs of that same pass.
	if got, want := pricer.passes.Load(), int64(len(lib.Configs)); got != want {
		t.Errorf("%d pricing calls, want %d (one pass over the library)", got, want)
	}
	if got, _ := srv.decide(context.Background(), be, shape); !got.Cached {
		t.Error("coalesced pass did not populate the cache")
	}
}

// TestCompiledGenerationMatchesLibrary is the serving half of the
// byte-identical guarantee: on all three paper devices the generation
// installs a compiled chooser, and its decisions match lib.ChooseIndex for
// every dataset shape — before and after a reload.
func TestCompiledGenerationMatchesLibrary(t *testing.T) {
	shapes, _ := workload.DatasetShapes()
	for _, dev := range []func() device.Spec{
		device.R9Nano, device.IntegratedGen9, device.EmbeddedMaliG72,
	} {
		model := sim.New(dev())
		ds := dataset.Build(model, shapes, gemm.AllConfigs()[:120])
		libA := core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 6, 42)
		libB := core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 4, 43)
		srv := New(libA, model, Options{FallbackShapes: shapes})

		check := func(lib *core.Library) {
			t.Helper()
			gen := srv.backends[0].gen.Load()
			if !gen.compiled {
				t.Fatalf("%s gen %d: selector did not compile", model.Dev.Name, gen.id)
			}
			for _, sh := range shapes {
				if got, want := gen.choose(sh), lib.ChooseIndex(sh); got != want {
					t.Fatalf("%s shape %v: compiled %d, library %d", model.Dev.Name, sh, got, want)
				}
			}
		}
		check(libA)
		if _, err := srv.Reload("", libB, nil); err != nil {
			t.Fatal(err)
		}
		check(libB)
	}
}

// TestFastParseHandlerParity replays the same requests through the fast
// scanner and the strict decoder path (by prefixing whitespace the scanner
// handles but formatting json.Encoder never emits, both must parse) and
// checks the responses agree with the stdlib-decoded form.
func TestFastParseHandlerParity(t *testing.T) {
	model := sim.New(device.R9Nano())
	srv := New(buildLib(t, model, 6), model, Options{FallbackShapes: reloadShapes})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/select", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	// Same logical request in forms that exercise the fast path, the
	// whitespace-tolerant fast path, and stdlib fallbacks; all answers must
	// be identical. The first request warms the cache, the second is the
	// cached reference body the variants must reproduce.
	if code, body := post(`{"m":196,"k":512,"n":512}`); code != http.StatusOK {
		t.Fatalf("warm request: %d %s", code, body)
	}
	code0, body0 := post(`{"m":196,"k":512,"n":512}`)
	if code0 != http.StatusOK {
		t.Fatalf("canonical request: %d %s", code0, body0)
	}
	for _, variant := range []string{
		"  {\n\t\"n\": 512 , \"m\" : 196, \"k\": 512 }  ",
		`{"device":"` + model.Dev.Name + `","m":196,"k":512,"n":512}`,
		`{"n":512,"k":512,"m":196,"m":196}`, // duplicate key, last wins (stdlib semantics)
	} {
		if code, body := post(variant); code != http.StatusOK || body != body0 {
			t.Errorf("variant %q: status %d body %q, want %q", variant, code, body, body0)
		}
	}

	// Error parity: the fast scanner must punt these to the strict decoder,
	// which rejects them exactly as before.
	for _, bad := range []struct {
		body string
		code int
	}{
		{`{"m":196,"k":512,"n":512} trailing`, http.StatusBadRequest},
		{`{"m":196,"k":512,"n":512,"extra":1}`, http.StatusBadRequest},
		{`{"m":196.5,"k":512,"n":512}`, http.StatusBadRequest},
		{`{"m":0,"k":512,"n":512}`, http.StatusBadRequest},
		{``, http.StatusBadRequest},
		{`{"m":196,"k":512,"n":512,"device":"nope"}`, http.StatusBadRequest},
	} {
		if code, body := post(bad.body); code != bad.code {
			t.Errorf("body %q: status %d (%s), want %d", bad.body, code, body, bad.code)
		}
	}
}

func BenchmarkSelectHot(b *testing.B) {
	model := sim.New(device.R9Nano())
	srv := New(buildLib(b, model, 6), model, Options{FallbackShapes: reloadShapes})
	sr := newSelectRunner(srv, []byte(`{"m":784,"k":1152,"n":256}`))
	sr.run() // warm the cache
	if sr.w.code != http.StatusOK {
		b.Fatalf("warm request failed: %d", sr.w.code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr.run()
	}
}

func BenchmarkSelectHotParallel(b *testing.B) {
	model := sim.New(device.R9Nano())
	srv := New(buildLib(b, model, 6), model, Options{FallbackShapes: reloadShapes})
	warm := newSelectRunner(srv, []byte(`{"m":784,"k":1152,"n":256}`))
	warm.run()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		sr := newSelectRunner(srv, []byte(`{"m":784,"k":1152,"n":256}`))
		for pb.Next() {
			sr.run()
		}
	})
}
