package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"kernelselect/internal/gemm"
)

func shapeN(i int) gemm.Shape { return gemm.Shape{M: i + 1, K: 2*i + 1, N: 3*i + 1} }

func decN(i int) Decision { return Decision{Shape: shapeN(i).String(), Index: i} }

func TestCacheHitAndMiss(t *testing.T) {
	c := newDecisionCache(8, 1)
	if _, ok := c.get(shapeN(0)); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(shapeN(0), decN(0))
	d, ok := c.get(shapeN(0))
	if !ok || d.Index != 0 {
		t.Fatalf("get after put: ok=%v d=%+v", ok, d)
	}
	hits, misses := c.stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats %d/%d, want 1/1", hits, misses)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newDecisionCache(3, 1)
	for i := 0; i < 3; i++ {
		c.put(shapeN(i), decN(i))
	}
	// Touch 0 so 1 becomes the eviction victim.
	if _, ok := c.get(shapeN(0)); !ok {
		t.Fatal("lost entry 0")
	}
	c.put(shapeN(3), decN(3))
	if _, ok := c.get(shapeN(1)); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.get(shapeN(i)); !ok {
			t.Fatalf("entry %d evicted, want it retained", i)
		}
	}
	if got := c.len(); got != 3 {
		t.Fatalf("len %d, want 3", got)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := newDecisionCache(4, 1)
	c.put(shapeN(0), decN(0))
	c.put(shapeN(0), Decision{Index: 42})
	if got := c.len(); got != 1 {
		t.Fatalf("len %d after double put, want 1", got)
	}
	d, ok := c.get(shapeN(0))
	if !ok || d.Index != 42 {
		t.Fatalf("refresh lost: ok=%v d=%+v", ok, d)
	}
}

func TestCacheSharding(t *testing.T) {
	c := newDecisionCache(256, 5) // rounds up to 8 shards, 32 slots each
	if len(c.shards) != 8 {
		t.Fatalf("%d shards, want 8", len(c.shards))
	}
	// 64 entries into 8×32 slots: even a skewed hash cannot overflow a
	// shard, so every entry must survive and come back intact.
	for i := 0; i < 64; i++ {
		c.put(shapeN(i), decN(i))
	}
	for i := 0; i < 64; i++ {
		if d, ok := c.get(shapeN(i)); !ok || d.Index != i {
			t.Fatalf("entry %d: ok=%v d=%+v", i, ok, d)
		}
	}
	// The hash must actually spread keys over shards.
	used := 0
	for i := range c.shards {
		if c.shards[i].order.Len() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("all 64 keys landed in %d shard(s)", used)
	}
}

func TestCacheDisabledIsNil(t *testing.T) {
	c := newDecisionCache(0, 4)
	if c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	// All operations must be safe on the nil cache.
	c.put(shapeN(0), decN(0))
	if _, ok := c.get(shapeN(0)); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatal("nil cache has entries")
	}
	if h, m := c.stats(); h != 0 || m != 0 {
		t.Fatal("nil cache has stats")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := newDecisionCache(128, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 200
				if d, ok := c.get(shapeN(k)); ok && d.Index != k {
					panic(fmt.Sprintf("cross-key corruption: key %d got %+v", k, d))
				}
				c.put(shapeN(k), decN(k))
			}
		}(g)
	}
	wg.Wait()
	if got := c.len(); got > 128+15 {
		// Per-shard caps are ceil(128/16)=8, so the total can exceed the
		// nominal capacity only by rounding, never unboundedly.
		t.Fatalf("cache grew to %d entries", got)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	h := newHistogram()
	h.observe(3 * time.Microsecond)  // below first bound (5e-6)
	h.observe(30 * time.Microsecond) // in (2.5e-5, 5e-5]
	h.observe(2 * time.Second)       // beyond the last bound → +Inf bucket
	if got := h.count.Load(); got != 3 {
		t.Fatalf("count %d, want 3", got)
	}
	if got := h.buckets[0].Load(); got != 1 {
		t.Fatalf("first bucket %d, want 1", got)
	}
	if got := h.buckets[len(latencyBuckets)].Load(); got != 1 {
		t.Fatalf("+Inf bucket %d, want 1", got)
	}
	wantSum := (3*time.Microsecond + 30*time.Microsecond + 2*time.Second).Nanoseconds()
	if got := h.sumNano.Load(); got != wantSum {
		t.Fatalf("sum %d ns, want %d", got, wantSum)
	}
}
