package serve

import (
	"context"
	"math"
	"testing"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
)

// worstGeomeanIndex is the argmin counterpart of the fallback computation —
// the config a deliberately bad retrain candidate pins itself to.
func worstGeomeanIndex(model *sim.Model, cfgs []gemm.Config, shapes []gemm.Shape) int {
	worst, worstScore := 0, math.Inf(1)
	for i, cfg := range cfgs {
		sum := 0.0
		for _, sh := range shapes {
			sum += math.Log(model.GFLOPS(cfg, sh))
		}
		if sum < worstScore {
			worst, worstScore = i, sum
		}
	}
	return worst
}

// shiftedShapes is a transformer-style traffic mix disjoint from reloadShapes
// — the serving-time distribution shift the closed loop exists to detect. The
// incumbent libraries in these tests never train on any of them.
var shiftedShapes = []gemm.Shape{
	{M: 128, K: 768, N: 768}, {M: 128, K: 768, N: 3072}, {M: 128, K: 3072, N: 768},
	{M: 512, K: 1024, N: 1024}, {M: 512, K: 1024, N: 4096}, {M: 512, K: 4096, N: 1024},
}

// TestClosedLoopRetrainReducesRegret is the end-to-end acceptance check for
// the closed loop, fully deterministic (seeded traffic, synchronous Maintain,
// no wall-clock sleeps beyond queue-drain polling):
//
//	shifted mix → drift crosses the threshold → shadow retrain fires → both
//	gates pass → promotion through Reload → post-swap sampled regret on the
//	same mix is no worse than pre-swap.
func TestClosedLoopRetrainReducesRegret(t *testing.T) {
	model := sim.New(device.R9Nano())
	universe := gemm.AllConfigs()[:120]
	incumbent := buildLib(t, model, 6) // trained on reloadShapes only

	retrains := 0
	opts := Options{
		FallbackShapes:   reloadShapes,
		TrainShapes:      reloadShapes,
		RegretSample:     1,
		RegretUniverse:   universe,
		WindowSize:       512,
		DriftThreshold:   0.25,
		RetrainMinWindow: 16,
		Retrain: func(dev string, m *sim.Model, shapes []gemm.Shape) (*core.Library, error) {
			retrains++
			if dev != model.Dev.Name {
				t.Errorf("retrain asked for device %q", dev)
			}
			ds := dataset.Build(m, shapes, universe)
			return core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 6, 42), nil
		},
	}
	srv := New(incumbent, model, opts)
	defer srv.Close()
	be := srv.backends[0]
	gen0 := be.gen.Load()

	drive := func(rounds int) {
		t.Helper()
		for i := 0; i < rounds; i++ {
			for _, sh := range shiftedShapes {
				if _, err := srv.decide(context.Background(), be, sh); err != nil {
					t.Fatal(err)
				}
			}
		}
		waitSettled(t, be)
	}

	drive(8) // 48 shifted decisions, all sampled and measured
	pre := be.regretHist.snapshot()
	if pre.count == 0 {
		t.Fatal("no pre-swap regret measurements landed")
	}

	srv.Maintain()

	if score := be.driftScore(); score <= opts.DriftThreshold {
		t.Fatalf("shifted mix scored drift %.4f, needed > %.2f to trigger a retrain", score, opts.DriftThreshold)
	}
	if retrains != 1 {
		t.Fatalf("retrain ran %d times, want 1", retrains)
	}
	evs := srv.RetrainEvents()
	if len(evs) != 1 {
		t.Fatalf("retrain events %+v, want exactly one", evs)
	}
	ev := evs[0]
	if !ev.Accepted || ev.Reason != "promoted" {
		t.Fatalf("candidate not promoted: %+v", ev)
	}
	if ev.CandidateRegret > ev.IncumbentRegret+1e-12 {
		t.Fatalf("promoted candidate's holdout regret %.6f exceeds incumbent %.6f", ev.CandidateRegret, ev.IncumbentRegret)
	}
	gen1 := be.gen.Load()
	if gen1.id <= gen0.id || ev.Generation != gen1.id {
		t.Fatalf("promotion generations inconsistent: was %d, serving %d, event %d", gen0.id, gen1.id, ev.Generation)
	}
	if be.retrainPromoted.Load() != 1 || be.retrainRejected.Load() != 0 || be.retrainErrors.Load() != 0 {
		t.Fatalf("retrain counters promoted=%d rejected=%d errors=%d, want 1/0/0",
			be.retrainPromoted.Load(), be.retrainRejected.Load(), be.retrainErrors.Load())
	}

	drive(8) // the same shifted mix through the promoted selector
	post := be.regretHist.snapshot()
	if post.count <= pre.count {
		t.Fatalf("no post-swap measurements: %d -> %d", pre.count, post.count)
	}
	preMean := pre.sum / float64(pre.count)
	postMean := (post.sum - pre.sum) / float64(post.count-pre.count)
	if postMean > preMean+1e-12 {
		t.Errorf("post-swap sampled regret %.6f worse than pre-swap %.6f", postMean, preMean)
	}
	t.Logf("drift %.3f; sampled regret %.6f -> %.6f over %d/%d measurements; holdout %.6f vs incumbent %.6f",
		ev.Drift, preMean, postMean, pre.count, post.count-pre.count, ev.CandidateRegret, ev.IncumbentRegret)

	// The loop must settle: promotion rebased the drift reference onto the
	// observed window, so the same traffic no longer reads as drift and the
	// next maintenance pass must not fire another retrain. Without the
	// rebase the loop promotes an identical candidate every pass, wiping
	// the decision cache each time.
	srv.Maintain()
	if score := be.driftScore(); score > opts.DriftThreshold {
		t.Errorf("drift %.4f still above threshold after promotion on unchanged traffic", score)
	}
	if retrains != 1 || be.retrainPromoted.Load() != 1 {
		t.Errorf("loop did not settle: %d retrains, %d promotions after a post-promotion pass on the same mix",
			retrains, be.retrainPromoted.Load())
	}
}

// A retrain whose candidate fails the holdout-regret gate must be rejected:
// counted, recorded, and invisible to live traffic — the serving generation
// and its library stay exactly as they were.
func TestRetrainRejectedCandidateNeverServes(t *testing.T) {
	model := sim.New(device.R9Nano())
	universe := gemm.AllConfigs()[:120]
	incumbent := buildLib(t, model, 6)

	// A static selector pinned to the worst geomean config: maximally bad,
	// guaranteed to lose the holdout-regret gate to any trained incumbent.
	worst := worstGeomeanIndex(model, incumbent.Configs, reloadShapes)
	bad, err := core.NewLibrary(incumbent.Configs, core.StaticSelector{Index: worst})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(incumbent, model, Options{
		FallbackShapes:   reloadShapes,
		TrainShapes:      reloadShapes,
		RegretUniverse:   universe,
		WindowSize:       512,
		DriftThreshold:   0.25,
		RetrainMinWindow: 16,
		Retrain: func(string, *sim.Model, []gemm.Shape) (*core.Library, error) {
			return bad, nil
		},
	})
	defer srv.Close()
	be := srv.backends[0]
	gen0 := be.gen.Load()

	for i := 0; i < 8; i++ {
		for _, sh := range shiftedShapes {
			if _, err := srv.decide(context.Background(), be, sh); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv.Maintain()

	if got := be.retrainRejected.Load(); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
	if got := be.retrainPromoted.Load(); got != 0 {
		t.Fatalf("promoted counter %d, want 0", got)
	}
	evs := srv.RetrainEvents()
	if len(evs) != 1 || evs[0].Accepted {
		t.Fatalf("retrain events %+v, want one rejection", evs)
	}
	if evs[0].CandidateRegret <= evs[0].IncumbentRegret {
		t.Fatalf("rejection without a regret deficit: %+v", evs[0])
	}
	gen1 := be.gen.Load()
	if gen1 != gen0 || gen1.lib != incumbent {
		t.Fatalf("rejected candidate touched live serving: generation %d -> %d", gen0.id, gen1.id)
	}
	d, err := srv.decide(context.Background(), be, reloadShapes[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.Generation != gen0.id || d.Index != incumbent.ChooseIndex(reloadShapes[0]) {
		t.Fatalf("post-rejection decision %+v not from the incumbent", d)
	}
}
