package serve

import (
	"context"
	"math"
	"testing"
	"time"

	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
)

// waitSettled blocks until every regret sample taken so far has been measured
// or dropped — the deterministic replacement for sleeping while the background
// worker drains.
func waitSettled(t testing.TB, be *backend) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !be.regretSettled() {
		if time.Now().After(deadline) {
			t.Fatalf("regret queue never drained: sampled %d, measured %d, dropped %d",
				be.sampled.Load(),
				be.regretHist.count.Load()+be.regretDegradedHist.count.Load(),
				be.regretDropped.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// Accounting invariants: every decision is counted exactly once as sampled or
// unsampled, the deterministic 1-in-N schedule samples exactly decisions/N of
// them, and once the queue drains every sample is either measured or dropped —
// nothing vanishes between the request path and the histograms.
func TestRegretAccountingInvariants(t *testing.T) {
	model := sim.New(device.R9Nano())
	srv := New(buildLib(t, model, 6), model, Options{
		FallbackShapes: reloadShapes,
		RegretSample:   0.25,
		RegretUniverse: gemm.AllConfigs()[:120],
	})
	defer srv.Close()
	be := srv.backends[0]

	const n = 40
	for i := 0; i < n; i++ {
		if _, err := srv.decide(context.Background(), be, reloadShapes[i%len(reloadShapes)]); err != nil {
			t.Fatal(err)
		}
	}
	if got := be.decisions.Load(); got != n {
		t.Fatalf("decisions %d, want %d", got, n)
	}
	s, u := be.sampled.Load(), be.unsampled.Load()
	if s+u != n {
		t.Fatalf("sampled %d + unsampled %d != %d decisions", s, u, n)
	}
	if s != n/4 {
		t.Fatalf("sampled %d of %d decisions at rate 0.25, want exactly %d", s, n, n/4)
	}
	waitSettled(t, be)
	if measured := be.regretHist.count.Load() + be.regretDegradedHist.count.Load(); measured+be.regretDropped.Load() != s {
		t.Fatalf("measured %d + dropped %d != sampled %d", measured, be.regretDropped.Load(), s)
	}
	if got := be.window.size(); got != n {
		t.Fatalf("window holds %d shapes after %d decisions", got, n)
	}
}

// Regret is bounded to [0, 1] for arbitrary served configs, and exactly 0 —
// not merely small — when the served config is the universe's per-shape
// argmax: the batch pricer is bit-identical to the scalar model, so the ratio
// is x/x.
func TestRegretNonNegativeAndZeroAtOptimum(t *testing.T) {
	model := sim.New(device.R9Nano())
	universe := gemm.AllConfigs()[:120]
	srv := New(buildLib(t, model, 6), model, Options{
		FallbackShapes: reloadShapes,
		RegretSample:   1,
		RegretUniverse: universe,
	})
	defer srv.Close()
	be := srv.backends[0]
	gen := be.gen.Load()

	for _, sh := range reloadShapes {
		best, bestV := 0, math.Inf(-1)
		for i, cfg := range universe {
			if v := model.GFLOPS(cfg, sh); v > bestV {
				best, bestV = i, v
			}
		}
		if r := srv.measureRegret(regretSample{be: be, gen: gen, shape: sh, cfg: universe[best]}); r != 0 {
			t.Errorf("shape %v: regret %v for the universe optimum, want exactly 0", sh, r)
		}
		for i := 0; i < len(universe); i += 17 {
			r := srv.measureRegret(regretSample{be: be, gen: gen, shape: sh, cfg: universe[i]})
			if r < 0 || r > 1 {
				t.Errorf("shape %v config %d: regret %v out of [0,1]", sh, i, r)
			}
		}
	}
}

// A window drawn from the training mix itself must score drift exactly 0: the
// proportions match term for term, and driftPSI skips matched terms instead of
// accumulating rounding noise.
func TestDriftZeroOnTrainingMix(t *testing.T) {
	ref := mixOf(reloadShapes)
	var win []gemm.Shape
	for i := 0; i < 7; i++ {
		win = append(win, reloadShapes...)
	}
	if got := driftPSI(ref, win); got != 0 {
		t.Fatalf("drift %v on a window drawn from the training mix, want exactly 0", got)
	}
	// Empty sides are vacuously stable, never NaN.
	if got := driftPSI(ref, nil); got != 0 {
		t.Fatalf("drift %v on an empty window", got)
	}
	if got := driftPSI(shapeMix{}, reloadShapes); got != 0 {
		t.Fatalf("drift %v against an empty reference", got)
	}
}

// PSI is non-negative for arbitrary live mixes and grows past the
// retrain-worthy threshold when the window is dominated by shapes the
// reference has never seen.
func TestDriftNonNegativeAndDetectsShift(t *testing.T) {
	ref := mixOf(reloadShapes)
	for take := 1; take <= len(reloadShapes); take++ {
		win := append([]gemm.Shape(nil), reloadShapes[:take]...)
		if got := driftPSI(ref, win); got < 0 {
			t.Fatalf("drift %v negative for a %d-shape subset window", got, take)
		}
	}
	if got := driftPSI(ref, shiftedShapes); got <= 0.25 {
		t.Fatalf("fully shifted window scored drift %v, want > 0.25", got)
	}
	// A half-shifted window drifts less than a fully shifted one but more
	// than none.
	half := append(append([]gemm.Shape(nil), reloadShapes...), shiftedShapes...)
	full := driftPSI(ref, shiftedShapes)
	if got := driftPSI(ref, half); got <= 0 || got >= full {
		t.Fatalf("half-shifted drift %v not in (0, %v)", got, full)
	}
}

// The window is bounded and sliding: after far more adds than capacity it
// holds exactly its capacity, and only the most recent entries — the
// round-robin sharding must not starve or double-retain any stream position.
func TestWindowSlidesAndBounds(t *testing.T) {
	const capacity = 64
	w := newShapeWindow(capacity)
	const total = 1000
	for i := 1; i <= total; i++ {
		w.add(gemm.Shape{M: i, K: 1, N: 1})
	}
	if n := w.size(); n != capacity {
		t.Fatalf("window size %d after %d adds, want %d", n, total, capacity)
	}
	snap := w.snapshot()
	if len(snap) != capacity {
		t.Fatalf("snapshot holds %d entries, want %d", len(snap), capacity)
	}
	seen := make(map[int]bool, capacity)
	for _, s := range snap {
		if s.M <= total-capacity {
			t.Errorf("stale entry M=%d survived %d adds into a %d-window", s.M, total, capacity)
		}
		if seen[s.M] {
			t.Errorf("entry M=%d retained twice", s.M)
		}
		seen[s.M] = true
	}
	if newShapeWindow(0) != nil || newShapeWindow(-3) != nil {
		t.Fatal("non-positive capacity did not disable the window")
	}
}

// The maintenance pass relearns the degraded-mode fallback from the observed
// distribution: a window dominated by one shape swaps the generation's
// fallback template to that shape's best weighted-geomean config, atomically
// and with the update counted.
func TestFallbackLearnsObservedDistribution(t *testing.T) {
	model := sim.New(device.R9Nano())
	lib := buildLib(t, model, 6)
	srv := New(lib, model, Options{FallbackShapes: reloadShapes, WindowSize: 128})
	defer srv.Close()
	be := srv.backends[0]
	gen := be.gen.Load()
	orig := *gen.fb.Load()

	// Find a shape whose solo best differs from the static geomean choice, so
	// the relearn is observable.
	var target gemm.Shape
	found := false
	for _, sh := range reloadShapes {
		if weightedBestGeomeanIndex(model, lib.Configs, []gemm.Shape{sh}, []float64{1}) != orig.Index {
			target, found = sh, true
			break
		}
	}
	if !found {
		t.Fatal("every per-shape best equals the static fallback — test library degenerate")
	}
	for i := 0; i < 2*minFallbackWindow; i++ {
		be.window.add(target)
	}
	srv.Maintain()

	fb := *gen.fb.Load()
	want := weightedBestGeomeanIndex(model, lib.Configs, []gemm.Shape{target}, []float64{1})
	if fb.Index != want {
		t.Fatalf("learned fallback index %d, want %d (best for the observed mix)", fb.Index, want)
	}
	if fb.Config != lib.Configs[want].String() || !fb.Degraded || fb.Generation != gen.id {
		t.Fatalf("learned fallback template inconsistent: %+v", fb)
	}
	if got := be.fallbackUpdates.Load(); got != 1 {
		t.Fatalf("fallback updates %d, want 1", got)
	}
	// A second pass over the unchanged window is a no-op, not a churn.
	srv.Maintain()
	if got := be.fallbackUpdates.Load(); got != 1 {
		t.Fatalf("unchanged window re-counted a fallback update: %d", got)
	}
	if score := be.driftScore(); score <= 0 {
		t.Fatalf("single-shape window scored drift %v, want > 0", score)
	}
}

// Every closed-loop series is present on the metrics page with device labels,
// and the exported decision counters obey sampled + unsampled == decisions.
func TestClosedLoopMetricsSeries(t *testing.T) {
	srv, ts := testServer(t, Options{
		RegretSample:   1,
		RegretUniverse: gemm.AllConfigs()[:120],
	})
	defer srv.Close()
	be := srv.backends[0]
	for i := 0; i < 6; i++ {
		decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", shapeRequest{M: 784, K: 1152, N: 256}))
	}
	waitSettled(t, be)
	srv.Maintain()

	page := metricsPage(t, ts)
	for _, metric := range []string{
		`selectd_decisions_total{device="amd-r9-nano"}`,
		`selectd_decisions_sampled_total{device="amd-r9-nano"}`,
		`selectd_decisions_unsampled_total{device="amd-r9-nano"}`,
		`selectd_regret_dropped_total{device="amd-r9-nano"}`,
		`selectd_regret_bucket{device="amd-r9-nano",le="0"}`,
		`selectd_regret_bucket{device="amd-r9-nano",le="+Inf"}`,
		`selectd_regret_sum{device="amd-r9-nano"}`,
		`selectd_regret_count{device="amd-r9-nano"}`,
		`selectd_regret_degraded_count{device="amd-r9-nano"}`,
		`selectd_drift_score{device="amd-r9-nano"}`,
		`selectd_window_size{device="amd-r9-nano"}`,
		`selectd_retrain_promoted_total{device="amd-r9-nano"}`,
		`selectd_retrain_rejected_total{device="amd-r9-nano"}`,
		`selectd_retrain_errors_total{device="amd-r9-nano"}`,
		`selectd_fallback_updates_total{device="amd-r9-nano"}`,
	} {
		metricValue(t, page, metric) // fails the test if the series is absent
	}
	dec := metricValue(t, page, `selectd_decisions_total{device="amd-r9-nano"}`)
	smp := metricValue(t, page, `selectd_decisions_sampled_total{device="amd-r9-nano"}`)
	uns := metricValue(t, page, `selectd_decisions_unsampled_total{device="amd-r9-nano"}`)
	if smp+uns != dec || dec != 6 {
		t.Fatalf("exported decisions %v != sampled %v + unsampled %v (want 6)", dec, smp, uns)
	}
	if count := metricValue(t, page, `selectd_regret_count{device="amd-r9-nano"}`); count != smp {
		t.Fatalf("regret count %v, want every one of %v samples measured", count, smp)
	}
	if win := metricValue(t, page, `selectd_window_size{device="amd-r9-nano"}`); win != 6 {
		t.Fatalf("window size %v, want 6", win)
	}
}
