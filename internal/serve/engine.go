package serve

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"kernelselect/internal/gemm"
	"kernelselect/internal/par"
)

// Engine is the transport-agnostic face of the decision engine: everything a
// caller needs to ask "which kernel configuration for this GEMM shape on this
// device?" without going through HTTP. *Server implements it; the cluster
// router consumes it for its router-local degraded fallback (answering
// priceable shapes when every replica is down), and embedded callers can run
// the full serving ladder — cache, admission, degradation, closed-loop
// accounting — in-process with no listener at all.
type Engine interface {
	// Decide answers one shape on one device backend (empty device selects
	// the default). It runs the same ladder as POST /v1/select: cache hit,
	// admission budget (exhaustion degrades to the fallback config), then the
	// pricing pass. It fails only for an unknown device, an invalid shape, or
	// a context that expires mid-computation — never for pricing failures,
	// which degrade instead.
	Decide(ctx context.Context, device string, shape gemm.Shape) (Decision, error)

	// DecideBatch answers many shapes on one device backend in a single
	// engine entry, with POST /v1/select/batch semantics: one admission
	// token covers the whole batch (exhaustion degrades every miss while
	// cache hits keep full quality), and misses price concurrently on the
	// server's worker pool. It fails only for an unknown device, an invalid
	// or oversized shape list, or an expired context.
	DecideBatch(ctx context.Context, device string, shapes []gemm.Shape) ([]Decision, error)

	// Devices lists the hosted device names; the first is the default route.
	Devices() []string
}

// Decide implements Engine over the server's full serving ladder. It is the
// extraction point the HTTP handlers are built on: handleSelect's fast path
// duplicates the cache probe for its zero-allocation encoding, but every
// semantic branch — hit bypasses admission, budget exhaustion degrades,
// aborted decisions are not cached — is the same here, so a transport layered
// over Decide serves exactly what the HTTP surface serves.
func (s *Server) Decide(ctx context.Context, device string, shape gemm.Shape) (Decision, error) {
	be, err := s.backend(device)
	if err != nil {
		return Decision{}, err
	}
	if err := shape.Validate(); err != nil {
		return Decision{}, err
	}
	// Cache hits are O(1) and bypass admission entirely, exactly like the
	// HTTP fast path: even a saturated backend keeps answering its
	// steady-state shapes at full quality.
	gen := be.gen.Load()
	if d, ok := gen.cache.get(shape); ok {
		d.Cached = true
		s.account(be, gen, shape, &d)
		return d, nil
	}
	release, ok := be.acquire()
	if !ok {
		gen = be.gen.Load()
		d := s.degradedDecision(be, gen, shape, reasonBudget)
		s.account(be, gen, shape, &d)
		return d, nil
	}
	defer release()
	be.inflight.Add(1)
	defer be.inflight.Add(-1)
	return s.decide(ctx, be, shape)
}

// DecideBatch implements Engine with the same core the HTTP batch handler
// runs: shapes validate up front, one admission token covers the batch, and
// misses fan out over the worker pool via the shared decide ladder. The
// cluster router's micro-batcher consumes this for its local fallback and
// tests pin it against the HTTP surface.
func (s *Server) DecideBatch(ctx context.Context, device string, shapes []gemm.Shape) ([]Decision, error) {
	be, err := s.backend(device)
	if err != nil {
		return nil, err
	}
	if len(shapes) == 0 {
		return nil, fmt.Errorf("batch has no shapes")
	}
	if len(shapes) > s.opts.MaxBatch {
		return nil, fmt.Errorf("batch of %d shapes exceeds limit %d", len(shapes), s.opts.MaxBatch)
	}
	for i := range shapes {
		if err := shapes[i].Validate(); err != nil {
			return nil, fmt.Errorf("shape %d: %v", i, err)
		}
	}
	release, ok := be.acquire()
	if !ok {
		// Budget exhausted: exactly like Decide, hits stay full quality and
		// misses degrade to the fallback config rather than erroring.
		gen := be.gen.Load()
		results := make([]Decision, len(shapes))
		for i, sh := range shapes {
			if d, hit := gen.cache.get(sh); hit {
				d.Cached = true
				s.account(be, gen, sh, &d)
				results[i] = d
				continue
			}
			results[i] = s.degradedDecision(be, gen, sh, reasonBudget)
			s.account(be, gen, sh, &results[i])
		}
		return results, nil
	}
	defer release()
	be.inflight.Add(1)
	defer be.inflight.Add(-1)
	results := par.Map(s.opts.Workers, len(shapes), func(i int) Decision {
		d, err := s.decide(ctx, be, shapes[i])
		if err != nil {
			return Decision{} // context expired: the batch is void
		}
		return d
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// HotShape is one entry of a backend's served-shape window aggregated by
// frequency: the shape and how many window slots it currently occupies.
type HotShape struct {
	M     int `json:"m"`
	K     int `json:"k"`
	N     int `json:"n"`
	Count int `json:"count"`
}

// HotShapes aggregates the named backend's served-shape window into its
// hottest shapes, most-served first (count descending, then shape string
// ascending so equal counts order deterministically). top bounds the result
// (<= 0 returns every distinct shape). A disabled window returns an empty
// list. The cluster router's peer cache-warming reads this through
// GET /v1/window: a restarted replica pre-prices the shapes its peers
// observed while covering for it, before traffic cuts back over.
func (s *Server) HotShapes(device string, top int) ([]HotShape, error) {
	be, err := s.backend(device)
	if err != nil {
		return nil, err
	}
	if be.window == nil {
		return nil, nil
	}
	counts := make(map[gemm.Shape]int)
	for _, sh := range be.window.snapshot() {
		counts[sh]++
	}
	hot := make([]HotShape, 0, len(counts))
	for sh, c := range counts {
		hot = append(hot, HotShape{M: sh.M, K: sh.K, N: sh.N, Count: c})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Count != hot[j].Count {
			return hot[i].Count > hot[j].Count
		}
		a := gemm.Shape{M: hot[i].M, K: hot[i].K, N: hot[i].N}
		b := gemm.Shape{M: hot[j].M, K: hot[j].K, N: hot[j].N}
		return a.String() < b.String()
	})
	if top > 0 && len(hot) > top {
		hot = hot[:top]
	}
	return hot, nil
}

// windowResponse is the GET /v1/window body: the backend's current window
// occupancy and its hottest shapes.
type windowResponse struct {
	Device string     `json:"device"`
	Size   int        `json:"window_size"`
	Shapes []HotShape `json:"shapes"`
}

// handleWindow serves the backend's served-shape window summary
// (?device= picks a backend, ?top= bounds the shape list; default 64).
func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	be, err := s.backend(r.URL.Query().Get("device"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	top := 64
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad top %q", v)})
			return
		}
		top = n
	}
	hot, err := s.HotShapes(be.name, top)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	size := 0
	if be.window != nil {
		size = be.window.size()
	}
	if hot == nil {
		hot = []HotShape{}
	}
	writeJSON(w, http.StatusOK, windowResponse{Device: be.name, Size: size, Shapes: hot})
}
