package serve

import (
	"context"

	"kernelselect/internal/par"
)

// Speculative generation warming. A freshly swapped generation starts with an
// empty decision cache, so every distinct shape pays one full pricing pass
// before steady-state traffic goes back to O(1) cache hits — under load, that
// cold-start window is exactly when the admission budget saturates and the
// latency EWMA spikes. When Options.Warm is set, startWarm prices the
// configured warm-shape universe (the paper's dataset shapes by default) in
// the background on every generation swap, so by the time real traffic
// arrives the cache already holds a full-quality decision for every expected
// shape and the miss path is never exercised in steady state.
//
// The warm pass runs outside the serving ladder on purpose: it takes no
// admission token, feeds no latency EWMA and no circuit breaker (it describes
// the warm pass, not client service), and bypasses the single-flight group —
// a request racing the warm pass for the same shape may duplicate one pricing
// pass, and both sides put identical values. Warm decisions are computed by
// the generation itself, so a cancelled pass can never leak a stale
// generation's decision into a newer generation's cache: each generation only
// ever warms its own private cache.

// startWarm launches the generation's warm pass, or latches warmDone
// immediately when there is nothing to warm (warming disabled, no cache to
// fill, or an empty warm-shape set — vacuously complete). Callers invoke it
// before publishing the generation, so requests never observe a generation
// whose warm bookkeeping is uninitialised. The backend carries the
// cumulative warm counter (selectd_warm_shapes_total) so the series keeps
// growing across generation swaps instead of resetting.
func (s *Server) startWarm(be *backend, gen *generation) {
	shapes := s.opts.WarmShapes
	if !s.opts.Warm || gen.cache == nil || len(shapes) == 0 {
		gen.warmDone.Store(true)
		return
	}
	gen.warmTotal = len(shapes)
	ctx, cancel := context.WithCancel(context.Background())
	gen.warmStop = cancel
	go func() {
		defer cancel()
		par.Do(s.opts.Workers, len(shapes), func(i int) {
			if ctx.Err() != nil {
				return
			}
			d, err := gen.compute(ctx, shapes[i])
			if err != nil || d.Degraded {
				return
			}
			gen.cache.put(shapes[i], d)
			gen.warmed.Add(1)
			be.warmedTotal.Add(1)
		})
		// Complete only when every shape landed: a cancelled or partially
		// failed pass leaves warmDone false, which /healthz and the metrics
		// surface as "still cold" rather than lying about readiness.
		if gen.warmed.Load() == uint64(gen.warmTotal) {
			gen.warmDone.Store(true)
		}
	}()
}

// stopWarm cancels the generation's warm pass, if one is running. Reload
// calls it on the displaced generation after the swap lands, so at most one
// warm pass runs per backend and a reload storm cannot pile up workers
// pricing shapes for caches nothing will ever read.
func (g *generation) stopWarm() {
	if g.warmStop != nil {
		g.warmStop()
	}
}

// warmSnapshot reports the generation's warm progress for healthz, reload
// responses and the metrics endpoint.
func (g *generation) warmSnapshot() (total int, warmed uint64, done bool) {
	return g.warmTotal, g.warmed.Load(), g.warmDone.Load()
}
