package serve

import (
	"net/http/httptest"
	"strings"
	"testing"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/portability"
	"kernelselect/internal/sim"
)

// unifiedTestServer builds the deployable unified artifact exactly the way
// the portability study does and serves all three real devices from it.
func unifiedTestServer(t testing.TB, opts Options) (*Server, *core.Library, []device.Spec) {
	t.Helper()
	env := portability.Setup(portability.Config{
		Seed:    42,
		N:       8,
		Pruners: []core.Pruner{core.DecisionTree{}},
		Trainers: []core.SelectorTrainer{
			core.DecisionTreeSelector{},
		},
		Workers: 4,
	})
	lib, err := env.BuildUnifiedLibrary()
	if err != nil {
		t.Fatal(err)
	}
	specs := device.All()
	models := make([]*sim.Model, len(specs))
	for i, spec := range specs {
		models[i] = sim.New(spec)
	}
	srv, err := NewUnified(lib, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv, lib, specs
}

func unifiedHTTPServer(t testing.TB, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// The acceptance bar for the unified artifact: every device's HTTP answer
// must agree exactly with the in-memory portability selector dispatched on
// that device's feature vector.
func TestUnifiedServingAgreesWithInMemorySelector(t *testing.T) {
	srv, lib, specs := unifiedTestServer(t, Options{})
	ts := unifiedHTTPServer(t, srv)

	shapes := []gemm.Shape{
		{M: 1, K: 4096, N: 1000}, {M: 3136, K: 64, N: 64}, {M: 784, K: 1152, N: 256},
		{M: 49, K: 4608, N: 512}, {M: 12544, K: 27, N: 32}, {M: 196, K: 512, N: 512},
		{M: 64, K: 25088, N: 4096}, {M: 100352, K: 3, N: 64},
	}
	for _, spec := range specs {
		for _, s := range shapes {
			d := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select",
				shapeRequest{M: s.M, K: s.K, N: s.N, Device: spec.Name}))
			if d.Device != spec.Name {
				t.Fatalf("decision for %q stamped %q", spec.Name, d.Device)
			}
			k := lib.UnifiedChooseIndex(s, spec.Features())
			if want := lib.Configs[k].String(); d.Config != want {
				t.Errorf("%s %v: served %s, in-memory selector %s", spec.Name, s, d.Config, want)
			}
		}
	}
}

// Per-device decision caches stay partitioned even though every backend
// shares one selector: a shape warmed on one device must not satisfy another
// device's first request, and the per-device metric series stay separate.
func TestUnifiedPerDeviceCacheKeying(t *testing.T) {
	srv, _, specs := unifiedTestServer(t, Options{})
	ts := unifiedHTTPServer(t, srv)
	req := shapeRequest{M: 784, K: 1152, N: 256}

	first := req
	first.Device = specs[0].Name
	decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", first))
	if d := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", first)); !d.Cached {
		t.Fatal("repeat request missed its own device's cache")
	}
	second := req
	second.Device = specs[1].Name
	if d := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", second)); d.Cached {
		t.Fatal("first request on another device hit a foreign cache entry")
	}

	page := metricsPage(t, ts)
	if got := metricValue(t, page, `selectd_cache_hits_total{device="`+specs[0].Name+`"}`); got != 1 {
		t.Errorf("%s cache hits %v, want 1", specs[0].Name, got)
	}
	if got := metricValue(t, page, `selectd_cache_hits_total{device="`+specs[1].Name+`"}`); got != 0 {
		t.Errorf("%s cache hits %v, want 0", specs[1].Name, got)
	}
	if !strings.Contains(page, `selectd_cache_entries{device="`+specs[1].Name+`"}`) {
		t.Errorf("metrics page missing per-device cache series for %s", specs[1].Name)
	}
}

// NewUnified must refuse a shape-only library, and Reload must refuse to
// swap a unified backend onto a specialist library (and vice versa): the two
// dispatch kinds are not interchangeable.
func TestUnifiedKindMismatchesRejected(t *testing.T) {
	srv, _, specs := unifiedTestServer(t, Options{})

	model := sim.New(specs[0])
	shapes := []gemm.Shape{{M: 8, K: 8, N: 8}, {M: 64, K: 64, N: 64}, {M: 256, K: 256, N: 256}}
	ds := dataset.Build(model, shapes, gemm.AllConfigs()[:40])
	shapeOnly := core.BuildLibrary(ds, core.TopN{}, core.DecisionTreeSelector{}, 4, 42)

	if _, err := NewUnified(shapeOnly, []*sim.Model{model}, Options{}); err == nil {
		t.Error("NewUnified accepted a shape-only library")
	}
	if _, err := srv.Reload(specs[0].Name, shapeOnly, nil); err == nil {
		t.Error("unified backend reloaded onto a shape-only library")
	}
}

// A unified reload with a fresh copy of the artifact must succeed and keep
// serving the same answers.
func TestUnifiedReloadRoundTrip(t *testing.T) {
	srv, lib, specs := unifiedTestServer(t, Options{})
	shape := gemm.Shape{M: 3136, K: 64, N: 64}
	before := srv.byName[specs[0].Name].gen.Load().choose(shape)

	id, err := srv.Reload(specs[0].Name, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id < 2 {
		t.Fatalf("reload generation %d, want >= 2", id)
	}
	if after := srv.byName[specs[0].Name].gen.Load().choose(shape); after != before {
		t.Errorf("reload changed the decision: %d -> %d", before, after)
	}
}
