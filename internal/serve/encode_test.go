package serve

import (
	"encoding/json"
	"math"
	"testing"

	"kernelselect/internal/xrand"
)

// TestAppendDecisionMatchesStdlib pins the append encoder to encoding/json
// byte for byte — field order, omitempty, float formatting, string escaping —
// so swapping the encoder can never change what clients parse.
func TestAppendDecisionMatchesStdlib(t *testing.T) {
	cases := []Decision{
		{},
		{
			Device: "amd-r9-nano", Shape: "784x1152x256", Config: "t8x8a4_wg16x16",
			Index: 3, KernelID: "t8x8a4", PredictedGFLOPS: 1472.1126384445024,
			PredictedNorm: 0.9376, Cached: true, Generation: 7,
		},
		{
			Device: "intel-gen9", Shape: "1x1x1", Config: "c", Index: 0,
			KernelID: "k", Degraded: true, DegradedReason: "budget", Generation: 1,
		},
		{Device: `quo"te\dev`, Shape: "<&>", Config: "ünïcode", PredictedGFLOPS: 1e-9},
		{PredictedGFLOPS: 1e21, PredictedNorm: 1e-7},
		{PredictedGFLOPS: -0.000125, PredictedNorm: math.MaxFloat64},
	}
	for _, d := range cases {
		want, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendDecision(nil, &d); string(got) != string(want) {
			t.Errorf("decision %+v:\n append: %s\n stdlib: %s", d, got, want)
		}
	}
}

func TestAppendJSONFloatMatchesStdlib(t *testing.T) {
	vals := []float64{
		0, 1, -1, 0.5, 1.0 / 3.0, 1e-6, 9.9e-7, 1e21, 9.99e20, -1e21,
		1472.1126384445024, 1e-300, 1e300, math.SmallestNonzeroFloat64,
		math.MaxFloat64, 123456789.123456789,
	}
	rng := xrand.New(17)
	for i := 0; i < 2000; i++ {
		v := (rng.Float64() - 0.5) * math.Pow(10, float64(int(rng.Float64()*60))-30)
		vals = append(vals, v)
	}
	for _, v := range vals {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, v); string(got) != string(want) {
			t.Errorf("float %v: append %s, stdlib %s", v, got, want)
		}
	}
}

// TestParseSelectBody checks the fast scanner accepts exactly the canonical
// forms (agreeing with the strict decoder on values) and punts everything
// doubtful, so stdlib semantics govern every edge case.
func TestParseSelectBody(t *testing.T) {
	accept := []struct {
		body    string
		m, k, n int
		device  string
	}{
		{`{"m":1,"k":2,"n":3}`, 1, 2, 3, ""},
		{`{"n":3,"m":1,"k":2}`, 1, 2, 3, ""},
		{` { "m" : 10 , "k" : 20 , "n" : 30 } `, 10, 20, 30, ""},
		{`{"m":1,"k":2,"n":3,"device":"gpu-a"}`, 1, 2, 3, "gpu-a"},
		{`{"device":"x","m":-5,"k":2,"n":3}`, -5, 2, 3, "x"},
		{`{"m":1,"k":2,"n":3,"m":9}`, 9, 2, 3, ""}, // duplicate: last wins, as stdlib
		{`{}`, 0, 0, 0, ""},
	}
	for _, c := range accept {
		p, ok := parseSelectBody([]byte(c.body))
		if !ok {
			t.Errorf("body %q: fast parser punted, want accept", c.body)
			continue
		}
		if p.m != c.m || p.k != c.k || p.n != c.n || string(p.device) != c.device {
			t.Errorf("body %q: parsed m=%d k=%d n=%d device=%q", c.body, p.m, p.k, p.n, p.device)
		}
		// Cross-check against the strict decoder on accepted bodies.
		var req shapeRequest
		if err := decodeStrict([]byte(c.body), &req); err != nil {
			t.Errorf("body %q: fast parser accepted what stdlib rejects: %v", c.body, err)
		} else if req.M != p.m || req.K != p.k || req.N != p.n || req.Device != string(p.device) {
			t.Errorf("body %q: fast (%d,%d,%d,%q) != stdlib (%d,%d,%d,%q)",
				c.body, p.m, p.k, p.n, p.device, req.M, req.K, req.N, req.Device)
		}
	}

	punt := []string{
		``, `null`, `[]`, `{`, `{"m":1`, `{"m":1.5,"k":2,"n":3}`,
		`{"m":1e3,"k":2,"n":3}`, `{"m":"1","k":2,"n":3}`,
		`{"m":1,"k":2,"n":3,"extra":4}`, `{"m":1,"k":2,"n":3}x`,
		`{"m":1,"k":2,"n":3} {"m":4}`, `{"device":"a\"b","m":1,"k":2,"n":3}`,
		`{"device":"ü","m":1,"k":2,"n":3}`, `{"m":12345678901234567890,"k":2,"n":3}`,
		`{"m":null,"k":2,"n":3}`, `{"m":1,"k":2,"n":3,}`,
	}
	for _, body := range punt {
		if _, ok := parseSelectBody([]byte(body)); ok {
			t.Errorf("body %q: fast parser accepted, want punt to stdlib", body)
		}
	}
}

func TestAppendBatchMatchesStdlib(t *testing.T) {
	results := []Decision{
		{Device: "a", Shape: "1x2x3", Config: "c0", KernelID: "k0", PredictedGFLOPS: 12.5, PredictedNorm: 1},
		{Device: "a", Shape: "4x5x6", Config: "c1", Index: 1, KernelID: "k1", Cached: true, Generation: 2},
		{Device: "a", Shape: "7x8x9", Config: "c2", Degraded: true, DegradedReason: "breaker"},
	}
	want, err := json.Marshal(batchResponse{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if got := appendBatch(nil, results); string(got) != string(want) {
		t.Errorf("batch:\n append: %s\n stdlib: %s", got, want)
	}
	if got, want := string(appendBatch(nil, nil)), `{"results":[]}`; got != want {
		t.Errorf("empty batch: %s, want %s", got, want)
	}
}
