package serve

import (
	"math"

	"kernelselect/internal/gemm"
)

// Regret telemetry: a deterministic fraction of served decisions is stamped
// for background measurement against the per-shape optimum of a configuration
// universe (gemm.AllConfigs by default — every kernel the system could have
// generated, not just the library's pruned survivors). Regret for a decision
// is
//
//	1 − achieved GFLOPS / best GFLOPS over the universe
//
// clamped to [0, 1]: 0 means the selector picked a per-shape optimal config,
// 1 means it left all the performance on the table. This is the quantity the
// offline evaluation ranks selectors by; sampling it live closes the gap
// between "the selector tested well" and "the selector is serving well".
//
// Measurement happens strictly off the request path, mirroring the warm
// pass: the request goroutine only enqueues a fixed-size sample onto a
// bounded channel (dropping, counted, when full — never blocking), and a
// single worker prices the universe via the generation's vectorized batch
// pricer, bypassing admission budgets, the latency EWMA and the circuit
// breaker — the measurement describes decision quality, not client service.

// regretSample is one sampled decision awaiting measurement. It pins the
// generation that produced the decision so the measurement prices the config
// actually served even if a reload lands before the worker gets to it.
type regretSample struct {
	be       *backend
	gen      *generation
	shape    gemm.Shape
	cfg      gemm.Config
	degraded bool
}

// account records one served decision into the closed-loop state: the
// per-backend decision counters, the served-shape window, and — for every
// regretEvery-th decision — the regret measurement queue. It runs on the
// request goroutine for every decision (cache hits included), so it must not
// allocate or block: the window append is a sharded ring store and a full
// queue drops the sample rather than waiting.
func (s *Server) account(be *backend, gen *generation, shape gemm.Shape, d *Decision) {
	if be.window != nil {
		be.window.add(shape)
	}
	n := be.decisions.Add(1)
	if s.regretEvery > 0 && n%s.regretEvery == 0 {
		be.sampled.Add(1)
		smp := regretSample{be: be, gen: gen, shape: shape, cfg: gen.lib.Configs[d.Index], degraded: d.Degraded}
		select {
		case s.regretQ <- smp:
		default:
			be.regretDropped.Add(1)
		}
		return
	}
	be.unsampled.Add(1)
}

// regretWorker drains the sample queue until the server closes. One worker is
// enough: a universe pricing pass costs tens of microseconds, so even a 100%
// sample rate at saturation-knee request rates stays ahead of the queue.
func (s *Server) regretWorker() {
	for {
		select {
		case <-s.stop:
			return
		case smp := <-s.regretQ:
			s.measureRegret(smp)
		}
	}
}

// measureRegret prices the universe for one sampled decision and folds the
// regret into the backend's histogram (the degraded-path histogram when the
// decision was a fallback answer, so fallback cost is measurable on its own).
// Pricing goes through the generation's model directly — not the backend's
// custom pricer — because regret compares against the analytical optimum the
// offline pipeline uses; fault-injected or measured pricers describe service,
// not the reference.
func (s *Server) measureRegret(smp regretSample) float64 {
	gen := smp.gen
	rp := gen.uniPool.Get().(*[]float64)
	row := *rp
	gen.universe.PriceRow(row, smp.shape)
	best := 0.0
	for _, v := range row {
		if v > best {
			best = v
		}
	}
	gen.uniPool.Put(rp)
	achieved := gen.model.GFLOPS(smp.cfg, smp.shape)
	regret := 0.0
	if best > 0 {
		// When the served config is the universe argmax, achieved and best are
		// the same pricing (PriceRow is bit-identical to the scalar model), so
		// the division is x/x and the regret is exactly 0.
		regret = 1 - achieved/best
		if regret < 0 {
			regret = 0
		} else if regret > 1 {
			regret = 1
		}
	}
	h := smp.be.regretHist
	if smp.degraded {
		h = smp.be.regretDegradedHist
	}
	h.observe(regret)
	return regret
}

// regretSettled reports whether every sample taken so far has been either
// measured or dropped — i.e. the background queue is drained. Tests poll it
// after traffic quiesces instead of sleeping.
func (be *backend) regretSettled() bool {
	measured := be.regretHist.count.Load() + be.regretDegradedHist.count.Load()
	return be.sampled.Load() == measured+be.regretDropped.Load()
}

// meanRegret reports the mean over a lib's choices on shapes, priced against
// gen's universe — the retrain gate's holdout quantity. Unlike the sampled
// path this is synchronous: the caller (the maintenance goroutine) is already
// off the request path.
func (s *Server) meanRegret(gen *generation, choose func(gemm.Shape) int, cfgs []gemm.Config, shapes []gemm.Shape) float64 {
	if len(shapes) == 0 {
		return 0
	}
	row := make([]float64, len(s.regretUniverse))
	sum := 0.0
	for _, sh := range shapes {
		gen.universe.PriceRow(row, sh)
		best := 0.0
		for _, v := range row {
			if v > best {
				best = v
			}
		}
		if best <= 0 {
			continue
		}
		achieved := gen.model.GFLOPS(cfgs[choose(sh)], sh)
		if r := 1 - achieved/best; r > 0 {
			sum += math.Min(r, 1)
		}
	}
	return sum / float64(len(shapes))
}
