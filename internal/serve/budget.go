package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// backend is one device's serving state. The swappable artifact state
// (library, pricer, cache, fallback) lives in the generation behind the
// atomic pointer; everything else — admission budget, latency EWMAs, shed
// and degradation counters, circuit breaker — describes the device itself
// and survives reloads.
type backend struct {
	name   string
	custom Pricer // non-nil when the Backend supplied its own pricer; kept across reloads
	gen    atomic.Pointer[generation]

	// Admission budget: a token channel of budgetCap slots. One token per
	// select/batch request; exhaustion degrades to the fallback config
	// instead of queueing or erroring.
	budget    chan struct{}
	budgetCap int

	inflight atomic.Int64
	shed     atomic.Uint64
	degraded [numReasons]atomic.Uint64

	// coalesced counts cache-miss requests that rode another request's
	// pricing pass instead of running their own (single-flight followers).
	coalesced atomic.Uint64

	// latencyEWMA tracks full-service request latency (float64 nanosecond
	// bits); the load-aware shed threshold compares against it.
	// computeEWMA tracks only cache-miss pricing passes: the estimate for
	// "is the remaining deadline long enough to price the library?".
	latencyEWMA atomic.Uint64
	computeEWMA atomic.Uint64

	breaker breaker

	// Closed-loop state (regret.go, window.go, retrain.go). Like the budget
	// and EWMAs it describes the device's live traffic, not the artifact, so
	// it survives reloads. decisions counts every served decision; sampled +
	// unsampled partition it exactly (the accounting invariant the property
	// tests pin). regretDropped counts samples lost to a full measurement
	// queue, so sampled == measured + queued + dropped at all times.
	decisions     atomic.Uint64
	sampled       atomic.Uint64
	unsampled     atomic.Uint64
	regretDropped atomic.Uint64

	regretHist         *valueHistogram // sampled full-service decision regret
	regretDegradedHist *valueHistogram // sampled degraded-path (fallback) regret

	window    *shapeWindow             // served-shape sliding window; nil disables the loop
	driftRef  atomic.Pointer[shapeMix] // reference mix drift is scored against
	driftBits atomic.Uint64            // latest PSI score, float64 bits

	retrainBusy     atomic.Bool // one shadow retrain per backend at a time
	retrainPromoted atomic.Uint64
	retrainRejected atomic.Uint64
	retrainErrors   atomic.Uint64
	fallbackUpdates atomic.Uint64 // online fallback-config swaps

	// Cumulative bases for counters that otherwise reset with each
	// generation: Reload folds the displaced generation's cache hit/miss
	// counts into the bases and the warm pass counts shapes here directly,
	// so the rendered Prometheus counters stay monotonic across swaps.
	cacheHitsBase   atomic.Uint64
	cacheMissesBase atomic.Uint64
	warmedTotal     atomic.Uint64

	// reloadCall coalesces concurrent POST /v1/reload requests for this
	// backend: overlapping requests ride the leader's source read + swap and
	// answer with the same generation, so a reload storm (the cluster
	// router's peer-warm cutover retries, a misfiring deploy hook) builds one
	// generation instead of racing to build N and discarding N-1.
	reloadMu   sync.Mutex
	reloadCall *reloadCall
}

// reloadCall is one in-flight coalesced reload: the leader populates the
// result fields and closes done; followers block on done and read them.
type reloadCall struct {
	done   chan struct{}
	joined atomic.Int32 // requests riding this flight, leader included
	genID  uint64
	name   string // selector name of the library that was swapped in
	cfgs   int    // its configuration count
	err    error
}

// joinReload returns the backend's in-flight reload call, creating it (and
// electing the caller leader) when none is running. The leader must call
// finishReload exactly once.
func (be *backend) joinReload() (c *reloadCall, leader bool) {
	be.reloadMu.Lock()
	defer be.reloadMu.Unlock()
	if c := be.reloadCall; c != nil {
		c.joined.Add(1)
		return c, false
	}
	c = &reloadCall{done: make(chan struct{})}
	c.joined.Add(1)
	be.reloadCall = c
	return c, true
}

// finishReload publishes the leader's result to every coalesced follower and
// opens the door for the next reload. Requests that arrive after this point
// start a fresh reload — only overlapping requests coalesce.
func (be *backend) finishReload(c *reloadCall) {
	be.reloadMu.Lock()
	be.reloadCall = nil
	be.reloadMu.Unlock()
	close(c.done)
}

// acquire takes one budget token, reporting false when the budget is
// exhausted. The returned release must be called exactly once; tokens are
// conserved by construction (channel send/receive pairs).
func (be *backend) acquire() (release func(), ok bool) {
	select {
	case be.budget <- struct{}{}:
		return func() { <-be.budget }, true
	default:
		return nil, false
	}
}

// budgetFree reports the tokens currently available.
func (be *backend) budgetFree() int { return be.budgetCap - len(be.budget) }

// overloaded reports whether the backend's full-service latency EWMA exceeds
// the shed threshold (0 disables shedding).
func (be *backend) overloaded(threshold time.Duration) bool {
	return threshold > 0 && ewmaValue(&be.latencyEWMA) > threshold
}

// ewmaAlpha is the smoothing factor of the latency EWMAs: recent requests
// dominate within ~5 observations, so the shed threshold reacts to a load
// spike in a handful of requests rather than minutes of history.
const ewmaAlpha = 0.2

// ewmaObserve folds one duration into an atomically-stored EWMA (float64
// bits; zero means "no observations yet" and the first sample seeds it).
func ewmaObserve(a *atomic.Uint64, d time.Duration) {
	for {
		old := a.Load()
		v := float64(d.Nanoseconds())
		if old != 0 {
			v = ewmaAlpha*v + (1-ewmaAlpha)*math.Float64frombits(old)
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func ewmaValue(a *atomic.Uint64) time.Duration {
	b := a.Load()
	if b == 0 {
		return 0
	}
	return time.Duration(math.Float64frombits(b))
}

// degradeReason enumerates why a request was answered with the fallback
// config instead of a full selection; it labels selectd_degraded_total.
type degradeReason int

const (
	reasonBudget   degradeReason = iota // admission budget exhausted
	reasonDeadline                      // remaining deadline shorter than a pricing pass
	reasonBreaker                       // circuit breaker open
	reasonError                         // pricing failed on this request
	numReasons
)

var reasonNames = [numReasons]string{"budget", "deadline", "breaker", "error"}

// breakerState is the circuit breaker's tri-state.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// breaker trips a backend to fallback-only service after `threshold`
// consecutive pricing failures, and half-opens after `cooldown`: one trial
// request is let through; success closes the breaker, failure re-opens it.
// Context aborts are not failures — a starved deadline says nothing about
// the pricing path — so trials that die to a deadline just release the trial
// slot (onAbort).
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     breakerState
	fails     int
	openedAt  time.Time
	trial     bool // a half-open trial request is in flight
	trips     uint64
}

// allow reports whether a full-service attempt may proceed at `now`.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.trial = true
			return true
		}
		return false
	default: // half-open: one trial at a time
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.trial = false
}

func (b *breaker) onFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	wasTrial := b.state == breakerHalfOpen
	b.trial = false
	if wasTrial || b.fails >= b.threshold {
		if b.state != breakerOpen {
			b.trips++
		}
		b.state = breakerOpen
		b.openedAt = now
		b.fails = 0
	}
}

// onAbort releases a trial slot without judging the pricing path (the
// request died to its deadline, not to a pricing failure).
func (b *breaker) onAbort() {
	b.mu.Lock()
	b.trial = false
	b.mu.Unlock()
}

// snapshot reports the state and trip count for metrics and healthz.
func (b *breaker) snapshot() (breakerState, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}

// BudgetsQuiesced reports whether every backend's admission budget is fully
// replenished and its in-flight gauge has returned to zero — true once all
// traffic has drained. Cross-package chaos harnesses poll it to assert token
// conservation without reaching into admission internals.
func (s *Server) BudgetsQuiesced() bool {
	for _, be := range s.backends {
		if be.budgetFree() != be.budgetCap || be.inflight.Load() != 0 {
			return false
		}
	}
	return true
}
