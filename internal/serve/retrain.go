package serve

import (
	"fmt"
	"math"
	"sort"
	"time"

	"kernelselect/internal/core"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
)

// The maintenance pass is the decision half of the closed loop. It reads the
// served-shape window and, per backend: (1) scores distribution drift against
// the training-time reference mix, (2) relearns the degraded-mode fallback
// config from the observed distribution, and (3) when drift crosses the
// threshold and a RetrainFunc is installed, shadow-retrains the selector on
// the blended window and promotes the candidate through the normal Reload
// path — but only after two gates pass on a fixed holdout probe of the blend:
// compiled-vs-interpreted agreement, and mean regret no worse than the
// incumbent's. A rejected candidate is counted and logged and never touches
// live traffic.

// RetrainFunc trains a candidate library for one device over a shape mix.
// It runs on the maintenance goroutine — never on a request path — so it may
// take as long as an offline training run. Returning an error abandons the
// attempt (counted in selectd_retrain_errors_total).
type RetrainFunc func(device string, model *sim.Model, shapes []gemm.Shape) (*core.Library, error)

// RetrainEvent records one shadow-retrain attempt for operators and tests.
type RetrainEvent struct {
	Device          string  `json:"device"`
	Drift           float64 `json:"drift"`
	Accepted        bool    `json:"accepted"`
	Reason          string  `json:"reason"`
	Generation      uint64  `json:"generation,omitempty"` // promoted generation (accepted only)
	Selector        string  `json:"selector,omitempty"`   // candidate's selector name
	CandidateRegret float64 `json:"candidate_regret"`     // mean holdout regret
	IncumbentRegret float64 `json:"incumbent_regret"`
}

// retrainEventCap bounds the in-memory event log; older events age out.
const retrainEventCap = 256

// RetrainEvents returns a copy of the recorded shadow-retrain attempts,
// oldest first.
func (s *Server) RetrainEvents() []RetrainEvent {
	s.eventsMu.Lock()
	defer s.eventsMu.Unlock()
	out := make([]RetrainEvent, len(s.events))
	copy(out, s.events)
	return out
}

func (s *Server) recordRetrain(ev RetrainEvent) {
	s.eventsMu.Lock()
	s.events = append(s.events, ev)
	if len(s.events) > retrainEventCap {
		s.events = s.events[len(s.events)-retrainEventCap:]
	}
	s.eventsMu.Unlock()
	if s.opts.OnRetrain != nil {
		s.opts.OnRetrain(ev)
	}
}

// driftScore reports the backend's latest PSI drift score (the
// selectd_drift_score gauge).
func (be *backend) driftScore() float64 {
	return math.Float64frombits(be.driftBits.Load())
}

// Maintain runs one synchronous maintenance pass over every backend: drift
// scoring, fallback relearning, and — when warranted — a shadow retrain
// including its gates and promotion. Production drives it from the background
// loop (Options.MaintainInterval); tests and operators may call it directly
// for a deterministic step with no wall-clock dependence.
func (s *Server) Maintain() {
	for _, be := range s.backends {
		s.maintain(be)
	}
}

func (s *Server) maintain(be *backend) {
	if be.window == nil {
		return
	}
	win := be.window.snapshot()
	if len(win) == 0 {
		return
	}
	ref := *be.driftRef.Load()
	score := driftPSI(ref, win)
	be.driftBits.Store(math.Float64bits(score))

	gen := be.gen.Load()
	if len(win) >= minFallbackWindow {
		s.learnFallback(be, gen, win)
	}
	if s.opts.Retrain != nil && score > s.opts.DriftThreshold && len(win) >= s.opts.RetrainMinWindow {
		// One retrain per backend at a time; overlapping maintenance passes
		// skip rather than queue — the next pass re-evaluates fresh drift.
		if be.retrainBusy.CompareAndSwap(false, true) {
			s.runRetrain(be, gen, ref, win, score)
			be.retrainBusy.Store(false)
		}
	}
}

// maintainLoop drives Maintain on a ticker until the server closes.
func (s *Server) maintainLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Maintain()
		}
	}
}

// minFallbackWindow is the observation floor below which the fallback config
// stays as computed from the static shape set — a handful of requests is not
// a distribution.
const minFallbackWindow = 16

// learnFallback recomputes the generation's degraded-mode fallback config as
// the best weighted-geomean performer over the observed shape distribution,
// replacing the static-shapes choice the generation started with. The swap is
// a single atomic pointer store against the generation's fallback slot, so
// in-flight degraded answers see either the old or the new template, never a
// torn one.
func (s *Server) learnFallback(be *backend, gen *generation, win []gemm.Shape) {
	shapes, weights := distinctShapes(win)
	if len(shapes) == 0 {
		return
	}
	idx := weightedBestGeomeanIndex(gen.model, gen.lib.Configs, shapes, weights)
	if idx == gen.fb.Load().Index {
		return
	}
	cfg := gen.lib.Configs[idx]
	d := Decision{
		Device:     gen.device,
		Config:     cfg.String(),
		Index:      idx,
		KernelID:   cfg.KernelID(),
		Degraded:   true,
		Generation: gen.id,
	}
	gen.fb.Store(&d)
	be.fallbackUpdates.Add(1)
}

// distinctShapes collapses a window to its distinct shapes (first-seen order)
// and their observation counts.
func distinctShapes(win []gemm.Shape) ([]gemm.Shape, []float64) {
	index := make(map[gemm.Shape]int, len(win))
	shapes := make([]gemm.Shape, 0, len(win))
	weights := make([]float64, 0, len(win))
	for _, sh := range win {
		if i, ok := index[sh]; ok {
			weights[i]++
			continue
		}
		index[sh] = len(shapes)
		shapes = append(shapes, sh)
		weights = append(weights, 1)
	}
	return shapes, weights
}

// weightedBestGeomeanIndex is bestGeomeanIndex with per-shape observation
// weights: argmax over configs of Σ w·log(GFLOPS) — the geomean over the
// window with repeats, without pricing a shape more than once. Ties resolve
// to the lowest index.
func weightedBestGeomeanIndex(model *sim.Model, cfgs []gemm.Config, shapes []gemm.Shape, weights []float64) int {
	bp := model.Batch(cfgs)
	sums := make([]float64, len(cfgs))
	var row []sim.Breakdown
	for j, sh := range shapes {
		row = bp.PriceInto(row[:0], sh)
		for i := range sums {
			sums[i] += weights[j] * math.Log(row[i].GFLOPS)
		}
	}
	best, bestScore := 0, math.Inf(-1)
	for i, sum := range sums {
		if sum > bestScore {
			best, bestScore = i, sum
		}
	}
	return best
}

// blendShapes unions the reference mix's support with the window's distinct
// shapes, sorted so the retrain dataset is deterministic for a given mix.
func blendShapes(ref shapeMix, win []gemm.Shape) []gemm.Shape {
	seen := make(map[gemm.Shape]bool, len(ref)+len(win))
	out := make([]gemm.Shape, 0, len(ref)+len(win))
	for sh := range ref {
		if !seen[sh] {
			seen[sh] = true
			out = append(out, sh)
		}
	}
	for _, sh := range win {
		if !seen[sh] {
			seen[sh] = true
			out = append(out, sh)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.M != b.M {
			return a.M < b.M
		}
		if a.K != b.K {
			return a.K < b.K
		}
		return a.N < b.N
	})
	return out
}

// holdoutSlice carves every fourth shape of the blend into the fixed probe
// the gates score on. The probe is deliberately a subset of what the
// candidate trains on: a library selector's job is to compress the served
// mix into a lookup, so the gate asks "did retraining actually improve the
// shapes now being served" — both sides priced identically against the same
// universe, with the incumbent keeping its home-field advantage on every
// reference shape in the probe. Tiny blends (fewer than four shapes) probe
// everything.
func holdoutSlice(blend []gemm.Shape) []gemm.Shape {
	if len(blend) < 4 {
		return blend
	}
	holdout := make([]gemm.Shape, 0, len(blend)/4)
	for i := 3; i < len(blend); i += 4 {
		holdout = append(holdout, blend[i])
	}
	return holdout
}

// runRetrain executes one shadow-retrain attempt: train a candidate on the
// blended mix, then promote it through Reload only if both gates pass on the
// holdout probe. Failure of any step records the event and leaves live
// traffic untouched.
func (s *Server) runRetrain(be *backend, gen *generation, ref shapeMix, win []gemm.Shape, drift float64) {
	blend := blendShapes(ref, win)
	holdout := holdoutSlice(blend)

	cand, err := s.opts.Retrain(be.name, gen.model, blend)
	if err != nil || cand == nil || len(cand.Configs) == 0 {
		be.retrainErrors.Add(1)
		reason := "retrain returned an empty library"
		if err != nil {
			reason = fmt.Sprintf("retrain failed: %v", err)
		}
		s.recordRetrain(RetrainEvent{Device: be.name, Drift: drift, Reason: reason})
		return
	}

	// Gate 1: if the candidate's selector compiles, the compiled form must
	// agree with the interpreted one on every holdout and fallback shape —
	// the same seatbelt every generation swap wears, checked before the swap
	// instead of silently falling back after it.
	if choose, ok := cand.CompiledChooser(); ok {
		for _, sh := range holdout {
			if choose(sh) != cand.ChooseIndex(sh) {
				s.rejectRetrain(be, drift, cand, "compiled selector disagrees with interpreted on holdout", 0, 0)
				return
			}
		}
		for _, sh := range s.fallbackShapes {
			if choose(sh) != cand.ChooseIndex(sh) {
				s.rejectRetrain(be, drift, cand, "compiled selector disagrees with interpreted on fallback shapes", 0, 0)
				return
			}
		}
	}

	// Gate 2: the candidate's mean regret on the holdout probe must not
	// exceed the incumbent's. Both sides are priced against the same universe
	// on the same shapes, so a candidate can only pass by actually serving
	// the blended mix at least as well as the incumbent does.
	candR := s.meanRegret(gen, cand.ChooseIndex, cand.Configs, holdout)
	incR := s.meanRegret(gen, gen.lib.ChooseIndex, gen.lib.Configs, holdout)
	if candR > incR+1e-12 {
		s.rejectRetrain(be, drift, cand,
			fmt.Sprintf("holdout regret %.4f worse than incumbent %.4f", candR, incR), candR, incR)
		return
	}

	id, err := s.Reload(be.name, cand, nil)
	if err != nil {
		be.retrainErrors.Add(1)
		s.recordRetrain(RetrainEvent{Device: be.name, Drift: drift, Selector: cand.SelectorName(),
			Reason: fmt.Sprintf("promotion reload failed: %v", err), CandidateRegret: candR, IncumbentRegret: incR})
		return
	}
	// The window that triggered the retrain becomes the new reference mix —
	// not the blend: the blend weights every union shape uniformly, which
	// matches neither past nor present traffic, so scoring drift against it
	// keeps the score high and re-fires an identical retrain every pass
	// (each promotion wiping the decision cache). Against the window, drift
	// measures departure from the traffic the selector was just adapted to,
	// and the loop settles until the mix genuinely moves again.
	mix := mixOf(win)
	be.driftRef.Store(&mix)
	be.retrainPromoted.Add(1)
	s.recordRetrain(RetrainEvent{Device: be.name, Drift: drift, Accepted: true, Reason: "promoted",
		Generation: id, Selector: cand.SelectorName(), CandidateRegret: candR, IncumbentRegret: incR})
}

func (s *Server) rejectRetrain(be *backend, drift float64, cand *core.Library, reason string, candR, incR float64) {
	be.retrainRejected.Add(1)
	s.recordRetrain(RetrainEvent{Device: be.name, Drift: drift, Selector: cand.SelectorName(),
		Reason: reason, CandidateRegret: candR, IncumbentRegret: incR})
}
