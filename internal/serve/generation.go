package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"kernelselect/internal/core"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
)

// Pricer prices one configuration on one shape. The production
// implementation adapts *sim.Model (which cannot fail); the indirection
// exists so tests can wrap pricing with fault injection (latency spikes,
// errors, cancellations) and so a future remote pricing service has a seam.
type Pricer interface {
	PriceGFLOPS(ctx context.Context, cfg gemm.Config, s gemm.Shape) (float64, error)
}

// modelPricer adapts the analytical device model to the Pricer seam.
type modelPricer struct{ m *sim.Model }

func (p modelPricer) PriceGFLOPS(_ context.Context, cfg gemm.Config, s gemm.Shape) (float64, error) {
	return p.m.GFLOPS(cfg, s), nil
}

// generation is one immutable epoch of a backend's serving state: the
// library, the pricer that prices its decisions, a decision cache private to
// this epoch, and the precomputed fallback decision served under
// degradation. Reload builds a fresh generation and swaps the backend's
// atomic pointer; requests that loaded the old pointer keep serving against
// it until they finish, so a response's config always belongs to the
// generation stamped on it, and a stale generation's cache entries can never
// leak into the new epoch (the new generation starts with an empty cache).
type generation struct {
	id     uint64
	device string
	lib    *core.Library
	model  *sim.Model
	pricer Pricer
	cache  *decisionCache

	// fb holds the degraded-mode fallback template (Shape/DegradedReason
	// filled per request). It is a pointer swapped atomically because the
	// maintenance pass relearns the fallback config online from the served
	// shape window (retrain.go) while degraded requests read it.
	fb atomic.Pointer[Decision]

	// choose maps a shape to the library's configuration index. When the
	// library's selector compiles (core.CompiledChooser) and the compiled
	// form is verified identical to the interpreted one over the fallback
	// shape set, choose is the allocation-free compiled chooser and compiled
	// is true; otherwise it is lib.ChooseIndex. Either way it returns the
	// exact same index — compilation is a speedup, never a behaviour change.
	choose   func(gemm.Shape) int
	compiled bool

	// flight coalesces concurrent cache misses per shape; scoping it to the
	// generation means followers can only ever receive decisions priced by
	// this epoch's library.
	flight flightGroup

	// batch is the vectorized pricing pass over the library's configuration
	// list, non-nil only when pricing goes through the analytical model
	// (modelPricer). Custom pricers — fault injection, measured pricing —
	// keep the per-configuration loop so their per-call seams (latency,
	// errors, cancellation points) are preserved. rowPool recycles the
	// per-miss GFLOPS row so the batch miss path allocates nothing.
	batch   *sim.BatchPricer
	rowPool sync.Pool

	// universe is the vectorized pricing pass over the regret config
	// universe (gemm.AllConfigs by default), built only when the closed loop
	// is on. The regret worker and the retrain gates price against it; it
	// always goes through the analytical model — regret compares to the
	// reference optimum, not to an injected or measured pricer. uniPool
	// recycles the universe-sized GFLOPS row.
	universe *sim.BatchPricer
	uniPool  sync.Pool

	// configsJSON is the /v1/configs response body, rendered once per
	// generation (the response depends on nothing else). infoLine is the
	// generation's selectd_info metric line, likewise static per epoch.
	configsJSON []byte
	infoLine    string

	// Speculative warming state (see warm.go). warmTotal is the number of
	// shapes the warm pass will price; warmed counts shapes cached so far;
	// warmDone latches once every warm shape is cached. warmStop cancels the
	// pass — Reload calls it on the displaced generation so at most one warm
	// pass runs per backend.
	warmTotal int
	warmed    atomic.Uint64
	warmDone  atomic.Bool
	warmStop  context.CancelFunc
}

// newGeneration allocates the next epoch for a device. The fallback decision,
// compiled chooser and /v1/configs body are computed here — once per reload,
// never per request — so the hot path does no per-request setup work.
func (s *Server) newGeneration(device string, lib *core.Library, model *sim.Model, pricer Pricer) *generation {
	id := s.genCounter.Add(1)
	fb := fallbackDecision(device, lib, model, s.fallbackShapes)
	fb.Generation = id
	g := &generation{
		id:     id,
		device: device,
		lib:    lib,
		model:  model,
		pricer: pricer,
		cache:  newDecisionCache(s.opts.CacheSize, s.opts.CacheShards),
	}
	g.fb.Store(&fb)
	if _, ok := pricer.(modelPricer); ok {
		g.batch = model.Batch(lib.Configs)
		g.rowPool.New = func() any { r := make([]float64, len(lib.Configs)); return &r }
	}
	if len(s.regretUniverse) > 0 {
		g.universe = model.Batch(s.regretUniverse)
		n := len(s.regretUniverse)
		g.uniPool.New = func() any { r := make([]float64, n); return &r }
	}
	if lib.Unified() {
		g.choose, g.compiled = compileUnifiedChooser(lib, model, s.fallbackShapes)
	} else {
		g.choose, g.compiled = compileChooser(lib, s.fallbackShapes)
	}
	g.configsJSON = renderConfigs(g)
	g.infoLine = fmt.Sprintf("selectd_info{selector=%q,device=%q} 1\n", lib.SelectorName(), device)
	return g
}

// compileChooser returns the library's compiled chooser after verifying it
// agrees with the interpreted selector on every verification shape, or the
// interpreted ChooseIndex when no compiled form exists. The verification
// sweep is the serving-side seatbelt on the compiler's byte-identical
// guarantee: a disagreement (which the core tests make unreachable) falls
// back to the interpreted path instead of serving wrong kernels.
func compileChooser(lib *core.Library, verify []gemm.Shape) (func(gemm.Shape) int, bool) {
	choose, ok := lib.CompiledChooser()
	if !ok {
		return lib.ChooseIndex, false
	}
	for _, sh := range verify {
		if choose(sh) != lib.ChooseIndex(sh) {
			return lib.ChooseIndex, false
		}
	}
	return choose, true
}

// compileUnifiedChooser is compileChooser for a unified (device-feature-
// augmented) library: the backend's device feature vector is appended to
// every shape at dispatch, so one artifact answers every device. The
// compiled form (device features baked into stack scratch) is used only
// after it agrees with the interpreted unified chooser on every verification
// shape. A width mismatch is unreachable here — NewMulti and Reload validate
// the pairing before building a generation — but degrades to the same
// first-configuration clamp the core library applies to misuse.
func compileUnifiedChooser(lib *core.Library, model *sim.Model, verify []gemm.Shape) (func(gemm.Shape) int, bool) {
	dev := model.Dev.Features()
	interp, err := lib.UnifiedChooser(dev)
	if err != nil {
		return func(gemm.Shape) int { return 0 }, false
	}
	compiled, ok := lib.UnifiedCompiledChooser(dev)
	if !ok {
		return interp, false
	}
	for _, sh := range verify {
		if compiled(sh) != interp(sh) {
			return interp, false
		}
	}
	return compiled, true
}

// renderConfigs renders the generation's /v1/configs body, newline-terminated
// to match the json.Encoder framing the endpoint used to produce.
func renderConfigs(g *generation) []byte {
	resp := configsResponse{
		Device:     g.device,
		Selector:   g.lib.SelectorName(),
		Generation: g.id,
		Count:      len(g.lib.Configs),
	}
	for _, c := range g.lib.Configs {
		resp.Configs = append(resp.Configs, c.String())
		resp.KernelIDs = append(resp.KernelIDs, c.KernelID())
	}
	b, err := json.Marshal(resp)
	if err != nil {
		return []byte("{}\n")
	}
	return append(b, '\n')
}

// fallbackDecision precomputes the answer served under degradation: the
// library configuration with the best geometric-mean modelled GFLOPS across
// the fallback shape set (the paper's dataset by default). The geomean is
// the same aggregate the offline pipeline ranks configurations by, so the
// fallback is the single config you would ship if the library could hold
// only one. Degraded responses carry no per-shape prediction (that would
// cost the pricing pass degradation exists to avoid), so the predicted
// fields stay zero.
func fallbackDecision(device string, lib *core.Library, model *sim.Model, shapes []gemm.Shape) Decision {
	idx := bestGeomeanIndex(model, lib.Configs, shapes)
	cfg := lib.Configs[idx]
	return Decision{
		Device:   device,
		Config:   cfg.String(),
		Index:    idx,
		KernelID: cfg.KernelID(),
		Degraded: true,
	}
}

// bestGeomeanIndex returns the index of the configuration with the highest
// geometric-mean GFLOPS over shapes; ties resolve to the lowest index so the
// result is deterministic.
func bestGeomeanIndex(model *sim.Model, cfgs []gemm.Config, shapes []gemm.Shape) int {
	if len(shapes) == 0 {
		return 0
	}
	// One batch pass per shape accumulates every configuration's log sum in
	// shape order — the same per-config addition sequence as the per-config
	// loop this replaces, so the winner is unchanged.
	bp := model.Batch(cfgs)
	sums := make([]float64, len(cfgs))
	var row []sim.Breakdown
	for _, s := range shapes {
		row = bp.PriceInto(row[:0], s)
		for i := range sums {
			sums[i] += math.Log(row[i].GFLOPS)
		}
	}
	best, bestScore := 0, math.Inf(-1)
	for i, sum := range sums {
		if score := sum / float64(len(shapes)); score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// compute runs the selector and prices every library configuration on the
// shape, so the decision carries its predicted normalized performance — the
// paper's Table-I quantity, per request. Model-priced generations take the
// vectorized batch pass (one struct-of-arrays sweep, no per-config calls);
// custom pricers keep the per-configuration loop, where the deadline is
// checked between configurations — pricing the whole library is the
// handler's only unbounded work, so an expired context aborts here rather
// than running to completion after the client has given up. A pricing error
// aborts the pass; the caller maps it to a degraded fallback response and
// feeds the circuit breaker.
func (g *generation) compute(ctx context.Context, shape gemm.Shape) (Decision, error) {
	idx := g.choose(shape)
	cfgs := g.lib.Configs
	best, chosen := 0.0, 0.0
	if g.batch != nil {
		// The batch pass prices the library in tens of microseconds, so one
		// deadline check up front suffices.
		if err := ctx.Err(); err != nil {
			return Decision{}, err
		}
		rp := g.rowPool.Get().(*[]float64)
		row := *rp
		g.batch.PriceRow(row, shape)
		for i, v := range row {
			if v > best {
				best = v
			}
			if i == idx {
				chosen = v
			}
		}
		g.rowPool.Put(rp)
	} else {
		for i, cfg := range cfgs {
			if err := ctx.Err(); err != nil {
				return Decision{}, err
			}
			v, err := g.pricer.PriceGFLOPS(ctx, cfg, shape)
			if err != nil {
				return Decision{}, err
			}
			if v > best {
				best = v
			}
			if i == idx {
				chosen = v
			}
		}
	}
	norm := 0.0
	if best > 0 {
		norm = chosen / best
	}
	return Decision{
		Device:          g.device,
		Shape:           shape.String(),
		Config:          cfgs[idx].String(),
		Index:           idx,
		KernelID:        cfgs[idx].KernelID(),
		PredictedGFLOPS: chosen,
		PredictedNorm:   norm,
		Generation:      g.id,
	}, nil
}

// ReloadSource produces a fresh library (and optionally a fresh model; nil
// keeps the current one) for a device. selectd installs one that re-reads
// the -library artifact path, or retrains in-process, so POST /v1/reload and
// SIGHUP pick up new artifacts without a restart.
type ReloadSource func(device string) (*core.Library, *sim.Model, error)

// SetReloadSource installs the callback POST /v1/reload uses to obtain a new
// library. Install it before serving traffic; without one the endpoint
// reports 503.
func (s *Server) SetReloadSource(f ReloadSource) { s.reloadSource = f }

// Reload atomically swaps the named backend (empty = default) onto a new
// library, and optionally a new device model (nil keeps the current one).
// In-flight requests finish against the generation they loaded; every
// request admitted after Reload returns sees the new library. The new
// generation starts with an empty decision cache — decisions priced against
// the old library are unreachable the moment the swap lands — and a freshly
// computed fallback config. The backend's budget, latency EWMA and circuit
// breaker survive the swap: they describe the device, not the artifact.
// Returns the new generation id.
func (s *Server) Reload(device string, lib *core.Library, model *sim.Model) (uint64, error) {
	be, err := s.backend(device)
	if err != nil {
		return 0, err
	}
	if lib == nil {
		return 0, errors.New("serve: reload with a nil library")
	}
	cur := be.gen.Load()
	if model == nil {
		model = cur.model
	}
	// A backend's dispatch kind is fixed at construction: swapping a unified
	// backend onto a shape-only library (or the reverse) would silently change
	// what the selector consumes. This is exactly what a shadow retrain would
	// do if its shape-trained candidate reached a unified backend — the error
	// surfaces in the RetrainEvent instead of being served.
	if lib.Unified() != cur.lib.Unified() {
		kind := func(u bool) string {
			if u {
				return "unified"
			}
			return "shape-only"
		}
		return 0, fmt.Errorf("serve: reload for %q: new library is %s but the backend serves a %s library",
			be.name, kind(lib.Unified()), kind(cur.lib.Unified()))
	}
	if lib.Unified() {
		if _, err := lib.UnifiedChooser(model.Dev.Features()); err != nil {
			return 0, fmt.Errorf("serve: reload for %q: %v", be.name, err)
		}
	}
	pricer := be.custom
	if pricer == nil {
		pricer = modelPricer{model}
	}
	gen := s.newGeneration(be.name, lib, model, pricer)
	// Warm before publishing (so no request observes uninitialised warm
	// bookkeeping), then cancel the displaced generation's pass after the
	// swap: at most one warm pass runs per backend, and a reload landing
	// mid-warm abandons the old cache the same instant it becomes
	// unreachable.
	s.startWarm(be, gen)
	be.gen.Store(gen)
	cur.stopWarm()
	// Fold the displaced generation's cache counters into the backend's
	// cumulative bases so selectd_cache_{hits,misses}_total stay monotonic
	// across the swap. In-flight requests still finishing against the old
	// generation may bump its counters after this snapshot; those few
	// straggler counts are dropped rather than risking a decrease.
	hits, misses := cur.cache.stats()
	be.cacheHitsBase.Add(hits)
	be.cacheMissesBase.Add(misses)
	// A fresh generation's fallback starts from the static shape set; when
	// the window has already observed enough live traffic, relearn it from
	// the observed distribution immediately rather than waiting a
	// maintenance tick.
	if be.window != nil {
		if win := be.window.snapshot(); len(win) >= minFallbackWindow {
			s.learnFallback(be, gen, win)
		}
	}
	return gen.id, nil
}
