package serve

import (
	"context"
	"errors"
	"math"

	"kernelselect/internal/core"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
)

// Pricer prices one configuration on one shape. The production
// implementation adapts *sim.Model (which cannot fail); the indirection
// exists so tests can wrap pricing with fault injection (latency spikes,
// errors, cancellations) and so a future remote pricing service has a seam.
type Pricer interface {
	PriceGFLOPS(ctx context.Context, cfg gemm.Config, s gemm.Shape) (float64, error)
}

// modelPricer adapts the analytical device model to the Pricer seam.
type modelPricer struct{ m *sim.Model }

func (p modelPricer) PriceGFLOPS(_ context.Context, cfg gemm.Config, s gemm.Shape) (float64, error) {
	return p.m.GFLOPS(cfg, s), nil
}

// generation is one immutable epoch of a backend's serving state: the
// library, the pricer that prices its decisions, a decision cache private to
// this epoch, and the precomputed fallback decision served under
// degradation. Reload builds a fresh generation and swaps the backend's
// atomic pointer; requests that loaded the old pointer keep serving against
// it until they finish, so a response's config always belongs to the
// generation stamped on it, and a stale generation's cache entries can never
// leak into the new epoch (the new generation starts with an empty cache).
type generation struct {
	id       uint64
	device   string
	lib      *core.Library
	model    *sim.Model
	pricer   Pricer
	cache    *decisionCache
	fallback Decision // template: Shape/DegradedReason filled per request
}

// newGeneration allocates the next epoch for a device. The fallback decision
// is computed here — once per reload, never per request — so degradation
// stays O(1) on the hot path.
func (s *Server) newGeneration(device string, lib *core.Library, model *sim.Model, pricer Pricer) *generation {
	id := s.genCounter.Add(1)
	fb := fallbackDecision(device, lib, model, s.fallbackShapes)
	fb.Generation = id
	return &generation{
		id:       id,
		device:   device,
		lib:      lib,
		model:    model,
		pricer:   pricer,
		cache:    newDecisionCache(s.opts.CacheSize, s.opts.CacheShards),
		fallback: fb,
	}
}

// fallbackDecision precomputes the answer served under degradation: the
// library configuration with the best geometric-mean modelled GFLOPS across
// the fallback shape set (the paper's dataset by default). The geomean is
// the same aggregate the offline pipeline ranks configurations by, so the
// fallback is the single config you would ship if the library could hold
// only one. Degraded responses carry no per-shape prediction (that would
// cost the pricing pass degradation exists to avoid), so the predicted
// fields stay zero.
func fallbackDecision(device string, lib *core.Library, model *sim.Model, shapes []gemm.Shape) Decision {
	idx := bestGeomeanIndex(model, lib.Configs, shapes)
	cfg := lib.Configs[idx]
	return Decision{
		Device:   device,
		Config:   cfg.String(),
		Index:    idx,
		KernelID: cfg.KernelID(),
		Degraded: true,
	}
}

// bestGeomeanIndex returns the index of the configuration with the highest
// geometric-mean GFLOPS over shapes; ties resolve to the lowest index so the
// result is deterministic.
func bestGeomeanIndex(model *sim.Model, cfgs []gemm.Config, shapes []gemm.Shape) int {
	if len(shapes) == 0 {
		return 0
	}
	best, bestScore := 0, math.Inf(-1)
	for i, cfg := range cfgs {
		sum := 0.0
		for _, s := range shapes {
			sum += math.Log(model.GFLOPS(cfg, s))
		}
		if score := sum / float64(len(shapes)); score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// compute runs the selector and prices every library configuration on the
// shape, so the decision carries its predicted normalized performance — the
// paper's Table-I quantity, per request. The deadline is checked between
// configurations: pricing the whole library is the handler's only unbounded
// work, so an expired context aborts here rather than running to completion
// after the client has given up. A pricing error aborts the pass; the
// caller maps it to a degraded fallback response and feeds the circuit
// breaker.
func (g *generation) compute(ctx context.Context, shape gemm.Shape) (Decision, error) {
	idx := g.lib.ChooseIndex(shape)
	cfgs := g.lib.Configs
	best, chosen := 0.0, 0.0
	for i, cfg := range cfgs {
		if err := ctx.Err(); err != nil {
			return Decision{}, err
		}
		v, err := g.pricer.PriceGFLOPS(ctx, cfg, shape)
		if err != nil {
			return Decision{}, err
		}
		if v > best {
			best = v
		}
		if i == idx {
			chosen = v
		}
	}
	norm := 0.0
	if best > 0 {
		norm = chosen / best
	}
	return Decision{
		Device:          g.device,
		Shape:           shape.String(),
		Config:          cfgs[idx].String(),
		Index:           idx,
		KernelID:        cfgs[idx].KernelID(),
		PredictedGFLOPS: chosen,
		PredictedNorm:   norm,
		Generation:      g.id,
	}, nil
}

// ReloadSource produces a fresh library (and optionally a fresh model; nil
// keeps the current one) for a device. selectd installs one that re-reads
// the -library artifact path, or retrains in-process, so POST /v1/reload and
// SIGHUP pick up new artifacts without a restart.
type ReloadSource func(device string) (*core.Library, *sim.Model, error)

// SetReloadSource installs the callback POST /v1/reload uses to obtain a new
// library. Install it before serving traffic; without one the endpoint
// reports 503.
func (s *Server) SetReloadSource(f ReloadSource) { s.reloadSource = f }

// Reload atomically swaps the named backend (empty = default) onto a new
// library, and optionally a new device model (nil keeps the current one).
// In-flight requests finish against the generation they loaded; every
// request admitted after Reload returns sees the new library. The new
// generation starts with an empty decision cache — decisions priced against
// the old library are unreachable the moment the swap lands — and a freshly
// computed fallback config. The backend's budget, latency EWMA and circuit
// breaker survive the swap: they describe the device, not the artifact.
// Returns the new generation id.
func (s *Server) Reload(device string, lib *core.Library, model *sim.Model) (uint64, error) {
	be, err := s.backend(device)
	if err != nil {
		return 0, err
	}
	if lib == nil {
		return 0, errors.New("serve: reload with a nil library")
	}
	cur := be.gen.Load()
	if model == nil {
		model = cur.model
	}
	pricer := be.custom
	if pricer == nil {
		pricer = modelPricer{model}
	}
	gen := s.newGeneration(be.name, lib, model, pricer)
	be.gen.Store(gen)
	return gen.id, nil
}
