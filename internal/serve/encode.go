package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
)

// This file is the wire half of the zero-allocation hot path. The stdlib
// json Encoder/Decoder are correct but allocate per request (decoder state,
// reflection scratch, the bytes.Buffer inside Encode); at cache-hit rates
// that allocation is most of the handler. Instead, request bodies land in a
// pooled buffer, a hand-rolled scanner handles the overwhelmingly common
// {"m":..,"k":..,"n":..,"device":".."} form, and responses are appended into
// the same pooled buffer with strconv. Anything the fast scanner is unsure
// about falls back to the strict stdlib decoder, so error semantics (unknown
// fields, trailing garbage, type mismatches) stay byte-for-byte identical.

// maxRequestBody caps request bodies, as before through http.MaxBytesReader
// semantics: oversized bodies answer 413 and poison the connection.
const maxRequestBody = 8 << 20

// bufPool holds the per-request scratch: the body is read into it, then it
// is reset and the response is encoded into it. Steady-state requests touch
// the heap zero times for I/O.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

var jsonContentType = []string{"application/json"}

// readBody reads the request body into buf (the pooled scratch), growing it
// only when a body outsizes the pool's capacity. Declared-length bodies take
// the exact-read fast path; chunked bodies fall back to a capped ReadAll.
// Errors map exactly onto the old MaxBytesReader behaviour.
func readBody(w http.ResponseWriter, r *http.Request, buf []byte) ([]byte, error) {
	if n := r.ContentLength; n >= 0 {
		if n > maxRequestBody {
			return buf[:0], &http.MaxBytesError{Limit: maxRequestBody}
		}
		if int64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r.Body, buf); err != nil {
			return buf[:0], fmt.Errorf("decoding request body: %w", err)
		}
		return buf, nil
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		return buf[:0], err
	}
	return body, nil
}

// decodeStrict is the slow-path decoder with the exact semantics decodeBody
// always had: unknown fields and trailing garbage are errors, an empty body
// surfaces as io.EOF.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return err
		}
		return fmt.Errorf("decoding request body: %w", err)
	}
	if dec.More() {
		return errors.New("trailing data after request body")
	}
	return nil
}

// parsedSelect is the fast scanner's output; device aliases the body buffer
// and must be consumed before the buffer is reused.
type parsedSelect struct {
	m, k, n int
	device  []byte
}

// parseSelectBody scans the canonical select request form without
// allocating. It accepts exactly the object {"m":int,"k":int,"n":int,
// "device":"simple string"} with fields in any order, duplicates last-wins
// (matching encoding/json), and arbitrary whitespace. It reports ok=false —
// punting to the strict decoder — for anything else: non-integer numbers,
// escaped or non-ASCII strings, unknown fields, nested values, trailing
// bytes. False negatives only cost speed; false positives are impossible
// because the scanner accepts a strict subset of what encoding/json accepts.
func parseSelectBody(body []byte) (p parsedSelect, ok bool) {
	i := skipSpace(body, 0)
	if i >= len(body) || body[i] != '{' {
		return p, false
	}
	i = skipSpace(body, i+1)
	if i < len(body) && body[i] == '}' {
		// Empty object: all fields zero — shape validation rejects it with
		// the same 400 the stdlib path produces.
		return p, end(body, i+1)
	}
	for {
		key, j, kok := scanString(body, i)
		if !kok {
			return p, false
		}
		i = skipSpace(body, j)
		if i >= len(body) || body[i] != ':' {
			return p, false
		}
		i = skipSpace(body, i+1)
		switch {
		case len(key) == 1 && (key[0] == 'm' || key[0] == 'k' || key[0] == 'n'):
			v, j, vok := scanInt(body, i)
			if !vok {
				return p, false
			}
			switch key[0] {
			case 'm':
				p.m = v
			case 'k':
				p.k = v
			default:
				p.n = v
			}
			i = j
		case bytes.Equal(key, []byte("device")):
			v, j, vok := scanString(body, i)
			if !vok {
				return p, false
			}
			p.device = v
			i = j
		default:
			return p, false // unknown field: let the strict decoder reject it
		}
		i = skipSpace(body, i)
		if i >= len(body) {
			return p, false
		}
		if body[i] == '}' {
			return p, end(body, i+1)
		}
		if body[i] != ',' {
			return p, false
		}
		i = skipSpace(body, i+1)
	}
}

func skipSpace(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// end reports whether only whitespace remains — the no-trailing-garbage rule.
func end(b []byte, i int) bool { return skipSpace(b, i) == len(b) }

// scanString scans a double-quoted string containing no escapes and no bytes
// the encoder would need to escape; anything fancier punts to the stdlib.
func scanString(b []byte, i int) (s []byte, next int, ok bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, i, false
	}
	j := i + 1
	for j < len(b) {
		c := b[j]
		if c == '"' {
			return b[i+1 : j], j + 1, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return nil, i, false
		}
		j++
	}
	return nil, i, false
}

// scanInt scans an optionally-negative decimal integer. Floats, exponents
// and overlong digit runs punt to the stdlib so type-mismatch errors keep
// their exact stdlib text.
func scanInt(b []byte, i int) (v, next int, ok bool) {
	j := i
	neg := false
	if j < len(b) && b[j] == '-' {
		neg = true
		j++
	}
	start := j
	for j < len(b) && b[j] >= '0' && b[j] <= '9' {
		v = v*10 + int(b[j]-'0')
		j++
	}
	if j == start || j-start > 18 {
		return 0, i, false
	}
	if j < len(b) && (b[j] == '.' || b[j] == 'e' || b[j] == 'E') {
		return 0, i, false
	}
	if neg {
		v = -v
	}
	return v, j, true
}

// ---------------------------------------------------------------------------
// Append-style response encoding
// ---------------------------------------------------------------------------

// appendJSONFloat appends a float in encoding/json's exact format: shortest
// representation, 'f' form unless the magnitude forces the 'e' form, with the
// exponent's leading zero trimmed.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		// encoding/json refuses these; decisions never carry them, but keep
		// the encoder total.
		return append(b, '0')
	}
	format := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendJSONString appends a quoted string. The fast path covers strings the
// encoder would pass through verbatim (printable ASCII minus the characters
// encoding/json escapes, HTML-safe mode included); anything else round-trips
// through json.Marshal so escaping is exactly the stdlib's.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, err := json.Marshal(s)
			if err != nil {
				return append(append(b, '"'), '"')
			}
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendDecision appends one Decision exactly as encoding/json renders it:
// same field order, same omitempty behaviour, same number formatting.
func appendDecision(b []byte, d *Decision) []byte {
	b = append(b, `{"device":`...)
	b = appendJSONString(b, d.Device)
	b = append(b, `,"shape":`...)
	b = appendJSONString(b, d.Shape)
	b = append(b, `,"config":`...)
	b = appendJSONString(b, d.Config)
	b = append(b, `,"index":`...)
	b = strconv.AppendInt(b, int64(d.Index), 10)
	b = append(b, `,"kernel_id":`...)
	b = appendJSONString(b, d.KernelID)
	b = append(b, `,"predicted_gflops":`...)
	b = appendJSONFloat(b, d.PredictedGFLOPS)
	b = append(b, `,"predicted_norm":`...)
	b = appendJSONFloat(b, d.PredictedNorm)
	b = append(b, `,"cached":`...)
	b = strconv.AppendBool(b, d.Cached)
	b = append(b, `,"generation":`...)
	b = strconv.AppendUint(b, d.Generation, 10)
	if d.Degraded {
		b = append(b, `,"degraded":true`...)
	}
	if d.DegradedReason != "" {
		b = append(b, `,"degraded_reason":`...)
		b = appendJSONString(b, d.DegradedReason)
	}
	return append(b, '}')
}

// appendBatch appends a batchResponse body.
func appendBatch(b []byte, results []Decision) []byte {
	b = append(b, `{"results":[`...)
	for i := range results {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendDecision(b, &results[i])
	}
	return append(b, `]}`...)
}

// writeRawJSON writes a pre-encoded JSON body without the Encoder's
// allocations. The trailing newline matches json.Encoder.Encode, so clients
// and tests see byte-identical bodies either way.
func writeRawJSON(w http.ResponseWriter, code int, body []byte) {
	h := w.Header()
	h["Content-Type"] = jsonContentType
	w.WriteHeader(code)
	_, _ = w.Write(body)
}
