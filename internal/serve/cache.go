package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"kernelselect/internal/gemm"
	"kernelselect/internal/xrand"
)

// decisionCache is a sharded LRU of kernel-selection decisions keyed by GEMM
// shape. Repeat shapes dominate serving traffic — a neural network asks for
// the same layer shapes on every training step — so hit rates in steady
// state approach 100% and the cache turns per-request pricing into a map
// lookup. Sharding (shape-hashed, power-of-two shard count) keeps lock
// contention negligible under concurrent handlers.
type decisionCache struct {
	shards []cacheShard
	mask   uint64
	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[gemm.Shape]*list.Element
}

type cacheEntry struct {
	key gemm.Shape
	dec Decision
}

// newDecisionCache builds a cache of roughly `capacity` total entries spread
// over `shards` shards (both floored to sane minimums; shards is rounded up
// to a power of two). A capacity <= 0 returns nil — the no-cache mode.
func newDecisionCache(capacity, shards int) *decisionCache {
	if capacity <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	pow := 1
	for pow < shards {
		pow <<= 1
	}
	shards = pow
	if shards > capacity {
		shards = 1
	}
	perShard := (capacity + shards - 1) / shards
	c := &decisionCache{shards: make([]cacheShard, shards), mask: uint64(shards - 1)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:   perShard,
			order: list.New(),
			byKey: make(map[gemm.Shape]*list.Element, perShard),
		}
	}
	return c
}

func (c *decisionCache) shard(s gemm.Shape) *cacheShard {
	h := xrand.Hash64(uint64(s.M), uint64(s.K), uint64(s.N))
	return &c.shards[h&c.mask]
}

// get returns the cached decision for the shape, refreshing its recency.
func (c *decisionCache) get(s gemm.Shape) (Decision, bool) {
	if c == nil {
		return Decision{}, false
	}
	sh := c.shard(s)
	sh.mu.Lock()
	el, ok := sh.byKey[s]
	if ok {
		sh.order.MoveToFront(el)
		dec := el.Value.(*cacheEntry).dec
		sh.mu.Unlock()
		c.hits.Add(1)
		return dec, true
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return Decision{}, false
}

// put inserts (or refreshes) a decision, evicting the shard's least recently
// used entry when full.
func (c *decisionCache) put(s gemm.Shape, d Decision) {
	if c == nil {
		return
	}
	sh := c.shard(s)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.byKey[s]; ok {
		el.Value.(*cacheEntry).dec = d
		sh.order.MoveToFront(el)
		return
	}
	if sh.order.Len() >= sh.cap {
		oldest := sh.order.Back()
		if oldest != nil {
			sh.order.Remove(oldest)
			delete(sh.byKey, oldest.Value.(*cacheEntry).key)
		}
	}
	sh.byKey[s] = sh.order.PushFront(&cacheEntry{key: s, dec: d})
}

// forEach calls fn for every cached decision. It exists for invariant
// checks (the chaos suite asserts no degraded or aborted decision is ever
// cached); each shard is locked only while it is walked.
func (c *decisionCache) forEach(fn func(Decision)) {
	if c == nil {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			fn(el.Value.(*cacheEntry).dec)
		}
		sh.mu.Unlock()
	}
}

// len returns the total number of cached decisions.
func (c *decisionCache) len() int {
	if c == nil {
		return 0
	}
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += sh.order.Len()
		sh.mu.Unlock()
	}
	return total
}

// stats returns cumulative hit and miss counts.
func (c *decisionCache) stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
