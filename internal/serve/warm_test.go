package serve

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kernelselect/internal/device"
	"kernelselect/internal/sim"
	"kernelselect/internal/workload"
)

// waitWarm blocks until the generation's warm pass completes or the test
// deadline expires.
func waitWarm(t *testing.T, gen *generation) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !gen.warmDone.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("warm pass did not complete: %d/%d shapes", gen.warmed.Load(), gen.warmTotal)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWarmFillsCache is the steady-state guarantee: with warming enabled,
// every warm shape is a cache hit before the first client request arrives,
// and the warm progress is visible on /healthz and /metrics.
func TestWarmFillsCache(t *testing.T) {
	model := sim.New(device.R9Nano())
	lib := buildLib(t, model, 6)
	srv := New(lib, model, Options{FallbackShapes: reloadShapes, Warm: true})
	be := srv.backends[0]
	gen := be.gen.Load()
	waitWarm(t, gen)

	if n := gen.cache.len(); n != len(reloadShapes) {
		t.Fatalf("warm cache holds %d entries, want %d", n, len(reloadShapes))
	}
	for _, s := range reloadShapes {
		d, err := srv.decide(context.Background(), be, s)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Cached {
			t.Fatalf("shape %v missed the cache after warm completion", s)
		}
		if d.Degraded || d.PredictedGFLOPS <= 0 || d.Generation != gen.id {
			t.Fatalf("warm decision for %v is not full quality: %+v", s, d)
		}
		if d.Config != lib.Configs[d.Index].String() || d.Index != lib.ChooseIndex(s) {
			t.Fatalf("warm decision for %v disagrees with the library: %+v", s, d)
		}
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz := decodeResp[healthzResponse](t, resp)
	b := hz.Backends[0]
	if !b.WarmComplete || b.WarmShapes != len(reloadShapes) || b.Warmed != uint64(len(reloadShapes)) {
		t.Fatalf("healthz warm state %+v, want complete %d/%d", b, len(reloadShapes), len(reloadShapes))
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`selectd_warm_complete{device="` + model.Dev.Name + `"} 1`,
		`selectd_warm_shapes_total{device="` + model.Dev.Name + `"} 12`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// Without warming (the default), a generation reports vacuous completion so
// healthz never blocks readiness on a pass that will not run.
func TestWarmDisabledVacuouslyComplete(t *testing.T) {
	model := sim.New(device.R9Nano())
	srv := New(buildLib(t, model, 4), model, Options{FallbackShapes: reloadShapes})
	gen := srv.backends[0].gen.Load()
	total, warmed, done := gen.warmSnapshot()
	if !done || total != 0 || warmed != 0 {
		t.Fatalf("warm state %d/%d done=%v, want vacuous 0/0 done", warmed, total, done)
	}
	if n := gen.cache.len(); n != 0 {
		t.Fatalf("disabled warming cached %d entries", n)
	}
}

// TestReloadMidWarmNoStaleEntries reloads repeatedly while warm passes are in
// flight: the displaced generations' passes are cancelled, and once the final
// generation finishes warming its cache must contain only its own entries —
// full-quality decisions stamped with the final generation id. A stale
// generation's warm worker writing into a newer cache would fail the audit.
func TestReloadMidWarmNoStaleEntries(t *testing.T) {
	shapes, _ := workload.DatasetShapes()
	model := sim.New(device.R9Nano())
	libA := buildLib(t, model, 6)
	libB := buildLib(t, model, 4)
	srv := New(libA, model, Options{FallbackShapes: reloadShapes, Warm: true, WarmShapes: shapes})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	before := metricsSnapshot(t, ts)

	// Swap libraries back and forth with no settling time, landing every
	// reload mid-warm.
	for i := 0; i < 8; i++ {
		lib := libA
		if i%2 == 0 {
			lib = libB
		}
		if _, err := srv.Reload("", lib, nil); err != nil {
			t.Fatal(err)
		}
	}
	gen := srv.backends[0].gen.Load()
	waitWarm(t, gen)

	// The warm counter is cumulative across the displaced generations'
	// partial passes — it may only grow through the storm, and the final
	// complete pass alone accounts for every warm shape.
	after := metricsSnapshot(t, ts)
	assertCountersMonotonic(t, before, after)
	if warmed := after[`selectd_warm_shapes_total{device="amd-r9-nano"}`]; warmed < float64(len(shapes)) {
		t.Errorf("cumulative warm counter %v after a complete pass over %d shapes", warmed, len(shapes))
	}

	audited := 0
	gen.cache.forEach(func(d Decision) {
		audited++
		if d.Generation != gen.id {
			t.Errorf("cache entry from generation %d in generation %d's cache", d.Generation, gen.id)
		}
		if d.Degraded || d.PredictedGFLOPS <= 0 {
			t.Errorf("degraded or unpriced warm entry cached: %+v", d)
		}
	})
	if audited != len(shapes) {
		t.Fatalf("final cache holds %d entries, want %d", audited, len(shapes))
	}
}
