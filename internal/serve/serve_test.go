package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
	"kernelselect/internal/workload"
)

// testServer builds a server over a small sim-priced library: 24 shapes ×
// 160 configurations keeps setup under a second while exercising the real
// pricing path.
func testServer(t testing.TB, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	model := sim.New(device.R9Nano())
	shapes := []gemm.Shape{
		{M: 1, K: 4096, N: 1000}, {M: 4, K: 4096, N: 1000}, {M: 16, K: 4096, N: 1000},
		{M: 3136, K: 64, N: 64}, {M: 12544, K: 64, N: 64}, {M: 3136, K: 576, N: 128},
		{M: 784, K: 1152, N: 256}, {M: 196, K: 2304, N: 512}, {M: 49, K: 4608, N: 512},
		{M: 12544, K: 27, N: 32}, {M: 49, K: 960, N: 160}, {M: 196, K: 384, N: 64},
		{M: 784, K: 144, N: 24}, {M: 3136, K: 32, N: 192}, {M: 12544, K: 16, N: 96},
		{M: 100352, K: 3, N: 64}, {M: 49, K: 320, N: 1280}, {M: 196, K: 96, N: 576},
		{M: 784, K: 24, N: 144}, {M: 3136, K: 128, N: 128}, {M: 196, K: 512, N: 512},
		{M: 1, K: 25088, N: 4096}, {M: 64, K: 25088, N: 4096}, {M: 50176, K: 64, N: 64},
	}
	ds := dataset.Build(model, shapes, gemm.AllConfigs()[:160])
	lib := core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 6, 42)
	srv := New(lib, model, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t testing.TB, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeResp[T any](t testing.TB, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func TestSelectRoundTrip(t *testing.T) {
	srv, ts := testServer(t, Options{})
	resp := postJSON(t, ts.URL+"/v1/select", shapeRequest{M: 784, K: 1152, N: 256})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	d := decodeResp[Decision](t, resp)

	want := srv.Library().Choose(gemm.Shape{M: 784, K: 1152, N: 256})
	if d.Config != want.String() {
		t.Errorf("online chose %s, offline %s", d.Config, want)
	}
	if d.Shape != "784x1152x256" {
		t.Errorf("shape echoed as %q", d.Shape)
	}
	if d.KernelID != want.KernelID() {
		t.Errorf("kernel id %q, want %q", d.KernelID, want.KernelID())
	}
	if d.PredictedNorm <= 0 || d.PredictedNorm > 1 {
		t.Errorf("predicted norm %v out of (0,1]", d.PredictedNorm)
	}
	if d.PredictedGFLOPS <= 0 {
		t.Errorf("predicted gflops %v", d.PredictedGFLOPS)
	}
	if d.Cached {
		t.Error("first request reported as cached")
	}
}

func TestSelectRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t, Options{MaxBatch: 4})
	cases := []struct {
		name string
		url  string
		body string
	}{
		{"not json", "/v1/select", "}{"},
		{"unknown field", "/v1/select", `{"m":1,"k":1,"n":1,"q":9}`},
		{"zero dim", "/v1/select", `{"m":0,"k":1,"n":1}`},
		{"negative dim", "/v1/select", `{"m":-5,"k":1,"n":1}`},
		{"trailing garbage", "/v1/select", `{"m":1,"k":1,"n":1}{"m":2}`},
		{"empty batch", "/v1/select/batch", `{"shapes":[]}`},
		{"oversized batch", "/v1/select/batch", `{"shapes":[{"m":1,"k":1,"n":1},{"m":2,"k":1,"n":1},{"m":3,"k":1,"n":1},{"m":4,"k":1,"n":1},{"m":5,"k":1,"n":1}]}`},
		{"bad batch shape", "/v1/select/batch", `{"shapes":[{"m":1,"k":0,"n":1}]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/select")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST endpoint: status %d, want 405", resp.StatusCode)
	}
}

func TestConfigsEndpoint(t *testing.T) {
	srv, ts := testServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/configs")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	c := decodeResp[configsResponse](t, resp)
	if c.Selector != srv.Library().SelectorName() {
		t.Errorf("selector %q, want %q", c.Selector, srv.Library().SelectorName())
	}
	if c.Count != len(srv.Library().Configs) || len(c.Configs) != c.Count || len(c.KernelIDs) != c.Count {
		t.Fatalf("count %d, %d configs, %d kernel ids", c.Count, len(c.Configs), len(c.KernelIDs))
	}
	for i, name := range c.Configs {
		if name != srv.Library().Configs[i].String() {
			t.Errorf("config %d: %q, want %q", i, name, srv.Library().Configs[i])
		}
	}
}

func TestHealthzAndDraining(t *testing.T) {
	srv, ts := testServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy: status %d", resp.StatusCode)
	}

	var draining atomic.Bool
	srv.SetDrainCheck(draining.Load)
	draining.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterSeconds {
		t.Errorf("draining Retry-After = %q, want %q", got, retryAfterSeconds)
	}
}

// metricValue extracts the first sample matching the (possibly labelled)
// metric name prefix from a Prometheus text page.
func metricValue(t testing.TB, page, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, prefix) {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("parsing metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %q not found in:\n%s", prefix, page)
	return 0
}

func metricsPage(t testing.TB, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// metricsSnapshot parses the full /metrics page into series → value, keyed by
// the complete `name{labels}` form, so tests can diff two scrapes.
func metricsSnapshot(t testing.TB, ts *httptest.Server) map[string]float64 {
	t.Helper()
	snap := make(map[string]float64)
	for _, line := range strings.Split(metricsPage(t, ts), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("parsing metric line %q: %v", line, err)
		}
		snap[line[:i]] = v
	}
	return snap
}

// assertCountersMonotonic enforces the Prometheus counter contract between
// two snapshots of the same server: every *_total series present in the
// earlier scrape must still exist and must not have decreased — generation
// swaps may not reset cumulative series.
func assertCountersMonotonic(t testing.TB, before, after map[string]float64) {
	t.Helper()
	for series, b := range before {
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasSuffix(name, "_total") {
			continue
		}
		a, ok := after[series]
		if !ok {
			t.Errorf("counter %s disappeared between scrapes", series)
			continue
		}
		if a < b {
			t.Errorf("counter %s moved backwards: %v -> %v", series, b, a)
		}
	}
}

func TestRepeatedShapeHitsCache(t *testing.T) {
	_, ts := testServer(t, Options{})
	req := shapeRequest{M: 3136, K: 576, N: 128}

	first := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", req))
	if first.Cached {
		t.Fatal("first request claimed a cache hit")
	}
	second := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", req))
	if !second.Cached {
		t.Fatal("repeat request missed the cache")
	}
	if second.Config != first.Config || second.PredictedNorm != first.PredictedNorm {
		t.Fatalf("cache changed the decision: %+v vs %+v", first, second)
	}

	page := metricsPage(t, ts)
	if hits := metricValue(t, page, "selectd_cache_hits_total"); hits < 1 {
		t.Errorf("cache hits %v, want >= 1", hits)
	}
	if entries := metricValue(t, page, "selectd_cache_entries"); entries < 1 {
		t.Errorf("cache entries %v, want >= 1", entries)
	}
}

func TestCacheDisabled(t *testing.T) {
	_, ts := testServer(t, Options{CacheSize: -1})
	req := shapeRequest{M: 3136, K: 576, N: 128}
	decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", req))
	d := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", req))
	if d.Cached {
		t.Fatal("disabled cache reported a hit")
	}
}

func TestMetricsPage(t *testing.T) {
	_, ts := testServer(t, Options{})
	decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", shapeRequest{M: 49, K: 960, N: 160}))

	page := metricsPage(t, ts)
	if got := metricValue(t, page, `selectd_requests_total{endpoint="select",code="200"}`); got != 1 {
		t.Errorf("select 200 count %v, want 1", got)
	}
	if got := metricValue(t, page, `selectd_request_seconds_count{endpoint="select"}`); got != 1 {
		t.Errorf("latency observation count %v, want 1", got)
	}
	if got := metricValue(t, page, `selectd_request_seconds_bucket{endpoint="select",le="+Inf"}`); got != 1 {
		t.Errorf("+Inf bucket %v, want 1", got)
	}
	// Histogram buckets must be cumulative (non-decreasing).
	re := regexp.MustCompile(`selectd_request_seconds_bucket\{endpoint="select",le="[^"]+"\} (\d+)`)
	last := -1.0
	for _, m := range re.FindAllStringSubmatch(page, -1) {
		v, _ := strconv.ParseFloat(m[1], 64)
		if v < last {
			t.Fatalf("histogram buckets not cumulative:\n%s", page)
		}
		last = v
	}
	if !strings.Contains(page, `selectd_info{selector="DecisionTree",device="amd-r9-nano"}`) {
		t.Error("selector/device labels missing from selectd_info")
	}
}

// Budget exhaustion no longer errors: the request is answered with the
// backend's fallback config, marked degraded, and kept out of the cache and
// the latency histogram.
func TestBudgetExhaustionDegrades(t *testing.T) {
	srv, ts := testServer(t, Options{MaxInFlight: 2})
	be := srv.backends[0]

	// Saturate the backend's admission budget directly — the deterministic
	// equivalent of two requests parked in handlers.
	rel1, ok1 := be.acquire()
	rel2, ok2 := be.acquire()
	if !ok1 || !ok2 {
		t.Fatal("could not saturate a 2-token budget")
	}
	d := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", shapeRequest{M: 10, K: 10, N: 10}))
	if !d.Degraded || d.DegradedReason != "budget" {
		t.Fatalf("saturated request not degraded(budget): %+v", d)
	}
	if d.Config != be.gen.Load().fb.Load().Config {
		t.Errorf("degraded config %q, want fallback %q", d.Config, be.gen.Load().fb.Load().Config)
	}
	if _, ok := be.gen.Load().cache.get(gemm.Shape{M: 10, K: 10, N: 10}); ok {
		t.Error("degraded decision was cached")
	}
	rel1()
	rel2()

	// Capacity restored: the same request gets full service.
	d = decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", shapeRequest{M: 10, K: 10, N: 10}))
	if d.Degraded {
		t.Fatalf("request degraded after budget release: %+v", d)
	}

	page := metricsPage(t, ts)
	if got := metricValue(t, page, `selectd_degraded_total{device="amd-r9-nano",reason="budget"}`); got != 1 {
		t.Errorf("degraded(budget) counter %v, want 1", got)
	}
	// Degraded responses do almost no work, so they must not contribute
	// (zero-duration) observations to the latency histogram: only the
	// full-service 200 counts.
	if got := metricValue(t, page, `selectd_request_seconds_count{endpoint="select"}`); got != 1 {
		t.Errorf("latency observations %v, want 1 (degraded must not be observed)", got)
	}
	if free := metricValue(t, page, `selectd_budget_tokens{device="amd-r9-nano"}`); free != 2 {
		t.Errorf("budget tokens %v, want 2 after release", free)
	}
}

// When a backend's full-service latency EWMA exceeds the shed threshold, new
// uncached requests draw 429 and count toward the per-device shed series —
// without a latency observation.
func TestShedsAtLatencyThreshold(t *testing.T) {
	srv, ts := testServer(t, Options{ShedLatency: time.Millisecond})
	be := srv.backends[0]
	ewmaObserve(&be.latencyEWMA, 50*time.Millisecond)

	resp := postJSON(t, ts.URL+"/v1/select", shapeRequest{M: 10, K: 10, N: 10})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterSeconds {
		t.Errorf("shed Retry-After = %q, want %q", got, retryAfterSeconds)
	}
	resp.Body.Close()

	page := metricsPage(t, ts)
	if shed := metricValue(t, page, `selectd_shed_total{device="amd-r9-nano"}`); shed != 1 {
		t.Errorf("shed counter %v, want 1", shed)
	}
	if got := metricValue(t, page, `selectd_requests_total{endpoint="select",code="429"}`); got != 1 {
		t.Errorf("429 count %v, want 1", got)
	}
	if got := metricValue(t, page, `selectd_request_seconds_count{endpoint="select"}`); got != 0 {
		t.Errorf("latency observations %v, want 0 (sheds must not be observed)", got)
	}

	// A cached shape keeps serving at full quality through the overload.
	be.latencyEWMA.Store(0)
	warm := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", shapeRequest{M: 10, K: 10, N: 10}))
	if warm.Cached || warm.Degraded {
		t.Fatalf("warmup response unexpected: %+v", warm)
	}
	ewmaObserve(&be.latencyEWMA, 50*time.Millisecond)
	hit := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", shapeRequest{M: 10, K: 10, N: 10}))
	if !hit.Cached || hit.Degraded {
		t.Fatalf("cache hit should bypass shedding: %+v", hit)
	}
}

func TestBatchDeadlineExceeded(t *testing.T) {
	_, ts := testServer(t, Options{RequestTimeout: time.Nanosecond})
	resp := postJSON(t, ts.URL+"/v1/select/batch", batchRequest{
		Shapes: []batchShape{{M: 7, K: 7, N: 7}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterSeconds {
		t.Errorf("deadline Retry-After = %q, want %q", got, retryAfterSeconds)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	srv, ts := testServer(t, Options{})
	shapes := []batchShape{
		{M: 784, K: 1152, N: 256}, {M: 1, K: 4096, N: 1000}, {M: 3136, K: 64, N: 64},
	}
	resp := postJSON(t, ts.URL+"/v1/select/batch", batchRequest{Shapes: shapes})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	b := decodeResp[batchResponse](t, resp)
	if len(b.Results) != len(shapes) {
		t.Fatalf("%d results for %d shapes", len(b.Results), len(shapes))
	}
	for i, d := range b.Results {
		s := gemm.Shape{M: shapes[i].M, K: shapes[i].K, N: shapes[i].N}
		if want := srv.Library().Choose(s); d.Config != want.String() {
			t.Errorf("shape %v: online %s, offline %s", s, d.Config, want)
		}
	}
}

// TestBatchAgreesWithOfflineOnDataset is the acceptance check: the served
// decisions for every shape of the paper's 170-shape dataset must match the
// offline selection path exactly, over the full 640-configuration space.
func TestBatchAgreesWithOfflineOnDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("full-dataset pricing in -short mode")
	}
	model := sim.New(device.R9Nano())
	shapes, _ := workload.DatasetShapes()
	ds := dataset.Build(model, shapes, gemm.AllConfigs())
	lib := core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 8, 42)
	srv := New(lib, model, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqs := make([]batchShape, len(shapes))
	for i, s := range shapes {
		reqs[i] = batchShape{M: s.M, K: s.K, N: s.N}
	}
	resp := postJSON(t, ts.URL+"/v1/select/batch", batchRequest{Shapes: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	b := decodeResp[batchResponse](t, resp)
	if len(b.Results) != len(shapes) {
		t.Fatalf("%d results for %d shapes", len(b.Results), len(shapes))
	}
	for i, d := range b.Results {
		offline := lib.Choose(shapes[i])
		if d.Config != offline.String() {
			t.Errorf("shape %v: online %s, offline %s", shapes[i], d.Config, offline)
		}
		if d.Index != lib.ChooseIndex(shapes[i]) {
			t.Errorf("shape %v: online index %d, offline %d", shapes[i], d.Index, lib.ChooseIndex(shapes[i]))
		}
	}
	if len(shapes) != 170 {
		t.Logf("note: dataset regenerated %d shapes (paper reports 170)", len(shapes))
	}
}

// TestConcurrentTrafficConsistency hammers select and batch concurrently and
// checks every response agrees with the offline path — the race detector
// covers the cache and metrics under this load.
func TestConcurrentTrafficConsistency(t *testing.T) {
	srv, ts := testServer(t, Options{CacheSize: 8, CacheShards: 2})
	probe := []gemm.Shape{
		{M: 784, K: 1152, N: 256}, {M: 1, K: 4096, N: 1000}, {M: 3136, K: 64, N: 64},
		{M: 49, K: 960, N: 160}, {M: 196, K: 384, N: 64}, {M: 12544, K: 16, N: 96},
		{M: 100352, K: 3, N: 64}, {M: 196, K: 512, N: 512}, {M: 3136, K: 32, N: 192},
		{M: 784, K: 24, N: 144}, {M: 49, K: 320, N: 1280}, {M: 16, K: 4096, N: 1000},
	}
	want := make(map[gemm.Shape]string, len(probe))
	for _, s := range probe {
		want[s] = srv.Library().Choose(s).String()
	}

	// The goroutines avoid the t.Fatal-based helpers: failures flow back on
	// the channel instead.
	query := func(s gemm.Shape) (Decision, error) {
		raw, err := json.Marshal(shapeRequest{M: s.M, K: s.K, N: s.N})
		if err != nil {
			return Decision{}, err
		}
		resp, err := http.Post(ts.URL+"/v1/select", "application/json", bytes.NewReader(raw))
		if err != nil {
			return Decision{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return Decision{}, fmt.Errorf("status %d", resp.StatusCode)
		}
		var d Decision
		err = json.NewDecoder(resp.Body).Decode(&d)
		return d, err
	}

	const goroutines = 8
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < 30; i++ {
				s := probe[(g+i)%len(probe)]
				d, err := query(s)
				if err != nil {
					errs <- err
					return
				}
				if d.Config != want[s] {
					errs <- fmt.Errorf("shape %v: got %s, want %s", s, d.Config, want[s])
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
