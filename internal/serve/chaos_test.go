package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/faultinject"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
)

// TestChaos drives a two-device server through seed-determined latency
// spikes, pricing errors, mid-request client cancellations, and concurrent
// hot reloads, then audits the resilience invariants:
//
//   - no panics and no unexplained statuses (only 200, 429, 503);
//   - every 200 response is internally consistent: its config sits at its
//     index in the library of the generation stamped on it;
//   - degraded responses name a reason; cached responses are never degraded;
//   - no degraded or aborted decision ends up in any cache — every cached
//     entry is full-quality, priced, and from the serving generation;
//   - admission budgets are conserved once traffic quiesces.
//
// The seed count comes from CHAOS_SEEDS (default 4); `make chaos` runs a
// wider sweep under -race. A failing seed reproduces with
// `CHAOS_SEEDS=1 CHAOS_BASE=<seed> go test -run TestChaos/seed=<seed>`.
func TestChaos(t *testing.T) {
	seeds := 4
	if v := os.Getenv("CHAOS_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad CHAOS_SEEDS %q", v)
		}
		seeds = n
	}
	base := uint64(1)
	if v := os.Getenv("CHAOS_BASE"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_BASE %q", v)
		}
		base = n
	}
	for i := 0; i < seeds; i++ {
		seed := base + uint64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			chaosRun(t, seed)
		})
	}
}

func chaosRun(t *testing.T, seed uint64) {
	inj := faultinject.New(seed, faultinject.Options{
		PriceError: 0.003,
		Spike:      0.02,
		SpikeMax:   100 * time.Microsecond,
		Cancel:     0.08,
		CancelMax:  300 * time.Microsecond,
	})

	// Two backends, each with an A and a B library to reload between; the
	// injector wraps every backend's pricing seam.
	type chaosBackend struct {
		name string
		libA *core.Library
		libB *core.Library
	}
	var cbs []chaosBackend
	var backends []Backend
	for _, spec := range []device.Spec{device.R9Nano(), device.IntegratedGen9()} {
		model := sim.New(spec)
		ds := dataset.Build(model, reloadShapes, gemm.AllConfigs()[:120])
		libA := core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 6, 42)
		libB := core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 4, 42)
		m := model
		pricer := inj.Pricer(faultinject.PricerFunc(
			func(_ context.Context, cfg gemm.Config, s gemm.Shape) (float64, error) {
				return m.GFLOPS(cfg, s), nil
			}))
		cbs = append(cbs, chaosBackend{name: spec.Name, libA: libA, libB: libB})
		backends = append(backends, Backend{Device: spec.Name, Lib: libA, Model: model, Pricer: pricer})
	}
	srv, err := NewMulti(backends, Options{
		MaxInFlight:      8,
		FallbackShapes:   reloadShapes,
		BreakerThreshold: 4,
		BreakerCooldown:  5 * time.Millisecond,
		RequestTimeout:   2 * time.Second,
		// Warm passes race the reload storm below: every swap cancels the
		// displaced generation's pass mid-flight, and the end-of-run cache
		// audit proves no stale-generation or degraded entry survives.
		Warm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(inj.Middleware(srv.Handler()))
	defer ts.Close()

	// libsByGen maps every generation id ever served to its library. Written
	// only by this goroutine (initial state + the reload loop below), read
	// only after the workers join.
	libsByGen := map[string]map[uint64]*core.Library{}
	for _, cb := range cbs {
		id, err := srv.Generation(cb.name)
		if err != nil {
			t.Fatal(err)
		}
		libsByGen[cb.name] = map[uint64]*core.Library{id: cb.libA}
	}

	type outcome struct {
		status  int
		device  string
		results []Decision
	}
	const goroutines = 8
	const perG = 30
	var wg sync.WaitGroup
	outcomes := make([][]outcome, goroutines)
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				dev := cbs[(g+i)%len(cbs)].name
				var url string
				var raw []byte
				if i%4 == 3 {
					url = ts.URL + "/v1/select/batch"
					a, b := reloadShapes[(g+i)%len(reloadShapes)], reloadShapes[(g+2*i)%len(reloadShapes)]
					raw, _ = json.Marshal(batchRequest{Device: dev, Shapes: []batchShape{
						{M: a.M, K: a.K, N: a.N}, {M: b.M, K: b.K, N: b.N},
					}})
				} else {
					url = ts.URL + "/v1/select"
					s := reloadShapes[(g*7+i)%len(reloadShapes)]
					raw, _ = json.Marshal(shapeRequest{M: s.M, K: s.K, N: s.N, Device: dev})
				}
				resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d request %d: %w", g, i, err)
					return
				}
				o := outcome{status: resp.StatusCode, device: dev}
				if resp.StatusCode == http.StatusOK {
					var body bytes.Buffer
					if _, err := body.ReadFrom(resp.Body); err == nil {
						var d Decision
						var br batchResponse
						if json.Unmarshal(body.Bytes(), &br) == nil && len(br.Results) > 0 {
							o.results = br.Results
						} else if json.Unmarshal(body.Bytes(), &d) == nil && d.Config != "" {
							o.results = []Decision{d}
						}
					}
				}
				resp.Body.Close()
				outcomes[g] = append(outcomes[g], o)
			}
		}(g)
	}

	// Reload both devices between their A and B libraries while the chaos
	// traffic runs — the reload-race injection.
	for i := 0; i < 10; i++ {
		for _, cb := range cbs {
			lib := cb.libA
			if i%2 == 0 {
				lib = cb.libB
			}
			id, err := srv.Reload(cb.name, lib, nil)
			if err != nil {
				t.Fatal(err)
			}
			libsByGen[cb.name][id] = lib
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Audit every outcome.
	var total, degradedN, abortedN int
	for g := range outcomes {
		for _, o := range outcomes[g] {
			total++
			switch o.status {
			case http.StatusOK:
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				abortedN++
				continue
			default:
				t.Fatalf("unexplained status %d", o.status)
			}
			for _, d := range o.results {
				lib, ok := libsByGen[o.device][d.Generation]
				if !ok {
					t.Fatalf("%s: response from unknown generation %d", o.device, d.Generation)
				}
				if d.Index < 0 || d.Index >= len(lib.Configs) || d.Config != lib.Configs[d.Index].String() {
					t.Fatalf("%s gen %d: config %q / index %d inconsistent with its library",
						o.device, d.Generation, d.Config, d.Index)
				}
				if !d.Degraded {
					// Full-quality decisions were chosen by the generation's
					// compiled chooser; they must match the interpreted
					// selector of the library that produced them, even across
					// mid-request reload swaps.
					var sh gemm.Shape
					if _, err := fmt.Sscanf(d.Shape, "%dx%dx%d", &sh.M, &sh.K, &sh.N); err != nil {
						t.Fatalf("%s: unparseable shape %q", o.device, d.Shape)
					}
					if want := lib.ChooseIndex(sh); d.Index != want {
						t.Fatalf("%s gen %d shape %s: served index %d, selector says %d",
							o.device, d.Generation, d.Shape, d.Index, want)
					}
				}
				if d.Degraded {
					degradedN++
					if d.DegradedReason == "" {
						t.Fatalf("degraded decision with no reason: %+v", d)
					}
					if d.Cached {
						t.Fatalf("cached degraded decision served: %+v", d)
					}
				}
			}
		}
	}
	if total != goroutines*perG {
		t.Fatalf("%d outcomes for %d requests", total, goroutines*perG)
	}

	// Budgets conserved and gauges zero once traffic quiesces (cancelled
	// requests may still be unwinding server-side when the client sees the
	// response, so poll briefly).
	deadline := time.Now().Add(2 * time.Second)
	for _, be := range srv.backends {
		for (be.budgetFree() != be.budgetCap || be.inflight.Load() != 0) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if free := be.budgetFree(); free != be.budgetCap {
			t.Errorf("%s: budget free %d, cap %d — token leaked", be.name, free, be.budgetCap)
		}
		if inflight := be.inflight.Load(); inflight != 0 {
			t.Errorf("%s: inflight gauge %d after quiesce", be.name, inflight)
		}
	}

	// Cache audit: the serving generation's cache may only hold full-quality
	// decisions — priced, non-degraded, stamped with that generation.
	for _, be := range srv.backends {
		gen := be.gen.Load()
		gen.cache.forEach(func(d Decision) {
			if d.Degraded {
				t.Errorf("%s: degraded decision cached: %+v", be.name, d)
			}
			if d.Generation != gen.id {
				t.Errorf("%s: cache holds generation %d entry in generation %d", be.name, d.Generation, gen.id)
			}
			if d.PredictedGFLOPS <= 0 {
				t.Errorf("%s: cached decision without a price: %+v", be.name, d)
			}
		})
	}

	st := inj.Stats()
	t.Logf("seed %d: %d requests (%d shed/aborted, %d degraded); injected %d spikes, %d errors, %d cancels",
		seed, total, abortedN, degradedN, st.Spikes, st.Errors, st.Cancels)
	if st.Spikes+st.Errors+st.Cancels == 0 {
		t.Error("injector fired no faults — chaos run exercised nothing")
	}
}
