package serve

import (
	"context"
	"math"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
)

// The fallback config must match the offline best-geomean computation
// exactly, across devices and library sizes.
func TestFallbackMatchesOfflineGeomean(t *testing.T) {
	shapes := reloadShapes
	cases := []struct {
		spec device.Spec
		n    int
	}{
		{device.R9Nano(), 4},
		{device.R9Nano(), 8},
		{device.IntegratedGen9(), 4},
		{device.IntegratedGen9(), 6},
		{device.EmbeddedMaliG72(), 4},
	}
	for _, tc := range cases {
		model := sim.New(tc.spec)
		ds := dataset.Build(model, shapes, gemm.AllConfigs()[:120])
		lib := core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, tc.n, 42)
		srv := New(lib, model, Options{FallbackShapes: shapes})

		// Offline: argmax over configs of the geometric-mean GFLOPS.
		best, bestScore := 0, math.Inf(-1)
		for i, cfg := range lib.Configs {
			sum := 0.0
			for _, s := range shapes {
				sum += math.Log(model.GFLOPS(cfg, s))
			}
			if score := sum / float64(len(shapes)); score > bestScore {
				best, bestScore = i, score
			}
		}

		fb := *srv.backends[0].gen.Load().fb.Load()
		if fb.Index != best {
			t.Errorf("%s n=%d: fallback index %d, offline geomean best %d", tc.spec.Name, tc.n, fb.Index, best)
		}
		if fb.Config != lib.Configs[best].String() {
			t.Errorf("%s n=%d: fallback config %q, want %q", tc.spec.Name, tc.n, fb.Config, lib.Configs[best])
		}
		if !fb.Degraded || fb.Generation == 0 {
			t.Errorf("%s n=%d: fallback template %+v not marked degraded/stamped", tc.spec.Name, tc.n, fb)
		}
	}
}

// When the compute-cost EWMA says the remaining deadline cannot cover a
// pricing pass, the request degrades immediately instead of starting work it
// must abandon.
func TestDeadlineTooShortDegrades(t *testing.T) {
	srv, ts := testServer(t, Options{RequestTimeout: 50 * time.Millisecond})
	be := srv.backends[0]
	// Teach the estimator that a pricing pass takes far longer than any
	// deadline this server hands out.
	ewmaObserve(&be.computeEWMA, 10*time.Second)

	d := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", shapeRequest{M: 11, K: 12, N: 13}))
	if !d.Degraded || d.DegradedReason != "deadline" {
		t.Fatalf("short-deadline request not degraded(deadline): %+v", d)
	}
	if _, ok := be.gen.Load().cache.get(gemm.Shape{M: 11, K: 12, N: 13}); ok {
		t.Fatal("deadline-degraded decision was cached")
	}
}

// flakyPricer fails while `failing` is set and prices through the model
// otherwise — the deterministic stand-in for a pricing dependency that goes
// down and recovers.
type flakyPricer struct {
	model   *sim.Model
	failing atomic.Bool
	calls   atomic.Uint64
}

type pricerError struct{}

func (pricerError) Error() string { return "pricing backend down" }

func (p *flakyPricer) PriceGFLOPS(_ context.Context, cfg gemm.Config, s gemm.Shape) (float64, error) {
	p.calls.Add(1)
	if p.failing.Load() {
		return 0, pricerError{}
	}
	return p.model.GFLOPS(cfg, s), nil
}

// The circuit breaker must trip to fallback-only after K consecutive pricing
// failures (serving degraded answers without touching the pricer), half-open
// after the cooldown, and close again on a successful trial.
func TestCircuitBreakerTripsAndRecovers(t *testing.T) {
	model := sim.New(device.R9Nano())
	lib := buildLib(t, model, 6)
	pricer := &flakyPricer{model: model}
	srv, err := NewMulti(
		[]Backend{{Device: model.Dev.Name, Lib: lib, Model: model, Pricer: pricer}},
		Options{FallbackShapes: reloadShapes, BreakerThreshold: 3, BreakerCooldown: 30 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	be := srv.backends[0]

	// Healthy: full service.
	d, err := srv.decide(context.Background(), be, gemm.Shape{M: 64, K: 64, N: 64})
	if err != nil || d.Degraded {
		t.Fatalf("healthy decide: %+v, %v", d, err)
	}

	// Pricing goes down: each attempt fails and degrades with reason
	// "error"; the third consecutive failure trips the breaker.
	pricer.failing.Store(true)
	for i := 0; i < 3; i++ {
		d, err := srv.decide(context.Background(), be, gemm.Shape{M: 100 + i, K: 7, N: 7})
		if err != nil || !d.Degraded || d.DegradedReason != "error" {
			t.Fatalf("failure %d: %+v, %v", i, d, err)
		}
		if _, ok := be.gen.Load().cache.get(gemm.Shape{M: 100 + i, K: 7, N: 7}); ok {
			t.Fatalf("failure %d: degraded decision cached", i)
		}
	}
	if state, trips := be.breaker.snapshot(); state != breakerOpen || trips != 1 {
		t.Fatalf("after threshold failures: state %v trips %d, want open/1", state, trips)
	}

	// Open: requests degrade with reason "breaker" and never call the
	// pricer.
	before := pricer.calls.Load()
	d, err = srv.decide(context.Background(), be, gemm.Shape{M: 200, K: 7, N: 7})
	if err != nil || !d.Degraded || d.DegradedReason != "breaker" {
		t.Fatalf("open-breaker decide: %+v, %v", d, err)
	}
	if pricer.calls.Load() != before {
		t.Fatal("open breaker still called the pricer")
	}

	// After the cooldown a trial goes through; with pricing recovered it
	// closes the breaker and full service resumes.
	pricer.failing.Store(false)
	time.Sleep(40 * time.Millisecond)
	d, err = srv.decide(context.Background(), be, gemm.Shape{M: 300, K: 7, N: 7})
	if err != nil || d.Degraded {
		t.Fatalf("trial decide: %+v, %v", d, err)
	}
	if state, _ := be.breaker.snapshot(); state != breakerClosed {
		t.Fatalf("after successful trial: state %v, want closed", state)
	}
}

// Breaker state-machine unit test: half-open failure re-opens (and
// re-counts a trip), concurrent trials are excluded, aborts release the
// trial slot without judging the pricing path.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := breaker{threshold: 2, cooldown: time.Second}

	if !b.allow(now) {
		t.Fatal("closed breaker refused")
	}
	b.onFailure(now)
	if !b.allow(now) {
		t.Fatal("one failure below threshold tripped")
	}
	b.onFailure(now)
	if b.allow(now) {
		t.Fatal("threshold failures did not trip")
	}
	if b.allow(now.Add(999 * time.Millisecond)) {
		t.Fatal("open breaker allowed before cooldown")
	}

	// Cooldown elapsed: exactly one trial may proceed.
	trialTime := now.Add(time.Second)
	if !b.allow(trialTime) {
		t.Fatal("half-open refused the trial")
	}
	if b.allow(trialTime) {
		t.Fatal("second concurrent trial allowed")
	}
	// Trial fails: straight back to open, one more trip.
	b.onFailure(trialTime)
	if state, trips := b.snapshot(); state != breakerOpen || trips != 2 {
		t.Fatalf("failed trial: state %v trips %d, want open/2", state, trips)
	}

	// Next trial aborts (deadline death): the slot frees without closing or
	// re-opening, so another trial may run and succeed.
	t2 := trialTime.Add(time.Second)
	if !b.allow(t2) {
		t.Fatal("second cooldown refused the trial")
	}
	b.onAbort()
	if !b.allow(t2) {
		t.Fatal("aborted trial did not release the slot")
	}
	b.onSuccess()
	if state, _ := b.snapshot(); state != breakerClosed {
		t.Fatalf("successful trial left state %v", state)
	}
	if !b.allow(t2) {
		t.Fatal("closed breaker refused after recovery")
	}
}

// The degraded and breaker series must appear on the metrics page with
// device and reason labels.
func TestDegradedMetricsSeries(t *testing.T) {
	srv, ts := testServer(t, Options{MaxInFlight: 1})
	be := srv.backends[0]
	rel, ok := be.acquire()
	if !ok {
		t.Fatal("could not take the only token")
	}
	resp := postJSON(t, ts.URL+"/v1/select", shapeRequest{M: 5, K: 5, N: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	resp.Body.Close()
	rel()

	page := metricsPage(t, ts)
	for _, metric := range []string{
		`selectd_degraded_total{device="amd-r9-nano",reason="budget"}`,
		`selectd_degraded_total{device="amd-r9-nano",reason="breaker"}`,
		`selectd_breaker_state{device="amd-r9-nano"}`,
		`selectd_breaker_trips_total{device="amd-r9-nano"}`,
		`selectd_generation{device="amd-r9-nano"}`,
		`selectd_budget_capacity{device="amd-r9-nano"}`,
	} {
		metricValue(t, page, metric) // fails the test if the series is absent
	}
	if got := metricValue(t, page, `selectd_degraded_total{device="amd-r9-nano",reason="budget"}`); got != 1 {
		t.Errorf("degraded(budget) %v, want 1", got)
	}
}
