package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
)

// multiTestServer builds a two-backend server (R9 Nano default, Gen9
// secondary), each with its own sim-priced library over the same shapes.
func multiTestServer(t testing.TB, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	shapes := []gemm.Shape{
		{M: 1, K: 4096, N: 1000}, {M: 16, K: 4096, N: 1000}, {M: 3136, K: 64, N: 64},
		{M: 784, K: 1152, N: 256}, {M: 196, K: 2304, N: 512}, {M: 12544, K: 27, N: 32},
		{M: 49, K: 960, N: 160}, {M: 3136, K: 32, N: 192}, {M: 100352, K: 3, N: 64},
		{M: 784, K: 24, N: 144}, {M: 196, K: 512, N: 512}, {M: 64, K: 25088, N: 4096},
	}
	configs := gemm.AllConfigs()[:160]
	var backends []Backend
	for _, spec := range []device.Spec{device.R9Nano(), device.IntegratedGen9()} {
		model := sim.New(spec)
		ds := dataset.Build(model, shapes, configs)
		lib := core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 6, 42)
		backends = append(backends, Backend{Device: spec.Name, Lib: lib, Model: model})
	}
	srv, err := NewMulti(backends, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestMultiDeviceRouting(t *testing.T) {
	srv, ts := multiTestServer(t, Options{})
	shape := gemm.Shape{M: 784, K: 1152, N: 256}

	// Explicit routing: each backend answers with its own library's choice
	// and stamps its device name.
	for _, name := range srv.Devices() {
		d := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select",
			shapeRequest{M: shape.M, K: shape.K, N: shape.N, Device: name}))
		if d.Device != name {
			t.Errorf("decision for %q stamped %q", name, d.Device)
		}
		want := srv.byName[name].gen.Load().lib.Choose(shape)
		if d.Config != want.String() {
			t.Errorf("%s: online %s, offline %s", name, d.Config, want)
		}
	}

	// No device field: the first backend is the default.
	d := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select",
		shapeRequest{M: shape.M, K: shape.K, N: shape.N}))
	if d.Device != srv.Devices()[0] {
		t.Errorf("default route hit %q, want %q", d.Device, srv.Devices()[0])
	}
}

func TestMultiDeviceBatchRouting(t *testing.T) {
	srv, ts := multiTestServer(t, Options{})
	gen9 := srv.Devices()[1]
	resp := postJSON(t, ts.URL+"/v1/select/batch", batchRequest{
		Device: gen9,
		Shapes: []batchShape{{M: 1, K: 4096, N: 1000}, {M: 3136, K: 64, N: 64}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	b := decodeResp[batchResponse](t, resp)
	for i, d := range b.Results {
		if d.Device != gen9 {
			t.Errorf("result %d stamped %q, want %q", i, d.Device, gen9)
		}
	}
}

func TestUnknownDeviceRejected(t *testing.T) {
	_, ts := multiTestServer(t, Options{})
	cases := []struct {
		name string
		do   func() *http.Response
	}{
		{"select", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/select", shapeRequest{M: 1, K: 1, N: 1, Device: "tpu-v9"})
		}},
		{"batch", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/select/batch", batchRequest{
				Device: "tpu-v9", Shapes: []batchShape{{M: 1, K: 1, N: 1}},
			})
		}},
		{"configs", func() *http.Response {
			resp, err := http.Get(ts.URL + "/v1/configs?device=tpu-v9")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}},
	}
	for _, tc := range cases {
		resp := tc.do()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with unknown device: status %d, want 400", tc.name, resp.StatusCode)
		}
		e := decodeResp[errorResponse](t, resp)
		if !strings.Contains(e.Error, "tpu-v9") {
			t.Errorf("%s: error %q does not name the unknown device", tc.name, e.Error)
		}
	}
}

func TestDevicesEndpoint(t *testing.T) {
	srv, ts := multiTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/devices")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	dr := decodeResp[devicesResponse](t, resp)
	if dr.Default != srv.Devices()[0] {
		t.Errorf("default %q, want %q", dr.Default, srv.Devices()[0])
	}
	if len(dr.Devices) != 2 {
		t.Fatalf("%d devices listed, want 2", len(dr.Devices))
	}
	for i, di := range dr.Devices {
		if di.Name != srv.Devices()[i] {
			t.Errorf("device %d: %q, want %q", i, di.Name, srv.Devices()[i])
		}
		if di.Selector != "DecisionTree" || di.Configs != 6 {
			t.Errorf("device %d: selector %q configs %d", i, di.Selector, di.Configs)
		}
	}
}

func TestConfigsPerDevice(t *testing.T) {
	srv, ts := multiTestServer(t, Options{})
	gen9 := srv.Devices()[1]
	resp, err := http.Get(ts.URL + "/v1/configs?device=" + gen9)
	if err != nil {
		t.Fatal(err)
	}
	c := decodeResp[configsResponse](t, resp)
	if c.Device != gen9 {
		t.Errorf("configs for %q, want %q", c.Device, gen9)
	}
	if c.Configs[0] != srv.byName[gen9].gen.Load().lib.Configs[0].String() {
		t.Errorf("config 0 %q does not match the gen9 library", c.Configs[0])
	}
}

// Per-device cache partitions: traffic on one device must not appear in
// another device's cache series, and both partitions report independently.
func TestPerDeviceCacheMetrics(t *testing.T) {
	srv, ts := multiTestServer(t, Options{})
	nano, gen9 := srv.Devices()[0], srv.Devices()[1]
	req := shapeRequest{M: 784, K: 1152, N: 256}

	reqNano := req
	reqNano.Device = nano
	decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", reqNano))
	second := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", reqNano))
	if !second.Cached {
		t.Fatal("repeat request missed the nano cache")
	}
	reqGen9 := req
	reqGen9.Device = gen9
	if d := decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select", reqGen9)); d.Cached {
		t.Fatal("gen9 first request hit another device's cache entry")
	}

	page := metricsPage(t, ts)
	if got := metricValue(t, page, `selectd_cache_hits_total{device="`+nano+`"}`); got != 1 {
		t.Errorf("nano cache hits %v, want 1", got)
	}
	if got := metricValue(t, page, `selectd_cache_hits_total{device="`+gen9+`"}`); got != 0 {
		t.Errorf("gen9 cache hits %v, want 0", got)
	}
	if got := metricValue(t, page, `selectd_cache_entries{device="`+gen9+`"}`); got != 1 {
		t.Errorf("gen9 cache entries %v, want 1", got)
	}
}

func TestNewMultiValidation(t *testing.T) {
	model := sim.New(device.R9Nano())
	shapes := []gemm.Shape{{M: 8, K: 8, N: 8}, {M: 64, K: 64, N: 64}}
	ds := dataset.Build(model, shapes, gemm.AllConfigs()[:40])
	lib := core.BuildLibrary(ds, core.TopN{}, core.DecisionTreeSelector{}, 4, 42)

	cases := map[string][]Backend{
		"empty":     {},
		"no name":   {{Device: "", Lib: lib, Model: model}},
		"nil lib":   {{Device: "a", Lib: nil, Model: model}},
		"nil model": {{Device: "a", Lib: lib, Model: nil}},
		"duplicate": {{Device: "a", Lib: lib, Model: model}, {Device: "a", Lib: lib, Model: model}},
	}
	for name, bs := range cases {
		if _, err := NewMulti(bs, Options{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// A nanosecond deadline expires before the pricing loop starts, so the
// single-select path must abort mid-computation with 503 instead of pricing
// the whole library for a dead client.
func TestSelectDeadlineExceeded(t *testing.T) {
	_, ts := testServer(t, Options{RequestTimeout: time.Nanosecond})
	resp := postJSON(t, ts.URL+"/v1/select", shapeRequest{M: 7, K: 7, N: 7})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

// An expired deadline must not poison the cache: the aborted shape stays
// uncached and a later unconstrained request computes it fresh.
func TestDeadlineAbortNotCached(t *testing.T) {
	srv, _ := testServer(t, Options{})
	be := srv.backends[0]
	shape := gemm.Shape{M: 7, K: 7, N: 7}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.decide(ctx, be, shape); err == nil {
		t.Fatal("decide with a dead context succeeded")
	}
	if _, ok := be.gen.Load().cache.get(shape); ok {
		t.Fatal("aborted decision was cached")
	}
	d, err := srv.decide(context.Background(), be, shape)
	if err != nil {
		t.Fatal(err)
	}
	if d.Config == "" {
		t.Fatal("recovered request returned no config")
	}
}

// Bodies over the 8 MiB cap must draw 413 (not 400): the cap is enforced by
// http.MaxBytesReader on the real response writer.
func TestOversizedBodyRejected(t *testing.T) {
	_, ts := testServer(t, Options{})
	body := `{"m":1,"k":1,"n":1` + strings.Repeat(" ", 9<<20) + `}`
	resp, err := http.Post(ts.URL+"/v1/select", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	e := decodeResp[errorResponse](t, resp)
	if !strings.Contains(e.Error, "bytes") {
		t.Errorf("413 error %q does not mention the byte limit", e.Error)
	}
}
