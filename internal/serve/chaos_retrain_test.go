package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"kernelselect/internal/core"
	"kernelselect/internal/dataset"
	"kernelselect/internal/device"
	"kernelselect/internal/faultinject"
	"kernelselect/internal/gemm"
	"kernelselect/internal/sim"
)

// TestChaosRetrain layers the closed loop over the chaos harness: regret
// sampling, drift scoring and shadow retraining run while the reload storm,
// latency spikes, pricing errors and client cancellations are live. On top of
// the base chaos invariants (statuses, per-generation consistency, budget
// conservation, cache purity) it audits the retrain path:
//
//   - the first gated candidate per device is deliberately terrible (a static
//     worst-config selector) and must be rejected — and a rejected candidate's
//     library must never serve a single response;
//   - injected retrain failures are counted as errors, never promoted;
//   - every device eventually promotes a genuine candidate, and every
//     response stamped with a promoted generation is consistent with that
//     candidate's library;
//   - the decision accounting stays conserved through every swap:
//     sampled + unsampled == decisions, and the sample queue drains.
func TestChaosRetrain(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			chaosRetrainRun(t, seed)
		})
	}
}

func chaosRetrainRun(t *testing.T, seed uint64) {
	inj := faultinject.New(seed, faultinject.Options{
		PriceError:   0.003,
		Spike:        0.02,
		SpikeMax:     100 * time.Microsecond,
		Cancel:       0.08,
		CancelMax:    300 * time.Microsecond,
		RetrainError: 0.3,
	})
	universe := gemm.AllConfigs()[:120]

	type chaosBackend struct {
		name  string
		model *sim.Model
		libA  *core.Library
		libB  *core.Library
		bad   *core.Library // static worst-config candidate: must never pass the gates
	}
	var cbs []*chaosBackend
	var backends []Backend
	for _, spec := range []device.Spec{device.R9Nano(), device.IntegratedGen9()} {
		model := sim.New(spec)
		ds := dataset.Build(model, reloadShapes, universe)
		libA := core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 6, 42)
		libB := core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 4, 42)
		bad, err := core.NewLibrary(libA.Configs, core.StaticSelector{
			Index: worstGeomeanIndex(model, libA.Configs, reloadShapes),
		})
		if err != nil {
			t.Fatal(err)
		}
		m := model
		pricer := inj.Pricer(faultinject.PricerFunc(
			func(_ context.Context, cfg gemm.Config, s gemm.Shape) (float64, error) {
				return m.GFLOPS(cfg, s), nil
			}))
		cbs = append(cbs, &chaosBackend{name: spec.Name, model: model, libA: libA, libB: libB, bad: bad})
		backends = append(backends, Backend{Device: spec.Name, Lib: libA, Model: model, Pricer: pricer})
	}

	// Retrain bookkeeping. RetrainFunc and OnRetrain both run inside Maintain,
	// which this test only ever calls from the main goroutine — the mutex
	// guards against the race detector, not a real schedule.
	var mu sync.Mutex
	attempts := map[string]int{}
	lastCand := map[string]*core.Library{}
	libsByGen := map[string]map[uint64]*core.Library{}
	retrain := func(dev string, model *sim.Model, shapes []gemm.Shape) (*core.Library, error) {
		if inj.FailRetrain() {
			return nil, fmt.Errorf("injected retrain failure")
		}
		mu.Lock()
		attempts[dev]++
		n := attempts[dev]
		mu.Unlock()
		var cb *chaosBackend
		for _, c := range cbs {
			if c.name == dev {
				cb = c
			}
		}
		var cand *core.Library
		if n == 1 {
			cand = cb.bad
		} else {
			ds := dataset.Build(model, shapes, universe)
			cand = core.BuildLibrary(ds, core.DecisionTree{}, core.DecisionTreeSelector{}, 6, 42)
		}
		mu.Lock()
		lastCand[dev] = cand
		mu.Unlock()
		return cand, nil
	}

	srv, err := NewMulti(backends, Options{
		MaxInFlight:      8,
		FallbackShapes:   reloadShapes,
		TrainShapes:      reloadShapes,
		BreakerThreshold: 4,
		BreakerCooldown:  5 * time.Millisecond,
		RequestTimeout:   2 * time.Second,
		Warm:             true,
		RegretSample:     0.5,
		RegretUniverse:   universe,
		WindowSize:       256,
		DriftThreshold:   0.25,
		RetrainMinWindow: 16,
		Retrain:          retrain,
		OnRetrain: func(ev RetrainEvent) {
			// Register a promoted candidate before the audit reads libsByGen;
			// runs inside Maintain on the main goroutine.
			if ev.Accepted {
				mu.Lock()
				libsByGen[ev.Device][ev.Generation] = lastCand[ev.Device]
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(inj.Middleware(srv.Handler()))
	defer ts.Close()

	for _, cb := range cbs {
		id, err := srv.Generation(cb.name)
		if err != nil {
			t.Fatal(err)
		}
		libsByGen[cb.name] = map[uint64]*core.Library{id: cb.libA}
	}

	// Pre-phase: shifted traffic fills each backend's window so drift is far
	// over threshold before the storm begins — the retrain trigger is
	// deterministic even though its timing races the reloads.
	for _, be := range srv.backends {
		for i := 0; i < 8; i++ {
			for _, sh := range shiftedShapes {
				if _, err := srv.decide(context.Background(), be, sh); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	type outcome struct {
		status  int
		device  string
		results []Decision
	}
	const goroutines = 8
	const perG = 30
	var wg sync.WaitGroup
	outcomes := make([][]outcome, goroutines)
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				dev := cbs[(g+i)%len(cbs)].name
				var url string
				var raw []byte
				if i%4 == 3 {
					url = ts.URL + "/v1/select/batch"
					a, b := reloadShapes[(g+i)%len(reloadShapes)], shiftedShapes[(g+2*i)%len(shiftedShapes)]
					raw, _ = json.Marshal(batchRequest{Device: dev, Shapes: []batchShape{
						{M: a.M, K: a.K, N: a.N}, {M: b.M, K: b.K, N: b.N},
					}})
				} else {
					url = ts.URL + "/v1/select"
					s := shiftedShapes[(g*7+i)%len(shiftedShapes)]
					raw, _ = json.Marshal(shapeRequest{M: s.M, K: s.K, N: s.N, Device: dev})
				}
				resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d request %d: %w", g, i, err)
					return
				}
				o := outcome{status: resp.StatusCode, device: dev}
				if resp.StatusCode == http.StatusOK {
					var body bytes.Buffer
					if _, err := body.ReadFrom(resp.Body); err == nil {
						var d Decision
						var br batchResponse
						if json.Unmarshal(body.Bytes(), &br) == nil && len(br.Results) > 0 {
							o.results = br.Results
						} else if json.Unmarshal(body.Bytes(), &d) == nil && d.Config != "" {
							o.results = []Decision{d}
						}
					}
				}
				resp.Body.Close()
				outcomes[g] = append(outcomes[g], o)
			}
		}(g)
	}

	// The storm: reloads and maintenance passes interleave with the chaos
	// traffic. Maintenance runs synchronously here, so retrain promotions land
	// on this goroutine, racing the workers exactly like production's
	// background maintain loop would.
	for i := 0; i < 10; i++ {
		for _, cb := range cbs {
			lib := cb.libA
			if i%2 == 0 {
				lib = cb.libB
			}
			id, err := srv.Reload(cb.name, lib, nil)
			if err != nil {
				t.Fatal(err)
			}
			libsByGen[cb.name][id] = lib
		}
		srv.Maintain()
		time.Sleep(2 * time.Millisecond)
	}
	// Keep maintaining until every backend has promoted at least one genuine
	// candidate — injected failures and the mandatory bad-candidate rejection
	// consume an unknown number of early passes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for _, be := range srv.backends {
			if be.retrainPromoted.Load() == 0 {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("not every backend promoted a retrain; events: %+v", srv.RetrainEvents())
		}
		srv.Maintain()
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Audit every outcome against the registered generations — a rejected or
	// errored candidate was never registered, so one of its decisions would
	// surface here as an unknown generation.
	var total, degradedN, abortedN int
	for g := range outcomes {
		for _, o := range outcomes[g] {
			total++
			switch o.status {
			case http.StatusOK:
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				abortedN++
				continue
			default:
				t.Fatalf("unexplained status %d", o.status)
			}
			for _, d := range o.results {
				lib, ok := libsByGen[o.device][d.Generation]
				if !ok {
					t.Fatalf("%s: response from unknown generation %d — a gated candidate served", o.device, d.Generation)
				}
				if d.Index < 0 || d.Index >= len(lib.Configs) || d.Config != lib.Configs[d.Index].String() {
					t.Fatalf("%s gen %d: config %q / index %d inconsistent with its library",
						o.device, d.Generation, d.Config, d.Index)
				}
				if !d.Degraded {
					var sh gemm.Shape
					if _, err := fmt.Sscanf(d.Shape, "%dx%dx%d", &sh.M, &sh.K, &sh.N); err != nil {
						t.Fatalf("%s: unparseable shape %q", o.device, d.Shape)
					}
					if want := lib.ChooseIndex(sh); d.Index != want {
						t.Fatalf("%s gen %d shape %s: served index %d, selector says %d",
							o.device, d.Generation, d.Shape, d.Index, want)
					}
				} else {
					degradedN++
					if d.DegradedReason == "" {
						t.Fatalf("degraded decision with no reason: %+v", d)
					}
					if d.Cached {
						t.Fatalf("cached degraded decision served: %+v", d)
					}
				}
			}
		}
	}
	if total != goroutines*perG {
		t.Fatalf("%d outcomes for %d requests", total, goroutines*perG)
	}

	// Retrain bookkeeping: per device, the bad candidate was rejected and a
	// genuine one promoted; injected failures match the error counter.
	var errorsTotal uint64
	for _, be := range srv.backends {
		if got := be.retrainRejected.Load(); got < 1 {
			t.Errorf("%s: rejected counter %d, want >= 1 (the bad candidate)", be.name, got)
		}
		if got := be.retrainPromoted.Load(); got < 1 {
			t.Errorf("%s: promoted counter %d, want >= 1", be.name, got)
		}
		errorsTotal += be.retrainErrors.Load()
	}
	if fails := inj.Stats().RetrainFails; errorsTotal != fails {
		t.Errorf("retrain errors %d, injector reports %d failures", errorsTotal, fails)
	}
	for _, ev := range srv.RetrainEvents() {
		if ev.Accepted && ev.CandidateRegret > ev.IncumbentRegret+1e-12 {
			t.Errorf("promoted candidate with worse holdout regret: %+v", ev)
		}
	}

	// Decision accounting conserved through every swap, and the sample queue
	// drains once traffic quiesces.
	for _, be := range srv.backends {
		if s, u, d := be.sampled.Load(), be.unsampled.Load(), be.decisions.Load(); s+u != d {
			t.Errorf("%s: sampled %d + unsampled %d != decisions %d", be.name, s, u, d)
		}
		waitSettled(t, be)
	}

	// Budgets conserved once traffic quiesces.
	deadline = time.Now().Add(2 * time.Second)
	for _, be := range srv.backends {
		for (be.budgetFree() != be.budgetCap || be.inflight.Load() != 0) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if free := be.budgetFree(); free != be.budgetCap {
			t.Errorf("%s: budget free %d, cap %d — token leaked", be.name, free, be.budgetCap)
		}
		if inflight := be.inflight.Load(); inflight != 0 {
			t.Errorf("%s: inflight gauge %d after quiesce", be.name, inflight)
		}
	}

	// Cache purity: the serving generation's cache holds only full-quality
	// decisions stamped with that generation — across retrain promotions too.
	for _, be := range srv.backends {
		gen := be.gen.Load()
		gen.cache.forEach(func(d Decision) {
			if d.Degraded {
				t.Errorf("%s: degraded decision cached: %+v", be.name, d)
			}
			if d.Generation != gen.id {
				t.Errorf("%s: cache holds generation %d entry in generation %d", be.name, d.Generation, gen.id)
			}
			if d.PredictedGFLOPS <= 0 {
				t.Errorf("%s: cached decision without a price: %+v", be.name, d)
			}
		})
	}

	st := inj.Stats()
	t.Logf("seed %d: %d requests (%d shed/aborted, %d degraded); %d spikes, %d errors, %d cancels, %d retrain fails; events %d",
		seed, total, abortedN, degradedN, st.Spikes, st.Errors, st.Cancels, st.RetrainFails, len(srv.RetrainEvents()))
	if st.Spikes+st.Errors+st.Cancels == 0 {
		t.Error("injector fired no faults — chaos run exercised nothing")
	}
}
