package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestPerBackendBudgetIsolation is the acceptance check for admission
// isolation: with one device's budget fully saturated (100% of its uncached
// traffic degraded to the fallback), the other device must keep serving
// every request at full quality — the per-request service level that
// determines its throughput is identical to its unloaded baseline. The
// assertion is functional rather than wall-clock (CI timing is noisy): a
// backend whose every request is full-service does the same work per request
// as in the baseline phase, and the saturated device consumes none of its
// tokens.
func TestPerBackendBudgetIsolation(t *testing.T) {
	srv, ts := multiTestServer(t, Options{MaxInFlight: 8})
	nano, gen9 := srv.backends[0], srv.backends[1]
	if nano.budgetCap != 4 || gen9.budgetCap != 4 {
		t.Fatalf("budgets %d/%d, want an even 4/4 split of 8", nano.budgetCap, gen9.budgetCap)
	}

	query := func(dev string, m int) Decision {
		t.Helper()
		return decodeResp[Decision](t, postJSON(t, ts.URL+"/v1/select",
			shapeRequest{M: m, K: 33, N: 65, Device: dev}))
	}

	// Baseline: gen9 unloaded, every distinct (uncached) shape full service.
	for i := 0; i < 20; i++ {
		if d := query(gen9.name, 100+i); d.Degraded {
			t.Fatalf("baseline gen9 request %d degraded: %+v", i, d)
		}
	}

	// Saturate nano to 100%: every token held, so all its uncached traffic
	// degrades.
	var releases []func()
	for {
		rel, ok := nano.acquire()
		if !ok {
			break
		}
		releases = append(releases, rel)
	}
	defer func() {
		for _, rel := range releases {
			rel()
		}
	}()
	for i := 0; i < 20; i++ {
		if d := query(nano.name, 200+i); !d.Degraded || d.DegradedReason != "budget" {
			t.Fatalf("saturated nano request %d not degraded(budget): %+v", i, d)
		}
	}

	// Isolation: gen9's service level is unchanged — 100% full service on
	// fresh shapes, zero sheds, zero degradations.
	for i := 0; i < 20; i++ {
		if d := query(gen9.name, 300+i); d.Degraded {
			t.Fatalf("gen9 request %d degraded while nano saturated: %+v", i, d)
		}
	}
	if got := gen9.shed.Load(); got != 0 {
		t.Errorf("gen9 shed %d requests", got)
	}
	for r := range gen9.degraded {
		if got := gen9.degraded[r].Load(); got != 0 {
			t.Errorf("gen9 degraded(%s) = %d, want 0", reasonNames[r], got)
		}
	}
	if got := nano.degraded[reasonBudget].Load(); got != 20 {
		t.Errorf("nano degraded(budget) = %d, want 20", got)
	}
}

func TestBudgetOverrides(t *testing.T) {
	srv, _ := multiTestServer(t, Options{
		MaxInFlight: 8,
		Budgets:     map[string]int{"integrated-gen9": 1},
	})
	// The override applies only to the named device; unnamed devices keep
	// the even split.
	for _, be := range srv.backends {
		want := 4
		if o, ok := srv.opts.Budgets[be.name]; ok {
			want = o
		}
		if be.budgetCap != want {
			t.Errorf("%s budget %d, want %d", be.name, be.budgetCap, want)
		}
	}
}

func TestBudgetOverrideValidation(t *testing.T) {
	srv, _ := testServer(t, Options{})
	be := srv.backends[0]
	gen := be.gen.Load()
	_, err := NewMulti([]Backend{{Device: be.name, Lib: gen.lib, Model: gen.model}},
		Options{Budgets: map[string]int{be.name: 0}})
	if err == nil {
		t.Fatal("zero budget override accepted")
	}
}

// Mixed concurrent select/batch traffic must conserve budget tokens exactly:
// every acquire has one release, across both the full-service and degraded
// paths.
func TestBudgetTokenConservation(t *testing.T) {
	srv, ts := multiTestServer(t, Options{MaxInFlight: 4})
	devices := srv.Devices()

	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dev := devices[g%len(devices)]
			for i := 0; i < 25; i++ {
				var raw []byte
				var url string
				if i%3 == 0 {
					url = ts.URL + "/v1/select/batch"
					raw, _ = json.Marshal(batchRequest{Device: dev, Shapes: []batchShape{
						{M: 1 + g, K: 1 + i, N: 7}, {M: 2 + g, K: 2 + i, N: 9},
					}})
				} else {
					url = ts.URL + "/v1/select"
					raw, _ = json.Marshal(shapeRequest{M: 1 + g, K: 1 + i, N: 13, Device: dev})
				}
				resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	deadline := time.Now().Add(time.Second)
	for _, be := range srv.backends {
		for be.budgetFree() != be.budgetCap && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if free := be.budgetFree(); free != be.budgetCap {
			t.Errorf("%s: budget free %d, cap %d — tokens lost or double-counted", be.name, free, be.budgetCap)
		}
		if inflight := be.inflight.Load(); inflight != 0 {
			t.Errorf("%s: inflight gauge %d after quiesce", be.name, inflight)
		}
	}
}
