// Package serve is the online half of the paper's pipeline: an HTTP daemon
// that loads a deployed library artifact (pruned kernel set + trained
// selector, see internal/core/persist.go) and answers "which kernel
// configuration for this GEMM shape?" at serving latency.
//
// Production concerns are handled in-process with no external dependencies:
//
//   - a sharded LRU decision cache keyed by shape (NN layer shapes repeat
//     every step, so steady-state traffic is almost all hits);
//   - per-endpoint request counters and latency histograms plus cache
//     hit-rate, exposed at GET /metrics in Prometheus text format;
//   - bounded in-flight concurrency with 429 shedding and per-request
//     deadlines, so overload degrades predictably instead of queueing;
//   - a draining flag that fails GET /healthz ahead of graceful shutdown,
//     letting a load balancer rotate the instance out while in-flight
//     requests finish.
//
// The selector backend is whatever the loaded library dispatches with
// (decision tree, random forest, k-NN, SVM — anything core.LoadLibrary
// accepts), which makes a pair of selectd processes an A/B harness for the
// Table-I classifier comparison under real traffic.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"kernelselect/internal/core"
	"kernelselect/internal/gemm"
	"kernelselect/internal/par"
	"kernelselect/internal/sim"
)

// Options configure the server. The zero value selects the defaults.
type Options struct {
	CacheSize      int           // total cached decisions; default 4096, negative disables
	CacheShards    int           // LRU shards; default 16
	MaxInFlight    int           // concurrent select/batch requests; default 256
	MaxBatch       int           // shapes per batch request; default 1024
	RequestTimeout time.Duration // per-request deadline; default 5s
	Workers        int           // pricing workers per batch request; default GOMAXPROCS
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	return o
}

// Server answers kernel-selection queries for one library.
type Server struct {
	lib      *core.Library
	model    *sim.Model
	opts     Options
	cache    *decisionCache
	metrics  *metrics
	inflight chan struct{}
	draining func() bool
}

// New builds a server for the library. The device model prices the library's
// configurations per shape to report predicted performance next to each
// decision; it must be non-nil.
func New(lib *core.Library, model *sim.Model, opts Options) *Server {
	if lib == nil {
		panic("serve: nil library")
	}
	if model == nil {
		panic("serve: nil device model")
	}
	opts = opts.withDefaults()
	return &Server{
		lib:      lib,
		model:    model,
		opts:     opts,
		cache:    newDecisionCache(opts.CacheSize, opts.CacheShards),
		metrics:  newMetrics(),
		inflight: make(chan struct{}, opts.MaxInFlight),
		draining: func() bool { return false },
	}
}

// SetDrainCheck installs the callback healthz consults: when it reports
// true, /healthz returns 503 so load balancers stop routing here while
// in-flight requests drain.
func (s *Server) SetDrainCheck(f func() bool) {
	if f != nil {
		s.draining = f
	}
}

// Library exposes the served library (for offline/online agreement checks).
func (s *Server) Library() *core.Library { return s.lib }

// Decision is one answer: the chosen configuration for a shape plus the
// device model's predicted performance, normalized against the best
// configuration the library could have picked for that shape.
type Decision struct {
	Shape           string  `json:"shape"`
	Config          string  `json:"config"`
	Index           int     `json:"index"`
	KernelID        string  `json:"kernel_id"`
	PredictedGFLOPS float64 `json:"predicted_gflops"`
	PredictedNorm   float64 `json:"predicted_norm"`
	Cached          bool    `json:"cached"`
}

// decide answers one shape, consulting the cache first.
func (s *Server) decide(shape gemm.Shape) Decision {
	if d, ok := s.cache.get(shape); ok {
		d.Cached = true
		return d
	}
	d := s.compute(shape)
	s.cache.put(shape, d)
	return d
}

// compute runs the selector and prices every library configuration on the
// shape, so the decision carries its predicted normalized performance — the
// paper's Table-I quantity, per request.
func (s *Server) compute(shape gemm.Shape) Decision {
	idx := s.lib.ChooseIndex(shape)
	cfgs := s.lib.Configs
	best, chosen := 0.0, 0.0
	for i, cfg := range cfgs {
		g := s.model.GFLOPS(cfg, shape)
		if g > best {
			best = g
		}
		if i == idx {
			chosen = g
		}
	}
	norm := 0.0
	if best > 0 {
		norm = chosen / best
	}
	return Decision{
		Shape:           shape.String(),
		Config:          cfgs[idx].String(),
		Index:           idx,
		KernelID:        cfgs[idx].KernelID(),
		PredictedGFLOPS: chosen,
		PredictedNorm:   norm,
	}
}

// ---------------------------------------------------------------------------
// HTTP layer
// ---------------------------------------------------------------------------

// shapeRequest is the wire form of one GEMM shape.
type shapeRequest struct {
	M int `json:"m"`
	K int `json:"k"`
	N int `json:"n"`
}

func (r shapeRequest) shape() (gemm.Shape, error) {
	s := gemm.Shape{M: r.M, K: r.K, N: r.N}
	if err := s.Validate(); err != nil {
		return gemm.Shape{}, err
	}
	return s, nil
}

type batchRequest struct {
	Shapes []shapeRequest `json:"shapes"`
}

type batchResponse struct {
	Results []Decision `json:"results"`
}

type configsResponse struct {
	Selector  string   `json:"selector"`
	Count     int      `json:"count"`
	Configs   []string `json:"configs"`
	KernelIDs []string `json:"kernel_ids"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the daemon's full HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/select", s.instrument("select", true, s.handleSelect))
	mux.HandleFunc("POST /v1/select/batch", s.instrument("batch", true, s.handleBatch))
	mux.HandleFunc("GET /v1/configs", s.instrument("configs", false, s.handleConfigs))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// statusWriter records the status code a handler commits.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the serving spine: optional in-flight
// admission (shedding 429 when saturated), a per-request deadline, and
// counter/latency accounting.
func (s *Server) instrument(endpoint string, limited bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if limited {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.metrics.shed.Add(1)
				s.metrics.endpoint(endpoint).observe(http.StatusTooManyRequests, 0)
				writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "server saturated"})
				return
			}
		}
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)

		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(ctx))
		s.metrics.endpoint(endpoint).observe(sw.code, time.Since(start))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req shapeRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	shape, err := req.shape()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.decide(shape))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if len(req.Shapes) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "batch has no shapes"})
		return
	}
	if len(req.Shapes) > s.opts.MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("batch of %d shapes exceeds limit %d", len(req.Shapes), s.opts.MaxBatch),
		})
		return
	}
	shapes := make([]gemm.Shape, len(req.Shapes))
	for i, sr := range req.Shapes {
		shape, err := sr.shape()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("shape %d: %v", i, err),
			})
			return
		}
		shapes[i] = shape
	}

	ctx := r.Context()
	results := par.Map(s.opts.Workers, len(shapes), func(i int) Decision {
		if ctx.Err() != nil {
			return Decision{} // deadline hit: stop pricing, the request is void
		}
		return s.decide(shapes[i])
	})
	if ctx.Err() != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "request deadline exceeded"})
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

func (s *Server) handleConfigs(w http.ResponseWriter, _ *http.Request) {
	resp := configsResponse{
		Selector: s.lib.SelectorName(),
		Count:    len(s.lib.Configs),
	}
	for _, c := range s.lib.Configs {
		resp.Configs = append(resp.Configs, c.String())
		resp.KernelIDs = append(resp.KernelIDs, c.KernelID())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses := s.cache.stats()
	var b strings.Builder
	s.metrics.render(&b, s.lib.SelectorName(), hits, misses, s.cache.len())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, b.String())
}

// decodeBody parses a JSON request body, rejecting unknown fields and
// trailing garbage so malformed clients fail loudly.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	if dec.More() {
		return errors.New("trailing data after request body")
	}
	return nil
}
