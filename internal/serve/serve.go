// Package serve is the online half of the paper's pipeline: an HTTP daemon
// that loads deployed library artifacts (pruned kernel set + trained
// selector, see internal/core/persist.go) and answers "which kernel
// configuration for this GEMM shape?" at serving latency.
//
// A server hosts one selection backend per device model — the cross-device
// deployment the portability study measures — and routes each query by the
// request's "device" field (defaulting to the first backend). Production
// concerns are handled in-process with no external dependencies:
//
//   - a sharded LRU decision cache per device generation (NN layer shapes
//     repeat every step, so steady-state traffic is almost all hits);
//   - atomic hot reload: each backend's library/model/cache is an immutable
//     generation behind an atomic pointer, swappable via Reload or
//     POST /v1/reload without dropping in-flight requests;
//   - per-backend admission budgets: each device gets its own token budget
//     (default MaxInFlight split evenly) so a hot device cannot starve the
//     others, plus an EWMA-latency shed threshold that rejects 429 when a
//     backend falls behind;
//   - graceful degradation: budget exhaustion, a too-short deadline, a
//     pricing failure, or an open circuit breaker answer with the backend's
//     precomputed fallback config ("degraded": true) instead of an error;
//   - per-endpoint request counters and latency histograms plus per-device
//     cache/budget/shed/degradation series, exposed at GET /metrics in
//     Prometheus text format;
//   - a draining flag that fails GET /healthz ahead of graceful shutdown,
//     letting a load balancer rotate the instance out while in-flight
//     requests finish; healthz's body reports per-backend detail.
//
// The selector backends are whatever the loaded libraries dispatch with
// (decision tree, random forest, k-NN, SVM — anything core.LoadLibrary
// accepts), which makes a single selectd process an A/B harness for the
// Table-I classifier comparison under real traffic.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kernelselect/internal/core"
	"kernelselect/internal/gemm"
	"kernelselect/internal/par"
	"kernelselect/internal/sim"
	"kernelselect/internal/workload"
)

// Options configure the server. The zero value selects the defaults.
type Options struct {
	CacheSize      int            // cached decisions per device generation; default 4096, negative disables
	CacheShards    int            // LRU shards per cache; default 16
	MaxInFlight    int            // total admission budget, split evenly across backends; default 256
	Budgets        map[string]int // per-device budget overrides (device name → tokens)
	MaxBatch       int            // shapes per batch request; default 1024
	RequestTimeout time.Duration  // per-request deadline; default 5s
	Workers        int            // pricing workers per batch request; default GOMAXPROCS

	// ShedLatency is the load-aware shed threshold: when a backend's
	// full-service latency EWMA exceeds it, new full-service requests for
	// that backend are rejected 429 until the EWMA decays. 0 disables.
	ShedLatency time.Duration

	// BreakerThreshold consecutive pricing failures trip a backend's circuit
	// breaker to fallback-only service; default 5. BreakerCooldown is how
	// long the breaker stays open before half-opening one trial request;
	// default 1s.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// FallbackShapes is the shape set the degraded-mode fallback config is
	// scored over (best geometric-mean GFLOPS); default: the paper's
	// dataset shapes.
	FallbackShapes []gemm.Shape

	// Warm enables speculative generation warming: every generation swap
	// background-prices WarmShapes into the new generation's decision cache
	// (see warm.go), so steady-state traffic never pays a cold miss after a
	// reload. Default off — warming writes cache entries traffic did not ask
	// for, which callers watching cache counters must opt into.
	Warm bool

	// WarmShapes is the shape universe the warm pass prices; default:
	// FallbackShapes (the paper's dataset shapes).
	WarmShapes []gemm.Shape

	// RegretSample is the fraction of served decisions stamped for
	// background regret measurement against the config universe (regret.go).
	// 0 disables sampling; 1 measures every decision. Sampling is
	// deterministic — every round(1/RegretSample)-th decision per backend —
	// so sampled + unsampled counts partition the total exactly.
	RegretSample float64

	// RegretUniverse is the configuration universe regret is measured
	// against; default gemm.AllConfigs() (materialized only when the closed
	// loop is on).
	RegretUniverse []gemm.Config

	// RegretQueue bounds the background measurement queue; default 1024.
	// A full queue drops samples (counted) instead of blocking requests.
	RegretQueue int

	// WindowSize bounds the served-shape sliding window the closed loop
	// reasons over; default 4096, negative disables the window (and with it
	// drift scoring, online fallback learning, and retraining).
	WindowSize int

	// DriftThreshold is the PSI drift score above which a shadow retrain
	// fires; default 0.25 (the conventional "significant shift" reading).
	DriftThreshold float64

	// TrainShapes is the training-time shape mix the drift score compares
	// the live window against (duplicates weight the mix); default
	// FallbackShapes.
	TrainShapes []gemm.Shape

	// Retrain, when non-nil, enables shadow retraining: it is called on the
	// maintenance goroutine with the blended shape mix whenever drift
	// crosses DriftThreshold, and its candidate is promoted only after the
	// verification gates pass (retrain.go).
	Retrain RetrainFunc

	// RetrainMinWindow is the minimum window fill before drift can trigger
	// a retrain; default 64.
	RetrainMinWindow int

	// MaintainInterval is the period of the background maintenance loop
	// (drift scoring, fallback relearning, shadow retraining). 0 disables
	// the loop; callers may still drive Maintain directly.
	MaintainInterval time.Duration

	// OnRetrain, when non-nil, observes every shadow-retrain attempt
	// (promotions, rejections, and errors) from the maintenance goroutine.
	OnRetrain func(RetrainEvent)
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	if o.FallbackShapes == nil {
		o.FallbackShapes, _ = workload.DatasetShapes()
	}
	if o.WarmShapes == nil {
		o.WarmShapes = o.FallbackShapes
	}
	if o.RegretSample < 0 {
		o.RegretSample = 0
	}
	if o.RegretSample > 1 {
		o.RegretSample = 1
	}
	if o.RegretQueue <= 0 {
		o.RegretQueue = 1024
	}
	if o.WindowSize == 0 {
		o.WindowSize = 4096
	}
	if o.DriftThreshold <= 0 {
		o.DriftThreshold = 0.25
	}
	if o.TrainShapes == nil {
		o.TrainShapes = o.FallbackShapes
	}
	if o.RetrainMinWindow <= 0 {
		o.RetrainMinWindow = 64
	}
	if o.RegretUniverse == nil && (o.RegretSample > 0 || o.Retrain != nil) {
		o.RegretUniverse = gemm.AllConfigs()
	}
	return o
}

// Backend pairs one device's deployed library with the device model that
// prices its decisions. Device is the name clients route by. Pricer, when
// non-nil, overrides Model-based pricing on the serving path (fault
// injection, remote pricing) and is kept across reloads; Model is still
// required — it prices the degraded-mode fallback config.
type Backend struct {
	Device string
	Lib    *core.Library
	Model  *sim.Model
	Pricer Pricer
}

// Server answers kernel-selection queries for one or more device backends.
type Server struct {
	backends       []*backend
	byName         map[string]*backend
	opts           Options
	metrics        *metrics
	genCounter     atomic.Uint64
	fallbackShapes []gemm.Shape
	reloadSource   ReloadSource // set before serving; nil disables /v1/reload
	draining       func() bool

	// Closed-loop state (regret.go, retrain.go). regretEvery is the
	// deterministic sampling stride (0 = sampling off); regretQ feeds the
	// background measurement worker; stop tears the background goroutines
	// down on Close.
	regretEvery    uint64
	regretUniverse []gemm.Config
	regretQ        chan regretSample
	stop           chan struct{}
	stopOnce       sync.Once

	eventsMu sync.Mutex
	events   []RetrainEvent
}

// New builds a single-device server; the backend takes the model's device
// name. The device model prices the library's configurations per shape to
// report predicted performance next to each decision; it must be non-nil.
func New(lib *core.Library, model *sim.Model, opts Options) *Server {
	if lib == nil {
		panic("serve: nil library")
	}
	if model == nil {
		panic("serve: nil device model")
	}
	s, err := NewMulti([]Backend{{Device: model.Dev.Name, Lib: lib, Model: model}}, opts)
	if err != nil {
		panic("serve: " + err.Error())
	}
	return s
}

// NewMulti builds a server hosting one backend per device. The first backend
// is the default route for requests that name no device. Backends must be
// non-empty with unique, named devices and non-nil libraries and models.
// Each backend gets MaxInFlight/len(backends) admission tokens unless
// Options.Budgets overrides it.
func NewMulti(backends []Backend, opts Options) (*Server, error) {
	if len(backends) == 0 {
		return nil, errors.New("serve: no backends")
	}
	opts = opts.withDefaults()
	s := &Server{
		byName:         make(map[string]*backend, len(backends)),
		opts:           opts,
		metrics:        newMetrics(),
		fallbackShapes: opts.FallbackShapes,
		draining:       func() bool { return false },
		regretUniverse: opts.RegretUniverse,
		stop:           make(chan struct{}),
	}
	if opts.RegretSample > 0 {
		s.regretEvery = uint64(math.Round(1 / opts.RegretSample))
		if s.regretEvery < 1 {
			s.regretEvery = 1
		}
		s.regretQ = make(chan regretSample, opts.RegretQueue)
	}
	defaultBudget := opts.MaxInFlight / len(backends)
	if defaultBudget < 1 {
		defaultBudget = 1
	}
	for i, b := range backends {
		if b.Device == "" {
			return nil, fmt.Errorf("serve: backend %d has no device name", i)
		}
		if b.Lib == nil {
			return nil, fmt.Errorf("serve: backend %q has a nil library", b.Device)
		}
		if b.Model == nil {
			return nil, fmt.Errorf("serve: backend %q has a nil device model", b.Device)
		}
		if b.Lib.Unified() {
			// The backend's device feature vector must complete the unified
			// selector's width, or every dispatch would clamp to config 0.
			if _, err := b.Lib.UnifiedChooser(b.Model.Dev.Features()); err != nil {
				return nil, fmt.Errorf("serve: backend %q: %v", b.Device, err)
			}
		}
		if _, dup := s.byName[b.Device]; dup {
			return nil, fmt.Errorf("serve: duplicate device %q", b.Device)
		}
		budget := defaultBudget
		if o, ok := opts.Budgets[b.Device]; ok {
			if o < 1 {
				return nil, fmt.Errorf("serve: budget override %d for %q must be >= 1", o, b.Device)
			}
			budget = o
		}
		be := &backend{
			name:               b.Device,
			custom:             b.Pricer,
			budget:             make(chan struct{}, budget),
			budgetCap:          budget,
			breaker:            breaker{threshold: opts.BreakerThreshold, cooldown: opts.BreakerCooldown},
			window:             newShapeWindow(opts.WindowSize),
			regretHist:         newValueHistogram(regretBuckets),
			regretDegradedHist: newValueHistogram(regretBuckets),
		}
		mix := mixOf(opts.TrainShapes)
		be.driftRef.Store(&mix)
		pricer := b.Pricer
		if pricer == nil {
			pricer = modelPricer{b.Model}
		}
		gen := s.newGeneration(b.Device, b.Lib, b.Model, pricer)
		s.startWarm(be, gen)
		be.gen.Store(gen)
		s.backends = append(s.backends, be)
		s.byName[b.Device] = be
	}
	if s.regretQ != nil {
		go s.regretWorker()
	}
	if opts.MaintainInterval > 0 {
		go s.maintainLoop(opts.MaintainInterval)
	}
	return s, nil
}

// NewUnified builds a server where every device backend dispatches through
// one unified (device-feature-augmented) library — the follow-up paper's
// "one artifact for every device" deployment. Each model contributes a
// backend named after its device; at dispatch the backend appends its
// device's feature vector to the request shape, so per-device answers come
// from the single shared selector while caches, budgets and metrics stay
// per-device as in NewMulti.
func NewUnified(lib *core.Library, models []*sim.Model, opts Options) (*Server, error) {
	if lib == nil {
		return nil, errors.New("serve: nil library")
	}
	if !lib.Unified() {
		return nil, fmt.Errorf("serve: NewUnified needs a unified library; %q dispatches on shape features only", lib.SelectorName())
	}
	if len(models) == 0 {
		return nil, errors.New("serve: no device models")
	}
	backends := make([]Backend, len(models))
	for i, m := range models {
		if m == nil {
			return nil, fmt.Errorf("serve: device model %d is nil", i)
		}
		backends[i] = Backend{Device: m.Dev.Name, Lib: lib, Model: m}
	}
	return NewMulti(backends, opts)
}

// Close stops the server's background closed-loop goroutines (the regret
// measurement worker and the maintenance loop). Idempotent. The HTTP
// handlers keep serving after Close — only background measurement and
// adaptation stop — so it is safe to call at the start of a graceful drain.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// SetDrainCheck installs the callback healthz consults: when it reports
// true, /healthz returns 503 so load balancers stop routing here while
// in-flight requests drain.
func (s *Server) SetDrainCheck(f func() bool) {
	if f != nil {
		s.draining = f
	}
}

// Library exposes the default backend's current library (for offline/online
// agreement checks).
func (s *Server) Library() *core.Library { return s.backends[0].gen.Load().lib }

// Devices lists the hosted device names; the first is the default route.
func (s *Server) Devices() []string {
	names := make([]string, len(s.backends))
	for i, be := range s.backends {
		names[i] = be.name
	}
	return names
}

// Generation reports the named backend's current generation id (empty =
// default backend).
func (s *Server) Generation(device string) (uint64, error) {
	be, err := s.backend(device)
	if err != nil {
		return 0, err
	}
	return be.gen.Load().id, nil
}

// backend resolves a request's device name; empty selects the default.
func (s *Server) backend(name string) (*backend, error) {
	if name == "" {
		return s.backends[0], nil
	}
	if be, ok := s.byName[name]; ok {
		return be, nil
	}
	return nil, fmt.Errorf("unknown device %q (serving: %s)", name, strings.Join(s.Devices(), ", "))
}

// Decision is one answer: the chosen configuration for a shape plus the
// device model's predicted performance, normalized against the best
// configuration the library could have picked for that shape. Generation
// identifies the library epoch that produced it. Degraded decisions carry
// the backend's fallback config and no prediction (computing one is exactly
// the work degradation avoids).
type Decision struct {
	Device          string  `json:"device"`
	Shape           string  `json:"shape"`
	Config          string  `json:"config"`
	Index           int     `json:"index"`
	KernelID        string  `json:"kernel_id"`
	PredictedGFLOPS float64 `json:"predicted_gflops"`
	PredictedNorm   float64 `json:"predicted_norm"`
	Cached          bool    `json:"cached"`
	Generation      uint64  `json:"generation"`
	Degraded        bool    `json:"degraded,omitempty"`
	DegradedReason  string  `json:"degraded_reason,omitempty"`
}

// degradedDecision stamps the generation's precomputed fallback for one
// shape and counts it. Degraded decisions are never cached: the cache must
// only ever serve full-quality answers.
func (s *Server) degradedDecision(be *backend, gen *generation, shape gemm.Shape, r degradeReason) Decision {
	be.degraded[r].Add(1)
	d := *gen.fb.Load()
	d.Shape = shape.String()
	d.DegradedReason = reasonNames[r]
	return d
}

// decide answers one shape on one backend against a single generation
// snapshot, consulting its cache first. It fails only when ctx expires
// mid-computation; pricing failures and an open breaker degrade to the
// fallback config instead. Aborted and degraded decisions are not cached.
// Concurrent misses for the same shape coalesce into one pricing pass
// (flight.go).
func (s *Server) decide(ctx context.Context, be *backend, shape gemm.Shape) (Decision, error) {
	gen := be.gen.Load()
	if d, ok := gen.cache.get(shape); ok {
		d.Cached = true
		s.account(be, gen, shape, &d)
		return d, nil
	}
	d, err := s.decideMiss(ctx, be, gen, shape)
	if err == nil {
		// Every decision that will be served — full-quality or degraded —
		// feeds the closed loop exactly once; aborted requests served
		// nothing and are not decisions.
		s.account(be, gen, shape, &d)
	}
	return d, err
}

// leaderCompute is the single-flight leader's full-service ladder: breaker,
// deadline estimate, pricing pass, then breaker/EWMA/cache updates. Exactly
// one caller per (generation, shape) runs it at a time.
func (s *Server) leaderCompute(ctx context.Context, be *backend, gen *generation, shape gemm.Shape) (Decision, error) {
	if !be.breaker.allow(time.Now()) {
		return s.degradedDecision(be, gen, shape, reasonBreaker), nil
	}
	// A pricing pass costs ~computeEWMA; if the remaining deadline cannot
	// cover it, answer the fallback now instead of burning the budget on a
	// pass that will abort anyway.
	if dl, ok := ctx.Deadline(); ok {
		if est := ewmaValue(&be.computeEWMA); est > 0 && time.Until(dl) < est {
			be.breaker.onAbort()
			return s.degradedDecision(be, gen, shape, reasonDeadline), nil
		}
	}
	start := time.Now()
	d, err := gen.compute(ctx, shape)
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			be.breaker.onAbort()
			return Decision{}, err
		}
		be.breaker.onFailure(time.Now())
		return s.degradedDecision(be, gen, shape, reasonError), nil
	}
	be.breaker.onSuccess()
	ewmaObserve(&be.computeEWMA, time.Since(start))
	gen.cache.put(shape, d)
	return d, nil
}

// ---------------------------------------------------------------------------
// HTTP layer
// ---------------------------------------------------------------------------

// shapeRequest is the wire form of one GEMM shape, optionally routed to a
// named device backend.
type shapeRequest struct {
	M      int    `json:"m"`
	K      int    `json:"k"`
	N      int    `json:"n"`
	Device string `json:"device,omitempty"`
}

func (r shapeRequest) shape() (gemm.Shape, error) {
	s := gemm.Shape{M: r.M, K: r.K, N: r.N}
	if err := s.Validate(); err != nil {
		return gemm.Shape{}, err
	}
	return s, nil
}

type batchShape struct {
	M int `json:"m"`
	K int `json:"k"`
	N int `json:"n"`
}

func (r batchShape) shape() (gemm.Shape, error) {
	return shapeRequest{M: r.M, K: r.K, N: r.N}.shape()
}

type batchRequest struct {
	Device string       `json:"device,omitempty"`
	Shapes []batchShape `json:"shapes"`
}

type batchResponse struct {
	Results []Decision `json:"results"`
}

type configsResponse struct {
	Device     string   `json:"device"`
	Selector   string   `json:"selector"`
	Generation uint64   `json:"generation"`
	Count      int      `json:"count"`
	Configs    []string `json:"configs"`
	KernelIDs  []string `json:"kernel_ids"`
}

type deviceInfo struct {
	Name     string `json:"name"`
	Selector string `json:"selector"`
	Configs  int    `json:"configs"`
}

type devicesResponse struct {
	Default string       `json:"default"`
	Devices []deviceInfo `json:"devices"`
}

type reloadRequest struct {
	Device string `json:"device,omitempty"`
}

type reloadResponse struct {
	Device     string `json:"device"`
	Generation uint64 `json:"generation"`
	Selector   string `json:"selector"`
	Configs    int    `json:"configs"`

	// Warm progress of the new generation at response time: how many of
	// WarmShapes the background pass intends to price, how many have landed
	// in the cache so far, and whether the pass has completed.
	WarmShapes   int    `json:"warm_shapes"`
	Warmed       uint64 `json:"warmed"`
	WarmComplete bool   `json:"warm_complete"`
}

type healthzBackend struct {
	Device       string `json:"device"`
	Generation   uint64 `json:"generation"`
	Selector     string `json:"selector"`
	Configs      int    `json:"configs"`
	Compiled     bool   `json:"compiled_selector"`
	Breaker      string `json:"breaker"`
	InFlight     int64  `json:"in_flight"`
	BudgetFree   int    `json:"budget_free"`
	BudgetCap    int    `json:"budget_cap"`
	WarmShapes   int    `json:"warm_shapes"`
	Warmed       uint64 `json:"warmed"`
	WarmComplete bool   `json:"warm_complete"`
}

type healthzResponse struct {
	Status   string           `json:"status"`
	Backends []healthzBackend `json:"backends"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the daemon's full HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/select", s.instrument("select", s.handleSelect))
	mux.HandleFunc("POST /v1/select/batch", s.instrument("batch", s.handleBatch))
	mux.HandleFunc("POST /v1/reload", s.instrument("reload", s.handleReload))
	mux.HandleFunc("GET /v1/configs", s.instrument("configs", s.handleConfigs))
	mux.HandleFunc("GET /v1/devices", s.instrument("devices", s.handleDevices))
	mux.HandleFunc("GET /v1/window", s.instrument("window", s.handleWindow))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// statusWriter records the status code a handler commits, and whether the
// response should be kept out of the latency histogram (sheds and degraded
// answers do little or no work; a flood of their near-zero durations would
// drag the latency quantiles toward zero exactly when the server is slowest
// and real full-service latencies matter most). Writers are pooled: one is
// borrowed per request and returned after accounting, so instrumentation
// itself stays off the allocator.
type statusWriter struct {
	http.ResponseWriter
	code        int
	skipLatency bool
}

var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// markNoLatency flags the response as excluded from the latency histogram.
func markNoLatency(w http.ResponseWriter) {
	if sw, ok := w.(*statusWriter); ok {
		sw.skipLatency = true
	}
}

// instrument wraps a handler with counter/latency accounting. The endpoint's
// metrics are resolved once at mux construction — not per request through the
// registry mutex — and the per-request deadline now lives in the handlers,
// created only on paths that can block (a cache hit never needs a context,
// and building one costs two allocations). Admission is per-backend and
// happens inside the handlers once the device is resolved.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	e := s.metrics.endpoint(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := swPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.code, sw.skipLatency = w, http.StatusOK, false
		h(sw, r)
		if sw.skipLatency {
			e.observeCode(sw.code)
		} else {
			e.observe(sw.code, time.Since(start))
		}
		sw.ResponseWriter = nil
		swPool.Put(sw)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds is the back-off hint stamped on every 429 shed and 503
// drain/deadline response. Both conditions are transient — an EWMA decaying,
// a deadline that was too short, a drain rotating the instance out — so one
// second is long enough for the load balancer or the cluster router to stop
// hammering a saturated replica and short enough that a recovered backend
// picks its traffic back up on the next attempt.
const retryAfterSeconds = "1"

// writeRetryable writes an error response with a Retry-After header, used by
// every 429 shed and 503 drain/deadline path so well-behaved clients (and the
// cluster router's backoff) know the condition is transient.
func writeRetryable(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Retry-After", retryAfterSeconds)
	writeJSON(w, code, v)
}

// writeBodyError maps a decodeBody failure to its status: 413 when the body
// blew the size cap, 400 for everything else.
func writeBodyError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
		})
		return
	}
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
}

// admit runs the per-backend admission ladder shared by select and batch:
// 429 when the backend's latency EWMA is over the shed threshold, a nil
// release with ok=true when the caller should answer degraded (budget
// exhausted), or a live release token. It writes the 429 itself.
func (s *Server) admit(w http.ResponseWriter, be *backend) (release func(), degraded bool, shed bool) {
	if be.overloaded(s.opts.ShedLatency) {
		be.shed.Add(1)
		markNoLatency(w)
		writeRetryable(w, http.StatusTooManyRequests, errorResponse{
			Error: fmt.Sprintf("backend %q overloaded", be.name),
		})
		return nil, false, true
	}
	release, ok := be.acquire()
	if !ok {
		return nil, true, false
	}
	return release, false, false
}

// handleSelect is the hot path. The steady-state request — a well-formed
// body naming a cached shape — runs allocation-free: pooled body buffer,
// hand-rolled parse, map-keyed backend lookup, sharded cache hit, append
// encoding into the same pooled buffer. Everything unusual (odd JSON, cache
// miss, degradation) steps off onto the slow path.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	bp := bufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	defer func() {
		*bp = buf[:0]
		bufPool.Put(bp)
	}()
	body, err := readBody(w, r, buf[:cap(buf)])
	if err != nil {
		writeBodyError(w, err)
		return
	}
	buf = body[:0]

	var be *backend
	var shape gemm.Shape
	if p, ok := parseSelectBody(body); ok {
		if len(p.device) == 0 {
			be = s.backends[0]
		} else if be, ok = s.byName[string(p.device)]; !ok {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("unknown device %q (serving: %s)", p.device, strings.Join(s.Devices(), ", ")),
			})
			return
		}
		shape = gemm.Shape{M: p.m, K: p.k, N: p.n}
		if err := shape.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
	} else {
		var req shapeRequest
		if err := decodeStrict(body, &req); err != nil {
			writeBodyError(w, err)
			return
		}
		if be, err = s.backend(req.Device); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		if shape, err = req.shape(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
	}

	// Cache hits are O(1) and bypass admission entirely: even a saturated
	// backend keeps answering its steady-state shapes at full quality.
	gen := be.gen.Load()
	if d, ok := gen.cache.get(shape); ok {
		d.Cached = true
		s.account(be, gen, shape, &d)
		buf = appendDecision(buf, &d)
		buf = append(buf, '\n')
		writeRawJSON(w, http.StatusOK, buf)
		return
	}
	release, degraded, shed := s.admit(w, be)
	if shed {
		return
	}
	if degraded {
		markNoLatency(w)
		gen = be.gen.Load()
		d := s.degradedDecision(be, gen, shape, reasonBudget)
		s.account(be, gen, shape, &d)
		buf = appendDecision(buf, &d)
		buf = append(buf, '\n')
		writeRawJSON(w, http.StatusOK, buf)
		return
	}
	defer release()
	be.inflight.Add(1)
	defer be.inflight.Add(-1)
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	start := time.Now()
	d, err := s.decide(ctx, be, shape)
	if err != nil {
		writeRetryable(w, http.StatusServiceUnavailable, errorResponse{Error: "request deadline exceeded"})
		return
	}
	if d.Degraded {
		markNoLatency(w)
	} else if !d.Cached {
		ewmaObserve(&be.latencyEWMA, time.Since(start))
	}
	buf = appendDecision(buf, &d)
	buf = append(buf, '\n')
	writeRawJSON(w, http.StatusOK, buf)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	be, err := s.backend(req.Device)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if len(req.Shapes) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "batch has no shapes"})
		return
	}
	if len(req.Shapes) > s.opts.MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("batch of %d shapes exceeds limit %d", len(req.Shapes), s.opts.MaxBatch),
		})
		return
	}
	shapes := make([]gemm.Shape, len(req.Shapes))
	for i, sr := range req.Shapes {
		shape, err := sr.shape()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("shape %d: %v", i, err),
			})
			return
		}
		shapes[i] = shape
	}

	// One admission token covers the whole batch (it is one request's worth
	// of concurrency); budget exhaustion degrades every shape in it.
	release, degraded, shed := s.admit(w, be)
	if shed {
		return
	}
	if degraded {
		gen := be.gen.Load()
		results := make([]Decision, len(shapes))
		for i, sh := range shapes {
			results[i] = s.degradedDecision(be, gen, sh, reasonBudget)
			s.account(be, gen, sh, &results[i])
		}
		markNoLatency(w)
		writeBatch(w, results)
		return
	}
	defer release()
	be.inflight.Add(1)
	defer be.inflight.Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	start := time.Now()
	results := par.Map(s.opts.Workers, len(shapes), func(i int) Decision {
		d, err := s.decide(ctx, be, shapes[i])
		if err != nil {
			return Decision{} // deadline hit: stop pricing, the request is void
		}
		return d
	})
	if ctx.Err() != nil {
		writeRetryable(w, http.StatusServiceUnavailable, errorResponse{Error: "request deadline exceeded"})
		return
	}
	anyDegraded := false
	for _, d := range results {
		if d.Degraded {
			anyDegraded = true
			break
		}
	}
	if anyDegraded {
		markNoLatency(w)
	} else {
		ewmaObserve(&be.latencyEWMA, time.Since(start))
	}
	writeBatch(w, results)
}

// writeBatch append-encodes a batch response through the buffer pool instead
// of running the reflection encoder over up to MaxBatch decisions.
func writeBatch(w http.ResponseWriter, results []Decision) {
	bp := bufPool.Get().(*[]byte)
	buf := appendBatch((*bp)[:0], results)
	buf = append(buf, '\n')
	writeRawJSON(w, http.StatusOK, buf)
	*bp = buf[:0]
	bufPool.Put(bp)
}

// handleReload swaps the named backend (empty = default) onto a fresh
// library obtained from the installed ReloadSource. An empty body selects
// the default backend.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if err := decodeBody(w, r, &req); err != nil && !errors.Is(err, io.EOF) {
		writeBodyError(w, err)
		return
	}
	be, err := s.backend(req.Device)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if s.reloadSource == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no reload source configured"})
		return
	}
	// Single-flight: overlapping reload requests for the same backend
	// coalesce onto one leader. Without this, N concurrent POSTs race to
	// build N generations, N−1 of which are displaced immediately — wasted
	// pricing work plus a cache wipe per extra build. The router's peer-warm
	// cutover (and any redundant deploy hook) makes this race routine.
	call, leader := be.joinReload()
	if leader {
		func() {
			defer be.finishReload(call)
			lib, model, err := s.reloadSource(be.name)
			if err != nil {
				call.err = fmt.Errorf("reload source for %q: %v", be.name, err)
				return
			}
			genID, err := s.Reload(be.name, lib, model)
			if err != nil {
				call.err = err
				return
			}
			call.genID = genID
			call.name = lib.SelectorName()
			call.cfgs = len(lib.Configs)
		}()
	} else {
		<-call.done
	}
	if call.err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: call.err.Error()})
		return
	}
	total, warmed, done := be.gen.Load().warmSnapshot()
	writeJSON(w, http.StatusOK, reloadResponse{
		Device:       be.name,
		Generation:   call.genID,
		Selector:     call.name,
		Configs:      call.cfgs,
		WarmShapes:   total,
		Warmed:       warmed,
		WarmComplete: done,
	})
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	be, err := s.backend(r.URL.Query().Get("device"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// The body is immutable per generation and prerendered at reload time.
	writeRawJSON(w, http.StatusOK, be.gen.Load().configsJSON)
}

func (s *Server) handleDevices(w http.ResponseWriter, _ *http.Request) {
	resp := devicesResponse{Default: s.backends[0].name}
	for _, be := range s.backends {
		gen := be.gen.Load()
		resp.Devices = append(resp.Devices, deviceInfo{
			Name:     be.name,
			Selector: gen.lib.SelectorName(),
			Configs:  len(gen.lib.Configs),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz keeps the load-balancer contract — 200 healthy, 503
// draining — while the body reports per-backend detail: generation, breaker
// state, in-flight count and remaining budget.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := healthzResponse{Status: "ok", Backends: make([]healthzBackend, len(s.backends))}
	for i, be := range s.backends {
		gen := be.gen.Load()
		state, _ := be.breaker.snapshot()
		total, warmed, done := gen.warmSnapshot()
		resp.Backends[i] = healthzBackend{
			Device:       be.name,
			Generation:   gen.id,
			Selector:     gen.lib.SelectorName(),
			Configs:      len(gen.lib.Configs),
			Compiled:     gen.compiled,
			Breaker:      state.String(),
			InFlight:     be.inflight.Load(),
			BudgetFree:   be.budgetFree(),
			BudgetCap:    be.budgetCap,
			WarmShapes:   total,
			Warmed:       warmed,
			WarmComplete: done,
		}
	}
	code := http.StatusOK
	if s.draining() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
		// Draining is the canonical transient 503: the instance is rotating
		// out, so tell pollers when to look again.
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	stats := make([]backendStats, len(s.backends))
	for i, be := range s.backends {
		gen := be.gen.Load()
		hits, misses := gen.cache.stats()
		state, trips := be.breaker.snapshot()
		warmTotal, _, warmDone := gen.warmSnapshot()
		st := backendStats{
			device:     be.name,
			infoLine:   gen.infoLine,
			generation: gen.id,
			compiled:   gen.compiled,
			// Cache and warm counters are cumulative across generation
			// swaps: the serving generation's live counts ride on the bases
			// accumulated from displaced generations, so the rendered
			// counters never decrease on reload.
			hits:            be.cacheHitsBase.Load() + hits,
			misses:          be.cacheMissesBase.Load() + misses,
			entries:         gen.cache.len(),
			inflight:        be.inflight.Load(),
			budgetFree:      be.budgetFree(),
			budgetCap:       be.budgetCap,
			shed:            be.shed.Load(),
			coalesced:       be.coalesced.Load(),
			ewmaSeconds:     ewmaValue(&be.latencyEWMA).Seconds(),
			breakerState:    state,
			breakerTrips:    trips,
			warmTotal:       warmTotal,
			warmed:          be.warmedTotal.Load(),
			warmDone:        warmDone,
			decisions:       be.decisions.Load(),
			sampled:         be.sampled.Load(),
			unsampled:       be.unsampled.Load(),
			regretDropped:   be.regretDropped.Load(),
			regret:          be.regretHist.snapshot(),
			regretDegraded:  be.regretDegradedHist.snapshot(),
			driftScore:      be.driftScore(),
			retrainPromoted: be.retrainPromoted.Load(),
			retrainRejected: be.retrainRejected.Load(),
			retrainErrors:   be.retrainErrors.Load(),
			fallbackUpdates: be.fallbackUpdates.Load(),
		}
		if be.window != nil {
			st.windowSize = be.window.size()
		}
		for r := range st.degraded {
			st.degraded[r] = be.degraded[r].Load()
		}
		stats[i] = st
	}
	var b strings.Builder
	s.metrics.render(&b, stats)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, b.String())
}

// decodeBody parses a JSON request body, rejecting unknown fields and
// trailing garbage so malformed clients fail loudly. The size cap goes
// through http.MaxBytesReader with the real response writer, so an oversized
// body closes the connection after the error instead of letting the client
// stream the rest of an 8 MiB+ payload into a dead request.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return err
		}
		return fmt.Errorf("decoding request body: %w", err)
	}
	if dec.More() {
		return errors.New("trailing data after request body")
	}
	return nil
}
